package tunio

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"tunio/internal/cluster"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// sharedSpec is a session shape small enough to run in tests but large
// enough that the GA revisits parameter projections, so cache sharing has
// something to share.
func sharedSpec(seed int64) JobSpec {
	return JobSpec{
		Workload: "macsio",
		Nodes:    2, ProcsPerNode: 8,
		PopSize: 16, MaxIterations: 12, Reps: 1,
		Seed:        seed,
		Parallelism: 2,
	}
}

// The acceptance test for cross-session sharing: two sequential sessions
// tuning the same workload with different seeds. The second must adopt
// the first's recorded trace from the kernel store, beat 50% stage-cache
// hit rate (and the first session's rate), and still produce a curve
// bit-identical to a solo Tune with the same seed — sharing must be pure
// speedup, never a behavior change.
func TestEngineCrossSessionSharing(t *testing.T) {
	eng := NewEngine(EngineOptions{Workers: 4})

	run1, err := eng.Tune(context.Background(), sharedSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := run1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res1.EngineInfo.KernelStoreHit {
		t.Fatal("first session cannot hit an empty kernel store")
	}
	if !res1.EngineInfo.TraceReady {
		t.Fatalf("first session: trace not ready: %s", res1.EngineInfo.PrepareErr)
	}

	run2, err := eng.Tune(context.Background(), sharedSpec(9))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := run2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.EngineInfo.KernelStoreHit {
		t.Fatal("second session did not reuse the stored kernel trace")
	}
	if res2.EngineInfo.KernelHash != res1.EngineInfo.KernelHash {
		t.Fatalf("kernel hash diverged: %q vs %q", res2.EngineInfo.KernelHash, res1.EngineInfo.KernelHash)
	}
	rate1, rate2 := res1.EngineInfo.StageStats.HitRate(), res2.EngineInfo.StageStats.HitRate()
	if rate2 <= 0.5 {
		t.Fatalf("second session stage-cache hit rate = %.2f, want > 0.5 (stats %+v)", rate2, res2.EngineInfo.StageStats)
	}
	if rate2 <= rate1 {
		t.Fatalf("sharing did not help: session hit rates %.2f -> %.2f", rate1, rate2)
	}

	solo, err := Tune(TuneOptions{
		Workload: "macsio",
		Nodes:    2, ProcsPerNode: 8,
		PopSize: 16, MaxIterations: 12, Reps: 1,
		Seed:        9,
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Curve, solo.Curve) {
		t.Fatal("served curve differs from a solo Tune with the same seed")
	}
	if !reflect.DeepEqual(res2.Best.Genome(), solo.Best.Genome()) {
		t.Fatal("served best configuration differs from a solo Tune with the same seed")
	}

	st := eng.Stats()
	if st.SessionsDone != 2 || st.SessionsActive != 0 {
		t.Fatalf("engine stats = %+v, want 2 done / 0 active", st)
	}
	if st.Kernels.Kernels != 1 || st.Kernels.Hits != 1 {
		t.Fatalf("kernel store stats = %+v, want 1 kernel / 1 hit", st.Kernels)
	}
}

// Ordered progress: a subscriber that arrives after the session finished
// still replays every curve point in order.
func TestRunEventsReplayOrdered(t *testing.T) {
	eng := NewEngine(EngineOptions{})
	spec := sharedSpec(5)
	spec.PopSize, spec.MaxIterations = 6, 4
	run, err := eng.Tune(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	var got Curve
	for p := range run.Events(context.Background()) {
		got = append(got, p)
	}
	if !reflect.DeepEqual(got, res.Curve) {
		t.Fatalf("streamed %d points, result curve has %d; sequences differ", len(got), len(res.Curve))
	}
	if pts := run.Points(0); !reflect.DeepEqual(Curve(pts), res.Curve) {
		t.Fatal("Points(0) does not reproduce the curve")
	}
	if pts := run.Points(len(res.Curve) + 5); pts != nil {
		t.Fatal("Points past the end must return nil")
	}
}

func TestEngineCancel(t *testing.T) {
	eng := NewEngine(EngineOptions{})
	spec := sharedSpec(7)
	spec.MaxIterations = 200
	spec.Reps = 3
	run, err := eng.Tune(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least the baseline land so cancellation happens mid-run.
	deadline := time.After(10 * time.Second)
	for len(run.Points(0)) == 0 {
		select {
		case <-deadline:
			t.Fatal("no progress within 10s")
		case <-time.After(time.Millisecond):
		}
	}
	run.Cancel()
	res, err := run.Wait()
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run: res=%v err=%v, want nil + context.Canceled", res, err)
	}
	st := eng.Stats()
	if st.SessionsCanceled != 1 {
		t.Fatalf("engine stats = %+v, want 1 canceled", st)
	}
}

func TestEngineTenantQuota(t *testing.T) {
	eng := NewEngine(EngineOptions{TenantQuota: 1})
	long := sharedSpec(11)
	long.MaxIterations = 500
	long.Reps = 3
	long.Tenant = "acme"
	run1, err := eng.Tune(context.Background(), long)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Tune(context.Background(), long); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second session for the tenant: err = %v, want ErrQuotaExceeded", err)
	}
	// Another tenant is unaffected by acme's quota.
	other := sharedSpec(12)
	other.PopSize, other.MaxIterations = 4, 2
	other.Tenant = "beta"
	run2, err := eng.Tune(context.Background(), other)
	if err != nil {
		t.Fatalf("other tenant blocked: %v", err)
	}
	if _, err := run2.Wait(); err != nil {
		t.Fatal(err)
	}
	run1.Cancel()
	if _, err := run1.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The slot frees on completion.
	retry := sharedSpec(13)
	retry.PopSize, retry.MaxIterations = 4, 2
	retry.Tenant = "acme"
	run3, err := eng.Tune(context.Background(), retry)
	if err != nil {
		t.Fatalf("slot not released after cancellation: %v", err)
	}
	if _, err := run3.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineValidation(t *testing.T) {
	eng := NewEngine(EngineOptions{})
	ctx := context.Background()
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"unknown workload", JobSpec{Workload: "nope"}, "unknown workload"},
		{"no kernel", JobSpec{}, "needs a Workload name or C Source"},
		{"both kernels", JobSpec{Workload: "vpic", Source: "int main() { return 0; }"}, "mutually exclusive"},
		{"agent+heuristic", JobSpec{Workload: "vpic", Agent: &TunIO{}, Heuristic: true}, "mutually exclusive"},
		{"bad source", JobSpec{Source: "int main( {"}, "parsing source"},
		{"unknown fix", JobSpec{Workload: "vpic", Fix: map[string]int64{"warp_drive": 1}}, "unknown parameter"},
		{"bad fix value", JobSpec{Workload: "vpic", Fix: map[string]int64{"striping_factor": -5}}, "not in the parameter's list"},
	}
	for _, tc := range cases {
		_, err := eng.Tune(ctx, tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if st := eng.Stats(); st.SessionsStarted != 0 {
		t.Fatalf("rejected jobs must not count as started: %+v", st)
	}
}

func TestEngineFixOverrides(t *testing.T) {
	eng := NewEngine(EngineOptions{})
	spec := sharedSpec(17)
	spec.PopSize, spec.MaxIterations = 6, 4
	spec.Fix = map[string]int64{"striping_factor": 96, "romio_cb_write": 0}
	run, err := eng.Tune(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Best.Value("striping_factor"); got != 96 {
		t.Fatalf("striping_factor = %d, want pinned 96", got)
	}
	if got := res.Best.Value("romio_cb_write"); got != 0 {
		t.Fatalf("romio_cb_write = %d, want pinned 0", got)
	}
}

// A C-source job runs end to end through the engine, and a second engine
// session with the same source adopts its stored trace.
func TestEngineSourceJob(t *testing.T) {
	w := workload.NewMACSio(16)
	w.Dumps = 1
	w.PartBytes = 64 << 10
	src := w.CSource()

	eng := NewEngine(EngineOptions{})
	spec := JobSpec{
		Source: src,
		Nodes:  2, ProcsPerNode: 8,
		PopSize: 4, MaxIterations: 3, Reps: 1,
		Seed:        21,
		Parallelism: 2,
	}
	run, err := eng.Tune(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res.EngineInfo.TraceReady {
		t.Fatalf("source job: trace not ready: %s", res.EngineInfo.PrepareErr)
	}
	if h := res.EngineInfo.KernelHash; !strings.HasPrefix(h, "sig:") && !strings.HasPrefix(h, "trace:") {
		t.Fatalf("kernel hash = %q, want sig:/trace: prefix", h)
	}
	if res.BestPerf <= 0 {
		t.Fatal("no perf measured")
	}

	spec.Seed = 22
	run2, err := eng.Tune(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := run2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.EngineInfo.KernelStoreHit {
		t.Fatal("second source session did not reuse the stored trace")
	}
}

// The legacy serial path (Parallelism 0) still works through the engine
// and reports a zero EngineInfo: no trace, no memo.
func TestEngineLegacySerialPath(t *testing.T) {
	eng := NewEngine(EngineOptions{})
	spec := sharedSpec(19)
	spec.Parallelism = 0
	spec.PopSize, spec.MaxIterations = 4, 2
	run, err := eng.Tune(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineInfo != (EngineInfo{}) {
		t.Fatalf("legacy path EngineInfo = %+v, want zero", res.EngineInfo)
	}
}

// The bug Tune used to have: the error from TraceEvaluator.Prepare was
// discarded, so a run silently reverting to direct simulation was
// indistinguishable from a replay run. applyEngineInfo must surface it.
func TestApplyEngineInfoSurfacesPrepareErr(t *testing.T) {
	// Neither Workload nor Prog: Prepare must fail.
	trace := &tuner.TraceEvaluator{Cluster: cluster.CoriHaswell(1, 2)}
	prepErr := trace.Prepare(ParameterSpace())
	if prepErr == nil {
		t.Fatal("want a prepare error from an empty TraceEvaluator")
	}
	res := &Result{CacheHits: 4, CacheMisses: 6}
	applyEngineInfo(res, trace, nil, prepErr)
	if res.EngineInfo.TraceReady {
		t.Fatal("TraceReady must be false after a prepare failure")
	}
	if !strings.Contains(res.EngineInfo.PrepareErr, "Workload or a Prog") {
		t.Fatalf("PrepareErr = %q, want the recording error surfaced", res.EngineInfo.PrepareErr)
	}
	if res.EngineInfo.MemoHits != 4 || res.EngineInfo.MemoMisses != 6 {
		t.Fatalf("memo stats not mirrored: %+v", res.EngineInfo)
	}

	// A mid-run fallback marks the run as not trace-scored too.
	fb := &tuner.FallbackEvaluator{}
	fb.FellBack = true
	fb.KernelErr = errors.New("kernel exploded")
	res2 := &Result{}
	applyEngineInfo(res2, nil, fb, nil)
	if res2.EngineInfo.TraceReady || !res2.EngineInfo.FellBack || res2.EngineInfo.FallbackErr != "kernel exploded" {
		t.Fatalf("fallback not surfaced: %+v", res2.EngineInfo)
	}
}
