// flash-impactfirst reproduces the Figure 9 experiment in miniature: tune
// the FLASH-IO checkpoint with and without the Smart Configuration
// Generation component (both for the full budget, no early stopping) and
// compare how fast each reaches the same bandwidth.
//
//	go run ./examples/flash-impactfirst
package main

import (
	"fmt"
	"log"

	"tunio"
	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

func main() {
	fmt.Println("== impact-first tuning on FLASH (Figure 9) ==")
	fmt.Println("training the subset-picker agent offline...")
	agent, err := tunio.Train(tunio.TrainConfig{
		Seed: 3, ExtraRandomRuns: 8, StopperEpochs: 20, PickerEpochs: 15,
	})
	if err != nil {
		log.Fatal(err)
	}

	c := cluster.CoriHaswell(4, 32)
	run := func(label string, withPicker bool) *tuner.Result {
		w := workload.NewFLASH(c.Procs())
		cfg := tuner.Config{
			Space:   params.Space(),
			PopSize: 8, MaxIterations: 20, Seed: 3,
		}
		if withPicker {
			a, err := agent.Clone()
			if err != nil {
				log.Fatal(err)
			}
			a.Picker.Reset()
			cfg.Picker = a.Picker
		}
		res, err := tuner.Run(cfg, &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", label)
		for i, p := range res.Curve {
			if i%2 == 0 || i == len(res.Curve)-1 {
				fmt.Printf("  iter %2d: %8.0f MB/s\n", p.Iteration, p.BestPerf)
			}
		}
		return res
	}

	with := run("impact-first (Smart Configuration Generation)", true)
	without := run("all 12 parameters every iteration (HSTuner)", false)

	target := with.Curve.FinalBest()
	if wb := without.Curve.FinalBest(); wb < target {
		target = wb
	}
	target *= 0.9
	iw := with.Curve.FirstReaching(target)
	iwo := without.Curve.FirstReaching(target)
	fmt.Printf("\ntarget %.0f MB/s reached at iteration %d (impact-first) vs %d (all params)\n", target, iw, iwo)
	if iw >= 0 && iwo > 0 {
		fmt.Printf("iteration improvement: %.0f%% (paper: 86%%)\n", 100*(1-float64(iw)/float64(iwo)))
	}
	fmt.Printf("impact-first changed %d of %d parameters: %v\n",
		len(with.Best.ChangedFromDefault()), len(params.Space()), with.Best.ChangedFromDefault())
}
