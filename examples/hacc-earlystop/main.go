// hacc-earlystop reproduces the Figure 10 experiment in miniature: tune
// HACC-IO for a full budget, then compare where different stopping
// policies would have ended tuning and the Return on Tuning Investment
// each would have captured.
//
//	go run ./examples/hacc-earlystop
package main

import (
	"fmt"
	"log"

	"tunio"
	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

func main() {
	fmt.Println("== early stopping on HACC (Figure 10) ==")
	fmt.Println("training the early-stopping agent on synthetic log curves...")
	agent, err := tunio.Train(tunio.TrainConfig{
		Seed: 5, ExtraRandomRuns: 8, StopperEpochs: 25, PickerEpochs: 10,
		StopperHorizon: 25,
	})
	if err != nil {
		log.Fatal(err)
	}

	c := cluster.CoriHaswell(4, 32)
	w := workload.NewHACC(c.Procs())
	full, err := tuner.Run(tuner.Config{
		Space:   params.Space(),
		PopSize: 8, MaxIterations: 25, Seed: 5,
	}, &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	curve := full.Curve

	fmt.Println("\nfull tuning trajectory:")
	for _, p := range curve {
		fmt.Printf("  iter %2d  %7.1f min  %8.0f MB/s\n", p.Iteration, p.TimeMinutes, p.BestPerf)
	}

	replay := func(s tuner.Stopper) int {
		s.Reset()
		for i, p := range curve[1:] {
			if s.Stop(p.Iteration, p.BestPerf) {
				return i + 1
			}
		}
		return len(curve) - 1
	}
	agent.Stopper.Reset()
	policies := []struct {
		name string
		at   int
	}{
		{"TunIO RL stopping", replay(agent.Stopper)},
		{"Heuristic (5%/5 iterations)", replay(tuner.NewHeuristicStopper())},
		{"Maximizing Performance oracle", replay(&tuner.OracleStopper{Target: curve.FinalBest()})},
		{"Full budget", len(curve) - 1},
	}

	peak, _, _ := curve.PeakRoTI()
	fmt.Printf("\n%-30s %6s %12s %8s %10s\n", "policy", "stop@", "bandwidth", "RoTI", "% of best")
	for _, p := range policies {
		r := curve.RoTIAt(p.at)
		fmt.Printf("%-30s %6d %9.0f MB/s %8.1f %9.1f%%\n",
			p.name, curve[p.at].Iteration, curve[p.at].BestPerf, r, 100*r/peak)
	}
	fmt.Println("\n(paper: TunIO 90.5% of best RoTI; the heuristic stops in the")
	fmt.Println(" mid-curve plateau and forfeits the later gains)")
}
