// iolint-report demonstrates the static analysis layer on the bundled
// VPIC source: lint diagnostics over the original program, then the
// transform-safety report the discovery pipeline would attach to a
// loop-reduced, path-switched kernel.
//
//	go run ./examples/iolint-report
package main

import (
	"fmt"
	"log"

	"tunio"
	"tunio/internal/analysis"
	"tunio/internal/csrc"
	"tunio/internal/workload"
)

func main() {
	v := workload.NewVPIC(64)
	src := v.CSource()

	fmt.Println("== lint diagnostics (original VPIC source) ==")
	file, err := csrc.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	diags := analysis.Lint(file, analysis.LintOptions{})
	if len(diags) == 0 {
		fmt.Println("no findings: the bundled VPIC source is clean")
	}
	for _, d := range diags {
		fmt.Println(d)
	}

	// introduce the classic mistakes iolint exists to catch
	fmt.Println()
	fmt.Println("== lint diagnostics (seeded with common I/O mistakes) ==")
	buggy := `int main() {
    int unused_count;
    hid_t file_id = H5Fcreate("/scratch/out.h5", 0, 0, 0);
    hid_t dset = H5Dcreate(file_id, "field", 0, 0, 0, 0, 0);
    double buf[64];
    H5Dwrite(dset, 0, 0, 0, 0, buf);
    H5Dwrite(dset, 0, 0, 0, 0, buf);
    while (1) {
        H5Dwrite(dset, 0, 0, 0, 0, buf);
    }
    H5Dclose(dset);
    H5Fclose(file_id);
    return 0;
}`
	bf, err := csrc.Parse(buggy)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range analysis.Lint(bf, analysis.LintOptions{}) {
		fmt.Println(d)
	}

	fmt.Println()
	fmt.Println("== transform-safety report (VPIC kernel, loop reduction + path switch) ==")
	kernel, err := tunio.DiscoverIO(src, tunio.DiscoveryOptions{
		PreciseSlice:  true,
		LoopReduction: 0.25,
		PathSwitch:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(kernel.Warnings) == 0 {
		fmt.Println("all enabled transforms are provably safe on this kernel")
	}
	for _, w := range kernel.Warnings {
		fmt.Println(w)
	}
	fmt.Printf("\nkernel: kept %d of %d source lines (precise slice), loop scale %.0fx\n",
		len(kernel.MarkedLines), kernel.TotalLines, kernel.LoopScale)
}
