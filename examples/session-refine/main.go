// session-refine demonstrates the interactive tuning session the paper
// proposes as future work (§VI): a configuration is refined across several
// short tuning rounds — e.g. whenever the application's owner has a spare
// allocation — with each round resuming from the best configuration found
// so far and the RL agents carrying their learning forward.
//
//	go run ./examples/session-refine
package main

import (
	"fmt"
	"log"

	"tunio"
	"tunio/internal/cluster"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

func main() {
	fmt.Println("== interactive refinement session (paper §VI) ==")
	agent, err := tunio.Train(tunio.TrainConfig{
		Seed: 9, ExtraRandomRuns: 8, StopperEpochs: 20, PickerEpochs: 12,
		StopperHorizon: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	sess, err := tunio.NewSession(agent, tunio.ParameterSpace())
	if err != nil {
		log.Fatal(err)
	}

	c := cluster.CoriHaswell(2, 16)
	w := workload.NewHACC(c.Procs())
	w.ParticlesPerRank = 128 << 10

	for round := 1; round <= 3; round++ {
		res, err := sess.Refine(
			&tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: int64(round)},
			6, 8, int64(round),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: %7.0f -> %7.0f MB/s in %.0f min (stopped early: %v)\n",
			round, res.Curve.Baseline(), res.BestPerf, res.Curve.TotalMinutes(), res.StoppedEarly)
	}

	fmt.Printf("\nsession best after %d rounds: %.0f MB/s\n", sess.Rounds(), sess.BestPerf)
	fmt.Printf("cumulative tuning time: %.0f simulated minutes over %d recorded iterations\n",
		sess.History.TotalMinutes(), len(sess.History))
	fmt.Printf("final configuration: %s\n", sess.Best)
}
