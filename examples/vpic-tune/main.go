// vpic-tune runs the paper's full use-case pipeline on VPIC-IO: extract
// the I/O kernel from the application's C source with Application I/O
// Discovery, then tune the I/O stack by repeatedly executing the kernel
// through the SPMD interpreter on the simulated Cori environment —
// exactly the DEAP + H5Tuner composition of §III-E.
//
//	go run ./examples/vpic-tune
package main

import (
	"fmt"
	"log"

	"tunio"
	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

func main() {
	c := cluster.CoriHaswell(2, 16)
	v := workload.NewVPIC(c.Procs())
	v.ParticlesPerRank = 128 << 10
	v.ComputeFlops = 2e10 // the real application computes between dumps
	src := v.CSource()

	fmt.Println("== step 1: Application I/O Discovery ==")
	kernel, err := tunio.DiscoverIO(src, tunio.DiscoveryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kernel keeps %d of %d source lines; compute stripped\n\n",
		len(kernel.MarkedLines), kernel.TotalLines)

	fmt.Println("== step 2: tune using the kernel as the evaluation vehicle ==")
	res, err := tuner.Run(tuner.Config{
		Space:   params.Space(),
		PopSize: 8, MaxIterations: 15, Seed: 11,
		Stopper: tuner.NewHeuristicStopper(),
	}, &tuner.CSourceEvaluator{Prog: kernel.File, Cluster: c, Reps: 1, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range res.Curve {
		fmt.Printf("  iter %2d  %6.1f min  %8.0f MB/s  RoTI %.1f\n",
			p.Iteration, p.TimeMinutes, p.BestPerf, res.Curve.RoTIAt(i))
	}

	fmt.Println("\n== step 3: validate the tuned configuration on the full application ==")
	for _, cfgCase := range []struct {
		label string
		a     *params.Assignment
	}{
		{"defaults", params.DefaultAssignment(params.Space())},
		{"tuned   ", res.Best},
	} {
		r, err := workload.Execute(v, c, cfgCase.a.Settings(), 99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s: %8.0f MB/s, full-app runtime %.1f simulated s\n",
			cfgCase.label, r.Perf, r.Runtime)
	}
	fmt.Printf("\ntuned configuration: %s\n", res.Best)
}
