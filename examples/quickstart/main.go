// Quickstart: train TunIO's agents offline, then tune the MACSio workload
// generator on the simulated Cori environment and print the tuning curve.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"tunio"
)

func main() {
	fmt.Println("== TunIO quickstart ==")
	fmt.Println("training agents offline (parameter sweep + PCA, synthetic log curves)...")
	agent, err := tunio.Train(tunio.TrainConfig{
		Seed:            1,
		ExtraRandomRuns: 8,
		StopperEpochs:   25,
		PickerEpochs:    15,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tuning MACSio on 4 nodes x 32 procs...")
	res, err := tunio.Tune(tunio.TuneOptions{
		Workload:      "macsio",
		Agent:         agent,
		PopSize:       8,
		MaxIterations: 25,
		Reps:          1,
		Seed:          1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-5s %9s %11s %7s\n", "iter", "minutes", "best MB/s", "RoTI")
	for i, p := range res.Curve {
		fmt.Printf("%5d %9.1f %11.0f %7.1f\n", p.Iteration, p.TimeMinutes, p.BestPerf, res.Curve.RoTIAt(i))
	}
	fmt.Printf("\nuntuned %.0f MB/s -> tuned %.0f MB/s (%.1fx) in %.0f simulated minutes\n",
		res.Curve.Baseline(), res.BestPerf, res.Curve.Speedup(), res.Curve.TotalMinutes())
	if res.StoppedEarly {
		fmt.Printf("the RL early stopper ended tuning after iteration %d\n", res.StoppedAt)
	}
	fmt.Printf("parameters changed from defaults: %v\n", res.Best.ChangedFromDefault())
}
