// iokernel-extract demonstrates the Application I/O Discovery component on
// the VPIC source: per-line marking (Figure 5), kernel reconstruction,
// loop reduction, and I/O path switching — then executes both the full
// application and the kernel on the simulated stack to show the evaluation
// speedup.
//
//	go run ./examples/iokernel-extract
package main

import (
	"fmt"
	"log"
	"strings"

	"tunio"
	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/workload"
)

func main() {
	v := workload.NewVPIC(64)
	v.ComputeFlops = 3e10 // the full application computes between dumps
	src := v.CSource()

	fmt.Println("== marking (Figure 5) ==")
	kernel, err := tunio.DiscoverIO(src, tunio.DiscoveryOptions{})
	if err != nil {
		log.Fatal(err)
	}
	marked := map[int]bool{}
	for _, l := range kernel.MarkedLines {
		marked[l] = true
	}
	for i, line := range strings.Split(kernel.FormattedInput, "\n") {
		tag := "      "
		if marked[i+1] {
			tag = "KEEP  "
		}
		fmt.Printf("%s%3d  %s\n", tag, i+1, line)
	}
	fmt.Printf("kept %d of %d lines\n\n", len(kernel.MarkedLines), kernel.TotalLines)

	fmt.Println("== reconstructed I/O kernel ==")
	fmt.Println(kernel.Source)

	reduced, err := tunio.DiscoverIO(src, tunio.DiscoveryOptions{LoopReduction: 0.25, PathSwitch: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== with loop reduction (25%) and path switching ==")
	fmt.Println(reduced.Source)

	// Execute all three forms against the simulated stack.
	c := cluster.CoriHaswell(2, 32)
	settings := params.DefaultAssignment(params.Space()).Settings()
	run := func(label, text string) {
		prog, err := csrc.Parse(text)
		if err != nil {
			log.Fatal(err)
		}
		st, err := workload.BuildStack(c, settings, 1)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cinterp.Run(prog, st.Lib); err != nil {
			log.Fatal(label, ": ", err)
		}
		app := st.Sim.Report.App()
		fmt.Printf("%-28s %8.2f simulated s, %6.1f MiB written, %d write ops\n",
			label, st.Sim.Now(), float64(app.BytesWritten)/(1<<20), app.WriteOps)
	}
	fmt.Println("== evaluation cost comparison ==")
	run("full application", src)
	run("I/O kernel", kernel.Source)
	run("reduced + path-switched", reduced.Source)
}
