package tunio

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/csrc"
	"tunio/internal/discovery"
	"tunio/internal/metrics"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// Re-exported drift/online types (the dynamic-cluster surface).
type (
	// Drift is a deterministic schedule of machine regimes — background
	// load, degraded OSTs, contention phases — switching at simulated
	// timestamps. Attach one to JobSpec.Drift to tune against a
	// time-varying machine.
	Drift = cluster.Drift
	// Regime is one phase of a Drift schedule.
	Regime = cluster.Regime
	// WindowPoint is one completed service window of an online session.
	WindowPoint = tuner.WindowPoint
	// RetuneEvent announces one online re-tune (trigger reason, cost,
	// chosen configuration).
	RetuneEvent = tuner.RetuneEvent
	// DriftResult is the full outcome of an online session.
	DriftResult = tuner.DriftResult
)

// ErrQuotaExceeded is returned by Engine.Tune when the spec's tenant
// already holds its quota of concurrently running sessions.
var ErrQuotaExceeded = errors.New("tunio: tenant quota exceeded")

// EngineOptions configure a tuning engine. The zero value is a private
// engine: fresh caches, unbounded workers, no quotas — exactly what a
// one-shot Tune call wants.
type EngineOptions struct {
	// Workers bounds the total number of evaluations in flight across
	// every session the engine runs, machine-wide. Each session still
	// requests its own Parallelism; the engine gate is the global budget
	// they share. 0 means unbounded (each session limited only by its own
	// Parallelism).
	Workers int
	// TenantQuota is the maximum number of concurrently running sessions
	// per tenant; 0 means unlimited.
	TenantQuota int
	// KernelStore, when non-nil, is the content-addressed kernel store to
	// share (e.g. between engines, or a pre-warmed one); nil creates a
	// fresh store owned by this engine.
	KernelStore *replay.KernelStore
	// StageCache, when non-nil, is the multi-kernel stage cache to share;
	// nil creates a fresh one owned by this engine.
	StageCache *replay.StageCache
}

// Engine runs tuning sessions over one shared evaluation substrate: a
// bounded worker pool, a content-addressed kernel store (kernel identity
// → recorded trace), and a process-global stage cache keyed by (kernel
// hash, parameter projection). Sessions are independent — each gets its
// own GA state, seeds, and genome memo, so a served curve is bit-identical
// to a solo Tune with the same spec — but they share the artifacts that
// are pure functions of kernel content: the second session tuning
// VPIC-shaped I/O skips trace recording entirely and hits the stage plans
// the first session built.
//
// Engine replaces the wiring that used to be inlined in Tune; Tune is now
// a thin shim over a private single-use Engine. All state is carried by
// the Engine value (no package-level state), so tests and servers can run
// as many engines side by side as they like. Safe for concurrent use.
type Engine struct {
	gate   *tuner.Gate
	store  *replay.KernelStore
	stages *replay.StageCache
	quota  int
	caps   EngineOptions

	mu       sync.Mutex
	active   map[string]int // tenant -> running sessions
	started  int64
	running  int
	done     int64
	failed   int64
	canceled int64
	memoHit  int64
	memoMiss int64
}

// NewEngine returns an engine over the given (or freshly created) shared
// caches.
func NewEngine(opts EngineOptions) *Engine {
	store := opts.KernelStore
	if store == nil {
		store = replay.NewKernelStore()
	}
	stages := opts.StageCache
	if stages == nil {
		stages = replay.NewSharedStageCache()
	}
	return &Engine{
		gate:   tuner.NewGate(opts.Workers),
		store:  store,
		stages: stages,
		quota:  opts.TenantQuota,
		caps:   opts,
		active: map[string]int{},
	}
}

// KernelStore returns the engine's shared kernel store.
func (e *Engine) KernelStore() *replay.KernelStore { return e.store }

// StageCache returns the engine's shared stage cache.
func (e *Engine) StageCache() *replay.StageCache { return e.stages }

// EngineStats aggregates an engine's session lifecycle counters and the
// traffic on its shared caches — the observability surface behind
// GET /v1/stats.
type EngineStats struct {
	// Workers is the shared worker budget (0 = unbounded); InFlight the
	// currently held evaluation slots (always 0 when unbounded).
	Workers  int `json:"workers"`
	InFlight int `json:"in_flight"`
	// Session lifecycle counters.
	SessionsStarted  int64 `json:"sessions_started"`
	SessionsActive   int   `json:"sessions_active"`
	SessionsDone     int64 `json:"sessions_done"`
	SessionsFailed   int64 `json:"sessions_failed"`
	SessionsCanceled int64 `json:"sessions_canceled"`
	// MemoHits/MemoMisses total the per-session genome-memo traffic of
	// finished sessions (memos are never shared across sessions: their
	// entries depend on the session seed).
	MemoHits   int64 `json:"memo_hits"`
	MemoMisses int64 `json:"memo_misses"`
	// Stage is the shared stage cache's cache-wide traffic; Kernels the
	// kernel store's.
	Stage   replay.StageStats       `json:"stage"`
	Kernels replay.KernelStoreStats `json:"kernels"`
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	s := EngineStats{
		Workers:          e.gate.Cap(),
		InFlight:         e.gate.InFlight(),
		SessionsStarted:  e.started,
		SessionsActive:   e.running,
		SessionsDone:     e.done,
		SessionsFailed:   e.failed,
		SessionsCanceled: e.canceled,
		MemoHits:         e.memoHit,
		MemoMisses:       e.memoMiss,
	}
	e.mu.Unlock()
	s.Stage = e.stages.Stats()
	s.Kernels = e.store.Stats()
	return s
}

// JobSpec describes one tuning session: what to tune (a named workload or
// C source), on what simulated allocation, with which pipeline and
// budget. It is TuneOptions plus the multi-tenant fields (Tenant, Source,
// Fix) the service surface needs.
type JobSpec struct {
	// Workload names a built-in application model ("vpic", "hacc",
	// "flash", "bdcats", "macsio"). Exactly one of Workload and Source
	// must be set.
	Workload string
	// Source is C source code to tune: it is parsed (and, with Discover,
	// reduced to its I/O kernel first) and evaluated SPMD on the
	// simulated stack.
	Source string
	// Discover runs Application I/O Discovery on Source before tuning,
	// so evaluations interpret the reduced kernel instead of the full
	// program.
	Discover bool
	// Tenant attributes the session for quota accounting ("" is a valid
	// tenant).
	Tenant string

	// Nodes/ProcsPerNode size the simulated allocation (default 4x32).
	Nodes        int
	ProcsPerNode int
	// Agent attaches TunIO's RL components; nil runs the plain HSTuner
	// pipeline. Agents are stateful: give each session its own copy.
	Agent *TunIO
	// Heuristic attaches the 5%/5-iteration heuristic stopper instead
	// (mutually exclusive with Agent).
	Heuristic bool
	// PopSize and MaxIterations bound the genetic pipeline (default 16/50).
	PopSize       int
	MaxIterations int
	// Reps is the number of runs averaged per evaluation (default 3).
	Reps int
	// Seed drives the whole session.
	Seed int64
	// Parallelism is the session's worker count, as in TuneOptions: 0
	// keeps the legacy serial evaluator, >= 1 the batch engine with
	// staged trace replay. The engine's shared gate additionally bounds
	// the sum across sessions.
	Parallelism int
	// NoTrace opts the batch engine out of trace replay.
	NoTrace bool
	// Fix pins named parameters to fixed raw values, restricting the
	// tuned space: the value must appear in the parameter's value list.
	Fix map[string]int64
	// Progress, when non-nil, receives each curve point synchronously on
	// the session goroutine (the Run's Events stream is fed either way).
	Progress func(metrics.Point)

	// Drift attaches a time-varying machine schedule to the simulated
	// cluster. One-shot sessions then tune against the machine as it
	// stands at epoch 0; online sessions (Online != nil) follow the
	// schedule across service windows.
	Drift *Drift
	// Online switches the session to the drift-aware online controller:
	// instead of one tuning run, the session alternates service windows
	// with drift detection and incremental re-tuning. Progress arrives as
	// WindowPoints and RetuneEvents on Run.OnlineEvents (curve points are
	// synthesized from windows so existing clients still see progress);
	// the full DriftResult is available from Run.Drift after Wait.
	Online *OnlineSpec
}

// OnlineSpec configures an online (drift-aware) session. Zero values
// take the controller defaults (tuner.DriftConfig).
type OnlineSpec struct {
	// Windows is the number of service windows to run; WindowGap idle
	// seconds between them.
	Windows   int
	WindowGap float64
	// Threshold/Patience gate drift detection: relative bandwidth
	// deviation and consecutive deviant windows before re-tuning.
	Threshold float64
	Patience  int
	// Neighbors/Rounds/InitRounds size the local-search re-tunes.
	Neighbors  int
	Rounds     int
	InitRounds int
	// Prune aborts a candidate's replay once its partial staged time
	// exceeds the incumbent's total (SHAMan-style; results are
	// bit-identical with it on or off).
	Prune bool
	// GA re-tunes with the genetic pipeline warm-started from the
	// incumbent (sized by the spec's PopSize/MaxIterations) instead of
	// local search.
	GA bool
	// Oracle additionally tracks the zero-delay oracle controller as the
	// regret baseline.
	Oracle bool
}

// OnlineEvent is one online-session progress event: exactly one field
// is set.
type OnlineEvent struct {
	Window *WindowPoint `json:"window,omitempty"`
	Retune *RetuneEvent `json:"retune,omitempty"`
}

// applySpaceOverrides returns the space with every Fix'd parameter pinned
// to a single-value list.
func applySpaceOverrides(space []params.Parameter, fix map[string]int64) ([]params.Parameter, error) {
	if len(fix) == 0 {
		return space, nil
	}
	seen := 0
	out := make([]params.Parameter, len(space))
	copy(out, space)
	for i, p := range out {
		v, ok := fix[p.Name]
		if !ok {
			continue
		}
		seen++
		found := false
		for _, have := range p.Values {
			if have == v {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("tunio: fix %s=%d: value not in the parameter's list %v", p.Name, v, p.Values)
		}
		out[i] = params.Parameter{Name: p.Name, Layer: p.Layer, Values: []int64{v}, Default: 0}
	}
	if seen != len(fix) {
		for name := range fix {
			if params.Index(space, name) < 0 {
				return nil, fmt.Errorf("tunio: fix: unknown parameter %q", name)
			}
		}
	}
	return out, nil
}

// sessionKernel is a resolved job kernel: exactly one of w and prog set,
// plus its content-addressed store identity.
type sessionKernel struct {
	w        workload.Workload
	prog     *csrc.File
	storeKey string
}

// resolveKernel validates and resolves the spec's kernel selection.
func resolveKernel(spec JobSpec, c *cluster.Cluster) (sessionKernel, error) {
	switch {
	case spec.Workload != "" && spec.Source != "":
		return sessionKernel{}, fmt.Errorf("tunio: Workload and Source are mutually exclusive")
	case spec.Workload != "":
		w, err := workload.ByName(spec.Workload, c.Procs())
		if err != nil {
			return sessionKernel{}, err
		}
		return sessionKernel{
			w:        w,
			storeKey: "workload:" + spec.Workload + "/" + strconv.Itoa(c.Procs()),
		}, nil
	case spec.Source != "":
		src := spec.Source
		if spec.Discover {
			k, err := core.DiscoverIO(src, discovery.Options{})
			if err != nil {
				return sessionKernel{}, fmt.Errorf("tunio: discovery: %w", err)
			}
			src = k.Source
		}
		prog, err := csrc.Parse(src)
		if err != nil {
			return sessionKernel{}, fmt.Errorf("tunio: parsing source: %w", err)
		}
		sum := sha256.Sum256([]byte(src))
		return sessionKernel{
			prog:     prog,
			storeKey: "src:" + hex.EncodeToString(sum[:8]) + "/" + strconv.Itoa(c.Procs()),
		}, nil
	}
	return sessionKernel{}, fmt.Errorf("tunio: job needs a Workload name or C Source")
}

// Tune starts a tuning session and returns immediately with its Run
// handle. Submission errors (bad spec, unknown workload, unparsable
// source, quota) surface here, synchronously; everything after that —
// progress, cancellation, the result — goes through the Run. Canceling
// ctx cancels the session.
func (e *Engine) Tune(ctx context.Context, spec JobSpec) (*Run, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if spec.Agent != nil && spec.Heuristic {
		return nil, fmt.Errorf("tunio: Agent and Heuristic are mutually exclusive")
	}
	nodes, ppn := spec.Nodes, spec.ProcsPerNode
	if nodes == 0 {
		nodes = 4
	}
	if ppn == 0 {
		ppn = 32
	}
	c := cluster.CoriHaswell(nodes, ppn)
	if spec.Drift != nil {
		c.Drift = spec.Drift
		if err := c.Validate(); err != nil {
			return nil, err
		}
	}
	if spec.Online != nil && spec.NoTrace {
		return nil, fmt.Errorf("tunio: online sessions replay the recorded trace; NoTrace is incompatible")
	}
	kern, err := resolveKernel(spec, c)
	if err != nil {
		return nil, err
	}
	space, err := applySpaceOverrides(params.Space(), spec.Fix)
	if err != nil {
		return nil, err
	}
	if err := e.acquire(spec.Tenant); err != nil {
		return nil, err
	}

	runCtx, cancel := context.WithCancel(ctx)
	r := &Run{
		tenant:  spec.Tenant,
		cancel:  cancel,
		done:    make(chan struct{}),
		changed: make(chan struct{}),
	}
	if spec.Online != nil {
		go e.runOnlineSession(runCtx, r, spec, space, c, kern)
	} else {
		go e.runSession(runCtx, r, spec, space, c, kern)
	}
	return r, nil
}

// acquire reserves a session slot for the tenant.
func (e *Engine) acquire(tenant string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.quota > 0 && e.active[tenant] >= e.quota {
		return fmt.Errorf("%w: tenant %q already runs %d sessions", ErrQuotaExceeded, tenant, e.active[tenant])
	}
	e.active[tenant]++
	e.started++
	e.running++
	return nil
}

// release returns the tenant's slot and folds the session outcome into
// the engine counters.
func (e *Engine) release(tenant string, res *Result, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.active[tenant]--
	if e.active[tenant] <= 0 {
		delete(e.active, tenant)
	}
	e.running--
	switch {
	case err == nil:
		e.done++
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.canceled++
	default:
		e.failed++
	}
	if res != nil {
		e.memoHit += int64(res.CacheHits)
		e.memoMiss += int64(res.CacheMisses)
	}
}

// runSession is the session goroutine: the wiring formerly inlined in
// Tune, pointed at the engine's shared caches and gate.
func (e *Engine) runSession(ctx context.Context, r *Run, spec JobSpec, space []params.Parameter, c *cluster.Cluster, kern sessionKernel) {
	cfg := tuner.Config{
		Space:         space,
		PopSize:       spec.PopSize,
		MaxIterations: spec.MaxIterations,
		Seed:          spec.Seed,
		Progress: func(p metrics.Point) {
			r.publish(p)
			if spec.Progress != nil {
				spec.Progress(p)
			}
		},
	}
	switch {
	case spec.Agent != nil:
		spec.Agent.Reset()
		cfg.Stopper = spec.Agent.Stopper
		cfg.Picker = spec.Agent.Picker
	case spec.Heuristic:
		cfg.Stopper = tuner.NewHeuristicStopper()
	}

	var res *Result
	var err error
	if spec.Parallelism >= 1 {
		// Batch engine: order-independent seeds, worker pool under the
		// shared gate, memoization. Evaluations default to staged trace
		// replay against the engine-wide stage cache and kernel store,
		// with direct simulation as the permanent fallback if recording
		// fails.
		var seeded, eval tuner.Evaluator
		var trace *tuner.TraceEvaluator
		if kern.prog != nil {
			seeded = &tuner.SeededCSourceEvaluator{Prog: kern.prog, Cluster: c, Reps: spec.Reps, Seed: spec.Seed}
		} else {
			seeded = &tuner.SeededWorkloadEvaluator{Workload: kern.w, Cluster: c, Reps: spec.Reps, Seed: spec.Seed}
		}
		eval = seeded
		var fb *tuner.FallbackEvaluator
		if !spec.NoTrace {
			trace = &tuner.TraceEvaluator{
				Workload: kern.w, Prog: kern.prog,
				Cluster: c, Reps: spec.Reps, Seed: spec.Seed,
				KernelStyle: kern.prog != nil,
				Shared:      e.stages,
				Store:       e.store,
				StoreKey:    kern.storeKey,
			}
			fb = &tuner.FallbackEvaluator{Primary: trace, Fallback: seeded}
			eval = fb
		}
		batch := tuner.NewMemo(&tuner.Pool{Eval: eval, Workers: spec.Parallelism, Gate: e.gate})
		var prepErr error
		if trace != nil {
			// Record (or adopt from the store) eagerly so the kernel
			// content hash is part of every memo key from the first
			// generation on; a recording failure is surfaced on
			// Result.EngineInfo instead of being discarded.
			if prepErr = trace.Prepare(cfg.Space); prepErr == nil {
				batch.SetKernelKey(trace.KernelHash())
			}
		}
		res, err = tuner.RunBatch(ctx, cfg, batch)
		if res != nil {
			applyEngineInfo(res, trace, fb, prepErr)
		}
	} else {
		var eval tuner.Evaluator
		if kern.prog != nil {
			eval = &tuner.CSourceEvaluator{Prog: kern.prog, Cluster: c, Reps: spec.Reps, Seed: spec.Seed}
		} else {
			eval = &tuner.WorkloadEvaluator{Workload: kern.w, Cluster: c, Reps: spec.Reps, Seed: spec.Seed}
		}
		res, err = tuner.RunBatch(ctx, cfg, &tuner.Pool{Eval: eval, Workers: 1, Gate: e.gate})
	}

	e.release(spec.Tenant, res, err)
	r.finish(res, err)
}

// traceForOnline resolves the kernel's trace for an online session:
// served from the shared kernel store when the kernel was seen before,
// recorded once otherwise, and registered in the shared stage cache so
// the controller's replays hit cross-session stage plans.
func (e *Engine) traceForOnline(kern sessionKernel, c *cluster.Cluster, space []params.Parameter, seed int64) (*replay.Trace, *replay.CacheView, error) {
	if ent, ok := e.store.Get(kern.storeKey); ok {
		e.stages.Register(ent.KernelHash, ent.Trace)
		return ent.Trace, e.stages.View(ent.KernelHash), nil
	}
	st, err := workload.BuildStack(c, params.DefaultAssignment(space).Settings(), seed)
	if err != nil {
		return nil, nil, err
	}
	var t *replay.Trace
	if kern.prog != nil {
		t, err = replay.RecordFunc(st, func(st *workload.Stack) error {
			_, err := cinterp.Run(kern.prog, st.Lib)
			return err
		})
	} else {
		t, err = replay.Record(kern.w, st)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("tunio: online trace recording: %w", err)
	}
	key := replay.TraceKey(t)
	e.store.Put(kern.storeKey, replay.KernelEntry{Trace: t, KernelHash: key})
	e.stages.Register(key, t)
	return t, e.stages.View(key), nil
}

// runOnlineSession is the session goroutine for online (drift-aware)
// jobs: record (or adopt) the trace, then hand the session to the
// drift controller. Window points double as synthesized curve points so
// point-based clients keep seeing progress.
func (e *Engine) runOnlineSession(ctx context.Context, r *Run, spec JobSpec, space []params.Parameter, c *cluster.Cluster, kern sessionKernel) {
	trace, view, err := e.traceForOnline(kern, c, space, spec.Seed)
	if err != nil {
		e.release(spec.Tenant, nil, err)
		r.finish(nil, err)
		return
	}
	o := spec.Online
	dcfg := tuner.DriftConfig{
		Space:       space,
		Cluster:     c,
		Trace:       trace,
		Cache:       view,
		Seed:        spec.Seed,
		Windows:     o.Windows,
		WindowGap:   o.WindowGap,
		Threshold:   o.Threshold,
		Patience:    o.Patience,
		Neighbors:   o.Neighbors,
		Rounds:      o.Rounds,
		InitRounds:  o.InitRounds,
		Reps:        spec.Reps,
		Prune:       o.Prune,
		Oracle:      o.Oracle,
		Parallelism: spec.Parallelism,
	}
	if o.GA {
		dcfg.GA = &tuner.GARetune{PopSize: spec.PopSize, Iterations: spec.MaxIterations}
	}
	if spec.Agent != nil {
		spec.Agent.Reset()
		dcfg.Picker = spec.Agent.Picker
	}
	var best float64
	dcfg.Progress = func(wp tuner.WindowPoint) {
		w := wp
		r.publishOnline(OnlineEvent{Window: &w})
		if wp.PerfMBs > best {
			best = wp.PerfMBs
		}
		p := metrics.Point{
			Iteration:   wp.Window,
			TimeMinutes: (wp.Start + wp.Runtime) / 60,
			IterPerf:    wp.PerfMBs,
			BestPerf:    best,
		}
		r.publish(p)
		if spec.Progress != nil {
			spec.Progress(p)
		}
	}
	dcfg.OnRetune = func(ev tuner.RetuneEvent) {
		v := ev
		r.publishOnline(OnlineEvent{Retune: &v})
	}

	dres, err := tuner.RunDrift(ctx, dcfg)
	var res *Result
	if dres != nil {
		r.setDrift(dres)
		res = &tuner.Result{
			Best:        dres.Final,
			BestPerf:    dres.MeanPerf,
			Evaluations: dres.Evaluations,
			StoppedAt:   len(dres.Windows),
			Curve:       metrics.Curve(r.Points(0)),
		}
	}
	e.release(spec.Tenant, res, err)
	r.finish(res, err)
}

// applyEngineInfo fills Result.EngineInfo from the session's evaluator
// wiring once evaluations have quiesced. trace and fb may be nil (NoTrace
// or legacy-serial sessions).
func applyEngineInfo(res *Result, trace *tuner.TraceEvaluator, fb *tuner.FallbackEvaluator, prepErr error) {
	info := tuner.EngineInfo{
		MemoHits:   res.CacheHits,
		MemoMisses: res.CacheMisses,
	}
	if trace != nil {
		info.TraceReady = prepErr == nil
		if prepErr != nil {
			info.PrepareErr = prepErr.Error()
		}
		info.KernelHash = trace.KernelHash()
		info.KernelStoreHit = trace.StoreHit()
		info.StageStats = trace.Stats()
	}
	if fb != nil && fb.FellBack {
		info.FellBack = true
		info.TraceReady = false
		if fb.KernelErr != nil {
			info.FallbackErr = fb.KernelErr.Error()
		}
	}
	res.EngineInfo = info
}

// Run is a live (or finished) tuning session: a progress stream, a cancel
// switch, and the eventual result. All methods are safe for concurrent
// use from any goroutine.
type Run struct {
	tenant string
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	points   []metrics.Point
	online   []OnlineEvent
	dres     *DriftResult
	changed  chan struct{} // closed and replaced on every state change
	finished bool
	res      *Result
	err      error
}

// Tenant returns the tenant the session is attributed to.
func (r *Run) Tenant() string { return r.tenant }

// Cancel aborts the session between evaluations. Wait then returns an
// error wrapping context.Canceled. Canceling a finished run is a no-op.
func (r *Run) Cancel() { r.cancel() }

// Done returns a channel closed when the session has finished (result,
// failure, or cancellation).
func (r *Run) Done() <-chan struct{} { return r.done }

// Wait blocks until the session finishes and returns its outcome.
func (r *Run) Wait() (*Result, error) {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.res, r.err
}

// Result returns the outcome without blocking; ok is false while the
// session is still running.
func (r *Run) Result() (res *Result, err error, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.res, r.err, r.finished
}

// Points returns a copy of the curve points recorded so far, starting at
// index from. The full prefix is retained for the session's lifetime, so
// a late subscriber replays from the beginning.
func (r *Run) Points(from int) []metrics.Point {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(r.points) {
		return nil
	}
	return append([]metrics.Point(nil), r.points[from:]...)
}

// Events streams every curve point in order: buffered points replay
// first, live points follow as iterations complete. The channel closes
// when the session has finished and every point was delivered, or when
// ctx is canceled. Multiple concurrent subscribers each get the full
// ordered sequence.
func (r *Run) Events(ctx context.Context) <-chan metrics.Point {
	if ctx == nil {
		ctx = context.Background()
	}
	ch := make(chan metrics.Point)
	go func() {
		defer close(ch)
		next := 0
		for {
			r.mu.Lock()
			pts := append([]metrics.Point(nil), r.points[next:]...)
			changed := r.changed
			finished := r.finished
			r.mu.Unlock()
			for _, p := range pts {
				select {
				case ch <- p:
				case <-ctx.Done():
					return
				}
			}
			next += len(pts)
			if finished && len(pts) == 0 {
				return
			}
			if len(pts) > 0 {
				continue // re-check for points that arrived while sending
			}
			select {
			case <-changed:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// Drift returns the online session's full result; ok is false while
// the session is running, for one-shot sessions, and for online
// sessions that failed before producing a result.
func (r *Run) Drift() (*DriftResult, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dres, r.dres != nil
}

// OnlineEvents streams an online session's progress in order: buffered
// window and re-tune events replay first, live ones follow. The channel
// closes when the session has finished and every event was delivered,
// or when ctx is canceled. One-shot sessions close it with no events.
func (r *Run) OnlineEvents(ctx context.Context) <-chan OnlineEvent {
	if ctx == nil {
		ctx = context.Background()
	}
	ch := make(chan OnlineEvent)
	go func() {
		defer close(ch)
		next := 0
		for {
			r.mu.Lock()
			evs := append([]OnlineEvent(nil), r.online[next:]...)
			changed := r.changed
			finished := r.finished
			r.mu.Unlock()
			for _, ev := range evs {
				select {
				case ch <- ev:
				case <-ctx.Done():
					return
				}
			}
			next += len(evs)
			if finished && len(evs) == 0 {
				return
			}
			if len(evs) > 0 {
				continue // re-check for events that arrived while sending
			}
			select {
			case <-changed:
			case <-ctx.Done():
				return
			}
		}
	}()
	return ch
}

// publishOnline appends an online event and wakes subscribers.
func (r *Run) publishOnline(ev OnlineEvent) {
	r.mu.Lock()
	r.online = append(r.online, ev)
	close(r.changed)
	r.changed = make(chan struct{})
	r.mu.Unlock()
}

// setDrift records the online result before finish.
func (r *Run) setDrift(d *DriftResult) {
	r.mu.Lock()
	r.dres = d
	r.mu.Unlock()
}

// publish appends a curve point and wakes subscribers.
func (r *Run) publish(p metrics.Point) {
	r.mu.Lock()
	r.points = append(r.points, p)
	close(r.changed)
	r.changed = make(chan struct{})
	r.mu.Unlock()
}

// finish records the outcome and wakes everyone.
func (r *Run) finish(res *Result, err error) {
	r.mu.Lock()
	r.res = res
	r.err = err
	r.finished = true
	close(r.changed)
	r.changed = make(chan struct{})
	r.mu.Unlock()
	close(r.done)
}
