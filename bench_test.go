package tunio

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per exhibit; see DESIGN.md's experiment index)
// and adds the ablation benches for the design choices DESIGN.md calls
// out, plus micro-benchmarks of the substrate hot paths.
//
// Figure benchmarks report their headline numbers through b.ReportMetric:
// e.g. BenchmarkFig10EarlyStopping reports TunIO's share of the best
// possible RoTI. Run with:
//
//	go test -bench=. -benchmem

import (
	"math/rand"
	"testing"

	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/csrc"
	"tunio/internal/experiments"
	"tunio/internal/ga"
	"tunio/internal/hdf5"
	"tunio/internal/ioreq"
	"tunio/internal/lustre"
	"tunio/internal/nn"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

var benchCfg = experiments.Config{Scale: experiments.Smoke, Seed: 7}

// --- paper tables and figures ---

func BenchmarkFig01PermutationTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig01(benchCfg)
		b.ReportMetric(float64(r.EvalSpace), "eval-space-permutations")
	}
}

func BenchmarkFig02TuningCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig02(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Curves["hacc"].Speedup(), "hacc-speedup-x")
	}
}

func BenchmarkFig05Marking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig05(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*float64(len(r.MarkedLines))/float64(r.TotalLines), "lines-kept-%")
	}
}

func BenchmarkFig08IODiscoveryRoTI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig08(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Kernel.PeakRoTI/r.FullApp.PeakRoTI, "kernel-roti-gain-x")
		b.ReportMetric(r.Reduced.PeakRoTI/r.FullApp.PeakRoTI, "loopred-roti-gain-x")
	}
}

func BenchmarkFig08cKernelSimilarity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig08c(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.BytesErrKernel, "kernel-bytes-err-%")
		b.ReportMetric(r.OpsErrReduced, "reduced-ops-err-%")
	}
}

func BenchmarkFig09ImpactFirst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig09(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ImprovementPct, "iteration-improvement-%")
	}
}

func BenchmarkFig10EarlyStopping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Policy("TunIO RL stopping").PctOfBest, "tunio-roti-share-%")
		b.ReportMetric(r.SpeedupAtTunIOStop, "speedup-at-stop-x")
	}
}

func BenchmarkFig11EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TimeReductionPct, "time-reduction-%")
		b.ReportMetric(r.IterationReductionPct, "iteration-reduction-%")
		b.ReportMetric(r.RoTIGain, "roti-gain-MBps-per-min")
	}
}

func BenchmarkFig12Lifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchCfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ViabilityTunIO, "viability-executions")
		b.ReportMetric(r.ViabilityImprovementPct, "viability-improvement-%")
	}
}

// --- ablations (design choices from DESIGN.md §5) ---

// BenchmarkAblationSelection compares the paper's tournament(3-keep-2)
// selection against plain roulette on a FLASH tuning run.
func BenchmarkAblationSelection(b *testing.B) {
	for _, sel := range []ga.Selection{ga.TournamentKeep2, ga.Roulette} {
		b.Run(string(sel), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.CoriHaswell(2, 16)
				w := workload.NewFLASH(c.Procs())
				w.BlocksPerRank = 16
				w.Unknowns = 4
				res, err := tuner.Run(tuner.Config{
					Space: params.Space(), PopSize: 8, MaxIterations: 12,
					Seed: 9, Selection: sel,
				}, &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: 9})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Curve.Speedup(), "speedup-x")
			}
		})
	}
}

// BenchmarkAblationNoise sweeps the platform noise amplitude the paper's
// 3-run averaging mitigates.
func BenchmarkAblationNoise(b *testing.B) {
	for _, noise := range []float64{0, 0.04, 0.10} {
		b.Run(map[float64]string{0: "none", 0.04: "cori", 0.10: "high"}[noise], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := cluster.CoriHaswell(2, 16)
				c.Noise = noise
				w := workload.NewHACC(c.Procs())
				w.ParticlesPerRank = 128 << 10
				res, err := tuner.Run(tuner.Config{
					Space: params.Space(), PopSize: 8, MaxIterations: 10, Seed: 13,
				}, &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: 3, Seed: 13})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Curve.Speedup(), "speedup-x")
			}
		})
	}
}

// BenchmarkAblationOfflineTraining compares the offline-trained early
// stopper against an untrained one on synthetic curves (captured share of
// available gain).
func BenchmarkAblationOfflineTraining(b *testing.B) {
	evalStopper := func(b *testing.B, s *core.EarlyStopper) float64 {
		b.Helper()
		rng := rand.New(rand.NewSource(21))
		s.SetLearning(false)
		s.SetEpsilon(0)
		captured, available := 0.0, 0.0
		for trial := 0; trial < 20; trial++ {
			s.Reset()
			curve := core.RandomLogCurveHorizon(rng, 35)
			best, atStop := 0.0, 0.0
			stopped := false
			for i := 0; i <= 35; i++ {
				if v := curve.At(i, rng); v > best {
					best = v
				}
				if !stopped && s.Stop(i, best) {
					atStop, stopped = best, true
				}
			}
			if !stopped {
				atStop = best
			}
			captured += atStop - curve.Base
			available += best - curve.Base
		}
		return 100 * captured / available
	}
	b.Run("offline-trained", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(31))
			s, err := core.TrainEarlyStopper(core.StopperConfig{Seed: 31, Horizon: 35}, 20, rng)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(evalStopper(b, s), "gain-captured-%")
		}
	})
	b.Run("untrained", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := core.NewEarlyStopper(core.StopperConfig{Seed: 31, Horizon: 35})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(evalStopper(b, s), "gain-captured-%")
		}
	})
}

// BenchmarkAblationRewardDelay compares the paper's 5-iteration reward
// delay against immediate rewards in stopper training.
func BenchmarkAblationRewardDelay(b *testing.B) {
	for _, delay := range []int{1, 5} {
		name := "delay-5"
		if delay == 1 {
			name = "delay-1"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rng := rand.New(rand.NewSource(41))
				s, err := core.TrainEarlyStopper(core.StopperConfig{Seed: 41, Horizon: 35, RewardDelay: delay}, 20, rng)
				if err != nil {
					b.Fatal(err)
				}
				s.SetLearning(false)
				s.SetEpsilon(0)
				// flat curve: how quickly does it cut losses?
				s.Reset()
				stopAt := 35
				for it := 0; it <= 35; it++ {
					if s.Stop(it, 1000) {
						stopAt = it
						break
					}
				}
				b.ReportMetric(float64(stopAt), "flat-curve-stop-iter")
			}
		})
	}
}

// --- substrate micro-benchmarks ---

func benchStack(b *testing.B) (*cluster.Sim, *lustre.Backend) {
	b.Helper()
	c := cluster.CoriHaswell(4, 32)
	c.Noise = 0
	sim, err := cluster.NewSim(c, 1)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := lustre.New(lustre.CoriScratch(), sim)
	if err != nil {
		b.Fatal(err)
	}
	return sim, &lustre.Backend{FS: fs, StripeCount: 16, StripeSize: 1 << 20}
}

func BenchmarkLustreWritePhase(b *testing.B) {
	_, be := benchStack(b)
	extents := make([]ioreq.Extent, 128)
	for r := range extents {
		extents[r] = ioreq.Extent{Offset: int64(r) * (8 << 20), Size: 8 << 20, Rank: r}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		be.WritePhase("bench", extents)
	}
}

func BenchmarkHDF5ChunkedWrite(b *testing.B) {
	c := cluster.CoriHaswell(4, 32)
	c.Noise = 0
	settings := params.DefaultAssignment(params.Space()).Settings()
	space, err := hdf5.NewSpace([]int64{128 * 8, 16, 16, 16}, 8)
	if err != nil {
		b.Fatal(err)
	}
	slabs := make([]hdf5.Slab, 128)
	for r := range slabs {
		slabs[r] = hdf5.Slab{Rank: r, Start: []int64{int64(r) * 8, 0, 0, 0}, Count: []int64{8, 16, 16, 16}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := workload.BuildStack(c, settings, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		f, err := st.Lib.CreateFile("bench.h5")
		if err != nil {
			b.Fatal(err)
		}
		ds, err := f.CreateDataset("d", space, []int64{8, 16, 16, 16})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ds.Write(slabs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadVPICRun(b *testing.B) {
	c := cluster.CoriHaswell(4, 32)
	settings := params.DefaultAssignment(params.Space()).Settings()
	w := workload.NewVPIC(c.Procs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Execute(w, c, settings, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := nn.NewNetwork(14, rng, nn.LayerSpec{Out: 24, Act: nn.Tanh},
		nn.LayerSpec{Out: 12, Act: nn.Tanh}, nn.LayerSpec{Out: 12, Act: nn.Linear})
	in := make([]float64, 14)
	for i := range in {
		in[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(in)
	}
}

func BenchmarkGAGeneration(b *testing.B) {
	space := params.Space()
	rng := rand.New(rand.NewSource(2))
	e, err := ga.New(ga.Config{
		GenomeLen: len(space),
		Arity:     func(g int) int { return len(space[g].Values) },
		PopSize:   16,
	}, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range e.Population() {
			e.SetFitness(j, float64(j%7))
		}
		if err := e.NextGeneration(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterVPICKernel(b *testing.B) {
	c := cluster.CoriHaswell(2, 16)
	v := workload.NewVPIC(c.Procs())
	v.ParticlesPerRank = 64 << 10
	prog, err := csrc.Parse(v.CSource())
	if err != nil {
		b.Fatal(err)
	}
	settings := params.DefaultAssignment(params.Space()).Settings()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := workload.BuildStack(c, settings, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cinterp.Run(prog, st.Lib); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiscovery(b *testing.B) {
	src := workload.NewVPIC(128).CSource()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DiscoverIO(src, DiscoveryOptions{LoopReduction: 0.01, PathSwitch: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTuneEvaluationEngine compares a full default-size Tune through
// the legacy serial evaluator against the batch engine (deterministic
// seeds + memoization). Speedups versus the pre-engine baseline are
// recorded in EXPERIMENTS.md via scripts/benchcmp.sh.
func BenchmarkTuneEvaluationEngine(b *testing.B) {
	for _, w := range []string{"vpic", "hacc", "flash", "bdcats", "macsio"} {
		b.Run(w+"/legacy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Tune(TuneOptions{Workload: w, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(w+"/batch-memo", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Tune(TuneOptions{Workload: w, Seed: 1, Parallelism: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.CacheHits), "cache-hits")
			}
		})
	}
}

// BenchmarkFoldInterpreter measures the constant-folding pass's effect on
// interpreter throughput for the paper's kernels: the same kernel is
// executed unfolded and folded on identically-seeded stacks (the fold
// itself runs once outside the timed loop, as in SeededCSourceEvaluator).
func BenchmarkFoldInterpreter(b *testing.B) {
	c := cluster.CoriHaswell(2, 16)
	settings := params.DefaultAssignment(params.Space()).Settings()
	kernels := map[string]string{
		"vpic":  workload.NewVPIC(c.Procs()).CSource(),
		"flash": workload.NewFLASH(c.Procs()).CSource(),
		"hacc":  workload.NewHACC(c.Procs()).CSource(),
	}
	for _, name := range []string{"vpic", "flash", "hacc"} {
		src := kernels[name]
		run := func(b *testing.B, prog *csrc.File) {
			b.Helper()
			for i := 0; i < b.N; i++ {
				st, err := workload.BuildStack(c, settings, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cinterp.Run(prog, st.Lib); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(name+"/unfolded", func(b *testing.B) {
			prog, err := csrc.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			run(b, prog)
		})
		b.Run(name+"/folded", func(b *testing.B) {
			prog, err := csrc.Parse(src)
			if err != nil {
				b.Fatal(err)
			}
			rep := cinterp.Fold(prog)
			b.ResetTimer()
			run(b, prog)
			// after the timed loop: ResetTimer discards earlier metrics
			b.ReportMetric(float64(rep.FoldedExprs), "folded-exprs")
		})
	}
}

// BenchmarkTraceVsSourceKernel materializes the paper's §V-B comparison:
// evaluating a configuration through a trace-replay kernel vs through the
// source-derived kernel. Both are exercised on the same configuration; the
// reported metric is the simulated evaluation cost each incurs.
func BenchmarkTraceVsSourceKernel(b *testing.B) {
	c := cluster.CoriHaswell(2, 8)
	c.Noise = 0
	w := workload.NewVPIC(c.Procs())
	w.ParticlesPerRank = 32 << 10
	w.Steps = 1
	w.ComputeFlops = 2e9
	settings := params.DefaultAssignment(params.Space()).Settings()

	// record once (the trace approach needs a full application run first)
	st, err := workload.BuildStack(c, settings, 1)
	if err != nil {
		b.Fatal(err)
	}
	trace, err := replay.Record(w, st)
	if err != nil {
		b.Fatal(err)
	}

	kernel, err := DiscoverIO(w.CSource(), DiscoveryOptions{})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("trace-replay", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := workload.Execute(&replay.Player{T: trace, SkipCompute: true}, c, settings, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Runtime, "sim-seconds-per-eval")
		}
	})
	b.Run("source-kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := workload.BuildStack(c, settings, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := cinterp.Run(kernel.File, st.Lib); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(st.Sim.Now(), "sim-seconds-per-eval")
		}
	})
}
