package tunio

import (
	"context"
	"errors"
	"testing"

	"tunio/internal/metrics"
)

// smallTune returns options sized for fast end-to-end runs.
func smallTune(workload string, parallelism int) TuneOptions {
	return TuneOptions{
		Workload: workload,
		Nodes:    1, ProcsPerNode: 8,
		PopSize: 4, MaxIterations: 3, Reps: 1, Seed: 11,
		Parallelism: parallelism,
	}
}

func sameResult(a, b *Result) bool {
	if len(a.Curve) != len(b.Curve) || len(a.SubsetTrace) != len(b.SubsetTrace) {
		return false
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			return false
		}
	}
	for i := range a.SubsetTrace {
		if len(a.SubsetTrace[i]) != len(b.SubsetTrace[i]) {
			return false
		}
		for j := range a.SubsetTrace[i] {
			if a.SubsetTrace[i][j] != b.SubsetTrace[i][j] {
				return false
			}
		}
	}
	return a.BestPerf == b.BestPerf && a.Best.String() == b.Best.String()
}

// TestTuneParallelDeterminism is the batch engine's core guarantee end to
// end: for every paper workload, a parallel run reproduces the serial
// batch run bit for bit — same curve, same subset trace, same best.
func TestTuneParallelDeterminism(t *testing.T) {
	for _, w := range []string{"vpic", "hacc", "flash", "bdcats", "macsio"} {
		t.Run(w, func(t *testing.T) {
			serial, err := Tune(smallTune(w, 1))
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4} {
				got, err := Tune(smallTune(w, par))
				if err != nil {
					t.Fatal(err)
				}
				if !sameResult(serial, got) {
					t.Fatalf("parallelism=%d diverged from serial batch run", par)
				}
			}
		})
	}
}

func TestTuneMemoizationCountsHits(t *testing.T) {
	res, err := Tune(TuneOptions{
		Workload: "macsio",
		Nodes:    1, ProcsPerNode: 8,
		PopSize: 6, MaxIterations: 8, Reps: 1, Seed: 4,
		Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits == 0 {
		t.Fatal("elitism repeats the best genome every generation; want cache hits > 0")
	}
	if res.CacheHits+res.CacheMisses != res.Evaluations {
		t.Fatalf("hits(%d)+misses(%d) != evaluations(%d)",
			res.CacheHits, res.CacheMisses, res.Evaluations)
	}
}

func TestTuneLegacyPathHasNoCache(t *testing.T) {
	res, err := Tune(TuneOptions{
		Workload: "macsio",
		Nodes:    1, ProcsPerNode: 8,
		PopSize: 4, MaxIterations: 3, Reps: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHits != 0 || res.CacheMisses != 0 {
		t.Fatalf("legacy path reported cache traffic: %d/%d", res.CacheHits, res.CacheMisses)
	}
}

func TestTuneCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := smallTune("vpic", 2)
	opts.MaxIterations = 50
	opts.Context = ctx
	var points int
	opts.Progress = func(p metrics.Point) {
		points++
		if p.Iteration >= 2 {
			cancel()
		}
	}
	_, err := Tune(opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if points < 3 {
		t.Fatalf("progress saw only %d points before cancel", points)
	}
}

func TestTuneProgressMatchesCurve(t *testing.T) {
	var streamed []metrics.Point
	opts := smallTune("flash", 1)
	opts.Progress = func(p metrics.Point) { streamed = append(streamed, p) }
	res, err := Tune(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Curve) {
		t.Fatalf("progress streamed %d points, curve has %d", len(streamed), len(res.Curve))
	}
	for i := range streamed {
		if streamed[i] != res.Curve[i] {
			t.Fatalf("streamed point %d differs from curve", i)
		}
	}
}
