package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// capture runs the CLI with stdout and stderr merged into one buffer, so
// the golden files pin the exact global emit order (file, line, rule ID).
func capture(t *testing.T, args []string) (int, []byte) {
	t.Helper()
	var buf bytes.Buffer
	code := run(args, &buf, &buf)
	return code, buf.Bytes()
}

func checkGolden(t *testing.T, got []byte, golden string) {
	t.Helper()
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

func TestGoldenHuman(t *testing.T) {
	args := []string{filepath.Join("testdata", "a.c"), filepath.Join("testdata", "b.c")}
	code1, out1 := capture(t, args)
	code2, out2 := capture(t, args)
	if code1 != 1 || code2 != 1 {
		t.Fatalf("exit codes = %d, %d, want 1 (a.c has an error-severity finding)", code1, code2)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("human output not byte-stable across runs:\n%s\nvs\n%s", out1, out2)
	}
	checkGolden(t, out1, filepath.Join("testdata", "lint.golden"))
}

func TestGoldenJSON(t *testing.T) {
	args := []string{"-json", filepath.Join("testdata", "a.c"), filepath.Join("testdata", "b.c")}
	code1, out1 := capture(t, args)
	code2, out2 := capture(t, args)
	if code1 != 1 || code2 != 1 {
		t.Fatalf("exit codes = %d, %d, want 1", code1, code2)
	}
	if !bytes.Equal(out1, out2) {
		t.Fatalf("JSON output not byte-stable across runs")
	}
	checkGolden(t, out1, filepath.Join("testdata", "lint_json.golden"))
}

func TestSigMode(t *testing.T) {
	code, out := capture(t, []string{"-sig", filepath.Join("testdata", "a.c")})
	if code != 0 {
		t.Fatalf("-sig exit code = %d, want 0", code)
	}
	for _, want := range []string{"signature:", "bytes written:", "hash:"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("-sig output missing %q:\n%s", want, out)
		}
	}
	codeJ, outJ := capture(t, []string{"-sig", "-json", filepath.Join("testdata", "a.c")})
	if codeJ != 0 {
		t.Fatalf("-sig -json exit code = %d, want 0", codeJ)
	}
	for _, want := range []string{`"signature"`, `"bytes_written"`, `"hash"`} {
		if !bytes.Contains(outJ, []byte(want)) {
			t.Errorf("-sig -json output missing %q:\n%s", want, outJ)
		}
	}
}
