// Command iolint runs TunIO's static I/O diagnostics over application
// source code: unreachable I/O calls, writes overwritten before any read,
// I/O inside loops that never exit, unused variables, locals shadowing
// I/O library names, and unclosed file handles.
//
// Usage:
//
//	iolint [-json] [-verify] input.c ...
//
// The exit code is 0 when no diagnostic reaches error severity, 1 when at
// least one does, and 2 on usage or parse errors. In human-readable mode,
// error-severity findings print on stdout while warnings and notes go to
// stderr, so piping stdout captures exactly the findings that fail the
// run. JSON mode emits every diagnostic on stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tunio/internal/analysis"
	"tunio/internal/csrc"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	verify := flag.Bool("verify", false, "also run transform-safety checks (loop reduction, path switching, blind-write removal)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: iolint [-json] [-verify] input.c ...")
		flag.Usage()
		os.Exit(2)
	}

	type fileDiag struct {
		File string `json:"file"`
		analysis.Diagnostic
	}
	var all []fileDiag
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iolint:", err)
			os.Exit(2)
		}
		f, err := csrc.Parse(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "iolint: %s: %v\n", path, err)
			os.Exit(2)
		}
		diags := analysis.Lint(f, analysis.LintOptions{})
		if *verify {
			diags = append(diags, analysis.VerifyTransforms(f, analysis.TransformOptions{
				LoopReduction:     true,
				PathSwitch:        true,
				RemoveBlindWrites: true,
				IsIOCall:          analysis.DefaultIsIOCall,
			})...)
		}
		for _, d := range diags {
			all = append(all, fileDiag{File: path, Diagnostic: d})
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []fileDiag{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, "iolint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range all {
			out := os.Stdout
			if d.Severity < analysis.SevError {
				out = os.Stderr
			}
			fmt.Fprintf(out, "%s: %s\n", d.File, d.Diagnostic)
		}
		if len(all) == 0 {
			fmt.Println("iolint: no findings")
		}
	}

	var diags []analysis.Diagnostic
	for _, d := range all {
		diags = append(diags, d.Diagnostic)
	}
	if analysis.MaxSeverity(diags) >= analysis.SevError {
		os.Exit(1)
	}
}
