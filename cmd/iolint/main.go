// Command iolint runs TunIO's static I/O diagnostics over application
// source code: unreachable I/O calls, writes overwritten before any read,
// I/O inside loops that never exit, unused variables, locals shadowing
// I/O library names, unclosed file handles, and signature-derived
// inefficiency findings (small writes in hot loops, read-modify-write
// extents).
//
// Usage:
//
//	iolint [-json] [-verify] [-sig] input.c ...
//
// The exit code is 0 when no diagnostic reaches error severity, 1 when at
// least one does, and 2 on usage or parse errors. In human-readable mode,
// error-severity findings print on stdout while warnings and notes go to
// stderr, so piping stdout captures exactly the findings that fail the
// run. JSON mode emits every diagnostic on stdout. Diagnostics are sorted
// by (file, line, rule ID) in both modes, so output is byte-stable across
// runs.
//
// With -sig, iolint prints each file's symbolic I/O signature (total
// bytes moved, per-API op counts, access pattern) instead of diagnostics;
// -json emits the signature as JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"tunio/internal/analysis"
	"tunio/internal/csrc"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("iolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit output as JSON")
	verify := fs.Bool("verify", false, "also run transform-safety checks (loop reduction, path switching, blind-write removal)")
	sig := fs.Bool("sig", false, "print each file's symbolic I/O signature instead of diagnostics")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "usage: iolint [-json] [-verify] [-sig] input.c ...")
		fs.Usage()
		return 2
	}

	files := make(map[string]*csrc.File, fs.NArg())
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "iolint:", err)
			return 2
		}
		f, err := csrc.Parse(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "iolint: %s: %v\n", path, err)
			return 2
		}
		files[path] = f
	}

	if *sig {
		return runSig(fs.Args(), files, *jsonOut, stdout, stderr)
	}

	type fileDiag struct {
		File string `json:"file"`
		analysis.Diagnostic
	}
	var all []fileDiag
	for _, path := range fs.Args() {
		diags := analysis.Lint(files[path], analysis.LintOptions{})
		if *verify {
			diags = append(diags, analysis.VerifyTransforms(files[path], analysis.TransformOptions{
				LoopReduction:     true,
				PathSwitch:        true,
				RemoveBlindWrites: true,
				IsIOCall:          analysis.DefaultIsIOCall,
			})...)
		}
		for _, d := range diags {
			all = append(all, fileDiag{File: path, Diagnostic: d})
		}
	}
	// Deterministic output: global order by (file, line, rule ID) however
	// the individual passes emitted their findings.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		if all[i].Line != all[j].Line {
			return all[i].Line < all[j].Line
		}
		return all[i].Code < all[j].Code
	})

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []fileDiag{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "iolint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			out := stdout
			if d.Severity < analysis.SevError {
				out = stderr
			}
			fmt.Fprintf(out, "%s: %s\n", d.File, d.Diagnostic)
		}
		if len(all) == 0 {
			fmt.Fprintln(stdout, "iolint: no findings")
		}
	}

	var diags []analysis.Diagnostic
	for _, d := range all {
		diags = append(diags, d.Diagnostic)
	}
	if analysis.MaxSeverity(diags) >= analysis.SevError {
		return 1
	}
	return 0
}

func runSig(paths []string, files map[string]*csrc.File, jsonOut bool, stdout, stderr io.Writer) int {
	if jsonOut {
		type fileSig struct {
			File      string                `json:"file"`
			Signature *analysis.IOSignature `json:"signature"`
		}
		out := make([]fileSig, 0, len(paths))
		for _, path := range paths {
			out = append(out, fileSig{
				File:      path,
				Signature: analysis.ComputeSignature(files[path], analysis.SignatureOptions{}),
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "iolint:", err)
			return 2
		}
		return 0
	}
	for i, path := range paths {
		if i > 0 {
			fmt.Fprintln(stdout)
		}
		s := analysis.ComputeSignature(files[path], analysis.SignatureOptions{})
		fmt.Fprintf(stdout, "%s:\n%s", path, s.Format())
	}
	return 0
}
