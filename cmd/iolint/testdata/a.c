int main() {
    int i;
    char buf[256];
    int f = fopen("out.dat", "w");
    for (i = 0; i < 128; i++) {
        fwrite(buf, 1, 256, f);
    }
    fclose(f);
    return 0;
    fclose(f);
}
