int main() {
    hid_t f = H5Fcreate("out.h5", 0, 0, 0);
    int unused = 3;
    return 0;
}
