// Command tracereplay records and replays trace-based I/O kernels — the
// Skel-style alternative to source-based discovery the paper contrasts
// with in §V-B.
//
// Usage:
//
//	tracereplay record -workload vpic -o vpic.trace.json
//	tracereplay replay -i vpic.trace.json [-stripes 64] [-collective]
package main

import (
	"flag"
	"fmt"
	"os"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replayCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracereplay record|replay [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	name := fs.String("workload", "vpic", "workload to trace: vpic, hacc, flash, bdcats, macsio, ior")
	nodes := fs.Int("nodes", 4, "simulated nodes")
	ppn := fs.Int("ppn", 32, "processes per node")
	seed := fs.Int64("seed", 1, "simulation seed")
	out := fs.String("o", "", "output trace file (default stdout)")
	fs.Parse(args)

	c := cluster.CoriHaswell(*nodes, *ppn)
	w, err := workload.ByName(*name, c.Procs())
	if err != nil {
		fatal(err)
	}
	st, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), *seed)
	if err != nil {
		fatal(err)
	}
	trace, err := replay.Record(w, st)
	if err != nil {
		fatal(err)
	}
	blob, err := trace.Marshal()
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracereplay: recorded %d events at %d procs (%.1f simulated s)\n",
		len(trace.Events), trace.Nprocs, st.Sim.Now())
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
}

func replayCmd(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "trace file to replay")
	nodes := fs.Int("nodes", 4, "simulated nodes (must match the trace's scale)")
	ppn := fs.Int("ppn", 32, "processes per node")
	seed := fs.Int64("seed", 1, "simulation seed")
	stripes := fs.Int("stripes", 0, "striping_factor value index override")
	collective := fs.Bool("collective", false, "enable collective I/O")
	skipCompute := fs.Bool("skip-compute", false, "replay only the I/O phases")
	fs.Parse(args)

	if *in == "" {
		fatal(fmt.Errorf("replay needs -i trace.json"))
	}
	blob, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	trace, err := replay.Unmarshal(blob)
	if err != nil {
		fatal(err)
	}
	a := params.DefaultAssignment(params.Space())
	if *stripes > 0 {
		if err := a.SetIndex(params.StripingFactor, *stripes); err != nil {
			fatal(err)
		}
	}
	if *collective {
		a.SetIndex(params.CollectiveWrite, 1)
	}
	c := cluster.CoriHaswell(*nodes, *ppn)
	res, err := workload.Execute(&replay.Player{T: trace, SkipCompute: *skipCompute}, c, a.Settings(), *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d events: %.1f simulated s, perf %.0f MB/s (alpha %.2f)\n",
		len(trace.Events), res.Runtime, res.Perf, res.Alpha)
	fmt.Print(res.Report)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracereplay:", err)
	os.Exit(1)
}
