// Command iofixtures writes the built-in paper workloads' C sources to a
// directory, one <name>.c per workload. The fixtures feed script-level
// checks (scripts/ci.sh runs iolint over them) and give external tools a
// stable corpus of realistic HPC I/O programs without invoking the Go API.
//
// Usage:
//
//	iofixtures [-dir fixtures] [-procs 16]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"tunio/internal/workload"
)

// names lists every built-in workload with a C source, in the paper's
// presentation order (§IV, Table III).
var names = []string{"vpic", "hacc", "flash", "macsio", "bdcats"}

func main() {
	dir := flag.String("dir", "fixtures", "directory to write <name>.c files into (created if missing)")
	procs := flag.Int("procs", 16, "MPI process count baked into the sources")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		w, err := workload.ByName(name, *procs)
		if err != nil {
			fatal(err)
		}
		cw, ok := w.(workload.HasCSource)
		if !ok {
			fatal(fmt.Errorf("%s has no C source", name))
		}
		path := filepath.Join(*dir, name+".c")
		if err := os.WriteFile(path, []byte(cw.CSource()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println(path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iofixtures:", err)
	os.Exit(1)
}
