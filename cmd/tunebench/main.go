// Command tunebench regenerates the paper's tables and figures on the
// simulated stack.
//
// Usage:
//
//	tunebench                 # run every experiment at smoke scale
//	tunebench -fig 10         # one figure
//	tunebench -scale paper    # evaluation-sized runs (slower)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tunio/internal/experiments"
	"tunio/internal/servebench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2, 5, 8, 8c, 9, 10, 11, 12, slice, eval, train, drift, serve, all")
	scaleName := flag.String("scale", "smoke", "experiment scale: smoke or paper")
	seed := flag.Int64("seed", 7, "experiment seed")
	jsonPath := flag.String("json", "", "write the last requested figure's result as JSON to this file")
	flag.Parse()

	scale := experiments.Smoke
	switch *scaleName {
	case "smoke":
	case "paper":
		scale = experiments.Paper
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	cfg := experiments.Config{Scale: scale, Seed: *seed}

	type job struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	var fig11Cache *experiments.Fig11Result
	jobs := []job{
		{"1", func() (fmt.Stringer, error) { return experiments.Fig01(cfg), nil }},
		{"2", func() (fmt.Stringer, error) { r, err := experiments.Fig02(cfg); return r, err }},
		{"5", func() (fmt.Stringer, error) { r, err := experiments.Fig05(cfg); return r, err }},
		{"8", func() (fmt.Stringer, error) { r, err := experiments.Fig08(cfg); return r, err }},
		{"8c", func() (fmt.Stringer, error) { r, err := experiments.Fig08c(cfg); return r, err }},
		{"9", func() (fmt.Stringer, error) { r, err := experiments.Fig09(cfg); return r, err }},
		{"10", func() (fmt.Stringer, error) { r, err := experiments.Fig10(cfg); return r, err }},
		{"11", func() (fmt.Stringer, error) {
			r, err := experiments.Fig11(cfg)
			fig11Cache = r
			return r, err
		}},
		{"12", func() (fmt.Stringer, error) { r, err := experiments.Fig12(cfg, fig11Cache); return r, err }},
		{"slice", func() (fmt.Stringer, error) { r, err := experiments.SliceBench(cfg); return r, err }},
		{"eval", func() (fmt.Stringer, error) { r, err := experiments.EvalBench(cfg); return r, err }},
		{"train", func() (fmt.Stringer, error) { r, err := experiments.TrainBench(cfg); return r, err }},
		{"drift", func() (fmt.Stringer, error) { r, err := experiments.DriftBench(cfg); return r, err }},
		{"serve", func() (fmt.Stringer, error) { r, err := servebench.Run(cfg); return r, err }},
	}

	ran := 0
	var last fmt.Stringer
	for _, j := range jobs {
		if *fig != "all" && *fig != j.name {
			continue
		}
		ran++
		start := time.Now()
		res, err := j.run()
		if err != nil {
			fatal(fmt.Errorf("figure %s: %w", j.name, err))
		}
		last = res
		fmt.Println(res)
		fmt.Printf("[figure %s regenerated in %.1fs wall time]\n\n", j.name, time.Since(start).Seconds())
	}
	if ran == 0 {
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
	if *jsonPath != "" && last != nil {
		data, err := json.MarshalIndent(last, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tunebench:", err)
	os.Exit(1)
}
