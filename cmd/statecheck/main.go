// Command statecheck enforces the evaluation engine's no-global-state
// rule: packages whose types are shared across worker goroutines
// (internal/replay, internal/tuner) must not declare package-level
// mutable variables, because any such state would be invisible to the
// per-evaluator synchronization and would break the engine's
// order-independence proofs.
//
// Usage:
//
//	statecheck [-allow name1,name2] dir ...
//
// Blank identifiers (compile-time interface assertions) are exempt, as
// are names listed in -allow (append-once lookup tables that are never
// written after init). Exit code 1 when a violation is found, 2 on
// parse errors.
//
// The check is stdlib-only (go/parser + go/ast) by design: the
// repository has no external dependencies, so golang.org/x/tools'
// analysis framework is off the table.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	allow := flag.String("allow", "", "comma-separated package-level var names to permit")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: statecheck [-allow name1,name2] dir ...")
		os.Exit(2)
	}
	allowed := map[string]bool{}
	for _, name := range strings.Split(*allow, ",") {
		if name != "" {
			allowed[name] = true
		}
	}

	var violations []string
	fset := token.NewFileSet()
	for _, dir := range flag.Args() {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "statecheck:", err)
			os.Exit(2)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
			if err != nil {
				fmt.Fprintln(os.Stderr, "statecheck:", err)
				os.Exit(2)
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for _, ident := range vs.Names {
						if ident.Name == "_" || allowed[ident.Name] {
							continue
						}
						pos := fset.Position(ident.Pos())
						violations = append(violations, fmt.Sprintf(
							"%s:%d: package-level mutable state: var %s", pos.Filename, pos.Line, ident.Name))
					}
				}
			}
		}
	}
	sort.Strings(violations)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
}
