// Command iodiscover is the CLI for TunIO's Application I/O Discovery
// component: it converts application source code to its equivalent I/O
// kernel, which can then substitute for the application during the tuning
// pipeline's configuration evaluation phase (§III-E, "Use Case").
//
// Usage:
//
//	iodiscover [-loop-reduction 0.01] [-path-switch] [-keep fn1,fn2]
//	           [-heuristic] [-marked] [-sig [-json]] [-o kernel.c] input.c
//
// The exit code is 0 on success, 1 when the transform verifier reports an
// error-severity diagnostic (the kernel is still written, but at least one
// requested transform was refused as unsound), and 2 on usage or parse
// errors. Warning-severity diagnostics go to stderr and do not affect the
// exit code.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"tunio/internal/analysis"
	"tunio/internal/csrc"
	"tunio/internal/discovery"
)

func main() {
	loopReduction := flag.Float64("loop-reduction", 0, "keep this fraction of I/O-loop iterations (0 disables, paper uses 0.01)")
	pathSwitch := flag.Bool("path-switch", false, "rewrite file paths to /dev/shm (I/O path switching)")
	keep := flag.String("keep", "", "comma-separated function names to keep whole (manual keep regions)")
	simCompute := flag.Bool("simulate-compute", false, "replace removed compute with synthetic compute_flops calls")
	blindWrites := flag.Bool("remove-blind-writes", false, "drop writes overwritten before any read")
	heuristic := flag.Bool("heuristic", false, "slice with per-line fixpoint marking instead of CFG def-use chains (the pre-promotion default)")
	precise := flag.Bool("precise", false, "deprecated: precise slicing is the default; overrides -heuristic")
	showMarked := flag.Bool("marked", false, "print the marking report instead of the kernel")
	showSig := flag.Bool("sig", false, "print the kernel's symbolic I/O signature instead of the kernel")
	jsonOut := flag.Bool("json", false, "with -sig, emit the signature as JSON")
	out := flag.String("o", "", "write the kernel to this file (default stdout)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iodiscover [flags] input.c")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	opts := discovery.Options{
		LoopReduction:     *loopReduction,
		PathSwitch:        *pathSwitch,
		SimulateCompute:   *simCompute,
		RemoveBlindWrites: *blindWrites,
		Heuristic:         *heuristic,
		PreciseSlice:      *precise,
	}
	if *keep != "" {
		opts.KeepFuncs = strings.Split(*keep, ",")
	}

	kernel, err := discovery.Discover(string(src), opts)
	if err != nil {
		fatal(err)
	}

	if *showMarked {
		fmt.Printf("marked %d of %d formatted lines (%.1f%%)\n",
			len(kernel.MarkedLines), kernel.TotalLines,
			100*float64(len(kernel.MarkedLines))/float64(kernel.TotalLines))
		marked := map[int]bool{}
		for _, l := range kernel.MarkedLines {
			marked[l] = true
		}
		for i, line := range strings.Split(kernel.FormattedInput, "\n") {
			tag := "      "
			if marked[i+1] {
				tag = "KEEP  "
			}
			fmt.Printf("%s%4d  %s\n", tag, i+1, line)
		}
		return
	}

	if *showSig {
		f, err := csrc.Parse(kernel.Source)
		if err != nil {
			fatal(fmt.Errorf("re-parsing kernel: %w", err))
		}
		s := analysis.ComputeSignature(f, analysis.SignatureOptions{})
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(s); err != nil {
				fatal(err)
			}
		} else {
			fmt.Print(s.Format())
		}
		return
	}

	for _, w := range kernel.Warnings {
		fmt.Fprintf(os.Stderr, "iodiscover: %s\n", w)
	}
	if kernel.RemovedBlindWrites > 0 {
		fmt.Fprintf(os.Stderr, "iodiscover: removed %d blind write(s)\n", kernel.RemovedBlindWrites)
	}
	if kernel.SimulatedComputeCalls > 0 {
		fmt.Fprintf(os.Stderr, "iodiscover: inserted %d synthetic compute call(s)\n", kernel.SimulatedComputeCalls)
	}
	if kernel.ReducedLoops > 0 {
		fmt.Fprintf(os.Stderr, "iodiscover: reduced %d loop(s); scale I/O metrics by %.0fx\n",
			kernel.ReducedLoops, kernel.LoopScale)
	}
	if *out == "" {
		fmt.Print(kernel.Source)
	} else if err := os.WriteFile(*out, []byte(kernel.Source), 0o644); err != nil {
		fatal(err)
	}
	// An error-severity diagnostic means a requested transform was refused
	// as unsound: the kernel above is still valid (the transform was not
	// applied), but scripted pipelines must notice.
	if analysis.MaxSeverity(kernel.Warnings) >= analysis.SevError {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iodiscover:", err)
	os.Exit(1)
}
