// Command tuniotrain runs TunIO's offline training as a resumable staged
// pipeline: parameter sweep (scored by parallel trace replay) -> PCA
// impact analysis -> surrogate fit -> subset-picker Q-training ->
// early-stopper Q-training. Every stage writes a versioned, content-
// hashed artifact into the artifacts directory, so a killed run resumes
// from the last completed stage and reruns with unchanged inputs skip
// straight to the answer.
//
// Usage:
//
//	tuniotrain -artifacts dir                # full training run
//	tuniotrain -artifacts dir -resume        # reuse artifacts whose inputs match
//	tuniotrain -artifacts dir -until sweep   # stop after the sweep stage
//	tuniotrain -artifacts dir -store k.json  # share recorded kernels with tuniod
//
// The combined agent lands at dir/agent.json; serve it with
// `tuniod -artifacts dir` (or `tuniod -agent dir/agent.json`).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/replay"
	"tunio/internal/train"
)

func main() {
	artifacts := flag.String("artifacts", "", "directory for stage artifacts and the final agent.json (required)")
	resume := flag.Bool("resume", false, "reuse existing artifacts whose input hashes still match")
	until := flag.String("until", "", fmt.Sprintf("stop after this stage (one of %s)", strings.Join(train.Stages(), ", ")))
	seed := flag.Int64("seed", 1, "seed for the whole training run")
	workersN := flag.Int("workers", 0, "sweep replay workers (0 = GOMAXPROCS)")
	nodes := flag.Int("nodes", 4, "simulated nodes for the sweep kernels")
	ppn := flag.Int("procs-per-node", 32, "simulated processes per node")
	extraRandom := flag.Int("extra-random", 20, "random sweep configurations beyond the one-at-a-time runs")
	pickerEpochs := flag.Int("picker-epochs", 30, "max subset-picker training epochs")
	stopperEpochs := flag.Int("stopper-epochs", 40, "max early-stopper training epochs")
	horizon := flag.Int("horizon", 50, "tuning-iteration budget the stopper is trained for")
	storePath := flag.String("store", "", "kernel store file: loaded if present, saved after the sweep kernels are recorded")
	flag.Parse()

	if *artifacts == "" {
		fatal(fmt.Errorf("-artifacts is required"))
	}

	store := replay.NewKernelStore()
	if *storePath != "" {
		n, err := store.Load(*storePath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// first run: the store file appears after the sweep
		case err != nil:
			fatal(err)
		default:
			fmt.Fprintf(os.Stderr, "tuniotrain: kernel store: loaded %d kernels from %s\n", n, *storePath)
		}
	}

	c := cluster.CoriHaswell(*nodes, *ppn)
	cfg := train.Config{
		Cluster:         c,
		Kernels:         core.DefaultSweepKernels(c.Procs()),
		ExtraRandomRuns: *extraRandom,
		StopperEpochs:   *stopperEpochs,
		PickerEpochs:    *pickerEpochs,
		StopperHorizon:  *horizon,
		Seed:            *seed,
		Workers:         *workersN,
		Store:           store,
		ArtifactsDir:    *artifacts,
		Resume:          *resume,
		Until:           *until,
		Progress: func(r train.StageReport) {
			if r.Skipped {
				fmt.Fprintf(os.Stderr, "tuniotrain: %s: reused artifact\n", r.Stage)
				return
			}
			fmt.Fprintf(os.Stderr, "tuniotrain: %s: trained in %.2fs\n", r.Stage, r.Seconds)
		},
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := train.Run(ctx, cfg)
	if *storePath != "" && store.Len() > 0 {
		if n, serr := store.Save(*storePath); serr != nil {
			fmt.Fprintln(os.Stderr, "tuniotrain: kernel store:", serr)
		} else {
			fmt.Fprintf(os.Stderr, "tuniotrain: kernel store: saved %d kernels to %s\n", n, *storePath)
		}
	}
	if err != nil {
		fatal(err)
	}
	if res.Agent == nil {
		fmt.Fprintf(os.Stderr, "tuniotrain: stopped after stage %q (no agent written)\n", *until)
		return
	}
	fmt.Fprintf(os.Stderr, "tuniotrain: agent written to %s\n", train.AgentPath(*artifacts))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tuniotrain:", err)
	os.Exit(1)
}
