// Command tunio tunes a workload's I/O-stack configuration on the
// simulated Cori environment, with or without TunIO's AI components.
//
// Usage:
//
//	tunio -workload flash                     # full TunIO (RL stop + picker)
//	tunio -workload hacc -pipeline hstuner    # plain HSTuner baseline
//	tunio -workload bdcats -nodes 500 -ppn 4 -pipeline heuristic
//	tunio -workload vpic -train-out agent.json  # persist the trained agent
//	tunio -workload vpic -agent agent.json      # reuse a trained agent
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tunio"
	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/workload"
)

func main() {
	workloadName := flag.String("workload", "flash", "workload to tune: vpic, hacc, flash, bdcats, macsio")
	nodes := flag.Int("nodes", 4, "simulated nodes")
	ppn := flag.Int("ppn", 32, "processes per node")
	pipeline := flag.String("pipeline", "tunio", "pipeline: tunio, hstuner, heuristic")
	pop := flag.Int("pop", 16, "GA population size")
	iters := flag.Int("iters", 50, "maximum tuning generations")
	reps := flag.Int("reps", 3, "runs averaged per evaluation")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "evaluation workers; >= 1 selects the batch engine (staged trace replay), 0 the legacy serial path")
	noTrace := flag.Bool("notrace", false, "with -parallel, score by direct simulation instead of trace replay")
	agentIn := flag.String("agent", "", "load a trained agent from this JSON file")
	report := flag.Bool("report", false, "print the darshan I/O report of the best configuration")
	agentOut := flag.String("train-out", "", "save the trained agent to this JSON file")
	flag.Parse()

	var agent *tunio.TunIO
	switch {
	case *agentIn != "":
		blob, err := os.ReadFile(*agentIn)
		if err != nil {
			fatal(err)
		}
		agent = &tunio.TunIO{Stopper: &core.EarlyStopper{}, Picker: &core.SmartPicker{}}
		if err := json.Unmarshal(blob, agent); err != nil {
			fatal(fmt.Errorf("loading agent: %w", err))
		}
	case *pipeline == "tunio":
		fmt.Fprintln(os.Stderr, "tunio: training agents offline (sweep on VPIC/FLASH/HACC kernels + synthetic log curves)...")
		var err error
		agent, err = tunio.Train(tunio.TrainConfig{Seed: *seed, StopperHorizon: *iters})
		if err != nil {
			fatal(err)
		}
	}
	if agent != nil && *agentOut != "" {
		blob, err := json.Marshal(agent)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*agentOut, blob, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tunio: agent saved to %s\n", *agentOut)
	}

	opts := tunio.TuneOptions{
		Workload: *workloadName,
		Nodes:    *nodes, ProcsPerNode: *ppn,
		PopSize: *pop, MaxIterations: *iters, Reps: *reps,
		Seed: *seed, Parallelism: *parallel, NoTrace: *noTrace,
	}
	switch *pipeline {
	case "tunio":
		opts.Agent = agent
	case "heuristic":
		opts.Heuristic = true
	case "hstuner":
		// plain pipeline: no stopper, no picker
	default:
		fatal(fmt.Errorf("unknown pipeline %q", *pipeline))
	}

	fmt.Fprintf(os.Stderr, "tunio: tuning %s on %dx%d procs (%s pipeline)...\n",
		*workloadName, *nodes, *ppn, *pipeline)
	res, err := tunio.Tune(opts)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("iter  minutes  best MB/s   RoTI\n")
	for i, p := range res.Curve {
		fmt.Printf("%4d %8.1f %10.0f %6.1f\n", p.Iteration, p.TimeMinutes, p.BestPerf, res.Curve.RoTIAt(i))
	}
	fmt.Printf("\nstopped after iteration %d (early=%v), %d evaluations\n",
		res.StoppedAt, res.StoppedEarly, res.Evaluations)
	fmt.Printf("untuned: %.0f MB/s   tuned: %.0f MB/s   speedup: %.1fx\n",
		res.Curve.Baseline(), res.BestPerf, res.Curve.Speedup())
	fmt.Printf("tuning time: %.0f simulated minutes\n", res.Curve.TotalMinutes())
	fmt.Printf("best configuration:\n  %s\n", res.Best)
	fmt.Printf("changed from defaults: %v\n", res.Best.ChangedFromDefault())

	if *report {
		c := cluster.CoriHaswell(*nodes, *ppn)
		w, err := workload.ByName(*workloadName, c.Procs())
		if err != nil {
			fatal(err)
		}
		run, err := workload.Execute(w, c, res.Best.Settings(), *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\ndarshan report of the tuned run (%.1f simulated s):\n%s", run.Runtime, run.Report)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tunio:", err)
	os.Exit(1)
}
