// Command tuniod serves tuning-as-a-service: a multi-tenant HTTP server
// that runs tuning sessions over one shared tunio.Engine, so concurrent
// jobs share a bounded worker pool, the content-addressed kernel store,
// and the stage cache — a repeat kernel skips recording entirely and
// rides cached stage plans.
//
// Usage:
//
//	tuniod                         # listen on :8377, unbounded workers
//	tuniod -addr :0 -workers 8     # ephemeral port (printed), 8-worker budget
//	tuniod -quota 4                # at most 4 concurrent sessions per tenant
//	tuniod -agent agent.json       # serve pipeline=tunio with this trained agent
//	tuniod -artifacts dir          # serve the agent trained by `tuniotrain -artifacts dir`
//	tuniod -store kernels.json     # persist the kernel store across restarts
//	tuniod -pprof                  # expose /debug/pprof (contention profiling)
//
// Submit a job, stream its curve, read engine stats:
//
//	curl -s localhost:8377/v1/jobs -d '{"workload":"flash","seed":1}'
//	curl -N localhost:8377/v1/jobs/job-1/events
//	curl -s localhost:8377/v1/stats
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"tunio"
	"tunio/internal/core"
	"tunio/internal/replay"
	"tunio/internal/server"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	workers := flag.Int("workers", 0, "engine-wide evaluation budget shared by all sessions (0 = unbounded)")
	quota := flag.Int("quota", 0, "max concurrent sessions per tenant (0 = unlimited)")
	agentIn := flag.String("agent", "", "serve pipeline=tunio jobs with this trained agent JSON (default: train lazily on first use)")
	artifacts := flag.String("artifacts", "", "serve pipeline=tunio jobs with the agent from this tuniotrain artifacts directory")
	storePath := flag.String("store", "", "kernel store file: loaded at startup if present, saved on shutdown")
	trainSeed := flag.Int64("train-seed", 1, "seed for lazy agent training")
	pprofOn := flag.Bool("pprof", false, "expose /debug/pprof/* on the listen address (mutex + block profiling per the fraction/rate flags)")
	mutexFrac := flag.Int("mutex-profile-fraction", 1, "with -pprof: runtime.SetMutexProfileFraction value (0 disables mutex profiling)")
	blockRate := flag.Int("block-profile-rate", 0, "with -pprof: runtime.SetBlockProfileRate value in ns (0 disables block profiling)")
	flag.Parse()

	if *agentIn != "" && *artifacts != "" {
		fatal(fmt.Errorf("-agent and -artifacts are mutually exclusive"))
	}
	var agent *tunio.TunIO
	if *agentIn != "" {
		blob, err := os.ReadFile(*agentIn)
		if err != nil {
			fatal(err)
		}
		agent = &tunio.TunIO{Stopper: &core.EarlyStopper{}, Picker: &core.SmartPicker{}}
		if err := json.Unmarshal(blob, agent); err != nil {
			fatal(fmt.Errorf("loading agent: %w", err))
		}
	}
	if *artifacts != "" {
		var err error
		if agent, err = tunio.LoadAgentArtifacts(*artifacts); err != nil {
			fatal(fmt.Errorf("loading agent artifacts: %w", err))
		}
	}

	store := replay.NewKernelStore()
	if *storePath != "" {
		n, err := store.Load(*storePath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// first boot: the store file appears at shutdown
		case err != nil:
			fatal(err)
		default:
			fmt.Fprintf(os.Stderr, "tuniod: kernel store: loaded %d kernels from %s\n", n, *storePath)
		}
	}

	engine := tunio.NewEngine(tunio.EngineOptions{Workers: *workers, TenantQuota: *quota, KernelStore: store})
	handler, err := server.New(server.Options{
		Engine:    engine,
		Agent:     agent,
		TrainSeed: *trainSeed,
	})
	if err != nil {
		fatal(err)
	}

	// The API handler owns the whole path space, so pprof needs its own
	// mux in front: /debug/pprof/* is answered locally, everything else
	// falls through to the API. Mutex/block profiling is sampled only
	// when asked — both have a (small) steady-state cost.
	var root http.Handler = handler
	if *pprofOn {
		runtime.SetMutexProfileFraction(*mutexFrac)
		runtime.SetBlockProfileRate(*blockRate)
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		root = mux
		fmt.Fprintf(os.Stderr, "tuniod: pprof enabled (mutex fraction %d, block rate %d)\n", *mutexFrac, *blockRate)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Announce the bound address (not the requested one) so callers that
	// asked for :0 can discover the port.
	fmt.Fprintf(os.Stderr, "tuniod: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: root}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			saveStore(store, *storePath)
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "tuniod: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}
	saveStore(store, *storePath)
}

// saveStore persists the kernel store so the next boot serves recorded
// kernels without rerunning them. A best-effort operation: a failed save
// costs re-recording, not correctness.
func saveStore(store *replay.KernelStore, path string) {
	if path == "" {
		return
	}
	n, err := store.Save(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tuniod: kernel store:", err)
		return
	}
	fmt.Fprintf(os.Stderr, "tuniod: kernel store: saved %d kernels to %s\n", n, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tuniod:", err)
	os.Exit(1)
}
