// Command tuniod serves tuning-as-a-service: a multi-tenant HTTP server
// that runs tuning sessions over one shared tunio.Engine, so concurrent
// jobs share a bounded worker pool, the content-addressed kernel store,
// and the stage cache — a repeat kernel skips recording entirely and
// rides cached stage plans.
//
// Usage:
//
//	tuniod                         # listen on :8377, unbounded workers
//	tuniod -addr :0 -workers 8     # ephemeral port (printed), 8-worker budget
//	tuniod -quota 4                # at most 4 concurrent sessions per tenant
//	tuniod -agent agent.json       # serve pipeline=tunio with this trained agent
//
// Submit a job, stream its curve, read engine stats:
//
//	curl -s localhost:8377/v1/jobs -d '{"workload":"flash","seed":1}'
//	curl -N localhost:8377/v1/jobs/job-1/events
//	curl -s localhost:8377/v1/stats
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tunio"
	"tunio/internal/core"
	"tunio/internal/server"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	workers := flag.Int("workers", 0, "engine-wide evaluation budget shared by all sessions (0 = unbounded)")
	quota := flag.Int("quota", 0, "max concurrent sessions per tenant (0 = unlimited)")
	agentIn := flag.String("agent", "", "serve pipeline=tunio jobs with this trained agent JSON (default: train lazily on first use)")
	trainSeed := flag.Int64("train-seed", 1, "seed for lazy agent training")
	flag.Parse()

	var agent *tunio.TunIO
	if *agentIn != "" {
		blob, err := os.ReadFile(*agentIn)
		if err != nil {
			fatal(err)
		}
		agent = &tunio.TunIO{Stopper: &core.EarlyStopper{}, Picker: &core.SmartPicker{}}
		if err := json.Unmarshal(blob, agent); err != nil {
			fatal(fmt.Errorf("loading agent: %w", err))
		}
	}

	engine := tunio.NewEngine(tunio.EngineOptions{Workers: *workers, TenantQuota: *quota})
	handler, err := server.New(server.Options{
		Engine:    engine,
		Agent:     agent,
		TrainSeed: *trainSeed,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Announce the bound address (not the requested one) so callers that
	// asked for :0 can discover the port.
	fmt.Fprintf(os.Stderr, "tuniod: listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "tuniod: shutting down")
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutCtx)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tuniod:", err)
	os.Exit(1)
}
