// Command benchjson flattens a benchmark-result JSON document (any of
// the BENCH_*.json files bench.sh writes) into sorted "path value"
// lines, one scalar per line:
//
//	workloads[macsio].sharded.jobs_per_sec 117.88
//	sessions 8
//
// Array elements are keyed by their "workload" field when they have one
// (so rows align across runs regardless of order) and by index
// otherwise. scripts/benchcmp.sh diffs two flattened dumps field by
// field with awk.
//
// Usage: benchjson file.json  (or on stdin with no argument)
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

func main() {
	var data []byte
	var err error
	switch len(os.Args) {
	case 1:
		data, err = io.ReadAll(os.Stdin)
	case 2:
		data, err = os.ReadFile(os.Args[1])
	default:
		fmt.Fprintln(os.Stderr, "usage: benchjson [file.json]")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		fatal(err)
	}
	var lines []string
	flatten("", doc, &lines)
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}

func flatten(path string, v any, out *[]string) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := k
			if path != "" {
				p = path + "." + k
			}
			flatten(p, x[k], out)
		}
	case []any:
		for i, e := range x {
			key := strconv.Itoa(i)
			if m, ok := e.(map[string]any); ok {
				if w, ok := m["workload"].(string); ok {
					key = w
				}
			}
			flatten(path+"["+key+"]", e, out)
		}
	case float64:
		*out = append(*out, fmt.Sprintf("%s %s", path, strconv.FormatFloat(x, 'g', -1, 64)))
	case string:
		*out = append(*out, fmt.Sprintf("%s %q", path, x))
	case bool:
		*out = append(*out, fmt.Sprintf("%s %v", path, x))
	case nil:
		*out = append(*out, path+" null")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
