package tunio_test

import (
	"fmt"
	"strings"

	"tunio"
)

// ExampleDiscoverIO reduces a small application to its I/O kernel: compute
// statements disappear while the I/O calls, their dependents, and their
// contextual parents survive.
func ExampleDiscoverIO() {
	src := `
int main() {
    double t = 0.0;
    double energy = 0.0;
    hid_t f = H5Fcreate("/scratch/demo.h5", 0, 0, 0);
    for (int step = 0; step < 4; step++) {
        t = t + 0.5;
        energy = t * t;
        H5Fclose(f);
        break;
    }
    return 0;
}
`
	kernel, err := tunio.DiscoverIO(src, tunio.DiscoveryOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("kept", len(kernel.MarkedLines), "of", kernel.TotalLines, "lines")
	fmt.Println("has H5Fcreate:", strings.Contains(kernel.Source, "H5Fcreate"))
	fmt.Println("has energy:", strings.Contains(kernel.Source, "energy"))
	// Output:
	// kept 7 of 15 lines
	// has H5Fcreate: true
	// has energy: false
}

// ExampleParameterSpace lists the tuned parameters of the paper's
// 12-parameter evaluation space.
func ExampleParameterSpace() {
	space := tunio.ParameterSpace()
	fmt.Println(len(space), "parameters")
	for _, p := range space[:3] {
		fmt.Printf("%s (%s, %d values)\n", p.Name, p.Layer, len(p.Values))
	}
	// Output:
	// 12 parameters
	// sieve_buf_size (hdf5, 8 values)
	// chunk_cache (hdf5, 10 values)
	// alignment (hdf5, 8 values)
}
