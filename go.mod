module tunio

go 1.22
