package tunio

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// onlineSpec is a small online flash session on a machine that turns
// hostile at t=25 (half OST bandwidth, tripled contention).
func onlineSpec(seed int64) JobSpec {
	return JobSpec{
		Workload: "flash",
		Nodes:    2, ProcsPerNode: 8,
		Reps: 1, Seed: seed, Parallelism: 2,
		Drift: &Drift{Seed: 9, Regimes: []Regime{
			{Start: 25, OSTLoad: 0.5, NICLoad: 0.3, Contention: 3},
		}},
		Online: &OnlineSpec{
			Windows: 12, WindowGap: 10,
			Neighbors: 4, Rounds: 2, InitRounds: 3,
			Prune: true,
		},
	}
}

// An online session runs its windows, re-tunes through the regime
// change, streams every event, and reproduces bit for bit across
// sessions (the second adopting the first's trace from the store).
func TestEngineOnlineSession(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	e := NewEngine(EngineOptions{})

	run, err := e.Tune(ctx, onlineSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.Wait()
	if err != nil {
		t.Fatal(err)
	}
	dres, ok := run.Drift()
	if !ok {
		t.Fatal("online run has no DriftResult")
	}
	if len(dres.Windows) != 12 {
		t.Fatalf("ran %d windows, want 12", len(dres.Windows))
	}
	if len(dres.Retunes) == 0 {
		t.Fatal("controller never re-tuned through the regime change")
	}
	if dres.PrunedEvals == 0 {
		t.Fatal("pruning enabled but no evaluation was pruned")
	}
	if res.Best == nil || res.BestPerf != dres.MeanPerf {
		t.Fatalf("synthesized result %+v diverges from drift result", res)
	}
	if got := len(run.Points(0)); got != 12 {
		t.Fatalf("synthesized %d curve points, want 12", got)
	}

	// The event stream replays the full history: one window event per
	// window, one retune event per logged re-tune, in order.
	var wins, rets int
	for ev := range run.OnlineEvents(ctx) {
		switch {
		case ev.Window != nil:
			if ev.Window.Window != wins {
				t.Fatalf("window events out of order: got %d at position %d", ev.Window.Window, wins)
			}
			wins++
		case ev.Retune != nil:
			if !reflect.DeepEqual(*ev.Retune, dres.Retunes[rets]) {
				t.Fatalf("streamed retune %d = %+v, logged %+v", rets, *ev.Retune, dres.Retunes[rets])
			}
			rets++
		default:
			t.Fatal("empty online event")
		}
	}
	if wins != 12 || rets != len(dres.Retunes) {
		t.Fatalf("streamed %d windows / %d retunes, want 12 / %d", wins, rets, len(dres.Retunes))
	}

	// Same spec on the same engine: the kernel store serves the trace and
	// the window series reproduces bit for bit.
	run2, err := e.Tune(ctx, onlineSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := run2.Wait(); err != nil {
		t.Fatal(err)
	}
	dres2, _ := run2.Drift()
	if !reflect.DeepEqual(dres.Windows, dres2.Windows) {
		t.Fatal("repeat online session diverged")
	}
	if e.Stats().Kernels.Hits == 0 {
		t.Fatal("second session did not hit the kernel store")
	}
}

// Submission-time validation of the online surface.
func TestEngineOnlineValidation(t *testing.T) {
	e := NewEngine(EngineOptions{})

	bad := onlineSpec(1)
	bad.NoTrace = true
	if _, err := e.Tune(context.Background(), bad); err == nil {
		t.Fatal("NoTrace online session accepted")
	}

	bad = onlineSpec(1)
	bad.Drift = &Drift{Regimes: []Regime{{Start: -1}}}
	if _, err := e.Tune(context.Background(), bad); err == nil {
		t.Fatal("invalid drift schedule accepted")
	}
}

// A one-shot (non-online) session accepts a drift schedule too: it
// tunes the machine as of epoch 0 and must stay bit-identical to a
// drift-free run when the schedule only bites later.
func TestEngineOneShotWithLateDrift(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	spec := sharedSpec(3)
	plain, err := NewEngine(EngineOptions{}).Tune(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Drift = &Drift{Regimes: []Regime{{Start: 1e12, OSTLoad: 0.5}}}
	drifted, err := NewEngine(EngineOptions{}).Tune(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Wait()
	if err != nil {
		t.Fatal(err)
	}
	rd, err := drifted.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rp.Curve, rd.Curve) {
		t.Fatal("a schedule starting beyond the horizon changed the curve")
	}
}
