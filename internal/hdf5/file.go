package hdf5

import (
	"fmt"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
	"tunio/internal/mpiio"
)

// metaItemSize is the modeled size of one metadata item (object header
// chunk, B-tree node fragment, heap entry).
const metaItemSize = 512

// superblockBytes is the metadata written when a file is created.
const superblockBytes = 2048

// Tracer observes library operations; trace-based kernel generation
// (internal/replay) attaches one to record a run's I/O phases.
type Tracer interface {
	OnCreateFile(name string)
	OnOpenFile(name string)
	OnCloseFile(name string)
	OnCreateDataset(file, name string, space Space, chunk []int64)
	OnOpenDataset(file, name string)
	OnCreateGroup(file, name string)
	// OnAttribute reports attribute metadata attached to an object in the
	// file; bytes is the rounded-up metadata footprint.
	OnAttribute(file, name string, bytes int64)
	OnTransfer(file, dataset string, slabs []Slab, isWrite bool)
}

// Library is the HDF5-like library instance bound to one simulation.
type Library struct {
	sim     *cluster.Sim
	backend func(path string) ioreq.Backend
	hints   mpiio.Hints
	cfg     Config
	nprocs  int
	files   map[string]*File
	tracer  Tracer
}

// SetTracer installs (or with nil removes) an operation tracer.
func (l *Library) SetTracer(t Tracer) { l.tracer = t }

// NewLibrary builds a library. backend resolves a path to its storage
// target (so /dev/shm paths route to the memory backend); hints configure
// the MPI-IO layer; nprocs is the size of the simulated communicator.
func NewLibrary(sim *cluster.Sim, backend func(path string) ioreq.Backend, hints mpiio.Hints, cfg Config, nprocs int) (*Library, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backend == nil {
		return nil, fmt.Errorf("hdf5: nil backend resolver")
	}
	if nprocs <= 0 {
		return nil, fmt.Errorf("hdf5: nprocs must be positive, got %d", nprocs)
	}
	return &Library{
		sim:     sim,
		backend: backend,
		hints:   hints,
		cfg:     cfg,
		nprocs:  nprocs,
		files:   make(map[string]*File),
	}, nil
}

// Rebind reconfigures the library in place for a fresh run: new hints
// and config, an emptied file namespace, no tracer. Equivalent to
// NewLibrary over the same simulation, backend resolver, and nprocs, but
// reuses the library allocation and its map — the steady-state path of a
// pooled evaluation stack.
func (l *Library) Rebind(hints mpiio.Hints, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	l.hints = hints
	l.cfg = cfg
	l.tracer = nil
	clear(l.files)
	return nil
}

// Config returns the library configuration.
func (l *Library) Config() Config { return l.cfg }

// Nprocs returns the communicator size.
func (l *Library) Nprocs() int { return l.nprocs }

// Sim returns the simulation context.
func (l *Library) Sim() *cluster.Sim { return l.sim }

// Backend resolves the storage backend serving a path (exposed for the
// staged replay engine, which opens MPI-IO handles outside the library).
func (l *Library) Backend(path string) ioreq.Backend { return l.backend(path) }

// Hints returns the MPI-IO hints the library opens files with.
func (l *Library) Hints() mpiio.Hints { return l.hints }

// File is an open HDF5 file.
type File struct {
	lib    *Library
	name   string
	mpf    *mpiio.File
	eof    int64 // allocator high-water mark
	closed bool

	datasets map[string]*Dataset

	// metadata model
	metaPendingBytes int64 // dirty metadata awaiting flush
	metaPendingItems int64
	cache            *ChunkCache
	groups           map[string]bool

	// reusable extent buffers for transfer and metadata phases
	extBuf  []ioreq.Extent
	metaBuf []ioreq.Extent
}

// CreateFile creates (truncates) a file; collective across the communicator.
func (l *Library) CreateFile(name string) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("hdf5: empty file name")
	}
	mpf, err := mpiio.Open(l.sim, l.backend(name), name, l.nprocs, l.hints)
	if err != nil {
		return nil, err
	}
	f := &File{
		lib:      l,
		name:     name,
		mpf:      mpf,
		datasets: make(map[string]*Dataset),
		cache:    newChunkCache(l.cfg.ChunkCacheBytes),
	}
	f.addMetadata(superblockBytes) // superblock + root group header
	l.files[name] = f
	if l.tracer != nil {
		l.tracer.OnCreateFile(name)
	}
	return f, nil
}

// OpenFile opens an existing file created in this simulation.
func (l *Library) OpenFile(name string) (*File, error) {
	prev, ok := l.files[name]
	if !ok {
		return nil, fmt.Errorf("hdf5: open %s: no such file", name)
	}
	mpf, err := mpiio.Open(l.sim, l.backend(name), name, l.nprocs, l.hints)
	if err != nil {
		return nil, err
	}
	f := &File{
		lib:      l,
		name:     name,
		mpf:      mpf,
		eof:      prev.eof,
		datasets: prev.datasets,
		cache:    newChunkCache(l.cfg.ChunkCacheBytes),
	}
	f.metaRead(OpenFileMetaItems) // superblock + root group
	l.files[name] = f
	if l.tracer != nil {
		l.tracer.OnOpenFile(name)
	}
	return f, nil
}

// Name returns the file path.
func (f *File) Name() string { return f.name }

// EOF returns the allocator high-water mark (the file's allocated size).
func (f *File) EOF() int64 { return f.eof }

// allocate reserves size bytes, honoring the alignment policy, and returns
// the offset.
func (f *File) allocate(size int64) int64 {
	off := f.lib.cfg.align(f.eof, size)
	f.eof = off + size
	return off
}

// allocateMeta reserves metadata space; metadata is never aligned.
func (f *File) allocateMeta(size int64) int64 {
	off := f.eof
	f.eof = off + size
	return off
}

// addMetadata records newly created dirty metadata.
func (f *File) addMetadata(bytes int64) {
	f.metaPendingBytes += bytes
	f.metaPendingItems += MetaItemsFor(bytes)
}

// metaRead charges the cost of reading items metadata items from the file.
// Without collective metadata ops every rank issues the reads; with them a
// single rank reads and broadcasts.
func (f *File) metaRead(items int64) {
	if items <= 0 {
		return
	}
	cfg := f.lib.cfg
	// one representative reader per node without collective metadata
	// (clients on a node share the Lustre client cache), still a metadata
	// read storm at scale
	extents := MetaReadExtents(cfg.CollMetadataOps, f.lib.nprocs, f.lib.sim.Cluster.ProcsPerNode, items, f.metaBuf[:0])
	f.metaBuf = extents[:0]
	elapsed, err := f.mpf.ReadIndependent(extents)
	if err != nil {
		panic("hdf5: metaRead: " + err.Error())
	}
	f.lib.sim.Report.AddMeta("hdf5", items, elapsed)
}

// metaTouch charges repeated metadata accesses (chunk index walks, object
// header revisits) through the metadata cache: only misses reach storage.
func (f *File) metaTouch(items int64) {
	if items <= 0 {
		return
	}
	misses := MetaMisses(items, f.lib.cfg.MDC.HitRate(), f.lib.sim.Rand().Float64())
	if misses > 0 {
		f.metaRead(misses)
	}
}

// flushMetadata writes pending dirty metadata. With collective metadata
// writes the items are aggregated into MetaBlockSize blocks written in one
// phase; without, each dirty item is its own small write.
func (f *File) flushMetadata() {
	if f.metaPendingBytes == 0 {
		return
	}
	cfg := f.lib.cfg
	off := f.allocateMeta(f.metaPendingBytes)
	requests := MetaFlushRequests(cfg.CollMetadataWrite, cfg.MetaBlockSize, f.metaPendingBytes, f.metaPendingItems)
	ext := []ioreq.Extent{{Offset: off, Size: f.metaPendingBytes, Rank: 0, Count: requests}}
	elapsed, err := f.mpf.WriteIndependent(ext)
	if err != nil {
		panic("hdf5: flushMetadata: " + err.Error())
	}
	f.lib.sim.Report.AddMeta("hdf5", f.metaPendingItems, elapsed)
	f.metaPendingBytes = 0
	f.metaPendingItems = 0
}

// Close flushes metadata and the chunk cache and closes the file.
func (f *File) Close() error {
	if f.closed {
		return fmt.Errorf("hdf5: close %s: already closed", f.name)
	}
	f.flushMetadata()
	f.lib.sim.Barrier(f.lib.nprocs)
	f.closed = true
	if f.lib.tracer != nil {
		f.lib.tracer.OnCloseFile(f.name)
	}
	return nil
}

// writePhase routes raw-data write extents through MPI-IO per the hints.
func (f *File) writePhase(extents []ioreq.Extent) (float64, error) {
	if f.closed {
		return 0, fmt.Errorf("hdf5: write to closed file %s", f.name)
	}
	if f.lib.hints.CollectiveWrite {
		return f.mpf.WriteAll(extents)
	}
	return f.mpf.WriteIndependent(extents)
}

// readPhase routes raw-data read extents through MPI-IO per the hints.
func (f *File) readPhase(extents []ioreq.Extent) (float64, error) {
	if f.closed {
		return 0, fmt.Errorf("hdf5: read from closed file %s", f.name)
	}
	if f.lib.hints.CollectiveRead {
		return f.mpf.ReadAll(extents)
	}
	return f.mpf.ReadIndependent(extents)
}

// groupHeaderBytes is the metadata created per group.
const groupHeaderBytes = 512

// attributeHeaderBytes is the minimum metadata footprint of an attribute.
const attributeHeaderBytes = 256

// CreateGroup creates a group (pure metadata: an object header plus a link
// entry in the parent). Collective; charged to the metadata model.
func (f *File) CreateGroup(name string) error {
	if f.closed {
		return fmt.Errorf("hdf5: create group on closed file %s", f.name)
	}
	if name == "" {
		return fmt.Errorf("hdf5: empty group name")
	}
	if f.groups == nil {
		f.groups = make(map[string]bool)
	}
	if f.groups[name] {
		return fmt.Errorf("hdf5: group %s already exists in %s", name, f.name)
	}
	f.groups[name] = true
	f.addMetadata(groupHeaderBytes)
	if f.lib.tracer != nil {
		f.lib.tracer.OnCreateGroup(f.name, name)
	}
	return nil
}

// HasGroup reports whether the group exists.
func (f *File) HasGroup(name string) bool { return f.groups[name] }

// WriteAttribute attaches an attribute of the given payload size to the
// file's root object. Attributes live in object-header metadata; sizes
// below the header minimum are rounded up.
func (f *File) WriteAttribute(name string, size int64) error {
	if f.closed {
		return fmt.Errorf("hdf5: attribute on closed file %s", f.name)
	}
	if name == "" {
		return fmt.Errorf("hdf5: empty attribute name")
	}
	if size < attributeHeaderBytes {
		size = attributeHeaderBytes
	}
	f.addMetadata(size)
	if f.lib.tracer != nil {
		f.lib.tracer.OnAttribute(f.name, name, size)
	}
	return nil
}
