package hdf5

import (
	"testing"
	"testing/quick"
)

func mustSpace(t *testing.T, dims []int64, elem int64) Space {
	t.Helper()
	s, err := NewSpace(dims, elem)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(nil, 8); err == nil {
		t.Fatal("no dims: want error")
	}
	if _, err := NewSpace([]int64{4, 0}, 8); err == nil {
		t.Fatal("zero dim: want error")
	}
	if _, err := NewSpace([]int64{4}, 0); err == nil {
		t.Fatal("zero elem: want error")
	}
}

func TestSpaceTotals(t *testing.T) {
	s := mustSpace(t, []int64{4, 8}, 8)
	if s.Elements() != 32 || s.TotalBytes() != 256 {
		t.Fatalf("Elements=%d TotalBytes=%d", s.Elements(), s.TotalBytes())
	}
}

func TestValidateSlab(t *testing.T) {
	s := mustSpace(t, []int64{4, 8}, 8)
	good := Slab{Start: []int64{1, 2}, Count: []int64{2, 4}}
	if err := s.ValidateSlab(good); err != nil {
		t.Fatal(err)
	}
	bad := []Slab{
		{Start: []int64{1}, Count: []int64{2}},             // wrong rank
		{Start: []int64{-1, 0}, Count: []int64{1, 1}},      // negative start
		{Start: []int64{0, 0}, Count: []int64{0, 1}},       // zero count
		{Start: []int64{3, 0}, Count: []int64{2, 1}},       // overflow dim 0
		{Start: []int64{0, 6}, Count: []int64{1, 3}},       // overflow dim 1
		{Start: []int64{0, 0, 0}, Count: []int64{1, 1, 1}}, // extra dims
		{Start: []int64{0, 0}, Count: []int64{1}},          // count rank short
	}
	for i, sl := range bad {
		if err := s.ValidateSlab(sl); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestSlabBytes(t *testing.T) {
	s := mustSpace(t, []int64{4, 8}, 8)
	sl := Slab{Start: []int64{0, 0}, Count: []int64{2, 3}}
	if got := s.SlabBytes(sl); got != 48 {
		t.Fatalf("SlabBytes = %d, want 48", got)
	}
}

func TestGeometryFullRows(t *testing.T) {
	// Selecting 2 full rows of a 4x8 space is one contiguous run.
	s := mustSpace(t, []int64{4, 8}, 8)
	g := s.Geometry(Slab{Start: []int64{1, 0}, Count: []int64{2, 8}})
	if g.NSegments != 1 || g.SegBytes != 2*8*8 || g.FirstByte != 8*8 {
		t.Fatalf("geometry = %+v", g)
	}
}

func TestGeometryStridedColumns(t *testing.T) {
	// Selecting columns 2..5 of every row: 4 segments of 4 elements.
	s := mustSpace(t, []int64{4, 8}, 8)
	g := s.Geometry(Slab{Start: []int64{0, 2}, Count: []int64{4, 4}})
	if g.NSegments != 4 || g.SegBytes != 4*8 {
		t.Fatalf("geometry = %+v", g)
	}
	if g.FirstByte != 2*8 {
		t.Fatalf("FirstByte = %d", g.FirstByte)
	}
	// span: first elem (0,2)=idx2; last elem (3,5)=idx 29 -> span (29-2+1)*8
	if g.SpanBytes != 28*8 {
		t.Fatalf("SpanBytes = %d", g.SpanBytes)
	}
}

func TestGeometry3D(t *testing.T) {
	// 8x8x8 space, slab 2x4x8 (full innermost): segments = 2 (outer),
	// each 4*8 elements.
	s := mustSpace(t, []int64{8, 8, 8}, 4)
	g := s.Geometry(Slab{Start: []int64{0, 4, 0}, Count: []int64{2, 4, 8}})
	if g.NSegments != 2 || g.SegBytes != 4*8*4 {
		t.Fatalf("geometry = %+v", g)
	}
}

func TestGeometryWholeSpace(t *testing.T) {
	s := mustSpace(t, []int64{4, 8}, 8)
	g := s.Geometry(Slab{Start: []int64{0, 0}, Count: []int64{4, 8}})
	if g.NSegments != 1 || g.SegBytes != s.TotalBytes() || g.FirstByte != 0 {
		t.Fatalf("geometry = %+v", g)
	}
}

func TestForEachSegmentMatchesGeometry(t *testing.T) {
	s := mustSpace(t, []int64{6, 5, 7}, 8)
	sl := Slab{Start: []int64{1, 1, 2}, Count: []int64{3, 2, 4}}
	g := s.Geometry(sl)
	var n, total int64
	last := int64(-1)
	s.ForEachSegment(sl, func(off, size int64) bool {
		if size != g.SegBytes {
			t.Fatalf("segment size %d, want %d", size, g.SegBytes)
		}
		if off <= last {
			t.Fatalf("segments not increasing: %d after %d", off, last)
		}
		last = off
		n++
		total += size
		return true
	})
	if n != g.NSegments {
		t.Fatalf("segments = %d, want %d", n, g.NSegments)
	}
	if total != s.SlabBytes(sl) {
		t.Fatalf("segment bytes %d, want %d", total, s.SlabBytes(sl))
	}
}

func TestForEachSegmentEarlyStop(t *testing.T) {
	s := mustSpace(t, []int64{4, 4}, 8)
	sl := Slab{Start: []int64{0, 0}, Count: []int64{4, 2}}
	count := 0
	s.ForEachSegment(sl, func(off, size int64) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop: visited %d", count)
	}
}

func TestSegmentBytesPropertyRandomSlabs(t *testing.T) {
	s := mustSpace(t, []int64{5, 6, 7}, 4)
	f := func(a, b, c, x, y, z uint8) bool {
		start := []int64{int64(a % 5), int64(b % 6), int64(c % 7)}
		count := []int64{
			1 + int64(x)%(5-start[0]),
			1 + int64(y)%(6-start[1]),
			1 + int64(z)%(7-start[2]),
		}
		sl := Slab{Start: start, Count: count}
		if err := s.ValidateSlab(sl); err != nil {
			return false
		}
		var total int64
		seen := make(map[int64]bool)
		overlap := false
		s.ForEachSegment(sl, func(off, size int64) bool {
			total += size
			for b := off; b < off+size; b += 4 {
				if seen[b] {
					overlap = true
				}
				seen[b] = true
			}
			return true
		})
		return !overlap && total == s.SlabBytes(sl)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIntersect(t *testing.T) {
	s := mustSpace(t, []int64{8, 8}, 8)
	sl := Slab{Rank: 3, Start: []int64{2, 2}, Count: []int64{4, 4}}
	inter, ok := s.intersect(sl, []int64{4, 0}, []int64{4, 4})
	if !ok {
		t.Fatal("want intersection")
	}
	if inter.Start[0] != 4 || inter.Count[0] != 2 || inter.Start[1] != 2 || inter.Count[1] != 2 {
		t.Fatalf("intersect = %+v", inter)
	}
	if inter.Rank != 3 {
		t.Fatal("rank lost")
	}
	if _, ok := s.intersect(sl, []int64{6, 6}, []int64{2, 2}); ok {
		t.Fatal("disjoint boxes must not intersect")
	}
}
