package hdf5

import (
	"fmt"
)

// maxExtentsPerSlab bounds how many extents one slab materializes; beyond
// it, segments are grouped into representative extents carrying sub-request
// counts. This keeps evaluation cost bounded without losing request-count
// fidelity.
const maxExtentsPerSlab = 64

// objectHeaderBytes is the metadata created per dataset.
const objectHeaderBytes = 1024

// Dataset is an HDF5 dataset, contiguous or chunked.
type Dataset struct {
	f     *File
	name  string
	space Space

	// contiguous layout
	dataOffset int64

	// chunked layout: the planner owns the chunk grid, per-chunk
	// allocation map, and write history (shared with internal/replay).
	cp *ChunkPlanner
}

// CreateDataset creates a dataset. chunkDims nil selects contiguous layout
// (allocated eagerly, like HDF5 with early allocation in parallel mode);
// otherwise the dataset is chunked and chunks allocate lazily on first
// write. Creation is collective.
func (f *File) CreateDataset(name string, space Space, chunkDims []int64) (*Dataset, error) {
	if f.closed {
		return nil, fmt.Errorf("hdf5: create dataset on closed file %s", f.name)
	}
	if name == "" {
		return nil, fmt.Errorf("hdf5: empty dataset name")
	}
	if _, dup := f.datasets[name]; dup {
		return nil, fmt.Errorf("hdf5: dataset %s already exists in %s", name, f.name)
	}
	d := &Dataset{f: f, name: name, space: space}
	if chunkDims != nil {
		cp, err := NewChunkPlanner(name, space, chunkDims)
		if err != nil {
			return nil, err
		}
		d.cp = cp
	} else {
		d.dataOffset = f.allocate(space.TotalBytes())
	}
	f.addMetadata(objectHeaderBytes)
	f.datasets[name] = d
	if f.lib.tracer != nil {
		f.lib.tracer.OnCreateDataset(f.name, name, space, chunkDims)
	}
	return d, nil
}

// OpenDataset opens an existing dataset, charging metadata reads.
func (f *File) OpenDataset(name string) (*Dataset, error) {
	if f.closed {
		return nil, fmt.Errorf("hdf5: open dataset on closed file %s", f.name)
	}
	d, ok := f.datasets[name]
	if !ok {
		return nil, fmt.Errorf("hdf5: dataset %s not found in %s", name, f.name)
	}
	f.metaRead(OpenDatasetMetaItems)
	d.f = f // rebind to the current open handle
	if f.lib.tracer != nil {
		f.lib.tracer.OnOpenDataset(f.name, name)
	}
	return d, nil
}

// Space returns the dataset's dataspace.
func (d *Dataset) Space() Space { return d.space }

// Chunked reports whether the dataset uses chunked layout.
func (d *Dataset) Chunked() bool { return d.cp != nil }

// ChunkBytes returns the chunk size in bytes (0 for contiguous layout).
func (d *Dataset) ChunkBytes() int64 {
	if d.cp == nil {
		return 0
	}
	return d.cp.ChunkBytes()
}

// Write services one collective write phase: every participating rank's
// hyperslab, together. Returns elapsed simulated seconds.
func (d *Dataset) Write(slabs []Slab) (float64, error) {
	return d.transfer(slabs, true)
}

// Read services one collective read phase.
func (d *Dataset) Read(slabs []Slab) (float64, error) {
	return d.transfer(slabs, false)
}

func (d *Dataset) transfer(slabs []Slab, isWrite bool) (float64, error) {
	if len(slabs) == 0 {
		return 0, nil
	}
	var appBytes int64
	for _, sl := range slabs {
		if err := d.space.ValidateSlab(sl); err != nil {
			return 0, err
		}
		appBytes += d.space.SlabBytes(sl)
	}

	if tr := d.f.lib.tracer; tr != nil {
		tr.OnTransfer(d.f.name, d.name, slabs, isWrite)
	}

	var elapsed float64
	var err error
	if d.Chunked() {
		elapsed, err = d.transferChunked(slabs, isWrite)
	} else {
		elapsed, err = d.transferContiguous(slabs, isWrite)
	}
	if err != nil {
		return 0, err
	}

	// Application-layer accounting: one op per H5Dwrite/H5Dread call.
	lc := d.f.lib.sim.Report.Layer("hdf5")
	if isWrite {
		lc.WriteOps += int64(len(slabs))
		lc.BytesWritten += appBytes
		lc.WriteTime += elapsed
	} else {
		lc.ReadOps += int64(len(slabs))
		lc.BytesRead += appBytes
		lc.ReadTime += elapsed
	}
	return elapsed, nil
}

// transferContiguous maps slabs to file extents with sieve-buffer
// coalescing of small strided segments. Extents build into a file-owned
// reusable buffer (they are consumed synchronously by the phase).
func (d *Dataset) transferContiguous(slabs []Slab, isWrite bool) (float64, error) {
	d.f.metaTouch(int64(len(slabs))) // object header revisits
	extents := d.f.extBuf[:0]
	sieve := d.f.lib.cfg.SieveBufSize
	for _, sl := range slabs {
		extents = ContiguousSlabExtents(d.space, sl, d.dataOffset, sieve, extents)
	}
	d.f.extBuf = extents[:0]
	if isWrite {
		return d.f.writePhase(extents)
	}
	return d.f.readPhase(extents)
}

// transferChunked services a phase against a chunked dataset: it resolves
// touched chunks via the shared ChunkPlanner, performs read-modify-write
// for partially covered, uncached, previously written chunks, and writes
// covered bytes.
func (d *Dataset) transferChunked(slabs []Slab, isWrite bool) (float64, error) {
	ph := d.cp.Plan(slabs, isWrite, d.f.cache, d.f.allocate)
	for i := int64(0); i < ph.NewChunks; i++ {
		d.f.addMetadata(metaItemSize) // chunk index entry
	}
	d.f.metaTouch(ph.MetaTouches)

	var elapsed float64
	if len(ph.Read) > 0 {
		e, err := d.f.readPhase(ph.Read)
		if err != nil {
			return 0, err
		}
		elapsed += e
	}
	if len(ph.Data) > 0 {
		var e float64
		var err error
		if isWrite {
			e, err = d.f.writePhase(ph.Data)
		} else {
			e, err = d.f.readPhase(ph.Data)
		}
		if err != nil {
			return 0, err
		}
		elapsed += e
	}
	return elapsed, nil
}

// ChunkCache is an LRU cache of chunks, keyed by (dataset, chunk index).
// It models the aggregate effect of the per-process raw data chunk cache.
type ChunkCache struct {
	capacity int64
	used     int64
	entries  map[string]int64 // key -> bytes
	lru      []string
}

// NewChunkCache returns an empty cache of the given capacity (also used by
// the replay planner, which keeps its own cache per planned file handle).
func NewChunkCache(capacity int64) *ChunkCache {
	return &ChunkCache{capacity: capacity, entries: make(map[string]int64)}
}

func newChunkCache(capacity int64) *ChunkCache { return NewChunkCache(capacity) }

func cacheKey(dataset string, linear int64) string {
	return fmt.Sprintf("%s#%d", dataset, linear)
}

func (c *ChunkCache) contains(dataset string, linear int64) bool {
	_, ok := c.entries[cacheKey(dataset, linear)]
	return ok
}

func (c *ChunkCache) insert(dataset string, linear, bytes int64) {
	if bytes > c.capacity {
		return // chunk larger than the cache never caches (like HDF5)
	}
	key := cacheKey(dataset, linear)
	if _, ok := c.entries[key]; ok {
		c.touch(key)
		return
	}
	for c.used+bytes > c.capacity && len(c.lru) > 0 {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		c.used -= c.entries[victim]
		delete(c.entries, victim)
	}
	c.entries[key] = bytes
	c.used += bytes
	c.lru = append(c.lru, key)
}

func (c *ChunkCache) touch(key string) {
	for i, k := range c.lru {
		if k == key {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			c.lru = append(c.lru, key)
			return
		}
	}
}

// WriteAttribute attaches an attribute to the dataset (object-header
// metadata, like File.WriteAttribute).
func (d *Dataset) WriteAttribute(name string, size int64) error {
	if d.f.closed {
		return fmt.Errorf("hdf5: attribute on closed file %s", d.f.name)
	}
	if name == "" {
		return fmt.Errorf("hdf5: empty attribute name")
	}
	if size < attributeHeaderBytes {
		size = attributeHeaderBytes
	}
	d.f.addMetadata(size)
	if tr := d.f.lib.tracer; tr != nil {
		tr.OnAttribute(d.f.name, d.name+"/"+name, size)
	}
	return nil
}
