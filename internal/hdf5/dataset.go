package hdf5

import (
	"fmt"
	"slices"

	"tunio/internal/ioreq"
)

// maxExtentsPerSlab bounds how many extents one slab materializes; beyond
// it, segments are grouped into representative extents carrying sub-request
// counts. This keeps evaluation cost bounded without losing request-count
// fidelity.
const maxExtentsPerSlab = 64

// objectHeaderBytes is the metadata created per dataset.
const objectHeaderBytes = 1024

// Dataset is an HDF5 dataset, contiguous or chunked.
type Dataset struct {
	f     *File
	name  string
	space Space

	// contiguous layout
	dataOffset int64

	// chunked layout
	chunkDims  []int64
	chunkBytes int64
	chunkGrid  []int64         // chunks per dimension
	chunkOff   map[int64]int64 // chunk linear index -> file offset
	written    map[int64]int64 // bytes ever written per chunk
}

// CreateDataset creates a dataset. chunkDims nil selects contiguous layout
// (allocated eagerly, like HDF5 with early allocation in parallel mode);
// otherwise the dataset is chunked and chunks allocate lazily on first
// write. Creation is collective.
func (f *File) CreateDataset(name string, space Space, chunkDims []int64) (*Dataset, error) {
	if f.closed {
		return nil, fmt.Errorf("hdf5: create dataset on closed file %s", f.name)
	}
	if name == "" {
		return nil, fmt.Errorf("hdf5: empty dataset name")
	}
	if _, dup := f.datasets[name]; dup {
		return nil, fmt.Errorf("hdf5: dataset %s already exists in %s", name, f.name)
	}
	d := &Dataset{f: f, name: name, space: space}
	if chunkDims != nil {
		if len(chunkDims) != len(space.Dims) {
			return nil, fmt.Errorf("hdf5: chunk rank %d does not match dataspace rank %d", len(chunkDims), len(space.Dims))
		}
		d.chunkDims = append([]int64(nil), chunkDims...)
		d.chunkBytes = space.Elem
		d.chunkGrid = make([]int64, len(chunkDims))
		for i, c := range chunkDims {
			if c <= 0 || c > space.Dims[i] {
				return nil, fmt.Errorf("hdf5: chunk dim %d is %d, want 1..%d", i, c, space.Dims[i])
			}
			d.chunkBytes *= c
			d.chunkGrid[i] = (space.Dims[i] + c - 1) / c
		}
		d.chunkOff = make(map[int64]int64)
		d.written = make(map[int64]int64)
	} else {
		d.dataOffset = f.allocate(space.TotalBytes())
	}
	f.addMetadata(objectHeaderBytes)
	f.datasets[name] = d
	if f.lib.tracer != nil {
		f.lib.tracer.OnCreateDataset(f.name, name, space, chunkDims)
	}
	return d, nil
}

// OpenDataset opens an existing dataset, charging metadata reads.
func (f *File) OpenDataset(name string) (*Dataset, error) {
	if f.closed {
		return nil, fmt.Errorf("hdf5: open dataset on closed file %s", f.name)
	}
	d, ok := f.datasets[name]
	if !ok {
		return nil, fmt.Errorf("hdf5: dataset %s not found in %s", name, f.name)
	}
	f.metaRead(2)
	d.f = f // rebind to the current open handle
	return d, nil
}

// Space returns the dataset's dataspace.
func (d *Dataset) Space() Space { return d.space }

// Chunked reports whether the dataset uses chunked layout.
func (d *Dataset) Chunked() bool { return d.chunkDims != nil }

// ChunkBytes returns the chunk size in bytes (0 for contiguous layout).
func (d *Dataset) ChunkBytes() int64 { return d.chunkBytes }

// Write services one collective write phase: every participating rank's
// hyperslab, together. Returns elapsed simulated seconds.
func (d *Dataset) Write(slabs []Slab) (float64, error) {
	return d.transfer(slabs, true)
}

// Read services one collective read phase.
func (d *Dataset) Read(slabs []Slab) (float64, error) {
	return d.transfer(slabs, false)
}

func (d *Dataset) transfer(slabs []Slab, isWrite bool) (float64, error) {
	if len(slabs) == 0 {
		return 0, nil
	}
	var appBytes int64
	for _, sl := range slabs {
		if err := d.space.ValidateSlab(sl); err != nil {
			return 0, err
		}
		appBytes += d.space.SlabBytes(sl)
	}

	if tr := d.f.lib.tracer; tr != nil {
		tr.OnTransfer(d.f.name, d.name, slabs, isWrite)
	}

	var elapsed float64
	var err error
	if d.Chunked() {
		elapsed, err = d.transferChunked(slabs, isWrite)
	} else {
		elapsed, err = d.transferContiguous(slabs, isWrite)
	}
	if err != nil {
		return 0, err
	}

	// Application-layer accounting: one op per H5Dwrite/H5Dread call.
	lc := d.f.lib.sim.Report.Layer("hdf5")
	if isWrite {
		lc.WriteOps += int64(len(slabs))
		lc.BytesWritten += appBytes
		lc.WriteTime += elapsed
	} else {
		lc.ReadOps += int64(len(slabs))
		lc.BytesRead += appBytes
		lc.ReadTime += elapsed
	}
	return elapsed, nil
}

// transferContiguous maps slabs to file extents with sieve-buffer
// coalescing of small strided segments.
func (d *Dataset) transferContiguous(slabs []Slab, isWrite bool) (float64, error) {
	d.f.metaTouch(int64(len(slabs))) // object header revisits
	var extents []ioreq.Extent
	for _, sl := range slabs {
		extents = append(extents, d.slabExtents(sl)...)
	}
	if isWrite {
		return d.f.writePhase(extents)
	}
	return d.f.readPhase(extents)
}

// slabExtents converts one slab into file extents for contiguous layout.
func (d *Dataset) slabExtents(sl Slab) []ioreq.Extent {
	g := d.space.Geometry(sl)
	totalBytes := g.SegBytes * g.NSegments

	// Sieve buffer: small strided segments coalesce into sieve-sized
	// requests over the slab's span, reducing the effective request count.
	effSegs := g.NSegments
	if sieve := d.f.lib.cfg.SieveBufSize; sieve > 0 && g.NSegments > 1 && g.SegBytes < sieve {
		perSieve := sieve / g.SegBytes
		if perSieve > 1 {
			effSegs = (g.NSegments + perSieve - 1) / perSieve
		}
	}

	if g.NSegments == 1 {
		return []ioreq.Extent{{
			Offset: d.dataOffset + g.FirstByte,
			Size:   totalBytes,
			Rank:   sl.Rank,
		}}
	}

	// Group segments into at most maxExtentsPerSlab representative extents.
	groups := effSegs
	if groups > maxExtentsPerSlab {
		groups = maxExtentsPerSlab
	}
	segsPerGroup := (g.NSegments + groups - 1) / groups
	reqsPerGroup := (effSegs + groups - 1) / groups

	out := make([]ioreq.Extent, 0, groups)
	var cur int64
	var groupStart int64 = -1
	var groupBytes int64
	var inGroup int64
	d.space.ForEachSegment(sl, func(off, size int64) bool {
		if groupStart < 0 {
			groupStart = off
		}
		groupBytes += size
		inGroup++
		cur++
		if inGroup == segsPerGroup || cur == g.NSegments {
			out = append(out, ioreq.Extent{
				Offset: d.dataOffset + groupStart,
				Size:   groupBytes,
				Rank:   sl.Rank,
				Count:  reqsPerGroup,
				Span:   off + size - groupStart, // true strided footprint
			})
			groupStart = -1
			groupBytes = 0
			inGroup = 0
		}
		return true
	})
	return out
}

// chunkIndexOf returns the linear index of the chunk holding coordinate c.
func (d *Dataset) chunkIndexOf(coord []int64) int64 {
	idx := int64(0)
	for i := range coord {
		idx = idx*d.chunkGrid[i] + coord[i]/d.chunkDims[i]
	}
	return idx
}

// forEachTouchedChunk invokes fn for every chunk a slab intersects, with
// the chunk's linear index and grid coordinates.
func (d *Dataset) forEachTouchedChunk(sl Slab, fn func(linear int64, gridCoord []int64)) {
	n := len(d.chunkDims)
	lo := make([]int64, n)
	hi := make([]int64, n)
	for i := 0; i < n; i++ {
		lo[i] = sl.Start[i] / d.chunkDims[i]
		hi[i] = (sl.Start[i] + sl.Count[i] - 1) / d.chunkDims[i]
	}
	coord := append([]int64(nil), lo...)
	for {
		linear := int64(0)
		for i := 0; i < n; i++ {
			linear = linear*d.chunkGrid[i] + coord[i]
		}
		fn(linear, coord)
		carry := true
		for i := n - 1; i >= 0 && carry; i-- {
			coord[i]++
			if coord[i] <= hi[i] {
				carry = false
			} else {
				coord[i] = lo[i]
			}
		}
		if carry {
			return
		}
	}
}

// transferChunked services a phase against a chunked dataset: it resolves
// touched chunks, performs read-modify-write for partially covered,
// uncached, previously written chunks, and writes covered bytes.
func (d *Dataset) transferChunked(slabs []Slab, isWrite bool) (float64, error) {
	type chunkWork struct {
		linear  int64
		covered int64
		pieces  []ioreq.Extent // in-chunk extents (chunk-relative)
	}
	work := make(map[int64]*chunkWork)

	for _, sl := range slabs {
		d.forEachTouchedChunk(sl, func(linear int64, gridCoord []int64) {
			boxStart := make([]int64, len(gridCoord))
			boxCount := make([]int64, len(gridCoord))
			for i, gc := range gridCoord {
				boxStart[i] = gc * d.chunkDims[i]
				boxCount[i] = min64s(d.chunkDims[i], d.space.Dims[i]-boxStart[i])
			}
			inter, ok := d.space.intersect(sl, boxStart, boxCount)
			if !ok {
				return
			}
			// chunk-relative slab in chunk-local space
			local := Slab{Rank: sl.Rank, Start: make([]int64, len(gridCoord)), Count: inter.Count}
			for i := range gridCoord {
				local.Start[i] = inter.Start[i] - boxStart[i]
			}
			chunkSpace := Space{Dims: d.chunkDims, Elem: d.space.Elem}
			g := chunkSpace.Geometry(local)
			bytes := chunkSpace.SlabBytes(local)

			w := work[linear]
			if w == nil {
				w = &chunkWork{linear: linear}
				work[linear] = w
			}
			w.covered += bytes
			w.pieces = append(w.pieces, ioreq.Extent{
				Offset: g.FirstByte, // chunk-relative; rebased below
				Size:   bytes,
				Rank:   sl.Rank,
				Count:  g.NSegments,
				Span:   g.SpanBytes,
			})
		})
	}

	// Deterministic ordering of chunks.
	order := make([]int64, 0, len(work))
	for linear := range work {
		order = append(order, linear)
	}
	slices.Sort(order)

	var readExtents, dataExtents []ioreq.Extent
	var metaTouches int64
	for _, linear := range order {
		w := work[linear]
		off, allocated := d.chunkOff[linear]
		if !allocated {
			off = d.f.allocate(d.chunkBytes)
			d.chunkOff[linear] = off
			d.f.addMetadata(metaItemSize) // chunk index entry
		}
		metaTouches++ // chunk index lookup

		if isWrite {
			prior := d.written[linear]
			partial := w.covered < d.chunkBytes
			if partial && prior > 0 && !d.f.cache.contains(d.name, linear) {
				// read-modify-write: fetch the chunk first
				readExtents = append(readExtents, ioreq.Extent{
					Offset: off, Size: d.chunkBytes, Rank: w.pieces[0].Rank,
				})
			}
			d.f.cache.insert(d.name, linear, d.chunkBytes)
			d.written[linear] = min64s(prior+w.covered, d.chunkBytes)
			for _, p := range w.pieces {
				p.Offset += off
				dataExtents = append(dataExtents, p)
			}
		} else {
			if d.f.cache.contains(d.name, linear) {
				continue // served from cache
			}
			// HDF5 reads whole chunks through the cache.
			dataExtents = append(dataExtents, ioreq.Extent{
				Offset: off, Size: d.chunkBytes, Rank: w.pieces[0].Rank,
			})
			d.f.cache.insert(d.name, linear, d.chunkBytes)
		}
	}

	d.f.metaTouch(metaTouches)

	var elapsed float64
	if len(readExtents) > 0 {
		e, err := d.f.readPhase(readExtents)
		if err != nil {
			return 0, err
		}
		elapsed += e
	}
	if len(dataExtents) > 0 {
		var e float64
		var err error
		if isWrite {
			e, err = d.f.writePhase(dataExtents)
		} else {
			e, err = d.f.readPhase(dataExtents)
		}
		if err != nil {
			return 0, err
		}
		elapsed += e
	}
	return elapsed, nil
}

// chunkCache is an LRU cache of chunks, keyed by (dataset, chunk index).
// It models the aggregate effect of the per-process raw data chunk cache.
type chunkCache struct {
	capacity int64
	used     int64
	entries  map[string]int64 // key -> bytes
	lru      []string
}

func newChunkCache(capacity int64) *chunkCache {
	return &chunkCache{capacity: capacity, entries: make(map[string]int64)}
}

func cacheKey(dataset string, linear int64) string {
	return fmt.Sprintf("%s#%d", dataset, linear)
}

func (c *chunkCache) contains(dataset string, linear int64) bool {
	_, ok := c.entries[cacheKey(dataset, linear)]
	return ok
}

func (c *chunkCache) insert(dataset string, linear, bytes int64) {
	if bytes > c.capacity {
		return // chunk larger than the cache never caches (like HDF5)
	}
	key := cacheKey(dataset, linear)
	if _, ok := c.entries[key]; ok {
		c.touch(key)
		return
	}
	for c.used+bytes > c.capacity && len(c.lru) > 0 {
		victim := c.lru[0]
		c.lru = c.lru[1:]
		c.used -= c.entries[victim]
		delete(c.entries, victim)
	}
	c.entries[key] = bytes
	c.used += bytes
	c.lru = append(c.lru, key)
}

func (c *chunkCache) touch(key string) {
	for i, k := range c.lru {
		if k == key {
			c.lru = append(c.lru[:i], c.lru[i+1:]...)
			c.lru = append(c.lru, key)
			return
		}
	}
}

// WriteAttribute attaches an attribute to the dataset (object-header
// metadata, like File.WriteAttribute).
func (d *Dataset) WriteAttribute(name string, size int64) error {
	if d.f.closed {
		return fmt.Errorf("hdf5: attribute on closed file %s", d.f.name)
	}
	if name == "" {
		return fmt.Errorf("hdf5: empty attribute name")
	}
	if size < attributeHeaderBytes {
		size = attributeHeaderBytes
	}
	d.f.addMetadata(size)
	return nil
}
