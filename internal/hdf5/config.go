// Package hdf5 simulates the high-level I/O library layer of the stack: an
// HDF5-like library with files, datasets, dataspaces, chunking, a chunk
// cache, a sieve buffer, alignment, metadata aggregation, and collective
// metadata — the layer whose tuning properties (file-access property list
// settings) make up most of TunIO's 12-parameter search space.
//
// The library sits on the simulated MPI-IO layer, which in turn targets a
// storage backend (Lustre or the /dev/shm memory target). Data payloads are
// not materialized: the simulation tracks extents, request counts, and
// timing, which is everything the tuning objective observes.
package hdf5

import "fmt"

// MDCLevel selects the metadata cache configuration (the paper's mdc_conf
// parameter). Higher levels cache more aggressively, turning repeated
// metadata touches into hits.
type MDCLevel int

// Metadata cache levels.
const (
	MDCMinimal MDCLevel = iota
	MDCDefault
	MDCLarge
	MDCAggressive
)

// HitRate returns the modeled hit rate for repeated metadata touches.
func (l MDCLevel) HitRate() float64 {
	switch l {
	case MDCMinimal:
		return 0.50
	case MDCDefault:
		return 0.80
	case MDCLarge:
		return 0.95
	case MDCAggressive:
		return 0.99
	default:
		return 0.80
	}
}

// String names the level.
func (l MDCLevel) String() string {
	switch l {
	case MDCMinimal:
		return "minimal"
	case MDCDefault:
		return "default"
	case MDCLarge:
		return "large"
	case MDCAggressive:
		return "aggressive"
	default:
		return fmt.Sprintf("mdc(%d)", int(l))
	}
}

// Config is the library tuning configuration (file-access property list).
type Config struct {
	// Alignment aligns file allocations of at least AlignmentThreshold
	// bytes to multiples of this value (H5Pset_alignment). 0 or 1 disables.
	Alignment          int64
	AlignmentThreshold int64

	// SieveBufSize coalesces small strided raw-data accesses on
	// contiguous-layout datasets (H5Pset_sieve_buf_size).
	SieveBufSize int64

	// ChunkCacheBytes is the raw-data chunk cache capacity (H5Pset_cache).
	ChunkCacheBytes int64

	// MetaBlockSize aggregates small metadata allocations into blocks
	// (H5Pset_meta_block_size): larger blocks mean fewer metadata writes.
	MetaBlockSize int64

	// CollMetadataOps issues metadata reads from a single rank followed by
	// a broadcast instead of from every rank (H5Pset_all_coll_metadata_ops).
	CollMetadataOps bool

	// CollMetadataWrite batches metadata writes collectively instead of
	// one small write per dirty item (H5Pset_coll_metadata_write).
	CollMetadataWrite bool

	// MDC selects the metadata cache configuration.
	MDC MDCLevel
}

// DefaultConfig mirrors HDF5's library defaults — the untuned baseline the
// paper's applications start from.
func DefaultConfig() Config {
	return Config{
		Alignment:          1,
		AlignmentThreshold: 64 << 10,
		SieveBufSize:       64 << 10,
		ChunkCacheBytes:    1 << 20,
		MetaBlockSize:      2 << 10,
		CollMetadataOps:    false,
		CollMetadataWrite:  false,
		MDC:                MDCDefault,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Alignment < 0 || c.AlignmentThreshold < 0 {
		return fmt.Errorf("hdf5: negative alignment settings")
	}
	if c.SieveBufSize < 0 || c.ChunkCacheBytes < 0 || c.MetaBlockSize < 0 {
		return fmt.Errorf("hdf5: negative buffer sizes")
	}
	if c.MDC < MDCMinimal || c.MDC > MDCAggressive {
		return fmt.Errorf("hdf5: unknown MDC level %d", c.MDC)
	}
	return nil
}

// align rounds offset up per the alignment policy for an allocation of
// size bytes.
func (c Config) align(offset, size int64) int64 {
	if c.Alignment <= 1 || size < c.AlignmentThreshold {
		return offset
	}
	rem := offset % c.Alignment
	if rem == 0 {
		return offset
	}
	return offset + c.Alignment - rem
}
