package hdf5

import (
	"fmt"
	"slices"

	"tunio/internal/ioreq"
)

// This file holds the pure planning core of the library: the functions
// that map hyperslab transfers to file extents and metadata operations
// without touching the simulation clock. The live Dataset/File code paths
// and the staged trace-replay engine (internal/replay) both execute these
// same functions, so a replayed plan is extent-for-extent identical to a
// live run by construction.

// Exported metadata model constants (shared with the replay planner).
const (
	// MetaItemSize is the modeled size of one metadata item.
	MetaItemSize = metaItemSize
	// SuperblockBytes is the metadata written when a file is created.
	SuperblockBytes = superblockBytes
	// ObjectHeaderBytes is the metadata created per dataset.
	ObjectHeaderBytes = objectHeaderBytes
	// GroupHeaderBytes is the metadata created per group.
	GroupHeaderBytes = groupHeaderBytes
	// AttributeHeaderBytes is the minimum metadata footprint of an attribute.
	AttributeHeaderBytes = attributeHeaderBytes
	// OpenFileMetaItems is the metadata items read when opening a file.
	OpenFileMetaItems = 4
	// OpenDatasetMetaItems is the metadata items read when opening a dataset.
	OpenDatasetMetaItems = 2
)

// Align rounds offset up per the alignment policy for an allocation of
// size bytes (the exported form of the allocator's alignment rule).
func (c Config) Align(offset, size int64) int64 { return c.align(offset, size) }

// MetaItemsFor returns the number of metadata items bytes of new dirty
// metadata occupy (the unit addMetadata accounts in).
func MetaItemsFor(bytes int64) int64 {
	items := (bytes + metaItemSize - 1) / metaItemSize
	if items < 1 {
		items = 1
	}
	return items
}

// MetaReadExtents builds the extents of a metadata read of items items:
// one read from rank 0 under collective metadata ops, otherwise one per
// node (clients on a node share the Lustre client cache). The extents are
// appended to dst, which may be nil or a reused buffer.
func MetaReadExtents(collective bool, nprocs, ppn int, items int64, dst []ioreq.Extent) []ioreq.Extent {
	if items <= 0 {
		return dst
	}
	if collective {
		return append(dst, ioreq.Extent{
			Offset: 0, Size: items * metaItemSize, Rank: 0, Count: items,
		})
	}
	nodes := (nprocs + ppn - 1) / ppn
	for n := 0; n < nodes; n++ {
		dst = append(dst, ioreq.Extent{
			Offset: 0, Size: items * metaItemSize, Rank: n * ppn, Count: items,
		})
	}
	return dst
}

// MetaFlushRequests returns the request count of a metadata flush of bytes
// dirty bytes in items items: aggregated into metaBlockSize blocks under
// collective metadata writes, one small write per item otherwise.
func MetaFlushRequests(collective bool, metaBlockSize, bytes, items int64) int64 {
	if !collective {
		return items
	}
	block := metaBlockSize
	if block < metaItemSize {
		block = metaItemSize
	}
	return (bytes + block - 1) / block
}

// MetaMisses returns how many of items metadata touches miss a cache with
// the given hit rate. draw is a uniform [0,1) variate that resolves the
// fractional expected miss stochastically; callers must consume exactly
// one RNG draw per call to keep replayed noise streams aligned.
func MetaMisses(items int64, hitRate, draw float64) int64 {
	miss := float64(items) * (1 - hitRate)
	misses := int64(miss)
	if draw < miss-float64(misses) {
		misses++
	}
	return misses
}

// ContiguousSlabExtents converts one slab of a contiguous-layout dataset
// into file extents, applying sieve-buffer coalescing of small strided
// segments. Extents are appended to dst (which may be a reused buffer).
func ContiguousSlabExtents(space Space, sl Slab, dataOffset, sieve int64, dst []ioreq.Extent) []ioreq.Extent {
	g := space.Geometry(sl)
	totalBytes := g.SegBytes * g.NSegments

	// Sieve buffer: small strided segments coalesce into sieve-sized
	// requests over the slab's span, reducing the effective request count.
	effSegs := g.NSegments
	if sieve > 0 && g.NSegments > 1 && g.SegBytes < sieve {
		perSieve := sieve / g.SegBytes
		if perSieve > 1 {
			effSegs = (g.NSegments + perSieve - 1) / perSieve
		}
	}

	if g.NSegments == 1 {
		return append(dst, ioreq.Extent{
			Offset: dataOffset + g.FirstByte,
			Size:   totalBytes,
			Rank:   sl.Rank,
		})
	}

	// Group segments into at most maxExtentsPerSlab representative extents.
	groups := effSegs
	if groups > maxExtentsPerSlab {
		groups = maxExtentsPerSlab
	}
	segsPerGroup := (g.NSegments + groups - 1) / groups
	reqsPerGroup := (effSegs + groups - 1) / groups

	var cur int64
	var groupStart int64 = -1
	var groupBytes int64
	var inGroup int64
	space.ForEachSegment(sl, func(off, size int64) bool {
		if groupStart < 0 {
			groupStart = off
		}
		groupBytes += size
		inGroup++
		cur++
		if inGroup == segsPerGroup || cur == g.NSegments {
			dst = append(dst, ioreq.Extent{
				Offset: dataOffset + groupStart,
				Size:   groupBytes,
				Rank:   sl.Rank,
				Count:  reqsPerGroup,
				Span:   off + size - groupStart, // true strided footprint
			})
			groupStart = -1
			groupBytes = 0
			inGroup = 0
		}
		return true
	})
	return dst
}

// ChunkPlanner holds the chunk layout and allocation bookkeeping of one
// chunked dataset and turns transfer phases into extents. It is the single
// implementation behind both the live Dataset path and the replay planner.
type ChunkPlanner struct {
	name  string
	space Space
	dims  []int64 // chunk dims
	grid  []int64 // chunks per dimension
	bytes int64   // bytes per chunk

	off     map[int64]int64 // chunk linear index -> file offset
	written map[int64]int64 // bytes ever written per chunk

	// Reusable per-Plan scratch (one planner serves sequential phases).
	works    []chunkWork
	workIdx  map[int64]int
	order    []int64
	readBuf  []ioreq.Extent
	dataBuf  []ioreq.Extent
	lo, hi   []int64
	coord    []int64
	boxStart []int64
	boxCount []int64
	locStart []int64
}

type chunkWork struct {
	linear  int64
	covered int64
	pieces  []ioreq.Extent // in-chunk extents (chunk-relative)
}

// NewChunkPlanner validates the chunk dims against the dataspace and
// returns a planner.
func NewChunkPlanner(name string, space Space, chunkDims []int64) (*ChunkPlanner, error) {
	if len(chunkDims) != len(space.Dims) {
		return nil, fmt.Errorf("hdf5: chunk rank %d does not match dataspace rank %d", len(chunkDims), len(space.Dims))
	}
	p := &ChunkPlanner{
		name:    name,
		space:   space,
		dims:    append([]int64(nil), chunkDims...),
		grid:    make([]int64, len(chunkDims)),
		bytes:   space.Elem,
		off:     make(map[int64]int64),
		written: make(map[int64]int64),
		workIdx: make(map[int64]int),
	}
	for i, c := range chunkDims {
		if c <= 0 || c > space.Dims[i] {
			return nil, fmt.Errorf("hdf5: chunk dim %d is %d, want 1..%d", i, c, space.Dims[i])
		}
		p.bytes *= c
		p.grid[i] = (space.Dims[i] + c - 1) / c
	}
	n := len(chunkDims)
	p.lo = make([]int64, n)
	p.hi = make([]int64, n)
	p.coord = make([]int64, n)
	p.boxStart = make([]int64, n)
	p.boxCount = make([]int64, n)
	p.locStart = make([]int64, n)
	return p, nil
}

// ChunkBytes returns the chunk size in bytes.
func (p *ChunkPlanner) ChunkBytes() int64 { return p.bytes }

// forEachTouchedChunk invokes fn for every chunk a slab intersects, with
// the chunk's linear index and grid coordinates.
func (p *ChunkPlanner) forEachTouchedChunk(sl Slab, fn func(linear int64, gridCoord []int64)) {
	n := len(p.dims)
	lo, hi := p.lo, p.hi
	for i := 0; i < n; i++ {
		lo[i] = sl.Start[i] / p.dims[i]
		hi[i] = (sl.Start[i] + sl.Count[i] - 1) / p.dims[i]
	}
	coord := p.coord
	copy(coord, lo)
	for {
		linear := int64(0)
		for i := 0; i < n; i++ {
			linear = linear*p.grid[i] + coord[i]
		}
		fn(linear, coord)
		carry := true
		for i := n - 1; i >= 0 && carry; i-- {
			coord[i]++
			if coord[i] <= hi[i] {
				carry = false
			} else {
				coord[i] = lo[i]
			}
		}
		if carry {
			return
		}
	}
}

// ChunkPhase is the I/O a chunked transfer phase performs: an optional
// read-modify-write prefetch, the data extents, the chunk-index metadata
// touches, and how many chunks were newly allocated (each adds one
// MetaItemSize metadata item). The Read/Data slices are planner-owned
// scratch, valid until the next Plan call.
type ChunkPhase struct {
	Read        []ioreq.Extent
	Data        []ioreq.Extent
	MetaTouches int64
	NewChunks   int64
}

// Plan resolves one collective transfer phase against the chunk state:
// which chunks are touched, which need read-modify-write, what lands in
// the chunk cache, and where newly allocated chunks go (via alloc, which
// must apply the file's alignment policy and advance its allocator).
func (p *ChunkPlanner) Plan(slabs []Slab, isWrite bool, cache *ChunkCache, alloc func(size int64) int64) ChunkPhase {
	p.works = p.works[:0]
	clear(p.workIdx)

	for _, sl := range slabs {
		p.forEachTouchedChunk(sl, func(linear int64, gridCoord []int64) {
			boxStart, boxCount := p.boxStart, p.boxCount
			for i, gc := range gridCoord {
				boxStart[i] = gc * p.dims[i]
				boxCount[i] = min64s(p.dims[i], p.space.Dims[i]-boxStart[i])
			}
			inter, ok := p.space.intersect(sl, boxStart, boxCount)
			if !ok {
				return
			}
			// chunk-relative slab in chunk-local space
			local := Slab{Rank: sl.Rank, Start: p.locStart, Count: inter.Count}
			for i := range gridCoord {
				local.Start[i] = inter.Start[i] - boxStart[i]
			}
			chunkSpace := Space{Dims: p.dims, Elem: p.space.Elem}
			g := chunkSpace.Geometry(local)
			bytes := chunkSpace.SlabBytes(local)

			idx, ok := p.workIdx[linear]
			if !ok {
				if len(p.works) < cap(p.works) {
					p.works = p.works[:len(p.works)+1]
				} else {
					p.works = append(p.works, chunkWork{})
				}
				idx = len(p.works) - 1
				w := &p.works[idx]
				w.linear = linear
				w.covered = 0
				w.pieces = w.pieces[:0]
				p.workIdx[linear] = idx
			}
			w := &p.works[idx]
			w.covered += bytes
			w.pieces = append(w.pieces, ioreq.Extent{
				Offset: g.FirstByte, // chunk-relative; rebased below
				Size:   bytes,
				Rank:   sl.Rank,
				Count:  g.NSegments,
				Span:   g.SpanBytes,
			})
		})
	}

	// Deterministic ordering of chunks.
	p.order = p.order[:0]
	for i := range p.works {
		p.order = append(p.order, p.works[i].linear)
	}
	slices.Sort(p.order)

	ph := ChunkPhase{Read: p.readBuf[:0], Data: p.dataBuf[:0]}
	for _, linear := range p.order {
		w := &p.works[p.workIdx[linear]]
		off, allocated := p.off[linear]
		if !allocated {
			off = alloc(p.bytes)
			p.off[linear] = off
			ph.NewChunks++ // chunk index entry (MetaItemSize of metadata)
		}
		ph.MetaTouches++ // chunk index lookup

		if isWrite {
			prior := p.written[linear]
			partial := w.covered < p.bytes
			if partial && prior > 0 && !cache.contains(p.name, linear) {
				// read-modify-write: fetch the chunk first
				ph.Read = append(ph.Read, ioreq.Extent{
					Offset: off, Size: p.bytes, Rank: w.pieces[0].Rank,
				})
			}
			cache.insert(p.name, linear, p.bytes)
			p.written[linear] = min64s(prior+w.covered, p.bytes)
			for _, piece := range w.pieces {
				piece.Offset += off
				ph.Data = append(ph.Data, piece)
			}
		} else {
			if cache.contains(p.name, linear) {
				continue // served from cache
			}
			// HDF5 reads whole chunks through the cache.
			ph.Data = append(ph.Data, ioreq.Extent{
				Offset: off, Size: p.bytes, Rank: w.pieces[0].Rank,
			})
			cache.insert(p.name, linear, p.bytes)
		}
	}
	p.readBuf = ph.Read[:0]
	p.dataBuf = ph.Data[:0]
	return ph
}
