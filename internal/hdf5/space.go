package hdf5

import "fmt"

// Space is an N-dimensional dataspace with a fixed element size, linearized
// row-major (C order) like HDF5.
type Space struct {
	Dims []int64 // extent per dimension, slowest-varying first
	Elem int64   // element size in bytes
}

// NewSpace validates and returns a dataspace.
func NewSpace(dims []int64, elem int64) (Space, error) {
	if len(dims) == 0 {
		return Space{}, fmt.Errorf("hdf5: dataspace needs at least one dimension")
	}
	for i, d := range dims {
		if d <= 0 {
			return Space{}, fmt.Errorf("hdf5: dimension %d is %d, want > 0", i, d)
		}
	}
	if elem <= 0 {
		return Space{}, fmt.Errorf("hdf5: element size %d, want > 0", elem)
	}
	return Space{Dims: append([]int64(nil), dims...), Elem: elem}, nil
}

// Elements returns the total element count.
func (s Space) Elements() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// TotalBytes returns the dataset size in bytes.
func (s Space) TotalBytes() int64 { return s.Elements() * s.Elem }

// strides returns element strides per dimension (row-major).
func (s Space) strides() []int64 {
	st := make([]int64, len(s.Dims))
	acc := int64(1)
	for i := len(s.Dims) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s.Dims[i]
	}
	return st
}

// Slab is a regular hyperslab selection issued by one rank.
type Slab struct {
	Rank  int
	Start []int64
	Count []int64
}

// ValidateSlab checks that the slab fits inside the space.
func (s Space) ValidateSlab(sl Slab) error {
	if len(sl.Start) != len(s.Dims) || len(sl.Count) != len(s.Dims) {
		return fmt.Errorf("hdf5: slab rank %d/%d does not match dataspace rank %d",
			len(sl.Start), len(sl.Count), len(s.Dims))
	}
	for i := range s.Dims {
		if sl.Start[i] < 0 || sl.Count[i] <= 0 || sl.Start[i]+sl.Count[i] > s.Dims[i] {
			return fmt.Errorf("hdf5: slab dim %d [%d, %d) outside extent %d",
				i, sl.Start[i], sl.Start[i]+sl.Count[i], s.Dims[i])
		}
	}
	return nil
}

// SlabBytes returns the slab's selected byte count.
func (s Space) SlabBytes(sl Slab) int64 {
	n := s.Elem
	for _, c := range sl.Count {
		n *= c
	}
	return n
}

// SlabGeometry describes the slab's linearized shape: nSegments contiguous
// runs of segBytes each, starting at firstByte; iteration order is
// monotonically increasing in file offset.
type SlabGeometry struct {
	FirstByte int64
	SegBytes  int64
	NSegments int64
	SpanBytes int64 // lastByteExclusive - FirstByte
}

// Geometry computes the slab's linearized segment structure.
func (s Space) Geometry(sl Slab) SlabGeometry {
	st := s.strides()
	// The contiguous tail: trailing dims fully selected.
	tail := len(s.Dims)
	for tail > 0 {
		i := tail - 1
		if sl.Count[i] == s.Dims[i] {
			tail = i
			continue
		}
		break
	}
	// Segment = the run formed by dim tail-1... careful: the innermost
	// partially selected dim contributes count[t]*stride(t) contiguous
	// bytes where t is the last dim not in the tail (or the innermost dim
	// if all are full).
	var segElems, nSegs int64
	if tail == 0 {
		// whole selection is contiguous
		segElems = 1
		for _, c := range sl.Count {
			segElems *= c
		}
		nSegs = 1
	} else {
		t := tail - 1
		segElems = sl.Count[t] * st[t]
		nSegs = 1
		for i := 0; i < t; i++ {
			nSegs *= sl.Count[i]
		}
	}
	first := int64(0)
	last := int64(0)
	for i := range s.Dims {
		first += sl.Start[i] * st[i]
		last += (sl.Start[i] + sl.Count[i] - 1) * st[i]
	}
	return SlabGeometry{
		FirstByte: first * s.Elem,
		SegBytes:  segElems * s.Elem,
		NSegments: nSegs,
		SpanBytes: (last+1)*s.Elem - first*s.Elem,
	}
}

// ForEachSegment invokes fn with the byte offset (within the dataset) and
// size of each contiguous segment of the slab, in increasing offset order.
// fn returning false stops iteration early.
func (s Space) ForEachSegment(sl Slab, fn func(offset, size int64) bool) {
	g := s.Geometry(sl)
	if g.NSegments == 1 {
		fn(g.FirstByte, g.SegBytes)
		return
	}
	st := s.strides()
	// outer dims are those before the segment dim
	tail := len(s.Dims)
	for tail > 0 && sl.Count[tail-1] == s.Dims[tail-1] {
		tail--
	}
	outer := tail - 1 // dims [0, outer) are iterated
	idx := make([]int64, outer)
	// Offsets advance incrementally with the odometer: stepping dim i adds
	// st[i]; wrapping it back subtracts the (Count[i]-1)*st[i] it had
	// accumulated. Keeps each segment O(1) instead of O(dims).
	off := int64(0)
	for i := range s.Dims {
		off += sl.Start[i] * st[i]
	}
	for {
		if !fn(off*s.Elem, g.SegBytes) {
			return
		}
		// increment odometer
		carry := true
		for i := outer - 1; i >= 0 && carry; i-- {
			idx[i]++
			if idx[i] < sl.Count[i] {
				off += st[i]
				carry = false
			} else {
				off -= (sl.Count[i] - 1) * st[i]
				idx[i] = 0
			}
		}
		if carry {
			return
		}
	}
}

// intersect returns the overlap of the slab with the axis-aligned box
// [boxStart, boxStart+boxCount) as a slab, and whether it is non-empty.
func (s Space) intersect(sl Slab, boxStart, boxCount []int64) (Slab, bool) {
	out := Slab{Rank: sl.Rank, Start: make([]int64, len(s.Dims)), Count: make([]int64, len(s.Dims))}
	for i := range s.Dims {
		lo := max64(sl.Start[i], boxStart[i])
		hi := min64s(sl.Start[i]+sl.Count[i], boxStart[i]+boxCount[i])
		if lo >= hi {
			return Slab{}, false
		}
		out.Start[i] = lo
		out.Count[i] = hi - lo
	}
	return out, true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64s(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
