package hdf5

import (
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
	"tunio/internal/lustre"
	"tunio/internal/mpiio"
	"tunio/internal/posixio"
)

// testStack builds a full sim -> lustre -> mpiio -> hdf5 stack.
func testStack(t *testing.T, nodes, ppn, stripes int, stripeSize int64, hints mpiio.Hints, cfg Config) (*cluster.Sim, *Library) {
	t.Helper()
	c := cluster.CoriHaswell(nodes, ppn)
	c.Noise = 0
	sim, err := cluster.NewSim(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lustre.New(lustre.CoriScratch(), sim)
	if err != nil {
		t.Fatal(err)
	}
	lb := &lustre.Backend{FS: fs, StripeCount: stripes, StripeSize: stripeSize}
	mem := posixio.NewMemFS(sim)
	resolver := func(path string) ioreq.Backend {
		if posixio.IsMemPath(path) {
			return mem
		}
		return lb
	}
	lib, err := NewLibrary(sim, resolver, hints, cfg, nodes*ppn)
	if err != nil {
		t.Fatal(err)
	}
	return sim, lib
}

func TestNewLibraryValidation(t *testing.T) {
	c := cluster.CoriHaswell(1, 1)
	c.Noise = 0
	sim, _ := cluster.NewSim(c, 1)
	if _, err := NewLibrary(sim, nil, mpiio.Hints{}, DefaultConfig(), 1); err == nil {
		t.Fatal("nil backend: want error")
	}
	be := func(string) ioreq.Backend { return posixio.NewMemFS(sim) }
	if _, err := NewLibrary(sim, be, mpiio.Hints{}, DefaultConfig(), 0); err == nil {
		t.Fatal("zero procs: want error")
	}
	bad := DefaultConfig()
	bad.Alignment = -1
	if _, err := NewLibrary(sim, be, mpiio.Hints{}, bad, 1); err == nil {
		t.Fatal("bad config: want error")
	}
}

func TestConfigValidateAndDefaults(t *testing.T) {
	d := DefaultConfig()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Alignment != 1 || d.SieveBufSize != 64<<10 || d.ChunkCacheBytes != 1<<20 {
		t.Fatalf("unexpected defaults: %+v", d)
	}
	bad := d
	bad.MDC = MDCLevel(99)
	if err := bad.Validate(); err == nil {
		t.Fatal("bad MDC: want error")
	}
}

func TestMDCLevels(t *testing.T) {
	if MDCMinimal.HitRate() >= MDCAggressive.HitRate() {
		t.Fatal("hit rates not increasing")
	}
	if MDCLevel(42).HitRate() != MDCDefault.HitRate() {
		t.Fatal("unknown level should behave as default")
	}
	for _, l := range []MDCLevel{MDCMinimal, MDCDefault, MDCLarge, MDCAggressive, MDCLevel(42)} {
		if l.String() == "" {
			t.Fatal("empty String()")
		}
	}
}

func TestAlignHelper(t *testing.T) {
	c := Config{Alignment: 1 << 20, AlignmentThreshold: 64 << 10}
	if got := c.align(100, 1<<20); got != 1<<20 {
		t.Fatalf("align = %d", got)
	}
	if got := c.align(100, 1024); got != 100 {
		t.Fatal("below threshold must not align")
	}
	if got := c.align(2<<20, 1<<20); got != 2<<20 {
		t.Fatal("already aligned must not move")
	}
	none := Config{Alignment: 1}
	if got := none.align(100, 1<<20); got != 100 {
		t.Fatal("alignment 1 must be identity")
	}
}

func TestCreateWriteCloseContiguous(t *testing.T) {
	sim, lib := testStack(t, 4, 32, 8, 1<<20, mpiio.Hints{CollectiveWrite: true, CBNodes: 4}, DefaultConfig())
	f, err := lib.CreateFile("/scratch/out.h5")
	if err != nil {
		t.Fatal(err)
	}
	space := mustSpace(t, []int64{128, 1 << 16}, 8) // 128 rows x 64Ki elems x 8B = 64 MiB
	ds, err := f.CreateDataset("data", space, nil)
	if err != nil {
		t.Fatal(err)
	}
	var slabs []Slab
	for r := 0; r < 128; r++ {
		slabs = append(slabs, Slab{Rank: r, Start: []int64{int64(r), 0}, Count: []int64{1, 1 << 16}})
	}
	elapsed, err := ds.Write(slabs)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("write charged no time")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err == nil {
		t.Fatal("double close: want error")
	}
	app := sim.Report.App()
	if app.BytesWritten != 64<<20 {
		t.Fatalf("app bytes = %d, want %d", app.BytesWritten, 64<<20)
	}
	if app.WriteOps != 128 {
		t.Fatalf("app write ops = %d, want 128 (one per H5Dwrite)", app.WriteOps)
	}
	if sim.Report.Layer("lustre").BytesWritten < 64<<20 {
		t.Fatal("data did not reach lustre")
	}
	if sim.Report.WriteBandwidth() <= 0 {
		t.Fatal("no write bandwidth")
	}
}

func TestDatasetValidation(t *testing.T) {
	_, lib := testStack(t, 1, 4, 1, 1<<20, mpiio.Hints{}, DefaultConfig())
	f, _ := lib.CreateFile("f")
	space := mustSpace(t, []int64{16, 16}, 8)
	if _, err := f.CreateDataset("", space, nil); err == nil {
		t.Fatal("empty name: want error")
	}
	if _, err := f.CreateDataset("d", space, []int64{4}); err == nil {
		t.Fatal("chunk rank mismatch: want error")
	}
	if _, err := f.CreateDataset("d", space, []int64{0, 4}); err == nil {
		t.Fatal("zero chunk dim: want error")
	}
	if _, err := f.CreateDataset("d", space, []int64{32, 4}); err == nil {
		t.Fatal("chunk larger than dim: want error")
	}
	if _, err := f.CreateDataset("d", space, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.CreateDataset("d", space, nil); err == nil {
		t.Fatal("duplicate dataset: want error")
	}
	if _, err := f.OpenDataset("missing"); err == nil {
		t.Fatal("missing dataset: want error")
	}
	if _, err := f.OpenDataset("d"); err != nil {
		t.Fatal(err)
	}
	ds := f.datasets["d"]
	if _, err := ds.Write([]Slab{{Start: []int64{0}, Count: []int64{1}}}); err == nil {
		t.Fatal("bad slab: want error")
	}
	if e, err := ds.Write(nil); err != nil || e != 0 {
		t.Fatal("empty write should be free")
	}
}

func TestOpenFileRestoresState(t *testing.T) {
	_, lib := testStack(t, 1, 4, 1, 1<<20, mpiio.Hints{}, DefaultConfig())
	f, _ := lib.CreateFile("f")
	space := mustSpace(t, []int64{16}, 8)
	f.CreateDataset("d", space, nil)
	f.Close() // flushes metadata, which allocates
	eof := f.EOF()

	f2, err := lib.OpenFile("f")
	if err != nil {
		t.Fatal(err)
	}
	if f2.EOF() != eof {
		t.Fatalf("EOF not restored: %d vs %d", f2.EOF(), eof)
	}
	if _, err := f2.OpenDataset("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.OpenFile("nope"); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestAlignmentReducesRMW(t *testing.T) {
	write := func(alignment int64) int64 {
		cfg := DefaultConfig()
		cfg.Alignment = alignment
		sim, lib := testStack(t, 4, 32, 8, 1<<20, mpiio.Hints{}, cfg)
		f, _ := lib.CreateFile("f")
		space := mustSpace(t, []int64{64, 1 << 14}, 8) // chunk rows
		ds, err := f.CreateDataset("d", space, []int64{1, 1 << 14})
		if err != nil {
			t.Fatal(err)
		}
		var slabs []Slab
		for r := 0; r < 64; r++ {
			slabs = append(slabs, Slab{Rank: r, Start: []int64{int64(r), 0}, Count: []int64{1, 1 << 14}})
		}
		if _, err := ds.Write(slabs); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return sim.Report.Layer("lustre").BytesRead // RMW shows up as OST reads
	}
	unaligned := write(1)
	aligned := write(1 << 20)
	if aligned >= unaligned {
		t.Fatalf("alignment did not reduce RMW reads: aligned=%d unaligned=%d", aligned, unaligned)
	}
}

func TestChunkedFullCoverageAvoidsRMW(t *testing.T) {
	// Writing chunks fully covered by the phase must not fetch chunks;
	// rewriting them partially (uncached) must. Compare read ops between
	// the two (metadata misses contribute a little to both).
	readOps := func(partialRewrite bool) int64 {
		cfg := DefaultConfig()
		cfg.ChunkCacheBytes = 1024 // disable cache effects
		sim, lib := testStack(t, 4, 32, 8, 1<<20, mpiio.Hints{}, cfg)
		f, _ := lib.CreateFile("f")
		space := mustSpace(t, []int64{128, 4096}, 8)
		ds, _ := f.CreateDataset("d", space, []int64{1, 4096})
		var full, half []Slab
		for r := 0; r < 128; r++ {
			full = append(full, Slab{Rank: r, Start: []int64{int64(r), 0}, Count: []int64{1, 4096}})
			half = append(half, Slab{Rank: r, Start: []int64{int64(r), 0}, Count: []int64{1, 2048}})
		}
		if _, err := ds.Write(full); err != nil {
			t.Fatal(err)
		}
		before := sim.Report.Layer("lustre").ReadOps
		second := full
		if partialRewrite {
			second = half
		}
		if _, err := ds.Write(second); err != nil {
			t.Fatal(err)
		}
		return sim.Report.Layer("lustre").ReadOps - before
	}
	fullCov := readOps(false)
	partial := readOps(true)
	if fullCov >= partial {
		t.Fatalf("full-coverage rewrite read ops (%d) not below partial rewrite (%d)", fullCov, partial)
	}
	if partial < 128 {
		t.Fatalf("partial uncached rewrite fetched only %d chunks, want >= 128", partial)
	}
}

func TestChunkCacheAvoidsRereadOnRevisit(t *testing.T) {
	// Two partial writes to the same chunk: with a large cache the second
	// write needs no chunk fetch; with a tiny cache it does.
	run := func(cacheBytes int64) int64 {
		cfg := DefaultConfig()
		cfg.ChunkCacheBytes = cacheBytes
		sim, lib := testStack(t, 1, 4, 4, 1<<20, mpiio.Hints{}, cfg)
		f, _ := lib.CreateFile("f")
		space := mustSpace(t, []int64{4, 1 << 16}, 8) // chunk = 512 KiB
		ds, _ := f.CreateDataset("d", space, []int64{1, 1 << 16})
		half := int64(1 << 15)
		// first halves of every chunk
		var first, second []Slab
		for r := 0; r < 4; r++ {
			first = append(first, Slab{Rank: r, Start: []int64{int64(r), 0}, Count: []int64{1, half}})
			second = append(second, Slab{Rank: r, Start: []int64{int64(r), half}, Count: []int64{1, half}})
		}
		ds.Write(first)
		before := sim.Report.Layer("lustre").ReadOps
		ds.Write(second)
		return sim.Report.Layer("lustre").ReadOps - before
	}
	withCache := run(64 << 20)
	withoutCache := run(1024) // too small to hold any chunk
	if withCache != 0 {
		t.Fatalf("cached revisit still issued %d chunk-fetch reads", withCache)
	}
	if withoutCache == 0 {
		t.Fatal("uncached revisit performed no RMW fetch")
	}
}

func TestChunkedRead(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChunkCacheBytes = 0 // force storage reads
	sim, lib := testStack(t, 1, 4, 4, 1<<20, mpiio.Hints{}, cfg)
	f, _ := lib.CreateFile("f")
	space := mustSpace(t, []int64{4, 4096}, 8)
	ds, _ := f.CreateDataset("d", space, []int64{1, 4096})
	var slabs []Slab
	for r := 0; r < 4; r++ {
		slabs = append(slabs, Slab{Rank: r, Start: []int64{int64(r), 0}, Count: []int64{1, 4096}})
	}
	ds.Write(slabs)
	d, err := ds.Read(slabs)
	if err != nil || d <= 0 {
		t.Fatalf("read: %v %v", d, err)
	}
	app := sim.Report.App()
	if app.ReadOps != 4 || app.BytesRead != 4*4096*8 {
		t.Fatalf("app read counters: %+v", app)
	}
}

func TestChunkedReadServedFromCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChunkCacheBytes = 64 << 20
	sim, lib := testStack(t, 1, 4, 4, 1<<20, mpiio.Hints{}, cfg)
	f, _ := lib.CreateFile("f")
	space := mustSpace(t, []int64{4, 4096}, 8)
	ds, _ := f.CreateDataset("d", space, []int64{1, 4096})
	var slabs []Slab
	for r := 0; r < 4; r++ {
		slabs = append(slabs, Slab{Rank: r, Start: []int64{int64(r), 0}, Count: []int64{1, 4096}})
	}
	ds.Write(slabs) // populates cache
	before := sim.Report.Layer("lustre").ReadOps
	ds.Read(slabs)
	if got := sim.Report.Layer("lustre").ReadOps - before; got != 0 {
		t.Fatalf("cached read still issued %d storage reads", got)
	}
}

func TestSieveBufferReducesRequestsForStridedAccess(t *testing.T) {
	reqs := func(sieve int64) int64 {
		cfg := DefaultConfig()
		cfg.SieveBufSize = sieve
		sim, lib := testStack(t, 1, 4, 4, 1<<20, mpiio.Hints{}, cfg)
		f, _ := lib.CreateFile("f")
		// column selection => many small strided segments
		space := mustSpace(t, []int64{4096, 64}, 8)
		ds, _ := f.CreateDataset("d", space, nil)
		slabs := []Slab{{Rank: 0, Start: []int64{0, 0}, Count: []int64{4096, 8}}}
		ds.Write(slabs)
		return sim.Report.Layer("lustre").WriteOps
	}
	small := reqs(0)
	large := reqs(1 << 20)
	if large >= small {
		t.Fatalf("sieve buffer did not reduce requests: %d vs %d", large, small)
	}
}

func TestCollectiveMetadataReducesMetaCost(t *testing.T) {
	metaTime := func(collOps, collWrite bool) float64 {
		cfg := DefaultConfig()
		cfg.CollMetadataOps = collOps
		cfg.CollMetadataWrite = collWrite
		sim, lib := testStack(t, 4, 32, 8, 1<<20, mpiio.Hints{}, cfg)
		f, _ := lib.CreateFile("f")
		space := mustSpace(t, []int64{128, 256}, 8)
		for i := 0; i < 8; i++ {
			name := string(rune('a' + i))
			if _, err := f.CreateDataset(name, space, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := f.OpenDataset(name); err != nil {
				t.Fatal(err)
			}
		}
		f.Close()
		lc := sim.Report.Layer("hdf5")
		return lc.MetaTime
	}
	slow := metaTime(false, false)
	fast := metaTime(true, true)
	if fast >= slow {
		t.Fatalf("collective metadata not cheaper: %.6f vs %.6f", fast, slow)
	}
}

func TestMemPathIsFasterThanLustreForSmallIO(t *testing.T) {
	run := func(path string) float64 {
		_, lib := testStack(t, 1, 4, 1, 1<<20, mpiio.Hints{}, DefaultConfig())
		f, _ := lib.CreateFile(path)
		space := mustSpace(t, []int64{512, 128}, 8)
		ds, _ := f.CreateDataset("d", space, nil)
		var total float64
		for i := 0; i < 16; i++ {
			slabs := []Slab{{Rank: 0, Start: []int64{int64(i) * 32, 0}, Count: []int64{32, 128}}}
			d, err := ds.Write(slabs)
			if err != nil {
				t.Fatal(err)
			}
			total += d
		}
		f.Close()
		return total
	}
	lus := run("/scratch/f.h5")
	mem := run("/dev/shm/f.h5")
	if mem >= lus {
		t.Fatalf("mem path %.6fs not faster than lustre %.6fs", mem, lus)
	}
}

func TestWriteToClosedFileFails(t *testing.T) {
	_, lib := testStack(t, 1, 4, 1, 1<<20, mpiio.Hints{}, DefaultConfig())
	f, _ := lib.CreateFile("f")
	space := mustSpace(t, []int64{4}, 8)
	ds, _ := f.CreateDataset("d", space, nil)
	f.Close()
	if _, err := ds.Write([]Slab{{Rank: 0, Start: []int64{0}, Count: []int64{4}}}); err == nil {
		t.Fatal("write to closed file: want error")
	}
	if _, err := f.CreateDataset("x", space, nil); err == nil {
		t.Fatal("create on closed file: want error")
	}
	if _, err := f.OpenDataset("d"); err == nil {
		t.Fatal("open dataset on closed file: want error")
	}
}

func TestLibraryAccessors(t *testing.T) {
	sim, lib := testStack(t, 2, 4, 1, 1<<20, mpiio.Hints{}, DefaultConfig())
	if lib.Nprocs() != 8 || lib.Sim() != sim {
		t.Fatal("accessors wrong")
	}
	if lib.Config().SieveBufSize != 64<<10 {
		t.Fatal("config accessor wrong")
	}
	if _, err := lib.CreateFile(""); err == nil {
		t.Fatal("empty file name: want error")
	}
}

func TestChunkCacheLRU(t *testing.T) {
	c := newChunkCache(100)
	c.insert("d", 1, 40)
	c.insert("d", 2, 40)
	if !c.contains("d", 1) || !c.contains("d", 2) {
		t.Fatal("entries missing")
	}
	c.insert("d", 1, 40) // touch 1 -> 2 becomes LRU
	c.insert("d", 3, 40) // evicts 2
	if c.contains("d", 2) {
		t.Fatal("LRU entry not evicted")
	}
	if !c.contains("d", 1) || !c.contains("d", 3) {
		t.Fatal("wrong eviction")
	}
	c.insert("d", 4, 1000) // larger than capacity: ignored
	if c.contains("d", 4) {
		t.Fatal("oversized chunk cached")
	}
}

func TestGroups(t *testing.T) {
	_, lib := testStack(t, 1, 4, 1, 1<<20, mpiio.Hints{}, DefaultConfig())
	f, _ := lib.CreateFile("g.h5")
	if err := f.CreateGroup("checkpoint"); err != nil {
		t.Fatal(err)
	}
	if !f.HasGroup("checkpoint") {
		t.Fatal("group missing")
	}
	if err := f.CreateGroup("checkpoint"); err == nil {
		t.Fatal("duplicate group: want error")
	}
	if err := f.CreateGroup(""); err == nil {
		t.Fatal("empty name: want error")
	}
	f.Close()
	if err := f.CreateGroup("late"); err == nil {
		t.Fatal("group on closed file: want error")
	}
}

func TestAttributes(t *testing.T) {
	sim, lib := testStack(t, 1, 4, 1, 1<<20, mpiio.Hints{}, DefaultConfig())
	f, _ := lib.CreateFile("a.h5")
	space := mustSpace(t, []int64{8}, 8)
	ds, _ := f.CreateDataset("d", space, nil)
	if err := f.WriteAttribute("sim_time", 0); err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteAttribute("units", 1024); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAttribute("", 8); err == nil {
		t.Fatal("empty attribute name: want error")
	}
	if err := ds.WriteAttribute("", 8); err == nil {
		t.Fatal("empty dataset attribute name: want error")
	}
	// attributes are metadata: flushing at close must write them
	before := sim.Report.Layer("hdf5").MetaOps
	f.Close()
	if sim.Report.Layer("hdf5").MetaOps <= before {
		t.Fatal("attribute metadata never flushed")
	}
	if err := f.WriteAttribute("x", 8); err == nil {
		t.Fatal("attribute on closed file: want error")
	}
	if err := ds.WriteAttribute("x", 8); err == nil {
		t.Fatal("dataset attribute on closed file: want error")
	}
}

func TestGroupsAndAttributesCostMetadataOnly(t *testing.T) {
	run := func(extras bool) (int64, float64) {
		sim, lib := testStack(t, 1, 4, 1, 1<<20, mpiio.Hints{}, DefaultConfig())
		f, _ := lib.CreateFile("m.h5")
		if extras {
			for i := 0; i < 16; i++ {
				f.CreateGroup(string(rune('a' + i)))
				f.WriteAttribute(string(rune('A'+i)), 512)
			}
		}
		space := mustSpace(t, []int64{1 << 12}, 8)
		ds, _ := f.CreateDataset("d", space, nil)
		ds.Write([]Slab{{Rank: 0, Start: []int64{0}, Count: []int64{1 << 12}}})
		f.Close()
		return sim.Report.App().BytesWritten, sim.Now()
	}
	bytesPlain, timePlain := run(false)
	bytesExtra, timeExtra := run(true)
	if bytesPlain != bytesExtra {
		t.Fatalf("groups/attributes changed data bytes: %d vs %d", bytesPlain, bytesExtra)
	}
	if timeExtra <= timePlain {
		t.Fatal("metadata objects added no time")
	}
}
