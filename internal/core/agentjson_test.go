package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"tunio/internal/params"
)

// trainTestPicker trains a small SmartPicker on a synthetic sweep.
func trainTestPicker(t *testing.T, seed int64) *SmartPicker {
	t.Helper()
	space := params.Space()
	rng := rand.New(rand.NewSource(seed))
	sweep := syntheticSweep(space, rng, 200)
	p, err := TrainSmartPicker(PickerConfig{Seed: seed}, sweep, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// trainTestStopper trains a small EarlyStopper.
func trainTestStopper(t *testing.T, seed int64) *EarlyStopper {
	t.Helper()
	s, err := TrainEarlyStopper(StopperConfig{Seed: seed, Horizon: 8}, 2, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Marshal → unmarshal → marshal must be byte-identical for both agents:
// the training pipeline chains stage hashes on these bytes, and the
// server serves per-job clones from them.
func TestSmartPickerJSONRoundTripStable(t *testing.T) {
	p := trainTestPicker(t, 17)
	first, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	loaded := &SmartPicker{}
	if err := json.Unmarshal(first, loaded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("picker JSON not stable across a round trip")
	}
}

func TestEarlyStopperJSONRoundTripStable(t *testing.T) {
	s := trainTestStopper(t, 17)
	first, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	loaded := &EarlyStopper{}
	if err := json.Unmarshal(first, loaded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("stopper JSON not stable across a round trip")
	}
}

// A loaded picker must make the same decisions as the in-memory original.
// With learning off and epsilon zero both are deterministic functions of
// their (identical) learned state.
func TestLoadedPickerMatchesOriginalDecisions(t *testing.T) {
	p := trainTestPicker(t, 23)
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	loaded := &SmartPicker{}
	if err := json.Unmarshal(blob, loaded); err != nil {
		t.Fatal(err)
	}
	for _, a := range []*SmartPicker{p, loaded} {
		a.SetLearning(false)
		a.SetEpsilon(0)
	}
	n := len(params.Space())
	maskP := make([]bool, n)
	maskL := make([]bool, n)
	for i := range maskP {
		maskP[i] = true
		maskL[i] = true
	}
	perfs := []float64{900, 1400, 1350, 2100, 2050, 2600, 2590, 2800}
	for step, perf := range perfs {
		maskP = p.NextSubset(perf, maskP)
		maskL = loaded.NextSubset(perf, maskL)
		for i := range maskP {
			if maskP[i] != maskL[i] {
				t.Fatalf("step %d: masks diverge at param %d", step, i)
			}
		}
	}
}

// Same for the stopper: identical stop decisions along a synthetic
// improvement curve.
func TestLoadedStopperMatchesOriginalDecisions(t *testing.T) {
	s := trainTestStopper(t, 23)
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	loaded := &EarlyStopper{}
	if err := json.Unmarshal(blob, loaded); err != nil {
		t.Fatal(err)
	}
	for _, a := range []*EarlyStopper{s, loaded} {
		a.SetLearning(false)
		a.SetEpsilon(0)
		a.Reset()
	}
	curve := []float64{100, 180, 240, 260, 262, 263, 263, 263, 263, 263, 263, 263}
	for i, best := range curve {
		sp, lp := s.Stop(i, best), loaded.Stop(i, best)
		if sp != lp {
			t.Fatalf("iteration %d: original stop=%v, loaded stop=%v", i, sp, lp)
		}
		if sp {
			break
		}
	}
}
