package core

import (
	"math/rand"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

func TestExpectedRunsBiasesStopping(t *testing.T) {
	// The same frozen agent on the same flat curve must stop later when
	// the user expects many production runs and sooner when few.
	rng := rand.New(rand.NewSource(61))
	base, err := TrainEarlyStopper(StopperConfig{Seed: 61, Horizon: 35}, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	stopAt := func(expectedRuns float64) int {
		s := base
		s.SetLearning(false)
		s.SetEpsilon(0)
		s.SetExpectedRuns(expectedRuns)
		s.Reset()
		// grow then flatten
		for i := 0; i <= 35; i++ {
			perf := 1000.0 + 100*float64(min(i, 8))
			if s.Stop(i, perf) {
				return i
			}
		}
		return 36
	}
	few := stopAt(10)       // amortized over almost nothing: cut losses fast
	many := stopAt(1000000) // a production campaign: keep tuning
	base.SetExpectedRuns(0)
	if few > many {
		t.Fatalf("few-runs stop at %d later than many-runs stop at %d", few, many)
	}
	if few == many {
		t.Logf("bias did not separate this curve (few=%d many=%d); acceptable but weak", few, many)
	}
	if many < 8 {
		t.Fatalf("million-run user stopped at %d, before gains were even exhausted", many)
	}
}

func TestStopBias(t *testing.T) {
	if (StopperConfig{}).stopBias() != 0 {
		t.Fatal("no expected runs should mean no bias")
	}
	up := StopperConfig{ExpectedRuns: 1e6}.stopBias()
	down := StopperConfig{ExpectedRuns: 10}.stopBias()
	if up <= 0 || down >= 0 {
		t.Fatalf("bias signs wrong: up=%v down=%v", up, down)
	}
}

// failingEvaluator errors on every call (a broken kernel).
type failingEvaluator struct{ calls int }

func (f *failingEvaluator) Evaluate(*params.Assignment, int) (float64, float64, error) {
	f.calls++
	return 0, 0, errKernel
}

var errKernel = &kernelError{}

type kernelError struct{}

func (*kernelError) Error() string { return "kernel exploded" }

func TestFallbackEvaluatorRevertsToFullApp(t *testing.T) {
	c := cluster.CoriHaswell(1, 8)
	c.Noise = 0
	w := workload.NewMACSio(c.Procs())
	w.Dumps = 2
	primary := &failingEvaluator{}
	fb := &tuner.FallbackEvaluator{
		Primary:  primary,
		Fallback: &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: 5},
	}
	a := params.DefaultAssignment(params.Space())
	perf, cost, err := fb.Evaluate(a, 0)
	if err != nil {
		t.Fatalf("fallback did not rescue the evaluation: %v", err)
	}
	if perf <= 0 || cost <= 0 {
		t.Fatal("fallback produced no measurement")
	}
	if !fb.FellBack || fb.KernelErr == nil {
		t.Fatal("fallback not recorded")
	}
	// subsequent evaluations go straight to the fallback
	fb.Evaluate(a, 1)
	if primary.calls != 1 {
		t.Fatalf("primary called %d times after falling back, want 1", primary.calls)
	}
	// a full pipeline over a broken kernel completes via the fallback
	res, err := tuner.Run(tuner.Config{
		Space: params.Space(), PopSize: 4, MaxIterations: 3, Seed: 6,
	}, &tuner.FallbackEvaluator{
		Primary:  &failingEvaluator{},
		Fallback: &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: 6},
	})
	if err != nil || res.BestPerf <= 0 {
		t.Fatalf("pipeline over broken kernel: %v, %v", res, err)
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(nil, params.Space()); err == nil {
		t.Fatal("nil agent: want error")
	}
	if _, err := NewSession(&TunIO{}, params.Space()); err == nil {
		t.Fatal("incomplete agent: want error")
	}
}

func TestSessionRefinesAcrossRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	space := params.Space()
	sweep := syntheticSweep(space, rng, 300)
	picker, err := TrainSmartPicker(PickerConfig{Seed: 71}, sweep, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	stopper, err := TrainEarlyStopper(StopperConfig{Seed: 72, Horizon: 12}, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(&TunIO{Stopper: stopper, Picker: picker}, space)
	if err != nil {
		t.Fatal(err)
	}

	c := cluster.CoriHaswell(2, 8)
	w := workload.NewMACSio(c.Procs())
	w.Dumps = 3
	mkEval := func(seed int64) tuner.Evaluator {
		return &tuner.WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: seed}
	}

	r1, err := sess.Refine(mkEval(1), 6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Rounds() != 1 || sess.Best == nil {
		t.Fatal("round not recorded")
	}
	firstBest := sess.BestPerf

	r2, err := sess.Refine(mkEval(2), 6, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	_ = r1
	// Round 2 starts from round 1's best: its baseline must be near (or
	// above) round 1's best, not back at the defaults.
	if r2.Curve.Baseline() < 0.5*firstBest {
		t.Fatalf("round 2 baseline %.0f regressed to defaults (round 1 best %.0f)",
			r2.Curve.Baseline(), firstBest)
	}
	if sess.BestPerf < firstBest {
		t.Fatal("session best regressed")
	}
	// history accumulates with monotone time and session-level best
	if err := sess.History.Validate(); err != nil {
		t.Fatal(err)
	}
	if sess.History.TotalMinutes() <= r2.Curve.TotalMinutes() {
		t.Fatal("history did not accumulate time across rounds")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
