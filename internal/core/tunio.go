package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"

	"tunio/internal/cluster"
	"tunio/internal/discovery"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// TunIO bundles the framework's trained components behind the paper's
// Table I API: stop(current_iteration, best_perf), discover_io(source,
// options), and subset_picker(perf, current_parameter_set). The component
// objects also implement the tuner package's Stopper and SubsetPicker
// interfaces, so they attach directly to any tuning pipeline.
type TunIO struct {
	Stopper *EarlyStopper
	Picker  *SmartPicker
}

// Stop implements the Table I `stop` interface.
func (t *TunIO) Stop(currentIteration int, bestPerf float64) bool {
	return t.Stopper.Stop(currentIteration, bestPerf)
}

// SubsetPicker implements the Table I `subset_picker` interface.
func (t *TunIO) SubsetPicker(perf float64, currentParameterSet []bool) []bool {
	return t.Picker.NextSubset(perf, currentParameterSet)
}

// Reset clears per-episode state on both agents (between tuning runs).
func (t *TunIO) Reset() {
	t.Stopper.Reset()
	t.Picker.Reset()
}

// Clone deep-copies the trained agents (weights and impact scores) so a
// tuning run can learn online without mutating the original — experiment
// harnesses clone per pipeline to keep runs independent.
func (t *TunIO) Clone() (*TunIO, error) {
	sb, err := json.Marshal(t.Stopper)
	if err != nil {
		return nil, err
	}
	pb, err := json.Marshal(t.Picker)
	if err != nil {
		return nil, err
	}
	out := &TunIO{Stopper: &EarlyStopper{}, Picker: &SmartPicker{}}
	if err := json.Unmarshal(sb, out.Stopper); err != nil {
		return nil, err
	}
	if err := json.Unmarshal(pb, out.Picker); err != nil {
		return nil, err
	}
	// restored agents default to exploratory deployment settings
	out.Stopper.SetEpsilon(t.Stopper.Epsilon())
	return out, nil
}

// DiscoverIO implements the Table I `discover_io` interface: it reduces
// application source code to its I/O kernel.
func DiscoverIO(sourceCode string, options discovery.Options) (*discovery.Kernel, error) {
	return discovery.Discover(sourceCode, options)
}

// TrainConfig configures offline training of a full TunIO instance.
type TrainConfig struct {
	// Space is the parameter space to tune (params.Space() by default).
	Space []params.Parameter
	// Cluster is the machine the sweep kernels run on (4x32 Cori Haswell
	// by default, the paper's component-test allocation).
	Cluster *cluster.Cluster
	// Kernels are the representative sweep workloads (VPIC, FLASH, HACC
	// by default).
	Kernels []workload.Workload
	// ExtraRandomRuns adds random configurations to the sweep. Default 20.
	ExtraRandomRuns int
	// StopperEpochs / PickerEpochs bound offline training (the stagnation
	// criterion usually fires earlier). Defaults 40 / 30.
	StopperEpochs int
	PickerEpochs  int
	// StopperHorizon normalizes the stopper's iteration feature to the
	// expected tuning budget. Default 50 (the paper's generation budget).
	StopperHorizon int
	// Seed drives everything.
	Seed int64
}

func (c *TrainConfig) fillDefaults() {
	if c.Space == nil {
		c.Space = params.Space()
	}
	if c.Cluster == nil {
		c.Cluster = cluster.CoriHaswell(4, 32)
	}
	if c.Kernels == nil {
		c.Kernels = DefaultSweepKernels(c.Cluster.Procs())
	}
	if c.ExtraRandomRuns == 0 {
		c.ExtraRandomRuns = 20
	}
	if c.StopperEpochs == 0 {
		c.StopperEpochs = 40
	}
	if c.PickerEpochs == 0 {
		c.PickerEpochs = 30
	}
}

// Train performs TunIO's full offline training (§III-C, §III-D): a
// parameter sweep over the representative I/O kernels feeds the PCA
// impact analysis and the Smart Configuration Generation agent; the Early
// Stopping agent trains on synthetic noisy log curves. Both components
// keep learning online once deployed.
func Train(cfg TrainConfig) (*TunIO, error) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	sweep, err := Sweep(context.Background(), cfg.Kernels, cfg.Cluster, cfg.Space, cfg.Seed+1, cfg.ExtraRandomRuns)
	if err != nil {
		return nil, fmt.Errorf("core: offline sweep: %w", err)
	}
	picker, err := TrainSmartPicker(PickerConfig{Seed: cfg.Seed + 2}, sweep, cfg.PickerEpochs, rng)
	if err != nil {
		return nil, fmt.Errorf("core: picker training: %w", err)
	}
	stopper, err := TrainEarlyStopper(StopperConfig{Seed: cfg.Seed + 3, Horizon: cfg.StopperHorizon}, cfg.StopperEpochs, rng)
	if err != nil {
		return nil, fmt.Errorf("core: stopper training: %w", err)
	}
	return &TunIO{Stopper: stopper, Picker: picker}, nil
}
