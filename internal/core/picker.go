package core

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"tunio/internal/pca"
	"tunio/internal/rl"
)

// PickerConfig configures the Smart Configuration Generation agent.
type PickerConfig struct {
	// NumParams is the size of the parameter space (12 for the paper's
	// evaluation space).
	NumParams int
	// PerfScale normalizes perf; the paper uses BW_single x num_nodes.
	// 0 = adapt to the maximum perf observed.
	PerfScale float64
	// RewardDelay is the paper's 5-iteration reward delay. Default 5.
	RewardDelay int
	// MinSubset floors the subset size. Default 1.
	MinSubset int
	// Seed drives initialization and exploration.
	Seed int64
}

func (c *PickerConfig) fillDefaults() {
	if c.RewardDelay == 0 {
		c.RewardDelay = 5
	}
	if c.MinSubset == 0 {
		c.MinSubset = 2
	}
}

// SmartPicker is TunIO's Smart Configuration Generation component
// (§III-C): an RL agent that selects the subset of parameters to tune in
// the next iteration, ranked by impact on the tuning objective. The State
// Observer is an NN contextual bandit whose hidden representation feeds an
// NN Q-learning Subset Picker. It implements tuner.SubsetPicker.
type SmartPicker struct {
	cfg     PickerConfig
	impact  []float64 // per-parameter impact scores (sum 1)
	ranking []int     // parameter indices by descending impact
	bandit  *rl.ContextualBandit
	agent   *rl.QAgent
	rng     *rand.Rand

	delayed  *rl.DelayedReward
	scale    float64
	learn    bool
	lastMask []bool
	lastPerf float64
}

// NewSmartPicker builds an untrained picker with uniform impact scores.
// Most callers should use TrainSmartPicker for the offline-trained agent.
func NewSmartPicker(cfg PickerConfig) (*SmartPicker, error) {
	cfg.fillDefaults()
	if cfg.NumParams <= 0 {
		return nil, fmt.Errorf("core: NumParams must be positive, got %d", cfg.NumParams)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	contextDim := cfg.NumParams + 2 // perf, mask..., subset fraction
	bandit, err := rl.NewContextualBandit(rl.BanditConfig{
		ContextDim: contextDim,
		Arms:       cfg.NumParams,
		Hidden:     []int{24, 12},
		LR:         2e-3,
	}, rng)
	if err != nil {
		return nil, err
	}
	agent, err := rl.NewQAgent(rl.QConfig{
		StateDim: bandit.ObservationDim() + 1,
		Actions:  cfg.NumParams, // action a selects subset size a+1
		Hidden:   []int{24, 24},
		Gamma:    0.95,
		LR:       2e-3,
		Epsilon:  1.0, EpsilonMin: 0.03, EpsilonDecay: 0.9995,
		BatchSize: 32, TargetSync: 100,
	}, rng)
	if err != nil {
		return nil, err
	}
	impact := make([]float64, cfg.NumParams)
	ranking := make([]int, cfg.NumParams)
	for i := range impact {
		impact[i] = 1 / float64(cfg.NumParams)
		ranking[i] = i
	}
	return &SmartPicker{
		cfg:     cfg,
		impact:  impact,
		ranking: ranking,
		bandit:  bandit,
		agent:   agent,
		rng:     rng,
		delayed: rl.NewDelayedReward(cfg.RewardDelay),
		scale:   cfg.PerfScale,
		learn:   true,
	}, nil
}

// SetImpact installs impact scores (e.g. from the offline PCA analysis)
// and recomputes the ranking.
func (p *SmartPicker) SetImpact(scores []float64) error {
	if len(scores) != p.cfg.NumParams {
		return fmt.Errorf("core: impact scores length %d, want %d", len(scores), p.cfg.NumParams)
	}
	copy(p.impact, scores)
	normalizeSum(p.impact)
	p.ranking = pca.RankDescending(p.impact)
	return nil
}

// Impact returns a copy of the current impact scores.
func (p *SmartPicker) Impact() []float64 {
	return append([]float64(nil), p.impact...)
}

// Ranking returns parameter indices by descending impact.
func (p *SmartPicker) Ranking() []int {
	return append([]int(nil), p.ranking...)
}

// SetLearning toggles online learning.
func (p *SmartPicker) SetLearning(on bool) { p.learn = on }

// SetEpsilon overrides the subset picker's exploration rate.
func (p *SmartPicker) SetEpsilon(e float64) { p.agent.SetEpsilon(e) }

// maskFor returns the top-k mask by impact.
func (p *SmartPicker) maskFor(k int) []bool {
	if k < p.cfg.MinSubset {
		k = p.cfg.MinSubset
	}
	if k > p.cfg.NumParams {
		k = p.cfg.NumParams
	}
	mask := make([]bool, p.cfg.NumParams)
	for _, idx := range p.ranking[:k] {
		mask[idx] = true
	}
	return mask
}

func (p *SmartPicker) context(perf float64, mask []bool) []float64 {
	if p.cfg.PerfScale == 0 && perf > p.scale {
		p.scale = perf
	}
	scale := p.scale
	if scale <= 0 {
		scale = 1
	}
	ctx := make([]float64, 0, p.cfg.NumParams+2)
	ctx = append(ctx, perf/scale)
	k := 0
	for _, m := range mask {
		if m {
			ctx = append(ctx, 1)
			k++
		} else {
			ctx = append(ctx, 0)
		}
	}
	ctx = append(ctx, float64(k)/float64(p.cfg.NumParams))
	return ctx
}

// reward computes the agent's reward from the paper's norm_perf form:
// performance normalized by the subset size, so smaller subsets earn more
// per unit of objective. The subset-size division applies to the perf
// *gained* since the previous decision: a small subset is only rewarded
// while it keeps producing improvements — once progress stagnates the
// size bonus vanishes, which is what pushes the agent to widen the subset
// and escape interaction lock-ins (e.g. collective I/O left on with one
// aggregator).
func (p *SmartPicker) reward(perf float64, k int) float64 {
	scale := p.scale
	if scale <= 0 {
		scale = 1
	}
	frac := float64(k) / float64(p.cfg.NumParams)
	if frac <= 0 {
		frac = 1 / float64(p.cfg.NumParams)
	}
	gain := (perf - p.lastPerf) / scale
	if gain < 0 {
		gain = 0
	}
	return gain/frac/float64(p.cfg.NumParams) + 0.05*(perf/scale)
}

// NextSubset implements tuner.SubsetPicker: given the best perf achieved
// in the last iteration and the subset used, it returns the subset for the
// next iteration.
func (p *SmartPicker) NextSubset(perf float64, current []bool) []bool {
	if len(current) != p.cfg.NumParams {
		// defensive: fall back to everything
		all := make([]bool, len(current))
		for i := range all {
			all[i] = true
		}
		return all
	}
	ctx := p.context(perf, current)
	state := append(p.bandit.Observe(ctx), ctx[0])

	if p.learn && p.lastMask != nil {
		k := countTrue(p.lastMask)
		r := p.reward(perf, k)
		p.bandit.Update(p.context(perf, p.lastMask), k-1, r)
		for _, tr := range p.delayed.Tick(r, state, false) {
			p.agent.Observe(tr)
			p.agent.TrainStep(p.rng)
		}
		// Online impact adaptation: parameters active while performance is
		// high slowly gain impact (the component keeps learning from the
		// applications it is exposed to).
		p.adaptImpact(perf, p.lastMask)
	}
	p.lastPerf = perf

	action := p.agent.SelectAction(state, p.rng)
	mask := p.maskFor(action + 1)
	if p.learn {
		p.delayed.Record(state, action)
	}
	p.lastMask = mask
	return mask
}

// adaptImpact is the online half of impact learning: parameters active
// while the objective improves gain impact; parameters active through
// stagnation slowly lose it (so fresh candidates rotate into the top-k and
// interaction partners locked out of the subset get another chance).
func (p *SmartPicker) adaptImpact(perf float64, mask []bool) {
	scale := p.scale
	if scale <= 0 {
		scale = 1
	}
	gain := (perf - p.lastPerf) / scale
	var lr float64
	if gain > 0 {
		lr = 0.05 * gain
	} else {
		lr = -0.01
	}
	for i, m := range mask {
		if m {
			p.impact[i] += lr * p.impact[i]
		}
	}
	normalizeSum(p.impact)
	p.ranking = pca.RankDescending(p.impact)
}

// Reset implements tuner.SubsetPicker.
func (p *SmartPicker) Reset() {
	p.delayed.Reset()
	p.lastMask = nil
	p.lastPerf = 0
	if p.cfg.PerfScale == 0 {
		p.scale = 0
	}
}

// MarshalJSON serializes the trained picker.
func (p *SmartPicker) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Cfg    PickerConfig         `json:"cfg"`
		Impact []float64            `json:"impact"`
		Bandit *rl.ContextualBandit `json:"bandit"`
		Agent  *rl.QAgent           `json:"agent"`
	}{p.cfg, p.impact, p.bandit, p.agent})
}

// UnmarshalJSON restores a serialized picker.
func (p *SmartPicker) UnmarshalJSON(data []byte) error {
	var payload struct {
		Cfg    PickerConfig    `json:"cfg"`
		Impact []float64       `json:"impact"`
		Bandit json.RawMessage `json:"bandit"`
		Agent  json.RawMessage `json:"agent"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return err
	}
	payload.Cfg.fillDefaults()
	if payload.Cfg.NumParams <= 0 || len(payload.Impact) != payload.Cfg.NumParams {
		return fmt.Errorf("core: picker payload inconsistent")
	}
	bandit := &rl.ContextualBandit{}
	if err := json.Unmarshal(payload.Bandit, bandit); err != nil {
		return fmt.Errorf("core: picker bandit: %w", err)
	}
	agent := &rl.QAgent{}
	if err := json.Unmarshal(payload.Agent, agent); err != nil {
		return fmt.Errorf("core: picker agent: %w", err)
	}
	p.cfg = payload.Cfg
	p.impact = payload.Impact
	p.ranking = pca.RankDescending(p.impact)
	p.bandit = bandit
	p.agent = agent
	p.rng = rand.New(rand.NewSource(payload.Cfg.Seed))
	p.delayed = rl.NewDelayedReward(payload.Cfg.RewardDelay)
	p.scale = payload.Cfg.PerfScale
	p.learn = true
	return nil
}

func countTrue(mask []bool) int {
	n := 0
	for _, m := range mask {
		if m {
			n++
		}
	}
	return n
}

func normalizeSum(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s <= 0 {
		for i := range v {
			v[i] = 1 / float64(len(v))
		}
		return
	}
	for i := range v {
		v[i] /= s
	}
}
