package core

import (
	"context"
	"fmt"
	"math/rand"

	"tunio/internal/cluster"
	"tunio/internal/mat"
	"tunio/internal/params"
	"tunio/internal/pca"
	"tunio/internal/workload"
)

// SweepResult holds the observations of an offline parameter sweep: one
// row of normalized parameter features per run, aligned with the measured
// perf values (§III-C: "a simple parameter sweep on some representative
// I/O kernels, including VPIC, FLASH, and HACC").
type SweepResult struct {
	Space    []params.Parameter
	Features [][]float64
	Perfs    []float64
}

// Observations returns the feature matrix.
func (s *SweepResult) Observations() (*mat.Matrix, error) {
	return mat.FromRows(s.Features)
}

// ImpactScores runs the paper's PCA analysis on the sweep, returning one
// impact score per parameter (summing to 1).
func (s *SweepResult) ImpactScores() ([]float64, error) {
	m, err := s.Observations()
	if err != nil {
		return nil, err
	}
	return pca.ImpactScores(m, s.Perfs)
}

// SweepRun is one scheduled sweep evaluation: which kernel to run, the
// configuration to run it under, and the deterministic per-run seed. The
// run list is a pure function of (space, seed, extraRandom, kernel count),
// so any executor — the serial direct loop here or the parallel replay
// sweep in internal/train — that scores the same plan produces the same
// observations in the same order.
type SweepRun struct {
	Kernel     int
	Assignment *params.Assignment
	Seed       int64
}

// SweepPlan enumerates the offline sweep's runs: per kernel, every value
// of every parameter with all others at defaults (one-at-a-time), then
// extraRandom random assignments for cross-parameter signal. Seeds count
// up from seed+1 in plan order, and the random genomes come from one
// rand.New(seed) stream shared across kernels — both exactly the
// historical Sweep behavior, now stated as data.
func SweepPlan(numKernels int, space []params.Parameter, seed int64, extraRandom int) ([]SweepRun, error) {
	rng := rand.New(rand.NewSource(seed))
	runSeed := seed
	var runs []SweepRun
	for k := 0; k < numKernels; k++ {
		// one-at-a-time sweep
		for pi, p := range space {
			for vi := range p.Values {
				a := params.DefaultAssignment(space)
				if err := a.SetIndex(space[pi].Name, vi); err != nil {
					return nil, err
				}
				runSeed++
				runs = append(runs, SweepRun{Kernel: k, Assignment: a, Seed: runSeed})
			}
		}
		// random combinations
		for r := 0; r < extraRandom; r++ {
			genome := make([]int, len(space))
			for gi := range genome {
				genome[gi] = rng.Intn(len(space[gi].Values))
			}
			a, err := params.FromGenome(space, genome)
			if err != nil {
				return nil, err
			}
			runSeed++
			runs = append(runs, SweepRun{Kernel: k, Assignment: a, Seed: runSeed})
		}
	}
	return runs, nil
}

// Sweep runs the offline parameter sweep over SweepPlan's run list by
// direct execution: each run gets a fresh simulated stack. Cancellation is
// honored between runs, and the first failing run aborts the sweep — the
// same smallest-index-error semantics tuner.Pool gives a parallel pass.
func Sweep(ctx context.Context, kernels []workload.Workload, c *cluster.Cluster, space []params.Parameter, seed int64, extraRandom int) (*SweepResult, error) {
	if len(kernels) == 0 {
		return nil, fmt.Errorf("core: sweep needs at least one kernel")
	}
	runs, err := SweepPlan(len(kernels), space, seed, extraRandom)
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Space: space}
	for i, r := range runs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := workload.Execute(kernels[r.Kernel], c, r.Assignment.Settings(), r.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: sweep run %d (%s): %w", i, kernels[r.Kernel].Name(), err)
		}
		out.Features = append(out.Features, r.Assignment.Features())
		out.Perfs = append(out.Perfs, res.Perf)
	}
	return out, nil
}

// DefaultSweepKernels returns small-scale VPIC, FLASH, and HACC instances
// (the paper's representative kernels) for offline training sweeps.
func DefaultSweepKernels(procs int) []workload.Workload {
	v := workload.NewVPIC(procs)
	v.ParticlesPerRank = 128 << 10
	fl := workload.NewFLASH(procs)
	fl.BlocksPerRank = 16
	fl.Unknowns = 4
	h := workload.NewHACC(procs)
	h.ParticlesPerRank = 128 << 10
	return []workload.Workload{v, fl, h}
}

// Surrogate is an additive performance model fit from sweep data, used to
// generate cheap synthetic tuning episodes for offline Q training. It is
// JSON-serializable so the training pipeline can persist it as a stage
// artifact and retrain the picker without re-running the sweep.
type Surrogate struct {
	Space   []params.Parameter `json:"space"`
	Base    float64            `json:"base"`
	Effects [][]float64        `json:"effects"` // [param][valueIdx] additive effect
	Max     float64            `json:"max"`
}

// FitSurrogate estimates per-value effects as the mean perf of runs using
// that value minus the grand mean.
func FitSurrogate(s *SweepResult) *Surrogate {
	grand := mat.Mean(s.Perfs)
	sur := &Surrogate{Space: s.Space, Base: grand}
	sur.Effects = make([][]float64, len(s.Space))
	for pi, p := range s.Space {
		sur.Effects[pi] = make([]float64, len(p.Values))
		counts := make([]int, len(p.Values))
		sums := make([]float64, len(p.Values))
		for ri, feat := range s.Features {
			vi := valueIndexFromFeature(feat[pi], len(p.Values))
			sums[vi] += s.Perfs[ri]
			counts[vi]++
		}
		for vi := range p.Values {
			if counts[vi] > 0 {
				sur.Effects[pi][vi] = sums[vi]/float64(counts[vi]) - grand
			}
		}
	}
	best := sur.Base
	for pi := range sur.Effects {
		bestEff := 0.0
		for _, e := range sur.Effects[pi] {
			if e > bestEff {
				bestEff = e
			}
		}
		best += bestEff
	}
	sur.Max = best
	return sur
}

// valueIndexFromFeature inverts the Features normalization.
func valueIndexFromFeature(f float64, n int) int {
	if n <= 1 {
		return 0
	}
	i := int(f*float64(n-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// perfOf evaluates the surrogate for a genome.
func (s *Surrogate) perfOf(genome []int) float64 {
	v := s.Base
	for pi, g := range genome {
		v += s.Effects[pi][g]
	}
	if v < 1 {
		v = 1
	}
	return v
}

// bestValue returns the best value index for a parameter.
func (s *Surrogate) bestValue(pi int) int {
	best := 0
	for vi := range s.Effects[pi] {
		if s.Effects[pi][vi] > s.Effects[pi][best] {
			best = vi
		}
	}
	return best
}

// TrainSmartPicker builds and offline-trains a SmartPicker: it runs the
// sweep's PCA to seed impact scores, fits an additive surrogate from the
// sweep, and trains the bandit + Q agent on synthetic tuning episodes over
// the surrogate until the average reward stagnates (§III-C). The returned
// picker keeps learning online.
func TrainSmartPicker(cfg PickerConfig, sweep *SweepResult, maxEpochs int, rng *rand.Rand) (*SmartPicker, error) {
	scores, err := sweep.ImpactScores()
	if err != nil {
		return nil, err
	}
	return TrainSmartPickerFrom(cfg, scores, FitSurrogate(sweep), mat.MaxVal(sweep.Perfs), maxEpochs, rng)
}

// TrainSmartPickerFrom trains a picker from precomputed sweep products —
// PCA impact scores, a fitted surrogate, and the perf scale (the sweep's
// maximum observed perf) — so the training pipeline can resume from stage
// artifacts without the sweep in memory. TrainSmartPicker is the one-shot
// wrapper; both produce bit-identical pickers from the same inputs.
func TrainSmartPickerFrom(cfg PickerConfig, scores []float64, sur *Surrogate, perfScale float64, maxEpochs int, rng *rand.Rand) (*SmartPicker, error) {
	cfg.NumParams = len(sur.Space)
	p, err := NewSmartPicker(cfg)
	if err != nil {
		return nil, err
	}
	if err := p.SetImpact(scores); err != nil {
		return nil, err
	}
	if cfg.PerfScale == 0 {
		p.scale = perfScale
	}

	if maxEpochs <= 0 {
		maxEpochs = 40
	}
	const episodesPerEpoch = 20
	var avgHistory []float64
	for epoch := 0; epoch < maxEpochs; epoch++ {
		total := 0.0
		for ep := 0; ep < episodesPerEpoch; ep++ {
			total += p.trainEpisode(sur, rng)
		}
		avgHistory = append(avgHistory, total/episodesPerEpoch)
		if stagnated(avgHistory) {
			break
		}
	}
	p.Reset()
	p.SetEpsilon(0.1)
	// Re-seed impact: online adaptation during training episodes drifts
	// scores; deployment starts from the PCA analysis.
	if err := p.SetImpact(scores); err != nil {
		return nil, err
	}
	return p, nil
}

// trainEpisode simulates one tuning episode over the surrogate: per
// iteration the picker chooses a subset; the episode greedily improves one
// active parameter per iteration (a GA generation's net effect), and the
// agent is rewarded with the paper's subset-size-normalized perf.
func (p *SmartPicker) trainEpisode(sur *Surrogate, rng *rand.Rand) float64 {
	p.Reset()
	genome := make([]int, len(sur.Space))
	for pi, par := range sur.Space {
		genome[pi] = par.Default
	}
	mask := p.maskFor(p.cfg.NumParams)
	perf := sur.perfOf(genome)
	ret := 0.0
	const horizon = 15
	for iter := 0; iter < horizon; iter++ {
		mask = p.NextSubset(perf, mask)
		// Improve the active parameter with the largest remaining gain
		// (what a GA generation restricted to this subset tends to find).
		bestGain, bestParam := 0.0, -1
		for pi, active := range mask {
			if !active {
				continue
			}
			bv := sur.bestValue(pi)
			gain := sur.Effects[pi][bv] - sur.Effects[pi][genome[pi]]
			if gain > bestGain {
				bestGain, bestParam = gain, pi
			}
		}
		if bestParam >= 0 && rng.Float64() < 0.8 {
			genome[bestParam] = sur.bestValue(bestParam)
		}
		perf = sur.perfOf(genome) * (1 + rng.NormFloat64()*0.02)
		ret += p.reward(perf, countTrue(mask))
	}
	return ret / horizon
}
