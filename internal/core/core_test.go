package core

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"tunio/internal/params"
)

func TestStopperConfigDefaults(t *testing.T) {
	s, err := NewEarlyStopper(StopperConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Horizon != 50 || s.cfg.RewardDelay != 5 || s.cfg.IterationCost != 0.012 {
		t.Fatalf("defaults not applied: %+v", s.cfg)
	}
}

func TestStopperNeverStopsOnFirstObservation(t *testing.T) {
	s, _ := NewEarlyStopper(StopperConfig{Seed: 2})
	if s.Stop(0, 100) {
		t.Fatal("stopped on first observation")
	}
}

func TestStopperResetClearsEpisodeState(t *testing.T) {
	s, _ := NewEarlyStopper(StopperConfig{Seed: 3})
	s.Stop(0, 100)
	s.Stop(1, 120)
	s.Reset()
	if len(s.history) != 0 || s.delayed.Pending() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestLogCurveShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := LogCurve{Base: 100, Amp: 1000, Growth: 0.5, Noise: 0}
	v0 := c.At(0, rng)
	v10 := c.At(10, rng)
	v50 := c.At(50, rng)
	if math.Abs(v0-100) > 1e-9 {
		t.Fatalf("At(0) = %v, want base", v0)
	}
	if v10 <= v0 || v50 <= v10 {
		t.Fatal("curve not increasing")
	}
	// log shape: early gains dominate
	if (v10 - v0) < (v50-v10)/2 {
		t.Fatal("curve does not look logarithmic")
	}
	if math.Abs(v50-1100) > 1 {
		t.Fatalf("At(50) = %v, want base+amp", v50)
	}
}

func TestLogCurvePlateau(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := LogCurve{Base: 100, Amp: 1000, Growth: 0.5, Plateau: 5, PlateauAt: 10}
	inPlateau := c.At(12, rng)
	atStart := c.At(10, rng)
	if math.Abs(inPlateau-atStart) > 1e-9 {
		t.Fatalf("plateau not flat: %v vs %v", inPlateau, atStart)
	}
	after := c.At(20, rng)
	if after <= atStart {
		t.Fatal("curve did not resume after plateau")
	}
}

func TestRandomLogCurveInRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100; i++ {
		c := RandomLogCurve(rng)
		if c.Base <= 0 || c.Amp <= 0 || c.Growth <= 0 || c.Noise <= 0 {
			t.Fatalf("bad curve %+v", c)
		}
	}
}

func TestStagnated(t *testing.T) {
	if stagnated([]float64{1, 2, 3}) {
		t.Fatal("too short to stagnate")
	}
	if !stagnated([]float64{1, 2, 3, 3, 3, 3, 3, 3.05}) {
		t.Fatal("flat history should stagnate")
	}
	if stagnated([]float64{1, 1.2, 1.5, 1.9, 2.4, 3.0}) {
		t.Fatal("growing history should not stagnate")
	}
}

func trainedStopper(t *testing.T) *EarlyStopper {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	s, err := TrainEarlyStopper(StopperConfig{Seed: 77}, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	s.SetLearning(false) // deterministic evaluation
	s.SetEpsilon(0)
	return s
}

func TestTrainedStopperStopsOnDeadCurve(t *testing.T) {
	// Perf that never improves: the trained agent must stop well before
	// the horizon (wasting the full 50-iteration budget means it learned
	// nothing).
	s := trainedStopper(t)
	s.Reset()
	stopAt := -1
	for i := 0; i <= 50; i++ {
		if s.Stop(i, 1000) {
			stopAt = i
			break
		}
	}
	if stopAt == -1 || stopAt > 30 {
		t.Fatalf("trained stopper stopped at %d on a flat curve, want early", stopAt)
	}
}

func TestTrainedStopperRidesGrowthCurve(t *testing.T) {
	// Strong steady growth: the agent should not stop in the first few
	// iterations (that would forfeit most of the gain).
	s := trainedStopper(t)
	s.Reset()
	rng := rand.New(rand.NewSource(9))
	c := LogCurve{Base: 500, Amp: 4000, Growth: 1.0, Noise: 0.01}
	best := 0.0
	stopAt := 51
	for i := 0; i <= 50; i++ {
		if v := c.At(i, rng); v > best {
			best = v
		}
		if s.Stop(i, best) {
			stopAt = i
			break
		}
	}
	if stopAt < 5 {
		t.Fatalf("stopped at %d on a strong growth curve, forfeiting gains", stopAt)
	}
}

func TestTrainedStopperCapturesMostOfCurve(t *testing.T) {
	// Across random curves, stopping must capture >= 70% of the final
	// achievable gain on average (the paper reports ~90% of best RoTI).
	s := trainedStopper(t)
	rng := rand.New(rand.NewSource(10))
	captured, available := 0.0, 0.0
	for trial := 0; trial < 30; trial++ {
		s.Reset()
		c := RandomLogCurve(rng)
		best := 0.0
		var atStop float64
		stopped := false
		for i := 0; i <= 50; i++ {
			if v := c.At(i, rng); v > best {
				best = v
			}
			if !stopped && s.Stop(i, best) {
				atStop = best
				stopped = true
			}
		}
		if !stopped {
			atStop = best
		}
		captured += atStop - c.Base
		available += best - c.Base
	}
	if captured < 0.7*available {
		t.Fatalf("trained stopper captured %.0f%% of available gain, want >= 70%%",
			100*captured/available)
	}
}

func TestStopperSerializationRoundTrip(t *testing.T) {
	s := trainedStopper(t)
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var restored EarlyStopper
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	restored.SetLearning(false)
	restored.SetEpsilon(0)
	// Same decision trajectory on a fixed curve.
	s.Reset()
	for i := 0; i <= 20; i++ {
		perf := 100 + 10*float64(i)
		a := s.Stop(i, perf)
		b := restored.Stop(i, perf)
		if a != b {
			t.Fatalf("restored stopper diverged at %d", i)
		}
	}
}

func TestPickerValidation(t *testing.T) {
	if _, err := NewSmartPicker(PickerConfig{NumParams: 0}); err == nil {
		t.Fatal("want error")
	}
}

func TestPickerMaskFor(t *testing.T) {
	p, err := NewSmartPicker(PickerConfig{NumParams: 5, Seed: 1, MinSubset: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := countTrue(p.maskFor(0)); got != 2 {
		t.Fatalf("min subset not enforced: %d", got)
	}
	if got := countTrue(p.maskFor(99)); got != 5 {
		t.Fatalf("over-large subset not clamped: %d", got)
	}
	if err := p.SetImpact([]float64{0.1, 0.5, 0.2, 0.1, 0.1}); err != nil {
		t.Fatal(err)
	}
	mask := p.maskFor(2)
	if !mask[1] || !mask[2] {
		t.Fatalf("top-2 mask = %v, want params 1 and 2", mask)
	}
}

func TestPickerSetImpactValidation(t *testing.T) {
	p, _ := NewSmartPicker(PickerConfig{NumParams: 3, Seed: 1})
	if err := p.SetImpact([]float64{1}); err == nil {
		t.Fatal("want error")
	}
}

func TestPickerNextSubsetShape(t *testing.T) {
	p, _ := NewSmartPicker(PickerConfig{NumParams: 12, Seed: 2})
	mask := p.NextSubset(100, make([]bool, 12))
	if len(mask) != 12 || countTrue(mask) < 1 {
		t.Fatalf("mask = %v", mask)
	}
	// wrong-width input falls back to all-active
	fallback := p.NextSubset(100, make([]bool, 3))
	for _, m := range fallback {
		if !m {
			t.Fatal("fallback should activate everything")
		}
	}
}

// syntheticSweep builds sweep data where parameter 0 dominates perf,
// parameter 1 matters somewhat, and the rest are noise.
func syntheticSweep(space []params.Parameter, rng *rand.Rand, n int) *SweepResult {
	s := &SweepResult{Space: space}
	for i := 0; i < n; i++ {
		genome := make([]int, len(space))
		for gi := range genome {
			genome[gi] = rng.Intn(len(space[gi].Values))
		}
		a, _ := params.FromGenome(space, genome)
		f := a.Features()
		perf := 500 + 4000*f[0] + 800*f[1] + 50*rng.NormFloat64()
		s.Features = append(s.Features, f)
		s.Perfs = append(s.Perfs, perf)
	}
	return s
}

func TestSweepImpactScoresFindDriver(t *testing.T) {
	space := params.Space()
	rng := rand.New(rand.NewSource(11))
	sweep := syntheticSweep(space, rng, 600)
	scores, err := sweep.ImpactScores()
	if err != nil {
		t.Fatal(err)
	}
	rank := make([]int, 0)
	for i := range scores {
		rank = append(rank, i)
	}
	// param 0 must be the top-ranked impact
	best := 0
	for i := range scores {
		if scores[i] > scores[best] {
			best = i
		}
	}
	if best != 0 {
		t.Fatalf("top impact = param %d (scores %v), want 0", best, scores)
	}
}

func TestTrainSmartPickerLearnsSubsets(t *testing.T) {
	space := params.Space()
	rng := rand.New(rand.NewSource(12))
	sweep := syntheticSweep(space, rng, 500)
	p, err := TrainSmartPicker(PickerConfig{Seed: 12}, sweep, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	p.SetLearning(false)
	p.SetEpsilon(0)
	// Trained picker should choose subsets that include the dominant
	// parameter and are smaller than the full space.
	mask := make([]bool, len(space))
	sizes := 0
	includes0 := 0
	const rounds = 10
	perf := 500.0
	for i := 0; i < rounds; i++ {
		mask = p.NextSubset(perf, mask)
		sizes += countTrue(mask)
		if mask[0] {
			includes0++
		}
		perf += 200
	}
	if includes0 < rounds {
		t.Fatalf("dominant parameter excluded in %d of %d rounds", rounds-includes0, rounds)
	}
	if sizes >= rounds*len(space) {
		t.Fatal("picker never chose a proper subset")
	}
}

func TestPickerSerializationRoundTrip(t *testing.T) {
	space := params.Space()
	rng := rand.New(rand.NewSource(13))
	sweep := syntheticSweep(space, rng, 300)
	p, err := TrainSmartPicker(PickerConfig{Seed: 13}, sweep, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var restored SmartPicker
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	a, b := p.Impact(), restored.Impact()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatal("impact scores not restored")
		}
	}
	ra, rb := p.Ranking(), restored.Ranking()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatal("ranking not restored")
		}
	}
}

func TestFitSurrogate(t *testing.T) {
	space := params.Space()
	rng := rand.New(rand.NewSource(14))
	sweep := syntheticSweep(space, rng, 800)
	sur := FitSurrogate(sweep)
	// The surrogate must prefer the max value of the dominant param 0.
	if bv := sur.bestValue(0); bv != len(space[0].Values)-1 {
		t.Fatalf("surrogate best value for param 0 = %d, want max index", bv)
	}
	def := make([]int, len(space))
	best := make([]int, len(space))
	for i := range best {
		best[i] = sur.bestValue(i)
	}
	if sur.perfOf(best) <= sur.perfOf(def) {
		t.Fatal("surrogate optimum not above default")
	}
}

func TestValueIndexFromFeature(t *testing.T) {
	if valueIndexFromFeature(0, 8) != 0 || valueIndexFromFeature(1, 8) != 7 {
		t.Fatal("endpoints wrong")
	}
	if valueIndexFromFeature(0.5, 2) != 1 {
		t.Fatal("rounding wrong")
	}
	if valueIndexFromFeature(0.9, 1) != 0 {
		t.Fatal("single-value param should be 0")
	}
}

func TestNormalizeSum(t *testing.T) {
	v := []float64{2, 6}
	normalizeSum(v)
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Fatalf("normalize = %v", v)
	}
	z := []float64{0, 0}
	normalizeSum(z)
	if z[0] != 0.5 {
		t.Fatal("zero-sum should uniformize")
	}
}
