// Package core implements TunIO's three components (§III): the RL-based
// Early Stopping agent, the RL-based Smart Configuration Generation agent
// (impact-first tuning), and the facade over the Application I/O Discovery
// pipeline — together with their offline training procedures.
package core

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"tunio/internal/rl"
)

// stopperStateDim is the width of the early stopper's state observation.
const stopperStateDim = 5

// stopper actions.
const (
	actionContinue = 0
	actionStop     = 1
)

// StopperConfig configures the Early Stopping agent.
type StopperConfig struct {
	// Horizon is the iteration scale used to normalize the iteration
	// feature (the tuning budget order of magnitude). Default 50.
	Horizon int
	// PerfScale normalizes perf features; the paper normalizes by
	// BW_single x num_nodes. 0 = adapt to the maximum perf seen.
	PerfScale float64
	// IterationCost is the per-iteration tuning cost expressed as a
	// fraction of PerfScale: continuing one more iteration must buy at
	// least this much normalized gain to be worth it. Default 0.008.
	IterationCost float64
	// RewardDelay is the paper's reward delay in iterations. Default 5.
	RewardDelay int
	// ExpectedRuns, when > 0, tells the stopper how many production
	// executions the user expects (§VI future work): the more runs the
	// tune will amortize over, the longer it is worth tuning. The default
	// decision threshold corresponds to ~1000 expected runs; values above
	// bias toward continuing, values below toward stopping sooner.
	ExpectedRuns float64
	// Seed drives agent initialization and exploration.
	Seed int64
}

// baselineExpectedRuns is the production-run count the default stopping
// threshold is calibrated for.
const baselineExpectedRuns = 1000

// stopBias converts ExpectedRuns into a shift on the stop/continue Q
// comparison: positive bias makes stopping harder.
func (c StopperConfig) stopBias() float64 {
	if c.ExpectedRuns <= 0 {
		return 0
	}
	return 0.08 * math.Log10(c.ExpectedRuns/baselineExpectedRuns)
}

func (c *StopperConfig) fillDefaults() {
	if c.Horizon == 0 {
		c.Horizon = 50
	}
	if c.IterationCost == 0 {
		c.IterationCost = 0.012
	}
	if c.RewardDelay == 0 {
		c.RewardDelay = 5
	}
}

// EarlyStopper is TunIO's RL early-stopping component. It implements
// tuner.Stopper: fed (iteration, best perf) once per tuning iteration, it
// decides stop or continue, learning online from the trends it observes on
// top of its offline training (§III-D).
type EarlyStopper struct {
	cfg   StopperConfig
	agent *rl.QAgent
	rng   *rand.Rand

	// per-episode state
	history []float64 // best perf per observed iteration
	delayed *rl.DelayedReward
	scale   float64
	learn   bool
}

// NewEarlyStopper builds an untrained agent (exploring heavily). Most
// callers should use TrainEarlyStopper to get an offline-trained one.
func NewEarlyStopper(cfg StopperConfig) (*EarlyStopper, error) {
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	agent, err := rl.NewQAgent(rl.QConfig{
		StateDim: stopperStateDim,
		Actions:  2,
		Hidden:   []int{24, 24},
		Gamma:    0.97,
		LR:       2e-3,
		Epsilon:  1.0, EpsilonMin: 0.02, EpsilonDecay: 0.999,
		BatchSize: 32, TargetSync: 100,
	}, rng)
	if err != nil {
		return nil, err
	}
	return &EarlyStopper{
		cfg:     cfg,
		agent:   agent,
		rng:     rng,
		delayed: rl.NewDelayedReward(cfg.RewardDelay),
		scale:   cfg.PerfScale,
		learn:   true,
	}, nil
}

// SetLearning toggles online learning (deployment may freeze the agent).
func (s *EarlyStopper) SetLearning(on bool) { s.learn = on }

// Epsilon exposes the exploration rate (for tests and ablations).
func (s *EarlyStopper) Epsilon() float64 { return s.agent.Epsilon() }

// SetEpsilon overrides exploration (deployed agents run nearly greedy).
func (s *EarlyStopper) SetEpsilon(e float64) { s.agent.SetEpsilon(e) }

// state builds the observation at the current history point.
func (s *EarlyStopper) state() []float64 {
	n := len(s.history)
	perf := s.history[n-1]
	if s.cfg.PerfScale == 0 && perf > s.scale {
		s.scale = perf
	}
	scale := s.scale
	if scale <= 0 {
		scale = 1
	}
	at := func(back int) float64 {
		i := n - 1 - back
		if i < 0 {
			i = 0
		}
		return s.history[i]
	}
	iterFrac := float64(n-1) / float64(s.cfg.Horizon)
	gain1 := (perf - at(1)) / scale
	gain5 := (perf - at(5)) / scale
	roti := 0.0
	if n > 1 {
		roti = (perf - s.history[0]) / scale / float64(n-1)
	}
	return []float64{iterFrac, perf / scale, gain1, gain5, roti * 10}
}

// Stop implements tuner.Stopper.
func (s *EarlyStopper) Stop(iteration int, bestPerf float64) bool {
	s.history = append(s.history, bestPerf)
	if len(s.history) < 2 {
		return false // never stop on the very first observation
	}
	st := s.state()

	// Deliver delayed rewards for earlier continue decisions: the reward
	// of continuing is the normalized gain realized since, minus the cost
	// of the iterations spent (the paper's 5-iteration reward delay).
	reward := 0.0
	if s.learn {
		scale := s.scale
		if scale <= 0 {
			scale = 1
		}
		back := s.cfg.RewardDelay
		if back >= len(s.history) {
			back = len(s.history) - 1
		}
		gain := (bestPerf - s.history[len(s.history)-1-back]) / scale
		reward = gain - float64(back)*s.cfg.IterationCost
		for _, tr := range s.delayed.Tick(reward, st, false) {
			s.agent.Observe(tr)
			s.agent.TrainStep(s.rng)
		}
	}

	action := s.selectAction(st)
	if s.learn {
		if action == actionStop {
			// Terminal: stopping forfeits future gains but saves cost;
			// neutral reward anchors the stop/continue trade-off.
			s.agent.Observe(rl.Transition{State: st, Action: actionStop, Reward: 0, Next: st, Done: true})
			s.agent.TrainStep(s.rng)
			// Flush pending continue decisions with the latest trend
			// reward: they realized (part of) the gains seen so far.
			for _, tr := range s.delayed.Tick(reward, st, true) {
				s.agent.Observe(tr)
				s.agent.TrainStep(s.rng)
			}
		} else {
			s.delayed.Record(st, actionContinue)
		}
	}
	return action == actionStop
}

// selectAction applies the agent's ε-greedy policy with the
// expected-runs bias on the stop/continue comparison.
func (s *EarlyStopper) selectAction(st []float64) int {
	bias := s.cfg.stopBias()
	if bias == 0 {
		return s.agent.SelectAction(st, s.rng)
	}
	if s.rng.Float64() < s.agent.Epsilon() {
		return s.rng.Intn(2)
	}
	q := s.agent.QValues(st)
	if q[actionStop] > q[actionContinue]+bias {
		return actionStop
	}
	return actionContinue
}

// SetExpectedRuns updates the expected production-run count (§VI: lets a
// user who knows the application will run long enough push the stopper to
// keep tuning).
func (s *EarlyStopper) SetExpectedRuns(runs float64) {
	s.cfg.ExpectedRuns = runs
}

// Reset implements tuner.Stopper: clears per-episode state, keeping the
// learned weights.
func (s *EarlyStopper) Reset() {
	s.history = s.history[:0]
	s.delayed.Reset()
	if s.cfg.PerfScale == 0 {
		s.scale = 0
	}
}

// MarshalJSON serializes the trained agent and configuration.
func (s *EarlyStopper) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Cfg   StopperConfig `json:"cfg"`
		Agent *rl.QAgent    `json:"agent"`
	}{s.cfg, s.agent})
}

// UnmarshalJSON restores a serialized stopper.
func (s *EarlyStopper) UnmarshalJSON(data []byte) error {
	var payload struct {
		Cfg   StopperConfig   `json:"cfg"`
		Agent json.RawMessage `json:"agent"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return err
	}
	payload.Cfg.fillDefaults()
	agent := &rl.QAgent{}
	if err := json.Unmarshal(payload.Agent, agent); err != nil {
		return fmt.Errorf("core: stopper agent: %w", err)
	}
	s.cfg = payload.Cfg
	s.agent = agent
	s.rng = rand.New(rand.NewSource(payload.Cfg.Seed))
	s.delayed = rl.NewDelayedReward(payload.Cfg.RewardDelay)
	s.scale = payload.Cfg.PerfScale
	s.learn = true
	return nil
}

// LogCurve is a synthetic tuning trajectory used for offline training: the
// paper observes that tuning performance follows a logarithmic curve
// (Figure 2) and trains the stopping agent on generated log curves with
// noise, including randomized downward shifts modeling iterations where a
// wrong parameter was briefly chosen.
type LogCurve struct {
	Base, Amp, Growth float64
	// Sat is the iteration at which the curve reaches Base+Amp (the
	// normalization point); training sets it inside the tuning horizon so
	// episodes see both growth and exhausted regimes. Default 50.
	Sat               int
	Noise             float64
	DipProb, DipDepth float64
	Plateau           int // iterations of mid-curve stall (0 = none)
	PlateauAt         int
}

// RandomLogCurve draws curve characteristics (initial value, growth rate,
// saturation point, noise, dips) from the generator's distribution, scaled
// to the given tuning horizon.
func RandomLogCurve(rng *rand.Rand) LogCurve {
	return RandomLogCurveHorizon(rng, 50)
}

// RandomLogCurveHorizon draws a curve saturating within 30%-90% of the
// horizon.
func RandomLogCurveHorizon(rng *rand.Rand, horizon int) LogCurve {
	if horizon < 4 {
		horizon = 4
	}
	c := LogCurve{
		Base:     200 + rng.Float64()*800,
		Amp:      500 + rng.Float64()*3500,
		Growth:   0.2 + rng.Float64()*1.3,
		Sat:      int(float64(horizon) * (0.3 + rng.Float64()*0.6)),
		Noise:    0.01 + rng.Float64()*0.04,
		DipProb:  0.05 + rng.Float64()*0.1,
		DipDepth: 0.05 + rng.Float64()*0.2,
	}
	if c.Sat < 2 {
		c.Sat = 2
	}
	if rng.Float64() < 0.4 {
		c.Plateau = 2 + rng.Intn(1+horizon/6)
		c.PlateauAt = 2 + rng.Intn(1+horizon/3)
	}
	return c
}

// At returns the curve's best-perf value at iteration i (monotone in
// expectation; the caller applies running-max semantics). Beyond Sat the
// curve is exhausted and stays at Base+Amp.
func (c LogCurve) At(i int, rng *rand.Rand) float64 {
	sat := c.Sat
	if sat <= 0 {
		sat = 50
	}
	eff := i
	if c.Plateau > 0 && i > c.PlateauAt {
		eff = i - c.Plateau
		if eff < c.PlateauAt {
			eff = c.PlateauAt
		}
	}
	if eff > sat {
		eff = sat
	}
	v := c.Base + c.Amp*math.Log1p(c.Growth*float64(eff))/math.Log1p(c.Growth*float64(sat))
	v *= 1 + rng.NormFloat64()*c.Noise
	if rng.Float64() < c.DipProb {
		v *= 1 - c.DipDepth // wrong parameter chosen this iteration
	}
	return v
}

// TrainEarlyStopper trains a stopper offline on synthetic log curves until
// the average episode reward stagnates (less than 5% improvement across
// five epochs, the paper's criterion) or maxEpochs elapses. The returned
// stopper has exploration dialed down for deployment but keeps learning
// online.
func TrainEarlyStopper(cfg StopperConfig, maxEpochs int, rng *rand.Rand) (*EarlyStopper, error) {
	s, err := NewEarlyStopper(cfg)
	if err != nil {
		return nil, err
	}
	if maxEpochs <= 0 {
		maxEpochs = 60
	}
	const episodesPerEpoch = 40
	// Exploration must decay before the stagnation criterion is
	// meaningful: early epochs have noisy-flat average rewards.
	const burnInEpochs = 15
	var avgHistory []float64
	for epoch := 0; epoch < maxEpochs; epoch++ {
		total := 0.0
		for ep := 0; ep < episodesPerEpoch; ep++ {
			total += s.trainEpisode(rng)
		}
		avg := total / episodesPerEpoch
		avgHistory = append(avgHistory, avg)
		if epoch >= burnInEpochs && stagnated(avgHistory) {
			break
		}
	}
	s.Reset()
	s.SetEpsilon(0.02)
	return s, nil
}

// stagnated reports the paper's offline-training stop criterion: 5% or
// less increase across five epochs.
func stagnated(avg []float64) bool {
	const window = 5
	if len(avg) <= window {
		return false
	}
	ref := avg[len(avg)-1-window]
	cur := avg[len(avg)-1]
	if ref <= 0 {
		return cur <= 0
	}
	return (cur-ref)/math.Abs(ref) <= 0.05
}

// trainEpisode runs one synthetic tuning episode and returns its shaped
// return (for the stagnation criterion).
func (s *EarlyStopper) trainEpisode(rng *rand.Rand) float64 {
	s.Reset()
	curve := RandomLogCurveHorizon(rng, s.cfg.Horizon)
	best := 0.0
	ret := 0.0
	scalePeek := curve.Base + curve.Amp // rough per-episode scale
	if s.cfg.PerfScale == 0 {
		s.scale = 0
	}
	for i := 0; i <= s.cfg.Horizon; i++ {
		v := curve.At(i, rng)
		if v > best {
			best = v
		}
		if s.Stop(i, best) {
			break
		}
		ret -= s.cfg.IterationCost * scalePeek
	}
	ret += best - curve.Base
	return ret / scalePeek
}
