package core

import (
	"context"
	"fmt"

	"tunio/internal/metrics"
	"tunio/internal/params"
	"tunio/internal/tuner"
)

// Session is the interactive tuning feature the paper proposes as future
// work (§VI): "an interactive session feature where a configuration can be
// refined over time across a series of runs". Each Refine round resumes
// the pipeline from the best configuration found so far; the RL agents
// carry their online learning across rounds; the session accumulates one
// continuous tuning history for RoTI accounting.
type Session struct {
	Agent *TunIO
	Space []params.Parameter

	// Best is the best configuration found across all rounds (nil before
	// the first round: the next round starts from the library defaults).
	Best     *params.Assignment
	BestPerf float64

	// History is the concatenated tuning curve across rounds, with
	// cumulative time.
	History metrics.Curve

	rounds int
}

// NewSession starts a session with the given (typically offline-trained)
// agent over the parameter space.
func NewSession(agent *TunIO, space []params.Parameter) (*Session, error) {
	if agent == nil || agent.Stopper == nil || agent.Picker == nil {
		return nil, fmt.Errorf("core: session needs a complete agent")
	}
	if len(space) == 0 {
		return nil, fmt.Errorf("core: session needs a parameter space")
	}
	return &Session{Agent: agent, Space: space}, nil
}

// Rounds returns the number of completed Refine rounds.
func (s *Session) Rounds() int { return s.rounds }

// Refine runs one tuning round of at most maxIterations generations with
// the given evaluator, resuming from the session's best configuration.
// The round's curve is appended to the session history with time carried
// over; Best/BestPerf update if the round improved on them.
func (s *Session) Refine(eval tuner.Evaluator, popSize, maxIterations int, seed int64) (*tuner.Result, error) {
	if eval == nil {
		return nil, fmt.Errorf("core: nil evaluator")
	}
	return s.RefineBatch(context.Background(), tuner.AdaptEvaluator(eval), popSize, maxIterations, seed)
}

// RefineBatch is Refine over the batch evaluation engine: the round's
// generations are handed to eval as batches (fan out with tuner.Pool,
// memoize with tuner.Memo), and ctx cancels the round between
// evaluations. Refine is equivalent to RefineBatch with a background
// context and the serial adapter.
func (s *Session) RefineBatch(ctx context.Context, eval tuner.BatchEvaluator, popSize, maxIterations int, seed int64) (*tuner.Result, error) {
	s.Agent.Reset()
	res, err := tuner.RunBatch(ctx, tuner.Config{
		Space:         s.Space,
		PopSize:       popSize,
		MaxIterations: maxIterations,
		Seed:          seed + int64(s.rounds)*9973,
		Stopper:       s.Agent.Stopper,
		Picker:        s.Agent.Picker,
		StartFrom:     s.Best,
	}, eval)
	if err != nil {
		return nil, err
	}
	s.rounds++

	offset := s.History.TotalMinutes()
	prevBest := s.BestPerf
	for _, p := range res.Curve {
		bp := p.BestPerf
		if bp < prevBest {
			bp = prevBest // session-level best never regresses
		}
		s.History = append(s.History, metrics.Point{
			Iteration:   len(s.History),
			TimeMinutes: offset + p.TimeMinutes,
			IterPerf:    p.IterPerf,
			BestPerf:    bp,
		})
	}
	if res.BestPerf > s.BestPerf {
		s.BestPerf = res.BestPerf
		s.Best = res.Best
	}
	return res, nil
}
