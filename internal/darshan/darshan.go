// Package darshan collects I/O characterization counters for simulated
// application runs, mirroring the role the Darshan tool plays in the paper's
// tuning pipeline (it is the monitoring hook the fitness function reads
// bandwidth from, and it supplies the I/O-footprint similarity metrics of
// Figure 8c).
//
// Counters are organized per layer ("hdf5", "mpiio", "lustre", "posix",
// "mem") so experiments can attribute cost, with convenience aggregates for
// the usual bandwidth computation.
package darshan

import (
	"fmt"
	"sort"
	"strings"
)

// LayerCounters holds the counters of one stack layer.
type LayerCounters struct {
	ReadOps      int64
	WriteOps     int64
	MetaOps      int64
	BytesRead    int64
	BytesWritten int64
	ReadTime     float64 // simulated seconds
	WriteTime    float64
	MetaTime     float64
}

// Report is a full set of per-layer counters for one run.
type Report struct {
	layers map[string]*LayerCounters
}

// NewReport returns an empty report.
func NewReport() *Report {
	return &Report{layers: make(map[string]*LayerCounters)}
}

// Layer returns the counters for a layer, creating them on first use.
func (r *Report) Layer(name string) *LayerCounters {
	lc, ok := r.layers[name]
	if !ok {
		lc = &LayerCounters{}
		r.layers[name] = lc
	}
	return lc
}

// Layers returns the layer names present, sorted.
func (r *Report) Layers() []string {
	names := make([]string, 0, len(r.layers))
	for n := range r.layers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes all counters in place, keeping layer pointers valid (callers
// holding a *LayerCounters from Layer see the zeroed counters).
func (r *Report) Reset() {
	for _, lc := range r.layers {
		*lc = LayerCounters{}
	}
}

// AddWrite records a write of size bytes taking elapsed seconds at a layer.
func (r *Report) AddWrite(layer string, bytes int64, elapsed float64) {
	lc := r.Layer(layer)
	lc.WriteOps++
	lc.BytesWritten += bytes
	lc.WriteTime += elapsed
}

// AddRead records a read.
func (r *Report) AddRead(layer string, bytes int64, elapsed float64) {
	lc := r.Layer(layer)
	lc.ReadOps++
	lc.BytesRead += bytes
	lc.ReadTime += elapsed
}

// AddMeta records n metadata operations taking elapsed seconds.
func (r *Report) AddMeta(layer string, n int64, elapsed float64) {
	lc := r.Layer(layer)
	lc.MetaOps += n
	lc.MetaTime += elapsed
}

// Totals aggregates counters across all layers. Because layers nest (an
// HDF5 write flows through MPI-IO to Lustre), totals are only meaningful
// per layer; Totals exists for single-layer reports and debugging.
func (r *Report) Totals() LayerCounters {
	var t LayerCounters
	for _, lc := range r.layers {
		t.ReadOps += lc.ReadOps
		t.WriteOps += lc.WriteOps
		t.MetaOps += lc.MetaOps
		t.BytesRead += lc.BytesRead
		t.BytesWritten += lc.BytesWritten
		t.ReadTime += lc.ReadTime
		t.WriteTime += lc.WriteTime
		t.MetaTime += lc.MetaTime
	}
	return t
}

// AppLayer is the conventional name for application-visible I/O (what the
// workload asked for, before any library transformation). Bandwidth and
// footprint metrics are computed from this layer.
const AppLayer = "hdf5"

// App returns the application-visible counters.
func (r *Report) App() *LayerCounters { return r.Layer(AppLayer) }

// WriteBandwidth returns application write bandwidth in bytes/second over
// the app layer's recorded write time (0 when no time was spent).
func (r *Report) WriteBandwidth() float64 {
	app := r.App()
	if app.WriteTime <= 0 {
		return 0
	}
	return float64(app.BytesWritten) / app.WriteTime
}

// ReadBandwidth returns application read bandwidth in bytes/second.
func (r *Report) ReadBandwidth() float64 {
	app := r.App()
	if app.ReadTime <= 0 {
		return 0
	}
	return float64(app.BytesRead) / app.ReadTime
}

// WriteRatio returns α, the fraction of transferred bytes that were writes
// (the α in the paper's perf definition). Returns 1 when nothing was read.
func (r *Report) WriteRatio() float64 {
	app := r.App()
	total := app.BytesRead + app.BytesWritten
	if total == 0 {
		return 1
	}
	return float64(app.BytesWritten) / float64(total)
}

// Merge adds other's counters into r.
func (r *Report) Merge(other *Report) {
	for name, olc := range other.layers {
		lc := r.Layer(name)
		lc.ReadOps += olc.ReadOps
		lc.WriteOps += olc.WriteOps
		lc.MetaOps += olc.MetaOps
		lc.BytesRead += olc.BytesRead
		lc.BytesWritten += olc.BytesWritten
		lc.ReadTime += olc.ReadTime
		lc.WriteTime += olc.WriteTime
		lc.MetaTime += olc.MetaTime
	}
}

// String renders the report as a table for logs.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %10s %8s %14s %14s %10s %10s %10s\n",
		"layer", "writes", "reads", "meta", "bytesW", "bytesR", "tW(s)", "tR(s)", "tM(s)")
	for _, name := range r.Layers() {
		lc := r.layers[name]
		fmt.Fprintf(&b, "%-8s %10d %10d %8d %14d %14d %10.3f %10.3f %10.3f\n",
			name, lc.WriteOps, lc.ReadOps, lc.MetaOps, lc.BytesWritten, lc.BytesRead,
			lc.WriteTime, lc.ReadTime, lc.MetaTime)
	}
	return b.String()
}

// PercentError returns |a-b| / |b| * 100, the absolute percentage error
// metric used in Figure 8c (0 when both are 0, +Inf when only b is 0).
func PercentError(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return 1e308 // effectively infinite error
	}
	d := (a - b) / b * 100
	if d < 0 {
		return -d
	}
	return d
}
