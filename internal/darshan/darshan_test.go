package darshan

import (
	"math"
	"strings"
	"testing"
)

func TestLayerCreation(t *testing.T) {
	r := NewReport()
	r.AddWrite("hdf5", 100, 0.5)
	r.AddWrite("hdf5", 50, 0.25)
	r.AddRead("lustre", 10, 0.1)
	r.AddMeta("lustre", 3, 0.01)

	app := r.Layer("hdf5")
	if app.WriteOps != 2 || app.BytesWritten != 150 || app.WriteTime != 0.75 {
		t.Fatalf("hdf5 counters = %+v", app)
	}
	l := r.Layer("lustre")
	if l.ReadOps != 1 || l.BytesRead != 10 || l.MetaOps != 3 {
		t.Fatalf("lustre counters = %+v", l)
	}
	layers := r.Layers()
	if len(layers) != 2 || layers[0] != "hdf5" || layers[1] != "lustre" {
		t.Fatalf("Layers = %v", layers)
	}
}

func TestBandwidths(t *testing.T) {
	r := NewReport()
	if r.WriteBandwidth() != 0 || r.ReadBandwidth() != 0 {
		t.Fatal("empty report should have zero bandwidth")
	}
	r.AddWrite(AppLayer, 1000, 2)
	r.AddRead(AppLayer, 300, 3)
	if got := r.WriteBandwidth(); got != 500 {
		t.Fatalf("WriteBandwidth = %v, want 500", got)
	}
	if got := r.ReadBandwidth(); got != 100 {
		t.Fatalf("ReadBandwidth = %v, want 100", got)
	}
}

func TestWriteRatio(t *testing.T) {
	r := NewReport()
	if r.WriteRatio() != 1 {
		t.Fatal("empty report WriteRatio should be 1")
	}
	r.AddWrite(AppLayer, 300, 1)
	r.AddRead(AppLayer, 100, 1)
	if got := r.WriteRatio(); got != 0.75 {
		t.Fatalf("WriteRatio = %v, want 0.75", got)
	}
}

func TestTotalsAndMerge(t *testing.T) {
	a := NewReport()
	a.AddWrite("hdf5", 10, 1)
	b := NewReport()
	b.AddWrite("hdf5", 20, 2)
	b.AddRead("lustre", 5, 0.5)
	a.Merge(b)
	if a.Layer("hdf5").BytesWritten != 30 {
		t.Fatalf("merged hdf5 bytes = %d", a.Layer("hdf5").BytesWritten)
	}
	tot := a.Totals()
	if tot.BytesWritten != 30 || tot.BytesRead != 5 || tot.WriteOps != 2 {
		t.Fatalf("Totals = %+v", tot)
	}
}

func TestString(t *testing.T) {
	r := NewReport()
	r.AddWrite("hdf5", 10, 1)
	s := r.String()
	if !strings.Contains(s, "hdf5") || !strings.Contains(s, "layer") {
		t.Fatalf("String output missing content:\n%s", s)
	}
}

func TestPercentError(t *testing.T) {
	if got := PercentError(110, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("PercentError(110,100) = %v", got)
	}
	if got := PercentError(90, 100); math.Abs(got-10) > 1e-12 {
		t.Fatalf("PercentError(90,100) = %v (must be absolute)", got)
	}
	if PercentError(0, 0) != 0 {
		t.Fatal("PercentError(0,0) != 0")
	}
	if PercentError(1, 0) < 1e300 {
		t.Fatal("PercentError(1,0) should be effectively infinite")
	}
}
