// Package servebench measures the engine's concurrent serving path: N
// simultaneous tuning sessions (mixed tenants, warm and cold kernels)
// against one shared tunio.Engine — in process and through a live tuniod
// HTTP server — under the sharded/copy-on-write caches this tree ships
// and under a Serialize()d baseline that routes every cache operation
// through one global mutex (the pre-sharding architecture).
//
// Reported per workload: aggregate jobs/sec, p50/p99 job latency, the
// shared stage cache's aggregate hit rate, warm-path cache throughput at
// 8 goroutines for both architectures, and whether every served curve is
// bit-identical to a direct solo Tune of the same spec. scripts/bench.sh
// writes the result as BENCH_serve.json.
package servebench

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"tunio"
	"tunio/internal/cluster"
	"tunio/internal/experiments"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/server"
	"tunio/internal/workload"
)

// serveSessions is the concurrency level of the headline measurement.
const serveSessions = 8

// serveWorkloads is the paper's workload set (§IV, Table III).
var serveWorkloads = []string{"vpic", "hacc", "flash", "macsio", "bdcats"}

// Variant is one architecture's cost serving one workload's session mix.
type Variant struct {
	JobsPerSec   float64 `json:"jobs_per_sec"`
	P50JobMs     float64 `json:"p50_job_ms"`
	P99JobMs     float64 `json:"p99_job_ms"`
	StageHitRate float64 `json:"stage_hit_rate"` // shared cache, wire stage
	Identical    bool    `json:"identical"`      // every curve == solo Tune
}

// Row compares the serving architectures on one workload.
type Row struct {
	Workload string `json:"workload"`

	Sharded    Variant `json:"sharded"`
	Serialized Variant `json:"serialized"`
	// SpeedupJobs is sharded jobs/sec over serialized jobs/sec at
	// serveSessions concurrent sessions.
	SpeedupJobs float64 `json:"speedup_jobs"`

	// SoloJobsPerSec is sequential solo Tune throughput (fresh engine per
	// job, cold caches) — the reference for session-scaling efficiency.
	SoloJobsPerSec float64 `json:"solo_jobs_per_sec"`

	// HTTP is the same concurrent mix submitted to a live tuniod server
	// (sharded engine) over HTTP with an SSE subscriber per job.
	HTTPJobsPerSec float64 `json:"http_jobs_per_sec"`
	HTTPP99JobMs   float64 `json:"http_p99_job_ms"`

	// Warm-path cache throughput: 8 goroutines doing warm StageCache
	// lookups and KernelStore gets, in million ops/sec.
	WarmShardedMops    float64 `json:"warm_sharded_mops"`
	WarmSerializedMops float64 `json:"warm_serialized_mops"`
	SpeedupWarm        float64 `json:"speedup_warm"`
}

// Result is the full concurrent-load benchmark.
type Result struct {
	Sessions   int    `json:"sessions"`
	Goroutines int    `json:"warm_path_goroutines"`
	Cores      int    `json:"cores"` // runtime.NumCPU() when measured
	Rows       []Row  `json:"workloads"`
	Note       string `json:"note,omitempty"`
}

// Run measures every paper workload.
func Run(cfg experiments.Config) (*Result, error) {
	return run(cfg, serveWorkloads, serveSessions)
}

// run measures the named workloads at the given concurrency (split out so
// the CI smoke test can cover a single workload at reduced concurrency).
func run(cfg experiments.Config, names []string, sessions int) (*Result, error) {
	out := &Result{Sessions: sessions, Goroutines: serveSessions, Cores: runtime.NumCPU()}
	if out.Cores < 2 {
		out.Note = fmt.Sprintf("measured on %d CPU core(s): concurrent sessions cannot exceed serial throughput end to end; the contention contrast shows in the warm-path columns and grows with cores", out.Cores)
	}
	for _, name := range names {
		row := Row{Workload: name}

		specs := make([]tunio.JobSpec, sessions)
		for j := range specs {
			specs[j] = specFor(cfg, name, j)
		}

		// Solo reference: each spec through a fresh single-use engine,
		// sequentially — also the identity baseline for the served curves.
		solo := make([]*tunio.Result, sessions)
		soloStart := time.Now()
		for j, spec := range specs {
			res, err := tuneSolo(spec)
			if err != nil {
				return nil, fmt.Errorf("servebench: %s solo %d: %w", name, j, err)
			}
			solo[j] = res
		}
		row.SoloJobsPerSec = float64(sessions) / time.Since(soloStart).Seconds()

		var err error
		if row.Sharded, err = measureEngine(tunio.NewEngine(tunio.EngineOptions{}), specs, solo); err != nil {
			return nil, fmt.Errorf("servebench: %s sharded: %w", name, err)
		}
		serialized := tunio.NewEngine(tunio.EngineOptions{
			KernelStore: replay.NewKernelStore().Serialize(),
			StageCache:  replay.NewSharedStageCache().Serialize(),
		})
		if row.Serialized, err = measureEngine(serialized, specs, solo); err != nil {
			return nil, fmt.Errorf("servebench: %s serialized: %w", name, err)
		}
		if row.Serialized.JobsPerSec > 0 {
			row.SpeedupJobs = row.Sharded.JobsPerSec / row.Serialized.JobsPerSec
		}

		if row.HTTPJobsPerSec, row.HTTPP99JobMs, err = measureHTTP(specs); err != nil {
			return nil, fmt.Errorf("servebench: %s http: %w", name, err)
		}

		tr, err := recordKernel(name)
		if err != nil {
			return nil, fmt.Errorf("servebench: %s record: %w", name, err)
		}
		if row.WarmShardedMops, err = warmPathMops(tr, false); err != nil {
			return nil, err
		}
		if row.WarmSerializedMops, err = warmPathMops(tr, true); err != nil {
			return nil, err
		}
		if row.WarmSerializedMops > 0 {
			row.SpeedupWarm = row.WarmShardedMops / row.WarmSerializedMops
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// specFor sizes one session: small enough that a full mix finishes in
// seconds, seeded per session so curves are individually checkable.
func specFor(cfg experiments.Config, name string, j int) tunio.JobSpec {
	pop, iters := 8, 6
	if cfg.Scale == experiments.Paper {
		pop, iters = 16, 12
	}
	return tunio.JobSpec{
		Workload:      name,
		Tenant:        fmt.Sprintf("tenant-%d", j%3),
		Nodes:         2,
		ProcsPerNode:  8,
		PopSize:       pop,
		MaxIterations: iters,
		Reps:          1,
		Seed:          cfg.Seed + int64(j),
		Parallelism:   2,
	}
}

// tuneSolo runs one spec on a private single-use engine.
func tuneSolo(spec tunio.JobSpec) (*tunio.Result, error) {
	run, err := tunio.NewEngine(tunio.EngineOptions{}).Tune(context.Background(), spec)
	if err != nil {
		return nil, err
	}
	return run.Wait()
}

// measureEngine serves the whole spec mix concurrently on one shared
// engine and checks every curve against its solo baseline.
func measureEngine(eng *tunio.Engine, specs []tunio.JobSpec, solo []*tunio.Result) (Variant, error) {
	results := make([]*tunio.Result, len(specs))
	latencies := make([]float64, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	start := time.Now()
	for j := range specs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			jobStart := time.Now()
			run, err := eng.Tune(context.Background(), specs[j])
			if err != nil {
				errs[j] = err
				return
			}
			results[j], errs[j] = run.Wait()
			latencies[j] = float64(time.Since(jobStart).Milliseconds())
		}(j)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return Variant{}, err
		}
	}
	v := Variant{
		JobsPerSec: float64(len(specs)) / wall,
		Identical:  true,
	}
	v.P50JobMs, v.P99JobMs = percentiles(latencies)
	for j := range results {
		if !curvesEqual(results[j], solo[j]) {
			v.Identical = false
		}
	}
	v.StageHitRate = eng.Stats().Stage.WireHitRate()
	return v, nil
}

// curvesEqual reports bit-identity of two tuning results.
func curvesEqual(a, b *tunio.Result) bool {
	if len(a.Curve) != len(b.Curve) || a.BestPerf != b.BestPerf || a.Best.String() != b.Best.String() {
		return false
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			return false
		}
	}
	return true
}

// measureHTTP serves the mix through a live tuniod-style HTTP server: one
// POST plus one SSE events subscription per job, concurrently.
func measureHTTP(specs []tunio.JobSpec) (jobsPerSec, p99Ms float64, err error) {
	srv, err := server.New(server.Options{Engine: tunio.NewEngine(tunio.EngineOptions{})})
	if err != nil {
		return 0, 0, err
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	latencies := make([]float64, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	start := time.Now()
	for j := range specs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			jobStart := time.Now()
			errs[j] = serveOneHTTP(ts, specs[j])
			latencies[j] = float64(time.Since(jobStart).Milliseconds())
		}(j)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	_, p99 := percentiles(latencies)
	return float64(len(specs)) / wall, p99, nil
}

// serveOneHTTP submits one job and follows its SSE stream to the terminal
// "done" event.
func serveOneHTTP(ts *httptest.Server, spec tunio.JobSpec) error {
	body, err := json.Marshal(server.JobRequest{
		Workload:      spec.Workload,
		Nodes:         spec.Nodes,
		ProcsPerNode:  spec.ProcsPerNode,
		PopSize:       spec.PopSize,
		MaxIterations: spec.MaxIterations,
		Reps:          spec.Reps,
		Seed:          spec.Seed,
		Parallelism:   spec.Parallelism,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("X-Tunio-Tenant", spec.Tenant)
	resp, err := ts.Client().Do(req)
	if err != nil {
		return err
	}
	var st server.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d", resp.StatusCode)
	}

	ev, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		return err
	}
	defer ev.Body.Close()
	sc := bufio.NewScanner(ev.Body)
	done := false
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "event: done" {
			done = true
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !done {
		return fmt.Errorf("events stream for %s ended without a done event", st.ID)
	}
	return nil
}

// recordKernel records one workload's trace on the serving allocation.
func recordKernel(name string) (*replay.Trace, error) {
	c := cluster.CoriHaswell(2, 8)
	w, err := workload.ByName(name, c.Procs())
	if err != nil {
		return nil, err
	}
	st, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), 1)
	if err != nil {
		return nil, err
	}
	return replay.Record(w, st)
}

// warmPathMops hammers the warm path — a cached StageCache lookup plus a
// KernelStore get — from serveSessions goroutines and reports million
// ops/sec. The serialized variant is the single-global-mutex baseline.
func warmPathMops(tr *replay.Trace, serialized bool) (float64, error) {
	cache := replay.NewSharedStageCache()
	store := replay.NewKernelStore()
	if serialized {
		cache.Serialize()
		store.Serialize()
	}
	cache.Register("sig:k", tr)
	store.Put("kern", replay.KernelEntry{Trace: tr, KernelHash: replay.TraceKey(tr)})
	a := params.DefaultAssignment(params.Space())
	s := a.Settings()
	const ppn = 8
	if _, err := cache.View("sig:k").WireFor(a, s, ppn); err != nil {
		return 0, err
	}

	const perGoroutine = 100_000
	var wg sync.WaitGroup
	errs := make([]error, serveSessions)
	start := time.Now()
	for g := 0; g < serveSessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			view := cache.View("sig:k")
			for i := 0; i < perGoroutine; i++ {
				if _, err := view.WireFor(a, s, ppn); err != nil {
					errs[g] = err
					return
				}
				if _, ok := store.Get("kern"); !ok {
					errs[g] = fmt.Errorf("warm kernel get missed")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(2*serveSessions*perGoroutine) / elapsed / 1e6, nil
}

// percentiles returns (p50, p99) of the values in milliseconds.
func percentiles(ms []float64) (p50, p99 float64) {
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return 0, 0
	}
	p50 = sorted[n/2]
	idx := (99*n + 99) / 100 // ceil(0.99n)
	if idx > n {
		idx = n
	}
	p99 = sorted[idx-1]
	return p50, p99
}

// String renders the benchmark table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent serving: %d sessions per workload, sharded vs single-mutex caches (%d cores)\n",
		r.Sessions, r.Cores)
	fmt.Fprintf(&b, "%-8s %10s %10s %7s %9s %8s %9s %10s %10s %7s %6s\n",
		"workload", "shard j/s", "mutex j/s", "jobs x", "http j/s", "solo j/s",
		"hit rate", "warm shard", "warm mutex", "warm x", "ident")
	identical, fasterWarm := 0, 0
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %10.2f %10.2f %6.2fx %9.2f %8.2f %8.0f%% %9.1fM %9.1fM %6.1fx %6v\n",
			row.Workload, row.Sharded.JobsPerSec, row.Serialized.JobsPerSec, row.SpeedupJobs,
			row.HTTPJobsPerSec, row.SoloJobsPerSec, row.Sharded.StageHitRate*100,
			row.WarmShardedMops, row.WarmSerializedMops, row.SpeedupWarm,
			row.Sharded.Identical && row.Serialized.Identical)
		if row.Sharded.Identical && row.Serialized.Identical {
			identical++
		}
		if row.SpeedupWarm >= 2 {
			fasterWarm++
		}
	}
	fmt.Fprintf(&b, "served curves bit-identical to solo Tune on %d/%d workloads; warm path at least 2x on %d/%d\n",
		identical, len(r.Rows), fasterWarm, len(r.Rows))
	if r.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", r.Note)
	}
	return b.String()
}
