package servebench

import (
	"strings"
	"testing"

	"tunio/internal/experiments"
)

// TestServeBenchSmoke runs the concurrent-load benchmark on one workload
// at reduced concurrency — the CI gate for the serving path: sessions
// complete, curves stay bit-identical to solo Tune under both cache
// architectures, and the shared cache actually gets warm traffic.
func TestServeBenchSmoke(t *testing.T) {
	r, err := run(experiments.Config{Scale: experiments.Smoke, Seed: 7}, []string{"macsio"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	row := r.Rows[0]
	if row.Sharded.JobsPerSec <= 0 || row.Serialized.JobsPerSec <= 0 || row.HTTPJobsPerSec <= 0 {
		t.Fatalf("throughput missing: %+v", row)
	}
	if !row.Sharded.Identical || !row.Serialized.Identical {
		t.Fatalf("served curves diverged from solo Tune: %+v", row)
	}
	if row.Sharded.StageHitRate <= 0 {
		t.Fatalf("shared stage cache saw no warm traffic: hit rate %v", row.Sharded.StageHitRate)
	}
	if row.WarmShardedMops <= 0 || row.WarmSerializedMops <= 0 {
		t.Fatalf("warm-path measurement missing: %+v", row)
	}
	if !strings.Contains(r.String(), "macsio") {
		t.Fatal("render missing workload row")
	}
}
