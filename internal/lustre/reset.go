package lustre

// Reset discards all files and rewinds the OST allocator, returning the FS
// to its post-NewFS state. The configuration and simulation binding are
// kept; stack pooling uses this to reuse one FS across evaluations.
func (fs *FS) Reset() {
	clear(fs.files)
	fs.nextOST = 0
}
