package lustre

import (
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
)

// driftSim builds a noiseless sim whose machine halves OST bandwidth
// and MDS capacity from t=100 on.
func driftSim(t *testing.T) *cluster.Sim {
	t.Helper()
	c := cluster.CoriHaswell(2, 4)
	c.Noise = 0
	// Make phases OST-bound so the test exercises the lustre-side factor
	// rather than the NIC term (covered by the cluster package tests).
	c.NICBandwidth = 1e12
	c.Drift = &cluster.Drift{Regimes: []cluster.Regime{
		{Start: 100, OSTLoad: 0.5, MDSLoad: 0.5},
	}}
	s, err := cluster.NewSim(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// phaseAt runs one write phase with the run positioned at epoch and
// returns its elapsed time.
func phaseAt(t *testing.T, epoch float64) float64 {
	t.Helper()
	sim := driftSim(t)
	sim.SetEpoch(epoch)
	fs := newFS(t, sim)
	f, err := fs.Create("d", 4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.WritePhase([]ioreq.Extent{{Offset: 0, Size: 64 << 20, Rank: 0, Count: 16}})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDriftSlowsPhases(t *testing.T) {
	before := phaseAt(t, 0)
	after := phaseAt(t, 100)
	if after <= before {
		t.Fatalf("drifted phase %v should exceed nominal %v", after, before)
	}
}

func TestDriftSlowsMetaOps(t *testing.T) {
	simA := driftSim(t)
	a := newFS(t, simA).MetaOps(1000, 8)
	simB := driftSim(t)
	simB.SetEpoch(100)
	b := newFS(t, simB).MetaOps(1000, 8)
	if b <= a {
		t.Fatalf("drifted MetaOps %v should exceed nominal %v", b, a)
	}
}

// TestDriftEpochReplayIdentity is the core replay guarantee at the
// lustre layer: two runs positioned at the same epoch under the same
// schedule charge bit-identical times.
func TestDriftEpochReplayIdentity(t *testing.T) {
	if phaseAt(t, 150) != phaseAt(t, 150) {
		t.Fatal("same epoch must charge identical time")
	}
}
