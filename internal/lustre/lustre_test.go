package lustre

import (
	"math"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
)

func newSim(t *testing.T, nodes, ppn int) *cluster.Sim {
	t.Helper()
	c := cluster.CoriHaswell(nodes, ppn)
	c.Noise = 0
	s, err := cluster.NewSim(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newFS(t *testing.T, sim *cluster.Sim) *FS {
	t.Helper()
	fs, err := New(CoriScratch(), sim)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConfigValidate(t *testing.T) {
	good := CoriScratch()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.OSTs = 0 },
		func(c *Config) { c.OSTBandwidth = 0 },
		func(c *Config) { c.RMWUnit = 0 },
		func(c *Config) { c.MDSParallel = 0 },
		func(c *Config) { c.MaxContention = 0.5 },
		func(c *Config) { c.ContentionFactor = -1 },
	}
	for i, mut := range cases {
		c := CoriScratch()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestCreateDefaultsAndClamping(t *testing.T) {
	fs := newFS(t, newSim(t, 4, 32))
	f, err := fs.Create("a", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.StripeCount() != 1 || f.StripeSize() != 1<<20 {
		t.Fatalf("defaults: count=%d size=%d", f.StripeCount(), f.StripeSize())
	}
	f2, _ := fs.Create("b", 10000, 1<<20)
	if f2.StripeCount() != fs.Config().OSTs {
		t.Fatalf("stripe count not clamped: %d", f2.StripeCount())
	}
	if _, err := fs.Create("", 1, 1); err == nil {
		t.Fatal("empty name: want error")
	}
}

func TestOpen(t *testing.T) {
	fs := newFS(t, newSim(t, 4, 32))
	if _, err := fs.Open("missing"); err == nil {
		t.Fatal("want error for missing file")
	}
	fs.Create("x", 4, 1<<20)
	if !fs.Exists("x") {
		t.Fatal("Exists false after Create")
	}
	if _, err := fs.Open("x"); err != nil {
		t.Fatal(err)
	}
}

func TestStripingSpeedsUpLargeWrites(t *testing.T) {
	// The same 1 GiB phase must be much faster on 32 stripes than 1 when
	// the NIC is not the bottleneck (use many nodes).
	mkTime := func(stripes int) float64 {
		sim := newSim(t, 64, 2)
		fs := newFS(t, sim)
		f, _ := fs.Create("f", stripes, 1<<20)
		var extents []ioreq.Extent
		const per = 8 << 20
		for r := 0; r < 128; r++ {
			extents = append(extents, ioreq.Extent{Offset: int64(r) * per, Size: per, Rank: r})
		}
		d, err := f.WritePhase(extents)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	t1 := mkTime(1)
	t32 := mkTime(32)
	if t32 >= t1/4 {
		t.Fatalf("striping 32 gave %.4fs vs 1-stripe %.4fs, want >= 4x speedup", t32, t1)
	}
}

func TestAlignedWritesAvoidRMW(t *testing.T) {
	run := func(offset int64) int64 {
		sim := newSim(t, 4, 32)
		fs := newFS(t, sim)
		f, _ := fs.Create("f", 4, 1<<20)
		// pre-size the file so trailing-edge RMW applies
		f.WritePhase([]ioreq.Extent{{Offset: 0, Size: 64 << 20, Rank: 0}})
		before := sim.Report.Layer("lustre").BytesRead
		f.WritePhase([]ioreq.Extent{{Offset: offset, Size: 1 << 20, Rank: 1}})
		return sim.Report.Layer("lustre").BytesRead - before
	}
	if rmw := run(4 << 20); rmw != 0 {
		t.Fatalf("aligned write caused %d RMW bytes", rmw)
	}
	if rmw := run(4<<20 + 4096); rmw == 0 {
		t.Fatal("unaligned write caused no RMW")
	}
}

func TestSmallStripesCostMoreRequests(t *testing.T) {
	reqs := func(stripeSize int64) int64 {
		sim := newSim(t, 4, 32)
		fs := newFS(t, sim)
		f, _ := fs.Create("f", 8, stripeSize)
		f.WritePhase([]ioreq.Extent{{Offset: 0, Size: 64 << 20, Rank: 0}})
		return sim.Report.Layer("lustre").WriteOps
	}
	small := reqs(64 << 10)
	large := reqs(16 << 20)
	if small <= large {
		t.Fatalf("64KiB stripes made %d requests, 16MiB made %d; want more for small", small, large)
	}
}

func TestContentionDegradesSharedOST(t *testing.T) {
	// Many clients writing to a 1-stripe file must be slower per byte than
	// one client writing the same total.
	run := func(clients int) float64 {
		sim := newSim(t, 64, 2)
		fs := newFS(t, sim)
		f, _ := fs.Create("f", 1, 1<<20)
		total := int64(256 << 20)
		per := total / int64(clients)
		var extents []ioreq.Extent
		for r := 0; r < clients; r++ {
			extents = append(extents, ioreq.Extent{Offset: int64(r) * per, Size: per, Rank: r})
		}
		d, _ := f.WritePhase(extents)
		return d
	}
	if one, many := run(1), run(64); many <= one {
		t.Fatalf("64 clients (%.4fs) not slower than 1 (%.4fs)", many, one)
	}
}

func TestPhaseAdvancesClockAndCounters(t *testing.T) {
	sim := newSim(t, 4, 32)
	fs := newFS(t, sim)
	f, _ := fs.Create("f", 4, 1<<20)
	before := sim.Now()
	d, err := f.WritePhase([]ioreq.Extent{{Offset: 0, Size: 1 << 20, Rank: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || math.Abs(sim.Now()-before-d) > 1e-12 {
		t.Fatalf("elapsed %v, clock moved %v", d, sim.Now()-before)
	}
	lc := sim.Report.Layer("lustre")
	if lc.BytesWritten != 1<<20 || lc.WriteOps == 0 {
		t.Fatalf("counters: %+v", lc)
	}
	if f.Size() != 1<<20 {
		t.Fatalf("file size = %d", f.Size())
	}
}

func TestReadPhase(t *testing.T) {
	sim := newSim(t, 4, 32)
	fs := newFS(t, sim)
	f, _ := fs.Create("f", 4, 1<<20)
	f.WritePhase([]ioreq.Extent{{Offset: 0, Size: 8 << 20, Rank: 0}})
	d, err := f.ReadPhase([]ioreq.Extent{{Offset: 0, Size: 8 << 20, Rank: 1}})
	if err != nil || d <= 0 {
		t.Fatalf("ReadPhase: %v, %v", d, err)
	}
	if sim.Report.Layer("lustre").BytesRead != 8<<20 {
		t.Fatalf("read bytes = %d", sim.Report.Layer("lustre").BytesRead)
	}
}

func TestInvalidExtentRejected(t *testing.T) {
	sim := newSim(t, 4, 32)
	fs := newFS(t, sim)
	f, _ := fs.Create("f", 4, 1<<20)
	if _, err := f.WritePhase([]ioreq.Extent{{Offset: -1, Size: 4}}); err == nil {
		t.Fatal("want error")
	}
	if d, err := f.WritePhase(nil); err != nil || d != 0 {
		t.Fatal("empty phase should be free")
	}
}

func TestMetaOps(t *testing.T) {
	sim := newSim(t, 4, 32)
	fs := newFS(t, sim)
	if fs.MetaOps(0, 1) != 0 {
		t.Fatal("zero ops should be free")
	}
	d1 := fs.MetaOps(1, 1)
	d100 := fs.MetaOps(100, 128)
	if d100 <= d1 {
		t.Fatalf("100 meta ops (%.6fs) not slower than 1 (%.6fs)", d100, d1)
	}
	// create + 101 explicit
	if got := sim.Report.Layer("lustre").MetaOps; got != 101 {
		t.Fatalf("meta ops counted = %d", got)
	}
}

func TestBackendAutoCreates(t *testing.T) {
	sim := newSim(t, 4, 32)
	fs := newFS(t, sim)
	b := &Backend{FS: fs, StripeCount: 8, StripeSize: 2 << 20}
	d := b.WritePhase("auto", []ioreq.Extent{{Offset: 0, Size: 1 << 20, Rank: 0}})
	if d <= 0 {
		t.Fatal("backend write did not charge time")
	}
	f, err := fs.Open("auto")
	if err != nil {
		t.Fatal(err)
	}
	if f.StripeCount() != 8 || f.StripeSize() != 2<<20 {
		t.Fatalf("auto-created striping: %d/%d", f.StripeCount(), f.StripeSize())
	}
	if b.Name() != "lustre" {
		t.Fatal("backend name")
	}
	if b.ReadPhase("auto", []ioreq.Extent{{Offset: 0, Size: 100, Rank: 0}}) <= 0 {
		t.Fatal("backend read free")
	}
	if b.MetaOps(1, 1) <= 0 {
		t.Fatal("backend meta free")
	}
}

func TestFilesStartOnDifferentOSTs(t *testing.T) {
	sim := newSim(t, 4, 32)
	fs := newFS(t, sim)
	a, _ := fs.Create("a", 4, 1<<20)
	b, _ := fs.Create("b", 4, 1<<20)
	if a.firstOST == b.firstOST {
		t.Fatal("allocator did not round-robin starting OSTs")
	}
}

func TestSplitCrossesStripes(t *testing.T) {
	sim := newSim(t, 4, 32)
	fs := newFS(t, sim)
	f, _ := fs.Create("f", 4, 1<<20)
	pieces := f.split(ioreq.Extent{Offset: 512 << 10, Size: 2 << 20, Rank: 0})
	if len(pieces) != 3 {
		t.Fatalf("split produced %d pieces, want 3 (partial + full + partial)", len(pieces))
	}
	var total int64
	osts := map[int]bool{}
	for _, p := range pieces {
		total += p.size
		osts[p.ost] = true
	}
	if total != 2<<20 {
		t.Fatalf("split lost bytes: %d", total)
	}
	if len(osts) != 3 {
		t.Fatalf("pieces landed on %d OSTs, want 3", len(osts))
	}
}

func TestSplitAggregatedPathConservesBytes(t *testing.T) {
	sim := newSim(t, 4, 32)
	fs := newFS(t, sim)
	f, _ := fs.Create("f", 8, 64<<10) // small stripes force the aggregated path
	e := ioreq.Extent{Offset: 12345, Size: 512 << 20, Rank: 3, Count: 64}
	pieces := f.split(e)
	if len(pieces) > 8 {
		t.Fatalf("aggregated split produced %d pieces, want <= stripe count 8", len(pieces))
	}
	var total, reqs int64
	for _, p := range pieces {
		total += p.size
		reqs += p.requests
		if p.rank != 3 {
			t.Fatal("rank lost")
		}
	}
	if total != 512<<20 {
		t.Fatalf("split lost bytes: %d of %d", total, 512<<20)
	}
	if reqs < 8 || reqs > 80 {
		t.Fatalf("requests distributed oddly: %d (extent had 64)", reqs)
	}
}

func TestSplitExactVsAggregatedConsistency(t *testing.T) {
	// The same extent split with a small stripe span (exact path) and the
	// same total via aggregation must agree on per-OST byte totals.
	sim := newSim(t, 4, 32)
	fs := newFS(t, sim)
	f, _ := fs.Create("f", 4, 1<<20)
	// 9 stripes: aggregated path (9 > 2*4); compare against manual walk.
	e := ioreq.Extent{Offset: 0, Size: 9 << 20, Rank: 0}
	got := map[int]int64{}
	for _, p := range f.split(e) {
		got[p.ost] += p.size
	}
	want := map[int]int64{}
	for s := int64(0); s < 9; s++ {
		ost := (f.firstOST + int(s%4)) % fs.Config().OSTs
		want[ost] += 1 << 20
	}
	for ost, b := range want {
		if got[ost] != b {
			t.Fatalf("OST %d: got %d bytes, want %d (got map %v)", ost, got[ost], b, got)
		}
	}
}
