// Package lustre simulates a Lustre-like parallel file system: a pool of
// object storage targets (OSTs) that files are striped across, plus a
// metadata server (MDS).
//
// The model captures the effects that make Lustre tuning matter in the
// paper's experiments:
//
//   - stripe count decides how many OSTs serve a file in parallel (the
//     Lustre default of 1 is the classic untuned bottleneck);
//   - stripe size decides how extents split into per-OST requests: too
//     small multiplies per-request latency, too large causes imbalance;
//   - writes not aligned to the RAID segment pay a read-modify-write
//     penalty at the OST;
//   - many clients interleaving requests on one OST degrade its effective
//     bandwidth (contention);
//   - every open/create/stat costs an MDS round trip, so metadata storms
//     from thousands of ranks are expensive unless issued collectively.
//
// Phase cost = max(client-side NIC time, slowest OST service time): the
// network transfer and OST service overlap in a pipelined fashion.
package lustre

import (
	"fmt"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
)

// Config describes the file system hardware.
type Config struct {
	OSTs             int
	OSTBandwidth     float64 // bytes/second per OST
	OSTLatency       float64 // seconds per request
	RMWUnit          int64   // RAID segment size; unaligned write edges pay RMW
	MDSLatency       float64 // seconds per metadata op
	MDSParallel      int     // concurrent MDS service streams
	ContentionFactor float64 // bandwidth degradation per extra client on an OST
	MaxContention    float64 // cap on the contention multiplier
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.OSTs <= 0 {
		return fmt.Errorf("lustre: OSTs must be positive, got %d", c.OSTs)
	}
	if c.OSTBandwidth <= 0 || c.OSTLatency < 0 || c.MDSLatency < 0 {
		return fmt.Errorf("lustre: invalid timing constants")
	}
	if c.RMWUnit <= 0 {
		return fmt.Errorf("lustre: RMWUnit must be positive, got %d", c.RMWUnit)
	}
	if c.MDSParallel <= 0 {
		return fmt.Errorf("lustre: MDSParallel must be positive, got %d", c.MDSParallel)
	}
	if c.ContentionFactor < 0 || c.MaxContention < 1 {
		return fmt.Errorf("lustre: invalid contention model")
	}
	return nil
}

// CoriScratch returns a configuration calibrated to Cori's scratch file
// system (~248 OSTs, ~700 GB/s aggregate, DataDirect RAID with 1 MiB
// segments).
func CoriScratch() Config {
	return Config{
		OSTs:             248,
		OSTBandwidth:     2.8e9,
		OSTLatency:       0.4e-3,
		RMWUnit:          1 << 20,
		MDSLatency:       0.25e-3,
		MDSParallel:      4,
		ContentionFactor: 0.015,
		MaxContention:    4,
	}
}

// FS is a simulated Lustre file system bound to one simulation context.
type FS struct {
	cfg   Config
	sim   *cluster.Sim
	files map[string]*File
	// nextOST round-robins the starting OST of new files, like Lustre's
	// allocator spreading files across the pool.
	nextOST int
}

// New builds a file system.
func New(cfg Config, sim *cluster.Sim) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FS{cfg: cfg, sim: sim, files: make(map[string]*File)}, nil
}

// Config returns the file system configuration.
func (fs *FS) Config() Config { return fs.cfg }

// File is one striped file.
type File struct {
	fs          *FS
	name        string
	stripeCount int
	stripeSize  int64
	firstOST    int
	size        int64
}

// Create makes (or truncates) a file with the given striping. stripeCount
// is clamped to the OST pool size; stripeCount <= 0 or stripeSize <= 0
// select the Lustre defaults (1 stripe, 1 MiB).
func (fs *FS) Create(name string, stripeCount int, stripeSize int64) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("lustre: empty file name")
	}
	if stripeCount <= 0 {
		stripeCount = 1
	}
	if stripeCount > fs.cfg.OSTs {
		stripeCount = fs.cfg.OSTs
	}
	if stripeSize <= 0 {
		stripeSize = 1 << 20
	}
	f := &File{
		fs:          fs,
		name:        name,
		stripeCount: stripeCount,
		stripeSize:  stripeSize,
		firstOST:    fs.nextOST,
	}
	fs.nextOST = (fs.nextOST + stripeCount) % fs.cfg.OSTs
	fs.files[name] = f
	fs.MetaOps(1, 1) // create is one MDS op
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("lustre: open %s: no such file", name)
	}
	fs.MetaOps(1, 1)
	return f, nil
}

// Exists reports whether a file was created in this simulation.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// StripeCount returns the file's stripe count.
func (f *File) StripeCount() int { return f.stripeCount }

// StripeSize returns the file's stripe size in bytes.
func (f *File) StripeSize() int64 { return f.stripeSize }

// Size returns the current file size (high-water mark of writes).
func (f *File) Size() int64 { return f.size }

// ostPiece is the load one extent places on a single OST. A piece may
// aggregate several stripes of the same extent that land on the same OST.
type ostPiece struct {
	ost      int
	size     int64
	requests int64 // sub-requests landing in this piece
	rank     int
	rmwEdges int64 // request edges unaligned to RMWUnit (write RMW penalty)
}

// edgeRMW reports whether a boundary at off is a read-modify-write edge.
func (f *File) edgeRMW(off int64, trailing bool) bool {
	if off%f.fs.cfg.RMWUnit == 0 {
		return false
	}
	if trailing && off >= f.size {
		return false // appending past EOF: nothing to read back
	}
	return true
}

// split maps an extent to per-OST pieces according to the stripe layout.
// The extent's geometric footprint (SpanLen) decides which stripes are
// touched; its payload bytes are spread over those stripes in proportion
// to footprint overlap, and its sub-request count distributes with the
// payload. Extents spanning many stripe cycles aggregate into one piece
// per participating OST so cost stays O(stripeCount) rather than
// O(stripes).
func (f *File) split(e ioreq.Extent) []ostPiece {
	ss := f.stripeSize
	sc := int64(f.stripeCount)
	spanLen := e.SpanLen()
	end := e.Offset + spanLen
	firstStripe := e.Offset / ss
	lastStripe := (end - 1) / ss
	nStripes := lastStripe - firstStripe + 1

	ostOf := func(stripe int64) int {
		return (f.firstOST + int(stripe%sc)) % f.fs.cfg.OSTs
	}

	// Collect geometric footprint per OST slot first.
	type slotLoad struct {
		ost      int
		span     int64
		rmwEdges int64
	}
	var slots []slotLoad
	bySlot := map[int]int{} // ost -> index into slots
	add := func(stripe, span, edges int64) {
		ost := ostOf(stripe)
		idx, ok := bySlot[ost]
		if !ok {
			idx = len(slots)
			bySlot[ost] = idx
			slots = append(slots, slotLoad{ost: ost})
		}
		slots[idx].span += span
		slots[idx].rmwEdges += edges
	}

	if nStripes <= 2*sc {
		// exact per-stripe walk for small spans
		off := e.Offset
		remaining := spanLen
		for remaining > 0 {
			stripeIdx := off / ss
			avail := ss - off%ss
			n := remaining
			if n > avail {
				n = avail
			}
			var edges int64
			if f.edgeRMW(off, false) {
				edges++
			}
			if f.edgeRMW(off+n, true) {
				edges++
			}
			add(stripeIdx, n, edges)
			off += n
			remaining -= n
		}
	} else {
		// aggregated path: head/tail partial stripes plus evenly
		// distributed full stripes
		headBytes := int64(0)
		if rem := e.Offset % ss; rem != 0 {
			headBytes = ss - rem
		}
		tailBytes := end % ss
		fullFirst, fullLast := firstStripe, lastStripe
		if headBytes > 0 {
			fullFirst++
		}
		if tailBytes > 0 {
			fullLast--
		}
		fullCount := fullLast - fullFirst + 1
		if headBytes > 0 {
			var edges int64
			if f.edgeRMW(e.Offset, false) {
				edges++
			}
			add(firstStripe, headBytes, edges)
		}
		if tailBytes > 0 {
			var edges int64
			if f.edgeRMW(end, true) {
				edges++
			}
			add(lastStripe, tailBytes, edges)
		}
		base := fullCount / sc
		extra := fullCount % sc
		for i := int64(0); i < sc; i++ {
			stripe := fullFirst + i
			if stripe > fullLast {
				break
			}
			cnt := base
			if i < extra {
				cnt++
			}
			if cnt > 0 {
				add(stripe, cnt*ss, 0)
			}
		}
	}

	// Convert footprint to payload: spread Size bytes and Count requests
	// proportionally, conserving totals exactly.
	out := make([]ostPiece, 0, len(slots))
	var assignedBytes, assignedReqs int64
	for i, sl := range slots {
		size := sl.span * e.Size / spanLen
		reqs := sl.span * e.Requests() / spanLen
		if i == len(slots)-1 {
			size = e.Size - assignedBytes
			reqs = e.Requests() - assignedReqs
		}
		assignedBytes += size
		assignedReqs += reqs
		if size <= 0 {
			continue
		}
		if reqs < 1 {
			reqs = 1
		}
		out = append(out, ostPiece{
			ost: sl.ost, size: size, requests: reqs, rank: e.Rank, rmwEdges: sl.rmwEdges,
		})
	}
	return out
}

// phase services a set of extents and returns the elapsed simulated time.
func (f *File) phase(extents []ioreq.Extent, isWrite bool) (float64, error) {
	if len(extents) == 0 {
		return 0, nil
	}
	type ostLoad struct {
		bytes    int64
		rmwBytes int64
		requests int64
		clients  map[int]struct{}
	}
	loads := make(map[int]*ostLoad)
	perNodeBytes := make(map[int]int64)
	procsPerNode := f.fs.sim.Cluster.ProcsPerNode

	var appBytes int64
	for _, e := range extents {
		if err := e.Validate(); err != nil {
			return 0, err
		}
		appBytes += e.Size
		perNodeBytes[e.Rank/procsPerNode] += e.Size
		for _, p := range f.split(e) {
			l := loads[p.ost]
			if l == nil {
				l = &ostLoad{clients: make(map[int]struct{})}
				loads[p.ost] = l
			}
			l.bytes += p.size
			l.requests += p.requests
			l.clients[p.rank] = struct{}{}
			if isWrite {
				subSize := p.size / p.requests
				if subSize == 0 {
					subSize = p.size
				}
				edges := p.rmwEdges
				// Strided sub-requests smaller than the RAID segment pay
				// interior RMW; sequential write combining absorbs half.
				if p.requests > 1 && subSize%f.fs.cfg.RMWUnit != 0 {
					edges += p.requests / 2
				}
				l.rmwBytes += edges * min64(f.fs.cfg.RMWUnit, subSize)
			}
		}
		if isWrite && e.End() > f.size {
			f.size = e.End()
		}
	}

	// Slowest OST bounds the storage side.
	cfg := f.fs.cfg
	ostTime := 0.0
	var totalRequests, totalRMW int64
	for _, l := range loads {
		contention := 1 + cfg.ContentionFactor*float64(len(l.clients)-1)
		if contention > cfg.MaxContention {
			contention = cfg.MaxContention
		}
		t := float64(l.requests)*cfg.OSTLatency +
			float64(l.bytes+l.rmwBytes)/cfg.OSTBandwidth*contention
		if t > ostTime {
			ostTime = t
		}
		totalRequests += l.requests
		totalRMW += l.rmwBytes
	}

	// Client NIC side: slowest node's injection time.
	nicTime := 0.0
	for _, b := range perNodeBytes {
		t := float64(b) / f.fs.sim.Cluster.NICBandwidth
		if t > nicTime {
			nicTime = t
		}
	}

	elapsed := ostTime
	if nicTime > elapsed {
		elapsed = nicTime
	}
	elapsed += cfg.OSTLatency // pipeline fill
	elapsed = f.fs.sim.Perturb(elapsed)
	f.fs.sim.Advance(elapsed)

	rep := f.fs.sim.Report
	if isWrite {
		lc := rep.Layer("lustre")
		lc.WriteOps += totalRequests
		lc.BytesWritten += appBytes
		lc.BytesRead += totalRMW // RMW causes OST-side reads
		lc.WriteTime += elapsed
	} else {
		lc := rep.Layer("lustre")
		lc.ReadOps += totalRequests
		lc.BytesRead += appBytes
		lc.ReadTime += elapsed
	}
	return elapsed, nil
}

// WritePhase implements ioreq.Backend semantics for this file.
func (f *File) WritePhase(extents []ioreq.Extent) (float64, error) {
	return f.phase(extents, true)
}

// ReadPhase services concurrent reads.
func (f *File) ReadPhase(extents []ioreq.Extent) (float64, error) {
	return f.phase(extents, false)
}

// MetaOps services n metadata operations issued by nclients concurrent
// clients and returns the elapsed time. The MDS serializes operations over
// MDSParallel service streams.
func (fs *FS) MetaOps(n, nclients int) float64 {
	if n <= 0 {
		return 0
	}
	if nclients < 1 {
		nclients = 1
	}
	d := float64(n)*fs.cfg.MDSLatency/float64(fs.cfg.MDSParallel) + fs.sim.Cluster.NICLatency
	d = fs.sim.Perturb(d)
	fs.sim.Advance(d)
	fs.sim.Report.AddMeta("lustre", int64(n), d)
	return d
}

// Backend adapts FS to the ioreq.Backend interface, resolving files by
// name. Phases against unknown files create them with the FS's default or
// per-call striping settings recorded via SetDefaultStriping.
type Backend struct {
	FS          *FS
	StripeCount int
	StripeSize  int64
}

var _ ioreq.Backend = (*Backend)(nil)

// Name implements ioreq.Backend.
func (b *Backend) Name() string { return "lustre" }

func (b *Backend) file(name string) *File {
	if f, ok := b.FS.files[name]; ok {
		return f
	}
	f, err := b.FS.Create(name, b.StripeCount, b.StripeSize)
	if err != nil {
		panic("lustre: backend create: " + err.Error())
	}
	return f
}

// WritePhase implements ioreq.Backend.
func (b *Backend) WritePhase(name string, extents []ioreq.Extent) float64 {
	d, err := b.file(name).WritePhase(extents)
	if err != nil {
		panic("lustre: " + err.Error())
	}
	return d
}

// ReadPhase implements ioreq.Backend.
func (b *Backend) ReadPhase(name string, extents []ioreq.Extent) float64 {
	d, err := b.file(name).ReadPhase(extents)
	if err != nil {
		panic("lustre: " + err.Error())
	}
	return d
}

// MetaOps implements ioreq.Backend.
func (b *Backend) MetaOps(n, nclients int) float64 {
	return b.FS.MetaOps(n, nclients)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
