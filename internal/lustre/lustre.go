// Package lustre simulates a Lustre-like parallel file system: a pool of
// object storage targets (OSTs) that files are striped across, plus a
// metadata server (MDS).
//
// The model captures the effects that make Lustre tuning matter in the
// paper's experiments:
//
//   - stripe count decides how many OSTs serve a file in parallel (the
//     Lustre default of 1 is the classic untuned bottleneck);
//   - stripe size decides how extents split into per-OST requests: too
//     small multiplies per-request latency, too large causes imbalance;
//   - writes not aligned to the RAID segment pay a read-modify-write
//     penalty at the OST;
//   - many clients interleaving requests on one OST degrade its effective
//     bandwidth (contention);
//   - every open/create/stat costs an MDS round trip, so metadata storms
//     from thousands of ranks are expensive unless issued collectively.
//
// Phase cost = max(client-side NIC time, slowest OST service time): the
// network transfer and OST service overlap in a pipelined fashion.
package lustre

import (
	"fmt"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
)

// Config describes the file system hardware.
type Config struct {
	OSTs             int
	OSTBandwidth     float64 // bytes/second per OST
	OSTLatency       float64 // seconds per request
	RMWUnit          int64   // RAID segment size; unaligned write edges pay RMW
	MDSLatency       float64 // seconds per metadata op
	MDSParallel      int     // concurrent MDS service streams
	ContentionFactor float64 // bandwidth degradation per extra client on an OST
	MaxContention    float64 // cap on the contention multiplier
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.OSTs <= 0 {
		return fmt.Errorf("lustre: OSTs must be positive, got %d", c.OSTs)
	}
	if c.OSTBandwidth <= 0 || c.OSTLatency < 0 || c.MDSLatency < 0 {
		return fmt.Errorf("lustre: invalid timing constants")
	}
	if c.RMWUnit <= 0 {
		return fmt.Errorf("lustre: RMWUnit must be positive, got %d", c.RMWUnit)
	}
	if c.MDSParallel <= 0 {
		return fmt.Errorf("lustre: MDSParallel must be positive, got %d", c.MDSParallel)
	}
	if c.ContentionFactor < 0 || c.MaxContention < 1 {
		return fmt.Errorf("lustre: invalid contention model")
	}
	return nil
}

// CoriScratch returns a configuration calibrated to Cori's scratch file
// system (~248 OSTs, ~700 GB/s aggregate, DataDirect RAID with 1 MiB
// segments).
func CoriScratch() Config {
	return Config{
		OSTs:             248,
		OSTBandwidth:     2.8e9,
		OSTLatency:       0.4e-3,
		RMWUnit:          1 << 20,
		MDSLatency:       0.25e-3,
		MDSParallel:      4,
		ContentionFactor: 0.015,
		MaxContention:    4,
	}
}

// FS is a simulated Lustre file system bound to one simulation context.
type FS struct {
	cfg   Config
	sim   *cluster.Sim
	files map[string]*File
	// nextOST round-robins the starting OST of new files, like Lustre's
	// allocator spreading files across the pool.
	nextOST int

	// Scratch state reused across split/phase calls. Access to one FS is
	// serialized (the simulation advances a single clock), so phases never
	// run concurrently; concurrent tuning evaluations each build their own
	// stack and FS. Epoch stamps make resets O(touched) instead of O(OSTs).
	scratch phaseScratch
}

// phaseScratch holds the dense accumulators split and phase reuse call to
// call, replacing the per-call maps that dominated the evaluation hot path.
// Epoch stamps mark which entries belong to the current extent/phase, so a
// "reset" is a counter increment rather than a clear.
type phaseScratch struct {
	pieces []ostPiece // split output buffer

	// Per-extent slot accumulation in split, indexed by stripe%stripeCount.
	// slotOrder keeps first-touch order: the last touched slot absorbs the
	// payload rounding remainder, exactly as the map-based version did.
	slotEpoch []uint32
	slotSpan  []int64
	slotEdges []int64
	slotOrder []int32
	slotGen   uint32

	// Per-phase OST load accumulation, indexed by OST.
	loadEpoch []uint32
	loadBytes []int64
	loadRMW   []int64
	loadReqs  []int64
	loadClis  []int64 // distinct clients touching the OST
	loadOrder []int32

	// Distinct-client stamps, indexed by OST*cliStride+rank.
	cliEpoch  []uint32
	cliStride int

	// Per-phase per-node byte totals, indexed by node.
	nodeEpoch []uint32
	nodeBytes []int64
	nodeOrder []int32

	phaseGen uint32
}

// grow ensures the epoch/value slice pair covers index n.
func growStamps(epoch *[]uint32, n int) {
	if n < len(*epoch) {
		return
	}
	ne := make([]uint32, n+1)
	copy(ne, *epoch)
	*epoch = ne
}

func growInt64(vals *[]int64, n int) {
	if n < len(*vals) {
		return
	}
	nv := make([]int64, n+1)
	copy(nv, *vals)
	*vals = nv
}

// New builds a file system.
func New(cfg Config, sim *cluster.Sim) (*FS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FS{cfg: cfg, sim: sim, files: make(map[string]*File)}, nil
}

// Config returns the file system configuration.
func (fs *FS) Config() Config { return fs.cfg }

// File is one striped file.
type File struct {
	fs          *FS
	name        string
	stripeCount int
	stripeSize  int64
	firstOST    int
	size        int64
}

// Create makes (or truncates) a file with the given striping. stripeCount
// is clamped to the OST pool size; stripeCount <= 0 or stripeSize <= 0
// select the Lustre defaults (1 stripe, 1 MiB).
func (fs *FS) Create(name string, stripeCount int, stripeSize int64) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("lustre: empty file name")
	}
	if stripeCount <= 0 {
		stripeCount = 1
	}
	if stripeCount > fs.cfg.OSTs {
		stripeCount = fs.cfg.OSTs
	}
	if stripeSize <= 0 {
		stripeSize = 1 << 20
	}
	f := &File{
		fs:          fs,
		name:        name,
		stripeCount: stripeCount,
		stripeSize:  stripeSize,
		firstOST:    fs.nextOST,
	}
	fs.nextOST = (fs.nextOST + stripeCount) % fs.cfg.OSTs
	fs.files[name] = f
	fs.MetaOps(1, 1) // create is one MDS op
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("lustre: open %s: no such file", name)
	}
	fs.MetaOps(1, 1)
	return f, nil
}

// Exists reports whether a file was created in this simulation.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// StripeCount returns the file's stripe count.
func (f *File) StripeCount() int { return f.stripeCount }

// StripeSize returns the file's stripe size in bytes.
func (f *File) StripeSize() int64 { return f.stripeSize }

// Size returns the current file size (high-water mark of writes).
func (f *File) Size() int64 { return f.size }

// ostPiece is the load one extent places on a single OST. A piece may
// aggregate several stripes of the same extent that land on the same OST.
type ostPiece struct {
	ost      int
	size     int64
	requests int64 // sub-requests landing in this piece
	rank     int
	rmwEdges int64 // request edges unaligned to RMWUnit (write RMW penalty)
}

// edgeRMW reports whether a boundary at off is a read-modify-write edge.
func (f *File) edgeRMW(off int64, trailing bool) bool {
	if off%f.fs.cfg.RMWUnit == 0 {
		return false
	}
	if trailing && off >= f.size {
		return false // appending past EOF: nothing to read back
	}
	return true
}

// split maps an extent to per-OST pieces according to the stripe layout.
// The extent's geometric footprint (SpanLen) decides which stripes are
// touched; its payload bytes are spread over those stripes in proportion
// to footprint overlap, and its sub-request count distributes with the
// payload. Extents spanning many stripe cycles aggregate into one piece
// per participating OST so cost stays O(stripeCount) rather than
// O(stripes).
func (f *File) split(e ioreq.Extent) []ostPiece {
	ss := f.stripeSize
	sc := int64(f.stripeCount)
	spanLen := e.SpanLen()
	end := e.Offset + spanLen
	firstStripe := e.Offset / ss
	lastStripe := (end - 1) / ss
	nStripes := lastStripe - firstStripe + 1

	// Collect geometric footprint per OST slot first. Slots are keyed by
	// stripe%stripeCount (equivalent to keying by OST: the slot->OST map is
	// injective) into epoch-stamped scratch arrays, in first-touch order.
	sp := &f.fs.scratch
	sp.slotGen++
	gen := sp.slotGen
	growStamps(&sp.slotEpoch, int(sc)-1)
	growInt64(&sp.slotSpan, int(sc)-1)
	growInt64(&sp.slotEdges, int(sc)-1)
	sp.slotOrder = sp.slotOrder[:0]
	add := func(stripe, span, edges int64) {
		slot := int(stripe % sc)
		if sp.slotEpoch[slot] != gen {
			sp.slotEpoch[slot] = gen
			sp.slotSpan[slot] = 0
			sp.slotEdges[slot] = 0
			sp.slotOrder = append(sp.slotOrder, int32(slot))
		}
		sp.slotSpan[slot] += span
		sp.slotEdges[slot] += edges
	}

	if nStripes <= 2*sc {
		// exact per-stripe walk for small spans; the stripe index and
		// in-stripe position advance incrementally (no div/mod per stripe)
		off := e.Offset
		remaining := spanLen
		stripeIdx := firstStripe
		avail := ss - off%ss
		for remaining > 0 {
			n := remaining
			if n > avail {
				n = avail
			}
			var edges int64
			if f.edgeRMW(off, false) {
				edges++
			}
			if f.edgeRMW(off+n, true) {
				edges++
			}
			add(stripeIdx, n, edges)
			off += n
			remaining -= n
			stripeIdx++
			avail = ss
		}
	} else {
		// aggregated path: head/tail partial stripes plus evenly
		// distributed full stripes
		headBytes := int64(0)
		if rem := e.Offset % ss; rem != 0 {
			headBytes = ss - rem
		}
		tailBytes := end % ss
		fullFirst, fullLast := firstStripe, lastStripe
		if headBytes > 0 {
			fullFirst++
		}
		if tailBytes > 0 {
			fullLast--
		}
		fullCount := fullLast - fullFirst + 1
		if headBytes > 0 {
			var edges int64
			if f.edgeRMW(e.Offset, false) {
				edges++
			}
			add(firstStripe, headBytes, edges)
		}
		if tailBytes > 0 {
			var edges int64
			if f.edgeRMW(end, true) {
				edges++
			}
			add(lastStripe, tailBytes, edges)
		}
		base := fullCount / sc
		extra := fullCount % sc
		for i := int64(0); i < sc; i++ {
			stripe := fullFirst + i
			if stripe > fullLast {
				break
			}
			cnt := base
			if i < extra {
				cnt++
			}
			if cnt > 0 {
				add(stripe, cnt*ss, 0)
			}
		}
	}

	// Convert footprint to payload: spread Size bytes and Count requests
	// proportionally, conserving totals exactly (the last touched slot
	// absorbs the rounding remainder).
	out := sp.pieces[:0]
	var assignedBytes, assignedReqs int64
	for i, slot := range sp.slotOrder {
		span := sp.slotSpan[slot]
		size := span * e.Size / spanLen
		reqs := span * e.Requests() / spanLen
		if i == len(sp.slotOrder)-1 {
			size = e.Size - assignedBytes
			reqs = e.Requests() - assignedReqs
		}
		assignedBytes += size
		assignedReqs += reqs
		if size <= 0 {
			continue
		}
		if reqs < 1 {
			reqs = 1
		}
		out = append(out, ostPiece{
			ost:      (f.firstOST + int(slot)) % f.fs.cfg.OSTs,
			size:     size,
			requests: reqs,
			rank:     e.Rank,
			rmwEdges: sp.slotEdges[slot],
		})
	}
	sp.pieces = out
	return out
}

// phase services a set of extents and returns the elapsed simulated time.
func (f *File) phase(extents []ioreq.Extent, isWrite bool) (float64, error) {
	if len(extents) == 0 {
		return 0, nil
	}
	sp := &f.fs.scratch
	sp.phaseGen++
	gen := sp.phaseGen
	sp.loadOrder = sp.loadOrder[:0]
	sp.nodeOrder = sp.nodeOrder[:0]
	procsPerNode := f.fs.sim.Cluster.ProcsPerNode
	nOSTs := f.fs.cfg.OSTs
	growStamps(&sp.loadEpoch, nOSTs-1)
	growInt64(&sp.loadBytes, nOSTs-1)
	growInt64(&sp.loadRMW, nOSTs-1)
	growInt64(&sp.loadReqs, nOSTs-1)
	growInt64(&sp.loadClis, nOSTs-1)

	// Distinct-client stamps: one row of ranks per OST. Rank values are
	// bounded by the cluster size in practice; grow defensively otherwise.
	maxRank := 0
	for _, e := range extents {
		if e.Rank > maxRank {
			maxRank = e.Rank
		}
	}
	if sp.cliStride < maxRank+1 || len(sp.cliEpoch) < nOSTs*sp.cliStride {
		sp.cliStride = maxRank + 1
		sp.cliEpoch = make([]uint32, nOSTs*sp.cliStride)
	}

	var appBytes int64
	for _, e := range extents {
		if err := e.Validate(); err != nil {
			return 0, err
		}
		appBytes += e.Size
		node := e.Rank / procsPerNode
		growStamps(&sp.nodeEpoch, node)
		growInt64(&sp.nodeBytes, node)
		if sp.nodeEpoch[node] != gen {
			sp.nodeEpoch[node] = gen
			sp.nodeBytes[node] = 0
			sp.nodeOrder = append(sp.nodeOrder, int32(node))
		}
		sp.nodeBytes[node] += e.Size
		for _, p := range f.split(e) {
			o := p.ost
			if sp.loadEpoch[o] != gen {
				sp.loadEpoch[o] = gen
				sp.loadBytes[o] = 0
				sp.loadRMW[o] = 0
				sp.loadReqs[o] = 0
				sp.loadClis[o] = 0
				sp.loadOrder = append(sp.loadOrder, int32(o))
			}
			sp.loadBytes[o] += p.size
			sp.loadReqs[o] += p.requests
			if cs := o*sp.cliStride + p.rank; sp.cliEpoch[cs] != gen {
				sp.cliEpoch[cs] = gen
				sp.loadClis[o]++
			}
			if isWrite {
				subSize := p.size / p.requests
				if subSize == 0 {
					subSize = p.size
				}
				edges := p.rmwEdges
				// Strided sub-requests smaller than the RAID segment pay
				// interior RMW; sequential write combining absorbs half.
				if p.requests > 1 && subSize%f.fs.cfg.RMWUnit != 0 {
					edges += p.requests / 2
				}
				sp.loadRMW[o] += edges * min64(f.fs.cfg.RMWUnit, subSize)
			}
		}
		if isWrite && e.End() > f.size {
			f.size = e.End()
		}
	}

	// Slowest OST bounds the storage side. Under a drift schedule the
	// phase samples the machine once at its start time: background OST
	// load and per-regime degraded OSTs divide effective bandwidth, and
	// contention phases scale the per-extra-client factor. The nil-drift
	// path charges the exact historical expressions.
	cfg := f.fs.cfg
	dr := f.fs.sim.Cluster.Drift
	var at, cScale float64
	if dr != nil {
		at = f.fs.sim.Time()
		cScale = dr.ContentionScale(at)
	}
	ostTime := 0.0
	var totalRequests, totalRMW int64
	for _, o := range sp.loadOrder {
		contention := 1 + cfg.ContentionFactor*float64(sp.loadClis[o]-1)
		if dr != nil {
			contention = 1 + cfg.ContentionFactor*cScale*float64(sp.loadClis[o]-1)
		}
		if contention > cfg.MaxContention {
			contention = cfg.MaxContention
		}
		bw := cfg.OSTBandwidth
		if dr != nil {
			bw *= dr.OSTFactor(at, int(o), nOSTs)
		}
		t := float64(sp.loadReqs[o])*cfg.OSTLatency +
			float64(sp.loadBytes[o]+sp.loadRMW[o])/bw*contention
		if t > ostTime {
			ostTime = t
		}
		totalRequests += sp.loadReqs[o]
		totalRMW += sp.loadRMW[o]
	}

	// Client NIC side: slowest node's injection time.
	nicBW := f.fs.sim.Cluster.NICBandwidth
	if dr != nil {
		nicBW *= dr.NICFactor(at)
	}
	nicTime := 0.0
	for _, n := range sp.nodeOrder {
		t := float64(sp.nodeBytes[n]) / nicBW
		if t > nicTime {
			nicTime = t
		}
	}

	elapsed := ostTime
	if nicTime > elapsed {
		elapsed = nicTime
	}
	elapsed += cfg.OSTLatency // pipeline fill
	elapsed = f.fs.sim.Perturb(elapsed)
	f.fs.sim.Advance(elapsed)

	rep := f.fs.sim.Report
	if isWrite {
		lc := rep.Layer("lustre")
		lc.WriteOps += totalRequests
		lc.BytesWritten += appBytes
		lc.BytesRead += totalRMW // RMW causes OST-side reads
		lc.WriteTime += elapsed
	} else {
		lc := rep.Layer("lustre")
		lc.ReadOps += totalRequests
		lc.BytesRead += appBytes
		lc.ReadTime += elapsed
	}
	return elapsed, nil
}

// WritePhase implements ioreq.Backend semantics for this file.
func (f *File) WritePhase(extents []ioreq.Extent) (float64, error) {
	return f.phase(extents, true)
}

// ReadPhase services concurrent reads.
func (f *File) ReadPhase(extents []ioreq.Extent) (float64, error) {
	return f.phase(extents, false)
}

// MetaOps services n metadata operations issued by nclients concurrent
// clients and returns the elapsed time. The MDS serializes operations over
// MDSParallel service streams.
func (fs *FS) MetaOps(n, nclients int) float64 {
	if n <= 0 {
		return 0
	}
	if nclients < 1 {
		nclients = 1
	}
	d := float64(n)*fs.cfg.MDSLatency/float64(fs.cfg.MDSParallel) + fs.sim.Cluster.NICLatency
	if dr := fs.sim.Cluster.Drift; dr != nil {
		// Background metadata traffic divides MDS service capacity.
		d = float64(n)*fs.cfg.MDSLatency/(float64(fs.cfg.MDSParallel)*dr.MDSFactor(fs.sim.Time())) + fs.sim.Cluster.NICLatency
	}
	d = fs.sim.Perturb(d)
	fs.sim.Advance(d)
	fs.sim.Report.AddMeta("lustre", int64(n), d)
	return d
}

// Backend adapts FS to the ioreq.Backend interface, resolving files by
// name. Phases against unknown files create them with the FS's default or
// per-call striping settings recorded via SetDefaultStriping.
type Backend struct {
	FS          *FS
	StripeCount int
	StripeSize  int64
}

var _ ioreq.Backend = (*Backend)(nil)

// Name implements ioreq.Backend.
func (b *Backend) Name() string { return "lustre" }

func (b *Backend) file(name string) *File {
	if f, ok := b.FS.files[name]; ok {
		return f
	}
	f, err := b.FS.Create(name, b.StripeCount, b.StripeSize)
	if err != nil {
		panic("lustre: backend create: " + err.Error())
	}
	return f
}

// WritePhase implements ioreq.Backend.
func (b *Backend) WritePhase(name string, extents []ioreq.Extent) float64 {
	d, err := b.file(name).WritePhase(extents)
	if err != nil {
		panic("lustre: " + err.Error())
	}
	return d
}

// ReadPhase implements ioreq.Backend.
func (b *Backend) ReadPhase(name string, extents []ioreq.Extent) float64 {
	d, err := b.file(name).ReadPhase(extents)
	if err != nil {
		panic("lustre: " + err.Error())
	}
	return d
}

// MetaOps implements ioreq.Backend.
func (b *Backend) MetaOps(n, nclients int) float64 {
	return b.FS.MetaOps(n, nclients)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
