package analysis

import (
	"strings"
	"testing"
)

func computeSig(t *testing.T, src string) *IOSignature {
	t.Helper()
	return ComputeSignature(mustParse(t, src), SignatureOptions{})
}

const sigLoopSrc = `int main() {
    int i;
    char buf[256];
    FILE* fp = fopen("/scratch/out.bin", "w");
    for (i = 0; i < 128; i++) {
        fwrite(buf, 1, 256, fp);
    }
    fclose(fp);
    return 0;
}`

func TestSignatureExactLoop(t *testing.T) {
	sig := computeSig(t, sigLoopSrc)
	if !sig.Exact {
		t.Fatalf("signature inexact: %s", sig.Reason)
	}
	ops := map[string]string{}
	for _, o := range sig.Ops {
		ops[o.Op] = symStr(o.Count)
	}
	if ops["fwrite"] != "128" {
		t.Errorf("fwrite count = %s, want 128", ops["fwrite"])
	}
	if got := symStr(sig.BytesWritten); got != "128*256" && got != "32768" {
		t.Errorf("bytes written = %s, want 128*256", got)
	}
	if len(sig.Transfers) != 1 || !sig.Transfers[0].Write {
		t.Fatalf("transfers = %+v, want one write site", sig.Transfers)
	}
	conc, err := sig.Concrete(nil)
	if err != nil {
		t.Fatalf("concrete: %v", err)
	}
	if conc.BytesWritten != 128*256 {
		t.Errorf("concrete bytes written = %d, want %d", conc.BytesWritten, 128*256)
	}
	if conc.Ops["fwrite"] != 128 {
		t.Errorf("concrete fwrite count = %d, want 128", conc.Ops["fwrite"])
	}
}

func TestSignatureInexactUnknownBound(t *testing.T) {
	src := `int main() {
    int i;
    int n = atoi_like();
    char buf[256];
    FILE* fp = fopen("/scratch/out.bin", "w");
    for (i = 0; i < n; i++) {
        fwrite(buf, 1, 256, fp);
    }
    fclose(fp);
    return 0;
}`
	sig := computeSig(t, src)
	if sig.Exact {
		t.Fatal("signature over an unknown trip count claims exactness")
	}
	if sig.Reason == "" {
		t.Error("inexact signature has no reason")
	}
	if _, err := sig.Concrete(nil); err == nil {
		t.Error("Concrete() accepted an inexact signature")
	}
}

func TestSignatureInexactConditionalIO(t *testing.T) {
	src := `int main() {
    char buf[256];
    FILE* fp = fopen("/scratch/out.bin", "w");
    if (coin_flip()) {
        fwrite(buf, 1, 256, fp);
    }
    fclose(fp);
    return 0;
}`
	if sig := computeSig(t, src); sig.Exact {
		t.Fatal("signature over conditional I/O claims exactness")
	}
}

func TestSignatureNoMain(t *testing.T) {
	sig := computeSig(t, `int helper() { return 0; }`)
	if sig.Exact {
		t.Fatal("signature without main claims exactness")
	}
	if !strings.Contains(sig.Reason, "main") {
		t.Errorf("reason = %q, want mention of main", sig.Reason)
	}
}

func TestSignatureHashStableAndDiscriminating(t *testing.T) {
	a1 := computeSig(t, sigLoopSrc)
	a2 := computeSig(t, sigLoopSrc)
	if a1.Hash() != a2.Hash() {
		t.Error("hash differs across identical computations")
	}
	changed := strings.Replace(sigLoopSrc, "i < 128", "i < 64", 1)
	b := computeSig(t, changed)
	if a1.Hash() == b.Hash() {
		t.Error("hash identical for kernels with different I/O volume")
	}
}

func TestVolumeDiagnostics(t *testing.T) {
	before := computeSig(t, sigLoopSrc)
	same := computeSig(t, sigLoopSrc)
	if got := VolumeDiagnostics(before, same); len(got) != 0 {
		t.Errorf("TR008 fired on identical volumes: %v", got)
	}
	after := computeSig(t, strings.Replace(sigLoopSrc, "i < 128", "i < 64", 1))
	got := VolumeDiagnostics(before, after)
	if len(got) != 1 || got[0].Code != CodeVolumeChanged {
		t.Fatalf("want one TR008, got %v", got)
	}
	if got[0].Severity != SevWarning {
		t.Errorf("TR008 severity = %v, want warning", got[0].Severity)
	}
	inexact := computeSig(t, `int helper() { return 0; }`)
	if got := VolumeDiagnostics(before, inexact); len(got) != 0 {
		t.Errorf("TR008 fired against an inexact signature: %v", got)
	}
	if got := VolumeDiagnostics(nil, after); len(got) != 0 {
		t.Errorf("TR008 fired on a nil signature: %v", got)
	}
}

func TestIO007SmallWritesInLoop(t *testing.T) {
	got := findCode(runLint(t, sigLoopSrc), CodeSmallWritesInLoop)
	if len(got) != 1 {
		t.Fatalf("want one IO007, got %v", got)
	}
	if got[0].Severity != SevWarning {
		t.Errorf("IO007 severity = %v, want warning", got[0].Severity)
	}
	if !strings.Contains(got[0].Message, "128") || !strings.Contains(got[0].Message, "256") {
		t.Errorf("message should state count and size: %s", got[0].Message)
	}
}

func TestIO007NotFlaggedFewIterations(t *testing.T) {
	src := strings.Replace(sigLoopSrc, "i < 128", "i < 8", 1)
	if got := findCode(runLint(t, src), CodeSmallWritesInLoop); len(got) != 0 {
		t.Errorf("IO007 fired below the trip-count threshold: %v", got)
	}
}

func TestIO007NotFlaggedLargeWrites(t *testing.T) {
	src := strings.Replace(sigLoopSrc, "fwrite(buf, 1, 256, fp)", "fwrite(buf, 65536, 256, fp)", 1)
	if got := findCode(runLint(t, src), CodeSmallWritesInLoop); len(got) != 0 {
		t.Errorf("IO007 fired on large transfers: %v", got)
	}
}

const sigRMWSrc = `int main() {
    hsize_t dims[1];
    double buf[1024];
    int i;
    dims[0] = 1024;
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hid_t file = H5Fcreate("out.h5", 0, H5P_DEFAULT, H5P_DEFAULT);
    hid_t dset = H5Dcreate(file, "d", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    for (i = 0; i < 4; i++) {
        H5Dread(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, buf);
        H5Dwrite(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, buf);
    }
    H5Dclose(dset);
    H5Fclose(file);
    return 0;
}`

func TestIO008ReadModifyWrite(t *testing.T) {
	got := findCode(runLint(t, sigRMWSrc), CodeRepeatedExtentRMW)
	if len(got) != 1 {
		t.Fatalf("want one IO008, got %v", got)
	}
	if got[0].Severity != SevWarning {
		t.Errorf("IO008 severity = %v, want warning", got[0].Severity)
	}
}

func TestIO008NotFlaggedWriteOnly(t *testing.T) {
	src := strings.Replace(sigRMWSrc,
		"H5Dread(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, buf);\n        ", "", 1)
	if got := findCode(runLint(t, src), CodeRepeatedExtentRMW); len(got) != 0 {
		t.Errorf("IO008 fired without a read in the loop: %v", got)
	}
}

func TestIO008NotFlaggedDistinctExtents(t *testing.T) {
	// The read walks a per-iteration hyperslab while the write covers the
	// whole space: different extents, no RMW.
	src := `int main() {
    hsize_t dims[1];
    hsize_t start[1];
    hsize_t count[1];
    double buf[1024];
    int i;
    dims[0] = 1024;
    count[0] = 256;
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hid_t file = H5Fcreate("out.h5", 0, H5P_DEFAULT, H5P_DEFAULT);
    hid_t dset = H5Dcreate(file, "d", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    for (i = 0; i < 4; i++) {
        start[0] = i * 256;
        H5Sselect_hyperslab(sp, H5S_SELECT_SET, start, NULL, count, NULL);
        H5Dread(dset, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, buf);
    }
    H5Dclose(dset);
    H5Fclose(file);
    return 0;
}`
	if got := findCode(runLint(t, src), CodeRepeatedExtentRMW); len(got) != 0 {
		t.Errorf("IO008 fired on loop-dependent extents: %v", got)
	}
}
