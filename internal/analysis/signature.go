package analysis

// signature.go derives a kernel's symbolic I/O signature: closed-form
// expressions — over the parameter symbols "nprocs" and "rank" plus the
// program's own constants — for how many trace events of each kind the
// kernel issues and how many bytes each transfer moves. The walker is an
// abstract interpreter over the csrc AST that mirrors the cinterp builtin
// model (hid_t objects, dataspaces, hyperslab selections, 8-byte
// elements); loop trip counts come from ForTrip, so every count is a
// SymExpr the replay engine can evaluate at concrete parameters and
// cross-validate against a recorded trace.
//
// Exactness is tracked, not assumed: any construct the walker cannot
// count precisely (unknown trip counts, conditional I/O, strided
// selections, unmodeled I/O externs) demotes the signature to inexact
// with a reason, and Concrete refuses to evaluate inexact signatures —
// an inexact signature can still be hashed and printed, but never serves
// as a validation oracle.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"tunio/internal/csrc"
)

// Family labels the API family an operation belongs to.
type Family string

// API families distinguished by the signature.
const (
	FamHDF5  Family = "hdf5"
	FamMPIIO Family = "mpiio"
	FamPOSIX Family = "posix"
	FamMPI   Family = "mpi"
	FamSim   Family = "sim"
)

// Access-pattern labels for transfer sites.
const (
	PatContiguous  = "contiguous"
	PatStrided     = "strided"
	PatBlockCyclic = "block-cyclic"
	PatUnknown     = "unknown"
	PatMixed       = "mixed"
	PatNone        = "none"
)

// OpCount is the symbolic number of times one call executes. A nil Count
// means the walker could not bound it (the signature is then inexact).
type OpCount struct {
	Op     string
	Family Family
	Count  *SymExpr
}

// TransferSite describes one static H5Dwrite/H5Dread/fwrite/fread call
// site: how often it executes (Count) and how many bytes each execution
// moves. For collective HDF5 transfers Bytes aggregates all ranks
// (RankBytes × nprocs), matching the one-event-per-collective-call trace
// model; for POSIX stream calls Bytes is per process.
type TransferSite struct {
	Op        string
	Family    Family
	Write     bool
	Line      int
	Count     *SymExpr // executions (product of enclosing trip counts)
	RankBytes *SymExpr // bytes per execution on one rank
	Bytes     *SymExpr // bytes per execution across ranks (trace-event bytes)
	Pattern   string

	// loop context for the lint rules (IO007/IO008).
	loopLine  int      // innermost enclosing loop (0 at top level)
	loopTrip  *SymExpr // innermost loop's trip count (nil unknown)
	dsObj     int      // identity of the dataset handle (-1 unknown)
	extentKey string   // canonical start|count rendering ("" unknown)
	loopDep   bool     // extent or size depends on a loop induction var
}

// IOSignature is the per-kernel symbolic I/O signature.
type IOSignature struct {
	Exact        bool
	Reason       string // first inexactness reason ("" when exact)
	Pattern      string
	Ops          []OpCount // sorted by op name
	Transfers    []TransferSite
	BytesWritten *SymExpr // nil when not statically bounded
	BytesRead    *SymExpr
}

// ConcreteTransfer is a TransferSite evaluated at concrete parameters.
type ConcreteTransfer struct {
	Op    string
	Write bool
	Count int64
	Bytes int64 // per execution, across ranks
}

// ConcreteSignature is an exact signature evaluated at a parameter
// binding (typically {"nprocs": N}).
type ConcreteSignature struct {
	Ops          map[string]int64
	Transfers    []ConcreteTransfer
	BytesWritten int64
	BytesRead    int64
}

// SignatureOptions configures signature extraction.
type SignatureOptions struct {
	// IsIOCall classifies extern calls as I/O; nil means DefaultIsIOCall.
	IsIOCall func(string) bool
}

// sigEventFam maps the modeled calls that produce trace events to their
// API family. Calls outside this map either have no trace footprint
// (sigSilentCalls) or are unmodeled.
var sigEventFam = map[string]Family{
	"MPI_Init": FamMPI, "MPI_Finalize": FamMPI, "MPI_Barrier": FamMPI,
	"compute_flops": FamSim,
	"H5Fcreate":     FamHDF5, "H5Fopen": FamHDF5, "H5Fclose": FamHDF5,
	"H5Dcreate": FamHDF5, "H5Dopen": FamHDF5, "H5Gcreate": FamHDF5,
	"H5Acreate": FamHDF5, "H5Dwrite": FamHDF5, "H5Dread": FamHDF5,
	"fopen": FamPOSIX, "fclose": FamPOSIX, "fwrite": FamPOSIX, "fread": FamPOSIX,
}

// sigSilentCalls are modeled calls with no trace event of their own.
var sigSilentCalls = map[string]bool{
	"H5Dclose": true, "H5Sclose": true, "H5Gclose": true, "H5Aclose": true,
	"H5Pclose": true, "H5Awrite": true,
	"H5Screate_simple": true, "H5Sselect_hyperslab": true, "H5Pcreate": true,
	"dsname": true, "printf": true, "malloc": true, "calloc": true,
	"free": true, "sqrt": true, "exit": true,
	"sprintf": true, "snprintf": true, "strcpy": true, "strncpy": true,
	"strcat":        true,
	"MPI_Comm_rank": true, "MPI_Comm_size": true,
	"__loop_reduce": true,
}

// sigIdentConsts mirrors the interpreter's named-constant table for the
// identifiers that matter to the abstract walk.
var sigIdentConsts = map[string]int64{
	"NULL": 0, "MPI_INFO_NULL": 0, "H5P_DEFAULT": 0, "H5S_ALL": 0,
}

type sigKind int

const (
	sigUnknown sigKind = iota
	sigInt
	sigStr
	sigArr
	sigSpaceK
	sigPlistK
	sigObjectK // file or dataset handle
)

type sigSpace struct {
	dims     []*SymExpr
	selStart []*SymExpr // nil until a hyperslab is selected
	selCount []*SymExpr
	bad      bool // selection the model cannot express (e.g. strided)
}

type sigPlist struct{ chunk []*SymExpr }

type sigObject struct{ id int }

type sigVal struct {
	kind sigKind
	n    *SymExpr
	s    string
	arr  []*SymExpr
	sp   *sigSpace
	pl   *sigPlist
	obj  *sigObject
}

func intSigVal(e *SymExpr) sigVal {
	if e == nil {
		return sigVal{}
	}
	return sigVal{kind: sigInt, n: e}
}

func strSigVal(s string) sigVal { return sigVal{kind: sigStr, s: s} }

type sigEnv map[string]sigVal

func cloneSigEnv(e sigEnv) sigEnv {
	out := make(sigEnv, len(e))
	for k, v := range e {
		if v.kind == sigArr {
			v.arr = append([]*SymExpr(nil), v.arr...)
		}
		out[k] = v
	}
	return out
}

func symStr(e *SymExpr) string {
	if e == nil {
		return "?"
	}
	return e.String()
}

func sameSigVal(a, b sigVal) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case sigInt:
		return symStr(a.n) == symStr(b.n)
	case sigStr:
		return a.s == b.s
	case sigArr:
		if len(a.arr) != len(b.arr) {
			return false
		}
		for i := range a.arr {
			if symStr(a.arr[i]) != symStr(b.arr[i]) {
				return false
			}
		}
		return true
	case sigSpaceK:
		return a.sp == b.sp
	case sigPlistK:
		return a.pl == b.pl
	case sigObjectK:
		return a.obj == b.obj
	}
	return true
}

func symMulNil(a, b *SymExpr) *SymExpr {
	if a == nil || b == nil {
		return nil
	}
	return SymMul(a, b)
}

type sigLoop struct {
	line int
	trip *SymExpr // nil unknown
	sym  string   // induction-variable symbol ("" when unrecognized)
}

type sigWalker struct {
	f         *csrc.File
	locals    map[string]map[string]bool
	isIO      func(string) bool
	globalInt map[string]int64
	funcHasIO map[string]bool

	ops       map[string]*SymExpr
	opFam     map[string]Family
	opUnknown map[string]bool
	transfers []TransferSite
	inexact   []string

	mult      *SymExpr // execution multiplier of the current point; nil unknown
	loops     []sigLoop
	curFn     string
	curPos    int
	retVal    sigVal
	condTaint bool // an undecided branch may have returned early
	halted    bool // exit() was reached
	nextID    int
	depth     int
	active    map[string]bool
}

// ComputeSignature derives the symbolic I/O signature of f's main
// function. It never fails: anything unprovable yields an inexact
// signature carrying the first reason.
func ComputeSignature(f *csrc.File, opts SignatureOptions) *IOSignature {
	isIO := opts.IsIOCall
	if isIO == nil {
		isIO = DefaultIsIOCall
	}
	w := &sigWalker{
		f:         f,
		locals:    LocalNames(f),
		isIO:      isIO,
		globalInt: sigGlobalInts(f),
		ops:       map[string]*SymExpr{},
		opFam:     map[string]Family{},
		opUnknown: map[string]bool{},
		mult:      SymConst(1),
		active:    map[string]bool{},
	}
	w.computeFuncHasIO()
	main := f.Func("main")
	if main == nil {
		return &IOSignature{Reason: "no main function"}
	}
	w.walkFunc(main, nil)
	return w.assemble()
}

// sigGlobalInts collects global integer variables with a foldable
// initializer that no statement anywhere redefines.
func sigGlobalInts(f *csrc.File) map[string]int64 {
	locals := LocalNames(f)
	clobbered := map[string]bool{}
	for _, fn := range f.Funcs {
		name := fn.Name
		walkFuncStmts(fn, func(s csrc.Stmt) bool {
			for _, n := range clobberedNames(locals, s, name) {
				if !locals[name][n] {
					clobbered[n] = true
				}
			}
			return true
		})
	}
	out := map[string]int64{}
	for _, g := range f.Globals {
		if g.ArrayLen != nil || g.InitList != nil || g.Init == nil || clobbered[g.Name] {
			continue
		}
		if v, ok := foldInt(g.Init); ok {
			out[g.Name] = v
		}
	}
	return out
}

func (w *sigWalker) markInexact(format string, args ...interface{}) {
	w.inexact = append(w.inexact, fmt.Sprintf(format, args...))
}

// isEventCall reports whether a call to name from fn contributes trace
// events (directly or, for user functions, transitively).
func (w *sigWalker) isEventCall(name, fn string) bool {
	if w.locals[fn][name] {
		return false
	}
	if _, ok := sigEventFam[name]; ok {
		return true
	}
	if w.funcHasIO[name] {
		return true
	}
	if sigSilentCalls[name] || strings.HasPrefix(name, "H5Pset_") {
		return false
	}
	return w.isIO(name)
}

func (w *sigWalker) computeFuncHasIO() {
	has := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, fn := range w.f.Funcs {
			if has[fn.Name] {
				continue
			}
			name := fn.Name
			walkFuncStmts(fn, func(s csrc.Stmt) bool {
				for _, c := range stmtCalls(s) {
					if w.locals[name][c] {
						continue
					}
					if _, ev := sigEventFam[c]; ev || has[c] ||
						(!sigSilentCalls[c] && !strings.HasPrefix(c, "H5Pset_") && w.isIO(c)) {
						has[name] = true
					}
				}
				return true
			})
			if has[name] {
				changed = true
			}
		}
	}
	w.funcHasIO = has
}

func (w *sigWalker) treeHasEvents(b *csrc.Block) bool {
	found := false
	if b == nil {
		return false
	}
	walkStmtTree(b, func(s csrc.Stmt) {
		for _, c := range stmtCalls(s) {
			if w.isEventCall(c, w.curFn) {
				found = true
			}
		}
	})
	return found
}

// treeHasStop reports whether the block can abandon the rest of the
// function (return or exit()).
func (w *sigWalker) treeHasStop(b *csrc.Block) bool {
	found := false
	if b == nil {
		return false
	}
	walkStmtTree(b, func(s csrc.Stmt) {
		if _, ok := s.(*csrc.ReturnStmt); ok {
			found = true
		}
		for _, c := range stmtCalls(s) {
			if c == "exit" && !w.locals[w.curFn]["exit"] {
				found = true
			}
		}
	})
	return found
}

func (w *sigWalker) addOp(op string, fam Family) {
	if w.condTaint {
		w.condTaint = false
		w.markInexact("%s at line %d executes after a conditional early return", op, w.curPos)
	}
	w.opFam[op] = fam
	if w.opUnknown[op] {
		return
	}
	if w.mult == nil {
		w.opUnknown[op] = true
		w.ops[op] = nil
		return
	}
	prev := w.ops[op]
	if prev == nil {
		prev = SymConst(0)
	}
	w.ops[op] = SymAdd(prev, w.mult)
}

// walkFunc abstractly executes one function with the given argument
// values and returns its return value.
func (w *sigWalker) walkFunc(fn *csrc.FuncDecl, args []sigVal) sigVal {
	if w.active[fn.Name] || w.depth >= 32 {
		if w.funcHasIO[fn.Name] {
			w.markInexact("recursive or deeply nested call to %s", fn.Name)
		}
		return sigVal{}
	}
	w.active[fn.Name] = true
	w.depth++
	savedFn, savedRet := w.curFn, w.retVal
	w.curFn, w.retVal = fn.Name, sigVal{}
	env := sigEnv{}
	for i, p := range fn.Params {
		if p.Name != "" && i < len(args) {
			env[p.Name] = args[i]
		}
	}
	w.walkStmt(env, fn.Body)
	ret := w.retVal
	w.curFn, w.retVal = savedFn, savedRet
	w.depth--
	delete(w.active, fn.Name)
	return ret
}

// walkStmt abstractly executes s, returning true when control cannot
// continue past it (return, exit, or both branches of an if stopping).
func (w *sigWalker) walkStmt(env sigEnv, s csrc.Stmt) bool {
	if s == nil || w.halted {
		return w.halted
	}
	w.curPos = s.Base().Pos
	switch st := s.(type) {
	case *csrc.Block:
		for _, c := range st.Stmts {
			if w.walkStmt(env, c) {
				return true
			}
		}
	case *csrc.DeclStmt:
		w.walkDecl(env, st)
	case *csrc.ExprStmt:
		w.evalExpr(env, st.X)
	case *csrc.AssignStmt:
		w.walkAssign(env, st)
	case *csrc.IfStmt:
		return w.walkIf(env, st)
	case *csrc.ForStmt:
		w.walkFor(env, st)
	case *csrc.WhileStmt:
		w.walkWhile(env, st)
	case *csrc.ReturnStmt:
		if st.X != nil {
			w.retVal = w.evalExpr(env, st.X)
		}
		return true
	}
	return w.halted
}

func (w *sigWalker) walkDecl(env sigEnv, st *csrc.DeclStmt) {
	if st.ArrayLen != nil || st.InitList != nil {
		n := int64(len(st.InitList))
		if st.ArrayLen != nil {
			if v, ok := foldInt(st.ArrayLen); ok && v >= 0 && v < 1<<16 {
				n = v
			} else {
				delete(env, st.Name)
				return
			}
		}
		arr := make([]*SymExpr, n)
		for i, e := range st.InitList {
			if int64(i) < n {
				arr[i] = w.evalToSym(env, e)
			}
		}
		env[st.Name] = sigVal{kind: sigArr, arr: arr}
		return
	}
	if st.Init != nil {
		env[st.Name] = w.evalExpr(env, st.Init)
		return
	}
	delete(env, st.Name)
}

func (w *sigWalker) walkAssign(env sigEnv, st *csrc.AssignStmt) {
	switch st.Op {
	case "=":
		switch lhs := st.LHS.(type) {
		case *csrc.Ident:
			env[lhs.Name] = w.evalExpr(env, st.RHS)
			return
		case *csrc.IndexExpr:
			if base, ok := lhs.X.(*csrc.Ident); ok {
				if v, have := env[base.Name]; have && v.kind == sigArr {
					if idx := w.evalToSym(env, lhs.Index); idx != nil {
						if k, isC := idx.Const(); isC && k >= 0 && k < int64(len(v.arr)) {
							v.arr[k] = w.evalToSym(env, st.RHS)
							return
						}
					}
				}
			}
		}
	case "++", "--":
		if lhs, ok := st.LHS.(*csrc.Ident); ok {
			if v, have := env[lhs.Name]; have && v.kind == sigInt {
				if st.Op == "++" {
					env[lhs.Name] = intSigVal(SymAdd(v.n, SymConst(1)))
				} else {
					env[lhs.Name] = intSigVal(SymSub(v.n, SymConst(1)))
				}
				return
			}
		}
	default: // compound assignment
		if lhs, ok := st.LHS.(*csrc.Ident); ok {
			if v, have := env[lhs.Name]; have && v.kind == sigInt {
				rhs := w.evalToSym(env, st.RHS)
				var out *SymExpr
				switch strings.TrimSuffix(st.Op, "=") {
				case "+":
					out = SymAdd(v.n, rhs)
				case "-":
					out = SymSub(v.n, rhs)
				case "*":
					out = SymMul(v.n, rhs)
				case "/":
					out = SymDiv(v.n, rhs)
				}
				env[lhs.Name] = intSigVal(out)
				return
			}
		}
	}
	if root := rootIdent(st.LHS); root != "" {
		delete(env, root)
	}
}

func (w *sigWalker) walkIf(env sigEnv, st *csrc.IfStmt) bool {
	if c, ok := foldInt(st.Cond); ok {
		if c != 0 {
			return w.walkStmt(env, st.Then)
		}
		if st.Else != nil {
			return w.walkStmt(env, st.Else)
		}
		return false
	}
	if w.treeHasEvents(st.Then) || w.treeHasEvents(st.Else) {
		w.markInexact("conditional I/O at line %d", st.Base().Pos)
	}
	if w.treeHasStop(st.Then) || w.treeHasStop(st.Else) {
		w.condTaint = true
	}
	envT := cloneSigEnv(env)
	stoppedT := w.walkStmt(envT, st.Then)
	envE := cloneSigEnv(env)
	stoppedE := false
	if st.Else != nil {
		stoppedE = w.walkStmt(envE, st.Else)
	}
	for k := range env {
		delete(env, k)
	}
	for k, v := range envT {
		if other, ok := envE[k]; ok && sameSigVal(v, other) {
			env[k] = v
		}
	}
	return stoppedT && stoppedE
}

func (w *sigWalker) walkFor(env sigEnv, st *csrc.ForStmt) {
	w.walkStmt(env, st.Init)
	var ivar string
	var trip *SymExpr
	if st.Cond != nil && !condAlwaysTrue(st.Cond) {
		ivar, trip = ForTrip(st, func(e csrc.Expr) *SymExpr { return w.evalToSym(env, e) })
	}
	// A continue makes per-iteration effects conditional even though the
	// trip count itself stays well defined.
	if trip != nil && nestedBreakOrContinue(st.Body) {
		trip = nil
	}
	if trip == nil && w.treeHasEvents(st.Body) {
		w.markInexact("I/O inside loop at line %d with unknown trip count", st.Base().Pos)
	}
	defs := sigLoopBodyDefs(w.f, st.Body)
	if st.Post != nil {
		for _, d := range StmtDefUse(st.Post).Defs {
			defs[d.Var] = true
		}
	}
	if ivar != "" {
		defs[ivar] = true
	}
	for v := range defs {
		delete(env, v)
	}
	lsym := ""
	if ivar != "" {
		lsym = fmt.Sprintf("%s#%d", ivar, st.Base().Pos)
		env[ivar] = intSigVal(SymVar(lsym))
	}
	savedMult := w.mult
	w.mult = symMulNil(w.mult, trip)
	w.loops = append(w.loops, sigLoop{line: st.Base().Pos, trip: trip, sym: lsym})
	w.walkStmt(env, st.Body)
	w.loops = w.loops[:len(w.loops)-1]
	w.mult = savedMult
	for v := range defs {
		delete(env, v)
	}
}

func (w *sigWalker) walkWhile(env sigEnv, st *csrc.WhileStmt) {
	if w.treeHasEvents(st.Body) {
		w.markInexact("I/O inside while loop at line %d with unknown trip count", st.Base().Pos)
	}
	defs := sigLoopBodyDefs(w.f, st.Body)
	for v := range defs {
		delete(env, v)
	}
	savedMult := w.mult
	w.mult = nil
	w.loops = append(w.loops, sigLoop{line: st.Base().Pos})
	w.walkStmt(env, st.Body)
	w.loops = w.loops[:len(w.loops)-1]
	w.mult = savedMult
	for v := range defs {
		delete(env, v)
	}
}

func (w *sigWalker) evalToSym(env sigEnv, e csrc.Expr) *SymExpr {
	v := w.evalExpr(env, e)
	if v.kind != sigInt {
		return nil
	}
	return v.n
}

func (w *sigWalker) evalExpr(env sigEnv, e csrc.Expr) sigVal {
	switch x := e.(type) {
	case *csrc.NumberLit:
		if x.IsFloat {
			return sigVal{}
		}
		return intSigVal(SymConst(x.Int))
	case *csrc.CharLit:
		return intSigVal(SymConst(int64(x.Value)))
	case *csrc.StringLit:
		return strSigVal(x.Value)
	case *csrc.Ident:
		if v, ok := env[x.Name]; ok {
			return v
		}
		if w.locals[w.curFn][x.Name] {
			return sigVal{}
		}
		if c, ok := sigIdentConsts[x.Name]; ok {
			return intSigVal(SymConst(c))
		}
		if c, ok := w.globalInt[x.Name]; ok {
			return intSigVal(SymConst(c))
		}
		return sigVal{}
	case *csrc.UnaryExpr:
		switch x.Op {
		case "-":
			return intSigVal(SymSub(SymConst(0), w.evalToSym(env, x.X)))
		case "+":
			return w.evalExpr(env, x.X)
		}
		return sigVal{}
	case *csrc.BinaryExpr:
		l := w.evalToSym(env, x.X)
		r := w.evalToSym(env, x.Y)
		switch x.Op {
		case "+":
			return intSigVal(SymAdd(l, r))
		case "-":
			return intSigVal(SymSub(l, r))
		case "*":
			return intSigVal(SymMul(l, r))
		case "/":
			return intSigVal(SymDiv(l, r))
		case "%":
			if l != nil && r != nil {
				if a, ok := l.Const(); ok {
					if b, ok2 := r.Const(); ok2 && b != 0 {
						return intSigVal(SymConst(a % b))
					}
				}
			}
		}
		return sigVal{}
	case *csrc.IndexExpr:
		if base, ok := x.X.(*csrc.Ident); ok {
			if v, have := env[base.Name]; have && v.kind == sigArr {
				if idx := w.evalToSym(env, x.Index); idx != nil {
					if k, isC := idx.Const(); isC && k >= 0 && k < int64(len(v.arr)) {
						return intSigVal(v.arr[k])
					}
				}
			}
		}
		return sigVal{}
	case *csrc.CastExpr:
		return w.evalExpr(env, x.X)
	case *csrc.SizeofExpr:
		if n, ok := sizeofType(x.Type); ok {
			return intSigVal(SymConst(n))
		}
		return sigVal{}
	case *csrc.CallExpr:
		return w.evalCall(env, x)
	}
	return sigVal{}
}

// argArray resolves a call argument expected to be an array of integers
// (a dims/start/count/chunk buffer). It returns (nil, true) for an
// explicit NULL and (nil, false) for anything unresolvable.
func (w *sigWalker) argArray(env sigEnv, e csrc.Expr) ([]*SymExpr, bool) {
	if u, ok := e.(*csrc.UnaryExpr); ok && u.Op == "&" {
		e = u.X
	}
	v := w.evalExpr(env, e)
	switch v.kind {
	case sigArr:
		return append([]*SymExpr(nil), v.arr...), true
	case sigInt:
		if k, ok := v.n.Const(); ok && k == 0 {
			return nil, true
		}
	}
	return nil, false
}

// clobberCallArgs invalidates caller bindings a call may write through:
// &x arguments and bare identifiers bound to arrays (which decay to
// pointers).
func (w *sigWalker) clobberCallArgs(env sigEnv, c *csrc.CallExpr) {
	for _, a := range c.Args {
		if u, ok := a.(*csrc.UnaryExpr); ok && u.Op == "&" {
			if root := rootIdent(u.X); root != "" {
				delete(env, root)
			}
			continue
		}
		if id, ok := a.(*csrc.Ident); ok {
			if v, have := env[id.Name]; have && v.kind == sigArr {
				delete(env, id.Name)
			}
		}
	}
}

func (w *sigWalker) newObject() *sigObject {
	w.nextID++
	return &sigObject{id: w.nextID}
}

func (w *sigWalker) evalCall(env sigEnv, c *csrc.CallExpr) sigVal {
	if w.locals[w.curFn][c.Fun] {
		w.clobberCallArgs(env, c)
		return sigVal{}
	}
	arg := func(i int) sigVal {
		if i < len(c.Args) {
			return w.evalExpr(env, c.Args[i])
		}
		return sigVal{}
	}
	switch c.Fun {
	case "MPI_Init", "MPI_Finalize", "MPI_Barrier":
		w.addOp(c.Fun, FamMPI)
		return intSigVal(SymConst(0))
	case "MPI_Comm_rank", "MPI_Comm_size":
		sym := "rank"
		if c.Fun == "MPI_Comm_size" {
			sym = "nprocs"
		}
		if len(c.Args) >= 2 {
			if u, ok := c.Args[1].(*csrc.UnaryExpr); ok && u.Op == "&" {
				if id, ok := u.X.(*csrc.Ident); ok {
					env[id.Name] = intSigVal(SymVar(sym))
					return intSigVal(SymConst(0))
				}
			}
		}
		w.clobberCallArgs(env, c)
		return intSigVal(SymConst(0))
	case "compute_flops":
		w.addOp(c.Fun, FamSim)
		return intSigVal(SymConst(0))
	case "H5Screate_simple":
		ndims := w.evalToSym(env, argOrNil(c, 0))
		dims, ok := w.argArray(env, argOrNil(c, 1))
		sp := &sigSpace{}
		if n, isC := constOf(ndims); ok && isC && n >= 0 && n <= int64(len(dims)) {
			sp.dims = dims[:n]
		} else {
			sp.bad = true
		}
		return sigVal{kind: sigSpaceK, sp: sp}
	case "H5Sselect_hyperslab":
		spv := arg(0)
		if spv.kind != sigSpaceK {
			return sigVal{}
		}
		sp := spv.sp
		if stride, ok := w.argArray(env, argOrNil(c, 3)); !ok || stride != nil {
			w.markInexact("strided or unresolved hyperslab selection at line %d", w.curPos)
			sp.bad = true
			return intSigVal(SymConst(0))
		}
		start, okS := w.argArray(env, argOrNil(c, 2))
		count, okC := w.argArray(env, argOrNil(c, 4))
		if !okS || !okC || count == nil {
			sp.bad = true
			return intSigVal(SymConst(0))
		}
		if len(start) > len(sp.dims) {
			start = start[:len(sp.dims)]
		}
		if len(count) > len(sp.dims) {
			count = count[:len(sp.dims)]
		}
		sp.selStart, sp.selCount = start, count
		return intSigVal(SymConst(0))
	case "H5Pcreate":
		return sigVal{kind: sigPlistK, pl: &sigPlist{}}
	case "H5Pset_chunk":
		plv := arg(0)
		if plv.kind == sigPlistK {
			if chunk, ok := w.argArray(env, argOrNil(c, 2)); ok {
				plv.pl.chunk = chunk
			}
		}
		return intSigVal(SymConst(0))
	case "H5Fcreate", "H5Fopen", "fopen":
		fam := FamHDF5
		if c.Fun == "fopen" {
			fam = FamPOSIX
		}
		arg(0) // path, for effect
		w.addOp(c.Fun, fam)
		return sigVal{kind: sigObjectK, obj: w.newObject()}
	case "H5Fclose":
		w.addOp(c.Fun, FamHDF5)
		return intSigVal(SymConst(0))
	case "fclose":
		w.addOp(c.Fun, FamPOSIX)
		return intSigVal(SymConst(0))
	case "H5Gcreate":
		w.addOp(c.Fun, FamHDF5)
		return arg(0) // the interpreter aliases groups to the file handle
	case "H5Acreate":
		w.addOp(c.Fun, FamHDF5)
		return intSigVal(SymConst(0))
	case "H5Dcreate", "H5Dopen":
		arg(1) // dataset name, for effect
		w.addOp(c.Fun, FamHDF5)
		return sigVal{kind: sigObjectK, obj: w.newObject()}
	case "H5Dwrite", "H5Dread":
		w.addOp(c.Fun, FamHDF5)
		w.recordHDF5Transfer(env, c, c.Fun == "H5Dwrite")
		return intSigVal(SymConst(0))
	case "fwrite", "fread":
		w.addOp(c.Fun, FamPOSIX)
		w.recordPosixTransfer(env, c, c.Fun == "fwrite")
		return intSigVal(SymConst(0))
	case "dsname":
		if n := w.evalToSym(env, argOrNil(c, 0)); n != nil {
			if k, ok := n.Const(); ok {
				return strSigVal(fmt.Sprintf("ds%05d", k))
			}
		}
		return sigVal{}
	case "sprintf", "snprintf", "strcpy", "strncpy", "strcat":
		w.modelStringWrite(env, c)
		return intSigVal(SymConst(0))
	case "exit":
		w.halted = true
		return sigVal{}
	case "printf", "malloc", "calloc", "free", "sqrt", "__loop_reduce":
		return sigVal{}
	case "H5Dclose", "H5Sclose", "H5Gclose", "H5Aclose", "H5Pclose", "H5Awrite":
		return intSigVal(SymConst(0))
	}
	if strings.HasPrefix(c.Fun, "H5Pset_") {
		return intSigVal(SymConst(0))
	}
	if fn := w.f.Func(c.Fun); fn != nil {
		args := make([]sigVal, len(c.Args))
		for i := range c.Args {
			args[i] = w.evalExpr(env, c.Args[i])
		}
		ret := w.walkFunc(fn, args)
		w.clobberCallArgs(env, c)
		return ret
	}
	w.clobberCallArgs(env, c)
	if w.isIO(c.Fun) {
		fam := FamPOSIX
		switch {
		case strings.HasPrefix(c.Fun, "H5"):
			fam = FamHDF5
		case strings.HasPrefix(c.Fun, "MPI_File"):
			fam = FamMPIIO
		case strings.HasPrefix(c.Fun, "MPI_"):
			fam = FamMPI
		}
		w.addOp(c.Fun, fam)
		w.markInexact("unmodeled I/O call %s at line %d", c.Fun, w.curPos)
	}
	return sigVal{}
}

func argOrNil(c *csrc.CallExpr, i int) csrc.Expr {
	if i < len(c.Args) {
		return c.Args[i]
	}
	return nil
}

func constOf(e *SymExpr) (int64, bool) {
	if e == nil {
		return 0, false
	}
	return e.Const()
}

func (w *sigWalker) modelStringWrite(env sigEnv, c *csrc.CallExpr) {
	dst := ""
	if len(c.Args) > 0 {
		dst = rootIdent(c.Args[0])
	}
	if dst == "" {
		return
	}
	toConst := func(e csrc.Expr) (constVal, bool) {
		v := w.evalExpr(env, e)
		switch v.kind {
		case sigStr:
			return strConst(v.s), true
		case sigInt:
			if k, ok := v.n.Const(); ok {
				return intConst(k), true
			}
		}
		return constVal{}, false
	}
	var out string
	ok := false
	switch c.Fun {
	case "sprintf", "snprintf":
		fmtIdx := 1
		if c.Fun == "snprintf" {
			fmtIdx = 2
		}
		if f, fOK := toConst(argOrNil(c, fmtIdx)); fOK && f.kind == constStr {
			var args []constVal
			good := true
			for i := fmtIdx + 1; i < len(c.Args); i++ {
				v, vOK := toConst(c.Args[i])
				if !vOK {
					good = false
					break
				}
				args = append(args, v)
			}
			if good {
				out, ok = expandFormat(f.s, args)
			}
		}
	case "strcpy":
		if v, vOK := toConst(argOrNil(c, 1)); vOK && v.kind == constStr {
			out, ok = v.s, true
		}
	case "strcat":
		if cur, have := env[dst]; have && cur.kind == sigStr {
			if v, vOK := toConst(argOrNil(c, 1)); vOK && v.kind == constStr {
				out, ok = cur.s+v.s, true
			}
		}
	}
	if ok {
		env[dst] = strSigVal(out)
	} else {
		delete(env, dst)
	}
}

// loopCtx returns the innermost-loop context of the current point.
func (w *sigWalker) loopCtx() (line int, trip *SymExpr) {
	if len(w.loops) == 0 {
		return 0, nil
	}
	l := w.loops[len(w.loops)-1]
	return l.line, l.trip
}

// dependsOnLoop reports whether e mentions any active loop induction
// symbol.
func (w *sigWalker) dependsOnLoop(e *SymExpr) bool {
	if e == nil {
		return false
	}
	for _, l := range w.loops {
		if l.sym != "" && e.HasVar(l.sym) {
			return true
		}
	}
	return false
}

func (w *sigWalker) recordHDF5Transfer(env sigEnv, c *csrc.CallExpr, write bool) {
	site := TransferSite{
		Op: c.Fun, Family: FamHDF5, Write: write, Line: w.curPos,
		Count: w.mult, dsObj: -1,
	}
	site.loopLine, site.loopTrip = w.loopCtx()
	if dsv := w.evalExpr(env, argOrNil(c, 0)); dsv.kind == sigObjectK {
		site.dsObj = dsv.obj.id
	}
	spv := sigVal{}
	if len(c.Args) >= 4 {
		spv = w.evalExpr(env, c.Args[3])
	}
	if spv.kind != sigSpaceK || spv.sp.bad {
		w.markInexact("%s at line %d uses an unresolved dataspace", c.Fun, w.curPos)
		w.finishTransfer(site)
		return
	}
	sp := spv.sp
	extent := sp.selCount
	if extent == nil {
		extent = sp.dims
	}
	rankBytes := SymConst(8)
	for _, d := range extent {
		rankBytes = symMulNil(rankBytes, d)
	}
	if rankBytes == nil {
		w.markInexact("%s at line %d transfers an unresolved extent", c.Fun, w.curPos)
		w.finishTransfer(site)
		return
	}
	if w.dependsOnLoop(rankBytes) {
		w.markInexact("%s at line %d transfer size depends on a loop variable", c.Fun, w.curPos)
		site.loopDep = true
		w.finishTransfer(site)
		return
	}
	site.RankBytes = rankBytes
	site.Bytes = SymMul(rankBytes, SymVar("nprocs"))
	site.Pattern = classifyPattern(sp)
	site.extentKey = renderExtent(sp.selStart, extent)
	for _, d := range sp.selStart {
		if w.dependsOnLoop(d) {
			site.loopDep = true
		}
	}
	w.finishTransfer(site)
}

func (w *sigWalker) recordPosixTransfer(env sigEnv, c *csrc.CallExpr, write bool) {
	site := TransferSite{
		Op: c.Fun, Family: FamPOSIX, Write: write, Line: w.curPos,
		Count: w.mult, Pattern: PatContiguous, dsObj: -1,
	}
	site.loopLine, site.loopTrip = w.loopCtx()
	size := w.evalToSym(env, argOrNil(c, 1))
	nmemb := w.evalToSym(env, argOrNil(c, 2))
	bytes := symMulNil(size, nmemb)
	if bytes == nil {
		w.markInexact("%s at line %d transfers an unresolved byte count", c.Fun, w.curPos)
	} else if w.dependsOnLoop(bytes) {
		w.markInexact("%s at line %d transfer size depends on a loop variable", c.Fun, w.curPos)
		site.loopDep = true
		bytes = nil
	}
	site.RankBytes = bytes
	site.Bytes = bytes // stream I/O is per process, not collective
	w.finishTransfer(site)
}

func (w *sigWalker) finishTransfer(site TransferSite) {
	if site.Count == nil || site.Bytes == nil {
		if site.Count == nil {
			w.markInexact("%s at line %d executes an unknown number of times", site.Op, site.Line)
		}
	}
	w.transfers = append(w.transfers, site)
}

func renderExtent(start, count []*SymExpr) string {
	var b strings.Builder
	for i, e := range start {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(symStr(e))
	}
	b.WriteByte('|')
	for i, e := range count {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(symStr(e))
	}
	return b.String()
}

// classifyPattern labels a hyperslab selection. A selection is
// contiguous when it covers a row-major prefix-degenerate slab (some
// leading dims of extent 1 — or a single partial dim — followed by full
// dims); otherwise the outermost partial dimension decides: a start
// offset scaled by the rank symbol means each rank owns interleaved
// blocks (block-cyclic), anything else is strided.
func classifyPattern(sp *sigSpace) string {
	dims := sp.dims
	if len(dims) == 0 {
		return PatUnknown
	}
	for _, d := range dims {
		if d == nil {
			return PatUnknown
		}
	}
	cnt := sp.selCount
	if cnt == nil {
		return PatContiguous // whole-space transfer
	}
	if len(cnt) != len(dims) {
		return PatUnknown
	}
	for _, d := range cnt {
		if d == nil {
			return PatUnknown
		}
	}
	for k := range cnt {
		ok := true
		for j := 0; j < k; j++ {
			if cnt[j].String() != "1" {
				ok = false
				break
			}
		}
		for i := k + 1; ok && i < len(cnt); i++ {
			if cnt[i].String() != dims[i].String() {
				ok = false
			}
		}
		if ok {
			return PatContiguous
		}
	}
	split := -1
	for i := range cnt {
		if cnt[i].String() != dims[i].String() {
			split = i
		}
	}
	if split < 0 {
		return PatContiguous
	}
	if split < len(sp.selStart) && sp.selStart[split] != nil && sp.selStart[split].HasVar("rank") {
		return PatBlockCyclic
	}
	return PatStrided
}

func (w *sigWalker) assemble() *IOSignature {
	sig := &IOSignature{Transfers: w.transfers}
	names := make([]string, 0, len(w.ops))
	for n := range w.ops {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sig.Ops = append(sig.Ops, OpCount{Op: n, Family: w.opFam[n], Count: w.ops[n]})
	}
	bw, br := SymConst(0), SymConst(0)
	for _, t := range w.transfers {
		tot := symMulNil(t.Count, t.Bytes)
		if t.Write {
			bw = symMulNilSum(bw, tot)
		} else {
			br = symMulNilSum(br, tot)
		}
	}
	sig.BytesWritten, sig.BytesRead = bw, br
	pat := ""
	for _, t := range w.transfers {
		p := t.Pattern
		if p == "" {
			p = PatUnknown
		}
		switch {
		case pat == "":
			pat = p
		case pat != p:
			pat = PatMixed
		}
	}
	if pat == "" {
		pat = PatNone
	}
	sig.Pattern = pat
	sig.Exact = len(w.inexact) == 0
	if !sig.Exact {
		sig.Reason = w.inexact[0]
	}
	return sig
}

// symMulNilSum adds b into a with nil poisoning both ways.
func symMulNilSum(a, b *SymExpr) *SymExpr {
	if a == nil || b == nil {
		return nil
	}
	return SymAdd(a, b)
}

// canonical renders the signature deterministically for hashing.
func (s *IOSignature) canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "exact=%v;pattern=%s;", s.Exact, s.Pattern)
	for _, o := range s.Ops {
		fmt.Fprintf(&b, "op:%s:%s=%s;", o.Family, o.Op, symStr(o.Count))
	}
	for _, t := range s.Transfers {
		fmt.Fprintf(&b, "xfer:%s:%d:w=%v:n=%s:b=%s:p=%s;",
			t.Op, t.Line, t.Write, symStr(t.Count), symStr(t.Bytes), t.Pattern)
	}
	fmt.Fprintf(&b, "written=%s;read=%s", symStr(s.BytesWritten), symStr(s.BytesRead))
	if !s.Exact {
		b.WriteString(";reason=" + s.Reason)
	}
	return b.String()
}

// Hash returns a short content hash of the signature, the kernel
// component of signature-keyed caches.
func (s *IOSignature) Hash() string {
	sum := sha256.Sum256([]byte(s.canonical()))
	return hex.EncodeToString(sum[:])[:16]
}

// Format renders the signature for humans.
func (s *IOSignature) Format() string {
	var b strings.Builder
	if s.Exact {
		b.WriteString("signature: exact\n")
	} else {
		fmt.Fprintf(&b, "signature: inexact (%s)\n", s.Reason)
	}
	fmt.Fprintf(&b, "pattern: %s\n", s.Pattern)
	if len(s.Ops) > 0 {
		b.WriteString("ops:\n")
		for _, o := range s.Ops {
			fmt.Fprintf(&b, "  %-6s %-16s x %s\n", o.Family, o.Op, symStr(o.Count))
		}
	}
	if len(s.Transfers) > 0 {
		b.WriteString("transfers:\n")
		for _, t := range s.Transfers {
			dir := "read"
			if t.Write {
				dir = "write"
			}
			fmt.Fprintf(&b, "  line %-4d %-9s %-5s x %s, %s bytes/op [%s]\n",
				t.Line, t.Op, dir, symStr(t.Count), symStr(t.Bytes), t.Pattern)
		}
	}
	fmt.Fprintf(&b, "bytes written: %s\n", symStr(s.BytesWritten))
	fmt.Fprintf(&b, "bytes read: %s\n", symStr(s.BytesRead))
	fmt.Fprintf(&b, "hash: %s\n", s.Hash())
	return b.String()
}

type sigOpJSON struct {
	Op     string `json:"op"`
	Family string `json:"family"`
	Count  string `json:"count"`
}

type sigTransferJSON struct {
	Op      string `json:"op"`
	Family  string `json:"family"`
	Write   bool   `json:"write"`
	Line    int    `json:"line"`
	Count   string `json:"count"`
	Bytes   string `json:"bytes"`
	Pattern string `json:"pattern"`
}

type sigJSON struct {
	Exact        bool              `json:"exact"`
	Reason       string            `json:"reason,omitempty"`
	Pattern      string            `json:"pattern"`
	Ops          []sigOpJSON       `json:"ops"`
	Transfers    []sigTransferJSON `json:"transfers"`
	BytesWritten string            `json:"bytes_written"`
	BytesRead    string            `json:"bytes_read"`
	Hash         string            `json:"hash"`
}

// MarshalJSON renders the signature with symbolic expressions as
// canonical strings ("?" when unknown).
func (s *IOSignature) MarshalJSON() ([]byte, error) {
	out := sigJSON{
		Exact:        s.Exact,
		Reason:       s.Reason,
		Pattern:      s.Pattern,
		Ops:          []sigOpJSON{},
		Transfers:    []sigTransferJSON{},
		BytesWritten: symStr(s.BytesWritten),
		BytesRead:    symStr(s.BytesRead),
		Hash:         s.Hash(),
	}
	for _, o := range s.Ops {
		out.Ops = append(out.Ops, sigOpJSON{Op: o.Op, Family: string(o.Family), Count: symStr(o.Count)})
	}
	for _, t := range s.Transfers {
		out.Transfers = append(out.Transfers, sigTransferJSON{
			Op: t.Op, Family: string(t.Family), Write: t.Write, Line: t.Line,
			Count: symStr(t.Count), Bytes: symStr(t.Bytes), Pattern: t.Pattern,
		})
	}
	return json.Marshal(out)
}

// Concrete evaluates an exact signature at a parameter binding
// (typically {"nprocs": N}; "rank" never appears in counts or byte
// totals). It fails on inexact signatures and unbound symbols.
func (s *IOSignature) Concrete(bind map[string]int64) (*ConcreteSignature, error) {
	if !s.Exact {
		return nil, fmt.Errorf("signature is inexact: %s", s.Reason)
	}
	cs := &ConcreteSignature{Ops: map[string]int64{}}
	for _, o := range s.Ops {
		if o.Count == nil {
			return nil, fmt.Errorf("op %s has no count", o.Op)
		}
		v, err := o.Count.Eval(bind)
		if err != nil {
			return nil, fmt.Errorf("op %s: %v", o.Op, err)
		}
		cs.Ops[o.Op] = v
	}
	for _, t := range s.Transfers {
		if t.Count == nil || t.Bytes == nil {
			return nil, fmt.Errorf("transfer at line %d is unbounded", t.Line)
		}
		n, err := t.Count.Eval(bind)
		if err != nil {
			return nil, fmt.Errorf("transfer at line %d: %v", t.Line, err)
		}
		by, err := t.Bytes.Eval(bind)
		if err != nil {
			return nil, fmt.Errorf("transfer at line %d: %v", t.Line, err)
		}
		if n == 0 {
			continue
		}
		cs.Transfers = append(cs.Transfers, ConcreteTransfer{Op: t.Op, Write: t.Write, Count: n, Bytes: by})
	}
	var err error
	if s.BytesWritten != nil {
		if cs.BytesWritten, err = s.BytesWritten.Eval(bind); err != nil {
			return nil, err
		}
	}
	if s.BytesRead != nil {
		if cs.BytesRead, err = s.BytesRead.Eval(bind); err != nil {
			return nil, err
		}
	}
	return cs, nil
}

// VolumeDiagnostics compares two signatures of the same kernel (before
// and after a source transform) and reports TR008 when the symbolic I/O
// volume provably changed. Inexact signatures on either side yield no
// finding — absence of proof is not proof of change.
func VolumeDiagnostics(before, after *IOSignature) []Diagnostic {
	if before == nil || after == nil || !before.Exact || !after.Exact {
		return nil
	}
	var diags []Diagnostic
	report := func(what string, b, a *SymExpr) {
		if symStr(b) != symStr(a) {
			diags = append(diags, Diagnostic{
				Code: CodeVolumeChanged, Severity: SevWarning, Line: 1,
				Message: fmt.Sprintf("transform changed the kernel's symbolic %s volume from %s to %s bytes",
					what, symStr(b), symStr(a)),
			})
		}
	}
	report("write", before.BytesWritten, after.BytesWritten)
	report("read", before.BytesRead, after.BytesRead)
	return diags
}

// sigArgWrite maps modeled calls to the single bare-identifier argument
// position they may write through (-1: none). The generic def/use
// analysis must conjecture that any bare identifier passed to an unknown
// function is written (the C subset has no types), but the walker models
// these calls precisely, so loop-invariant handles and dims arrays passed
// to them survive the pre-loop clobber. H5Sselect_hyperslab does mutate
// its space argument, but the mutation is re-modeled on the walked body,
// so for clobber purposes the space binding itself is stable.
var sigArgWrite = map[string]int{
	"H5Fcreate": -1, "H5Fopen": -1, "H5Fclose": -1,
	"H5Gcreate": -1, "H5Gclose": -1,
	"H5Acreate": -1, "H5Aclose": -1, "H5Awrite": -1,
	"H5Dcreate": -1, "H5Dopen": -1, "H5Dclose": -1,
	"H5Screate_simple": -1, "H5Sselect_hyperslab": -1, "H5Sclose": -1,
	"H5Pcreate": -1, "H5Pclose": -1,
	"H5Dwrite": -1, "H5Dread": 5,
	"fopen": -1, "fclose": -1, "fwrite": -1, "fread": 0,
	"MPI_Init": -1, "MPI_Finalize": -1, "MPI_Barrier": -1,
	"MPI_Comm_rank": -1, "MPI_Comm_size": -1,
}

// sigLoopBodyDefs is the signature walker's variant of loopBodyDefs:
// assignment and &x defs are kept verbatim, but conjectured writes
// through bare call arguments are dropped when the callee is a modeled
// library call whose argument at that position is read-only. Calls the
// file itself defines (or shadows) keep the conservative conjecture.
func sigLoopBodyDefs(f *csrc.File, body *csrc.Block) map[string]bool {
	defs := map[string]bool{}
	if body == nil {
		return defs
	}
	for _, s := range body.Stmts {
		walkStmtTree(s, func(st csrc.Stmt) {
			for _, d := range StmtDefUse(st).Defs {
				if !d.Arg {
					defs[d.Var] = true
				}
			}
			for _, x := range stmtExprs(st) {
				csrc.WalkExpr(x, func(node csrc.Expr) bool {
					c, ok := node.(*csrc.CallExpr)
					if !ok {
						return true
					}
					if knownBuiltins[c.Fun] {
						return true
					}
					wIdx, modeled := sigArgWrite[c.Fun]
					if !modeled && strings.HasPrefix(c.Fun, "H5Pset_") {
						wIdx, modeled = -1, true
					}
					if modeled && f.Func(c.Fun) != nil {
						modeled = false // user definition shadows the model
					}
					for i, a := range c.Args {
						id, ok := a.(*csrc.Ident)
						if !ok {
							continue
						}
						if modeled && i != wIdx {
							continue
						}
						defs[id.Name] = true
					}
					return true
				})
			}
		})
	}
	return defs
}
