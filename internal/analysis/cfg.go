package analysis

import "tunio/internal/csrc"

// BasicBlock is a maximal straight-line statement sequence. Control
// headers (If/For/While) appear as the final statement of the block that
// evaluates their condition; their use sets are the condition's variables.
type BasicBlock struct {
	ID    int
	Stmts []csrc.Stmt
	Succs []*BasicBlock
	Preds []*BasicBlock
}

// LoopInfo records one loop's blocks for lint queries.
type LoopInfo struct {
	// Stmt is the ForStmt or WhileStmt header.
	Stmt csrc.Stmt
	// Header evaluates the loop condition.
	Header *BasicBlock
	// After is the block control reaches when the loop exits normally; it
	// has no predecessors when the loop can never exit (no false edge and
	// no break).
	After *BasicBlock
}

// CFG is one function's control-flow graph.
type CFG struct {
	Fn     *csrc.FuncDecl
	Entry  *BasicBlock
	Exit   *BasicBlock
	Blocks []*BasicBlock
	Loops  []LoopInfo

	reach map[int]bool        // block ID -> reachable from entry
	idom  map[int]*BasicBlock // block ID -> immediate dominator
	// stmtBlock maps statement ID -> containing block.
	stmtBlock map[int]*BasicBlock
}

// Reachable reports whether the block can execute (is reachable from the
// function entry).
func (c *CFG) Reachable(b *BasicBlock) bool { return c.reach[b.ID] }

// BlockOf returns the basic block holding the statement, or nil.
func (c *CFG) BlockOf(s csrc.Stmt) *BasicBlock { return c.stmtBlock[s.Base().ID] }

// IDom returns the immediate dominator of b (nil for the entry block and
// unreachable blocks).
func (c *CFG) IDom(b *BasicBlock) *BasicBlock { return c.idom[b.ID] }

// Dominates reports whether a dominates b (reflexively).
func (c *CFG) Dominates(a, b *BasicBlock) bool {
	for n := b; n != nil; n = c.idom[n.ID] {
		if n == a {
			return true
		}
	}
	return false
}

type loopCtx struct {
	breakTo    *BasicBlock
	continueTo *BasicBlock
}

type cfgBuilder struct {
	cfg    *CFG
	nextID int
}

func (b *cfgBuilder) newBlock() *BasicBlock {
	blk := &BasicBlock{ID: b.nextID}
	b.nextID++
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func edge(from, to *BasicBlock) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) put(blk *BasicBlock, s csrc.Stmt) {
	blk.Stmts = append(blk.Stmts, s)
	b.cfg.stmtBlock[s.Base().ID] = blk
}

// condAlwaysTrue reports whether a loop condition can never be false (nil
// condition or a non-zero literal).
func condAlwaysTrue(e csrc.Expr) bool {
	if e == nil {
		return true
	}
	if n, ok := e.(*csrc.NumberLit); ok {
		if n.IsFloat {
			return n.Float != 0
		}
		return n.Int != 0
	}
	return false
}

// BuildCFG constructs the control-flow graph of one function and computes
// reachability and dominators.
func BuildCFG(fn *csrc.FuncDecl) *CFG {
	c := &CFG{Fn: fn, stmtBlock: map[int]*BasicBlock{}}
	b := &cfgBuilder{cfg: c}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	cur := b.stmts(fn.Body, c.Entry, nil)
	edge(cur, c.Exit) // falling off the end returns
	c.computeReachability()
	c.computeDominators()
	return c
}

// stmts lowers a block's statements starting in cur, returning the block
// control is in afterwards.
func (b *cfgBuilder) stmts(body *csrc.Block, cur *BasicBlock, loops []loopCtx) *BasicBlock {
	if body == nil {
		return cur
	}
	for _, s := range body.Stmts {
		cur = b.stmt(s, cur, loops)
	}
	return cur
}

func (b *cfgBuilder) stmt(s csrc.Stmt, cur *BasicBlock, loops []loopCtx) *BasicBlock {
	switch st := s.(type) {
	case *csrc.Block:
		return b.stmts(st, cur, loops)

	case *csrc.IfStmt:
		b.put(cur, st) // condition evaluation
		thenEntry := b.newBlock()
		edge(cur, thenEntry)
		thenExit := b.stmts(st.Then, thenEntry, loops)
		join := b.newBlock()
		edge(thenExit, join)
		if st.Else != nil {
			elseEntry := b.newBlock()
			edge(cur, elseEntry)
			elseExit := b.stmts(st.Else, elseEntry, loops)
			edge(elseExit, join)
		} else {
			edge(cur, join)
		}
		return join

	case *csrc.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init, cur, loops)
		}
		header := b.newBlock()
		edge(cur, header)
		b.put(header, st) // condition evaluation
		after := b.newBlock()
		if !condAlwaysTrue(st.Cond) {
			edge(header, after)
		}
		bodyEntry := b.newBlock()
		edge(header, bodyEntry)
		continueTo := header
		var post *BasicBlock
		if st.Post != nil {
			post = b.newBlock()
			b.stmt(st.Post, post, nil)
			edge(post, header)
			continueTo = post
		}
		bodyExit := b.stmts(st.Body, bodyEntry, append(loops, loopCtx{breakTo: after, continueTo: continueTo}))
		edge(bodyExit, continueTo)
		b.cfg.Loops = append(b.cfg.Loops, LoopInfo{Stmt: st, Header: header, After: after})
		return after

	case *csrc.WhileStmt:
		header := b.newBlock()
		edge(cur, header)
		b.put(header, st)
		after := b.newBlock()
		if !condAlwaysTrue(st.Cond) {
			edge(header, after)
		}
		bodyEntry := b.newBlock()
		edge(header, bodyEntry)
		bodyExit := b.stmts(st.Body, bodyEntry, append(loops, loopCtx{breakTo: after, continueTo: header}))
		edge(bodyExit, header)
		b.cfg.Loops = append(b.cfg.Loops, LoopInfo{Stmt: st, Header: header, After: after})
		return after

	case *csrc.ReturnStmt:
		b.put(cur, st)
		edge(cur, b.cfg.Exit)
		return b.newBlock() // statements after a return are unreachable

	case *csrc.BreakStmt:
		b.put(cur, st)
		if len(loops) > 0 {
			edge(cur, loops[len(loops)-1].breakTo)
		}
		return b.newBlock()

	case *csrc.ContinueStmt:
		b.put(cur, st)
		if len(loops) > 0 {
			edge(cur, loops[len(loops)-1].continueTo)
		}
		return b.newBlock()

	default: // DeclStmt, AssignStmt, ExprStmt
		b.put(cur, s)
		return cur
	}
}

func (c *CFG) computeReachability() {
	c.reach = map[int]bool{}
	stack := []*BasicBlock{c.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if c.reach[b.ID] {
			continue
		}
		c.reach[b.ID] = true
		stack = append(stack, b.Succs...)
	}
}

// reversePostorder returns reachable blocks in reverse postorder.
func (c *CFG) reversePostorder() []*BasicBlock {
	seen := map[int]bool{}
	var post []*BasicBlock
	var dfs func(b *BasicBlock)
	dfs = func(b *BasicBlock) {
		if seen[b.ID] {
			return
		}
		seen[b.ID] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(c.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// computeDominators runs the iterative dominator algorithm (Cooper,
// Harvey, Kennedy) over reachable blocks.
func (c *CFG) computeDominators() {
	rpo := c.reversePostorder()
	index := map[int]int{} // block ID -> RPO index
	for i, b := range rpo {
		index[b.ID] = i
	}
	c.idom = map[int]*BasicBlock{}
	c.idom[c.Entry.ID] = nil
	doms := make([]*BasicBlock, len(rpo)) // RPO index -> idom
	doms[0] = c.Entry

	intersect := func(a, b *BasicBlock) *BasicBlock {
		fa, fb := index[a.ID], index[b.ID]
		for fa != fb {
			for fa > fb {
				a = doms[fa]
				fa = index[a.ID]
			}
			for fb > fa {
				b = doms[fb]
				fb = index[b.ID]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for i := 1; i < len(rpo); i++ {
			b := rpo[i]
			var newIdom *BasicBlock
			for _, p := range b.Preds {
				pi, ok := index[p.ID]
				if !ok { // unreachable predecessor
					continue
				}
				if doms[pi] == nil && p != c.Entry {
					continue // not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && doms[i] != newIdom {
				doms[i] = newIdom
				changed = true
			}
		}
	}
	for i := 1; i < len(rpo); i++ {
		c.idom[rpo[i].ID] = doms[i]
	}
}
