package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

// runLint lints a source string with the default I/O classifier.
func runLint(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return Lint(mustParse(t, src), LintOptions{})
}

// findCode returns diagnostics with the given code.
func findCode(diags []Diagnostic, code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func TestLintUnreachableIO(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantLine int
	}{
		{
			name: "after return",
			src: `int main() {
    return 0;
    fclose(0);
}`,
			wantLine: 3,
		},
		{
			name: "after break",
			src: `int main() {
    while (1) {
        break;
        fwrite(0, 1, 1, 0);
    }
    return 0;
}`,
			wantLine: 4,
		},
		{
			name: "after infinite loop",
			src: `int main() {
    while (1) {
        compute_flops(1.0);
    }
    fclose(0);
    return 0;
}`,
			wantLine: 5,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := findCode(runLint(t, tc.src), CodeUnreachableIO)
			if len(got) != 1 {
				t.Fatalf("want 1 IO001, got %d: %v", len(got), got)
			}
			if got[0].Line != tc.wantLine {
				t.Errorf("IO001 at line %d, want %d", got[0].Line, tc.wantLine)
			}
			if got[0].Severity != SevError {
				t.Errorf("IO001 severity = %v, want error", got[0].Severity)
			}
		})
	}
}

func TestLintReachableIONotFlagged(t *testing.T) {
	src := `int main() {
    hid_t f = H5Fcreate("out.h5", 0, 0, 0);
    H5Fclose(f);
    return 0;
}`
	if got := findCode(runLint(t, src), CodeUnreachableIO); len(got) != 0 {
		t.Errorf("reachable I/O flagged: %v", got)
	}
}

func TestLintWriteAfterWrite(t *testing.T) {
	src := `int main() {
    hid_t d = H5Dcreate(0, "ds", 0, 0, 0);
    double buf[8];
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dclose(d);
    return 0;
}`
	got := findCode(runLint(t, src), CodeWriteAfterWrite)
	if len(got) != 1 || got[0].Line != 4 {
		t.Fatalf("want one IO002 at line 4, got %v", got)
	}
}

func TestLintWriteAfterWriteBlockedByRead(t *testing.T) {
	src := `int main() {
    hid_t d = H5Dcreate(0, "ds", 0, 0, 0);
    double buf[8];
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dread(d, 0, 0, 0, 0, buf);
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dclose(d);
    return 0;
}`
	if got := findCode(runLint(t, src), CodeWriteAfterWrite); len(got) != 0 {
		t.Errorf("read-separated writes flagged: %v", got)
	}
}

func TestLintWriteAfterWriteThroughAlias(t *testing.T) {
	src := `int main() {
    hid_t d = H5Dcreate(0, "ds", 0, 0, 0);
    hid_t alias = d;
    double buf[8];
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dwrite(alias, 0, 0, 0, 0, buf);
    H5Dclose(d);
    return 0;
}`
	got := findCode(runLint(t, src), CodeWriteAfterWrite)
	if len(got) != 1 || got[0].Line != 5 {
		t.Fatalf("want one IO002 at line 5 through alias, got %v", got)
	}
}

func TestLintUnboundedIOLoop(t *testing.T) {
	src := `int main() {
    double buf[8];
    while (1) {
        fwrite(buf, 8, 1, 0);
    }
    return 0;
}`
	got := findCode(runLint(t, src), CodeUnboundedIOLoop)
	if len(got) != 1 || got[0].Line != 3 {
		t.Fatalf("want one IO003 at line 3, got %v", got)
	}
}

func TestLintUnboundedLoopWithBreakNotFlagged(t *testing.T) {
	src := `int main() {
    double buf[8];
    int n = 0;
    while (1) {
        fwrite(buf, 8, 1, 0);
        n = n + 1;
        if (n > 3) {
            break;
        }
    }
    return 0;
}`
	if got := findCode(runLint(t, src), CodeUnboundedIOLoop); len(got) != 0 {
		t.Errorf("breakable while(1) flagged: %v", got)
	}
}

func TestLintUnusedVariable(t *testing.T) {
	src := `int dead_global;

int main() {
    int unused = 7;
    int used = 1;
    return used;
}`
	got := findCode(runLint(t, src), CodeUnusedVariable)
	if len(got) != 2 {
		t.Fatalf("want 2 IO004 (global + local), got %v", got)
	}
	if got[0].Line != 1 || got[0].Func != "" {
		t.Errorf("global finding = %+v, want line 1 at global scope", got[0])
	}
	if got[1].Line != 4 || got[1].Func != "main" {
		t.Errorf("local finding = %+v, want line 4 in main", got[1])
	}
}

func TestLintOutArgCountsAsUse(t *testing.T) {
	src := `int main() {
    int rank;
    MPI_Comm_rank(0, &rank);
    return 0;
}`
	if got := findCode(runLint(t, src), CodeUnusedVariable); len(got) != 0 {
		t.Errorf("out-arg variable flagged unused: %v", got)
	}
}

func TestLintShadowedIOName(t *testing.T) {
	src := `void takes_ptr(int fwrite) {
    fwrite(1);
}

int main() {
    int fread = 0;
    takes_ptr(fread);
    return 0;
}`
	got := findCode(runLint(t, src), CodeShadowedIOName)
	if len(got) != 2 {
		t.Fatalf("want 2 IO005 (param + local), got %v", got)
	}
}

func TestLintUnclosedHandle(t *testing.T) {
	src := `int main() {
    hid_t f = H5Fcreate("out.h5", 0, 0, 0);
    hid_t g = H5Fopen("in.h5", 0, 0);
    H5Fclose(g);
    return 0;
}`
	got := findCode(runLint(t, src), CodeUnclosedHandle)
	if len(got) != 1 || got[0].Line != 2 {
		t.Fatalf("want one IO006 for f at line 2, got %v", got)
	}
	if !strings.Contains(got[0].Message, `"f"`) {
		t.Errorf("message should name the handle: %s", got[0].Message)
	}
}

func TestLintEscapedHandleNotFlagged(t *testing.T) {
	src := `void closer(hid_t h) {
    H5Fclose(h);
}

int main() {
    hid_t f = H5Fcreate("out.h5", 0, 0, 0);
    closer(f);
    return 0;
}`
	if got := findCode(runLint(t, src), CodeUnclosedHandle); len(got) != 0 {
		t.Errorf("escaped handle flagged: %v", got)
	}
}

func TestLintDiagnosticsSortedAndStringForm(t *testing.T) {
	src := `int main() {
    int unused = 1;
    return 0;
    fclose(0);
}`
	diags := runLint(t, src)
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Line > diags[i].Line {
			t.Fatalf("diagnostics not sorted by line: %v", diags)
		}
	}
	errs := findCode(diags, CodeUnreachableIO)
	if len(errs) != 1 {
		t.Fatalf("want IO001, got %v", diags)
	}
	s := errs[0].String()
	if !strings.Contains(s, "line 4") || !strings.Contains(s, "error") || !strings.Contains(s, "IO001") {
		t.Errorf("String() = %q, want line, severity and code", s)
	}
	if MaxSeverity(diags) != SevError {
		t.Errorf("MaxSeverity = %v, want error", MaxSeverity(diags))
	}
}

func TestDiagnosticJSONRoundTrip(t *testing.T) {
	d := Diagnostic{Code: CodeUnboundedIOLoop, Severity: SevWarning, Line: 12, Func: "main", Message: "m"}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"severity": "warning"`) && !strings.Contains(string(b), `"severity":"warning"`) {
		t.Errorf("severity should marshal as a string: %s", b)
	}
	var back Diagnostic
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Errorf("round trip: got %+v, want %+v", back, d)
	}
}

func TestLintCleanProgram(t *testing.T) {
	src := `int main() {
    hid_t f = H5Fcreate("out.h5", 0, 0, 0);
    double buf[4];
    H5Dwrite(f, 0, 0, 0, 0, buf);
    H5Fclose(f);
    return 0;
}`
	if diags := runLint(t, src); len(diags) != 0 {
		t.Errorf("clean program produced diagnostics: %v", diags)
	}
}
