package analysis

import (
	"testing"

	"tunio/internal/csrc"
)

// mustParse parses test source or fails the test.
func mustParse(t *testing.T, src string) *csrc.File {
	t.Helper()
	f, err := csrc.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

// mustFunc returns a named function from the parsed file.
func mustFunc(t *testing.T, f *csrc.File, name string) *csrc.FuncDecl {
	t.Helper()
	fn := f.Func(name)
	if fn == nil {
		t.Fatalf("function %q not found", name)
	}
	return fn
}

// stmtAt returns the first statement of fn whose source line is line.
func stmtAt(t *testing.T, fn *csrc.FuncDecl, line int) csrc.Stmt {
	t.Helper()
	var found csrc.Stmt
	walkFuncStmts(fn, func(s csrc.Stmt) bool {
		if found == nil && s.Base().Pos == line {
			found = s
		}
		return found == nil
	})
	if found == nil {
		t.Fatalf("no statement at line %d", line)
	}
	return found
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// reachableLines / unreachableLines: source lines whose statements
		// must (not) be reachable.
		reachableLines   []int
		unreachableLines []int
		// dominators: line a must dominate line b.
		dominates [][2]int
		// notDominates: line a must not dominate line b.
		notDominates [][2]int
	}{
		{
			name: "branch",
			src: `int main() {
    int a = 1;
    if (a > 0) {
        a = 2;
    } else {
        a = 3;
    }
    return a;
}`,
			reachableLines: []int{2, 3, 4, 6, 8},
			dominates:      [][2]int{{2, 8}, {3, 4}, {3, 6}, {3, 8}},
			notDominates:   [][2]int{{4, 8}, {6, 8}, {4, 6}},
		},
		{
			name: "nested loops",
			src: `int main() {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 4; j++) {
            s = s + j;
        }
    }
    return s;
}`,
			reachableLines: []int{2, 3, 4, 5, 8},
			dominates:      [][2]int{{3, 4}, {4, 5}, {3, 8}},
			notDominates:   [][2]int{{4, 8}, {5, 4}},
		},
		{
			name: "break and continue",
			src: `int main() {
    int s = 0;
    while (s < 10) {
        s = s + 1;
        if (s > 5) {
            break;
        }
        if (s == 2) {
            continue;
        }
        s = s + 2;
    }
    return s;
}`,
			reachableLines: []int{3, 4, 6, 9, 11, 13},
			dominates:      [][2]int{{3, 13}, {4, 11}, {8, 11}},
			notDominates:   [][2]int{{11, 13}, {6, 11}},
		},
		{
			name: "early return",
			src: `int main() {
    int a = 1;
    if (a) {
        return 0;
    }
    a = 2;
    return a;
}`,
			reachableLines: []int{2, 3, 4, 6, 7},
			dominates:      [][2]int{{3, 6}},
			notDominates:   [][2]int{{4, 6}},
		},
		{
			name: "code after return is unreachable",
			src: `int main() {
    return 0;
    fclose(0);
}`,
			reachableLines:   []int{2},
			unreachableLines: []int{3},
		},
		{
			name: "code after break is unreachable",
			src: `int main() {
    while (1) {
        break;
        fclose(0);
    }
    return 0;
}`,
			reachableLines:   []int{3, 6},
			unreachableLines: []int{4},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fn := mustFunc(t, mustParse(t, tc.src), "main")
			cfg := BuildCFG(fn)
			for _, ln := range tc.reachableLines {
				b := cfg.BlockOf(stmtAt(t, fn, ln))
				if b == nil {
					t.Fatalf("line %d: no block", ln)
				}
				if !cfg.Reachable(b) {
					t.Errorf("line %d: want reachable", ln)
				}
			}
			for _, ln := range tc.unreachableLines {
				b := cfg.BlockOf(stmtAt(t, fn, ln))
				if b == nil {
					t.Fatalf("line %d: no block", ln)
				}
				if cfg.Reachable(b) {
					t.Errorf("line %d: want unreachable", ln)
				}
			}
			for _, p := range tc.dominates {
				a := cfg.BlockOf(stmtAt(t, fn, p[0]))
				b := cfg.BlockOf(stmtAt(t, fn, p[1]))
				if !cfg.Dominates(a, b) {
					t.Errorf("line %d should dominate line %d", p[0], p[1])
				}
			}
			for _, p := range tc.notDominates {
				a := cfg.BlockOf(stmtAt(t, fn, p[0]))
				b := cfg.BlockOf(stmtAt(t, fn, p[1]))
				if cfg.Dominates(a, b) {
					t.Errorf("line %d should not dominate line %d", p[0], p[1])
				}
			}
		})
	}
}

func TestCFGEntryDominatesEverything(t *testing.T) {
	src := `int main() {
    int s = 0;
    for (int i = 0; i < 3; i++) {
        if (i == 1) {
            continue;
        }
        s = s + i;
    }
    return s;
}`
	fn := mustFunc(t, mustParse(t, src), "main")
	cfg := BuildCFG(fn)
	for _, b := range cfg.Blocks {
		if !cfg.Reachable(b) {
			continue
		}
		if !cfg.Dominates(cfg.Entry, b) {
			t.Errorf("entry must dominate block %d", b.ID)
		}
		if b != cfg.Entry && cfg.IDom(b) == nil {
			t.Errorf("reachable block %d has no idom", b.ID)
		}
	}
}

func TestCFGLoopInfo(t *testing.T) {
	src := `int main() {
    while (1) {
        fwrite(0, 1, 1, 0);
    }
    for (int i = 0; i < 3; i++) {
        fwrite(0, 1, 1, 0);
    }
    return 0;
}`
	fn := mustFunc(t, mustParse(t, src), "main")
	cfg := BuildCFG(fn)
	if len(cfg.Loops) != 2 {
		t.Fatalf("want 2 loops, got %d", len(cfg.Loops))
	}
	for _, loop := range cfg.Loops {
		switch loop.Stmt.(type) {
		case *csrc.WhileStmt:
			if len(loop.After.Preds) != 0 {
				t.Errorf("while(1) after-block should have no preds, got %d", len(loop.After.Preds))
			}
		case *csrc.ForStmt:
			if len(loop.After.Preds) == 0 {
				t.Errorf("bounded for-loop after-block should be reachable")
			}
		}
	}
}
