package analysis

import (
	"sort"
	"testing"
)

// reachingLines runs reaching definitions and returns the source lines of
// defs of v reaching the statement at line.
func reachingLines(t *testing.T, src string, line int, v string) []int {
	t.Helper()
	fn := mustFunc(t, mustParse(t, src), "main")
	rd := NewReachingDefs(BuildCFG(fn))
	var lines []int
	for _, d := range rd.Reaching(stmtAt(t, fn, line), v) {
		lines = append(lines, d.Base().Pos)
	}
	sort.Ints(lines)
	return lines
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReachingDefs(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
		v    string
		want []int
	}{
		{
			name: "straight line kill",
			src: `int main() {
    int a = 1;
    a = 2;
    return a;
}`,
			line: 4, v: "a", want: []int{3},
		},
		{
			name: "branch merges both defs",
			src: `int main() {
    int a = 1;
    if (a > 0) {
        a = 2;
    } else {
        a = 3;
    }
    return a;
}`,
			line: 8, v: "a", want: []int{4, 6},
		},
		{
			name: "if without else keeps incoming def",
			src: `int main() {
    int a = 1;
    if (a > 0) {
        a = 2;
    }
    return a;
}`,
			line: 6, v: "a", want: []int{2, 4},
		},
		{
			name: "loop body def flows around back edge",
			src: `int main() {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        s = s + i;
    }
    return s;
}`,
			line: 4, v: "s", want: []int{2, 4},
		},
		{
			name: "weak def does not kill",
			src: `int main() {
    int a[4];
    a[0] = 1;
    a[1] = 2;
    return a[0];
}`,
			line: 5, v: "a", want: []int{2, 3, 4},
		},
		{
			name: "out-arg is a weak def",
			src: `int main() {
    int rank = 0;
    MPI_Comm_rank(0, &rank);
    return rank;
}`,
			line: 4, v: "rank", want: []int{2, 3},
		},
		{
			name: "def after break does not reach loop exit use",
			src: `int main() {
    int a = 1;
    while (a < 10) {
        break;
        a = 99;
    }
    return a;
}`,
			line: 7, v: "a", want: []int{2},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := reachingLines(t, tc.src, tc.line, tc.v)
			if !eqInts(got, tc.want) {
				t.Errorf("defs of %q reaching line %d = %v, want %v", tc.v, tc.line, got, tc.want)
			}
		})
	}
}

func TestLiveness(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// at: line whose block's live-out is queried
		at       int
		liveVars []string
		deadVars []string
	}{
		{
			name: "read after branch is live",
			src: `int main() {
    int a = 1;
    int b = 2;
    if (b > 0) {
        b = 0;
    }
    return a;
}`,
			at: 2, liveVars: []string{"a"}, deadVars: []string{"b"},
		},
		{
			name: "overwritten before read is dead",
			src: `int main() {
    int a = 1;
    fseek(0, 0, 0);
    a = 2;
    return a;
}`,
			at: 3, liveVars: nil, deadVars: []string{"a"},
		},
		{
			name: "live around loop back edge",
			src: `int main() {
    int s = 0;
    for (int i = 0; i < 4; i++) {
        s = s + i;
    }
    return s;
}`,
			at: 4, liveVars: []string{"s", "i"}, deadVars: nil,
		},
		{
			name: "condition use stays in its own block",
			src: `int main() {
    int a = 1;
    int b = 2;
    if (a > 0) {
        b = b + 1;
    }
    return b;
}`,
			// the if-condition (a's only read) sits in the same block as the
			// declarations, so a is dead OUT of that block while b survives
			at: 2, liveVars: []string{"b"}, deadVars: []string{"a"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fn := mustFunc(t, mustParse(t, tc.src), "main")
			cfg := BuildCFG(fn)
			lv := NewLiveness(cfg)
			b := cfg.BlockOf(stmtAt(t, fn, tc.at))
			for _, v := range tc.liveVars {
				if !lv.LiveOut(b, v) {
					t.Errorf("%q should be live out of line %d's block", v, tc.at)
				}
			}
			for _, v := range tc.deadVars {
				if lv.LiveOut(b, v) {
					t.Errorf("%q should be dead out of line %d's block", v, tc.at)
				}
			}
		})
	}
}

func TestLivenessDeadStoreAcrossBlocks(t *testing.T) {
	// `a = 1` at line 2 is dead: every path to a read passes `a = 2`.
	src := `int main() {
    int a = 1;
    if (a > 0) {
        a = 2;
    } else {
        a = 2;
    }
    return a;
}`
	fn := mustFunc(t, mustParse(t, src), "main")
	cfg := BuildCFG(fn)
	lv := NewLiveness(cfg)
	// "a" is used by the if-condition itself, so it is live out of the
	// declaration's block -- but NOT live out of the header block's
	// successors' entries... assert the branch bodies kill it:
	thenBlock := cfg.BlockOf(stmtAt(t, fn, 4))
	if !lv.LiveOut(thenBlock, "a") {
		t.Errorf("a should be live after the then-branch redefinition (read at return)")
	}
	if lv.In[thenBlock.ID]["a"] {
		t.Errorf("a should not be live entering the then-branch (redefined before any read)")
	}
}

func TestSummarize(t *testing.T) {
	src := `int g;

double pure_helper(double x) {
    double y = x * 2;
    return y;
}

void writes_global(int v) {
    g = v;
}

void does_io(int n) {
    fwrite(&n, 4, 1, 0);
}

void calls_io(int n) {
    does_io(n);
}

void calls_pointer(int fread) {
    fread(1);
}

int main() {
    double d = pure_helper(2.0);
    writes_global(1);
    calls_io(3);
    return 0;
}`
	f := mustParse(t, src)
	sums := Summarize(f, DefaultIsIOCall)

	check := func(name string, pure, io, wg, unknown bool) {
		t.Helper()
		s := sums[name]
		if s == nil {
			t.Fatalf("no summary for %q", name)
		}
		if s.Pure() != pure || s.PerformsIO != io || s.WritesGlobals != wg || s.CallsUnknown != unknown {
			t.Errorf("%s: got pure=%v io=%v writesGlobals=%v unknown=%v, want %v %v %v %v",
				name, s.Pure(), s.PerformsIO, s.WritesGlobals, s.CallsUnknown, pure, io, wg, unknown)
		}
	}
	check("pure_helper", true, false, false, false)
	check("writes_global", false, false, true, false)
	check("does_io", false, true, false, false)
	check("calls_io", false, true, false, false)      // transitive
	check("calls_pointer", false, false, false, true) // shadowed fread is unknown, not I/O
	check("main", false, true, true, false)           // transitive union over defined callees
}

func TestStmtDefUse(t *testing.T) {
	src := `int main() {
    int a = 1;
    int b[4];
    b[a] = a + 2;
    a += 3;
    MPI_Comm_rank(0, &a);
    return b[0];
}`
	fn := mustFunc(t, mustParse(t, src), "main")

	du := StmtDefUse(stmtAt(t, fn, 4)) // b[a] = a + 2
	if len(du.Defs) != 1 || du.Defs[0].Var != "b" || du.Defs[0].Strong {
		t.Errorf("array store: want weak def of b, got %+v", du.Defs)
	}
	uses := map[string]bool{}
	for _, u := range du.Uses {
		uses[u] = true
	}
	if !uses["a"] || !uses["b"] {
		t.Errorf("array store should use subscript and base, got %v", du.Uses)
	}

	du = StmtDefUse(stmtAt(t, fn, 5)) // a += 3
	if len(du.Defs) != 1 || du.Defs[0].Var != "a" || !du.Defs[0].Strong {
		t.Errorf("compound assign: want strong def of a, got %+v", du.Defs)
	}
	if len(du.Uses) != 1 || du.Uses[0] != "a" {
		t.Errorf("compound assign reads prior value, got uses %v", du.Uses)
	}

	du = StmtDefUse(stmtAt(t, fn, 6)) // MPI_Comm_rank(0, &a)
	found := false
	for _, d := range du.Defs {
		if d.Var == "a" && !d.Strong {
			found = true
			if d.Arg {
				t.Errorf("&a out-arg must not be marked conjectural, got %+v", d)
			}
		}
	}
	if !found {
		t.Errorf("&a out-arg should be a weak def, got %+v", du.Defs)
	}
}

// Bare pointer/array arguments of unknown calls are conjectured weak
// writes (sprintf(name, ...) fills name), but builtins known not to write
// their arguments produce no defs at all.
func TestStmtDefUseBareCallArgs(t *testing.T) {
	src := `int main() {
    char name[64];
    sprintf(name, "run%d", 3);
    printf(name);
    return 0;
}`
	fn := mustFunc(t, mustParse(t, src), "main")

	du := StmtDefUse(stmtAt(t, fn, 3)) // sprintf(name, ...)
	if len(du.Defs) != 1 || du.Defs[0].Var != "name" || du.Defs[0].Strong || !du.Defs[0].Arg {
		t.Errorf("sprintf(name): want conjectured weak def of name, got %+v", du.Defs)
	}

	du = StmtDefUse(stmtAt(t, fn, 4)) // printf(name)
	if len(du.Defs) != 0 {
		t.Errorf("printf is a known builtin; want no defs, got %+v", du.Defs)
	}
}
