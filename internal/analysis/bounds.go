package analysis

import (
	"fmt"
	"strconv"
	"strings"

	"tunio/internal/csrc"
)

// Symbolic loop bounds: affine induction-variable recognition over for
// loops, producing trip counts as SymExpr terms over the free symbols of
// the kernel (MPI rank/size, tunable parameters), plus the divergence
// checks behind TR006/TR007. The I/O signature (signature.go) multiplies
// per-iteration transfer terms by these trip counts to get closed-form
// volumes.

// symOp enumerates SymExpr node kinds.
type symOp int

const (
	opConst symOp = iota
	opVar
	opAdd
	opSub
	opMul
	opDiv
	opMax0
)

// SymExpr is a symbolic integer expression: constants, named symbols, the
// four integer operators (division truncates, as in C), and max(0, x).
// Construct with SymConst/SymVar/SymAdd/...; constructors fold constants,
// so structurally equal values render to equal strings.
type SymExpr struct {
	op   symOp
	k    int64
	name string
	x, y *SymExpr
}

// SymConst returns the constant k.
func SymConst(k int64) *SymExpr { return &SymExpr{op: opConst, k: k} }

// SymVar returns the free symbol name.
func SymVar(name string) *SymExpr { return &SymExpr{op: opVar, name: name} }

// Const reports the constant value when the expression folded to one.
func (e *SymExpr) Const() (int64, bool) {
	if e != nil && e.op == opConst {
		return e.k, true
	}
	return 0, false
}

// SymAdd returns x + y.
func SymAdd(x, y *SymExpr) *SymExpr {
	if x == nil || y == nil {
		return nil
	}
	if a, ok := x.Const(); ok {
		if b, ok := y.Const(); ok {
			return SymConst(a + b)
		}
		if a == 0 {
			return y
		}
	}
	if b, ok := y.Const(); ok && b == 0 {
		return x
	}
	return &SymExpr{op: opAdd, x: x, y: y}
}

// SymSub returns x - y.
func SymSub(x, y *SymExpr) *SymExpr {
	if x == nil || y == nil {
		return nil
	}
	if a, ok := x.Const(); ok {
		if b, ok := y.Const(); ok {
			return SymConst(a - b)
		}
	}
	if b, ok := y.Const(); ok && b == 0 {
		return x
	}
	return &SymExpr{op: opSub, x: x, y: y}
}

// SymMul returns x * y.
func SymMul(x, y *SymExpr) *SymExpr {
	if x == nil || y == nil {
		return nil
	}
	if a, ok := x.Const(); ok {
		if b, ok := y.Const(); ok {
			return SymConst(a * b)
		}
		if a == 0 {
			return SymConst(0)
		}
		if a == 1 {
			return y
		}
	}
	if b, ok := y.Const(); ok {
		if b == 0 {
			return SymConst(0)
		}
		if b == 1 {
			return x
		}
	}
	return &SymExpr{op: opMul, x: x, y: y}
}

// SymDiv returns x / y (C truncated division; a constant zero divisor
// yields nil — unknown).
func SymDiv(x, y *SymExpr) *SymExpr {
	if x == nil || y == nil {
		return nil
	}
	if b, ok := y.Const(); ok {
		if b == 0 {
			return nil
		}
		if b == 1 {
			return x
		}
		if a, ok := x.Const(); ok {
			return SymConst(a / b)
		}
	}
	return &SymExpr{op: opDiv, x: x, y: y}
}

// SymMax0 returns max(0, x).
func SymMax0(x *SymExpr) *SymExpr {
	if x == nil {
		return nil
	}
	if a, ok := x.Const(); ok {
		if a < 0 {
			return SymConst(0)
		}
		return x
	}
	if x.op == opMax0 {
		return x
	}
	return &SymExpr{op: opMax0, x: x}
}

// prec ranks operators for minimal parenthesization.
func (e *SymExpr) prec() int {
	switch e.op {
	case opAdd, opSub:
		return 1
	case opMul, opDiv:
		return 2
	default:
		return 3
	}
}

// String renders the expression canonically; equal renderings imply equal
// abstract values for expressions built through the constructors.
func (e *SymExpr) String() string {
	if e == nil {
		return "?"
	}
	child := func(c *SymExpr, min int) string {
		s := c.String()
		if c.prec() < min {
			return "(" + s + ")"
		}
		return s
	}
	switch e.op {
	case opConst:
		return strconv.FormatInt(e.k, 10)
	case opVar:
		return e.name
	case opAdd:
		return child(e.x, 1) + " + " + child(e.y, 1)
	case opSub:
		return child(e.x, 1) + " - " + child(e.y, 2)
	case opMul:
		return child(e.x, 2) + "*" + child(e.y, 2)
	case opDiv:
		return child(e.x, 2) + "/" + child(e.y, 3)
	case opMax0:
		return "max(0, " + e.x.String() + ")"
	default:
		return "?"
	}
}

// Eval evaluates the expression under a binding of the free symbols. An
// unbound symbol or a zero divisor is an error.
func (e *SymExpr) Eval(bind map[string]int64) (int64, error) {
	if e == nil {
		return 0, fmt.Errorf("unknown symbolic term")
	}
	switch e.op {
	case opConst:
		return e.k, nil
	case opVar:
		v, ok := bind[e.name]
		if !ok {
			return 0, fmt.Errorf("unbound symbol %q", e.name)
		}
		return v, nil
	case opMax0:
		v, err := e.x.Eval(bind)
		if err != nil {
			return 0, err
		}
		if v < 0 {
			return 0, nil
		}
		return v, nil
	}
	x, err := e.x.Eval(bind)
	if err != nil {
		return 0, err
	}
	y, err := e.y.Eval(bind)
	if err != nil {
		return 0, err
	}
	switch e.op {
	case opAdd:
		return x + y, nil
	case opSub:
		return x - y, nil
	case opMul:
		return x * y, nil
	case opDiv:
		if y == 0 {
			return 0, fmt.Errorf("division by zero in symbolic term")
		}
		return x / y, nil
	}
	return 0, fmt.Errorf("malformed symbolic term")
}

// FreeVars adds the expression's free symbols to set.
func (e *SymExpr) FreeVars(set map[string]bool) {
	if e == nil {
		return
	}
	if e.op == opVar {
		set[e.name] = true
	}
	e.x.FreeVars(set)
	e.y.FreeVars(set)
}

// HasVar reports whether name occurs free in the expression.
func (e *SymExpr) HasVar(name string) bool {
	if e == nil {
		return false
	}
	if e.op == opVar && e.name == name {
		return true
	}
	return e.x.HasVar(name) || e.y.HasVar(name)
}

// forStep extracts the constant per-iteration step the post statement
// applies to ivar (i++, i--, i += c, i -= c, i = i ± c).
func forStep(post csrc.Stmt, ivar string) (int64, bool) {
	as, ok := post.(*csrc.AssignStmt)
	if !ok {
		return 0, false
	}
	lhs, ok := as.LHS.(*csrc.Ident)
	if !ok || lhs.Name != ivar {
		return 0, false
	}
	switch as.Op {
	case "++":
		return 1, true
	case "--":
		return -1, true
	case "+=":
		if c, ok := foldInt(as.RHS); ok {
			return c, true
		}
	case "-=":
		if c, ok := foldInt(as.RHS); ok {
			return -c, true
		}
	case "=":
		if b, ok := as.RHS.(*csrc.BinaryExpr); ok {
			if id, ok := b.X.(*csrc.Ident); ok && id.Name == ivar {
				if c, ok := foldInt(b.Y); ok {
					switch b.Op {
					case "+":
						return c, true
					case "-":
						return -c, true
					}
				}
			}
		}
	}
	return 0, false
}

// forShape destructures a for statement into (induction var, initial
// value expr, comparison op, bound expr), without judging the step.
func forShape(st *csrc.ForStmt) (ivar string, init csrc.Expr, op string, bound csrc.Expr, ok bool) {
	switch d := st.Init.(type) {
	case *csrc.DeclStmt:
		if d.ArrayLen != nil || d.InitList != nil || d.Init == nil {
			return "", nil, "", nil, false
		}
		ivar, init = d.Name, d.Init
	case *csrc.AssignStmt:
		lhs, isIdent := d.LHS.(*csrc.Ident)
		if !isIdent || d.Op != "=" {
			return "", nil, "", nil, false
		}
		ivar, init = lhs.Name, d.RHS
	default:
		return "", nil, "", nil, false
	}
	cond, isBin := st.Cond.(*csrc.BinaryExpr)
	if !isBin {
		return "", nil, "", nil, false
	}
	lhs, isIdent := cond.X.(*csrc.Ident)
	if !isIdent || lhs.Name != ivar {
		return "", nil, "", nil, false
	}
	switch cond.Op {
	case "<", "<=", ">", ">=":
		return ivar, init, cond.Op, cond.Y, true
	}
	return "", nil, "", nil, false
}

// loopBodyDefs collects every variable the loop body may define, including
// conjectured call-argument writes (conservative for bound stability).
func loopBodyDefs(body *csrc.Block) map[string]bool {
	defs := map[string]bool{}
	if body == nil {
		return defs
	}
	for _, s := range body.Stmts {
		walkStmtTree(s, func(st csrc.Stmt) {
			for _, d := range StmtDefUse(st).Defs {
				defs[d.Var] = true
			}
		})
	}
	return defs
}

// loopBodyExits reports whether the body can leave the loop early: a
// break, a return, or a call to exit.
func loopBodyExits(body *csrc.Block) bool {
	found := false
	if body == nil {
		return false
	}
	for _, s := range body.Stmts {
		walkStmtTree(s, func(st csrc.Stmt) {
			switch st.(type) {
			case *csrc.BreakStmt, *csrc.ReturnStmt:
				found = true
			}
			for _, c := range stmtCalls(st) {
				if c == "exit" {
					found = true
				}
			}
		})
	}
	return found
}

// nestedBreakOrContinue reports whether the body contains break, continue,
// or return anywhere — the strict form the trip-count derivation needs
// (continue still reaches the post statement, but signature clients also
// use this to decide whether per-iteration effects are unconditional).
func nestedBreakOrContinue(body *csrc.Block) bool {
	found := false
	if body == nil {
		return false
	}
	for _, s := range body.Stmts {
		walkStmtTree(s, func(st csrc.Stmt) {
			switch st.(type) {
			case *csrc.BreakStmt, *csrc.ContinueStmt, *csrc.ReturnStmt:
				found = true
			}
		})
	}
	return found
}

// ForTrip derives the symbolic trip count of an affine for loop:
//
//	for (i = A; i < B; i += s)   →   max(0, (B - A + s - 1) / s)
//
// (and the <=, >, >= variants). eval abstracts init/bound expressions to
// SymExpr in the caller's environment; it returns nil for unknown. ForTrip
// returns ("", nil) unless the loop's shape is affine, the step constant
// and correctly signed, the body free of early exits, and the induction
// and bound variables unmutated by the body.
func ForTrip(st *csrc.ForStmt, eval func(csrc.Expr) *SymExpr) (string, *SymExpr) {
	ivar, init, op, bound, ok := forShape(st)
	if !ok || st.Post == nil {
		return "", nil
	}
	step, ok := forStep(st.Post, ivar)
	if !ok || step == 0 {
		return "", nil
	}
	up := op == "<" || op == "<="
	if (up && step < 0) || (!up && step > 0) {
		return "", nil // diverging loop: no finite trip count
	}

	defs := loopBodyDefs(st.Body)
	if defs[ivar] || loopBodyExits(st.Body) {
		return "", nil
	}
	for _, v := range csrc.ExprVars(bound) {
		if defs[v] {
			return "", nil
		}
	}

	a := eval(init)
	b := eval(bound)
	if a == nil || b == nil {
		return ivar, nil
	}
	s := step
	diff := SymSub(b, a)
	if !up {
		s = -step
		diff = SymSub(a, b)
	}
	extra := s - 1
	if op == "<=" || op == ">=" {
		extra = s
	}
	return ivar, SymMax0(SymDiv(SymAdd(diff, SymConst(extra)), SymConst(s)))
}

// boundsChecker runs the interval-backed verifier checks (TR006/TR007).
type boundsChecker struct {
	file   *csrc.File
	iv     *Intervals
	locals map[string]map[string]bool
	isIO   func(string) bool
	diags  []Diagnostic
}

// BoundsDiagnostics runs the TR006 (provably out-of-bounds index) and
// TR007 (statically unbounded I/O loop) checks over a file. Both fire at
// error severity: each describes a program that cannot behave as written.
func BoundsDiagnostics(f *csrc.File, isIO func(string) bool) []Diagnostic {
	if isIO == nil {
		isIO = DefaultIsIOCall
	}
	bc := &boundsChecker{file: f, iv: NewIntervals(f), locals: LocalNames(f), isIO: isIO}
	bc.checkIndexes()
	bc.checkLoops()
	return bc.diags
}

func (bc *boundsChecker) add(code string, pos int, fn, format string, args ...interface{}) {
	bc.diags = append(bc.diags, Diagnostic{
		Code: code, Severity: SevError, Line: pos, Func: fn,
		Message: fmt.Sprintf(format, args...),
	})
}

// arrayLen folds a declaration's array length (explicit or from the
// initializer list).
func arrayLen(d *csrc.DeclStmt) (int64, bool) {
	if d.ArrayLen != nil {
		if n, ok := foldInt(d.ArrayLen); ok && n >= 0 {
			return n, true
		}
		return 0, false
	}
	if d.InitList != nil {
		return int64(len(d.InitList)), true
	}
	return 0, false
}

// checkIndexes flags reachable array indexes whose interval lies entirely
// outside [0, len).
func (bc *boundsChecker) checkIndexes() {
	globalArr := map[string]int64{}
	for _, g := range bc.file.Globals {
		if n, ok := arrayLen(g); ok {
			globalArr[g.Name] = n
		}
	}
	for _, fn := range bc.file.Funcs {
		// The map is name-keyed across the whole function, but C block
		// scoping allows re-declaring a name with a different length;
		// such names are ambiguous here and must not be checked.
		localArr := map[string]int64{}
		ambiguous := map[string]bool{}
		walkFuncStmts(fn, func(s csrc.Stmt) bool {
			if d, ok := s.(*csrc.DeclStmt); ok {
				if n, ok := arrayLen(d); ok {
					if prev, seen := localArr[d.Name]; seen && prev != n {
						ambiguous[d.Name] = true
					}
					localArr[d.Name] = n
				} else if d.ArrayLen != nil || d.InitList != nil {
					ambiguous[d.Name] = true
				}
			}
			return true
		})
		walkFuncStmts(fn, func(s csrc.Stmt) bool {
			for _, x := range stmtExprs(s) {
				csrc.WalkExpr(x, func(node csrc.Expr) bool {
					ix, ok := node.(*csrc.IndexExpr)
					if !ok {
						return true
					}
					id, ok := ix.X.(*csrc.Ident)
					if !ok {
						return true
					}
					var n int64
					if bc.locals[fn.Name][id.Name] {
						ln, ok := localArr[id.Name]
						if !ok || ambiguous[id.Name] {
							return true
						}
						n = ln
					} else {
						gn, ok := globalArr[id.Name]
						if !ok {
							return true
						}
						n = gn
					}
					idx := bc.iv.At(s, ix.Index)
					if idx.Empty { // unreachable or infeasible
						return true
					}
					if (!idx.HiUnb && idx.Hi < 0) || (!idx.LoUnb && idx.Lo >= n) {
						bc.add(CodeOutOfBoundsIndex, s.Base().Pos, fn.Name,
							"index of %q is provably out of bounds: value in %s never intersects [0, %d)",
							id.Name, idx, n)
					}
					return true
				})
			}
			return true
		})
	}
}

// loopHasIO reports whether the loop tree contains a (non-shadowed) I/O
// call.
func (bc *boundsChecker) loopHasIO(loop csrc.Stmt, fn string) bool {
	found := false
	walkStmtTree(loop, func(st csrc.Stmt) {
		for _, c := range stmtCalls(st) {
			if bc.isIO(c) && !bc.locals[fn][c] {
				found = true
			}
		}
	})
	return found
}

// condLocalVars returns the condition's variables when every one of them
// is a local of fn (so no callee can mutate them behind the analysis) and
// the condition calls no functions; otherwise nil, false.
func (bc *boundsChecker) condLocalVars(cond csrc.Expr, fn string) ([]string, bool) {
	hasCall := false
	csrc.WalkExpr(cond, func(x csrc.Expr) bool {
		if _, ok := x.(*csrc.CallExpr); ok {
			hasCall = true
		}
		return true
	})
	if hasCall {
		return nil, false
	}
	vars := csrc.ExprVars(cond)
	if len(vars) == 0 {
		return nil, false
	}
	for _, v := range vars {
		if !bc.locals[fn][v] {
			return nil, false
		}
	}
	return vars, true
}

// condEntered reports whether the loop condition could be true when the
// loop statement is reached (unreachable or provably-false loops never
// spin).
func (bc *boundsChecker) condEntered(loop csrc.Stmt, cond csrc.Expr) bool {
	civ := bc.iv.At(loop, cond)
	if civ.Empty {
		return false
	}
	if c, ok := civ.IsConst(); ok && c == 0 {
		return false
	}
	return true
}

// checkLoops flags loops that provably never terminate while performing
// I/O (TR007). Always-true conditions are IO003's domain (lint) and are
// not re-reported here; this check proves divergence of loops that look
// bounded.
func (bc *boundsChecker) checkLoops() {
	for _, fn := range bc.file.Funcs {
		walkFuncStmts(fn, func(s csrc.Stmt) bool {
			switch st := s.(type) {
			case *csrc.ForStmt:
				bc.checkForLoop(st, fn.Name)
			case *csrc.WhileStmt:
				bc.checkWhileLoop(st, fn.Name)
			}
			return true
		})
	}
}

func (bc *boundsChecker) checkForLoop(st *csrc.ForStmt, fn string) {
	if condAlwaysTrue(st.Cond) || loopBodyExits(st.Body) || !bc.loopHasIO(st, fn) {
		return
	}
	vars, ok := bc.condLocalVars(st.Cond, fn)
	if !ok || !bc.condEntered(st, st.Cond) {
		return
	}
	defs := loopBodyDefs(st.Body)

	// A for loop with a step diverges when the step moves the induction
	// variable away from (or never toward) the bound.
	if ivar, _, op, bound, shaped := forShape(st); shaped && st.Post != nil {
		if step, stepOK := forStep(st.Post, ivar); stepOK {
			up := op == "<" || op == "<="
			wrongWay := (up && step <= 0) || (!up && step >= 0)
			boundStable := true
			for _, v := range csrc.ExprVars(bound) {
				if defs[v] {
					boundStable = false
				}
			}
			if wrongWay && boundStable && !defs[ivar] {
				bc.add(CodeNonTerminatingIOLoop, st.Base().Pos, fn,
					"I/O loop never terminates: induction variable %q steps by %d away from its bound", ivar, step)
			}
			return
		}
	}

	// No recognizable step: diverges if nothing in the body (or post)
	// touches any condition variable.
	if st.Post != nil {
		for _, d := range StmtDefUse(st.Post).Defs {
			defs[d.Var] = true
		}
	}
	for _, v := range vars {
		if defs[v] {
			return
		}
	}
	bc.add(CodeNonTerminatingIOLoop, st.Base().Pos, fn,
		"I/O loop never terminates: condition variables %s are never modified", strings.Join(vars, ", "))
}

func (bc *boundsChecker) checkWhileLoop(st *csrc.WhileStmt, fn string) {
	if condAlwaysTrue(st.Cond) || loopBodyExits(st.Body) || !bc.loopHasIO(st, fn) {
		return
	}
	vars, ok := bc.condLocalVars(st.Cond, fn)
	if !ok || !bc.condEntered(st, st.Cond) {
		return
	}
	defs := loopBodyDefs(st.Body)
	for _, v := range vars {
		if defs[v] {
			return
		}
	}
	bc.add(CodeNonTerminatingIOLoop, st.Base().Pos, fn,
		"I/O loop never terminates: condition variables %s are never modified", strings.Join(vars, ", "))
}
