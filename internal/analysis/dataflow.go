package analysis

import "tunio/internal/csrc"

// Def is one definition site inside a function: the statement and the
// variable it defines.
type Def struct {
	Stmt   csrc.Stmt
	Var    string
	Strong bool
}

// ReachingDefs is the classic forward may-analysis: which definitions of
// each variable can reach each program point. Weak definitions (array
// stores, &x out-arguments) generate but do not kill.
type ReachingDefs struct {
	CFG  *CFG
	Defs []Def
	// In and Out map block ID -> set of reaching definition indices.
	In, Out map[int]map[int]bool

	stmtIn  map[int]map[int]bool // statement ID -> defs reaching just before it
	defsOf  map[string][]int     // var -> def indices
	defUses map[int]DefUse       // statement ID -> cached def/use
}

// NewReachingDefs computes reaching definitions over a CFG.
func NewReachingDefs(cfg *CFG) *ReachingDefs {
	rd := &ReachingDefs{
		CFG:     cfg,
		In:      map[int]map[int]bool{},
		Out:     map[int]map[int]bool{},
		stmtIn:  map[int]map[int]bool{},
		defsOf:  map[string][]int{},
		defUses: map[int]DefUse{},
	}
	// enumerate definitions in block order
	for _, b := range cfg.Blocks {
		for _, s := range b.Stmts {
			du := StmtDefUse(s)
			rd.defUses[s.Base().ID] = du
			for _, d := range du.Defs {
				rd.defsOf[d.Var] = append(rd.defsOf[d.Var], len(rd.Defs))
				rd.Defs = append(rd.Defs, Def{Stmt: s, Var: d.Var, Strong: d.Strong})
			}
		}
	}

	transfer := func(in map[int]bool, s csrc.Stmt) map[int]bool {
		out := in
		for _, d := range rd.defUses[s.Base().ID].Defs {
			if out == nil {
				out = map[int]bool{}
			} else {
				// copy-on-write
				cp := make(map[int]bool, len(out))
				for k := range out {
					cp[k] = true
				}
				out = cp
			}
			if d.Strong {
				for _, di := range rd.defsOf[d.Var] {
					delete(out, di)
				}
			}
			for _, di := range rd.defsOf[d.Var] {
				if rd.Defs[di].Stmt.Base().ID == s.Base().ID {
					out[di] = true
				}
			}
		}
		return out
	}

	// iterate to fixpoint in reverse postorder
	rpo := cfg.reversePostorder()
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			in := map[int]bool{}
			for _, p := range b.Preds {
				for di := range rd.Out[p.ID] {
					in[di] = true
				}
			}
			out := in
			for _, s := range b.Stmts {
				out = transfer(out, s)
			}
			if !sameSet(out, rd.Out[b.ID]) {
				rd.In[b.ID] = in
				rd.Out[b.ID] = out
				changed = true
			} else {
				rd.In[b.ID] = in
			}
		}
	}

	// record per-statement in-sets
	for _, b := range cfg.Blocks {
		cur := rd.In[b.ID]
		for _, s := range b.Stmts {
			rd.stmtIn[s.Base().ID] = cur
			cur = transfer(cur, s)
		}
	}
	return rd
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// Reaching returns the statements defining v that may reach s (just
// before s executes). Loop headers see definitions flowing around the
// back edge.
func (rd *ReachingDefs) Reaching(s csrc.Stmt, v string) []csrc.Stmt {
	var out []csrc.Stmt
	seen := map[int]bool{}
	for di := range rd.stmtIn[s.Base().ID] {
		d := rd.Defs[di]
		if d.Var != v {
			continue
		}
		id := d.Stmt.Base().ID
		if !seen[id] {
			seen[id] = true
			out = append(out, d.Stmt)
		}
	}
	return out
}

// DefUseOf returns the cached def/use sets of a statement inside this
// function (zero value for statements of other functions).
func (rd *ReachingDefs) DefUseOf(s csrc.Stmt) DefUse { return rd.defUses[s.Base().ID] }

// Liveness is the classic backward may-analysis: which variables may be
// read after each program point before being overwritten.
type Liveness struct {
	CFG *CFG
	// In and Out map block ID -> set of live variable names.
	In, Out map[int]map[string]bool
}

// NewLiveness computes live variables over a CFG.
func NewLiveness(cfg *CFG) *Liveness {
	lv := &Liveness{CFG: cfg, In: map[int]map[string]bool{}, Out: map[int]map[string]bool{}}

	// block-level use (read before any strong write) and def (strong
	// write) sets
	use := map[int]map[string]bool{}
	def := map[int]map[string]bool{}
	for _, b := range cfg.Blocks {
		u, d := map[string]bool{}, map[string]bool{}
		for _, s := range b.Stmts {
			du := StmtDefUse(s)
			for _, v := range du.Uses {
				if !d[v] {
					u[v] = true
				}
			}
			for _, vd := range du.Defs {
				if !vd.Strong {
					// weak writes read the prior contents they merge into
					if !d[vd.Var] {
						u[vd.Var] = true
					}
					continue
				}
				d[vd.Var] = true
			}
		}
		use[b.ID], def[b.ID] = u, d
	}

	// backward fixpoint over postorder
	rpo := cfg.reversePostorder()
	for changed := true; changed; {
		changed = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			out := map[string]bool{}
			for _, s := range b.Succs {
				for v := range lv.In[s.ID] {
					out[v] = true
				}
			}
			in := map[string]bool{}
			for v := range out {
				if !def[b.ID][v] {
					in[v] = true
				}
			}
			for v := range use[b.ID] {
				in[v] = true
			}
			if !sameStrSet(in, lv.In[b.ID]) || !sameStrSet(out, lv.Out[b.ID]) {
				lv.In[b.ID], lv.Out[b.ID] = in, out
				changed = true
			}
		}
	}
	return lv
}

func sameStrSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// LiveOut reports whether v may be read after block b.
func (lv *Liveness) LiveOut(b *BasicBlock, v string) bool { return lv.Out[b.ID][v] }
