package analysis

import (
	"fmt"
	"sort"

	"tunio/internal/csrc"
)

// TransformOptions name the discovery transforms about to run, so the
// verifier only checks preconditions of rewrites that will actually be
// applied.
type TransformOptions struct {
	LoopReduction     bool
	PathSwitch        bool
	RemoveBlindWrites bool
	// IsIOCall classifies I/O library calls.
	IsIOCall func(string) bool
}

// pathCalls mirror the discovery path-switch target set: call name ->
// index of the path argument.
var pathCalls = map[string]int{
	"H5Fcreate": 0, "H5Fopen": 0, "fopen": 0, "MPI_File_open": 1,
}

// VerifyTransforms checks, before the discovery transforms rewrite a
// kernel, that each rewrite preserves the I/O request stream, and returns
// structured warnings for regions where it cannot prove that:
//
//   - TR001: loop reduction would rewrite a bound whose variables the loop
//     body mutates — the __loop_reduce wrapper would re-evaluate a moving
//     target, making the executed iteration count unpredictable.
//   - TR002: a value defined inside a reduced loop flows into an I/O call
//     outside it — running fewer iterations changes that value, so the
//     later I/O no longer matches the original application.
//   - TR005: a loop contains I/O but has a shape loop reduction cannot
//     rewrite — LoopScale will not account for it.
//   - TR003: path switching cannot rewrite a computed (non-literal) path
//     argument, so that file still lands on the original file system.
//   - TR004: blind-write removal saw a dataset handle escape into a user
//     function between two writes to the same dataset — the intervening
//     call may read the dataset, making the removal unsound.
func VerifyTransforms(f *csrc.File, opts TransformOptions) []Diagnostic {
	v := &verifier{file: f, opts: opts, locals: LocalNames(f)}
	if opts.LoopReduction {
		v.checkLoopReduction()
	}
	if opts.PathSwitch {
		v.checkPathSwitch()
	}
	if opts.RemoveBlindWrites {
		v.checkBlindWrites()
	}
	// TR006/TR007 are transform-independent soundness findings from the
	// interval analysis; they run on every verification pass.
	v.diags = append(v.diags, BoundsDiagnostics(f, opts.IsIOCall)...)
	sort.SliceStable(v.diags, func(i, j int) bool { return v.diags[i].Line < v.diags[j].Line })
	return v.diags
}

type verifier struct {
	file   *csrc.File
	opts   TransformOptions
	locals map[string]map[string]bool
	diags  []Diagnostic
}

func (v *verifier) add(code string, sev Severity, pos int, fn, format string, args ...interface{}) {
	v.diags = append(v.diags, Diagnostic{
		Code: code, Severity: sev, Line: pos, Func: fn,
		Message: fmt.Sprintf(format, args...),
	})
}

// isIO applies the I/O classifier with local-shadowing awareness.
func (v *verifier) isIO(fn, name string) bool {
	return v.opts.IsIOCall != nil && v.opts.IsIOCall(name) && !(fn != "" && v.locals[fn][name])
}

// stmtHasIO reports whether a statement tree contains an I/O call.
func (v *verifier) stmtHasIO(s csrc.Stmt, fn string) bool {
	found := false
	walkStmtTree(s, func(st csrc.Stmt) {
		for _, c := range stmtCalls(st) {
			if v.isIO(fn, c) {
				found = true
			}
		}
	})
	return found
}

// walkStmtTree visits st and all nested statements.
func walkStmtTree(s csrc.Stmt, visit func(csrc.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	walkBlockTree := func(b *csrc.Block) {
		if b == nil {
			return
		}
		for _, st := range b.Stmts {
			walkStmtTree(st, visit)
		}
	}
	switch st := s.(type) {
	case *csrc.Block:
		walkBlockTree(st)
	case *csrc.IfStmt:
		walkBlockTree(st.Then)
		walkBlockTree(st.Else)
	case *csrc.ForStmt:
		if st.Init != nil {
			walkStmtTree(st.Init, visit)
		}
		if st.Post != nil {
			walkStmtTree(st.Post, visit)
		}
		walkBlockTree(st.Body)
	case *csrc.WhileStmt:
		walkBlockTree(st.Body)
	}
}

// reducibleBound mirrors discovery's rewriteBound shape check.
func reducibleBound(st *csrc.ForStmt) bool {
	cond, ok := st.Cond.(*csrc.BinaryExpr)
	if !ok {
		return false
	}
	return cond.Op == "<" || cond.Op == "<="
}

// checkLoopReduction examines every loop the reduction transform would
// select (outermost loops containing I/O) plus the I/O loops it silently
// skips.
func (v *verifier) checkLoopReduction() {
	for _, fn := range v.file.Funcs {
		cfg := BuildCFG(fn)
		rd := NewReachingDefs(cfg)

		// select outermost for-loops containing I/O, like reduceLoops
		var targets []*csrc.ForStmt
		var irreducible []csrc.Stmt
		var visit func(s csrc.Stmt, insideTarget bool)
		visitBlock := func(b *csrc.Block, inside bool) {
			if b == nil {
				return
			}
			for _, s := range b.Stmts {
				visit(s, inside)
			}
		}
		visit = func(s csrc.Stmt, inside bool) {
			switch st := s.(type) {
			case *csrc.Block:
				visitBlock(st, inside)
			case *csrc.IfStmt:
				visitBlock(st.Then, inside)
				visitBlock(st.Else, inside)
			case *csrc.WhileStmt:
				if !inside && v.stmtHasIO(st, fn.Name) {
					irreducible = append(irreducible, st)
				}
				visitBlock(st.Body, inside)
			case *csrc.ForStmt:
				if !inside && v.stmtHasIO(st, fn.Name) {
					if reducibleBound(st) {
						targets = append(targets, st)
						visitBlock(st.Body, true)
						return
					}
					irreducible = append(irreducible, st)
				}
				visitBlock(st.Body, inside)
			}
		}
		visitBlock(fn.Body, false)

		for _, s := range irreducible {
			v.add(CodeIrreducibleLoop, SevWarning, s.Base().Pos, fn.Name,
				"loop contains I/O but its bound cannot be rewritten; LoopScale will not account for it")
		}

		for _, loop := range targets {
			// body statements (including nested)
			body := map[int]bool{}
			bodyDefs := map[string]bool{}
			walkStmtTree(loop.Body, func(st csrc.Stmt) {
				body[st.Base().ID] = true
				for _, d := range StmtDefUse(st).Defs {
					if !d.Arg { // conjectured call-arg writes are not value changes
						bodyDefs[d.Var] = true
					}
				}
			})
			if loop.Post != nil {
				body[loop.Post.Base().ID] = true
			}

			// TR001: bound variables mutated in the body
			if cond, ok := loop.Cond.(*csrc.BinaryExpr); ok {
				for _, bv := range csrc.ExprVars(cond.Y) {
					if bodyDefs[bv] {
						// an error, not a warning: applying loop reduction
						// here rewrites a moving bound, which is unsound
						v.add(CodeLoopBoundMutated, SevError, loop.Pos, fn.Name,
							"loop bound variable %q is mutated in the loop body; reduced iteration count is unpredictable", bv)
					}
				}
			}

			// TR002: body-defined values flowing into I/O outside the loop
			walkFuncStmts(fn, func(st csrc.Stmt) bool {
				id := st.Base().ID
				if body[id] || id == loop.ID {
					return true
				}
				if !v.stmtHasIO(st, fn.Name) {
					return true
				}
				du := StmtDefUse(st)
				reported := map[string]bool{}
				for _, u := range du.Uses {
					if !bodyDefs[u] || reported[u] {
						continue
					}
					for _, def := range rd.Reaching(st, u) {
						if body[def.Base().ID] && valueDefines(def, u) {
							reported[u] = true
							v.add(CodeLoopCarriedIO, SevWarning, st.Base().Pos, fn.Name,
								"I/O argument %q is computed inside the reduced loop at line %d; fewer iterations change its value", u, def.Base().Pos)
							break
						}
					}
				}
				return true
			})
		}
	}
}

// checkPathSwitch flags path arguments the switch cannot rewrite. A
// computed argument is only a problem when string-constant propagation
// cannot resolve it to a proven constant — resolved paths are rewritten
// by the switch just like literals.
func (v *verifier) checkPathSwitch() {
	prop := NewStringProp(v.file)
	for _, fn := range v.file.Funcs {
		walkFuncStmts(fn, func(st csrc.Stmt) bool {
			var exprs []csrc.Expr
			switch x := st.(type) {
			case *csrc.ExprStmt:
				exprs = append(exprs, x.X)
			case *csrc.DeclStmt:
				exprs = append(exprs, x.Init)
			case *csrc.AssignStmt:
				exprs = append(exprs, x.RHS)
			}
			for _, e := range exprs {
				csrc.WalkExpr(e, func(x csrc.Expr) bool {
					c, ok := x.(*csrc.CallExpr)
					if !ok {
						return true
					}
					idx, ok := pathCalls[c.Fun]
					if !ok || v.locals[fn.Name][c.Fun] || idx >= len(c.Args) {
						return true
					}
					if _, lit := c.Args[idx].(*csrc.StringLit); !lit {
						if _, ok := prop.Resolve(st, c.Args[idx]); !ok {
							v.add(CodeComputedPath, SevWarning, st.Base().Pos, fn.Name,
								"%s path argument is computed and does not propagate to a constant; path switching cannot redirect it to /dev/shm", c.Fun)
						}
					}
					return true
				})
			}
			return true
		})
	}
}

// checkBlindWrites flags same-block write pairs where the dataset handle
// (or an alias of it) escapes into a user-defined function between them.
func (v *verifier) checkBlindWrites() {
	for _, fn := range v.file.Funcs {
		var visitBlock func(b *csrc.Block)
		visitBlock = func(b *csrc.Block) {
			if b == nil {
				return
			}
			type writeAt struct {
				idx int
				ds  string
			}
			var writes []writeAt
			alias := newAliasSets()
			escapes := map[string][]int{} // root var -> stmt indices where it escapes
			for i, s := range b.Stmts {
				switch st := s.(type) {
				case *csrc.Block:
					visitBlock(st)
					continue
				case *csrc.IfStmt:
					visitBlock(st.Then)
					visitBlock(st.Else)
					continue
				case *csrc.ForStmt:
					visitBlock(st.Body)
					continue
				case *csrc.WhileStmt:
					visitBlock(st.Body)
					continue
				case *csrc.DeclStmt:
					if id, ok := st.Init.(*csrc.Ident); ok {
						alias.union(st.Name, id.Name)
					}
				case *csrc.AssignStmt:
					if lhs, ok := st.LHS.(*csrc.Ident); ok && st.Op == "=" {
						if rhs, ok := st.RHS.(*csrc.Ident); ok {
							alias.union(lhs.Name, rhs.Name)
						}
					}
				case *csrc.ExprStmt:
					if c, ok := st.X.(*csrc.CallExpr); ok {
						if c.Fun == "H5Dwrite" && len(c.Args) > 0 {
							if ds := rootIdent(c.Args[0]); ds != "" {
								writes = append(writes, writeAt{idx: i, ds: ds})
							}
						}
					}
				}
				// any argument of a user-function call escapes
				for _, callee := range stmtCalls(s) {
					if v.file.Func(callee) == nil {
						continue
					}
					for _, u := range StmtDefUse(s).Uses {
						escapes[u] = append(escapes[u], i)
					}
				}
			}
			for wi := 0; wi+1 < len(writes); wi++ {
				for wj := wi + 1; wj < len(writes); wj++ {
					if writes[wi].ds != writes[wj].ds {
						continue
					}
					for esc, idxs := range escapes {
						if !alias.same(esc, writes[wi].ds) {
							continue
						}
						for _, ei := range idxs {
							if ei > writes[wi].idx && ei < writes[wj].idx {
								v.add(CodeAliasedHandle, SevWarning, b.Stmts[writes[wi].idx].Base().Pos, fn.Name,
									"dataset handle %q escapes to a user function between writes; blind-write removal may drop a read-visible write", writes[wi].ds)
							}
						}
					}
					break
				}
			}
		}
		visitBlock(fn.Body)
	}
}

// aliasSets is a tiny union-find over variable names.
type aliasSets struct{ parent map[string]string }

func newAliasSets() *aliasSets { return &aliasSets{parent: map[string]string{}} }

func (a *aliasSets) find(x string) string {
	p, ok := a.parent[x]
	if !ok || p == x {
		return x
	}
	r := a.find(p)
	a.parent[x] = r
	return r
}

func (a *aliasSets) union(x, y string) { a.parent[a.find(x)] = a.find(y) }

func (a *aliasSets) same(x, y string) bool { return a.find(x) == a.find(y) }

// valueDefines reports whether s contains a non-conjectural definition of
// v — an assignment, declaration, or &v output argument, as opposed to a
// bare call-argument write the analysis only assumes for slicing safety.
func valueDefines(s csrc.Stmt, v string) bool {
	for _, d := range StmtDefUse(s).Defs {
		if d.Var == v && !d.Arg {
			return true
		}
	}
	return false
}
