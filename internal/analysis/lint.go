package analysis

import (
	"fmt"
	"sort"
	"strings"

	"tunio/internal/csrc"
)

// LintOptions configure the diagnostics engine.
type LintOptions struct {
	// IsIOCall classifies I/O library calls; when nil a default matching
	// the discovery package's call set (HDF5, MPI-IO, stdio) is used.
	IsIOCall func(string) bool
}

// defaultIOPrefixes mirror the discovery package's I/O call set for
// standalone lint runs.
var defaultIOPrefixes = []string{"H5", "MPI_File", "fopen", "fclose", "fwrite", "fread", "fprintf", "fseek"}

// DefaultIsIOCall is the lint engine's default I/O classifier.
func DefaultIsIOCall(name string) bool {
	for _, p := range defaultIOPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// openCalls map file-opening calls to their closing counterparts for the
// unclosed-handle check.
var openCalls = map[string]string{
	"H5Fcreate": "H5Fclose", "H5Fopen": "H5Fclose", "fopen": "fclose",
}

// Lint analyzes a parsed file and returns diagnostics sorted by source
// line:
//
//   - IO001 (error): an I/O call in unreachable code — after a return,
//     break, continue, or a loop that never exits.
//   - IO002 (warning): a dataset write overwritten by a later write with
//     no intervening read (wasted I/O traffic).
//   - IO003 (warning): I/O inside a loop with no exit — the program never
//     finishes its I/O.
//   - IO004 (info): a declared variable that is never read.
//   - IO005 (warning): a local name shadows an I/O library call name,
//     which defeats name-based I/O discovery.
//   - IO006 (warning): a file handle that is opened but never closed in
//     its function (the tuner never sees the close barrier).
func Lint(f *csrc.File, opts LintOptions) []Diagnostic {
	isIO := opts.IsIOCall
	if isIO == nil {
		isIO = DefaultIsIOCall
	}
	l := &linter{file: f, isIO: isIO, locals: LocalNames(f)}
	for _, fn := range f.Funcs {
		l.lintFunc(fn)
	}
	l.unusedGlobals()
	l.signatureChecks()
	sort.SliceStable(l.diags, func(i, j int) bool { return l.diags[i].Line < l.diags[j].Line })
	return l.diags
}

type linter struct {
	file   *csrc.File
	isIO   func(string) bool
	locals map[string]map[string]bool
	diags  []Diagnostic
}

func (l *linter) add(code string, sev Severity, pos int, fn, format string, args ...interface{}) {
	l.diags = append(l.diags, Diagnostic{
		Code: code, Severity: sev, Line: pos, Func: fn,
		Message: fmt.Sprintf(format, args...),
	})
}

// ioCallsOf returns the I/O library calls a statement makes, shadowing
// aware.
func (l *linter) ioCallsOf(s csrc.Stmt, fn string) []string {
	var out []string
	for _, c := range stmtCalls(s) {
		if l.isIO(c) && !l.locals[fn][c] {
			out = append(out, c)
		}
	}
	return out
}

func (l *linter) lintFunc(fn *csrc.FuncDecl) {
	cfg := BuildCFG(fn)

	// IO001: I/O calls in unreachable blocks
	for _, b := range cfg.Blocks {
		if cfg.Reachable(b) {
			continue
		}
		for _, s := range b.Stmts {
			for _, c := range l.ioCallsOf(s, fn.Name) {
				l.add(CodeUnreachableIO, SevError, s.Base().Pos, fn.Name,
					"I/O call %s is unreachable", c)
			}
		}
	}

	// IO003: I/O inside loops that never exit
	for _, loop := range cfg.Loops {
		if !cfg.Reachable(loop.Header) || len(loop.After.Preds) > 0 {
			continue
		}
		var loopIO []string
		var body *csrc.Block
		switch st := loop.Stmt.(type) {
		case *csrc.ForStmt:
			body = st.Body
		case *csrc.WhileStmt:
			body = st.Body
		}
		walkStmtTree(body, func(s csrc.Stmt) {
			loopIO = append(loopIO, l.ioCallsOf(s, fn.Name)...)
		})
		if len(loopIO) > 0 {
			l.add(CodeUnboundedIOLoop, SevWarning, loop.Stmt.Base().Pos, fn.Name,
				"%s inside a loop that never exits", loopIO[0])
		}
	}

	// IO002 + IO004 + IO005 + IO006 via a single walk
	l.blindWrites(fn)
	l.unusedLocals(fn)
	l.shadowedNames(fn)
	l.unclosedHandles(fn)
}

// blindWrites reports write-after-write pairs per straight-line block,
// treating handle aliases (x = y copies) as the same dataset.
func (l *linter) blindWrites(fn *csrc.FuncDecl) {
	var visitBlock func(b *csrc.Block)
	visitBlock = func(b *csrc.Block) {
		if b == nil {
			return
		}
		type writeAt struct {
			idx int
			ds  string
			pos int
		}
		var writes []writeAt
		alias := newAliasSets()
		reads := map[int]string{} // stmt index -> dataset root read
		for i, s := range b.Stmts {
			switch st := s.(type) {
			case *csrc.Block:
				visitBlock(st)
				continue
			case *csrc.IfStmt:
				visitBlock(st.Then)
				visitBlock(st.Else)
				continue
			case *csrc.ForStmt:
				visitBlock(st.Body)
				continue
			case *csrc.WhileStmt:
				visitBlock(st.Body)
				continue
			case *csrc.DeclStmt:
				if id, ok := st.Init.(*csrc.Ident); ok {
					alias.union(st.Name, id.Name)
				}
			case *csrc.AssignStmt:
				if lhs, ok := st.LHS.(*csrc.Ident); ok && st.Op == "=" {
					if rhs, ok := st.RHS.(*csrc.Ident); ok {
						alias.union(lhs.Name, rhs.Name)
					}
				}
			case *csrc.ExprStmt:
				if c, ok := st.X.(*csrc.CallExpr); ok && len(c.Args) > 0 {
					ds := rootIdent(c.Args[0])
					if ds == "" {
						continue
					}
					switch c.Fun {
					case "H5Dwrite":
						writes = append(writes, writeAt{idx: i, ds: ds, pos: st.Pos})
					case "H5Dread":
						reads[i] = ds
					}
				}
			}
		}
		for wi := 0; wi+1 < len(writes); wi++ {
			for wj := wi + 1; wj < len(writes); wj++ {
				if !alias.same(writes[wi].ds, writes[wj].ds) {
					continue
				}
				blocked := false
				for ri, rds := range reads {
					if ri > writes[wi].idx && ri < writes[wj].idx && alias.same(rds, writes[wi].ds) {
						blocked = true
						break
					}
				}
				if !blocked {
					l.add(CodeWriteAfterWrite, SevWarning, writes[wi].pos, fn.Name,
						"write to dataset %q is overwritten at line %d before any read", writes[wi].ds, writes[wj].pos)
				}
				break
			}
		}
	}
	visitBlock(fn.Body)
}

// unusedLocals reports declared variables never read anywhere in the
// function.
func (l *linter) unusedLocals(fn *csrc.FuncDecl) {
	used := map[string]bool{}
	walkFuncStmts(fn, func(s csrc.Stmt) bool {
		du := StmtDefUse(s)
		for _, v := range du.Uses {
			used[v] = true
		}
		for _, d := range du.Defs {
			if !d.Strong {
				used[d.Var] = true // &x out-arguments imply the caller reads x later
			}
		}
		return true
	})
	walkFuncStmts(fn, func(s csrc.Stmt) bool {
		if d, ok := s.(*csrc.DeclStmt); ok && !used[d.Name] {
			l.add(CodeUnusedVariable, SevInfo, d.Pos, fn.Name,
				"variable %q is declared but never read", d.Name)
		}
		return true
	})
}

// shadowedNames reports locals whose name matches an I/O library call.
func (l *linter) shadowedNames(fn *csrc.FuncDecl) {
	for _, p := range fn.Params {
		if p.Name != "" && l.isIO(p.Name) {
			l.add(CodeShadowedIOName, SevWarning, fn.Body.Pos, fn.Name,
				"parameter %q shadows an I/O library name; calls through it are not I/O calls", p.Name)
		}
	}
	walkFuncStmts(fn, func(s csrc.Stmt) bool {
		if d, ok := s.(*csrc.DeclStmt); ok && l.isIO(d.Name) {
			l.add(CodeShadowedIOName, SevWarning, d.Pos, fn.Name,
				"local %q shadows an I/O library name; calls through it are not I/O calls", d.Name)
		}
		return true
	})
}

// unclosedHandles reports file handles opened but never closed within the
// function. Handles that escape (passed to a user function or returned)
// are skipped.
func (l *linter) unclosedHandles(fn *csrc.FuncDecl) {
	opened := map[string]csrc.Stmt{} // var -> opening stmt
	openCall := map[string]string{}  // var -> open call name
	closed := map[string]bool{}
	escaped := map[string]bool{}

	openTarget := func(s csrc.Stmt) (string, csrc.Expr) {
		switch st := s.(type) {
		case *csrc.DeclStmt:
			return st.Name, st.Init
		case *csrc.AssignStmt:
			if id, ok := st.LHS.(*csrc.Ident); ok && st.Op == "=" {
				return id.Name, st.RHS
			}
		}
		return "", nil
	}

	walkFuncStmts(fn, func(s csrc.Stmt) bool {
		if name, init := openTarget(s); name != "" {
			if c, ok := init.(*csrc.CallExpr); ok {
				if _, isOpen := openCalls[c.Fun]; isOpen && !l.locals[fn.Name][c.Fun] {
					opened[name] = s
					openCall[name] = c.Fun
				}
			}
		}
		for _, callee := range stmtCalls(s) {
			if close := closerOf(callee); close {
				switch st := s.(type) {
				case *csrc.ExprStmt:
					if c, ok := st.X.(*csrc.CallExpr); ok && len(c.Args) > 0 {
						if v := rootIdent(c.Args[0]); v != "" {
							closed[v] = true
						}
					}
				default:
					_ = st
				}
			}
			if l.file.Func(callee) != nil {
				for _, u := range StmtDefUse(s).Uses {
					escaped[u] = true
				}
			}
		}
		if r, ok := s.(*csrc.ReturnStmt); ok {
			for _, u := range csrc.ExprVars(r.X) {
				escaped[u] = true
			}
		}
		return true
	})

	var names []string
	for name := range opened {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !closed[name] && !escaped[name] {
			l.add(CodeUnclosedHandle, SevWarning, opened[name].Base().Pos, fn.Name,
				"handle %q from %s is never closed", name, openCall[name])
		}
	}
}

// closerOf reports whether the call is a file-closing call.
func closerOf(name string) bool {
	for _, c := range openCalls {
		if c == name {
			return true
		}
	}
	return false
}

// unusedGlobals reports globals never read anywhere in the file.
func (l *linter) unusedGlobals() {
	used := map[string]bool{}
	l.file.WalkStmts(func(s csrc.Stmt) bool {
		du := StmtDefUse(s)
		for _, v := range du.Uses {
			used[v] = true
		}
		for _, d := range du.Defs {
			if !d.Strong {
				used[d.Var] = true
			}
		}
		return true
	})
	for _, g := range l.file.Globals {
		if !used[g.Name] {
			l.add(CodeUnusedVariable, SevInfo, g.Pos, "",
				"global %q is declared but never read", g.Name)
		}
	}
}

// Thresholds for IO007: a transfer site must provably execute at least
// this many times, each moving at most this many bytes per rank, before
// the small-writes warning fires.
const (
	smallWriteTripMin  = 64
	smallWriteBytesMax = 4096
)

// signatureChecks runs the signature-derived rules over main's transfer
// sites: IO007 (a provably high-count loop of provably small transfers —
// a request-merging opportunity) and IO008 (the same dataset extent read
// and written on every iteration of one loop — a hoistable
// read-modify-write).
func (l *linter) signatureChecks() {
	sig := ComputeSignature(l.file, SignatureOptions{IsIOCall: l.isIO})
	for _, t := range sig.Transfers {
		if t.loopLine == 0 || !t.Write || t.Count == nil || t.RankBytes == nil {
			continue
		}
		n, okN := t.Count.Const()
		by, okB := t.RankBytes.Const()
		if okN && okB && n >= smallWriteTripMin && by > 0 && by <= smallWriteBytesMax {
			l.add(CodeSmallWritesInLoop, SevWarning, t.Line, "",
				"loop issues %d writes of %d bytes each; merging them would cut per-request overhead", n, by)
		}
	}
	type extent struct {
		loop int
		ds   int
		key  string
	}
	reads := map[extent]bool{}
	for _, t := range sig.Transfers {
		if t.loopLine != 0 && !t.Write && t.dsObj >= 0 && t.extentKey != "" && !t.loopDep {
			reads[extent{t.loopLine, t.dsObj, t.extentKey}] = true
		}
	}
	for _, t := range sig.Transfers {
		if t.loopLine == 0 || !t.Write || t.dsObj < 0 || t.extentKey == "" || t.loopDep {
			continue
		}
		if reads[extent{t.loopLine, t.dsObj, t.extentKey}] {
			l.add(CodeRepeatedExtentRMW, SevWarning, t.Line, "",
				"the same dataset extent is read and written on every iteration of the loop at line %d (read-modify-write could be hoisted)", t.loopLine)
		}
	}
}
