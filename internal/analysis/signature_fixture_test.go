package analysis_test

import (
	"testing"

	"tunio/internal/analysis"
	"tunio/internal/csrc"
	"tunio/internal/workload"
)

// TestFixtureSignatures pins the symbolic signature of each built-in
// fixture workload: every one must be exact (the abstract walker fully
// bounds its I/O), and the access pattern and total-volume expressions
// are part of the contract — a walker change that shifts them must be
// deliberate. Byte-for-byte agreement with recorded traces is asserted
// separately in internal/replay (TestCrossValidateFixtures).
func TestFixtureSignatures(t *testing.T) {
	cases := []struct {
		name         string
		pattern      string
		bytesWritten string
		bytesRead    string
	}{
		{"vpic", "block-cyclic", "16*4194304*nprocs", "0"},
		{"flash", "contiguous", "10*2097152*nprocs", "0"},
		{"hacc", "block-cyclic", "18*4194304*nprocs", "0"},
		{"macsio", "block-cyclic", "25*16777216*nprocs", "0"},
		{"bdcats", "mixed", "6*8388608*nprocs + 8388608*nprocs", "6*8388608*nprocs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, err := workload.ByName(tc.name, 4)
			if err != nil {
				t.Fatal(err)
			}
			cs, ok := w.(workload.HasCSource)
			if !ok {
				t.Fatalf("%s has no C source", tc.name)
			}
			f, err := csrc.Parse(cs.CSource())
			if err != nil {
				t.Fatal(err)
			}
			sig := analysis.ComputeSignature(f, analysis.SignatureOptions{})
			if !sig.Exact {
				t.Fatalf("signature inexact: %s", sig.Reason)
			}
			if sig.Pattern != tc.pattern {
				t.Errorf("pattern = %s, want %s", sig.Pattern, tc.pattern)
			}
			if got := sig.BytesWritten.String(); got != tc.bytesWritten {
				t.Errorf("bytes written = %s, want %s", got, tc.bytesWritten)
			}
			if got := sig.BytesRead.String(); got != tc.bytesRead {
				t.Errorf("bytes read = %s, want %s", got, tc.bytesRead)
			}
			if h := sig.Hash(); len(h) != 16 {
				t.Errorf("hash %q is not 16 hex chars", h)
			}
		})
	}
}
