// Package analysis is the static-analysis layer over the csrc AST: a
// per-function control-flow graph with dominators, classic dataflow
// analyses (reaching definitions, liveness, function purity summaries), a
// precise backward program slicer seeded at I/O calls, a transform-safety
// verifier for the discovery pipeline's source rewrites, and a lint engine
// that surfaces machine-checkable diagnostics about a program's I/O
// behavior.
//
// The discovery package's per-line fixpoint marker (the paper's §III-B
// marking loop) over-keeps statements because it reasons about variable
// *names*; the analyses here reason about def-use chains on the CFG, which
// lets the slicer prove a statement cannot influence any I/O call and drop
// it, and lets the verifier prove a source transform preserves the I/O
// request stream before it is applied.
package analysis

import (
	"fmt"
	"strings"

	"tunio/internal/csrc"
)

// Severity ranks diagnostics.
type Severity int

// Severity levels, ordered: an Error-level finding makes iolint exit
// non-zero.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", s.String())), nil
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	switch strings.Trim(string(data), `"`) {
	case "error":
		*s = SevError
	case "warning":
		*s = SevWarning
	case "info":
		*s = SevInfo
	default:
		return fmt.Errorf("analysis: unknown severity %s", data)
	}
	return nil
}

// Diagnostic codes emitted by Lint and VerifyTransforms.
const (
	// CodeUnreachableIO flags an I/O call that can never execute.
	CodeUnreachableIO = "IO001"
	// CodeWriteAfterWrite flags a dataset write overwritten before any read.
	CodeWriteAfterWrite = "IO002"
	// CodeUnboundedIOLoop flags I/O inside a loop with no exit.
	CodeUnboundedIOLoop = "IO003"
	// CodeUnusedVariable flags a declared variable that is never read.
	CodeUnusedVariable = "IO004"
	// CodeShadowedIOName flags a local that shadows an I/O library name.
	CodeShadowedIOName = "IO005"
	// CodeUnclosedHandle flags a file handle that is opened but never closed.
	CodeUnclosedHandle = "IO006"

	// CodeLoopBoundMutated reports (at error severity) that loop reduction
	// would rewrite a bound whose variables the loop body mutates — applying
	// the transform there is unsound, so CLIs exit non-zero on it.
	CodeLoopBoundMutated = "TR001"
	// CodeLoopCarriedIO warns that a reduced loop feeds values into I/O
	// arguments after the loop (reduction changes those values).
	CodeLoopCarriedIO = "TR002"
	// CodeComputedPath warns that path switching cannot rewrite a non-literal
	// path argument that string-constant propagation failed to resolve to a
	// proven constant (resolved arguments are switched and not flagged).
	CodeComputedPath = "TR003"
	// CodeAliasedHandle warns that blind-write removal saw a dataset handle
	// escape to a user function between candidate writes.
	CodeAliasedHandle = "TR004"
	// CodeIrreducibleLoop warns that an I/O loop has a shape loop reduction
	// cannot rewrite, so LoopScale under-counts the skipped loop.
	CodeIrreducibleLoop = "TR005"
	// CodeOutOfBoundsIndex reports (at error severity) an array index the
	// interval analysis proves entirely outside the array's bounds on a
	// reachable path.
	CodeOutOfBoundsIndex = "TR006"
	// CodeNonTerminatingIOLoop reports (at error severity) an I/O loop whose
	// induction variable provably moves away from its bound (or whose
	// condition variables are never modified), so the loop never exits.
	CodeNonTerminatingIOLoop = "TR007"
	// CodeVolumeChanged warns that a discovery transform changed the
	// kernel's symbolic I/O volume (total bytes written or read), so the
	// rewritten kernel no longer issues the original request stream.
	CodeVolumeChanged = "TR008"

	// CodeSmallWritesInLoop warns about transfers issued from a loop whose
	// trip count the bounds analysis proves high while each transfer is
	// provably small — a request-merging opportunity.
	CodeSmallWritesInLoop = "IO007"
	// CodeRepeatedExtentRMW warns that the same dataset extent is both read
	// and written on every iteration of a loop (a read-modify-write that
	// could be hoisted).
	CodeRepeatedExtentRMW = "IO008"
)

// Diagnostic is one structured finding with a source position.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// Line is the 1-based source line of the offending statement (the
	// parser's StmtBase.Pos).
	Line int `json:"line"`
	// Func names the enclosing function ("" at global scope).
	Func    string `json:"func,omitempty"`
	Message string `json:"message"`
}

// String renders the diagnostic in compiler-style one-line form.
func (d Diagnostic) String() string {
	loc := fmt.Sprintf("line %d", d.Line)
	if d.Func != "" {
		loc += ", " + d.Func
	}
	return fmt.Sprintf("%s: %s [%s]: %s", loc, d.Severity, d.Code, d.Message)
}

// MaxSeverity returns the highest severity among diagnostics (SevInfo for
// an empty slice).
func MaxSeverity(diags []Diagnostic) Severity {
	max := SevInfo
	for _, d := range diags {
		if d.Severity > max {
			max = d.Severity
		}
	}
	return max
}

// LocalNames returns, per function, the set of names declared inside it
// (parameters and local declarations at any depth). A call through a name
// in this set is a call through a local (e.g. a function pointer), not a
// call to the library function of the same name.
func LocalNames(f *csrc.File) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, fn := range f.Funcs {
		names := map[string]bool{}
		for _, p := range fn.Params {
			if p.Name != "" {
				names[p.Name] = true
			}
		}
		var walk func(b *csrc.Block)
		walk = func(b *csrc.Block) {
			if b == nil {
				return
			}
			for _, s := range b.Stmts {
				switch st := s.(type) {
				case *csrc.DeclStmt:
					names[st.Name] = true
				case *csrc.Block:
					walk(st)
				case *csrc.IfStmt:
					walk(st.Then)
					walk(st.Else)
				case *csrc.ForStmt:
					if d, ok := st.Init.(*csrc.DeclStmt); ok {
						names[d.Name] = true
					}
					walk(st.Body)
				case *csrc.WhileStmt:
					walk(st.Body)
				}
			}
		}
		walk(fn.Body)
		out[fn.Name] = names
	}
	return out
}
