package analysis

import "tunio/internal/csrc"

// VarDef is one variable definition site.
type VarDef struct {
	Var string
	// Strong definitions overwrite the whole variable and kill prior
	// definitions; weak ones (array element stores, writes through
	// pointers, &x output arguments of calls) may leave earlier
	// definitions visible.
	Strong bool
	// Arg marks a conjectured write through a bare call argument (no &):
	// the C subset carries no types, so an array or pointer passed by name
	// to an unknown function may be written through. Arg defs keep the
	// slicer sound, but diagnostics must not warn on them — most such
	// arguments (I/O handles, buffers being written out) are only read.
	Arg bool
}

// DefUse is the variables a statement defines and uses. For control
// headers (If/For/While) only the condition is considered: their bodies
// are separate statements, and a For header's Init/Post are analyzed as
// the standalone statements the CFG builder placed them in.
type DefUse struct {
	Defs []VarDef
	Uses []string
}

// rootIdent returns the base variable of an lvalue (a, a[i], *a, a[i][j]).
func rootIdent(e csrc.Expr) string {
	switch x := e.(type) {
	case *csrc.Ident:
		return x.Name
	case *csrc.IndexExpr:
		return rootIdent(x.X)
	case *csrc.UnaryExpr:
		return rootIdent(x.X)
	default:
		return ""
	}
}

// exprOutArgs returns variables a call expression tree may write through
// its arguments: explicit &x output arguments, and — because the C subset
// carries no type information — bare identifier arguments of any call not
// known to be side-effect-free (arrays and pointers decay to their name at
// the call site, so sprintf(name, ...) or fread(buf, ...) writes through a
// plain ident). Bare-ident writes are always weak: the callee may write
// all, part, or none of the object.
func exprOutArgs(e csrc.Expr) []VarDef {
	var out []VarDef
	csrc.WalkExpr(e, func(x csrc.Expr) bool {
		if c, ok := x.(*csrc.CallExpr); ok {
			argSafe := knownBuiltins[c.Fun]
			for _, a := range c.Args {
				switch arg := a.(type) {
				case *csrc.UnaryExpr:
					if arg.Op == "&" {
						if id, ok := arg.X.(*csrc.Ident); ok {
							out = append(out, VarDef{Var: id.Name})
						}
					}
				case *csrc.Ident:
					if !argSafe {
						out = append(out, VarDef{Var: arg.Name, Arg: true})
					}
				}
			}
		}
		return true
	})
	return out
}

// StmtDefUse computes the def/use sets of a single statement.
func StmtDefUse(s csrc.Stmt) DefUse {
	var du DefUse
	addUses := func(e csrc.Expr) {
		du.Uses = append(du.Uses, csrc.ExprVars(e)...)
		du.Defs = append(du.Defs, exprOutArgs(e)...)
	}
	switch st := s.(type) {
	case *csrc.DeclStmt:
		addUses(st.Init)
		if st.ArrayLen != nil {
			addUses(st.ArrayLen)
		}
		for _, e := range st.InitList {
			addUses(e)
		}
		du.Defs = append(du.Defs, VarDef{Var: st.Name, Strong: true})
	case *csrc.AssignStmt:
		if base := rootIdent(st.LHS); base != "" {
			_, plain := st.LHS.(*csrc.Ident)
			du.Defs = append(du.Defs, VarDef{Var: base, Strong: plain})
			if plain {
				if st.Op != "=" {
					// compound assignment and inc/dec read the prior value
					du.Uses = append(du.Uses, base)
				}
			} else {
				// array element / pointer stores read the base pointer and
				// all subscripts
				addUses(st.LHS)
			}
		} else {
			addUses(st.LHS)
		}
		addUses(st.RHS)
	case *csrc.ExprStmt:
		addUses(st.X)
	case *csrc.IfStmt:
		addUses(st.Cond)
	case *csrc.ForStmt:
		addUses(st.Cond)
	case *csrc.WhileStmt:
		addUses(st.Cond)
	case *csrc.ReturnStmt:
		addUses(st.X)
	}
	return du
}

// stmtCalls returns the function names called anywhere in the statement
// (headers: condition only).
func stmtCalls(s csrc.Stmt) []string {
	var exprs []csrc.Expr
	switch st := s.(type) {
	case *csrc.DeclStmt:
		exprs = append(exprs, st.Init, st.ArrayLen)
		for _, e := range st.InitList {
			exprs = append(exprs, e)
		}
	case *csrc.AssignStmt:
		exprs = append(exprs, st.LHS, st.RHS)
	case *csrc.ExprStmt:
		exprs = append(exprs, st.X)
	case *csrc.IfStmt:
		exprs = append(exprs, st.Cond)
	case *csrc.ForStmt:
		exprs = append(exprs, st.Cond)
	case *csrc.WhileStmt:
		exprs = append(exprs, st.Cond)
	case *csrc.ReturnStmt:
		exprs = append(exprs, st.X)
	}
	var out []string
	for _, e := range exprs {
		csrc.WalkExpr(e, func(x csrc.Expr) bool {
			if c, ok := x.(*csrc.CallExpr); ok {
				out = append(out, c.Fun)
			}
			return true
		})
	}
	return out
}
