package analysis

import "tunio/internal/csrc"

// SliceOptions configure the backward I/O slicer.
type SliceOptions struct {
	// IsIOCall classifies I/O library calls (the discovery package's call
	// set). Shadowing is handled inside the slicer: a call through a
	// locally-declared name is never an I/O seed.
	IsIOCall func(string) bool
	// KeepFuncs forces entire functions into the slice.
	KeepFuncs []string
}

// Slice computes a backward program slice seeded at the file's I/O calls,
// following def-use chains on each function's CFG instead of variable
// names. The result maps statement ID -> kept. The set is parent-closed
// (a kept statement's enclosing If/For/While headers are kept) and
// control-exit-closed (return/break/continue statements whose enclosing
// region is fully kept are kept, as dropping them would change control
// flow).
//
// Compared to the per-line fixpoint marker, the slicer prunes definitions
// that cannot reach any I/O use: dead re-definitions after the last I/O
// use of a variable, compute chains feeding only dropped statements, and
// calls shadowed by local names.
func Slice(f *csrc.File, opts SliceOptions) map[int]bool {
	s := &slicer{
		file:    f,
		opts:    opts,
		locals:  LocalNames(f),
		keep:    map[int]bool{},
		parent:  map[int]csrc.Stmt{},
		fnOf:    map[int]string{},
		stmts:   map[int]csrc.Stmt{},
		rd:      map[string]*ReachingDefs{},
		needed:  map[string]bool{},
		sites:   map[string][]csrc.Stmt{},
		globals: map[string][]csrc.Stmt{},
		returns: map[string][]csrc.Stmt{},
		exits:   map[string][]csrc.Stmt{},
		decls:   map[string]map[string][]*csrc.DeclStmt{},
	}
	s.sums = Summarize(f, opts.IsIOCall)
	s.collect()
	s.seed()
	s.run()
	return s.keep
}

type slicer struct {
	file   *csrc.File
	opts   SliceOptions
	locals map[string]map[string]bool
	sums   map[string]*FuncSummary

	keep   map[int]bool
	work   []csrc.Stmt
	parent map[int]csrc.Stmt // stmt ID -> enclosing structured stmt
	fnOf   map[int]string    // stmt ID -> enclosing function
	stmts  map[int]csrc.Stmt // registry, source order via order
	order  []int

	rd      map[string]*ReachingDefs
	needed  map[string]bool        // functions that must stay callable
	sites   map[string][]csrc.Stmt // user function -> call statements
	globals map[string][]csrc.Stmt // global var -> defining statements
	returns map[string][]csrc.Stmt // function -> return statements
	exits   map[string][]csrc.Stmt // function -> break/continue statements
	// decls maps function -> var -> declarations, so a kept use keeps the
	// declaration even when its initializer value is dead.
	decls map[string]map[string][]*csrc.DeclStmt
}

// shadowed reports whether name is declared locally in fn (so a call
// through it is not the library function).
func (s *slicer) shadowed(fn, name string) bool {
	return fn != "" && s.locals[fn][name]
}

// isIOStmt reports whether the statement makes a direct I/O library call.
func (s *slicer) isIOStmt(st csrc.Stmt, fn string) bool {
	for _, callee := range stmtCalls(st) {
		if s.opts.IsIOCall(callee) && !s.shadowed(fn, callee) {
			return true
		}
	}
	return false
}

func (s *slicer) collect() {
	var visit func(st csrc.Stmt, parent csrc.Stmt, fn string)
	visitBlock := func(b *csrc.Block, parent csrc.Stmt, fn string) {
		if b == nil {
			return
		}
		for _, st := range b.Stmts {
			visit(st, parent, fn)
		}
	}
	visit = func(st csrc.Stmt, parent csrc.Stmt, fn string) {
		if st == nil {
			return
		}
		id := st.Base().ID
		s.stmts[id] = st
		s.order = append(s.order, id)
		s.parent[id] = parent
		s.fnOf[id] = fn

		// global definitions and call sites
		for _, d := range StmtDefUse(st).Defs {
			if !s.locals[fn][d.Var] {
				s.globals[d.Var] = append(s.globals[d.Var], st)
			}
		}
		if d, ok := st.(*csrc.DeclStmt); ok && fn != "" {
			if s.decls[fn] == nil {
				s.decls[fn] = map[string][]*csrc.DeclStmt{}
			}
			s.decls[fn][d.Name] = append(s.decls[fn][d.Name], d)
		}
		for _, callee := range stmtCalls(st) {
			if s.shadowed(fn, callee) {
				continue
			}
			if s.file.Func(callee) != nil {
				s.sites[callee] = append(s.sites[callee], st)
			}
		}

		switch x := st.(type) {
		case *csrc.ReturnStmt:
			s.returns[fn] = append(s.returns[fn], st)
		case *csrc.BreakStmt, *csrc.ContinueStmt:
			s.exits[fn] = append(s.exits[fn], st)
		case *csrc.Block:
			visitBlock(x, x, fn)
		case *csrc.IfStmt:
			visitBlock(x.Then, x, fn)
			visitBlock(x.Else, x, fn)
		case *csrc.ForStmt:
			if x.Init != nil {
				visit(x.Init, x, fn)
			}
			if x.Post != nil {
				visit(x.Post, x, fn)
			}
			visitBlock(x.Body, x, fn)
		case *csrc.WhileStmt:
			visitBlock(x.Body, x, fn)
		}
	}

	for _, g := range s.file.Globals {
		visit(g, nil, "")
	}
	for _, fn := range s.file.Funcs {
		visitBlock(fn.Body, nil, fn.Name)
		s.rd[fn.Name] = NewReachingDefs(BuildCFG(fn))
	}
}

func (s *slicer) push(st csrc.Stmt) {
	if st == nil {
		return
	}
	id := st.Base().ID
	if s.keep[id] {
		return
	}
	s.keep[id] = true
	s.work = append(s.work, st)
}

func (s *slicer) seed() {
	keepAll := map[string]bool{}
	for _, k := range s.opts.KeepFuncs {
		keepAll[k] = true
	}
	for _, id := range s.order {
		st := s.stmts[id]
		fn := s.fnOf[id]
		if keepAll[fn] || s.isIOStmt(st, fn) {
			s.push(st)
		}
	}
}

func (s *slicer) run() {
	for {
		for len(s.work) > 0 {
			st := s.work[len(s.work)-1]
			s.work = s.work[:len(s.work)-1]
			s.process(st)
		}
		// control-exit closure: keep return/break/continue whose enclosing
		// region is fully kept; processing them may unlock further work
		if !s.closeControlExits() {
			return
		}
	}
}

func (s *slicer) process(st csrc.Stmt) {
	id := st.Base().ID
	fn := s.fnOf[id]

	// control context: enclosing headers must be kept
	s.push(s.parent[id])

	// a loop header needs its init/post to execute
	if f, ok := st.(*csrc.ForStmt); ok {
		s.push(f.Init)
		s.push(f.Post)
	}

	// the enclosing function must stay callable
	s.needFunc(fn)

	// data dependences: definitions that may reach each use
	var du DefUse
	rd := s.rd[fn]
	if rd != nil {
		du = rd.DefUseOf(st)
		if len(du.Defs) == 0 && len(du.Uses) == 0 {
			du = StmtDefUse(st)
		}
	} else {
		du = StmtDefUse(st) // global declarations
	}
	for _, v := range du.Uses {
		s.pushDefs(rd, st, fn, v)
	}
	// weak defs merge into prior contents: their earlier definitions must
	// exist for the merged value to be right
	for _, d := range du.Defs {
		if !d.Strong {
			s.pushDefs(rd, st, fn, d.Var)
		}
	}

	// user functions called here must stay defined and correct
	for _, callee := range stmtCalls(st) {
		if s.shadowed(fn, callee) {
			continue
		}
		if s.file.Func(callee) != nil {
			s.needFunc(callee)
		}
	}
}

// pushDefs keeps the definitions of v that may flow into st, plus v's
// declaration (required for the kernel to stay compilable even when the
// initializer's value is dead).
func (s *slicer) pushDefs(rd *ReachingDefs, st csrc.Stmt, fn, v string) {
	if s.locals[fn][v] {
		for _, d := range rd.Reaching(st, v) {
			s.push(d)
		}
		for _, d := range s.decls[fn][v] {
			s.push(d)
		}
	} else {
		for _, d := range s.globals[v] {
			s.push(d)
		}
	}
}

// needFunc records that a function must remain in the kernel: its call
// sites execute it (side effects stay ordered) and its return statements
// produce its value.
func (s *slicer) needFunc(name string) {
	if name == "" || s.needed[name] {
		return
	}
	s.needed[name] = true
	for _, st := range s.sites[name] {
		s.push(st)
	}
	for _, st := range s.returns[name] {
		s.push(st)
	}
}

// closeControlExits keeps break/continue statements whose whole ancestor
// chain is kept inside needed functions. Returns whether anything changed.
func (s *slicer) closeControlExits() bool {
	changed := false
	for fn, exits := range s.exits {
		if fn != "" && !s.needed[fn] {
			continue
		}
		for _, st := range exits {
			id := st.Base().ID
			if s.keep[id] {
				continue
			}
			kept := true
			for p := s.parent[id]; p != nil; p = s.parent[p.Base().ID] {
				if !s.keep[p.Base().ID] {
					kept = false
					break
				}
			}
			if kept {
				s.push(st)
				changed = true
			}
		}
	}
	return changed
}
