package analysis

import (
	"strings"
	"testing"
)

func boundsDiags(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return BoundsDiagnostics(mustParse(t, src), nil)
}

func TestTR006ProvableOOBIndex(t *testing.T) {
	src := `int main() {
    double a[4];
    int i = 5;
    a[i] = 1.0;
    return 0;
}`
	got := findCode(boundsDiags(t, src), CodeOutOfBoundsIndex)
	if len(got) != 1 {
		t.Fatalf("want one TR006, got %v", got)
	}
	if got[0].Line != 4 || got[0].Severity != SevError {
		t.Errorf("TR006 = %+v, want error at line 4", got[0])
	}
	if !strings.Contains(got[0].Message, `"a"`) {
		t.Errorf("message should name the array: %s", got[0].Message)
	}
}

func TestTR006NegativeIndex(t *testing.T) {
	src := `int main() {
    double a[4];
    int i = 0 - 2;
    a[i] = 1.0;
    return 0;
}`
	if got := findCode(boundsDiags(t, src), CodeOutOfBoundsIndex); len(got) != 1 {
		t.Fatalf("want one TR006 for a negative index, got %v", got)
	}
}

func TestTR006InBoundsLoopIndexNotFlagged(t *testing.T) {
	src := `int main() {
    double a[4];
    int i;
    for (i = 0; i < 4; i++) {
        a[i] = 1.0;
    }
    return 0;
}`
	if got := findCode(boundsDiags(t, src), CodeOutOfBoundsIndex); len(got) != 0 {
		t.Errorf("in-bounds loop index flagged: %v", got)
	}
}

func TestTR006UnknownIndexNotFlagged(t *testing.T) {
	// An index the analysis cannot bound is ⊤: it may be in range, so no
	// diagnostic fires (the check only reports provable violations).
	src := `int main() {
    double a[4];
    int i = get_index();
    a[i] = 1.0;
    return 0;
}`
	if got := findCode(boundsDiags(t, src), CodeOutOfBoundsIndex); len(got) != 0 {
		t.Errorf("unbounded index flagged: %v", got)
	}
}

func TestTR006ShadowedRedeclarationNotFlagged(t *testing.T) {
	// Block scoping re-declares "start" with a different length; the
	// name-keyed length map cannot tell the two apart, so the name must
	// be treated as ambiguous rather than checked against either length
	// (this is the BDCATS fixture shape: start[2] in a loop, start[1]
	// later at function scope).
	src := `int main() {
    int i;
    for (i = 0; i < 4; i++) {
        double start[2];
        start[1] = 5.0;
    }
    double start[1];
    start[0] = 1.0;
    return 0;
}`
	if got := findCode(boundsDiags(t, src), CodeOutOfBoundsIndex); len(got) != 0 {
		t.Errorf("shadowed redeclaration flagged: %v", got)
	}
}

func TestTR007DivergingForLoop(t *testing.T) {
	src := `int main() {
    int i;
    char buf[16];
    FILE* fp = fopen("/scratch/x.bin", "w");
    for (i = 0; i < 8; i--) {
        fwrite(buf, 4, 1, fp);
    }
    fclose(fp);
    return 0;
}`
	got := findCode(boundsDiags(t, src), CodeNonTerminatingIOLoop)
	if len(got) != 1 {
		t.Fatalf("want one TR007, got %v", got)
	}
	if got[0].Line != 5 || got[0].Severity != SevError {
		t.Errorf("TR007 = %+v, want error at line 5", got[0])
	}
}

func TestTR007ConditionNeverModified(t *testing.T) {
	src := `int main() {
    int n = 4;
    int i = 0;
    char buf[16];
    FILE* fp = fopen("/scratch/x.bin", "w");
    for (i = 0; i < n; ) {
        fwrite(buf, 4, 1, fp);
    }
    fclose(fp);
    return 0;
}`
	if got := findCode(boundsDiags(t, src), CodeNonTerminatingIOLoop); len(got) != 1 {
		t.Fatalf("want one TR007 for untouched condition variables, got %v", got)
	}
}

func TestTR007WellFormedLoopNotFlagged(t *testing.T) {
	src := `int main() {
    int i;
    char buf[16];
    FILE* fp = fopen("/scratch/x.bin", "w");
    for (i = 0; i < 8; i++) {
        fwrite(buf, 4, 1, fp);
    }
    fclose(fp);
    return 0;
}`
	if got := findCode(boundsDiags(t, src), CodeNonTerminatingIOLoop); len(got) != 0 {
		t.Errorf("terminating loop flagged: %v", got)
	}
}

func TestTR007LoopWithoutIONotFlagged(t *testing.T) {
	// Divergence without I/O is not TR007's business (the loop may be a
	// deliberate spin); only I/O loops are checked.
	src := `int main() {
    int i;
    int acc = 0;
    for (i = 0; i < 8; i--) {
        acc = acc + 1;
    }
    return 0;
}`
	if got := findCode(boundsDiags(t, src), CodeNonTerminatingIOLoop); len(got) != 0 {
		t.Errorf("compute-only loop flagged: %v", got)
	}
}

func TestTR007BreakSuppresses(t *testing.T) {
	src := `int main() {
    int i;
    char buf[16];
    FILE* fp = fopen("/scratch/x.bin", "w");
    for (i = 0; i < 8; i--) {
        fwrite(buf, 4, 1, fp);
        if (i < 0 - 100) {
            break;
        }
    }
    fclose(fp);
    return 0;
}`
	if got := findCode(boundsDiags(t, src), CodeNonTerminatingIOLoop); len(got) != 0 {
		t.Errorf("loop with a break flagged: %v", got)
	}
}
