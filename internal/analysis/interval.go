package analysis

import (
	"fmt"
	"math"
	"strings"

	"tunio/internal/csrc"
)

// Integer interval analysis: a forward abstract interpretation over each
// function's CFG that bounds, per program point, the value of every integer
// local. The domain is the classic interval lattice — possibly unbounded on
// either side — with widening at loop headers (so the infinite ascending
// chains of the domain terminate) followed by a bounded narrowing pass that
// recovers finite loop bounds the widening threw away. Conditional edges
// refine the intervals flowing along them (the true edge of i < n clamps i
// below n), which is what turns loop conditions into trip-count facts.
//
// The pass is interprocedural through per-function summaries mirroring the
// constprop pass: paramIv joins the abstract arguments of every call site
// and retIv joins the values of every reachable return. Summaries start at
// ⊤ (sound from round one) and are re-derived for a bounded number of
// rounds; whatever round they stop in, a final per-function pass records
// statement envs consistent with the last summaries, so the recorded facts
// are always sound — extra rounds only sharpen them.
//
// The trip-count analysis (bounds.go), the I/O signature builder
// (signature.go), and the TR006/TR007 verifier checks are all clients.

// Interval is a set of int64 values {v | Lo <= v <= Hi}, either bound
// optionally missing. Normal form: when Empty is set every other field is
// zero, and when LoUnb (resp. HiUnb) is set Lo (resp. Hi) is zero — so ==
// compares abstract values, not representations. Build intervals with the
// constructors; the zero value is the single point 0, not ⊤.
type Interval struct {
	Empty        bool
	LoUnb, HiUnb bool
	Lo, Hi       int64
}

// TopInterval returns the full range (no information).
func TopInterval() Interval { return Interval{LoUnb: true, HiUnb: true} }

// EmptyInterval returns ⊥, the empty set (unreached / infeasible).
func EmptyInterval() Interval { return Interval{Empty: true} }

// ConstInterval returns the single point v.
func ConstInterval(v int64) Interval { return Interval{Lo: v, Hi: v} }

// RangeInterval returns [lo, hi]; lo > hi yields the empty interval.
func RangeInterval(lo, hi int64) Interval {
	if lo > hi {
		return EmptyInterval()
	}
	return Interval{Lo: lo, Hi: hi}
}

// ivBound is one interval endpoint: inf is -1 for -∞, +1 for +∞, 0 finite.
type ivBound struct {
	inf int
	v   int64
}

var (
	negInfB = ivBound{inf: -1}
	posInfB = ivBound{inf: +1}
)

func finiteB(v int64) ivBound { return ivBound{v: v} }

func (i Interval) lob() ivBound {
	if i.LoUnb {
		return negInfB
	}
	return finiteB(i.Lo)
}

func (i Interval) hib() ivBound {
	if i.HiUnb {
		return posInfB
	}
	return finiteB(i.Hi)
}

// cmpB orders bounds: -1, 0, +1 as a < b, a == b, a > b.
func cmpB(a, b ivBound) int {
	if a.inf != b.inf {
		if a.inf < b.inf {
			return -1
		}
		return 1
	}
	if a.inf != 0 || a.v == b.v {
		return 0
	}
	if a.v < b.v {
		return -1
	}
	return 1
}

func minB(a, b ivBound) ivBound {
	if cmpB(a, b) <= 0 {
		return a
	}
	return b
}

func maxB(a, b ivBound) ivBound {
	if cmpB(a, b) >= 0 {
		return a
	}
	return b
}

// fromBounds builds a normal-form interval; an inverted pair is empty.
func fromBounds(lo, hi ivBound) Interval {
	if lo.inf > 0 || hi.inf < 0 || (lo.inf == 0 && hi.inf == 0 && lo.v > hi.v) {
		return EmptyInterval()
	}
	out := Interval{}
	if lo.inf < 0 {
		out.LoUnb = true
	} else {
		out.Lo = lo.v
	}
	if hi.inf > 0 {
		out.HiUnb = true
	} else {
		out.Hi = hi.v
	}
	return out
}

// IsTop reports whether the interval carries no information.
func (i Interval) IsTop() bool { return !i.Empty && i.LoUnb && i.HiUnb }

// IsConst reports the single value the interval holds, if exactly one.
func (i Interval) IsConst() (int64, bool) {
	if i.Empty || i.LoUnb || i.HiUnb || i.Lo != i.Hi {
		return 0, false
	}
	return i.Lo, true
}

// Contains reports whether v is a member.
func (i Interval) Contains(v int64) bool {
	if i.Empty {
		return false
	}
	return (i.LoUnb || i.Lo <= v) && (i.HiUnb || v <= i.Hi)
}

// ContainsInterval reports whether every member of o is a member of i.
func (i Interval) ContainsInterval(o Interval) bool {
	if o.Empty {
		return true
	}
	if i.Empty {
		return false
	}
	return cmpB(i.lob(), o.lob()) <= 0 && cmpB(i.hib(), o.hib()) >= 0
}

// String renders the interval for diagnostics: "[0, 7]", "[8, +inf)", "{}".
func (i Interval) String() string {
	if i.Empty {
		return "{}"
	}
	var b strings.Builder
	if i.LoUnb {
		b.WriteString("(-inf, ")
	} else {
		fmt.Fprintf(&b, "[%d, ", i.Lo)
	}
	if i.HiUnb {
		b.WriteString("+inf)")
	} else {
		fmt.Fprintf(&b, "%d]", i.Hi)
	}
	return b.String()
}

// JoinIntervals returns the convex hull of a and b (the lattice join).
func JoinIntervals(a, b Interval) Interval {
	if a.Empty {
		return b
	}
	if b.Empty {
		return a
	}
	return fromBounds(minB(a.lob(), b.lob()), maxB(a.hib(), b.hib()))
}

// MeetIntervals returns the intersection of a and b (the lattice meet).
func MeetIntervals(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return EmptyInterval()
	}
	return fromBounds(maxB(a.lob(), b.lob()), minB(a.hib(), b.hib()))
}

// WidenInterval is the standard interval widening: a bound of next that
// grew past prev jumps to infinity, a stable bound keeps prev's value. The
// result contains both operands and WidenInterval(WidenInterval(a,b), b)
// == WidenInterval(a,b), which is what bounds the ascending iteration.
func WidenInterval(prev, next Interval) Interval {
	if prev.Empty {
		return next
	}
	if next.Empty {
		return prev
	}
	lo := prev.lob()
	if cmpB(next.lob(), lo) < 0 {
		lo = negInfB
	}
	hi := prev.hib()
	if cmpB(next.hib(), hi) > 0 {
		hi = posInfB
	}
	return fromBounds(lo, hi)
}

// NarrowInterval refines prev's unbounded ends with next's bounds (the
// standard narrowing): finite bounds won by the ascending phase are kept.
func NarrowInterval(prev, next Interval) Interval {
	if prev.Empty || next.Empty {
		return next
	}
	lo := prev.lob()
	if prev.LoUnb {
		lo = next.lob()
	}
	hi := prev.hib()
	if prev.HiUnb {
		hi = next.hib()
	}
	return fromBounds(lo, hi)
}

// --- saturating bound arithmetic -------------------------------------------

// addB adds two bounds; a finite overflow escapes to the infinity matching
// the overflow direction, which is sound for either endpoint.
func addB(a, b ivBound) ivBound {
	if a.inf != 0 {
		return a
	}
	if b.inf != 0 {
		return b
	}
	s := a.v + b.v
	if a.v > 0 && b.v > 0 && s < 0 {
		return posInfB
	}
	if a.v < 0 && b.v < 0 && s >= 0 {
		return negInfB
	}
	return finiteB(s)
}

func negB(a ivBound) ivBound {
	if a.inf != 0 {
		return ivBound{inf: -a.inf}
	}
	if a.v == math.MinInt64 {
		return posInfB
	}
	return finiteB(-a.v)
}

// addInterval returns {x+y | x ∈ a, y ∈ b}.
func addInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return EmptyInterval()
	}
	return fromBounds(addB(a.lob(), b.lob()), addB(a.hib(), b.hib()))
}

// subInterval returns {x-y | x ∈ a, y ∈ b}.
func subInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return EmptyInterval()
	}
	return fromBounds(addB(a.lob(), negB(b.hib())), addB(a.hib(), negB(b.lob())))
}

func negInterval(a Interval) Interval {
	if a.Empty {
		return a
	}
	return fromBounds(negB(a.hib()), negB(a.lob()))
}

// mulInterval returns the hull of the endpoint products; any overflow
// falls back to ⊤ (sound, and rare in real bounds).
func mulInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return EmptyInterval()
	}
	bounds := [2]ivBound{}
	first := true
	for _, x := range [2]ivBound{a.lob(), a.hib()} {
		for _, y := range [2]ivBound{b.lob(), b.hib()} {
			p, ok := mulB(x, y)
			if !ok {
				return TopInterval()
			}
			if first {
				bounds[0], bounds[1] = p, p
				first = false
			} else {
				bounds[0] = minB(bounds[0], p)
				bounds[1] = maxB(bounds[1], p)
			}
		}
	}
	return fromBounds(bounds[0], bounds[1])
}

// mulB multiplies two bounds; 0 × ∞ is 0 (the interval convention).
func mulB(a, b ivBound) (ivBound, bool) {
	if a.inf == 0 && a.v == 0 {
		return finiteB(0), true
	}
	if b.inf == 0 && b.v == 0 {
		return finiteB(0), true
	}
	sign := func(x ivBound) int {
		if x.inf != 0 {
			return x.inf
		}
		if x.v > 0 {
			return 1
		}
		return -1
	}
	if a.inf != 0 || b.inf != 0 {
		return ivBound{inf: sign(a) * sign(b)}, true
	}
	p := a.v * b.v
	if p/b.v != a.v {
		return ivBound{}, false
	}
	return finiteB(p), true
}

// divInterval models C truncated division conservatively: a divisor whose
// interval touches zero, or mixed infinite shapes, yield ⊤.
func divInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return EmptyInterval()
	}
	if b.Contains(0) {
		return TopInterval()
	}
	if c, ok := b.IsConst(); ok {
		// a constant divisor keeps monotone shape even on unbounded a
		lo, hi := divB(a.lob(), c), divB(a.hib(), c)
		if c < 0 {
			lo, hi = hi, lo
		}
		return fromBounds(lo, hi)
	}
	if a.LoUnb || a.HiUnb || b.LoUnb || b.HiUnb {
		return TopInterval()
	}
	vals := []int64{a.Lo / b.Lo, a.Lo / b.Hi, a.Hi / b.Lo, a.Hi / b.Hi}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return RangeInterval(lo, hi)
}

func divB(a ivBound, c int64) ivBound {
	if a.inf != 0 {
		if c < 0 {
			return ivBound{inf: -a.inf}
		}
		return a
	}
	if a.v == math.MinInt64 && c == -1 {
		return posInfB
	}
	return finiteB(a.v / c)
}

// modInterval models C remainder: exact on constants, [0, c-1] when the
// dividend is provably non-negative and the divisor a positive constant.
func modInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return EmptyInterval()
	}
	av, aok := a.IsConst()
	bv, bok := b.IsConst()
	if aok && bok && bv != 0 {
		return ConstInterval(av % bv)
	}
	if bok && bv > 0 && !a.LoUnb && a.Lo >= 0 {
		return RangeInterval(0, bv-1)
	}
	return TopInterval()
}

// --- dataflow environment ---------------------------------------------------

// ivEnv maps variable names to intervals; a missing key is ⊤.
type ivEnv map[string]Interval

func (e ivEnv) get(v string) Interval {
	if iv, ok := e[v]; ok {
		return iv
	}
	return TopInterval()
}

// set stores iv, dropping ⊤ entries to keep the maps comparable.
func (e ivEnv) set(v string, iv Interval) {
	if iv.IsTop() {
		delete(e, v)
		return
	}
	e[v] = iv
}

func (e ivEnv) clone() ivEnv {
	out := make(ivEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// joinIvEnv joins pointwise; a key missing on either side is ⊤ and stays ⊤.
func joinIvEnv(a, b ivEnv) ivEnv {
	out := make(ivEnv)
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out.set(k, JoinIntervals(va, vb))
		}
	}
	return out
}

// widenIvEnv widens pointwise against the previous header input.
func widenIvEnv(prev, next ivEnv) ivEnv {
	out := make(ivEnv)
	for k, pv := range prev {
		if nv, ok := next[k]; ok {
			out.set(k, WidenInterval(pv, nv))
		}
	}
	return out
}

// narrowIvEnv narrows pointwise; keys the recomputation lost keep their
// ascending-phase value (still an over-approximation).
func narrowIvEnv(prev, next ivEnv) ivEnv {
	out := make(ivEnv)
	for k, nv := range next {
		out.set(k, NarrowInterval(prev.get(k), nv))
	}
	for k, pv := range prev {
		if _, ok := next[k]; !ok {
			out.set(k, pv)
		}
	}
	return out
}

func sameIvEnv(a, b ivEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// --- the analysis -----------------------------------------------------------

// Intervals is the computed interval analysis for one file. Build it with
// NewIntervals and query program points with At.
type Intervals struct {
	file   *csrc.File
	locals map[string]map[string]bool

	// globalInt holds file-scope integers provably constant for the whole
	// run: a foldable initializer and no definition anywhere else.
	globalInt map[string]int64

	// interprocedural summaries, re-derived for a bounded number of rounds
	paramIv map[string][]Interval
	retIv   map[string]Interval

	stmtIn map[int]ivEnv  // statement ID -> env just before it
	stmtFn map[int]string // statement ID -> enclosing function

	callSites map[string][]callSite
	returns   map[string][]*csrc.ReturnStmt
}

// NewIntervals runs the analysis over a parsed file.
func NewIntervals(f *csrc.File) *Intervals {
	p := &Intervals{
		file:      f,
		locals:    LocalNames(f),
		globalInt: map[string]int64{},
		paramIv:   map[string][]Interval{},
		retIv:     map[string]Interval{},
		callSites: map[string][]callSite{},
		returns:   map[string][]*csrc.ReturnStmt{},
	}
	p.collectGlobalInts()
	p.collectSites()
	for _, fn := range f.Funcs {
		pv := make([]Interval, len(fn.Params))
		for i := range pv {
			pv[i] = TopInterval()
		}
		p.paramIv[fn.Name] = pv
		p.retIv[fn.Name] = TopInterval()
	}

	// Summaries start at ⊤, so every round's facts are sound under the
	// previous round's summaries (round zero trivially so). Re-deriving can
	// only exploit — never depend on — unsound information; the cap merely
	// stops refinement, after which one more pass records statement envs
	// consistent with whatever the summaries last were.
	maxRounds := len(f.Funcs) + 4
	for round := 0; round < maxRounds; round++ {
		p.analyzeAll()
		if !p.updateSummaries() {
			return p
		}
	}
	p.analyzeAll()
	return p
}

func (p *Intervals) analyzeAll() {
	p.stmtIn = map[int]ivEnv{}
	p.stmtFn = map[int]string{}
	for _, fn := range p.file.Funcs {
		p.analyzeFunc(fn)
	}
}

// At returns the interval of e just before s executes. Statements the
// analysis proved unreachable report the empty interval.
func (p *Intervals) At(s csrc.Stmt, e csrc.Expr) Interval {
	if s == nil {
		return TopInterval()
	}
	id := s.Base().ID
	envAt, ok := p.stmtIn[id]
	if !ok {
		return EmptyInterval()
	}
	return p.eval(e, envAt, p.stmtFn[id])
}

// GlobalConstInt reports a file-scope integer constant.
func (p *Intervals) GlobalConstInt(name string) (int64, bool) {
	v, ok := p.globalInt[name]
	return v, ok
}

func (p *Intervals) collectGlobalInts() {
	redefined := map[string]bool{}
	for _, fn := range p.file.Funcs {
		loc := p.locals[fn.Name]
		walkFuncStmts(fn, func(s csrc.Stmt) bool {
			for _, v := range clobberedNames(p.locals, s, fn.Name) {
				if !loc[v] {
					redefined[v] = true
				}
			}
			return true
		})
	}
	for _, g := range p.file.Globals {
		if redefined[g.Name] || g.Init == nil || g.ArrayLen != nil || g.InitList != nil {
			continue
		}
		if n, ok := foldInt(g.Init); ok {
			p.globalInt[g.Name] = n
		}
	}
}

func (p *Intervals) collectSites() {
	for _, fn := range p.file.Funcs {
		walkFuncStmts(fn, func(s csrc.Stmt) bool {
			if r, ok := s.(*csrc.ReturnStmt); ok {
				p.returns[fn.Name] = append(p.returns[fn.Name], r)
			}
			for _, x := range stmtExprs(s) {
				csrc.WalkExpr(x, func(node csrc.Expr) bool {
					c, ok := node.(*csrc.CallExpr)
					if !ok {
						return true
					}
					if p.file.Func(c.Fun) != nil && !p.locals[fn.Name][c.Fun] {
						p.callSites[c.Fun] = append(p.callSites[c.Fun], callSite{stmt: s, fn: fn.Name, call: c})
					}
					return true
				})
			}
			return true
		})
	}
}

// updateSummaries re-derives the interprocedural summaries from the
// recorded envs and reports whether anything changed.
func (p *Intervals) updateSummaries() bool {
	changed := false
	for _, fn := range p.file.Funcs {
		ret := EmptyInterval()
		for _, r := range p.returns[fn.Name] {
			envAt, ok := p.stmtIn[r.Base().ID]
			if !ok {
				continue // unreachable return does not execute
			}
			if r.X == nil {
				ret = TopInterval()
				break
			}
			ret = JoinIntervals(ret, p.eval(r.X, envAt, fn.Name))
		}
		if ret.Empty {
			ret = TopInterval() // no reachable value-returning return
		}
		if p.retIv[fn.Name] != ret {
			p.retIv[fn.Name] = ret
			changed = true
		}

		sites := p.callSites[fn.Name]
		pv := p.paramIv[fn.Name]
		for i := range pv {
			v := EmptyInterval()
			if len(sites) == 0 {
				v = TopInterval() // never called from this file (e.g. main)
			}
			for _, cs := range sites {
				if i >= len(cs.call.Args) {
					v = TopInterval()
					break
				}
				envAt, ok := p.stmtIn[cs.stmt.Base().ID]
				if !ok {
					continue // unreachable call site
				}
				v = JoinIntervals(v, p.eval(cs.call.Args[i], envAt, cs.fn))
			}
			if v.Empty {
				v = TopInterval()
			}
			if pv[i] != v {
				pv[i] = v
				changed = true
			}
		}
	}
	return changed
}

// analyzeFunc runs the forward dataflow over one function: an ascending
// phase with widening at loop headers, two narrowing rounds, then a
// recording pass for the per-statement envs.
func (p *Intervals) analyzeFunc(fn *csrc.FuncDecl) {
	cfg := BuildCFG(fn)

	entry := ivEnv{}
	for i, prm := range fn.Params {
		if prm.Name == "" {
			continue
		}
		if pv := p.paramIv[fn.Name]; i < len(pv) {
			entry.set(prm.Name, pv[i])
		}
	}

	headers := map[int]bool{}
	for _, l := range cfg.Loops {
		headers[l.Header.ID] = true
	}

	in := map[int]ivEnv{}
	out := map[int]ivEnv{}
	visits := map[int]int{}
	rpo := cfg.reversePostorder()

	pass := func(widen, narrow bool) bool {
		changed := false
		for _, b := range rpo {
			blockIn := p.blockInput(cfg, b, entry, out, fn.Name)
			if headers[b.ID] {
				if prev, ok := in[b.ID]; ok {
					if widen {
						visits[b.ID]++
						if visits[b.ID] >= 2 {
							blockIn = widenIvEnv(prev, blockIn)
						}
					} else if narrow {
						blockIn = narrowIvEnv(prev, blockIn)
					}
				}
			}
			cur := blockIn.clone()
			for _, s := range b.Stmts {
				p.transfer(cur, s, fn.Name)
			}
			if !sameIvEnv(in[b.ID], blockIn) || !sameIvEnv(out[b.ID], cur) {
				changed = true
			}
			in[b.ID], out[b.ID] = blockIn, cur
		}
		return changed
	}
	for pass(true, false) {
	}
	pass(false, true)
	pass(false, true)

	for _, b := range cfg.Blocks {
		blockIn, ok := in[b.ID]
		if !ok {
			continue // unreachable block
		}
		cur := blockIn.clone()
		for _, s := range b.Stmts {
			id := s.Base().ID
			p.stmtIn[id] = cur.clone()
			p.stmtFn[id] = fn.Name
			p.transfer(cur, s, fn.Name)
		}
	}
}

// blockInput joins the refined outputs of the computed predecessors;
// infeasible edges (refinement emptied a value, or the branch condition is
// decidably wrong for the edge) contribute nothing.
func (p *Intervals) blockInput(cfg *CFG, b *BasicBlock, entry ivEnv, out map[int]ivEnv, fn string) ivEnv {
	var blockIn ivEnv
	if b == cfg.Entry {
		blockIn = entry.clone()
	}
	for _, pred := range b.Preds {
		po, ok := out[pred.ID]
		if !ok {
			continue // not yet computed (back edge on first pass)
		}
		ref, feasible := p.refineEdge(po, pred, b, fn)
		if !feasible {
			continue
		}
		if blockIn == nil {
			blockIn = ref
		} else {
			blockIn = joinIvEnv(blockIn, ref)
		}
	}
	if blockIn == nil {
		blockIn = ivEnv{}
	}
	return blockIn
}

// refineEdge applies the branch condition of pred's terminating statement
// to the env flowing along the pred→succ edge. The reported feasibility is
// false when the condition decides against the edge.
func (p *Intervals) refineEdge(src ivEnv, pred, succ *BasicBlock, fn string) (ivEnv, bool) {
	if len(pred.Stmts) == 0 {
		return src.clone(), true
	}
	var cond csrc.Expr
	var want bool
	switch st := pred.Stmts[len(pred.Stmts)-1].(type) {
	case *csrc.IfStmt:
		// builder edge order: Succs[0] = then entry, Succs[1] = else/join
		cond = st.Cond
		want = len(pred.Succs) > 0 && pred.Succs[0] == succ
	case *csrc.ForStmt:
		if condAlwaysTrue(st.Cond) {
			return src.clone(), true // single successor, nothing to refine
		}
		// builder edge order: Succs[0] = after (false), Succs[1] = body
		cond = st.Cond
		want = len(pred.Succs) > 1 && pred.Succs[1] == succ
	case *csrc.WhileStmt:
		if condAlwaysTrue(st.Cond) {
			return src.clone(), true
		}
		cond = st.Cond
		want = len(pred.Succs) > 1 && pred.Succs[1] == succ
	default:
		return src.clone(), true
	}
	if cond == nil {
		return src.clone(), true
	}
	civ := p.eval(cond, src, fn)
	if civ.Empty {
		return nil, false
	}
	if zero, ok := civ.IsConst(); ok && zero == 0 && want {
		return nil, false
	}
	if !civ.Contains(0) && !want {
		return nil, false
	}
	e := src.clone()
	p.refineCond(e, cond, want, fn)
	for _, v := range e {
		if v.Empty {
			return nil, false
		}
	}
	return e, true
}

// refineCond narrows e under the assumption cond evaluates to want.
func (p *Intervals) refineCond(e ivEnv, cond csrc.Expr, want bool, fn string) {
	switch ex := cond.(type) {
	case *csrc.Ident:
		if !want {
			p.constrain(e, ex.Name, ConstInterval(0), fn)
		}
	case *csrc.UnaryExpr:
		if ex.Op == "!" {
			p.refineCond(e, ex.X, !want, fn)
		}
	case *csrc.BinaryExpr:
		switch ex.Op {
		case "&&":
			if want {
				p.refineCond(e, ex.X, true, fn)
				p.refineCond(e, ex.Y, true, fn)
			}
		case "||":
			if !want {
				p.refineCond(e, ex.X, false, fn)
				p.refineCond(e, ex.Y, false, fn)
			}
		case "<", "<=", ">", ">=", "==", "!=":
			op := ex.Op
			if !want {
				op = negateCmp(op)
			}
			p.refineCmp(e, op, ex.X, ex.Y, fn)
		}
	}
}

func negateCmp(op string) string {
	switch op {
	case "<":
		return ">="
	case "<=":
		return ">"
	case ">":
		return "<="
	case ">=":
		return "<"
	case "==":
		return "!="
	default:
		return "=="
	}
}

// flipCmp mirrors a comparison across swapped operands.
func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	default:
		return op // == and != are symmetric
	}
}

func (p *Intervals) refineCmp(e ivEnv, op string, x, y csrc.Expr, fn string) {
	xiv := p.eval(x, e, fn)
	yiv := p.eval(y, e, fn)
	if id, ok := x.(*csrc.Ident); ok {
		p.applyCmp(e, id.Name, op, yiv, fn)
	}
	if id, ok := y.(*csrc.Ident); ok {
		p.applyCmp(e, id.Name, flipCmp(op), xiv, fn)
	}
}

// applyCmp clamps local name to satisfy `name op other`.
func (p *Intervals) applyCmp(e ivEnv, name, op string, other Interval, fn string) {
	if fn == "" || !p.locals[fn][name] || other.Empty {
		return
	}
	cur := p.lookup(name, e, fn)
	switch op {
	case "<":
		if !other.HiUnb {
			e.set(name, MeetIntervals(cur, fromBounds(negInfB, addB(finiteB(other.Hi), finiteB(-1)))))
		}
	case "<=":
		if !other.HiUnb {
			e.set(name, MeetIntervals(cur, fromBounds(negInfB, finiteB(other.Hi))))
		}
	case ">":
		if !other.LoUnb {
			e.set(name, MeetIntervals(cur, fromBounds(addB(finiteB(other.Lo), finiteB(1)), posInfB)))
		}
	case ">=":
		if !other.LoUnb {
			e.set(name, MeetIntervals(cur, fromBounds(finiteB(other.Lo), posInfB)))
		}
	case "==":
		e.set(name, MeetIntervals(cur, other))
	case "!=":
		if c, ok := other.IsConst(); ok {
			e.set(name, excludePoint(cur, c))
		}
	}
}

// excludePoint removes c from iv when c sits on a finite endpoint (the
// interval domain cannot represent interior holes).
func excludePoint(iv Interval, c int64) Interval {
	if v, ok := iv.IsConst(); ok && v == c {
		return EmptyInterval()
	}
	if iv.Empty {
		return iv
	}
	if !iv.LoUnb && iv.Lo == c {
		return fromBounds(addB(finiteB(c), finiteB(1)), iv.hib())
	}
	if !iv.HiUnb && iv.Hi == c {
		return fromBounds(iv.lob(), addB(finiteB(c), finiteB(-1)))
	}
	return iv
}

// constrain meets a local's interval with iv.
func (p *Intervals) constrain(e ivEnv, name string, iv Interval, fn string) {
	if fn == "" || !p.locals[fn][name] {
		return
	}
	e.set(name, MeetIntervals(p.lookup(name, e, fn), iv))
}

// transfer applies one statement's effect to the env in place. The call
// clobber conjecture matches the constprop pass: string writers strongly
// overwrite their destination (a buffer — just forgotten here), &x
// out-arguments and bare-identifier arguments of unmodeled calls drop to ⊤.
func (p *Intervals) transfer(e ivEnv, s csrc.Stmt, fn string) {
	for _, x := range stmtExprs(s) {
		csrc.WalkExpr(x, func(node csrc.Expr) bool {
			c, ok := node.(*csrc.CallExpr)
			if !ok {
				return true
			}
			shadowed := fn != "" && p.locals[fn][c.Fun]
			if _, isWriter := stringWriterCalls[c.Fun]; isWriter && !shadowed {
				if len(c.Args) > 0 {
					if base := rootIdent(c.Args[0]); base != "" {
						delete(e, base)
					}
				}
				return true
			}
			argSafe := knownBuiltins[c.Fun] && !shadowed
			for _, a := range c.Args {
				switch arg := a.(type) {
				case *csrc.UnaryExpr:
					if arg.Op == "&" {
						if id, ok := arg.X.(*csrc.Ident); ok {
							delete(e, id.Name)
						}
					}
				case *csrc.Ident:
					if !argSafe {
						delete(e, arg.Name)
					}
				}
			}
			return true
		})
	}

	switch st := s.(type) {
	case *csrc.DeclStmt:
		switch {
		case st.ArrayLen != nil || st.InitList != nil:
			delete(e, st.Name) // buffer contents are not a scalar
		case st.Init != nil:
			e.set(st.Name, p.eval(st.Init, e, fn))
		default:
			delete(e, st.Name) // uninitialized: any value
		}
	case *csrc.AssignStmt:
		if id, ok := st.LHS.(*csrc.Ident); ok {
			cur := p.lookup(id.Name, e, fn)
			switch st.Op {
			case "=":
				e.set(id.Name, p.eval(st.RHS, e, fn))
			case "++":
				e.set(id.Name, addInterval(cur, ConstInterval(1)))
			case "--":
				e.set(id.Name, subInterval(cur, ConstInterval(1)))
			default: // compound assignment
				op := strings.TrimSuffix(st.Op, "=")
				e.set(id.Name, p.evalBinaryIv(op, cur, p.eval(st.RHS, e, fn)))
			}
		} else if base := rootIdent(st.LHS); base != "" {
			delete(e, base) // element / pointer store
		}
	}
}

// lookup resolves a name: flow-sensitive for locals, the global constant
// table otherwise.
func (p *Intervals) lookup(name string, e ivEnv, fn string) Interval {
	if fn != "" && p.locals[fn][name] {
		return e.get(name)
	}
	if v, ok := p.globalInt[name]; ok {
		return ConstInterval(v)
	}
	return TopInterval()
}

// eval abstracts one expression in an env.
func (p *Intervals) eval(x csrc.Expr, e ivEnv, fn string) Interval {
	switch ex := x.(type) {
	case nil:
		return TopInterval()
	case *csrc.NumberLit:
		if ex.IsFloat {
			return TopInterval()
		}
		return ConstInterval(ex.Int)
	case *csrc.CharLit:
		return ConstInterval(int64(ex.Value))
	case *csrc.Ident:
		return p.lookup(ex.Name, e, fn)
	case *csrc.UnaryExpr:
		switch ex.Op {
		case "-":
			return negInterval(p.eval(ex.X, e, fn))
		case "+":
			return p.eval(ex.X, e, fn)
		case "!":
			return RangeInterval(0, 1)
		}
		return TopInterval()
	case *csrc.BinaryExpr:
		return p.evalBinaryIv(ex.Op, p.eval(ex.X, e, fn), p.eval(ex.Y, e, fn))
	case *csrc.CastExpr:
		return p.eval(ex.X, e, fn)
	case *csrc.SizeofExpr:
		if n, ok := sizeofType(ex.Type); ok {
			return ConstInterval(n)
		}
		return fromBounds(finiteB(1), posInfB)
	case *csrc.CallExpr:
		if fn != "" && p.locals[fn][ex.Fun] {
			return TopInterval()
		}
		if p.file.Func(ex.Fun) != nil {
			if iv, ok := p.retIv[ex.Fun]; ok {
				return iv
			}
		}
		return TopInterval()
	default:
		return TopInterval()
	}
}

// evalBinaryIv folds interval arithmetic; comparisons collapse to {0}, {1},
// or [0,1] as decidability allows.
func (p *Intervals) evalBinaryIv(op string, l, r Interval) Interval {
	if l.Empty || r.Empty {
		return EmptyInterval()
	}
	switch op {
	case "+":
		return addInterval(l, r)
	case "-":
		return subInterval(l, r)
	case "*":
		return mulInterval(l, r)
	case "/":
		return divInterval(l, r)
	case "%":
		return modInterval(l, r)
	case "<", "<=", ">", ">=", "==", "!=":
		if t, ok := compareIntervals(op, l, r); ok {
			if t {
				return ConstInterval(1)
			}
			return ConstInterval(0)
		}
		return RangeInterval(0, 1)
	case "&&", "||":
		return RangeInterval(0, 1)
	case "<<", ">>", "&", "|", "^":
		lv, lok := l.IsConst()
		rv, rok := r.IsConst()
		if lok && rok {
			if v := evalBinary(op, intConst(lv), intConst(rv)); v.kind == constInt {
				return ConstInterval(v.i)
			}
		}
		return TopInterval()
	default:
		return TopInterval()
	}
}

// compareIntervals decides `l op r` when the intervals allow it.
func compareIntervals(op string, l, r Interval) (result, decided bool) {
	lt := func(a, b Interval) (bool, bool) { // every a < every b?
		if !a.HiUnb && !b.LoUnb && a.Hi < b.Lo {
			return true, true
		}
		if !a.LoUnb && !b.HiUnb && a.Lo >= b.Hi {
			return false, true
		}
		return false, false
	}
	switch op {
	case "<":
		return lt(l, r)
	case ">":
		return lt(r, l)
	case "<=":
		v, ok := lt(r, l) // l <= r  ⇔  ¬(r < l)
		return !v, ok
	case ">=":
		v, ok := lt(l, r)
		return !v, ok
	case "==":
		lv, lok := l.IsConst()
		rv, rok := r.IsConst()
		if lok && rok {
			return lv == rv, true
		}
		if MeetIntervals(l, r).Empty {
			return false, true
		}
		return false, false
	case "!=":
		v, ok := compareIntervals("==", l, r)
		return !v, ok
	}
	return false, false
}

// foldInt folds an expression of literals (and sizeof) to a constant, with
// no environment — global initializers and array lengths.
func foldInt(e csrc.Expr) (int64, bool) {
	switch ex := e.(type) {
	case *csrc.NumberLit:
		if ex.IsFloat {
			return 0, false
		}
		return ex.Int, true
	case *csrc.CharLit:
		return int64(ex.Value), true
	case *csrc.UnaryExpr:
		if ex.Op == "-" {
			if v, ok := foldInt(ex.X); ok {
				return -v, true
			}
		}
		return 0, false
	case *csrc.BinaryExpr:
		l, lok := foldInt(ex.X)
		r, rok := foldInt(ex.Y)
		if lok && rok {
			if v := evalBinary(ex.Op, intConst(l), intConst(r)); v.kind == constInt {
				return v.i, true
			}
		}
		return 0, false
	case *csrc.CastExpr:
		return foldInt(ex.X)
	case *csrc.SizeofExpr:
		return sizeofType(ex.Type)
	default:
		return 0, false
	}
}

// sizeofType gives the byte size of the C scalar types the fixtures use.
func sizeofType(t string) (int64, bool) {
	switch strings.TrimSpace(t) {
	case "char", "signed char", "unsigned char":
		return 1, true
	case "short", "unsigned short":
		return 2, true
	case "int", "unsigned", "unsigned int", "float":
		return 4, true
	case "long", "unsigned long", "long long", "unsigned long long",
		"double", "size_t", "ssize_t", "int64_t", "uint64_t",
		"hsize_t", "hid_t", "herr_t", "MPI_Offset":
		return 8, true
	default:
		return 0, false
	}
}
