package analysis

import "tunio/internal/csrc"

// knownBuiltins are interpreter-provided functions that neither perform
// file I/O nor write caller-visible state (printf writes stdout, which the
// tuner does not model as I/O).
var knownBuiltins = map[string]bool{
	"malloc": true, "calloc": true, "free": true, "printf": true,
	"dsname": true, "sqrt": true, "exit": true, "compute_flops": true,
	"__loop_reduce": true,
}

// FuncSummary is one function's side-effect summary, computed transitively
// over the call graph.
type FuncSummary struct {
	Name string
	// PerformsIO: the function (or a callee) makes an I/O library call.
	PerformsIO bool
	// WritesGlobals: the function (or a callee) assigns a variable that is
	// not local to it.
	WritesGlobals bool
	// CallsUnknown: the function calls something that is neither defined
	// in the file, a known builtin, nor an I/O library call — for example
	// a call through a local function pointer. Unknown callees make every
	// other field a lower bound.
	CallsUnknown bool
}

// Pure reports that the function only computes: no I/O, no global writes,
// no calls with unknowable effects.
func (s *FuncSummary) Pure() bool {
	return !s.PerformsIO && !s.WritesGlobals && !s.CallsUnknown
}

// Summarize computes side-effect summaries for every function in the
// file. isIOCall classifies I/O library calls (shadowing by local names is
// handled here: a call through a name declared locally is an unknown call,
// not an I/O call).
func Summarize(f *csrc.File, isIOCall func(string) bool) map[string]*FuncSummary {
	locals := LocalNames(f)
	sums := map[string]*FuncSummary{}
	callees := map[string][]string{} // function -> user functions called

	for _, fn := range f.Funcs {
		sum := &FuncSummary{Name: fn.Name}
		sums[fn.Name] = sum
		loc := locals[fn.Name]

		var visitStmt func(s csrc.Stmt) bool
		visitStmt = func(s csrc.Stmt) bool {
			du := StmtDefUse(s)
			for _, d := range du.Defs {
				if !loc[d.Var] {
					sum.WritesGlobals = true
				}
			}
			for _, callee := range stmtCalls(s) {
				switch {
				case loc[callee]:
					// call through a local (function pointer): unknowable
					sum.CallsUnknown = true
				case f.Func(callee) != nil:
					callees[fn.Name] = append(callees[fn.Name], callee)
				case isIOCall(callee):
					sum.PerformsIO = true
				case !knownBuiltins[callee]:
					sum.CallsUnknown = true
				}
			}
			return true
		}
		walkFuncStmts(fn, visitStmt)
	}

	// propagate effects over the call graph to fixpoint
	for changed := true; changed; {
		changed = false
		for name, sum := range sums {
			for _, callee := range callees[name] {
				cs := sums[callee]
				if cs == nil {
					continue
				}
				if cs.PerformsIO && !sum.PerformsIO {
					sum.PerformsIO = true
					changed = true
				}
				if cs.WritesGlobals && !sum.WritesGlobals {
					sum.WritesGlobals = true
					changed = true
				}
				if cs.CallsUnknown && !sum.CallsUnknown {
					sum.CallsUnknown = true
					changed = true
				}
			}
		}
	}
	return sums
}

// walkFuncStmts visits every statement of one function (including loop
// Init/Post statements and nested blocks).
func walkFuncStmts(fn *csrc.FuncDecl, visit func(csrc.Stmt) bool) {
	var walk func(s csrc.Stmt) bool
	walkBlock := func(b *csrc.Block) bool {
		if b == nil {
			return true
		}
		for _, s := range b.Stmts {
			if !walk(s) {
				return false
			}
		}
		return true
	}
	walk = func(s csrc.Stmt) bool {
		if s == nil {
			return true
		}
		if !visit(s) {
			return false
		}
		switch st := s.(type) {
		case *csrc.Block:
			return walkBlock(st)
		case *csrc.IfStmt:
			return walkBlock(st.Then) && walkBlock(st.Else)
		case *csrc.ForStmt:
			if st.Init != nil && !walk(st.Init) {
				return false
			}
			if st.Post != nil && !walk(st.Post) {
				return false
			}
			return walkBlock(st.Body)
		case *csrc.WhileStmt:
			return walkBlock(st.Body)
		}
		return true
	}
	walkBlock(fn.Body)
}
