package analysis

import (
	"strings"
	"testing"
)

// runVerify verifies a source with all transforms enabled.
func runVerify(t *testing.T, src string) []Diagnostic {
	t.Helper()
	return VerifyTransforms(mustParse(t, src), TransformOptions{
		LoopReduction:     true,
		PathSwitch:        true,
		RemoveBlindWrites: true,
		IsIOCall:          DefaultIsIOCall,
	})
}

func TestVerifyLoopBoundMutated(t *testing.T) {
	src := `int main() {
    int n = 100;
    for (int i = 0; i < n; i++) {
        fwrite(&i, 4, 1, 0);
        n = n - 1;
    }
    return 0;
}`
	got := findCode(runVerify(t, src), CodeLoopBoundMutated)
	if len(got) != 1 || got[0].Line != 3 {
		t.Fatalf("want one TR001 at line 3, got %v", got)
	}
	if !strings.Contains(got[0].Message, `"n"`) {
		t.Errorf("message should name the bound variable: %s", got[0].Message)
	}
}

func TestVerifyStableBoundNotFlagged(t *testing.T) {
	src := `int main() {
    int n = 100;
    for (int i = 0; i < n; i++) {
        fwrite(&i, 4, 1, 0);
    }
    return 0;
}`
	if got := findCode(runVerify(t, src), CodeLoopBoundMutated); len(got) != 0 {
		t.Errorf("stable bound flagged: %v", got)
	}
}

func TestVerifyLoopCarriedIO(t *testing.T) {
	src := `int main() {
    int total = 0;
    FILE *fp = fopen("log.txt", "w");
    for (int i = 0; i < 100; i++) {
        fwrite(&i, 4, 1, fp);
        total = total + 1;
    }
    fprintf(fp, "%d", total);
    fclose(fp);
    return 0;
}`
	got := findCode(runVerify(t, src), CodeLoopCarriedIO)
	if len(got) != 1 || got[0].Line != 8 {
		t.Fatalf("want one TR002 at line 8, got %v", got)
	}
	if !strings.Contains(got[0].Message, `"total"`) {
		t.Errorf("message should name the carried variable: %s", got[0].Message)
	}
}

func TestVerifyLoopLocalValueNotFlagged(t *testing.T) {
	// total is redefined after the loop, so the loop's defs never reach the
	// final fprintf.
	src := `int main() {
    int total = 0;
    FILE *fp = fopen("log.txt", "w");
    for (int i = 0; i < 100; i++) {
        fwrite(&i, 4, 1, fp);
        total = total + 1;
    }
    total = 42;
    fprintf(fp, "%d", total);
    fclose(fp);
    return 0;
}`
	if got := findCode(runVerify(t, src), CodeLoopCarriedIO); len(got) != 0 {
		t.Errorf("killed definition flagged: %v", got)
	}
}

func TestVerifyComputedPath(t *testing.T) {
	src := `int main() {
    char name[64];
    build_name(name);
    FILE *fp = fopen(name, "w");
    FILE *fq = fopen("fixed.txt", "w");
    fclose(fp);
    fclose(fq);
    return 0;
}`
	got := findCode(runVerify(t, src), CodeComputedPath)
	if len(got) != 1 || got[0].Line != 4 {
		t.Fatalf("want one TR003 at line 4 (literal path at 5 is fine), got %v", got)
	}
}

func TestVerifyAliasedHandleEscape(t *testing.T) {
	src := `void touch(hid_t h) {
    H5Dread(h, 0, 0, 0, 0, 0);
}

int main() {
    hid_t d = H5Dcreate(0, "ds", 0, 0, 0);
    hid_t alias = d;
    double buf[8];
    H5Dwrite(d, 0, 0, 0, 0, buf);
    touch(alias);
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dclose(d);
    return 0;
}`
	got := findCode(runVerify(t, src), CodeAliasedHandle)
	if len(got) != 1 || got[0].Line != 9 {
		t.Fatalf("want one TR004 at line 9, got %v", got)
	}
}

func TestVerifyNoEscapeNotFlagged(t *testing.T) {
	src := `int main() {
    hid_t d = H5Dcreate(0, "ds", 0, 0, 0);
    double buf[8];
    H5Dwrite(d, 0, 0, 0, 0, buf);
    compute_flops(1.0);
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dclose(d);
    return 0;
}`
	if got := findCode(runVerify(t, src), CodeAliasedHandle); len(got) != 0 {
		t.Errorf("builtin call between writes flagged: %v", got)
	}
}

func TestVerifyIrreducibleIOLoop(t *testing.T) {
	src := `int main() {
    int more = 1;
    while (more) {
        fwrite(&more, 4, 1, 0);
        more = poll();
    }
    return 0;
}`
	got := findCode(runVerify(t, src), CodeIrreducibleLoop)
	if len(got) != 1 || got[0].Line != 3 {
		t.Fatalf("want one TR005 at line 3, got %v", got)
	}
}

func TestVerifyDisabledTransformsSilent(t *testing.T) {
	src := `int main() {
    int n = 100;
    char name[64];
    build_name(name);
    FILE *fp = fopen(name, "w");
    for (int i = 0; i < n; i++) {
        fwrite(&i, 4, 1, fp);
        n = n - 1;
    }
    fclose(fp);
    return 0;
}`
	got := VerifyTransforms(mustParse(t, src), TransformOptions{IsIOCall: DefaultIsIOCall})
	if len(got) != 0 {
		t.Errorf("no transforms enabled but got %v", got)
	}
}
