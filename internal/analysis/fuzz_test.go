package analysis

import (
	"strings"
	"testing"
)

// fuzzInterval decodes a fuzz-provided (lo, hi, flags) triple into a
// normal-form interval: bit 0 of flags drops the lower bound, bit 1 the
// upper, bit 2 selects the empty interval. Out-of-order finite bounds
// are swapped so every decoded value is a valid lattice element.
func fuzzInterval(lo, hi int64, flags uint8) Interval {
	if flags&4 != 0 {
		return EmptyInterval()
	}
	if flags&3 == 3 {
		return TopInterval()
	}
	if flags&1 != 0 {
		return Interval{LoUnb: true, Hi: hi}
	}
	if flags&2 != 0 {
		return Interval{HiUnb: true, Lo: lo}
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{Lo: lo, Hi: hi}
}

// FuzzIntervalJoinWiden checks the lattice laws the fixpoint iteration
// in bounds.go relies on: join is a commutative upper bound, widening
// covers the join, and widening is stable on its second argument (the
// property that forces ascending chains to terminate).
func FuzzIntervalJoinWiden(f *testing.F) {
	f.Add(int64(0), int64(7), uint8(0), int64(3), int64(9), uint8(0))
	f.Add(int64(-5), int64(5), uint8(1), int64(0), int64(0), uint8(2))
	f.Add(int64(0), int64(0), uint8(4), int64(1), int64(2), uint8(0))
	f.Add(int64(-9223372036854775808), int64(9223372036854775807), uint8(0), int64(0), int64(0), uint8(3))
	f.Fuzz(func(t *testing.T, lo1, hi1 int64, fl1 uint8, lo2, hi2 int64, fl2 uint8) {
		a := fuzzInterval(lo1, hi1, fl1)
		b := fuzzInterval(lo2, hi2, fl2)

		j := JoinIntervals(a, b)
		if !j.ContainsInterval(a) || !j.ContainsInterval(b) {
			t.Fatalf("join %v ⊔ %v = %v does not contain both operands", a, b, j)
		}
		if jr := JoinIntervals(b, a); jr != j {
			t.Fatalf("join not commutative: %v vs %v", j, jr)
		}

		w := WidenInterval(a, b)
		if !w.ContainsInterval(j) {
			t.Fatalf("widen %v ∇ %v = %v does not contain the join %v", a, b, w, j)
		}
		if w2 := WidenInterval(w, b); w2 != w {
			t.Fatalf("widening unstable: (%v ∇ %v) ∇ %v = %v, want %v", a, b, b, w2, w)
		}

		m := MeetIntervals(a, b)
		if !a.ContainsInterval(m) || !b.ContainsInterval(m) {
			t.Fatalf("meet %v ⊓ %v = %v escapes an operand", a, b, m)
		}
		n := NarrowInterval(w, j)
		if !n.ContainsInterval(j) {
			t.Fatalf("narrow %v Δ %v = %v lost the join %v", w, j, n, j)
		}
	})
}

// FuzzExpandFormat checks that the format-string expander never panics
// and that a successful expansion consumed only supported verbs. Seeds
// cover the format strings the five built-in fixture workloads use.
func FuzzExpandFormat(f *testing.F) {
	f.Add("%s/%s", "out", 0)
	f.Add("ds%05d", "", 12)
	f.Add("%05d", "", 7)
	f.Add("out.%d.h5", "", 3)
	f.Add("%s", "vpic", 0)
	f.Add("%x-%ld-%%", "", -1)
	f.Add("%*d", "", 5)
	f.Add("%", "", 0)
	f.Fuzz(func(t *testing.T, format, s string, i int) {
		args := []constVal{strConst(s), intConst(int64(i)), strConst(s), intConst(int64(i))}
		out, ok := expandFormat(format, args)
		if !ok {
			return
		}
		// A successful expansion of a %%-free format with no verbs must
		// echo the format verbatim.
		if !strings.ContainsRune(format, '%') && out != format {
			t.Fatalf("expandFormat(%q) = %q, want the format itself", format, out)
		}
	})
}
