package analysis

import (
	"strconv"
	"strings"

	"tunio/internal/csrc"
)

// String-constant propagation: a forward abstract interpretation over each
// function's CFG that proves, per program point, which variables hold a
// known constant string (or integer). The discovery path-switch transform
// uses it to resolve computed path arguments — sprintf("%s/%s", dir, base)
// of constant operands — to proven literals instead of blocking on TR003.
//
// The lattice per variable is
//
//	⊤ (unreached / no information yet)
//	  > "some exact string"  |  exact integer
//	    > ⊥ (not a constant)
//
// with meet at control-flow joins (equal constants survive, differing
// constants fall to ⊥) and a fixpoint over loops. The modeled string
// writers — sprintf, snprintf, strcpy, strcat — are strong updates: each
// writes a complete NUL-terminated string into its destination buffer.
// Every unmodeled call that could write a variable (a bare-identifier
// argument of a non-builtin call, or an &x out-argument) drops that
// variable to ⊥, mirroring the def/use layer's out-argument conjecture.
//
// The pass is interprocedural through two summaries iterated to fixpoint
// across the file: retConst (a function provably returns one constant) and
// paramConst (every call site passes the same provable constant for a
// parameter).

// constKind ranks a lattice value.
type constKind int

const (
	constTop    constKind = iota // no information yet
	constStr                     // exact string
	constInt                     // exact integer
	constBottom                  // provably not a single constant
)

// constVal is one lattice value.
type constVal struct {
	kind constKind
	s    string
	i    int64
}

var (
	topVal    = constVal{kind: constTop}
	bottomVal = constVal{kind: constBottom}
)

func strConst(s string) constVal { return constVal{kind: constStr, s: s} }
func intConst(i int64) constVal  { return constVal{kind: constInt, i: i} }

// meet combines two lattice values at a join point.
func meet(a, b constVal) constVal {
	switch {
	case a.kind == constTop:
		return b
	case b.kind == constTop:
		return a
	case a == b:
		return a
	default:
		return bottomVal
	}
}

// env maps variable names to lattice values; a missing key is ⊤.
type env map[string]constVal

func (e env) get(v string) constVal {
	if val, ok := e[v]; ok {
		return val
	}
	return topVal
}

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

func meetEnv(a, b env) env {
	out := make(env, len(a)+len(b))
	for k, va := range a {
		out[k] = meet(va, b.get(k))
	}
	for k, vb := range b {
		if _, seen := a[k]; !seen {
			out[k] = meet(topVal, vb)
		}
	}
	return out
}

func sameEnv(a, b env) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// writerKind classifies the modeled string-writing libc calls.
type writerKind int

const (
	writerSprintf writerKind = iota
	writerSnprintf
	writerStrcpy
	writerStrncpy
	writerStrcat
)

// stringWriterCalls are the calls modeled as strong whole-string updates
// of their first argument.
var stringWriterCalls = map[string]writerKind{
	"sprintf":  writerSprintf,
	"snprintf": writerSnprintf,
	"strcpy":   writerStrcpy,
	"strncpy":  writerStrncpy,
	"strcat":   writerStrcat,
}

// StringProp is the computed propagation result for one file. Build it
// with NewStringProp and query program points with Resolve.
type StringProp struct {
	file   *csrc.File
	locals map[string]map[string]bool

	// globalConst holds file-scope variables provably constant for the
	// whole run: a literal initializer and no definition anywhere else.
	globalConst map[string]constVal

	// interprocedural summaries, iterated to fixpoint
	retConst   map[string]constVal   // function -> provable return value
	paramConst map[string][]constVal // function -> per-parameter value

	stmtEnv map[int]env    // statement ID -> env just before it
	stmtFn  map[int]string // statement ID -> enclosing function

	// aliased marks variables that participate in a plain ident-to-ident
	// copy inside their function ("p = buf"): a write through one name may
	// be visible through the other, so string-writer updates of aliased
	// destinations are demoted to ⊥ instead of strong constants.
	aliased map[string]map[string]bool

	callSites map[string][]callSite         // callee -> calling statements
	returns   map[string][]*csrc.ReturnStmt // function -> return statements
}

// callSite is one statement calling a user-defined function.
type callSite struct {
	stmt csrc.Stmt
	fn   string // caller
	call *csrc.CallExpr
}

// NewStringProp runs the propagation over a parsed file.
func NewStringProp(f *csrc.File) *StringProp {
	p := &StringProp{
		file:        f,
		locals:      LocalNames(f),
		globalConst: map[string]constVal{},
		retConst:    map[string]constVal{},
		paramConst:  map[string][]constVal{},
		stmtEnv:     map[int]env{},
		stmtFn:      map[int]string{},
		aliased:     map[string]map[string]bool{},
		callSites:   map[string][]callSite{},
		returns:     map[string][]*csrc.ReturnStmt{},
	}
	p.collectGlobalConsts()
	p.collectAliases()
	p.collectSites()

	totalParams := 0
	for _, fn := range f.Funcs {
		p.retConst[fn.Name] = bottomVal
		p.paramConst[fn.Name] = make([]constVal, len(fn.Params))
		for i := range p.paramConst[fn.Name] {
			p.paramConst[fn.Name][i] = bottomVal
		}
		totalParams += len(fn.Params)
	}

	// Summaries start pessimistic (⊥) and each round can only upgrade a
	// summary ⊥ → const using facts proved in earlier rounds (a constant,
	// once derived, never changes: it was proved with a subset of the
	// current facts). The fact count bounds the rounds.
	maxRounds := totalParams + len(f.Funcs) + 1
	for round := 0; round < maxRounds; round++ {
		p.stmtEnv = map[int]env{}
		for _, fn := range f.Funcs {
			p.analyzeFunc(fn)
		}
		if !p.updateSummaries() {
			break
		}
	}
	return p
}

// Resolve evaluates an expression at a program point and reports the exact
// string it holds, if provable.
func (p *StringProp) Resolve(st csrc.Stmt, e csrc.Expr) (string, bool) {
	if st == nil {
		return "", false
	}
	id := st.Base().ID
	envAt, ok := p.stmtEnv[id]
	if !ok {
		return "", false
	}
	v := p.eval(e, envAt, p.stmtFn[id])
	if v.kind != constStr {
		return "", false
	}
	return v.s, true
}

// collectGlobalConsts finds file-scope variables that are constants for
// the whole run: literal (or foldable) initializer, never redefined by any
// statement — including conjectured out-argument writes.
func (p *StringProp) collectGlobalConsts() {
	redefined := map[string]bool{}
	for _, fn := range p.file.Funcs {
		loc := p.locals[fn.Name]
		walkFuncStmts(fn, func(s csrc.Stmt) bool {
			for _, v := range p.clobberedVars(s, fn.Name) {
				if !loc[v] {
					redefined[v] = true
				}
			}
			return true
		})
	}
	for _, g := range p.file.Globals {
		if redefined[g.Name] || g.Init == nil || g.ArrayLen != nil || g.InitList != nil {
			continue
		}
		// globals see only other globals; evaluate in an empty env
		v := p.eval(g.Init, env{}, "")
		if v.kind == constStr || v.kind == constInt {
			p.globalConst[g.Name] = v
		}
	}
}

// clobberedVars lists the variables a statement may write under the same
// abstract semantics transfer applies: decl names, assignment targets,
// string-writer destinations, &x out-arguments, and bare-identifier
// arguments of unmodeled calls. Unlike StmtDefUse, the read-only arguments
// of the modeled string writers are not conjectured writes.
func (p *StringProp) clobberedVars(s csrc.Stmt, fn string) []string {
	return clobberedNames(p.locals, s, fn)
}

// clobberedNames is the package-level form of clobberedVars, shared with
// the interval analysis (which applies the same write conjecture).
func clobberedNames(locals map[string]map[string]bool, s csrc.Stmt, fn string) []string {
	var out []string
	for _, x := range stmtExprs(s) {
		csrc.WalkExpr(x, func(node csrc.Expr) bool {
			c, ok := node.(*csrc.CallExpr)
			if !ok {
				return true
			}
			shadowed := fn != "" && locals[fn][c.Fun]
			if _, isWriter := stringWriterCalls[c.Fun]; isWriter && !shadowed {
				if len(c.Args) > 0 {
					if base := rootIdent(c.Args[0]); base != "" {
						out = append(out, base)
					}
				}
				return true
			}
			argSafe := knownBuiltins[c.Fun] && !shadowed
			for _, a := range c.Args {
				switch arg := a.(type) {
				case *csrc.UnaryExpr:
					if arg.Op == "&" {
						if id, ok := arg.X.(*csrc.Ident); ok {
							out = append(out, id.Name)
						}
					}
				case *csrc.Ident:
					if !argSafe {
						out = append(out, arg.Name)
					}
				}
			}
			return true
		})
	}
	switch st := s.(type) {
	case *csrc.DeclStmt:
		out = append(out, st.Name)
	case *csrc.AssignStmt:
		if base := rootIdent(st.LHS); base != "" {
			out = append(out, base)
		}
	}
	return out
}

// collectAliases records per function the variables copied between plain
// identifiers.
func (p *StringProp) collectAliases() {
	for _, fn := range p.file.Funcs {
		set := map[string]bool{}
		walkFuncStmts(fn, func(s csrc.Stmt) bool {
			switch st := s.(type) {
			case *csrc.DeclStmt:
				if id, ok := st.Init.(*csrc.Ident); ok {
					set[st.Name], set[id.Name] = true, true
				}
			case *csrc.AssignStmt:
				if lhs, ok := st.LHS.(*csrc.Ident); ok && st.Op == "=" {
					if rhs, ok := st.RHS.(*csrc.Ident); ok {
						set[lhs.Name], set[rhs.Name] = true, true
					}
				}
			}
			return true
		})
		p.aliased[fn.Name] = set
	}
}

// collectSites records user-function call sites and return statements.
func (p *StringProp) collectSites() {
	for _, fn := range p.file.Funcs {
		walkFuncStmts(fn, func(s csrc.Stmt) bool {
			if r, ok := s.(*csrc.ReturnStmt); ok {
				p.returns[fn.Name] = append(p.returns[fn.Name], r)
			}
			for _, x := range stmtExprs(s) {
				csrc.WalkExpr(x, func(node csrc.Expr) bool {
					c, ok := node.(*csrc.CallExpr)
					if !ok {
						return true
					}
					if p.file.Func(c.Fun) != nil && !p.locals[fn.Name][c.Fun] {
						p.callSites[c.Fun] = append(p.callSites[c.Fun], callSite{stmt: s, fn: fn.Name, call: c})
					}
					return true
				})
			}
			return true
		})
	}
}

// updateSummaries recomputes the interprocedural summaries from the
// converged per-statement envs and reports whether anything changed.
func (p *StringProp) updateSummaries() bool {
	changed := false
	for _, fn := range p.file.Funcs {
		// return summary: every return must yield the same provable constant
		ret := topVal
		for _, r := range p.returns[fn.Name] {
			if r.X == nil {
				ret = bottomVal
				break
			}
			envAt, ok := p.stmtEnv[r.Base().ID]
			if !ok {
				continue // unreachable return does not execute
			}
			ret = meet(ret, p.eval(r.X, envAt, fn.Name))
		}
		if len(p.returns[fn.Name]) == 0 || ret.kind == constTop {
			ret = bottomVal
		}
		if p.retConst[fn.Name] != ret {
			p.retConst[fn.Name] = ret
			changed = true
		}

		// parameter summary: every call site passes the same constant
		sites := p.callSites[fn.Name]
		for i := range p.paramConst[fn.Name] {
			v := topVal
			if len(sites) == 0 {
				v = bottomVal // never called from this file (e.g. main)
			}
			for _, cs := range sites {
				if i >= len(cs.call.Args) {
					v = bottomVal
					break
				}
				envAt, ok := p.stmtEnv[cs.stmt.Base().ID]
				if !ok {
					v = bottomVal // call from an unanalyzed point
					break
				}
				v = meet(v, p.eval(cs.call.Args[i], envAt, cs.fn))
			}
			if v.kind == constTop {
				v = bottomVal
			}
			if p.paramConst[fn.Name][i] != v {
				p.paramConst[fn.Name][i] = v
				changed = true
			}
		}
	}
	return changed
}

// analyzeFunc runs the forward dataflow over one function and records the
// per-statement envs.
func (p *StringProp) analyzeFunc(fn *csrc.FuncDecl) {
	cfg := BuildCFG(fn)

	entry := env{}
	for i, prm := range fn.Params {
		if prm.Name == "" {
			continue
		}
		if pc := p.paramConst[fn.Name]; i < len(pc) && (pc[i].kind == constStr || pc[i].kind == constInt) {
			entry[prm.Name] = pc[i]
		} else {
			entry[prm.Name] = bottomVal
		}
	}

	in := map[int]env{}
	out := map[int]env{}
	rpo := cfg.reversePostorder()
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			var blockIn env
			if b == cfg.Entry {
				blockIn = entry.clone()
			}
			for _, pred := range b.Preds {
				po, ok := out[pred.ID]
				if !ok {
					continue // not yet computed (back edge on first pass)
				}
				if blockIn == nil {
					blockIn = po.clone()
				} else {
					blockIn = meetEnv(blockIn, po)
				}
			}
			if blockIn == nil {
				blockIn = env{}
			}
			cur := blockIn.clone()
			for _, s := range b.Stmts {
				p.transfer(cur, s, fn.Name)
			}
			if prev, ok := out[b.ID]; !ok || !sameEnv(prev, cur) {
				in[b.ID] = blockIn
				out[b.ID] = cur
				changed = true
			}
		}
	}

	// record per-statement pre-envs from the converged block inputs
	for _, b := range cfg.Blocks {
		cur, ok := in[b.ID]
		if !ok {
			continue // unreachable block
		}
		cur = cur.clone()
		for _, s := range b.Stmts {
			id := s.Base().ID
			p.stmtEnv[id] = cur.clone()
			p.stmtFn[id] = fn.Name
			p.transfer(cur, s, fn.Name)
		}
	}
}

// stmtExprs returns a statement's top-level expressions (headers:
// condition only, matching the CFG decomposition).
func stmtExprs(s csrc.Stmt) []csrc.Expr {
	var exprs []csrc.Expr
	switch st := s.(type) {
	case *csrc.DeclStmt:
		exprs = append(exprs, st.Init, st.ArrayLen)
		for _, e := range st.InitList {
			exprs = append(exprs, e)
		}
	case *csrc.AssignStmt:
		exprs = append(exprs, st.LHS, st.RHS)
	case *csrc.ExprStmt:
		exprs = append(exprs, st.X)
	case *csrc.IfStmt:
		exprs = append(exprs, st.Cond)
	case *csrc.ForStmt:
		exprs = append(exprs, st.Cond)
	case *csrc.WhileStmt:
		exprs = append(exprs, st.Cond)
	case *csrc.ReturnStmt:
		exprs = append(exprs, st.X)
	}
	return exprs
}

// transfer applies one statement's effect to the env in place.
func (p *StringProp) transfer(e env, s csrc.Stmt, fn string) {
	// call effects first: modeled string writers update their destination
	// strongly; every other call clobbers its writable arguments
	for _, x := range stmtExprs(s) {
		csrc.WalkExpr(x, func(node csrc.Expr) bool {
			c, ok := node.(*csrc.CallExpr)
			if !ok {
				return true
			}
			shadowed := fn != "" && p.locals[fn][c.Fun]
			if kind, isWriter := stringWriterCalls[c.Fun]; isWriter && !shadowed {
				p.applyWriter(e, c, kind, fn)
				return true
			}
			argSafe := knownBuiltins[c.Fun] && !shadowed
			for _, a := range c.Args {
				switch arg := a.(type) {
				case *csrc.UnaryExpr:
					if arg.Op == "&" {
						if id, ok := arg.X.(*csrc.Ident); ok {
							e[id.Name] = bottomVal
						}
					}
				case *csrc.Ident:
					if !argSafe {
						e[arg.Name] = bottomVal
					}
				}
			}
			return true
		})
	}

	switch st := s.(type) {
	case *csrc.DeclStmt:
		switch {
		case st.ArrayLen != nil || st.InitList != nil:
			e[st.Name] = bottomVal // buffer contents are not a scalar constant
		case st.Init != nil:
			e[st.Name] = p.eval(st.Init, e, fn)
		default:
			e[st.Name] = bottomVal // uninitialized scalar
		}
	case *csrc.AssignStmt:
		if id, ok := st.LHS.(*csrc.Ident); ok {
			switch st.Op {
			case "=":
				e[id.Name] = p.eval(st.RHS, e, fn)
			case "++", "--":
				if cur := e.get(id.Name); cur.kind == constInt {
					if st.Op == "++" {
						e[id.Name] = intConst(cur.i + 1)
					} else {
						e[id.Name] = intConst(cur.i - 1)
					}
				} else {
					e[id.Name] = bottomVal
				}
			default: // compound assignment
				op := st.Op[:1]
				e[id.Name] = evalBinary(op, e.get(id.Name), p.eval(st.RHS, e, fn))
			}
		} else if base := rootIdent(st.LHS); base != "" {
			e[base] = bottomVal // element / pointer store
		}
	}
}

// applyWriter models one sprintf-family call.
func (p *StringProp) applyWriter(e env, c *csrc.CallExpr, kind writerKind, fn string) {
	if len(c.Args) == 0 {
		return
	}
	dst, plain := c.Args[0].(*csrc.Ident)
	if !plain {
		if base := rootIdent(c.Args[0]); base != "" {
			e[base] = bottomVal
		}
		return
	}
	// writes through a copy-aliased buffer may be visible under another
	// name this analysis does not update — refuse the strong constant
	if p.aliased[fn][dst.Name] {
		e[dst.Name] = bottomVal
		return
	}

	result := bottomVal
	switch kind {
	case writerSprintf, writerSnprintf:
		fmtIdx := 1
		if kind == writerSnprintf {
			fmtIdx = 2
		}
		if fmtIdx < len(c.Args) {
			if lit, ok := c.Args[fmtIdx].(*csrc.StringLit); ok {
				args := make([]constVal, 0, len(c.Args)-fmtIdx-1)
				for _, a := range c.Args[fmtIdx+1:] {
					args = append(args, p.eval(a, e, fn))
				}
				if s, ok := expandFormat(lit.Value, args); ok {
					if kind == writerSnprintf {
						// snprintf stores at most n-1 bytes; a non-constant
						// or non-positive size leaves dst unprovable.
						n := p.eval(c.Args[1], e, fn)
						if n.kind != constInt || n.i <= 0 {
							e[dst.Name] = bottomVal
							return
						}
						if int64(len(s)) >= n.i {
							s = s[:n.i-1]
						}
					}
					result = strConst(s)
				}
			}
		}
	case writerStrcpy:
		if len(c.Args) >= 2 {
			if v := p.eval(c.Args[1], e, fn); v.kind == constStr {
				result = v
			}
		}
	case writerStrncpy:
		// strncpy null-terminates dst only when the source fits below n; a
		// truncating copy leaves dst unterminated, so nothing is provable.
		if len(c.Args) >= 3 {
			src := p.eval(c.Args[1], e, fn)
			n := p.eval(c.Args[2], e, fn)
			if src.kind == constStr && n.kind == constInt && int64(len(src.s)) < n.i {
				result = src
			}
		}
	case writerStrcat:
		if len(c.Args) >= 2 {
			cur := e.get(dst.Name)
			src := p.eval(c.Args[1], e, fn)
			if cur.kind == constStr && src.kind == constStr {
				result = strConst(cur.s + src.s)
			}
		}
	}
	e[dst.Name] = result
}

// eval abstracts one expression in an env.
func (p *StringProp) eval(x csrc.Expr, e env, fn string) constVal {
	switch ex := x.(type) {
	case nil:
		return bottomVal
	case *csrc.StringLit:
		return strConst(ex.Value)
	case *csrc.NumberLit:
		if ex.IsFloat {
			return bottomVal
		}
		return intConst(ex.Int)
	case *csrc.CharLit:
		return intConst(int64(ex.Value))
	case *csrc.Ident:
		if fn != "" && p.locals[fn][ex.Name] {
			return e.get(ex.Name).orBottom()
		}
		if v, ok := p.globalConst[ex.Name]; ok {
			return v
		}
		if v, ok := e[ex.Name]; ok {
			return v.orBottom()
		}
		return bottomVal
	case *csrc.UnaryExpr:
		if ex.Op == "-" {
			if v := p.eval(ex.X, e, fn); v.kind == constInt {
				return intConst(-v.i)
			}
		}
		return bottomVal
	case *csrc.BinaryExpr:
		return evalBinary(ex.Op, p.eval(ex.X, e, fn), p.eval(ex.Y, e, fn))
	case *csrc.CastExpr:
		return p.eval(ex.X, e, fn)
	case *csrc.CallExpr:
		if fn != "" && p.locals[fn][ex.Fun] {
			return bottomVal // call through a local name
		}
		if p.file.Func(ex.Fun) != nil {
			if v, ok := p.retConst[ex.Fun]; ok && (v.kind == constStr || v.kind == constInt) {
				return v
			}
		}
		return bottomVal
	default:
		return bottomVal
	}
}

// orBottom demotes ⊤ to ⊥ at use sites: a read of a variable with no
// recorded value proves nothing.
func (v constVal) orBottom() constVal {
	if v.kind == constTop {
		return bottomVal
	}
	return v
}

// evalBinary folds integer arithmetic on proven constants.
func evalBinary(op string, l, r constVal) constVal {
	if l.kind != constInt || r.kind != constInt {
		return bottomVal
	}
	a, b := l.i, r.i
	switch op {
	case "+":
		return intConst(a + b)
	case "-":
		return intConst(a - b)
	case "*":
		return intConst(a * b)
	case "/":
		if b == 0 {
			return bottomVal
		}
		return intConst(a / b)
	case "%":
		if b == 0 {
			return bottomVal
		}
		return intConst(a % b)
	case "<<":
		return intConst(a << uint(b&63))
	case ">>":
		return intConst(a >> uint(b&63))
	case "&":
		return intConst(a & b)
	case "|":
		return intConst(a | b)
	case "^":
		return intConst(a ^ b)
	default:
		return bottomVal
	}
}

// expandFormat renders a C format string over proven-constant arguments.
// Supported verbs: %s on strings, %d/%i/%u/%x (with optional l/ll/z length
// modifiers) on integers, and %%, each with optional 0/- flags, width, and
// precision — so zero-padded rank stamps like out.%05d.h5 resolve. A `*`
// width/precision or any other verb makes the expansion fail — the caller
// then keeps the path unresolved.
func expandFormat(format string, args []constVal) (string, bool) {
	var b strings.Builder
	ai := 0
	for i := 0; i < len(format); i++ {
		ch := format[i]
		if ch != '%' {
			b.WriteByte(ch)
			continue
		}
		i++
		if i >= len(format) {
			return "", false
		}
		if format[i] == '%' {
			b.WriteByte('%')
			continue
		}
		spec, n := parseVerbSpec(format[i:])
		if n < 0 {
			return "", false
		}
		i += n
		if i >= len(format) || ai >= len(args) {
			return "", false
		}
		switch format[i] {
		case 's':
			if args[ai].kind != constStr {
				return "", false
			}
			b.WriteString(spec.apply(args[ai].s))
		case 'd', 'i', 'u':
			if args[ai].kind != constInt {
				return "", false
			}
			b.WriteString(spec.applyInt(args[ai].i, 10))
		case 'x':
			if args[ai].kind != constInt {
				return "", false
			}
			b.WriteString(spec.applyInt(args[ai].i, 16))
		default:
			return "", false
		}
		ai++
	}
	return b.String(), true
}

// verbSpec is a parsed flags/width/precision prefix of one format verb.
type verbSpec struct {
	zero, left bool
	width      int
	prec       int // -1 means unset
}

// parseVerbSpec parses flags, width, precision, and l/z length modifiers
// from the front of s (the text after '%', up to but excluding the verb
// letter). It returns the spec and how many bytes were consumed, or a
// negative count for the unsupported `*`.
func parseVerbSpec(s string) (verbSpec, int) {
	sp := verbSpec{prec: -1}
	i := 0
	for i < len(s) && (s[i] == '0' || s[i] == '-') {
		if s[i] == '0' {
			sp.zero = true
		} else {
			sp.left = true
		}
		i++
	}
	if i < len(s) && s[i] == '*' {
		return sp, -1
	}
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		sp.width = sp.width*10 + int(s[i]-'0')
		i++
	}
	if i < len(s) && s[i] == '.' {
		i++
		if i < len(s) && s[i] == '*' {
			return sp, -1
		}
		sp.prec = 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			sp.prec = sp.prec*10 + int(s[i]-'0')
			i++
		}
	}
	for i < len(s) && (s[i] == 'l' || s[i] == 'z') {
		i++
	}
	return sp, i
}

// apply pads a rendered string to the spec (precision truncates strings,
// as in C).
func (sp verbSpec) apply(s string) string {
	if sp.prec >= 0 && len(s) > sp.prec {
		s = s[:sp.prec]
	}
	return sp.pad(s)
}

// applyInt renders an integer under the spec: precision sets minimum
// digits, the 0 flag zero-pads to the width (after any sign, ignored when
// precision or - is given — C semantics).
func (sp verbSpec) applyInt(v int64, base int) string {
	neg := v < 0
	digits := strconv.FormatInt(v, base)
	if neg {
		digits = digits[1:]
	}
	if sp.prec >= 0 {
		for len(digits) < sp.prec {
			digits = "0" + digits
		}
	} else if sp.zero && !sp.left {
		w := sp.width
		if neg {
			w--
		}
		for len(digits) < w {
			digits = "0" + digits
		}
	}
	if neg {
		digits = "-" + digits
	}
	return sp.pad(digits)
}

// pad space-pads s to the spec width on the side the - flag selects.
func (sp verbSpec) pad(s string) string {
	for len(s) < sp.width {
		if sp.left {
			s += " "
		} else {
			s = " " + s
		}
	}
	return s
}

// ResolvePathArgs scans the file for path-taking I/O calls (the discovery
// path-switch target set) whose path argument is not a string literal but
// resolves to a proven constant. The result maps statement ID -> resolved
// path, keyed further by the call name for diagnostics.
type ResolvedPathArg struct {
	Stmt csrc.Stmt
	Fn   string // enclosing function
	Call string // H5Fcreate, fopen, ...
	Arg  csrc.Expr
	Path string
}

// ResolvePathArgs returns every computed path argument the propagation can
// prove constant.
func (p *StringProp) ResolvePathArgs() []ResolvedPathArg {
	var out []ResolvedPathArg
	for _, fn := range p.file.Funcs {
		walkFuncStmts(fn, func(st csrc.Stmt) bool {
			for _, e := range stmtExprs(st) {
				csrc.WalkExpr(e, func(x csrc.Expr) bool {
					c, ok := x.(*csrc.CallExpr)
					if !ok {
						return true
					}
					idx, ok := pathCalls[c.Fun]
					if !ok || p.locals[fn.Name][c.Fun] || idx >= len(c.Args) {
						return true
					}
					if _, lit := c.Args[idx].(*csrc.StringLit); lit {
						return true
					}
					if path, ok := p.Resolve(st, c.Args[idx]); ok {
						out = append(out, ResolvedPathArg{
							Stmt: st, Fn: fn.Name, Call: c.Fun, Arg: c.Args[idx], Path: path,
						})
					}
					return true
				})
			}
			return true
		})
	}
	return out
}
