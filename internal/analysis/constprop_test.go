package analysis

import "testing"

// resolvePaths runs the propagation and returns call -> resolved path for
// every computed path argument it can prove.
func resolvePaths(t *testing.T, src string) map[string]string {
	t.Helper()
	p := NewStringProp(mustParse(t, src))
	out := map[string]string{}
	for _, r := range p.ResolvePathArgs() {
		out[r.Call] = r.Path
	}
	return out
}

func TestConstPropSprintfOfConstants(t *testing.T) {
	src := `const char* outdir = "/scratch";
int main() {
    char fname[256];
    sprintf(fname, "%s/%s", outdir, "vpic.h5");
    hid_t f = H5Fcreate(fname, H5F_ACC_TRUNC, H5P_DEFAULT, H5P_DEFAULT);
    H5Fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["H5Fcreate"] != "/scratch/vpic.h5" {
		t.Fatalf("H5Fcreate path = %q, want /scratch/vpic.h5 (all: %v)", got["H5Fcreate"], got)
	}
}

func TestConstPropIntFormatting(t *testing.T) {
	src := `int main() {
    int rank = 3;
    char fname[128];
    sprintf(fname, "/scratch/out.%d.h5", rank + 1);
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/scratch/out.4.h5" {
		t.Fatalf("fopen path = %q, want /scratch/out.4.h5", got["fopen"])
	}
}

func TestConstPropStrcpyStrcat(t *testing.T) {
	src := `int main() {
    char fname[128];
    strcpy(fname, "/scratch");
    strcat(fname, "/flash.h5");
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/scratch/flash.h5" {
		t.Fatalf("fopen path = %q, want /scratch/flash.h5", got["fopen"])
	}
}

func TestConstPropSnprintf(t *testing.T) {
	src := `int main() {
    char fname[128];
    snprintf(fname, 128, "%s", "/scratch/hacc.h5");
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/scratch/hacc.h5" {
		t.Fatalf("fopen path = %q, want /scratch/hacc.h5", got["fopen"])
	}
}

func TestConstPropZeroPaddedRankPath(t *testing.T) {
	src := `int main() {
    int rank = 7;
    char fname[128];
    sprintf(fname, "/scratch/out.%05d.h5", rank);
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/scratch/out.00007.h5" {
		t.Fatalf("fopen path = %q, want /scratch/out.00007.h5", got["fopen"])
	}
}

func TestConstPropSnprintfTruncates(t *testing.T) {
	src := `int main() {
    char fname[128];
    snprintf(fname, 9, "%s", "/scratch/hacc.h5");
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/scratch" {
		t.Fatalf("fopen path = %q, want the 8-byte truncation /scratch", got["fopen"])
	}
}

func TestConstPropSnprintfNonConstSizeFails(t *testing.T) {
	src := `int main(int argc) {
    char fname[128];
    snprintf(fname, argc, "%s", "/scratch/hacc.h5");
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	if got := resolvePaths(t, src); len(got) != 0 {
		t.Fatalf("unknown snprintf size must not resolve, got %v", got)
	}
}

func TestConstPropStrncpyFits(t *testing.T) {
	src := `int main() {
    char fname[128];
    strncpy(fname, "/scratch/bd.h5", 128);
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/scratch/bd.h5" {
		t.Fatalf("fopen path = %q, want /scratch/bd.h5", got["fopen"])
	}
}

func TestConstPropStrncpyTruncationUnproven(t *testing.T) {
	// A truncating strncpy leaves dst without a terminator — the resulting
	// path must stay unresolved rather than claim the prefix.
	src := `int main() {
    char fname[128];
    strncpy(fname, "/scratch/bdcats.h5", 8);
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	if got := resolvePaths(t, src); len(got) != 0 {
		t.Fatalf("truncating strncpy must not resolve, got %v", got)
	}
}

func TestConstPropStrongOverwrite(t *testing.T) {
	src := `int main() {
    char fname[128];
    sprintf(fname, "%s", "/tmp/first.h5");
    sprintf(fname, "%s", "/tmp/second.h5");
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/tmp/second.h5" {
		t.Fatalf("fopen path = %q, want the overwriting value /tmp/second.h5", got["fopen"])
	}
}

func TestConstPropBranchJoinDiffers(t *testing.T) {
	src := `int main() {
    int flag = 1;
    char fname[128];
    if (flag > 0) {
        sprintf(fname, "%s", "/tmp/a.h5");
    } else {
        sprintf(fname, "%s", "/tmp/b.h5");
    }
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	if got := resolvePaths(t, src); len(got) != 0 {
		t.Fatalf("differing branch constants must not resolve, got %v", got)
	}
}

func TestConstPropBranchJoinAgrees(t *testing.T) {
	src := `int main() {
    int flag = 1;
    char fname[128];
    if (flag > 0) {
        sprintf(fname, "%s", "/tmp/same.h5");
    } else {
        sprintf(fname, "%s", "/tmp/same.h5");
    }
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/tmp/same.h5" {
		t.Fatalf("agreeing branch constants should resolve, got %v", got)
	}
}

func TestConstPropLoopVariantNotResolved(t *testing.T) {
	src := `int main() {
    char fname[128];
    for (int i = 0; i < 4; i++) {
        sprintf(fname, "/tmp/out.%d", i);
        FILE* f = fopen(fname, "w");
        fclose(f);
    }
    return 0;
}`
	if got := resolvePaths(t, src); len(got) != 0 {
		t.Fatalf("loop-variant path must not resolve, got %v", got)
	}
}

func TestConstPropUnknownCallClobbers(t *testing.T) {
	src := `int main() {
    char fname[128];
    sprintf(fname, "%s", "/tmp/a.h5");
    read_name(fname);
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	if got := resolvePaths(t, src); len(got) != 0 {
		t.Fatalf("a bare-identifier argument to an unknown call must clobber, got %v", got)
	}
}

func TestConstPropAliasedBufferNotResolved(t *testing.T) {
	// p aliases fname; the later write through p would make fname's proven
	// constant stale, so aliased buffers never get strong updates.
	src := `int main() {
    char fname[128];
    sprintf(fname, "%s", "/tmp/a.h5");
    char* p = fname;
    sprintf(p, "%s", "/tmp/b.h5");
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	if got := resolvePaths(t, src); len(got) != 0 {
		t.Fatalf("copy-aliased buffer must not resolve, got %v", got)
	}
}

func TestConstPropInterproceduralReturn(t *testing.T) {
	src := `const char* base() {
    return "/scratch";
}
int main() {
    char fname[128];
    sprintf(fname, "%s/%s", base(), "vpic.h5");
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/scratch/vpic.h5" {
		t.Fatalf("return-constant helper should resolve, got %v", got)
	}
}

func TestConstPropInterproceduralParam(t *testing.T) {
	src := `void open_out(const char* dir) {
    char fname[128];
    sprintf(fname, "%s/%s", dir, "out.h5");
    FILE* f = fopen(fname, "w");
    fclose(f);
}
int main() {
    open_out("/scratch");
    return 0;
}`
	got := resolvePaths(t, src)
	if got["fopen"] != "/scratch/out.h5" {
		t.Fatalf("single-constant call-site parameter should resolve, got %v", got)
	}
}

func TestConstPropParamDiffersAcrossSites(t *testing.T) {
	src := `void open_out(const char* dir) {
    char fname[128];
    sprintf(fname, "%s/%s", dir, "out.h5");
    FILE* f = fopen(fname, "w");
    fclose(f);
}
int main() {
    open_out("/scratch");
    open_out("/tmp");
    return 0;
}`
	if got := resolvePaths(t, src); len(got) != 0 {
		t.Fatalf("differing call-site constants must not resolve, got %v", got)
	}
}

func TestConstPropUnsupportedVerbFails(t *testing.T) {
	src := `int main() {
    char fname[128];
    sprintf(fname, "/tmp/out.%f", 1.5);
    FILE* f = fopen(fname, "w");
    fclose(f);
    return 0;
}`
	if got := resolvePaths(t, src); len(got) != 0 {
		t.Fatalf("unsupported format verb must not resolve, got %v", got)
	}
}

func TestExpandFormat(t *testing.T) {
	cases := []struct {
		format string
		args   []constVal
		want   string
		ok     bool
	}{
		{"%s/%s", []constVal{strConst("/a"), strConst("b.h5")}, "/a/b.h5", true},
		{"out.%d", []constVal{intConst(7)}, "out.7", true},
		{"out.%ld", []constVal{intConst(7)}, "out.7", true},
		{"%x", []constVal{intConst(255)}, "ff", true},
		{"100%%", nil, "100%", true},
		{"%s", []constVal{bottomVal}, "", false},
		{"%s", nil, "", false},
		{"trailing%", nil, "", false},
		{"plain", nil, "plain", true},
		// width, precision, and flags
		{"out.%05d.h5", []constVal{intConst(7)}, "out.00007.h5", true},
		{"out.%05ld.h5", []constVal{intConst(42)}, "out.00042.h5", true},
		{"%8d", []constVal{intConst(1)}, "       1", true},
		{"%-4d|", []constVal{intConst(3)}, "3   |", true},
		{"%04x", []constVal{intConst(255)}, "00ff", true},
		{"%.3d", []constVal{intConst(7)}, "007", true},
		{"%05d", []constVal{intConst(-42)}, "-0042", true},
		{"%6s", []constVal{strConst("ab")}, "    ab", true},
		{"%-6s|", []constVal{strConst("ab")}, "ab    |", true},
		{"%.2s", []constVal{strConst("abcd")}, "ab", true},
		{"%*d", []constVal{intConst(5), intConst(1)}, "", false},
		{"%.*d", []constVal{intConst(5), intConst(1)}, "", false},
	}
	for _, c := range cases {
		got, ok := expandFormat(c.format, c.args)
		if ok != c.ok || got != c.want {
			t.Errorf("expandFormat(%q) = %q, %v; want %q, %v", c.format, got, ok, c.want, c.ok)
		}
	}
}
