// Package posixio provides the memory-backed storage target used by TunIO's
// I/O path switching optimization: when the Application I/O Discovery
// component rewrites file paths to point at /dev/shm, I/O lands here
// instead of the simulated Lustre scratch, trading tuning fidelity for much
// cheaper objective evaluations (§III-B of the paper).
//
// The model is deliberately simple: per-node memory bandwidth with a tiny
// per-operation latency, no striping, no RMW, and near-free metadata. It
// also serves as the "fast but wrong to tune against" storage contrast in
// the path-switching experiments.
package posixio

import (
	"fmt"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
)

// MemFS is a /dev/shm-like in-memory file target.
type MemFS struct {
	sim   *cluster.Sim
	opLat float64
	files map[string]int64 // name -> size high-water mark
}

var _ ioreq.Backend = (*MemFS)(nil)

// NewMemFS returns a memory file system over the simulation.
func NewMemFS(sim *cluster.Sim) *MemFS {
	return &MemFS{sim: sim, opLat: 1e-6, files: make(map[string]int64)}
}

// Name implements ioreq.Backend.
func (m *MemFS) Name() string { return "mem" }

// IsMemPath reports whether a file path targets the memory backend (the
// discovery component's path switching prepends /dev/shm).
func IsMemPath(path string) bool {
	return len(path) >= 8 && path[:8] == "/dev/shm"
}

func (m *MemFS) phase(name string, extents []ioreq.Extent, isWrite bool) float64 {
	if len(extents) == 0 {
		return 0
	}
	perNode := make(map[int]int64)
	ppn := m.sim.Cluster.ProcsPerNode
	var total int64
	var ops int64
	for _, e := range extents {
		if err := e.Validate(); err != nil {
			panic(fmt.Sprintf("posixio: %v", err))
		}
		perNode[e.Rank/ppn] += e.Size
		total += e.Size
		ops += e.Requests()
		if isWrite {
			if end := e.End(); end > m.files[name] {
				m.files[name] = end
			}
		}
	}
	worst := 0.0
	for _, b := range perNode {
		t := float64(b) / m.sim.Cluster.MemBandwidth
		if t > worst {
			worst = t
		}
	}
	elapsed := worst + float64(ops)*m.opLat
	elapsed = m.sim.Perturb(elapsed)
	m.sim.Advance(elapsed)
	lc := m.sim.Report.Layer("mem")
	if isWrite {
		lc.WriteOps += int64(ops)
		lc.BytesWritten += total
		lc.WriteTime += elapsed
	} else {
		lc.ReadOps += int64(ops)
		lc.BytesRead += total
		lc.ReadTime += elapsed
	}
	return elapsed
}

// WritePhase implements ioreq.Backend.
func (m *MemFS) WritePhase(name string, extents []ioreq.Extent) float64 {
	return m.phase(name, extents, true)
}

// ReadPhase implements ioreq.Backend.
func (m *MemFS) ReadPhase(name string, extents []ioreq.Extent) float64 {
	return m.phase(name, extents, false)
}

// MetaOps implements ioreq.Backend: in-memory metadata is near free.
func (m *MemFS) MetaOps(n, nclients int) float64 {
	if n <= 0 {
		return 0
	}
	d := float64(n) * m.opLat
	m.sim.Advance(d)
	m.sim.Report.AddMeta("mem", int64(n), d)
	return d
}

// Size returns a file's high-water mark (0 if never written).
func (m *MemFS) Size(name string) int64 { return m.files[name] }
