package posixio

import (
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/ioreq"
)

func newSim(t *testing.T) *cluster.Sim {
	t.Helper()
	c := cluster.CoriHaswell(4, 32)
	c.Noise = 0
	s, err := cluster.NewSim(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIsMemPath(t *testing.T) {
	if !IsMemPath("/dev/shm/out.h5") {
		t.Fatal("want true")
	}
	if IsMemPath("/scratch/out.h5") || IsMemPath("x") {
		t.Fatal("want false")
	}
}

func TestWriteReadCharges(t *testing.T) {
	sim := newSim(t)
	m := NewMemFS(sim)
	d := m.WritePhase("f", []ioreq.Extent{{Offset: 0, Size: 1 << 20, Rank: 0}})
	if d <= 0 {
		t.Fatal("write free")
	}
	if m.Size("f") != 1<<20 {
		t.Fatalf("Size = %d", m.Size("f"))
	}
	d2 := m.ReadPhase("f", []ioreq.Extent{{Offset: 0, Size: 1 << 20, Rank: 0}})
	if d2 <= 0 {
		t.Fatal("read free")
	}
	lc := sim.Report.Layer("mem")
	if lc.BytesWritten != 1<<20 || lc.BytesRead != 1<<20 {
		t.Fatalf("counters %+v", lc)
	}
	if m.Name() != "mem" {
		t.Fatal("name")
	}
}

func TestMemMuchFasterThanTypicalLustreSmallIO(t *testing.T) {
	sim := newSim(t)
	m := NewMemFS(sim)
	// 1000 tiny writes: mem charges ~1us each; this is the property path
	// switching exploits.
	var extents []ioreq.Extent
	for i := 0; i < 1000; i++ {
		extents = append(extents, ioreq.Extent{Offset: int64(i) * 4096, Size: 4096, Rank: i % 128})
	}
	d := m.WritePhase("f", extents)
	if d > 0.01 {
		t.Fatalf("mem small-write phase took %.4fs, want ~millisecond", d)
	}
}

func TestMetaOpsNearFree(t *testing.T) {
	sim := newSim(t)
	m := NewMemFS(sim)
	if m.MetaOps(0, 1) != 0 {
		t.Fatal("zero ops should be free")
	}
	d := m.MetaOps(100, 128)
	if d <= 0 || d > 1e-3 {
		t.Fatalf("meta = %v", d)
	}
	if sim.Report.Layer("mem").MetaOps != 100 {
		t.Fatal("meta ops not counted")
	}
}

func TestEmptyPhaseFree(t *testing.T) {
	m := NewMemFS(newSim(t))
	if m.WritePhase("f", nil) != 0 || m.ReadPhase("f", nil) != 0 {
		t.Fatal("empty phases must be free")
	}
}

func TestInvalidExtentPanics(t *testing.T) {
	m := NewMemFS(newSim(t))
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	m.WritePhase("f", []ioreq.Extent{{Offset: 0, Size: -1}})
}
