package posixio

// Reset discards all files, returning the MemFS to its post-NewMemFS state.
func (m *MemFS) Reset() {
	clear(m.files)
}
