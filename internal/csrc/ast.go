package csrc

// Expr is a C expression node.
type Expr interface{ exprNode() }

// Ident is a variable or function name.
type Ident struct{ Name string }

// NumberLit is an integer or floating literal.
type NumberLit struct {
	Text    string
	IsFloat bool
	Int     int64
	Float   float64
}

// StringLit is a string literal (decoded).
type StringLit struct{ Value string }

// CharLit is a character literal.
type CharLit struct{ Value byte }

// BinaryExpr is X op Y.
type BinaryExpr struct {
	Op   string
	X, Y Expr
}

// UnaryExpr is op X (-, !, ~, &, *).
type UnaryExpr struct {
	Op string
	X  Expr
}

// CallExpr is Fun(Args...).
type CallExpr struct {
	Fun  string
	Args []Expr
}

// IndexExpr is X[Index].
type IndexExpr struct {
	X     Expr
	Index Expr
}

// CastExpr is (Type) X.
type CastExpr struct {
	Type string
	X    Expr
}

// SizeofExpr is sizeof(Type) (resolved to a byte count at interpretation).
type SizeofExpr struct{ Type string }

func (*Ident) exprNode()      {}
func (*NumberLit) exprNode()  {}
func (*StringLit) exprNode()  {}
func (*CharLit) exprNode()    {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*CallExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*CastExpr) exprNode()   {}
func (*SizeofExpr) exprNode() {}

// Stmt is a C statement node. Every statement carries a unique ID
// (assigned by the parser) and, after formatting, the printed line it
// occupies — the unit of the paper's marking loop.
type Stmt interface {
	stmtNode()
	Base() *StmtBase
}

// StmtBase carries identity and position shared by all statements.
type StmtBase struct {
	ID   int
	Pos  int // 1-based source line of the statement's first token
	Line int // printed line after Format; 0 before formatting
}

func (b *StmtBase) Base() *StmtBase { return b }

// DeclStmt declares (and optionally initializes) a variable.
type DeclStmt struct {
	StmtBase
	Type     string
	Name     string
	ArrayLen Expr   // non-nil for array declarations
	Init     Expr   // scalar initializer
	InitList []Expr // brace initializer for arrays
}

// ExprStmt evaluates an expression for effect (typically a call).
type ExprStmt struct {
	StmtBase
	X Expr
}

// AssignStmt is LHS op RHS with op in {=, +=, -=, *=, /=, %=} or the
// postfix forms (op "++"/"--", RHS nil).
type AssignStmt struct {
	StmtBase
	Op  string
	LHS Expr
	RHS Expr
}

// Block is a brace-delimited statement list.
type Block struct {
	StmtBase
	Stmts []Stmt
}

// IfStmt is a conditional with optional else.
type IfStmt struct {
	StmtBase
	Cond Expr
	Then *Block
	Else *Block // nil when absent
}

// ForStmt is a C for loop.
type ForStmt struct {
	StmtBase
	Init Stmt // DeclStmt or AssignStmt, may be nil
	Cond Expr // may be nil
	Post Stmt // AssignStmt, may be nil
	Body *Block
}

// WhileStmt is a while loop.
type WhileStmt struct {
	StmtBase
	Cond Expr
	Body *Block
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	StmtBase
	X Expr // may be nil
}

// BreakStmt breaks the enclosing loop.
type BreakStmt struct{ StmtBase }

// ContinueStmt continues the enclosing loop.
type ContinueStmt struct{ StmtBase }

func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*Block) stmtNode()        {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Param is a function parameter.
type Param struct {
	Type string
	Name string
}

// FuncDecl is a function definition.
type FuncDecl struct {
	RetType string
	Name    string
	Params  []Param
	Body    *Block
}

// File is a parsed translation unit.
type File struct {
	Globals []*DeclStmt
	Funcs   []*FuncDecl
	Defines map[string]string
}

// Func returns the named function, or nil.
func (f *File) Func(name string) *FuncDecl {
	for _, fn := range f.Funcs {
		if fn.Name == name {
			return fn
		}
	}
	return nil
}

// WalkStmts visits every statement in the file in source order (including
// nested blocks and loop headers' init/post statements).
func (f *File) WalkStmts(fn func(Stmt) bool) {
	var walk func(s Stmt) bool
	walkBlock := func(b *Block) bool {
		if b == nil {
			return true
		}
		for _, s := range b.Stmts {
			if !walk(s) {
				return false
			}
		}
		return true
	}
	walk = func(s Stmt) bool {
		if s == nil {
			return true
		}
		if !fn(s) {
			return false
		}
		switch st := s.(type) {
		case *Block:
			return walkBlock(st)
		case *IfStmt:
			if !walkBlock(st.Then) {
				return false
			}
			return walkBlock(st.Else)
		case *ForStmt:
			if st.Init != nil && !walk(st.Init) {
				return false
			}
			if st.Post != nil && !walk(st.Post) {
				return false
			}
			return walkBlock(st.Body)
		case *WhileStmt:
			return walkBlock(st.Body)
		}
		return true
	}
	for _, g := range f.Globals {
		if !walk(g) {
			return
		}
	}
	for _, fd := range f.Funcs {
		if !walkBlock(fd.Body) {
			return
		}
	}
}

// WalkExpr visits an expression tree preorder.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Y, fn)
	case *UnaryExpr:
		WalkExpr(x.X, fn)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *IndexExpr:
		WalkExpr(x.X, fn)
		WalkExpr(x.Index, fn)
	case *CastExpr:
		WalkExpr(x.X, fn)
	}
}

// ExprVars returns the variable names referenced in an expression.
func ExprVars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	WalkExpr(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok && !seen[id.Name] {
			seen[id.Name] = true
			out = append(out, id.Name)
		}
		return true
	})
	return out
}
