package csrc

import (
	"strings"
	"testing"
)

const tiny = `
#include <hdf5.h>
#define NP 1024

int main(int argc, char** argv) {
    int rank = 0;
    hsize_t dims[1] = {NP};
    double x = 3.5e2;
    for (int i = 0; i < NP; i++) { x = x + 1.0; }
    if (x > 10 && rank == 0) {
        printf("big %f\n", x);
    } else {
        x = -x;
    }
    while (x > 0) { x -= 1.0; }
    return 0;
}
`

func TestLexBasics(t *testing.T) {
	toks, defines, err := Lex(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if defines["NP"] != "1024" {
		t.Fatalf("defines = %v", defines)
	}
	if toks[len(toks)-1].Kind != TokEOF {
		t.Fatal("missing EOF token")
	}
	// #include must vanish
	for _, tok := range toks {
		if tok.Text == "include" || tok.Text == "hdf5" {
			t.Fatalf("include leaked into tokens: %v", tok)
		}
	}
}

func TestLexMacroExpansion(t *testing.T) {
	toks, _, err := Lex("#define N 42\nint x = N;")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokNumber && tok.Text == "42" {
			found = true
		}
		if tok.Text == "N" {
			t.Fatal("macro not expanded")
		}
	}
	if !found {
		t.Fatal("expansion missing")
	}
}

func TestLexComments(t *testing.T) {
	toks, _, err := Lex("int a; // c1\n/* c2\nc3 */ int b;")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if strings.Contains(tok.Text, "c1") || strings.Contains(tok.Text, "c3") {
			t.Fatal("comment leaked")
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, _, err := Lex(`char* s = "a\nb\"c";`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if tok.Kind == TokString {
			if tok.Text != "a\nb\"c" {
				t.Fatalf("string = %q", tok.Text)
			}
			return
		}
	}
	t.Fatal("no string token")
}

func TestLexErrors(t *testing.T) {
	if _, _, err := Lex(`char* s = "unterminated`); err == nil {
		t.Fatal("want error")
	}
	if _, _, err := Lex("int a = $;"); err == nil {
		t.Fatal("want error for bad char")
	}
}

func TestParseTiny(t *testing.T) {
	f, err := Parse(tiny)
	if err != nil {
		t.Fatal(err)
	}
	main := f.Func("main")
	if main == nil {
		t.Fatal("main not found")
	}
	if len(main.Params) != 2 || main.Params[1].Type != "char**" {
		t.Fatalf("params = %+v", main.Params)
	}
	// count statement kinds
	var decls, fors, ifs, whiles, returns int
	f.WalkStmts(func(s Stmt) bool {
		switch s.(type) {
		case *DeclStmt:
			decls++
		case *ForStmt:
			fors++
		case *IfStmt:
			ifs++
		case *WhileStmt:
			whiles++
		case *ReturnStmt:
			returns++
		}
		return true
	})
	if decls < 4 || fors != 1 || ifs != 1 || whiles != 1 || returns != 1 {
		t.Fatalf("stmt counts: decls=%d fors=%d ifs=%d whiles=%d returns=%d",
			decls, fors, ifs, whiles, returns)
	}
}

func TestParseArrayInitializer(t *testing.T) {
	f, err := Parse("int main() { hsize_t dims[2] = {4, 8}; return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	var decl *DeclStmt
	f.WalkStmts(func(s Stmt) bool {
		if d, ok := s.(*DeclStmt); ok && d.Name == "dims" {
			decl = d
		}
		return true
	})
	if decl == nil || len(decl.InitList) != 2 {
		t.Fatalf("decl = %+v", decl)
	}
}

func TestParsePrecedence(t *testing.T) {
	f, err := Parse("int main() { int x = 1 + 2 * 3; return x; }")
	if err != nil {
		t.Fatal(err)
	}
	var decl *DeclStmt
	f.WalkStmts(func(s Stmt) bool {
		if d, ok := s.(*DeclStmt); ok && d.Name == "x" {
			decl = d
		}
		return true
	})
	be, ok := decl.Init.(*BinaryExpr)
	if !ok || be.Op != "+" {
		t.Fatalf("top op = %v", PrintExpr(decl.Init))
	}
	if inner, ok := be.Y.(*BinaryExpr); !ok || inner.Op != "*" {
		t.Fatalf("precedence wrong: %v", PrintExpr(decl.Init))
	}
}

func TestParseCallsAndAddressOf(t *testing.T) {
	src := `int main() {
		int rank;
		MPI_Comm_rank(0, &rank);
		hid_t file = H5Fcreate("out.h5", 0, 0, 0);
		H5Fclose(file);
		return 0;
	}`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var calls []string
	f.WalkStmts(func(s Stmt) bool {
		if es, ok := s.(*ExprStmt); ok {
			if c, ok := es.X.(*CallExpr); ok {
				calls = append(calls, c.Fun)
			}
		}
		if d, ok := s.(*DeclStmt); ok && d.Init != nil {
			if c, ok := d.Init.(*CallExpr); ok {
				calls = append(calls, c.Fun)
			}
		}
		return true
	})
	want := map[string]bool{"MPI_Comm_rank": true, "H5Fcreate": true, "H5Fclose": true}
	for _, c := range calls {
		delete(want, c)
	}
	if len(want) != 0 {
		t.Fatalf("missing calls: %v (got %v)", want, calls)
	}
}

func TestParseSizeofAndCast(t *testing.T) {
	f, err := Parse("int main() { double* p = (double*)malloc(100 * sizeof(double)); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	var decl *DeclStmt
	f.WalkStmts(func(s Stmt) bool {
		if d, ok := s.(*DeclStmt); ok && d.Name == "p" {
			decl = d
		}
		return true
	})
	cast, ok := decl.Init.(*CastExpr)
	if !ok || cast.Type != "double*" {
		t.Fatalf("init = %v", PrintExpr(decl.Init))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"int main() {",                 // unterminated block
		"foo bar;",                     // not a type
		"int main() { int = 3; }",      // missing name
		"int main() { x ===; }",        // bad expression
		"int main() { if x > 0 {} }",   // missing parens
		"int main() { for (;;; ) {} }", // extra semicolon
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestFormatOneStatementPerLine(t *testing.T) {
	f, err := Parse(tiny)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || trimmed == "{" || trimmed == "}" || trimmed == "else" {
			continue
		}
		// at most one semicolon per line except for-headers
		if !strings.HasPrefix(trimmed, "for ") && strings.Count(trimmed, ";") > 1 {
			t.Fatalf("multiple statements on one line: %q", trimmed)
		}
	}
	// braces on their own lines
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.Contains(trimmed, "{") && trimmed != "{" && !strings.Contains(trimmed, "= {") {
			t.Fatalf("brace not on its own line: %q", trimmed)
		}
	}
}

func TestFormatAssignsLines(t *testing.T) {
	f, err := Parse(tiny)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	lines := strings.Split(out, "\n")
	f.WalkStmts(func(s Stmt) bool {
		b := s.Base()
		if b.Line == 0 {
			t.Fatalf("statement %T has no line", s)
		}
		if b.Line > len(lines) {
			t.Fatalf("line %d out of range", b.Line)
		}
		return true
	})
}

func TestFormatRoundTripParses(t *testing.T) {
	f, err := Parse(tiny)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	f2, err := Parse(out)
	if err != nil {
		t.Fatalf("formatted output does not reparse: %v\n%s", err, out)
	}
	if Format(f2) != out {
		t.Fatal("Format not idempotent")
	}
}

func TestExprVars(t *testing.T) {
	f, _ := Parse("int main() { int z = a + b[i] * foo(c, a); return z; }")
	var decl *DeclStmt
	f.WalkStmts(func(s Stmt) bool {
		if d, ok := s.(*DeclStmt); ok && d.Name == "z" {
			decl = d
		}
		return true
	})
	vars := ExprVars(decl.Init)
	want := map[string]bool{"a": true, "b": true, "i": true, "c": true}
	for _, v := range vars {
		delete(want, v)
	}
	if len(want) != 0 {
		t.Fatalf("missing vars %v in %v", want, vars)
	}
	// deduplicated
	count := 0
	for _, v := range vars {
		if v == "a" {
			count++
		}
	}
	if count != 1 {
		t.Fatal("vars not deduplicated")
	}
}

func TestGlobals(t *testing.T) {
	f, err := Parse("int gcount = 5;\nint main() { return gcount; }")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 1 || f.Globals[0].Name != "gcount" {
		t.Fatalf("globals = %+v", f.Globals)
	}
}

func TestWalkStmtsEarlyStop(t *testing.T) {
	f, _ := Parse(tiny)
	n := 0
	f.WalkStmts(func(s Stmt) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestParseTypeVariants(t *testing.T) {
	src := `
unsigned long counter = 0;
const double PI = 3.14159;
static int flag;
struct stat info;
int main() {
    unsigned int x = 1;
    long long big = 5;
    return 0;
}
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 4 {
		t.Fatalf("globals = %d", len(f.Globals))
	}
	if f.Globals[3].Type != "struct stat" {
		t.Fatalf("struct type = %q", f.Globals[3].Type)
	}
}

func TestParseSingleStatementBodies(t *testing.T) {
	// if/for/while without braces wrap in implicit blocks.
	f, err := Parse(`
int main() {
    int s = 0;
    for (int i = 0; i < 3; i++) s += i;
    if (s > 0) s = -s;
    while (s < 0) s++;
    return s;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	if _, err := Parse(out); err != nil {
		t.Fatalf("formatted braceless bodies do not reparse: %v\n%s", err, out)
	}
}

func TestParseCompoundAssignOps(t *testing.T) {
	f, err := Parse(`
int main() {
    int x = 100;
    x += 1;
    x -= 2;
    x *= 3;
    x /= 4;
    x %= 5;
    x--;
    return x;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]bool{}
	f.WalkStmts(func(s Stmt) bool {
		if a, ok := s.(*AssignStmt); ok {
			ops[a.Op] = true
		}
		return true
	})
	for _, want := range []string{"+=", "-=", "*=", "/=", "%=", "--"} {
		if !ops[want] {
			t.Errorf("op %q not parsed as assignment", want)
		}
	}
}

func TestParseElseIfChain(t *testing.T) {
	f, err := Parse(`
int main() {
    int v = 3;
    if (v == 1) {
        v = 10;
    } else if (v == 2) {
        v = 20;
    } else {
        v = 30;
    }
    return v;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// the else-if nests as IfStmt inside the Else block
	depth := 0
	f.WalkStmts(func(s Stmt) bool {
		if _, ok := s.(*IfStmt); ok {
			depth++
		}
		return true
	})
	if depth != 2 {
		t.Fatalf("if count = %d, want 2", depth)
	}
}

func TestParamArrayDecaysToPointer(t *testing.T) {
	f, err := Parse(`void fill(double vals[], int n) { vals[0] = 1.0; }
int main() { return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	fn := f.Func("fill")
	if fn == nil || fn.Params[0].Type != "double*" {
		t.Fatalf("param type = %+v", fn.Params)
	}
}

func TestFormatEmptyFunction(t *testing.T) {
	f, err := Parse("void nop() {}\nint main() { nop(); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(Format(f)); err != nil {
		t.Fatal(err)
	}
}

func TestExprVarsNil(t *testing.T) {
	if got := ExprVars(nil); got != nil {
		t.Fatalf("ExprVars(nil) = %v", got)
	}
}

func TestPrintExprCoverage(t *testing.T) {
	f, err := Parse(`
int main() {
    char c = 'x';
    int n = sizeof(long);
    double d = (double)n;
    int neg = -n;
    int not = !n;
    int inv = ~n;
    return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f)
	for _, want := range []string{"'x'", "sizeof(long)", "(double)", "-n", "!n", "~n"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q:\n%s", want, out)
		}
	}
}
