// Package csrc is the C-subset frontend behind TunIO's Application I/O
// Discovery component: a lexer, recursive-descent parser, AST with line
// tracking, and a formatter that enforces the paper's preprocessing rules
// (one statement per line, braces on their own lines) so that the marking
// loop can operate per line exactly as the reference implementation does
// with its clang-format pass (§III-B).
//
// The subset covers what HPC I/O kernels are written in: declarations,
// assignments, arithmetic/logical expressions, arrays, address-of, calls,
// if/else, for, while, function definitions, #define object macros, and
// #include lines (ignored).
package csrc

import "fmt"

// TokKind classifies tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokChar
	TokPunct   // operators and punctuation
	TokKeyword // C keywords in the subset
)

// Token is one lexeme with position.
type Token struct {
	Kind TokKind
	Text string
	Line int // 1-based source line
	Col  int
}

func (t Token) String() string {
	return fmt.Sprintf("%s@%d:%d", t.Text, t.Line, t.Col)
}

// keywords of the subset.
var keywords = map[string]bool{
	"if": true, "else": true, "for": true, "while": true, "return": true,
	"break": true, "continue": true, "void": true, "int": true, "long": true,
	"float": true, "double": true, "char": true, "unsigned": true,
	"const": true, "static": true, "struct": true, "sizeof": true,
}

// typeNames are identifiers treated as type keywords (HDF5/MPI typedefs).
var typeNames = map[string]bool{
	"hid_t": true, "hsize_t": true, "herr_t": true, "hssize_t": true,
	"MPI_Comm": true, "MPI_Info": true, "MPI_Status": true, "size_t": true,
	"int32_t": true, "int64_t": true, "uint64_t": true, "FILE": true,
}

// IsTypeName reports whether an identifier begins a declaration.
func IsTypeName(s string) bool {
	return typeNames[s] || s == "void" || s == "int" || s == "long" ||
		s == "float" || s == "double" || s == "char" || s == "unsigned"
}
