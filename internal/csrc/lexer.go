package csrc

import (
	"fmt"
	"strings"
)

// Lexer tokenizes a C-subset source string.
type Lexer struct {
	src     string
	pos     int
	line    int
	col     int
	defines map[string]string // object-like #define macros
	toks    []Token
}

// Lex tokenizes src, expanding object-like #define macros and dropping
// #include lines and comments. It returns the token stream (terminated by
// a TokEOF token) and the macro table.
func Lex(src string) ([]Token, map[string]string, error) {
	l := &Lexer{src: src, line: 1, col: 1, defines: map[string]string{}}
	if err := l.run(); err != nil {
		return nil, nil, err
	}
	return l.toks, l.defines, nil
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) emit(kind TokKind, text string, line, col int) {
	l.emitDepth(kind, text, line, col, 0)
}

func (l *Lexer) emitDepth(kind TokKind, text string, line, col, depth int) {
	// expand object-like macros (recursively: macro bodies may reference
	// other macros; depth-limited against accidental cycles)
	if kind == TokIdent && depth < 16 {
		if repl, ok := l.defines[text]; ok {
			sub, _, err := Lex(repl)
			if err == nil {
				for _, t := range sub {
					if t.Kind == TokEOF {
						break
					}
					l.emitDepth(t.Kind, t.Text, line, col, depth+1)
				}
				return
			}
		}
	}
	if kind == TokIdent && keywords[text] {
		kind = TokKeyword
	}
	l.toks = append(l.toks, Token{Kind: kind, Text: text, Line: line, Col: col})
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) run() error {
	for l.pos < len(l.src) {
		c := l.peek()
		line, col := l.line, l.col
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			l.advance()
			l.advance()
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		case c == '#':
			if err := l.directive(); err != nil {
				return err
			}
		case isIdentStart(c):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(l.peek()) {
				l.advance()
			}
			l.emit(TokIdent, l.src[start:l.pos], line, col)
		case isDigit(c) || (c == '.' && isDigit(l.peek2())):
			start := l.pos
			seenDot, seenExp := false, false
			isHex := false
			for l.pos < len(l.src) {
				ch := l.peek()
				if (ch == 'x' || ch == 'X') && l.src[start:l.pos] == "0" {
					isHex = true
					l.advance()
					continue
				}
				if isDigit(ch) || (isHex && ((ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F'))) {
					l.advance()
					continue
				}
				if ch == '.' && !seenDot && !isHex {
					seenDot = true
					l.advance()
					continue
				}
				if (ch == 'e' || ch == 'E') && !seenExp && !isHex {
					seenExp = true
					l.advance()
					if l.peek() == '+' || l.peek() == '-' {
						l.advance()
					}
					continue
				}
				if ch == 'L' || ch == 'U' || ch == 'l' || ch == 'u' {
					l.advance()
					continue
				}
				break
			}
			text := l.src[start:l.pos]
			text = strings.TrimRight(text, "LUlu")
			l.emit(TokNumber, text, line, col)
		case c == '"':
			l.advance()
			var sb strings.Builder
			for l.pos < len(l.src) && l.peek() != '"' {
				ch := l.advance()
				if ch == '\\' && l.pos < len(l.src) {
					esc := l.advance()
					switch esc {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case '\\', '"':
						sb.WriteByte(esc)
					default:
						sb.WriteByte(esc)
					}
					continue
				}
				sb.WriteByte(ch)
			}
			if l.pos >= len(l.src) {
				return fmt.Errorf("csrc: line %d: unterminated string", line)
			}
			l.advance() // closing quote
			l.emit(TokString, sb.String(), line, col)
		case c == '\'':
			l.advance()
			var val byte
			if l.peek() == '\\' {
				l.advance()
				val = l.advance()
				switch val {
				case 'n':
					val = '\n'
				case 't':
					val = '\t'
				case '0':
					val = 0
				}
			} else {
				val = l.advance()
			}
			if l.peek() != '\'' {
				return fmt.Errorf("csrc: line %d: bad char literal", line)
			}
			l.advance()
			l.emit(TokChar, string(val), line, col)
		default:
			// multi-char operators, longest first
			ops := []string{
				"<<=", ">>=", "...",
				"==", "!=", "<=", ">=", "&&", "||", "++", "--",
				"+=", "-=", "*=", "/=", "%=", "->", "<<", ">>",
			}
			matched := false
			for _, op := range ops {
				if strings.HasPrefix(l.src[l.pos:], op) {
					for range op {
						l.advance()
					}
					l.emit(TokPunct, op, line, col)
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~',
				'(', ')', '{', '}', '[', ']', ';', ',', '.', '?', ':':
				l.advance()
				l.emit(TokPunct, string(c), line, col)
			default:
				return fmt.Errorf("csrc: line %d:%d: unexpected character %q", line, col, c)
			}
		}
	}
	l.toks = append(l.toks, Token{Kind: TokEOF, Line: l.line, Col: l.col})
	return nil
}

// directive handles #include (skipped) and #define NAME value.
func (l *Lexer) directive() error {
	start := l.pos
	for l.pos < len(l.src) && l.peek() != '\n' {
		// support line continuation
		if l.peek() == '\\' && l.peek2() == '\n' {
			l.advance()
			l.advance()
			continue
		}
		l.advance()
	}
	text := l.src[start:l.pos]
	fields := strings.Fields(strings.TrimPrefix(text, "#"))
	if len(fields) == 0 {
		return nil
	}
	switch fields[0] {
	case "include", "pragma", "ifdef", "ifndef", "endif", "if", "undef":
		return nil
	case "define":
		if len(fields) >= 3 && !strings.Contains(fields[1], "(") {
			l.defines[fields[1]] = strings.Join(fields[2:], " ")
		}
		return nil
	default:
		return nil
	}
}
