package csrc

import (
	"fmt"
	"strings"
)

// Format pretty-prints the file with the paper's preprocessing rules —
// exactly one statement per line, braces on their own lines — and assigns
// every statement its printed line number (the marking unit). It returns
// the formatted source.
func Format(f *File) string {
	p := &printer{}
	for _, g := range f.Globals {
		p.stmt(g, 0)
	}
	for _, fn := range f.Funcs {
		p.funcDecl(fn)
	}
	return p.sb.String()
}

type printer struct {
	sb   strings.Builder
	line int
}

func (p *printer) emit(indent int, text string) int {
	p.line++
	p.sb.WriteString(strings.Repeat("  ", indent))
	p.sb.WriteString(text)
	p.sb.WriteByte('\n')
	return p.line
}

func (p *printer) funcDecl(fn *FuncDecl) {
	var ps []string
	for _, par := range fn.Params {
		ps = append(ps, strings.TrimSpace(par.Type+" "+par.Name))
	}
	p.emit(0, fmt.Sprintf("%s %s(%s)", fn.RetType, fn.Name, strings.Join(ps, ", ")))
	p.block(fn.Body, 0)
	p.emit(0, "")
}

func (p *printer) block(b *Block, indent int) {
	b.Line = p.emit(indent, "{")
	for _, s := range b.Stmts {
		p.stmt(s, indent+1)
	}
	p.emit(indent, "}")
}

func (p *printer) stmt(s Stmt, indent int) {
	switch st := s.(type) {
	case *DeclStmt:
		st.Line = p.emit(indent, declText(st)+";")
	case *ExprStmt:
		st.Line = p.emit(indent, PrintExpr(st.X)+";")
	case *AssignStmt:
		st.Line = p.emit(indent, assignText(st)+";")
	case *Block:
		p.block(st, indent)
	case *IfStmt:
		st.Line = p.emit(indent, "if ("+PrintExpr(st.Cond)+")")
		p.block(st.Then, indent)
		if st.Else != nil {
			p.emit(indent, "else")
			p.block(st.Else, indent)
		}
	case *ForStmt:
		init, cond, post := "", "", ""
		if st.Init != nil {
			init = simpleText(st.Init)
		}
		if st.Cond != nil {
			cond = PrintExpr(st.Cond)
		}
		if st.Post != nil {
			post = simpleText(st.Post)
		}
		st.Line = p.emit(indent, fmt.Sprintf("for (%s; %s; %s)", init, cond, post))
		// header components share the header's line (per-line marking unit)
		if st.Init != nil {
			st.Init.Base().Line = st.Line
		}
		if st.Post != nil {
			st.Post.Base().Line = st.Line
		}
		p.block(st.Body, indent)
	case *WhileStmt:
		st.Line = p.emit(indent, "while ("+PrintExpr(st.Cond)+")")
		p.block(st.Body, indent)
	case *ReturnStmt:
		if st.X != nil {
			st.Line = p.emit(indent, "return "+PrintExpr(st.X)+";")
		} else {
			st.Line = p.emit(indent, "return;")
		}
	case *BreakStmt:
		st.Line = p.emit(indent, "break;")
	case *ContinueStmt:
		st.Line = p.emit(indent, "continue;")
	default:
		p.emit(indent, fmt.Sprintf("/* unknown stmt %T */", s))
	}
}

func simpleText(s Stmt) string {
	switch st := s.(type) {
	case *DeclStmt:
		return declText(st)
	case *AssignStmt:
		return assignText(st)
	case *ExprStmt:
		return PrintExpr(st.X)
	default:
		return ""
	}
}

func declText(st *DeclStmt) string {
	out := st.Type + " " + st.Name
	if st.ArrayLen != nil {
		out += "[" + PrintExpr(st.ArrayLen) + "]"
	} else if st.InitList != nil {
		out += "[]"
	}
	if st.Init != nil {
		out += " = " + PrintExpr(st.Init)
	} else if st.InitList != nil {
		var parts []string
		for _, e := range st.InitList {
			parts = append(parts, PrintExpr(e))
		}
		out += " = {" + strings.Join(parts, ", ") + "}"
	}
	return out
}

func assignText(st *AssignStmt) string {
	if st.Op == "++" || st.Op == "--" {
		return PrintExpr(st.LHS) + st.Op
	}
	return PrintExpr(st.LHS) + " " + st.Op + " " + PrintExpr(st.RHS)
}

// PrintExpr renders an expression as C source.
func PrintExpr(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Ident:
		return x.Name
	case *NumberLit:
		return x.Text
	case *StringLit:
		return fmt.Sprintf("%q", x.Value)
	case *CharLit:
		return fmt.Sprintf("'%c'", x.Value)
	case *BinaryExpr:
		return "(" + PrintExpr(x.X) + " " + x.Op + " " + PrintExpr(x.Y) + ")"
	case *UnaryExpr:
		return x.Op + PrintExpr(x.X)
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, PrintExpr(a))
		}
		return x.Fun + "(" + strings.Join(args, ", ") + ")"
	case *IndexExpr:
		return PrintExpr(x.X) + "[" + PrintExpr(x.Index) + "]"
	case *CastExpr:
		return "(" + x.Type + ")" + PrintExpr(x.X)
	case *SizeofExpr:
		return "sizeof(" + x.Type + ")"
	default:
		return fmt.Sprintf("/*%T*/", e)
	}
}
