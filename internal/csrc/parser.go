package csrc

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser builds the AST from a token stream.
type Parser struct {
	toks   []Token
	pos    int
	nextID int
	file   *File
}

// Parse parses a translation unit.
func Parse(src string) (*File, error) {
	toks, defines, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, nextID: 1, file: &File{Defines: defines}}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(text string) bool {
	t := p.cur()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *Parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("csrc: line %d: expected %q, found %q", p.cur().Line, text, p.cur().Text)
	}
	return nil
}

func (p *Parser) newBase() StmtBase { return p.newBaseAt(p.cur().Line) }

func (p *Parser) newBaseAt(line int) StmtBase {
	id := p.nextID
	p.nextID++
	return StmtBase{ID: id, Pos: line}
}

// atType reports whether the current position starts a type.
func (p *Parser) atType() bool {
	t := p.cur()
	if t.Kind == TokKeyword && (t.Text == "const" || t.Text == "static" || t.Text == "unsigned" ||
		t.Text == "void" || t.Text == "int" || t.Text == "long" || t.Text == "float" ||
		t.Text == "double" || t.Text == "char" || t.Text == "struct") {
		return true
	}
	return t.Kind == TokIdent && IsTypeName(t.Text)
}

// parseType consumes a type (qualifiers, base, pointers) returning its text.
func (p *Parser) parseType() (string, error) {
	var parts []string
	for p.at("const") || p.at("static") || p.at("unsigned") {
		parts = append(parts, p.next().Text)
	}
	t := p.cur()
	if t.Kind != TokKeyword && t.Kind != TokIdent {
		return "", fmt.Errorf("csrc: line %d: expected type, found %q", t.Line, t.Text)
	}
	if t.Text == "struct" {
		p.next()
		name := p.next()
		parts = append(parts, "struct "+name.Text)
	} else {
		parts = append(parts, p.next().Text)
	}
	// "long long", "unsigned long" etc.
	for p.at("long") || p.at("int") || p.at("double") {
		parts = append(parts, p.next().Text)
	}
	typ := strings.Join(parts, " ")
	for p.at("*") {
		p.next()
		typ += "*"
	}
	return typ, nil
}

func (p *Parser) parseFile() error {
	for p.cur().Kind != TokEOF {
		if !p.atType() {
			return fmt.Errorf("csrc: line %d: expected declaration, found %q", p.cur().Line, p.cur().Text)
		}
		save := p.pos
		typ, err := p.parseType()
		if err != nil {
			return err
		}
		nameTok := p.cur()
		if nameTok.Kind != TokIdent {
			return fmt.Errorf("csrc: line %d: expected name after type, found %q", nameTok.Line, nameTok.Text)
		}
		p.next()
		if p.at("(") {
			fn, err := p.parseFuncRest(typ, nameTok.Text)
			if err != nil {
				return err
			}
			p.file.Funcs = append(p.file.Funcs, fn)
			continue
		}
		// global variable: rewind and parse as a declaration statement
		p.pos = save
		stmt, err := p.parseDecl()
		if err != nil {
			return err
		}
		p.file.Globals = append(p.file.Globals, stmt)
	}
	return nil
}

func (p *Parser) parseFuncRest(retType, name string) (*FuncDecl, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{RetType: retType, Name: name}
	for !p.at(")") {
		if p.at("void") && p.toks[p.pos+1].Text == ")" {
			p.next()
			break
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pname := ""
		if p.cur().Kind == TokIdent {
			pname = p.next().Text
		}
		// array parameter: type name[]
		for p.accept("[") {
			if !p.at("]") {
				p.next()
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			typ += "*"
		}
		fn.Params = append(fn.Params, Param{Type: typ, Name: pname})
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseBlock() (*Block, error) {
	ln := p.cur().Line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{StmtBase: p.newBaseAt(ln)}
	for !p.at("}") {
		if p.cur().Kind == TokEOF {
			return nil, fmt.Errorf("csrc: unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return b, nil
}

// blockOf wraps a single statement in a block if needed (the formatter
// always prints braces, matching the clang-format preprocessing).
func (p *Parser) blockOf(s Stmt) *Block {
	if b, ok := s.(*Block); ok {
		return b
	}
	return &Block{StmtBase: p.newBaseAt(s.Base().Pos), Stmts: []Stmt{s}}
}

func (p *Parser) parseStmt() (Stmt, error) {
	ln := p.cur().Line
	switch {
	case p.at("{"):
		return p.parseBlock()
	case p.at("if"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st := &IfStmt{StmtBase: p.newBaseAt(ln), Cond: cond}
		thenStmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Then = p.blockOf(thenStmt)
		if p.accept("else") {
			elseStmt, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			st.Else = p.blockOf(elseStmt)
		}
		return st, nil
	case p.at("for"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		st := &ForStmt{StmtBase: p.newBaseAt(ln)}
		if !p.at(";") {
			init, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Init = init
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.at(";") {
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Cond = cond
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if !p.at(")") {
			post, err := p.parseSimpleStmt()
			if err != nil {
				return nil, err
			}
			st.Post = post
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		st.Body = p.blockOf(body)
		return st, nil
	case p.at("while"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{StmtBase: p.newBaseAt(ln), Cond: cond, Body: p.blockOf(body)}, nil
	case p.at("return"):
		p.next()
		st := &ReturnStmt{StmtBase: p.newBaseAt(ln)}
		if !p.at(";") {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.X = x
		}
		return st, p.expect(";")
	case p.at("break"):
		p.next()
		return &BreakStmt{StmtBase: p.newBaseAt(ln)}, p.expect(";")
	case p.at("continue"):
		p.next()
		return &ContinueStmt{StmtBase: p.newBaseAt(ln)}, p.expect(";")
	case p.atType():
		st, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		return st, nil
	default:
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return st, p.expect(";")
	}
}

// parseDecl parses `type name ...;` (scalar, pointer, or array).
func (p *Parser) parseDecl() (*DeclStmt, error) {
	ln := p.cur().Line
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	nameTok := p.cur()
	if nameTok.Kind != TokIdent {
		return nil, fmt.Errorf("csrc: line %d: expected variable name, found %q", nameTok.Line, nameTok.Text)
	}
	p.next()
	st := &DeclStmt{StmtBase: p.newBaseAt(ln), Type: typ, Name: nameTok.Text}
	if p.accept("[") {
		if !p.at("]") {
			n, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.ArrayLen = n
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	}
	if p.accept("=") {
		if p.accept("{") {
			for !p.at("}") {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				st.InitList = append(st.InitList, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect("}"); err != nil {
				return nil, err
			}
		} else {
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Init = init
		}
	}
	return st, p.expect(";")
}

// parseSimpleStmt parses an assignment, inc/dec, or expression statement
// (no trailing semicolon).
func (p *Parser) parseSimpleStmt() (Stmt, error) {
	ln := p.cur().Line
	if p.atType() {
		// declaration in a for-init; parseDecl consumes the semicolon, so
		// back up over it
		save := p.pos
		st, err := p.parseDecl()
		if err != nil {
			p.pos = save
			return nil, err
		}
		p.pos-- // give the semicolon back to the caller
		return st, nil
	}
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "=", "+=", "-=", "*=", "/=", "%=":
			p.next()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{StmtBase: p.newBaseAt(ln), Op: t.Text, LHS: lhs, RHS: rhs}, nil
		case "++", "--":
			p.next()
			return &AssignStmt{StmtBase: p.newBaseAt(ln), Op: t.Text, LHS: lhs}, nil
		}
	}
	// plain expression statement; continue parsing binary operators that
	// may follow the unary prefix we consumed
	full, err := p.continueBinary(lhs, 0)
	if err != nil {
		return nil, err
	}
	return &ExprStmt{StmtBase: p.newBaseAt(ln), X: full}, nil
}

// operator precedence (C-like).
var binaryPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 3, "&": 3,
	"==": 4, "!=": 4,
	"<": 5, ">": 5, "<=": 5, ">=": 5,
	"<<": 6, ">>": 6,
	"+": 7, "-": 7,
	"*": 8, "/": 8, "%": 8,
}

func (p *Parser) parseExpr() (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.continueBinary(lhs, 0)
}

func (p *Parser) continueBinary(lhs Expr, minPrec int) (Expr, error) {
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.next().Text
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// consume higher-precedence ops on the right
		for {
			nt := p.cur()
			if nt.Kind != TokPunct {
				break
			}
			nprec, nok := binaryPrec[nt.Text]
			if !nok || nprec <= prec {
				break
			}
			rhs, err = p.continueBinary(rhs, nprec)
			if err != nil {
				return nil, err
			}
		}
		lhs = &BinaryExpr{Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "&", "*":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &UnaryExpr{Op: t.Text, X: x}, nil
		case "(":
			// cast or parenthesized expression
			if p.toks[p.pos+1].Kind == TokIdent && IsTypeName(p.toks[p.pos+1].Text) ||
				p.toks[p.pos+1].Kind == TokKeyword && IsTypeName(p.toks[p.pos+1].Text) {
				// possible cast: (type) or (type*)
				save := p.pos
				p.next()
				typ, err := p.parseType()
				if err == nil && p.accept(")") {
					x, err := p.parseUnary()
					if err != nil {
						return nil, err
					}
					return &CastExpr{Type: typ, X: x}, nil
				}
				p.pos = save
			}
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return p.parsePostfix(x)
		}
	}
	if t.Kind == TokKeyword && t.Text == "sizeof" {
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		typ, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &SizeofExpr{Type: typ}, nil
	}
	switch t.Kind {
	case TokNumber:
		p.next()
		return parseNumber(t)
	case TokString:
		p.next()
		return &StringLit{Value: t.Text}, nil
	case TokChar:
		p.next()
		return &CharLit{Value: t.Text[0]}, nil
	case TokIdent:
		p.next()
		if p.at("(") {
			p.next()
			call := &CallExpr{Fun: t.Text}
			for !p.at(")") {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return p.parsePostfix(call)
		}
		return p.parsePostfix(&Ident{Name: t.Text})
	}
	return nil, fmt.Errorf("csrc: line %d: unexpected token %q in expression", t.Line, t.Text)
}

func (p *Parser) parsePostfix(x Expr) (Expr, error) {
	for p.at("[") {
		p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		x = &IndexExpr{X: x, Index: idx}
	}
	return x, nil
}

func parseNumber(t Token) (Expr, error) {
	text := t.Text
	if strings.ContainsAny(text, ".eE") && !strings.HasPrefix(text, "0x") && !strings.HasPrefix(text, "0X") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("csrc: line %d: bad float %q", t.Line, text)
		}
		return &NumberLit{Text: text, IsFloat: true, Float: f}, nil
	}
	n, err := strconv.ParseInt(text, 0, 64)
	if err != nil {
		return nil, fmt.Errorf("csrc: line %d: bad integer %q", t.Line, text)
	}
	return &NumberLit{Text: text, Int: n}, nil
}
