package train

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync"

	"tunio/internal/core"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/workload"
)

// kernelStoreKey identifies a sweep kernel in the KernelStore before it
// has been recorded. Sweep kernels are custom-sized (DefaultSweepKernels
// shrinks the apps), so the key fingerprints the workload's full
// configuration rather than just its name — a sweep VPIC must never adopt
// the trace of a same-named, differently-sized serving VPIC.
func kernelStoreKey(w workload.Workload, procs int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%T %#v", w, w)))
	return fmt.Sprintf("sweep:%s/%d/%s", w.Name(), procs, hex.EncodeToString(sum[:8]))
}

// replaySweep scores core.SweepPlan's run list through the staged replay
// engine: each kernel runs once under defaults to record its trace (or is
// served whole from the kernel store), and every planned configuration is
// scored by replaying cached stage artifacts against pooled stacks.
//
// Per-run results are bit-identical to core.Sweep's direct execution —
// pooled stacks reset to fresh-build state and Runtime.Exec charges the
// same layer code paths in the same order as a live run — and per-run
// seeds come from the plan, so the outcome is independent of Workers.
// The first failing run's error wins, matching tuner.Pool.
func replaySweep(ctx context.Context, cfg *Config) (*core.SweepResult, []string, error) {
	if len(cfg.Kernels) == 0 {
		return nil, nil, fmt.Errorf("train: sweep needs at least one kernel")
	}
	runs, err := core.SweepPlan(len(cfg.Kernels), cfg.Space, cfg.Seed+1, cfg.ExtraRandomRuns)
	if err != nil {
		return nil, nil, err
	}

	// Record (or fetch) each kernel's trace and bind a cache view per
	// kernel. The cache may be shared process-wide; kernel content hashes
	// keep one kernel's artifacts from answering for another's.
	cache := cfg.StageCache
	if cache == nil {
		cache = replay.NewSharedStageCache()
	}
	defaults := params.DefaultAssignment(cfg.Space).Settings()
	views := make([]*replay.CacheView, len(cfg.Kernels))
	kernKeys := make([]string, len(cfg.Kernels))
	for i, w := range cfg.Kernels {
		storeKey := kernelStoreKey(w, cfg.Cluster.Procs())
		var t *replay.Trace
		var hash string
		if cfg.Store != nil {
			if ent, ok := cfg.Store.Get(storeKey); ok {
				t, hash = ent.Trace, ent.KernelHash
			}
		}
		if t == nil {
			st, err := workload.BuildStack(cfg.Cluster, defaults, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			if t, err = replay.Record(w, st); err != nil {
				return nil, nil, fmt.Errorf("train: recording %s: %w", w.Name(), err)
			}
			hash = replay.TraceKey(t)
			if cfg.Store != nil {
				cfg.Store.Put(storeKey, replay.KernelEntry{Trace: t, KernelHash: hash})
			}
		}
		cache.Register(hash, t)
		views[i] = cache.View(hash)
		kernKeys[i] = hash
	}

	out := &core.SweepResult{
		Space:    cfg.Space,
		Features: make([][]float64, len(runs)),
		Perfs:    make([]float64, len(runs)),
	}
	for i, r := range runs {
		out.Features[i] = r.Assignment.Features()
	}

	stacks := workload.NewStackPool(cfg.Cluster)
	errs := make([]error, len(runs))
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rt := &replay.Runtime{}
			for i := range idx {
				cfg.Gate.Enter()
				errs[i] = scoreRun(rt, stacks, views, cfg, runs[i], out.Perfs, i)
				cfg.Gate.Leave()
			}
		}()
	}
feed:
	for i := range runs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("train: sweep run %d (%s): %w", i, cfg.Kernels[runs[i].Kernel].Name(), err)
		}
	}
	return out, kernKeys, nil
}

// scoreRun replays one planned configuration: wire plan from the kernel's
// cache view, pooled stack seeded with the run's plan seed, one Exec.
func scoreRun(rt *replay.Runtime, stacks *workload.StackPool, views []*replay.CacheView, cfg *Config, r core.SweepRun, perfs []float64, i int) error {
	s := r.Assignment.Settings()
	wp, err := views[r.Kernel].WireFor(r.Assignment, s, cfg.Cluster.ProcsPerNode)
	if err != nil {
		return err
	}
	st, err := stacks.Get(s, r.Seed)
	if err != nil {
		return err
	}
	defer stacks.Put(st)
	if err := rt.Exec(wp, st); err != nil {
		return err
	}
	perf, _ := workload.Perf(st.Sim.Report)
	perfs[i] = perf
	return nil
}
