package train

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// artifactVersion versions the on-disk stage envelope; readArtifact
// rejects other versions rather than guessing at their layout.
const artifactVersion = 1

// Artifact is the envelope every pipeline stage writes to disk: a
// versioned, content-hashed JSON document. InputHash fingerprints
// everything the stage's output depends on — the relevant Config fields
// plus the payload hashes of upstream stages — so a resumed run can prove
// an artifact is still the product of the requested training without
// re-running the stage. PayloadHash covers the payload bytes themselves,
// catching truncation or corruption independent of provenance.
type Artifact struct {
	Version     int             `json:"version"`
	Stage       string          `json:"stage"`
	InputHash   string          `json:"input_hash"`
	PayloadHash string          `json:"payload_sha256"`
	Payload     json.RawMessage `json:"payload"`
}

// hashBytes returns the hex SHA-256 of b.
func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// hashInputs hashes the JSON encodings of the values, NUL-separated, into
// one hex digest — the stage input fingerprint.
func hashInputs(vs ...any) (string, error) {
	h := sha256.New()
	for _, v := range vs {
		b, err := json.Marshal(v)
		if err != nil {
			return "", err
		}
		h.Write(b)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// artifactPath returns the file a stage's artifact lives at.
func artifactPath(dir, stage string) string {
	return filepath.Join(dir, stage+".json")
}

// writeArtifact writes the stage's payload (already JSON) under the
// envelope, atomically (temp file + rename), and returns the payload
// hash downstream stages chain on.
func writeArtifact(dir, stage, inputHash string, payload []byte) (string, error) {
	art := Artifact{
		Version:     artifactVersion,
		Stage:       stage,
		InputHash:   inputHash,
		PayloadHash: hashBytes(payload),
		Payload:     payload,
	}
	b, err := json.MarshalIndent(art, "", " ")
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	if err := writeFileAtomic(artifactPath(dir, stage), b); err != nil {
		return "", err
	}
	return art.PayloadHash, nil
}

// readArtifact loads a stage artifact and validates its envelope: the
// version and stage name must match and the payload must hash to
// PayloadHash. InputHash is returned for the caller to judge — only the
// pipeline knows what this run's inputs hash to. The payload is
// re-compacted before hashing: the envelope is written indented for
// humans, which reflows the embedded payload, and PayloadHash covers the
// canonical compact bytes.
func readArtifact(dir, stage string) (*Artifact, error) {
	b, err := os.ReadFile(artifactPath(dir, stage))
	if err != nil {
		return nil, err
	}
	var art Artifact
	if err := json.Unmarshal(b, &art); err != nil {
		return nil, fmt.Errorf("train: artifact %s: %w", stage, err)
	}
	if art.Version != artifactVersion {
		return nil, fmt.Errorf("train: artifact %s: version %d, want %d", stage, art.Version, artifactVersion)
	}
	if art.Stage != stage {
		return nil, fmt.Errorf("train: artifact %s: names stage %q", stage, art.Stage)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, art.Payload); err != nil {
		return nil, fmt.Errorf("train: artifact %s: %w", stage, err)
	}
	art.Payload = compact.Bytes()
	if got := hashBytes(art.Payload); got != art.PayloadHash {
		return nil, fmt.Errorf("train: artifact %s: payload hash mismatch (stored %.12s…, computed %.12s…)", stage, art.PayloadHash, got)
	}
	return &art, nil
}

// writeFileAtomic writes data to path via a temp file and rename, so a
// killed run leaves either the old artifact or the new one — never a
// torn file.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
