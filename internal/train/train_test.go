package train

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/replay"
	"tunio/internal/workload"
)

// testConfig returns a small-but-real pipeline configuration: the full
// 12-parameter space over down-sized default kernels on a small cluster.
func testConfig(seed int64) Config {
	c := cluster.CoriHaswell(1, 8)
	return Config{
		Cluster:         c,
		Kernels:         core.DefaultSweepKernels(c.Procs()),
		ExtraRandomRuns: 2,
		StopperEpochs:   2,
		PickerEpochs:    2,
		StopperHorizon:  8,
		Seed:            seed,
	}
}

// TestReplaySweepMatchesDirect pins the tentpole equivalence: the
// replay-backed parallel sweep produces the same observations as the
// direct-execution serial sweep — per-run perfs bit-identical, PCA impact
// scores equal within 1e-9 — on the three default kernels.
func TestReplaySweepMatchesDirect(t *testing.T) {
	cfg := testConfig(7)
	cfg.fillDefaults()
	cfg.Workers = 4

	direct, err := core.Sweep(context.Background(), cfg.Kernels, cfg.Cluster, cfg.Space, cfg.Seed+1, cfg.ExtraRandomRuns)
	if err != nil {
		t.Fatalf("direct sweep: %v", err)
	}
	replayed, _, err := replaySweep(context.Background(), &cfg)
	if err != nil {
		t.Fatalf("replay sweep: %v", err)
	}
	if len(replayed.Perfs) != len(direct.Perfs) {
		t.Fatalf("run counts differ: replay %d, direct %d", len(replayed.Perfs), len(direct.Perfs))
	}
	for i := range direct.Perfs {
		if replayed.Perfs[i] != direct.Perfs[i] {
			t.Fatalf("run %d perf: replay %v, direct %v", i, replayed.Perfs[i], direct.Perfs[i])
		}
	}
	ds, err := direct.ImpactScores()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := replayed.ImpactScores()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds {
		if diff := math.Abs(ds[i] - rs[i]); diff > 1e-9 {
			t.Fatalf("impact score %d differs by %g (direct %v, replay %v)", i, diff, ds[i], rs[i])
		}
	}
}

// TestReplaySweepWorkerIndependence pins that per-run seeds come from the
// plan, not worker scheduling: any worker count produces identical
// observations.
func TestReplaySweepWorkerIndependence(t *testing.T) {
	base := testConfig(11)
	base.fillDefaults()
	base.Kernels = base.Kernels[:1]

	serial := base
	serial.Workers = 1
	s1, _, err := replaySweep(context.Background(), &serial)
	if err != nil {
		t.Fatal(err)
	}
	parallel := base
	parallel.Workers = 8
	s8, _, err := replaySweep(context.Background(), &parallel)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1.Perfs {
		if s1.Perfs[i] != s8.Perfs[i] {
			t.Fatalf("run %d: 1 worker %v, 8 workers %v", i, s1.Perfs[i], s8.Perfs[i])
		}
	}
}

// TestReplaySweepKernelStoreRoundTrip pins that a warmed store serves the
// sweep's kernels (no re-recording) with identical results, and that the
// store keys distinguish the custom-sized sweep kernels.
func TestReplaySweepKernelStoreRoundTrip(t *testing.T) {
	cfg := testConfig(3)
	cfg.fillDefaults()
	cfg.Kernels = cfg.Kernels[:2]
	cfg.Store = replay.NewKernelStore()

	cold, _, err := replaySweep(context.Background(), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Store.Len(); got != 2 {
		t.Fatalf("store holds %d kernels after cold sweep, want 2", got)
	}
	pre := cfg.Store.Stats()
	warm, _, err := replaySweep(context.Background(), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	post := cfg.Store.Stats()
	if post.Hits != pre.Hits+2 {
		t.Fatalf("warm sweep hit the store %d times, want 2", post.Hits-pre.Hits)
	}
	for i := range cold.Perfs {
		if cold.Perfs[i] != warm.Perfs[i] {
			t.Fatalf("run %d: cold %v, warm %v", i, cold.Perfs[i], warm.Perfs[i])
		}
	}
	// Distinct workload configurations must get distinct keys.
	k1 := kernelStoreKey(cfg.Kernels[0], cfg.Cluster.Procs())
	v := workload.NewVPIC(cfg.Cluster.Procs())
	if k2 := kernelStoreKey(v, cfg.Cluster.Procs()); k1 == k2 {
		t.Fatalf("sweep-sized and standard-sized VPIC share store key %q", k1)
	}
}

// TestPipelineResumeSkipsCompletedStages pins the resumability contract:
// a run killed after the sweep stage (simulated with Until) resumes
// without re-sweeping, and the resumed run's agent is byte-identical to a
// from-scratch run's.
func TestPipelineResumeSkipsCompletedStages(t *testing.T) {
	dir := t.TempDir()

	// From-scratch reference (no artifacts involved).
	ref := testConfig(5)
	refRes, err := Run(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}

	// First run dies after the sweep stage.
	cfg := testConfig(5)
	cfg.ArtifactsDir = dir
	cfg.Until = StageSweep
	partial, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Agent != nil {
		t.Fatal("partial run should not produce an agent")
	}
	if partial.StageReport(StageSweep).Skipped {
		t.Fatal("first run cannot skip the sweep")
	}
	if _, err := os.Stat(filepath.Join(dir, "sweep.json")); err != nil {
		t.Fatalf("sweep artifact missing: %v", err)
	}

	// Resumed run skips the sweep, trains the rest.
	cfg.Until = ""
	cfg.Resume = true
	resumed, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.StageReport(StageSweep).Skipped {
		t.Fatal("resumed run re-ran the sweep")
	}
	if resumed.StageReport(StagePicker).Skipped || resumed.StageReport(StageStopper).Skipped {
		t.Fatal("agent stages had no artifacts and must train")
	}

	refJSON, err := json.Marshal(refRes.Agent)
	if err != nil {
		t.Fatal(err)
	}
	resJSON, err := json.Marshal(resumed.Agent)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, resJSON) {
		t.Fatal("resumed agent differs from from-scratch agent")
	}

	// A second resume skips everything.
	again, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range again.Stages {
		if !st.Skipped {
			t.Fatalf("stage %s re-ran on full resume", st.Stage)
		}
	}
	againJSON, err := json.Marshal(again.Agent)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refJSON, againJSON) {
		t.Fatal("fully-resumed agent differs from from-scratch agent")
	}
}

// TestPipelineInputHashInvalidation pins that resume is keyed on content,
// not file presence: changing the seed invalidates the sweep artifact.
func TestPipelineInputHashInvalidation(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(5)
	cfg.Kernels = cfg.Kernels[:1]
	cfg.ArtifactsDir = dir
	cfg.Until = StageSweep
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	cfg.Seed = 6
	cfg.Resume = true
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StageReport(StageSweep).Skipped {
		t.Fatal("sweep artifact from a different seed was reused")
	}
}

// TestPipelineRejectsCorruptArtifact pins the content-hash validation: a
// tampered payload fails the envelope check and the stage re-runs.
func TestPipelineRejectsCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(9)
	cfg.Kernels = cfg.Kernels[:1]
	cfg.ArtifactsDir = dir
	cfg.Until = StageSweep
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "sweep.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bytes.Replace(b, []byte(`"perfs"`), []byte(`"perfz"`), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readArtifact(dir, StageSweep); err == nil {
		t.Fatal("tampered artifact passed validation")
	}
	cfg.Resume = true
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.StageReport(StageSweep).Skipped {
		t.Fatal("tampered sweep artifact was reused")
	}
}

// TestPipelineCancellation pins that the sweep honors cancellation and
// that an aborted run leaves no artifact for the in-flight stage.
func TestPipelineCancellation(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(5)
	cfg.ArtifactsDir = dir
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cfg); err == nil {
		t.Fatal("canceled run reported success")
	}
	if _, err := os.Stat(filepath.Join(dir, "sweep.json")); !os.IsNotExist(err) {
		t.Fatalf("canceled run left a sweep artifact (stat err %v)", err)
	}
}

// TestPipelineUnknownStage pins Until validation.
func TestPipelineUnknownStage(t *testing.T) {
	cfg := testConfig(1)
	cfg.Until = "qlearning"
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("unknown Until stage accepted")
	}
}

// TestLoadAgentMatchesRunResult pins artifact serving: the agent
// assembled from the picker/stopper artifacts serializes identically to
// the agent the pipeline returned, and the combined agent.json is a
// loadable core.TunIO in the same form.
func TestLoadAgentMatchesRunResult(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(13)
	cfg.Kernels = cfg.Kernels[:1]
	cfg.ArtifactsDir = dir
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadAgent(dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res.Agent)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("artifact-loaded agent differs from the trained agent")
	}

	blob, err := os.ReadFile(filepath.Join(dir, agentFile))
	if err != nil {
		t.Fatal(err)
	}
	combined := &core.TunIO{Stopper: &core.EarlyStopper{}, Picker: &core.SmartPicker{}}
	if err := json.Unmarshal(blob, combined); err != nil {
		t.Fatalf("agent.json is not a loadable TunIO: %v", err)
	}
	cb, err := json.Marshal(combined)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, cb) {
		t.Fatal("agent.json round trip differs from the trained agent")
	}
}
