// Package train rebuilds TunIO's offline training (§III-C, §III-D) as a
// resumable staged pipeline on the replay engine:
//
//	sweep → impact → surrogate → picker → stopper
//
// The sweep — historically the dominant cost, a serial loop of direct
// workload executions — scores core.SweepPlan's run list through the
// staged trace-replay engine instead: each kernel records once (or is
// served from a shared KernelStore), every configuration replays cached
// stage artifacts against pooled stacks, and per-run seeds come from the
// plan, so results are bit-identical to the direct loop and independent
// of worker count.
//
// Every stage reads and writes a versioned, content-hashed JSON artifact
// (see Artifact): a killed run resumes from the last completed stage, and
// stages whose inputs are unchanged are skipped outright. The picker and
// stopper artifacts are the agents' own MarshalJSON forms, so a served
// tuniod can load them directly instead of retraining.
package train

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"tunio/internal/cluster"
	"tunio/internal/core"
	"tunio/internal/mat"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/tuner"
	"tunio/internal/workload"
)

// Stage names, in execution order.
const (
	StageSweep     = "sweep"
	StageImpact    = "impact"
	StageSurrogate = "surrogate"
	StagePicker    = "picker"
	StageStopper   = "stopper"
)

// agentFile is the combined deployable agent written next to the stage
// artifacts, in the format cmd/tuniod's -agent flag loads.
const agentFile = "agent.json"

// Stages returns the pipeline's stage names in execution order.
func Stages() []string {
	return []string{StageSweep, StageImpact, StageSurrogate, StagePicker, StageStopper}
}

// Config configures a pipeline run. The training fields mirror
// core.TrainConfig (and default the same way); the rest wire the pipeline
// into shared engine infrastructure and the artifact store.
type Config struct {
	// Space is the parameter space to tune (params.Space() by default).
	Space []params.Parameter
	// Cluster is the machine the sweep kernels run on (4x32 Cori Haswell
	// by default, the paper's component-test allocation).
	Cluster *cluster.Cluster
	// Kernels are the representative sweep workloads (VPIC, FLASH, HACC
	// by default).
	Kernels []workload.Workload
	// ExtraRandomRuns adds random configurations to the sweep. Default 20.
	ExtraRandomRuns int
	// StopperEpochs / PickerEpochs bound offline training (the stagnation
	// criterion usually fires earlier). Defaults 40 / 30.
	StopperEpochs int
	PickerEpochs  int
	// StopperHorizon normalizes the stopper's iteration feature to the
	// expected tuning budget. Default 50.
	StopperHorizon int
	// Seed drives everything. Stages draw from independent seed-derived
	// streams, so a stage restored from its artifact leaves the others'
	// randomness untouched.
	Seed int64

	// Workers bounds the sweep's replay parallelism (0 = GOMAXPROCS).
	Workers int
	// Gate, when non-nil, additionally bounds sweep evaluations by the
	// process-wide budget shared with the tuning pools.
	Gate *tuner.Gate
	// Store, when non-nil, serves sweep kernel traces across runs (and
	// receives ones recorded here).
	Store *replay.KernelStore
	// StageCache, when non-nil, shares replay stage artifacts with other
	// sessions; nil uses a pipeline-private cache.
	StageCache *replay.StageCache

	// ArtifactsDir is where stage artifacts live. Empty runs the pipeline
	// fully in memory (nothing written, nothing resumable).
	ArtifactsDir string
	// Resume reuses artifacts in ArtifactsDir whose input hashes still
	// match this configuration instead of re-running their stages.
	Resume bool
	// Until, when non-empty, stops the pipeline after the named stage.
	Until string
	// Progress, when non-nil, receives one report per stage as it
	// completes or is skipped.
	Progress func(StageReport)
}

func (c *Config) fillDefaults() {
	if c.Space == nil {
		c.Space = params.Space()
	}
	if c.Cluster == nil {
		c.Cluster = cluster.CoriHaswell(4, 32)
	}
	if c.Kernels == nil {
		c.Kernels = core.DefaultSweepKernels(c.Cluster.Procs())
	}
	if c.ExtraRandomRuns == 0 {
		c.ExtraRandomRuns = 20
	}
	if c.StopperEpochs == 0 {
		c.StopperEpochs = 40
	}
	if c.PickerEpochs == 0 {
		c.PickerEpochs = 30
	}
}

// StageReport describes one stage's outcome.
type StageReport struct {
	Stage     string  `json:"stage"`
	Skipped   bool    `json:"skipped"` // restored from a valid artifact
	Seconds   float64 `json:"seconds"`
	InputHash string  `json:"input_hash"`
}

// Result is a pipeline run's product. Agent is nil when Until stopped the
// pipeline before both agents were trained.
type Result struct {
	Agent  *core.TunIO
	Sweep  *core.SweepResult
	Impact []float64
	Stages []StageReport
}

// StageReport returns the report for the named stage (zero value if the
// pipeline never reached it).
func (r *Result) StageReport(stage string) StageReport {
	for _, s := range r.Stages {
		if s.Stage == stage {
			return s
		}
	}
	return StageReport{}
}

// sweepPayload is the sweep stage's artifact: the observations, plus the
// content keys of the kernels that produced them ("sig:…" or "trace:…"
// per kernel) for provenance.
type sweepPayload struct {
	Params   []string    `json:"params"`
	Kernels  []string    `json:"kernels"`
	Features [][]float64 `json:"features"`
	Perfs    []float64   `json:"perfs"`
}

// impactPayload is the impact stage's artifact: the PCA scores.
type impactPayload struct {
	Scores []float64 `json:"scores"`
}

// surrogatePayload is the surrogate stage's artifact: the additive model
// plus the sweep's perf scale, everything picker training needs.
type surrogatePayload struct {
	Surrogate *core.Surrogate `json:"surrogate"`
	PerfScale float64         `json:"perf_scale"`
}

// Train runs the full pipeline in memory and returns the trained agent —
// the drop-in replacement for core.Train on the replay engine.
func Train(cfg Config) (*core.TunIO, error) {
	res, err := Run(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return res.Agent, nil
}

// Run executes the pipeline. Stages execute in order; each one consults
// its artifact first (when resuming), trains otherwise, and persists its
// product (when ArtifactsDir is set) before the next stage starts — so a
// run killed between stages loses at most the stage in flight.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg.fillDefaults()
	if cfg.Until != "" && !validStage(cfg.Until) {
		return nil, fmt.Errorf("train: unknown stage %q (want one of %v)", cfg.Until, Stages())
	}
	if cfg.ArtifactsDir != "" {
		if err := os.MkdirAll(cfg.ArtifactsDir, 0o755); err != nil {
			return nil, err
		}
	}
	res := &Result{}
	p := &pipeline{cfg: &cfg, res: res}

	// Kernel fingerprints pin the sweep artifact to the exact workload
	// configurations (sweep kernels are custom-sized structs, not just
	// names).
	kernelFPs := make([]string, len(cfg.Kernels))
	for i, w := range cfg.Kernels {
		kernelFPs[i] = fmt.Sprintf("%T %#v", w, w)
	}

	// --- sweep ---
	sweepIn, err := hashInputs("sweep", cfg.Space, cfg.Cluster, kernelFPs, cfg.Seed, cfg.ExtraRandomRuns)
	if err != nil {
		return nil, err
	}
	var sp sweepPayload
	sweepPH, err := p.stage(ctx, StageSweep, sweepIn, &sp, func() (any, error) {
		sweep, kernKeys, err := replaySweep(ctx, &cfg)
		if err != nil {
			return nil, err
		}
		return &sweepPayload{
			Params:   paramNames(cfg.Space),
			Kernels:  kernKeys,
			Features: sweep.Features,
			Perfs:    sweep.Perfs,
		}, nil
	})
	if err != nil {
		return res, err
	}
	res.Sweep = &core.SweepResult{Space: cfg.Space, Features: sp.Features, Perfs: sp.Perfs}
	if cfg.Until == StageSweep {
		return res, nil
	}

	// --- impact (PCA) ---
	impactIn, err := hashInputs("impact", sweepPH)
	if err != nil {
		return nil, err
	}
	var ip impactPayload
	impactPH, err := p.stage(ctx, StageImpact, impactIn, &ip, func() (any, error) {
		scores, err := res.Sweep.ImpactScores()
		if err != nil {
			return nil, err
		}
		return &impactPayload{Scores: scores}, nil
	})
	if err != nil {
		return res, err
	}
	res.Impact = ip.Scores
	if cfg.Until == StageImpact {
		return res, nil
	}

	// --- surrogate fit ---
	surIn, err := hashInputs("surrogate", sweepPH)
	if err != nil {
		return nil, err
	}
	var sur surrogatePayload
	surPH, err := p.stage(ctx, StageSurrogate, surIn, &sur, func() (any, error) {
		return &surrogatePayload{
			Surrogate: core.FitSurrogate(res.Sweep),
			PerfScale: mat.MaxVal(res.Sweep.Perfs),
		}, nil
	})
	if err != nil {
		return res, err
	}
	if cfg.Until == StageSurrogate {
		return res, nil
	}

	// --- picker Q-training ---
	pickerIn, err := hashInputs("picker", impactPH, surPH, cfg.Seed, cfg.PickerEpochs)
	if err != nil {
		return nil, err
	}
	picker := &core.SmartPicker{}
	if _, err := p.stage(ctx, StagePicker, pickerIn, picker, func() (any, error) {
		return core.TrainSmartPickerFrom(
			core.PickerConfig{Seed: cfg.Seed + 2},
			ip.Scores, sur.Surrogate, sur.PerfScale,
			cfg.PickerEpochs,
			rand.New(rand.NewSource(cfg.Seed+4)),
		)
	}); err != nil {
		return res, err
	}
	if cfg.Until == StagePicker {
		return res, nil
	}

	// --- stopper Q-training (independent of the sweep chain) ---
	stopperIn, err := hashInputs("stopper", cfg.Seed, cfg.StopperEpochs, cfg.StopperHorizon)
	if err != nil {
		return nil, err
	}
	stopper := &core.EarlyStopper{}
	if _, err := p.stage(ctx, StageStopper, stopperIn, stopper, func() (any, error) {
		return core.TrainEarlyStopper(
			core.StopperConfig{Seed: cfg.Seed + 3, Horizon: cfg.StopperHorizon},
			cfg.StopperEpochs,
			rand.New(rand.NewSource(cfg.Seed+5)),
		)
	}); err != nil {
		return res, err
	}

	res.Agent = &core.TunIO{Stopper: stopper, Picker: picker}
	if cfg.ArtifactsDir != "" {
		b, err := json.MarshalIndent(res.Agent, "", " ")
		if err != nil {
			return res, err
		}
		b = append(b, '\n')
		if err := writeFileAtomic(AgentPath(cfg.ArtifactsDir), b); err != nil {
			return res, err
		}
	}
	return res, nil
}

// pipeline carries the shared stage-runner state.
type pipeline struct {
	cfg *Config
	res *Result
}

// stage runs one pipeline stage: on resume, a valid artifact whose input
// hash matches restores into out and the stage is skipped; otherwise
// build() trains, and its product is persisted and unmarshaled into out.
// Either way the payload hash is returned for downstream input chaining.
//
// Restoring through the payload on both paths is deliberate: the object
// the pipeline continues with is always exactly what a resumed (or
// artifact-serving) run would hold, so "trained here" and "loaded from
// disk" are indistinguishable by construction.
func (p *pipeline) stage(ctx context.Context, name, inputHash string, out any, build func() (any, error)) (string, error) {
	start := time.Now()
	if p.cfg.ArtifactsDir != "" && p.cfg.Resume {
		if art, err := readArtifact(p.cfg.ArtifactsDir, name); err == nil && art.InputHash == inputHash {
			if err := json.Unmarshal(art.Payload, out); err == nil {
				p.report(StageReport{Stage: name, Skipped: true, Seconds: time.Since(start).Seconds(), InputHash: inputHash})
				return art.PayloadHash, nil
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return "", err
	}
	v, err := build()
	if err != nil {
		return "", fmt.Errorf("train: stage %s: %w", name, err)
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("train: stage %s: %w", name, err)
	}
	if err := json.Unmarshal(payload, out); err != nil {
		return "", fmt.Errorf("train: stage %s: %w", name, err)
	}
	ph := hashBytes(payload)
	if p.cfg.ArtifactsDir != "" {
		if ph, err = writeArtifact(p.cfg.ArtifactsDir, name, inputHash, payload); err != nil {
			return "", fmt.Errorf("train: stage %s: %w", name, err)
		}
	}
	p.report(StageReport{Stage: name, Seconds: time.Since(start).Seconds(), InputHash: inputHash})
	return ph, nil
}

func (p *pipeline) report(r StageReport) {
	p.res.Stages = append(p.res.Stages, r)
	if p.cfg.Progress != nil {
		p.cfg.Progress(r)
	}
}

// AgentPath returns the combined deployable agent file inside dir.
func AgentPath(dir string) string { return filepath.Join(dir, agentFile) }

// LoadAgent assembles a deployable TunIO from the picker and stopper
// artifacts in dir, validating both envelopes. The loaded agent's
// serialized form is byte-identical to the trained original's, so a
// server seeded from artifacts serves the same curves as one that
// trained in process.
func LoadAgent(dir string) (*core.TunIO, error) {
	pa, err := readArtifact(dir, StagePicker)
	if err != nil {
		return nil, err
	}
	sa, err := readArtifact(dir, StageStopper)
	if err != nil {
		return nil, err
	}
	picker := &core.SmartPicker{}
	if err := json.Unmarshal(pa.Payload, picker); err != nil {
		return nil, fmt.Errorf("train: picker artifact: %w", err)
	}
	stopper := &core.EarlyStopper{}
	if err := json.Unmarshal(sa.Payload, stopper); err != nil {
		return nil, fmt.Errorf("train: stopper artifact: %w", err)
	}
	return &core.TunIO{Stopper: stopper, Picker: picker}, nil
}

func validStage(s string) bool {
	for _, st := range Stages() {
		if s == st {
			return true
		}
	}
	return false
}

func paramNames(space []params.Parameter) []string {
	names := make([]string, len(space))
	for i, p := range space {
		names[i] = p.Name
	}
	return names
}
