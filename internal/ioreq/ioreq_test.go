package ioreq

import (
	"testing"
	"testing/quick"
)

func TestExtentValidate(t *testing.T) {
	if err := (Extent{Offset: 0, Size: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Extent{Offset: -1, Size: 1}).Validate(); err == nil {
		t.Fatal("negative offset: want error")
	}
	if err := (Extent{Offset: 0, Size: 0}).Validate(); err == nil {
		t.Fatal("zero size: want error")
	}
}

func TestEnd(t *testing.T) {
	if (Extent{Offset: 10, Size: 5}).End() != 15 {
		t.Fatal("End wrong")
	}
}

func TestTotalBytes(t *testing.T) {
	exts := []Extent{{Offset: 0, Size: 10}, {Offset: 20, Size: 5, Rank: 1}}
	if TotalBytes(exts) != 15 {
		t.Fatalf("TotalBytes = %d", TotalBytes(exts))
	}
	if TotalBytes(nil) != 0 {
		t.Fatal("TotalBytes(nil) != 0")
	}
}

func TestCoalesce(t *testing.T) {
	got := Coalesce([]Extent{
		{Offset: 0, Size: 10, Rank: 0},
		{Offset: 10, Size: 10, Rank: 0},  // adjacent same rank: merge
		{Offset: 15, Size: 10, Rank: 0},  // overlapping same rank: merge
		{Offset: 25, Size: 5, Rank: 1},   // adjacent different rank: keep
		{Offset: 100, Size: 10, Rank: 1}, // gap: keep
	})
	want := []Extent{
		{Offset: 0, Size: 25, Rank: 0, Count: 3}, // 3 original requests merged
		{Offset: 25, Size: 5, Rank: 1},
		{Offset: 100, Size: 10, Rank: 1},
	}
	if len(got) != len(want) {
		t.Fatalf("Coalesce = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Coalesce[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Coalesce(nil) != nil {
		t.Fatal("Coalesce(nil) != nil")
	}
}

func TestCoalescePreservesBytesProperty(t *testing.T) {
	// For non-overlapping sorted input, coalescing preserves total bytes.
	f := func(sizes [6]uint8, gaps [6]uint8) bool {
		var exts []Extent
		off := int64(0)
		for i := range sizes {
			off += int64(gaps[i]) + 1 // ensure strictly increasing, gap >= 1
			size := int64(sizes[i]) + 1
			exts = append(exts, Extent{Offset: off, Size: size, Rank: 0})
			off += size
		}
		return TotalBytes(Coalesce(exts)) == TotalBytes(exts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpanLenAndDensity(t *testing.T) {
	dense := Extent{Offset: 0, Size: 100}
	if dense.SpanLen() != 100 || dense.Density() != 1 {
		t.Fatalf("dense: span %d density %v", dense.SpanLen(), dense.Density())
	}
	strided := Extent{Offset: 0, Size: 100, Span: 400}
	if strided.SpanLen() != 400 || strided.Density() != 0.25 {
		t.Fatalf("strided: span %d density %v", strided.SpanLen(), strided.Density())
	}
	// Span smaller than Size is ignored (dense)
	weird := Extent{Offset: 0, Size: 100, Span: 10}
	if weird.SpanLen() != 100 {
		t.Fatal("span < size must clamp to size")
	}
}

func TestRequestsAndSubSize(t *testing.T) {
	e := Extent{Offset: 0, Size: 100, Count: 4}
	if e.Requests() != 4 || e.SubSize() != 25 {
		t.Fatalf("requests %d subsize %d", e.Requests(), e.SubSize())
	}
	single := Extent{Offset: 0, Size: 100}
	if single.Requests() != 1 || single.SubSize() != 100 {
		t.Fatal("default single request wrong")
	}
}
