// Package ioreq defines the request types shared by the layers of the
// simulated I/O stack: extents (byte ranges attributed to an issuing rank)
// and the Backend interface both storage targets (the Lustre simulation and
// the in-memory /dev/shm target used by I/O path switching) implement.
package ioreq

import "fmt"

// Extent is one byte range of a file, issued by a rank.
//
// Count > 1 marks the range as being issued as Count equal-sized sequential
// sub-requests (the shape strided hyperslab I/O produces) rather than one
// large request; storage layers charge per-request overheads accordingly.
// Count <= 1 means a single request.
//
// Span, when larger than Size, records the geometric footprint of a
// strided access: the extent touches Size payload bytes scattered over
// [Offset, Offset+Span). Storage layers spread the payload over the span's
// stripes, and collective buffering treats the span as coverage (the gaps
// are tiled by the other ranks of the interleaved pattern). Span <= Size
// means a dense extent.
type Extent struct {
	Offset int64
	Size   int64
	Rank   int
	Count  int64
	Span   int64
}

// SpanLen returns the geometric footprint length.
func (e Extent) SpanLen() int64 {
	if e.Span > e.Size {
		return e.Span
	}
	return e.Size
}

// Density returns payload bytes per footprint byte (1 for dense extents).
func (e Extent) Density() float64 {
	s := e.SpanLen()
	if s <= 0 {
		return 1
	}
	return float64(e.Size) / float64(s)
}

// Requests returns the number of storage requests the extent represents.
func (e Extent) Requests() int64 {
	if e.Count <= 1 {
		return 1
	}
	return e.Count
}

// SubSize returns the size of each sub-request.
func (e Extent) SubSize() int64 {
	return e.Size / e.Requests()
}

// Validate reports an error for negative or empty extents.
func (e Extent) Validate() error {
	if e.Offset < 0 || e.Size <= 0 {
		return fmt.Errorf("ioreq: invalid extent offset=%d size=%d", e.Offset, e.Size)
	}
	return nil
}

// End returns the exclusive end offset.
func (e Extent) End() int64 { return e.Offset + e.Size }

// TotalBytes sums extent sizes.
func TotalBytes(extents []Extent) int64 {
	var total int64
	for _, e := range extents {
		total += e.Size
	}
	return total
}

// Coalesce merges adjacent or overlapping extents from the same rank,
// assuming the input is sorted by offset. It returns a new slice.
func Coalesce(extents []Extent) []Extent {
	if len(extents) == 0 {
		return nil
	}
	out := make([]Extent, 0, len(extents))
	cur := extents[0]
	for _, e := range extents[1:] {
		if e.Rank == cur.Rank && e.Offset <= cur.End() {
			if e.End() > cur.End() {
				cur.Size = e.End() - cur.Offset
			}
			cur.Count = cur.Requests() + e.Requests()
			continue
		}
		out = append(out, cur)
		cur = e
	}
	return append(out, cur)
}

// Backend is a storage target for file phases. Implementations charge
// simulated time and update the run's darshan report, returning the elapsed
// simulated seconds of the phase.
type Backend interface {
	// WritePhase services a set of concurrent write extents against the
	// named file.
	WritePhase(file string, extents []Extent) float64
	// ReadPhase services a set of concurrent read extents.
	ReadPhase(file string, extents []Extent) float64
	// MetaOps services n metadata operations issued by nclients clients
	// (nclients > 1 models every rank issuing the op; 1 models collective
	// metadata where a single rank issues it).
	MetaOps(n int, nclients int) float64
	// Name identifies the backend layer for counters ("lustre" or "mem").
	Name() string
}
