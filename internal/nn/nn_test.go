package nn

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestActivations(t *testing.T) {
	cases := []struct {
		act  Activation
		in   float64
		want float64
	}{
		{ReLU, -2, 0}, {ReLU, 3, 3},
		{Linear, -2, -2},
		{Tanh, 0, 0},
		{Sigmoid, 0, 0.5},
	}
	for _, c := range cases {
		if got := c.act.apply(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s(%v) = %v, want %v", c.act, c.in, got, c.want)
		}
	}
}

func TestActivationDerivConsistency(t *testing.T) {
	// deriv(y) where y = act(x) must match numeric d act/dx.
	for _, act := range []Activation{ReLU, Tanh, Sigmoid, Linear} {
		for _, x := range []float64{-1.5, -0.3, 0.4, 2.0} {
			h := 1e-6
			num := (act.apply(x+h) - act.apply(x-h)) / (2 * h)
			ana := act.deriv(act.apply(x))
			if math.Abs(num-ana) > 1e-5 {
				t.Errorf("%s'(%v): numeric %v vs analytic %v", act, x, num, ana)
			}
		}
	}
}

func TestUnknownActivationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Activation("bogus").apply(1)
}

func TestForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNetwork(3, rng, LayerSpec{8, ReLU}, LayerSpec{2, Linear})
	out := n.Forward([]float64{1, 2, 3})
	if len(out) != 2 {
		t.Fatalf("output len = %d, want 2", len(out))
	}
	if n.InputSize() != 3 || n.OutputSize() != 2 {
		t.Fatalf("sizes = %d/%d", n.InputSize(), n.OutputSize())
	}
	if n.NumParams() != 3*8+8+8*2+2 {
		t.Fatalf("NumParams = %d", n.NumParams())
	}
}

func TestForwardBadInputPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNetwork(3, rng, LayerSpec{2, Linear})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on wrong input width")
		}
	}()
	n.Forward([]float64{1})
}

func TestGradientCheck(t *testing.T) {
	// Analytic gradients must match numeric finite differences.
	rng := rand.New(rand.NewSource(7))
	n := NewNetwork(4, rng, LayerSpec{5, Tanh}, LayerSpec{3, Sigmoid}, LayerSpec{2, Linear})
	in := []float64{0.3, -0.2, 0.5, 0.1}
	target := []float64{1.0, -0.5}

	lossOf := func() float64 {
		pred := n.Forward(in)
		s := 0.0
		for j := range pred {
			d := pred[j] - target[j]
			s += d * d
		}
		return s
	}

	// analytic
	n.ZeroGrad()
	pred := n.Forward(in)
	dOut := make([]float64, len(pred))
	for j := range pred {
		dOut[j] = 2 * (pred[j] - target[j])
	}
	n.Backward(dOut)

	const h = 1e-6
	for li, l := range n.Layers {
		for wi := range l.W {
			orig := l.W[wi]
			l.W[wi] = orig + h
			up := lossOf()
			l.W[wi] = orig - h
			down := lossOf()
			l.W[wi] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-l.gradW[wi]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d W[%d]: numeric %v vs analytic %v", li, wi, num, l.gradW[wi])
			}
		}
		for bi := range l.B {
			orig := l.B[bi]
			l.B[bi] = orig + h
			up := lossOf()
			l.B[bi] = orig - h
			down := lossOf()
			l.B[bi] = orig
			num := (up - down) / (2 * h)
			if math.Abs(num-l.gradB[bi]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("layer %d B[%d]: numeric %v vs analytic %v", li, bi, num, l.gradB[bi])
			}
		}
	}
}

func TestTrainXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewNetwork(2, rng, LayerSpec{8, Tanh}, LayerSpec{1, Sigmoid})
	tr := &Trainer{Net: net, Loss: MSE, Opt: NewAdam(0.05)}
	data := []Sample{
		{[]float64{0, 0}, []float64{0}},
		{[]float64{0, 1}, []float64{1}},
		{[]float64{1, 0}, []float64{1}},
		{[]float64{1, 1}, []float64{0}},
	}
	loss := tr.Fit(data, 800, 4, rng)
	if loss > 0.02 {
		t.Fatalf("XOR did not converge: final loss %v", loss)
	}
	for _, s := range data {
		pred := net.Forward(s.In)[0]
		if math.Abs(pred-s.Target[0]) > 0.25 {
			t.Errorf("xor(%v) = %v, want %v", s.In, pred, s.Target[0])
		}
	}
}

func TestTrainLinearRegressionSGD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(2, rng, LayerSpec{1, Linear})
	tr := &Trainer{Net: net, Loss: MSE, Opt: NewSGD(0.05, 0.9)}
	// y = 2a - 3b + 1
	var data []Sample
	for i := 0; i < 64; i++ {
		a, b := rng.Float64(), rng.Float64()
		data = append(data, Sample{[]float64{a, b}, []float64{2*a - 3*b + 1}})
	}
	loss := tr.Fit(data, 300, 16, rng)
	if loss > 1e-3 {
		t.Fatalf("linear regression did not converge: loss %v", loss)
	}
	l := net.Layers[0]
	if math.Abs(l.W[0]-2) > 0.1 || math.Abs(l.W[1]+3) > 0.1 || math.Abs(l.B[0]-1) > 0.1 {
		t.Fatalf("learned W=%v B=%v, want [2 -3], [1]", l.W, l.B)
	}
}

func TestHuberLoss(t *testing.T) {
	// Small residual: quadratic; large: linear with unit gradient.
	l, g := Huber.lossGrad(0.5, 0)
	if math.Abs(l-0.125) > 1e-12 || math.Abs(g-0.5) > 1e-12 {
		t.Fatalf("huber small: %v, %v", l, g)
	}
	l, g = Huber.lossGrad(3, 0)
	if math.Abs(l-2.5) > 1e-12 || g != 1 {
		t.Fatalf("huber large: %v, %v", l, g)
	}
	l, g = Huber.lossGrad(-3, 0)
	if math.Abs(l-2.5) > 1e-12 || g != -1 {
		t.Fatalf("huber large negative: %v, %v", l, g)
	}
}

func TestTrainMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(1, rng, LayerSpec{4, Tanh}, LayerSpec{2, Linear})
	tr := &Trainer{Net: net, Loss: MSE, Opt: NewAdam(0.02)}
	// Only train output 0 to be 5; output 1 is masked out everywhere.
	before := net.Forward([]float64{1})[1]
	for i := 0; i < 400; i++ {
		tr.TrainMasked(
			[]Sample{{[]float64{1}, []float64{5, -100}}},
			[][]bool{{true, false}},
		)
	}
	out := net.Forward([]float64{1})
	if math.Abs(out[0]-5) > 0.2 {
		t.Fatalf("masked training failed: out[0] = %v, want 5", out[0])
	}
	// Output 1 shares hidden weights so it may drift, but it must not
	// approach the masked -100 target.
	if out[1] < -50 {
		t.Fatalf("masked output trained anyway: %v (was %v)", out[1], before)
	}
}

func TestCloneAndCopyWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewNetwork(2, rng, LayerSpec{3, ReLU}, LayerSpec{1, Linear})
	b := a.Clone()
	in := []float64{0.4, -0.7}
	if math.Abs(a.Forward(in)[0]-b.Forward(in)[0]) > 1e-15 {
		t.Fatal("clone output differs")
	}
	// Mutate a's output bias (always visible in the output); b unchanged.
	a.Layers[1].B[0] += 1
	if math.Abs(a.Forward(in)[0]-b.Forward(in)[0]) < 1e-15 {
		t.Fatal("clone shares storage")
	}
	if err := b.CopyWeightsFrom(a); err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Forward(in)[0]-b.Forward(in)[0]) > 1e-15 {
		t.Fatal("CopyWeightsFrom did not copy")
	}
	c := NewNetwork(2, rng, LayerSpec{4, ReLU}, LayerSpec{1, Linear})
	if err := c.CopyWeightsFrom(a); err == nil {
		t.Fatal("CopyWeightsFrom with mismatched shapes: want error")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := NewNetwork(3, rng, LayerSpec{4, Tanh}, LayerSpec{2, Linear})
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b Network
	if err := json.Unmarshal(blob, &b); err != nil {
		t.Fatal(err)
	}
	in := []float64{0.1, 0.2, 0.3}
	ao, bo := a.Forward(in), b.Forward(in)
	for i := range ao {
		if math.Abs(ao[i]-bo[i]) > 1e-15 {
			t.Fatalf("round-trip output differs at %d: %v vs %v", i, ao[i], bo[i])
		}
	}
	// Restored network must be trainable (grad buffers allocated).
	tr := &Trainer{Net: &b, Loss: MSE, Opt: NewSGD(0.01, 0)}
	tr.TrainBatch([]Sample{{in, []float64{0, 0}}})
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var n Network
	if err := json.Unmarshal([]byte(`{"layers":[]}`), &n); err == nil {
		t.Fatal("empty layers: want error")
	}
	if err := json.Unmarshal([]byte(`{"layers":[{"in":2,"out":1,"act":"linear","w":[1],"b":[0]}]}`), &n); err == nil {
		t.Fatal("inconsistent shapes: want error")
	}
}

func TestDeterministicInit(t *testing.T) {
	a := NewNetwork(2, rand.New(rand.NewSource(99)), LayerSpec{3, ReLU}, LayerSpec{1, Linear})
	b := NewNetwork(2, rand.New(rand.NewSource(99)), LayerSpec{3, ReLU}, LayerSpec{1, Linear})
	for i := range a.Layers[0].W {
		if a.Layers[0].W[i] != b.Layers[0].W[i] {
			t.Fatal("same seed produced different weights")
		}
	}
}

func TestSigmoidOutputBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := NewNetwork(3, rng, LayerSpec{6, ReLU}, LayerSpec{1, Sigmoid})
	f := func(a, b, c float64) bool {
		in := []float64{math.Mod(a, 100), math.Mod(b, 100), math.Mod(c, 100)}
		for i, v := range in {
			if math.IsNaN(v) {
				in[i] = 0
			}
		}
		y := n.Forward(in)[0]
		return y >= 0 && y <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewNetworkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { NewNetwork(0, rng, LayerSpec{1, Linear}) },
		func() { NewNetwork(2, rng) },
		func() { NewNetwork(2, rng, LayerSpec{0, Linear}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}
