package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Loss identifies a training loss.
type Loss string

// Supported losses.
const (
	MSE   Loss = "mse"
	Huber Loss = "huber" // delta = 1
)

// lossGrad returns (loss, dLoss/dPred) for one scalar prediction.
func (l Loss) lossGrad(pred, target float64) (float64, float64) {
	d := pred - target
	switch l {
	case MSE:
		return d * d, 2 * d
	case Huber:
		if math.Abs(d) <= 1 {
			return 0.5 * d * d, d
		}
		if d > 0 {
			return math.Abs(d) - 0.5, 1
		}
		return math.Abs(d) - 0.5, -1
	default:
		panic(fmt.Sprintf("nn: unknown loss %q", l))
	}
}

// Optimizer updates network weights from accumulated gradients.
type Optimizer interface {
	// Step applies one update using the gradients accumulated in n since
	// the last ZeroGrad, scaled by 1/batchSize.
	Step(n *Network, batchSize int)
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	vel map[*Dense][2][]float64
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Dense][2][]float64)}
}

// Step implements Optimizer.
func (s *SGD) Step(n *Network, batchSize int) {
	if batchSize < 1 {
		batchSize = 1
	}
	inv := 1 / float64(batchSize)
	for _, l := range n.Layers {
		v, ok := s.vel[l]
		if !ok {
			v = [2][]float64{make([]float64, len(l.W)), make([]float64, len(l.B))}
			s.vel[l] = v
		}
		for i := range l.W {
			g := l.gradW[i] * inv
			v[0][i] = s.Momentum*v[0][i] - s.LR*g
			l.W[i] += v[0][i]
		}
		for i := range l.B {
			g := l.gradB[i] * inv
			v[1][i] = s.Momentum*v[1][i] - s.LR*g
			l.B[i] += v[1][i]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	t     int
	state map[*Dense][4][]float64 // mW, vW, mB, vB
}

// NewAdam returns an Adam optimizer with standard betas.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8, state: make(map[*Dense][4][]float64)}
}

// Step implements Optimizer.
func (a *Adam) Step(n *Network, batchSize int) {
	if batchSize < 1 {
		batchSize = 1
	}
	inv := 1 / float64(batchSize)
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, l := range n.Layers {
		st, ok := a.state[l]
		if !ok {
			st = [4][]float64{
				make([]float64, len(l.W)), make([]float64, len(l.W)),
				make([]float64, len(l.B)), make([]float64, len(l.B)),
			}
			a.state[l] = st
		}
		update := func(params, grads, m, v []float64) {
			for i := range params {
				g := grads[i] * inv
				m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
				v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
				mh := m[i] / bc1
				vh := v[i] / bc2
				params[i] -= a.LR * mh / (math.Sqrt(vh) + a.Epsilon)
			}
		}
		update(l.W, l.gradW, st[0], st[1])
		update(l.B, l.gradB, st[2], st[3])
	}
}

// Sample is one supervised training example.
type Sample struct {
	In     []float64
	Target []float64
}

// Trainer bundles a network, loss, and optimizer for supervised training.
type Trainer struct {
	Net  *Network
	Loss Loss
	Opt  Optimizer
}

// TrainBatch runs one gradient step over the batch and returns mean loss.
func (t *Trainer) TrainBatch(batch []Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	t.Net.ZeroGrad()
	total := 0.0
	count := 0
	for _, s := range batch {
		pred := t.Net.Forward(s.In)
		if len(pred) != len(s.Target) {
			panic(fmt.Sprintf("nn: TrainBatch: prediction width %d, target %d", len(pred), len(s.Target)))
		}
		dOut := make([]float64, len(pred))
		for j := range pred {
			loss, g := t.Loss.lossGrad(pred[j], s.Target[j])
			total += loss
			count++
			dOut[j] = g
		}
		t.Net.Backward(dOut)
	}
	t.Opt.Step(t.Net, len(batch))
	return total / float64(count)
}

// TrainMasked runs one gradient step where only masked outputs contribute
// to the loss (used for Q-learning: only the taken action's Q-value is
// regressed). mask[j] selects whether output j of sample s participates.
func (t *Trainer) TrainMasked(batch []Sample, masks [][]bool) float64 {
	if len(batch) == 0 {
		return 0
	}
	if len(masks) != len(batch) {
		panic("nn: TrainMasked: masks length mismatch")
	}
	t.Net.ZeroGrad()
	total := 0.0
	count := 0
	for bi, s := range batch {
		pred := t.Net.Forward(s.In)
		dOut := make([]float64, len(pred))
		for j := range pred {
			if !masks[bi][j] {
				continue
			}
			loss, g := t.Loss.lossGrad(pred[j], s.Target[j])
			total += loss
			count++
			dOut[j] = g
		}
		t.Net.Backward(dOut)
	}
	t.Opt.Step(t.Net, len(batch))
	if count == 0 {
		return 0
	}
	return total / float64(count)
}

// Fit trains for epochs over the dataset with the given batch size,
// shuffling with rng each epoch, and returns the final epoch's mean loss.
func (t *Trainer) Fit(data []Sample, epochs, batchSize int, rng *rand.Rand) float64 {
	if batchSize < 1 {
		batchSize = 1
	}
	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	last := 0.0
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		sum, batches := 0.0, 0
		for start := 0; start < len(idx); start += batchSize {
			end := start + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := make([]Sample, 0, end-start)
			for _, i := range idx[start:end] {
				batch = append(batch, data[i])
			}
			sum += t.TrainBatch(batch)
			batches++
		}
		if batches > 0 {
			last = sum / float64(batches)
		}
	}
	return last
}
