// Package nn implements the small feed-forward neural networks TunIO's
// reinforcement-learning agents are built from.
//
// The paper's reference implementation builds its state observer and
// Q-functions in Keras; this package provides the equivalent pieces from
// scratch: dense layers, the usual activations, mean-squared-error and Huber
// losses, SGD-with-momentum and Adam optimizers, and JSON (de)serialization
// so offline-trained agents can be shipped with the library.
//
// All randomness is drawn from an explicit *rand.Rand so training is
// reproducible under a seed.
package nn

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
)

// Activation identifies a layer activation function.
type Activation string

// Supported activations.
const (
	Linear  Activation = "linear"
	ReLU    Activation = "relu"
	Tanh    Activation = "tanh"
	Sigmoid Activation = "sigmoid"
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Tanh:
		return math.Tanh(x)
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Linear:
		return x
	default:
		panic(fmt.Sprintf("nn: unknown activation %q", a))
	}
}

// derivative of the activation expressed in terms of the activated output y.
func (a Activation) deriv(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Tanh:
		return 1 - y*y
	case Sigmoid:
		return y * (1 - y)
	case Linear:
		return 1
	default:
		panic(fmt.Sprintf("nn: unknown activation %q", a))
	}
}

// Dense is a fully connected layer: out = act(W*in + b).
type Dense struct {
	In, Out int
	Act     Activation
	W       []float64 // Out x In, row-major
	B       []float64 // Out

	// scratch saved by Forward for Backward
	lastIn  []float64
	lastOut []float64

	// gradient accumulators
	gradW []float64
	gradB []float64
}

// newDense builds a layer with Glorot-uniform initialized weights.
func newDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W:     make([]float64, out*in),
		B:     make([]float64, out),
		gradW: make([]float64, out*in),
		gradB: make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes the layer output for one input vector.
func (d *Dense) Forward(in []float64) []float64 {
	if len(in) != d.In {
		panic(fmt.Sprintf("nn: Dense.Forward: input len %d, want %d", len(in), d.In))
	}
	out := make([]float64, d.Out)
	for o := 0; o < d.Out; o++ {
		row := d.W[o*d.In : (o+1)*d.In]
		s := d.B[o]
		for i, w := range row {
			s += w * in[i]
		}
		out[o] = d.Act.apply(s)
	}
	d.lastIn = append(d.lastIn[:0], in...)
	d.lastOut = append(d.lastOut[:0], out...)
	return out
}

// Backward consumes dL/dOut, accumulates weight gradients, and returns
// dL/dIn. Forward must have been called first.
func (d *Dense) Backward(dOut []float64) []float64 {
	if len(dOut) != d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward: grad len %d, want %d", len(dOut), d.Out))
	}
	dIn := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		dz := dOut[o] * d.Act.deriv(d.lastOut[o])
		d.gradB[o] += dz
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.gradW[o*d.In : (o+1)*d.In]
		for i := range row {
			grow[i] += dz * d.lastIn[i]
			dIn[i] += dz * row[i]
		}
	}
	return dIn
}

func (d *Dense) zeroGrad() {
	for i := range d.gradW {
		d.gradW[i] = 0
	}
	for i := range d.gradB {
		d.gradB[i] = 0
	}
}

// Network is a stack of dense layers.
type Network struct {
	Layers []*Dense
}

// LayerSpec describes one layer of a network.
type LayerSpec struct {
	Out int
	Act Activation
}

// NewNetwork builds a network with the given input width and layer specs.
func NewNetwork(inputs int, rng *rand.Rand, specs ...LayerSpec) *Network {
	if inputs <= 0 {
		panic("nn: NewNetwork: inputs must be positive")
	}
	if len(specs) == 0 {
		panic("nn: NewNetwork: need at least one layer")
	}
	n := &Network{}
	in := inputs
	for _, s := range specs {
		if s.Out <= 0 {
			panic("nn: NewNetwork: layer width must be positive")
		}
		n.Layers = append(n.Layers, newDense(in, s.Out, s.Act, rng))
		in = s.Out
	}
	return n
}

// InputSize returns the expected input width.
func (n *Network) InputSize() int { return n.Layers[0].In }

// OutputSize returns the output width.
func (n *Network) OutputSize() int { return n.Layers[len(n.Layers)-1].Out }

// Forward runs one input through the network.
func (n *Network) Forward(in []float64) []float64 {
	x := in
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward backpropagates dL/dOut through the network, accumulating
// gradients in each layer.
func (n *Network) Backward(dOut []float64) {
	g := dOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// ZeroGrad clears accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.Layers {
		l.zeroGrad()
	}
}

// Clone returns a deep copy of the network (weights only; optimizer state
// and scratch buffers are not copied).
func (n *Network) Clone() *Network {
	out := &Network{}
	for _, l := range n.Layers {
		c := &Dense{
			In: l.In, Out: l.Out, Act: l.Act,
			W:     append([]float64(nil), l.W...),
			B:     append([]float64(nil), l.B...),
			gradW: make([]float64, len(l.gradW)),
			gradB: make([]float64, len(l.gradB)),
		}
		out.Layers = append(out.Layers, c)
	}
	return out
}

// CopyWeightsFrom copies weights from src (shapes must match).
func (n *Network) CopyWeightsFrom(src *Network) error {
	if len(n.Layers) != len(src.Layers) {
		return fmt.Errorf("nn: CopyWeightsFrom: %d layers vs %d", len(n.Layers), len(src.Layers))
	}
	for i, l := range n.Layers {
		s := src.Layers[i]
		if l.In != s.In || l.Out != s.Out {
			return fmt.Errorf("nn: CopyWeightsFrom: layer %d shape %dx%d vs %dx%d", i, l.Out, l.In, s.Out, s.In)
		}
		copy(l.W, s.W)
		copy(l.B, s.B)
	}
	return nil
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, l := range n.Layers {
		total += len(l.W) + len(l.B)
	}
	return total
}

// --- serialization ---

type denseJSON struct {
	In  int        `json:"in"`
	Out int        `json:"out"`
	Act Activation `json:"act"`
	W   []float64  `json:"w"`
	B   []float64  `json:"b"`
}

type networkJSON struct {
	Layers []denseJSON `json:"layers"`
}

// MarshalJSON serializes the network weights.
func (n *Network) MarshalJSON() ([]byte, error) {
	var nj networkJSON
	for _, l := range n.Layers {
		nj.Layers = append(nj.Layers, denseJSON{In: l.In, Out: l.Out, Act: l.Act, W: l.W, B: l.B})
	}
	return json.Marshal(nj)
}

// UnmarshalJSON restores a network serialized with MarshalJSON.
func (n *Network) UnmarshalJSON(data []byte) error {
	var nj networkJSON
	if err := json.Unmarshal(data, &nj); err != nil {
		return err
	}
	if len(nj.Layers) == 0 {
		return fmt.Errorf("nn: UnmarshalJSON: no layers")
	}
	n.Layers = nil
	for i, lj := range nj.Layers {
		if len(lj.W) != lj.In*lj.Out || len(lj.B) != lj.Out {
			return fmt.Errorf("nn: UnmarshalJSON: layer %d has inconsistent shapes", i)
		}
		n.Layers = append(n.Layers, &Dense{
			In: lj.In, Out: lj.Out, Act: lj.Act,
			W:     lj.W,
			B:     lj.B,
			gradW: make([]float64, lj.In*lj.Out),
			gradB: make([]float64, lj.Out),
		})
	}
	return nil
}
