package params

import "math"

// LibraryInfo records the user-level configurable parameter counts of one
// HPC I/O library, as used by Figure 1 of the paper: permutations are
// computed with a lower bound of two values per discrete parameter and five
// per continuous parameter.
type LibraryInfo struct {
	Name       string
	Discrete   int
	Continuous int
}

// Permutations returns the library's parameter-value permutation count
// under the Figure 1 convention (2^discrete * 5^continuous).
func (l LibraryInfo) Permutations() float64 {
	return math.Pow(2, float64(l.Discrete)) * math.Pow(5, float64(l.Continuous))
}

// Params returns the total parameter count.
func (l LibraryInfo) Params() int { return l.Discrete + l.Continuous }

// LibraryCatalog returns the Figure 1 library set with parameter counts
// (lower bounds) drawn from each library's configuration reference.
func LibraryCatalog() []LibraryInfo {
	return []LibraryInfo{
		{Name: "HDF5", Discrete: 18, Continuous: 9},
		{Name: "PNetCDF", Discrete: 8, Continuous: 6},
		{Name: "MPI", Discrete: 14, Continuous: 8},
		{Name: "ADIOS", Discrete: 20, Continuous: 10},
		{Name: "OpenSHMEM-X", Discrete: 10, Continuous: 4},
		{Name: "Hermes", Discrete: 12, Continuous: 8},
	}
}

// StackPermutations multiplies the permutation counts of the named
// libraries (a full-stack tune explores their product; e.g. HDF5+MPI is
// on the order of 10^21, Figure 1's headline number).
func StackPermutations(names ...string) float64 {
	cat := LibraryCatalog()
	total := 1.0
	for _, n := range names {
		for _, l := range cat {
			if l.Name == n {
				total *= l.Permutations()
			}
		}
	}
	return total
}
