package params

// Stage footprints declare which parameters each stage of the staged
// trace-replay evaluation engine (internal/replay) actually reads. Two
// assignments whose projections onto a stage's footprint are equal produce
// byte-identical stage artifacts, so the engine caches each stage's output
// keyed by the assignment's ProjectionKey over that footprint.
//
// The three stages mirror the stack layers a transfer flows through:
//
//   - PlanStage: HDF5 slab→extent/chunk planning. Reads the alignment
//     policy (data offsets), the sieve buffer (extent coalescing), and the
//     chunk cache capacity (which chunks need read-modify-write).
//   - AggregateStage: MPI-IO two-phase lowering plus metadata routing.
//     Reads the collective-buffering hints and the collective-metadata
//     switches (which decide how planned extents become wire requests).
//     The aggregation schedule is computed over the plan-stage artifact, so
//     its cache key is the union of both footprints.
//   - ServiceStage: Lustre/cluster service of the wire plan. Striping and
//     the metadata-cache level feed the runtime cost model directly; this
//     stage also consumes the run seed (noise), so it is never cached.
var (
	PlanStage = []string{Alignment, SieveBufSize, ChunkCache}

	AggregateStage = []string{
		CollectiveWrite, CBNodes, CBBufferSize,
		CollMetadataOps, CollMetadataWrite, MetaBlockSize,
	}

	ServiceStage = []string{StripingFactor, StripingUnit, MDCConfig}
)

// ProjectionKey returns a compact comparable key identifying the
// assignment's projection onto the named parameters: the stage-cache key.
// Value indices (not raw values) are encoded, one byte each — every value
// list in Space() has fewer than 256 entries. Names must exist in the
// assignment's space.
func (a *Assignment) ProjectionKey(names []string) string {
	return string(a.AppendProjection(make([]byte, 0, len(names)), names))
}

// AppendProjection appends the projection-key bytes of the named
// parameters to dst and returns the extended slice. It is the allocation
// free form of ProjectionKey for hot paths that build cache keys into a
// caller-owned scratch buffer (map lookups via string(dst) then compile
// to no allocation at all).
func (a *Assignment) AppendProjection(dst []byte, names []string) []byte {
	for _, name := range names {
		j := Index(a.space, name)
		if j < 0 {
			panic("params: unknown parameter " + name)
		}
		dst = append(dst, byte(a.idx[j]))
	}
	return dst
}
