package params

import (
	"math"
	"strings"
	"testing"

	"tunio/internal/hdf5"
)

func TestSpaceSize(t *testing.T) {
	space := Space()
	if len(space) != 12 {
		t.Fatalf("space has %d parameters, want 12 (paper §IV)", len(space))
	}
	total := TotalPermutations(space)
	if total <= 2_180_000_000 {
		t.Fatalf("permutations = %d, paper requires > 2.18 billion", total)
	}
}

func TestSpaceLayers(t *testing.T) {
	counts := map[Layer]int{}
	for _, p := range Space() {
		counts[p.Layer]++
	}
	if counts[LayerHDF5] != 7 || counts[LayerMPI] != 3 || counts[LayerLustre] != 2 {
		t.Fatalf("layer distribution = %v", counts)
	}
}

func TestDefaultsValid(t *testing.T) {
	for _, p := range Space() {
		if p.Default < 0 || p.Default >= len(p.Values) {
			t.Errorf("%s: default index %d out of range %d", p.Name, p.Default, len(p.Values))
		}
		if len(p.Values) < 2 {
			t.Errorf("%s: needs at least 2 values", p.Name)
		}
	}
}

func TestDefaultAssignmentMatchesLibraryDefaults(t *testing.T) {
	a := DefaultAssignment(Space())
	s := a.Settings()
	if s.StripeCount != 1 {
		t.Fatalf("default stripe count = %d, want 1 (Lustre default)", s.StripeCount)
	}
	if s.Hints.CollectiveWrite {
		t.Fatal("default must be independent I/O")
	}
	d := hdf5.DefaultConfig()
	if s.HDF5.SieveBufSize != d.SieveBufSize || s.HDF5.ChunkCacheBytes != d.ChunkCacheBytes ||
		s.HDF5.Alignment != d.Alignment || s.HDF5.MetaBlockSize != d.MetaBlockSize {
		t.Fatalf("default HDF5 config %+v does not match library defaults %+v", s.HDF5, d)
	}
	if s.HDF5.MDC != hdf5.MDCDefault {
		t.Fatal("default MDC should be MDCDefault")
	}
	if len(a.ChangedFromDefault()) != 0 {
		t.Fatalf("default assignment reports changes: %v", a.ChangedFromDefault())
	}
}

func TestGenomeRoundTrip(t *testing.T) {
	space := Space()
	a := DefaultAssignment(space)
	if err := a.SetIndex(StripingFactor, 7); err != nil {
		t.Fatal(err)
	}
	g := a.Genome()
	b, err := FromGenome(space, g)
	if err != nil {
		t.Fatal(err)
	}
	if b.Value(StripingFactor) != 32 {
		t.Fatalf("round trip lost value: %d", b.Value(StripingFactor))
	}
	// Genome returns a copy
	g[0] = 99
	if a.Genome()[0] == 99 {
		t.Fatal("Genome not a copy")
	}
}

func TestFromGenomeValidation(t *testing.T) {
	space := Space()
	if _, err := FromGenome(space, []int{1}); err == nil {
		t.Fatal("short genome: want error")
	}
	bad := DefaultAssignment(space).Genome()
	bad[0] = 999
	if _, err := FromGenome(space, bad); err == nil {
		t.Fatal("out-of-range gene: want error")
	}
}

func TestSetIndexValidation(t *testing.T) {
	a := DefaultAssignment(Space())
	if err := a.SetIndex("nope", 0); err == nil {
		t.Fatal("unknown name: want error")
	}
	if err := a.SetIndex(Alignment, 100); err == nil {
		t.Fatal("bad index: want error")
	}
}

func TestValueUnknownPanics(t *testing.T) {
	a := DefaultAssignment(Space())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	a.Value("nope")
}

func TestFeaturesNormalized(t *testing.T) {
	space := Space()
	a := DefaultAssignment(space)
	for i := range space {
		a.idx[i] = len(space[i].Values) - 1
	}
	for i, f := range a.Features() {
		if f != 1 {
			t.Fatalf("feature %d = %v, want 1 at max index", i, f)
		}
	}
	b := DefaultAssignment(space)
	for i, f := range b.Features() {
		if f < 0 || f > 1 {
			t.Fatalf("feature %d = %v out of [0,1]", i, f)
		}
	}
}

func TestSettingsLowering(t *testing.T) {
	a := DefaultAssignment(Space())
	a.SetIndex(CollectiveWrite, 1)
	a.SetIndex(CBNodes, 3)
	a.SetIndex(StripingFactor, 9)
	a.SetIndex(StripingUnit, 6)
	a.SetIndex(CollMetadataOps, 1)
	a.SetIndex(MDCConfig, 3)
	s := a.Settings()
	if !s.Hints.CollectiveWrite || !s.Hints.CollectiveRead {
		t.Fatal("collective not lowered")
	}
	if s.Hints.CBNodes != 8 {
		t.Fatalf("cb_nodes = %d", s.Hints.CBNodes)
	}
	if s.StripeCount != 64 || s.StripeSize != 4<<20 {
		t.Fatalf("striping = %d/%d", s.StripeCount, s.StripeSize)
	}
	if !s.HDF5.CollMetadataOps || s.HDF5.MDC != hdf5.MDCAggressive {
		t.Fatal("hdf5 settings not lowered")
	}
	changed := a.ChangedFromDefault()
	if len(changed) != 6 {
		t.Fatalf("ChangedFromDefault = %v", changed)
	}
}

func TestString(t *testing.T) {
	s := DefaultAssignment(Space()).String()
	if !strings.Contains(s, "striping_factor=1") {
		t.Fatalf("String = %q", s)
	}
}

func TestIndexLookup(t *testing.T) {
	space := Space()
	if Index(space, SieveBufSize) != 0 {
		t.Fatal("index of first param")
	}
	if Index(space, "nope") != -1 {
		t.Fatal("unknown should be -1")
	}
}

func TestLibraryCatalogFig1(t *testing.T) {
	cat := LibraryCatalog()
	if len(cat) != 6 {
		t.Fatalf("catalog has %d libraries, want 6", len(cat))
	}
	for _, l := range cat {
		if l.Permutations() <= 0 || l.Params() != l.Discrete+l.Continuous {
			t.Fatalf("bad library %+v", l)
		}
	}
	// Figure 1 headline: HDF5+MPI stack on the order of 10^21.
	p := StackPermutations("HDF5", "MPI")
	if math.Log10(p) < 20 || math.Log10(p) > 23 {
		t.Fatalf("HDF5+MPI permutations = %g, want ~1e21 (paper: 3.81e21)", p)
	}
	if StackPermutations("nope") != 1 {
		t.Fatal("unknown library should contribute factor 1")
	}
}
