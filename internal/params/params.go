// Package params defines the tunable-parameter space of the simulated I/O
// stack: the 12 parameters across HDF5, MPI-IO, and Lustre that the paper's
// evaluation tunes (§IV: "we tune a subset of 12 parameters across HDF5,
// MPI, and Lustre, which gives a search space of over 2.18 billion
// permutations"), plus the library catalog behind Figure 1's permutation
// counts.
//
// A parameter assignment maps one-to-one onto a GA genome (one gene per
// parameter, each gene indexing the parameter's discrete value list) and
// onto a normalized feature vector for the RL agents.
package params

import (
	"fmt"

	"tunio/internal/hdf5"
	"tunio/internal/mpiio"
)

// Layer identifies which stack layer a parameter configures.
type Layer string

// Stack layers.
const (
	LayerHDF5   Layer = "hdf5"
	LayerMPI    Layer = "mpi"
	LayerLustre Layer = "lustre"
)

// Parameter is one tunable knob with its discrete value list.
type Parameter struct {
	Name    string
	Layer   Layer
	Values  []int64 // raw values (bytes, counts, enum codes, or 0/1 flags)
	Default int     // index into Values of the untuned default
}

// Canonical parameter names.
const (
	SieveBufSize      = "sieve_buf_size"
	ChunkCache        = "chunk_cache"
	Alignment         = "alignment"
	MetaBlockSize     = "meta_block_size"
	CollMetadataOps   = "colmeta_ops"
	MDCConfig         = "mdc_conf"
	CollMetadataWrite = "coll_metadata_write"
	StripingFactor    = "striping_factor"
	StripingUnit      = "striping_unit"
	CBNodes           = "cb_nodes"
	CBBufferSize      = "cb_buffer_size"
	CollectiveWrite   = "romio_cb_write"
)

const (
	kib = 1 << 10
	mib = 1 << 20
)

// Space returns the 12-parameter tuning space. The value lists multiply to
// about 2.52e9 permutations, matching the paper's ">2.18 billion".
func Space() []Parameter {
	return []Parameter{
		{Name: SieveBufSize, Layer: LayerHDF5, Default: 0,
			Values: []int64{64 * kib, 128 * kib, 256 * kib, 512 * kib, 1 * mib, 2 * mib, 4 * mib, 8 * mib}},
		{Name: ChunkCache, Layer: LayerHDF5, Default: 0,
			Values: []int64{1 * mib, 2 * mib, 4 * mib, 8 * mib, 16 * mib, 32 * mib, 64 * mib, 128 * mib, 256 * mib, 512 * mib}},
		{Name: Alignment, Layer: LayerHDF5, Default: 0,
			Values: []int64{1, 64 * kib, 256 * kib, 512 * kib, 1 * mib, 4 * mib, 8 * mib, 16 * mib}},
		{Name: MetaBlockSize, Layer: LayerHDF5, Default: 0,
			Values: []int64{2 * kib, 4 * kib, 8 * kib, 16 * kib, 32 * kib, 64 * kib, 128 * kib, 256 * kib}},
		{Name: CollMetadataOps, Layer: LayerHDF5, Default: 0, Values: []int64{0, 1}},
		{Name: MDCConfig, Layer: LayerHDF5, Default: 1,
			Values: []int64{int64(hdf5.MDCMinimal), int64(hdf5.MDCDefault), int64(hdf5.MDCLarge), int64(hdf5.MDCAggressive)}},
		{Name: CollMetadataWrite, Layer: LayerHDF5, Default: 0, Values: []int64{0, 1}},
		{Name: StripingFactor, Layer: LayerLustre, Default: 0,
			Values: []int64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 80, 96, 128, 160, 192, 248}},
		{Name: StripingUnit, Layer: LayerLustre, Default: 4,
			Values: []int64{64 * kib, 128 * kib, 256 * kib, 512 * kib, 1 * mib, 2 * mib, 4 * mib, 8 * mib, 16 * mib, 32 * mib, 64 * mib, 128 * mib}},
		{Name: CBNodes, Layer: LayerMPI, Default: 0,
			Values: []int64{1, 2, 4, 8, 16, 32, 64, 128}},
		{Name: CBBufferSize, Layer: LayerMPI, Default: 4,
			Values: []int64{1 * mib, 2 * mib, 4 * mib, 8 * mib, 16 * mib, 32 * mib, 64 * mib, 128 * mib, 256 * mib, 512 * mib}},
		{Name: CollectiveWrite, Layer: LayerMPI, Default: 0, Values: []int64{0, 1}},
	}
}

// TotalPermutations returns the product of value-list cardinalities.
func TotalPermutations(space []Parameter) uint64 {
	total := uint64(1)
	for _, p := range space {
		total *= uint64(len(p.Values))
	}
	return total
}

// Index returns the position of the named parameter in the space, or -1.
func Index(space []Parameter, name string) int {
	for i, p := range space {
		if p.Name == name {
			return i
		}
	}
	return -1
}

// Assignment is a concrete choice of one value per parameter, represented
// as value indices (directly usable as a GA genome).
type Assignment struct {
	space []Parameter
	idx   []int
}

// DefaultAssignment returns the untuned configuration.
func DefaultAssignment(space []Parameter) *Assignment {
	a := &Assignment{space: space, idx: make([]int, len(space))}
	for i, p := range space {
		a.idx[i] = p.Default
	}
	return a
}

// FromGenome builds an assignment from a genome of value indices.
func FromGenome(space []Parameter, genome []int) (*Assignment, error) {
	if len(genome) != len(space) {
		return nil, fmt.Errorf("params: genome length %d, want %d", len(genome), len(space))
	}
	a := &Assignment{space: space, idx: make([]int, len(space))}
	for i, g := range genome {
		if g < 0 || g >= len(space[i].Values) {
			return nil, fmt.Errorf("params: gene %d = %d out of range %d (%s)", i, g, len(space[i].Values), space[i].Name)
		}
		a.idx[i] = g
	}
	return a, nil
}

// Genome returns a copy of the value indices.
func (a *Assignment) Genome() []int {
	return append([]int(nil), a.idx...)
}

// Space returns the parameter space the assignment is over.
func (a *Assignment) Space() []Parameter { return a.space }

// Value returns the raw value of the named parameter.
func (a *Assignment) Value(name string) int64 {
	i := Index(a.space, name)
	if i < 0 {
		panic(fmt.Sprintf("params: unknown parameter %q", name))
	}
	return a.space[i].Values[a.idx[i]]
}

// SetIndex sets the value index of the named parameter.
func (a *Assignment) SetIndex(name string, idx int) error {
	i := Index(a.space, name)
	if i < 0 {
		return fmt.Errorf("params: unknown parameter %q", name)
	}
	if idx < 0 || idx >= len(a.space[i].Values) {
		return fmt.Errorf("params: %s index %d out of range %d", name, idx, len(a.space[i].Values))
	}
	a.idx[i] = idx
	return nil
}

// Features encodes the assignment as a vector in [0,1]^n (value index
// normalized by cardinality), the representation the RL agents consume.
func (a *Assignment) Features() []float64 {
	out := make([]float64, len(a.idx))
	for i, g := range a.idx {
		n := len(a.space[i].Values)
		if n > 1 {
			out[i] = float64(g) / float64(n-1)
		}
	}
	return out
}

// ChangedFromDefault returns the names of parameters not at their default.
func (a *Assignment) ChangedFromDefault() []string {
	var out []string
	for i, p := range a.space {
		if a.idx[i] != p.Default {
			out = append(out, p.Name)
		}
	}
	return out
}

// String renders name=value pairs.
func (a *Assignment) String() string {
	s := ""
	for i, p := range a.space {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", p.Name, p.Values[a.idx[i]])
	}
	return s
}

// StackSettings is the per-layer configuration an assignment denotes.
type StackSettings struct {
	StripeCount int
	StripeSize  int64
	Hints       mpiio.Hints
	HDF5        hdf5.Config
}

// Settings lowers the assignment onto the stack layers.
func (a *Assignment) Settings() StackSettings {
	h := hdf5.DefaultConfig()
	h.SieveBufSize = a.Value(SieveBufSize)
	h.ChunkCacheBytes = a.Value(ChunkCache)
	h.Alignment = a.Value(Alignment)
	h.MetaBlockSize = a.Value(MetaBlockSize)
	h.CollMetadataOps = a.Value(CollMetadataOps) != 0
	h.CollMetadataWrite = a.Value(CollMetadataWrite) != 0
	h.MDC = hdf5.MDCLevel(a.Value(MDCConfig))
	coll := a.Value(CollectiveWrite) != 0
	return StackSettings{
		StripeCount: int(a.Value(StripingFactor)),
		StripeSize:  a.Value(StripingUnit),
		Hints: mpiio.Hints{
			CollectiveWrite: coll,
			CollectiveRead:  coll,
			CBNodes:         int(a.Value(CBNodes)),
			CBBufferSize:    a.Value(CBBufferSize),
		},
		HDF5: h,
	}
}
