package tuner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"tunio/internal/cluster"
	"tunio/internal/darshan"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/workload"
)

// The drift controller tunes *online* against a time-varying machine
// (cluster.Drift). It alternates two activities on the machine's
// absolute timeline:
//
//   - Service windows: the incumbent configuration replays the kernel's
//     trace at the current epoch, standing in for one live execution of
//     the application. The window's darshan-style counters yield its
//     bandwidth, and the wall clock advances by its runtime.
//   - Drift detection + re-tuning: each window's bandwidth is compared
//     against an EWMA expectation of the incumbent's profile; when the
//     relative deviation exceeds DriftConfig.Threshold for Patience
//     consecutive windows, the controller re-tunes at the current epoch
//     and announces it (RetuneEvent).
//
// Re-tuning is incremental. The default mode is a (1+λ) local search
// around the incumbent maximizing the paper's objective, app-layer
// bandwidth (workload.Perf). That objective admits SHAMan-style
// pruning: the trace's byte totals are config-independent constants and
// the app layer's read/write times only accumulate during replay, so
// full-bytes-over-partial-times is a monotonically falling upper bound
// on the candidate's final bandwidth — once it drops below the pruning
// floor (the incumbent's measured bandwidth, raised block by block to
// the best completed candidate's) the candidate is provably worse and
// its replay aborts (replay.ExecWhile). The candidate stream of every
// round is a pure function of (incumbent genome, seed, round index) and
// never of measured fitness, and a sound prune can only discard
// non-maximal candidates, so pruned and unpruned controllers select
// identical incumbents and produce bit-identical window curves while
// the pruned one evaluates strictly less simulated stage time.
// Alternatively DriftConfig.GA re-tunes with the full GA pipeline
// warm-started from the incumbent (Config.StartFrom); that mode forgoes
// the pruning guarantee.
//
// Everything is deterministic and worker-count independent: evaluation
// seeds derive from SeedFor(seed, round, genome), batches commit in
// candidate order, and the drift schedule itself is a pure function of
// simulated time.

// DriftConfig configures an online tuning run (RunDrift).
type DriftConfig struct {
	// Space is the tuned parameter space.
	Space []params.Parameter
	// Cluster is the machine, typically carrying a Drift schedule
	// (without one the controller still works — it just never needs to
	// re-tune).
	Cluster *cluster.Cluster
	// Trace is the kernel's recorded I/O trace; service windows and
	// candidate evaluations both replay it.
	Trace *replay.Trace
	// Cache, when non-nil, is a shared stage-cache view to serve wire
	// plans from (stage artifacts are drift-independent: drift only
	// affects stage-3 execution). Nil builds a private cache.
	Cache *replay.CacheView
	// Seed drives every stochastic choice.
	Seed int64

	// Windows is the number of service windows to run (default 40).
	Windows int
	// WindowGap is idle application time (seconds) between windows —
	// compute phases, queue wait — letting schedules with widely spaced
	// regime starts be exercised by short windows. Default 0.
	WindowGap float64
	// Threshold is the relative bandwidth deviation that counts as
	// drift (default 0.15), Patience the number of consecutive deviant
	// windows before a re-tune fires (default 2).
	Threshold float64
	Patience  int

	// Neighbors is the candidate count per local-search round (default
	// 12), Rounds the rounds per re-tune (default 3), InitRounds the
	// rounds of the initial tune (default 2*Rounds).
	Neighbors  int
	Rounds     int
	InitRounds int
	// Reps is the number of replays averaged per evaluation (default 1;
	// service windows always run once).
	Reps int
	// Prune enables SHAMan-style mid-replay pruning: a candidate's
	// replay aborts once its bandwidth upper bound (full trace bytes
	// over partial app-layer times) falls below the incumbent's measured
	// bandwidth. Local-search mode only, and requires Reps == 1 (an
	// averaged objective has no sound mid-replay bound).
	Prune bool
	// Parallelism is the worker count for candidate evaluation (default
	// 1); results are identical for any value >= 1.
	Parallelism int

	// GA, when non-nil, re-tunes with the genetic pipeline warm-started
	// from the incumbent instead of local search.
	GA *GARetune
	// Picker, when non-nil, masks which parameters local-search rounds
	// may mutate (the RL subset picker in continuous mode). It is fed
	// the latest measured window bandwidth.
	Picker SubsetPicker

	// Oracle additionally tracks an oracle controller that re-tunes at
	// every regime boundary with zero detection delay, recording its
	// per-window bandwidth (the regret baseline).
	Oracle bool

	// Progress observes every completed window; OnRetune every re-tune
	// announcement. Both run on the controller goroutine.
	Progress func(WindowPoint)
	OnRetune func(RetuneEvent)
}

// GARetune sizes the warm-started GA re-tune pipeline.
type GARetune struct {
	PopSize    int // default 8
	Iterations int // default 5
}

// WindowPoint is one completed service window.
type WindowPoint struct {
	Window    int     `json:"window"`
	Start     float64 `json:"start_s"` // epoch at window start
	Runtime   float64 `json:"runtime_s"`
	PerfMBs   float64 `json:"perf_mbs"`
	Expected  float64 `json:"expected_mbs"` // EWMA expectation going in
	Deviation float64 `json:"deviation"`    // (expected - perf) / expected
	Regime    int     `json:"regime"`       // drift regime index (-1 before the schedule)
	Retuned   bool    `json:"retuned"`      // a re-tune completed just before this window
	// OraclePerfMBs is the oracle controller's bandwidth for the same
	// window (only when DriftConfig.Oracle).
	OraclePerfMBs float64 `json:"oracle_perf_mbs,omitempty"`
}

// RetuneEvent announces one re-tune: why it fired, what it cost, and
// what it chose.
type RetuneEvent struct {
	// Window is the service window after which the re-tune ran.
	Window int     `json:"window"`
	TimeS  float64 `json:"time_s"` // epoch the re-tune ran at
	Reason string  `json:"reason"`
	Mode   string  `json:"mode"` // "local" or "ga"
	// DetectWindows is the detection delay: deviant windows observed
	// before triggering.
	DetectWindows int `json:"detect_windows"`
	// Evaluations/Pruned/EvalSimSeconds cost out the re-tune: candidate
	// evaluations run, how many were pruned mid-replay, and the total
	// simulated stage time they consumed.
	Evaluations    int     `json:"evaluations"`
	Pruned         int     `json:"pruned"`
	EvalSimSeconds float64 `json:"eval_sim_seconds"`
	// Changed lists the new incumbent's parameters that differ from the
	// library defaults.
	Changed []string `json:"changed_from_default,omitempty"`
}

// DriftResult is the outcome of an online tuning run.
type DriftResult struct {
	Windows []WindowPoint `json:"windows"`
	Retunes []RetuneEvent `json:"retunes"`
	// FinalGenome/FinalChanged describe the final incumbent; Final is
	// the assignment itself (not serialized).
	FinalGenome  []int              `json:"final_genome"`
	FinalChanged []string           `json:"final_changed_from_default,omitempty"`
	Final        *params.Assignment `json:"-"`
	// Evaluations counts every tuning evaluation (initial tune plus
	// re-tunes); PrunedEvals how many of them aborted mid-replay;
	// EvalSimSeconds their total simulated stage time — the quantity
	// pruning cuts.
	Evaluations    int     `json:"evaluations"`
	PrunedEvals    int     `json:"pruned_evals"`
	EvalSimSeconds float64 `json:"eval_sim_seconds"`
	// MeanPerf averages window bandwidth; the oracle fields mirror it
	// for the zero-delay oracle controller (only when Oracle).
	MeanPerf          float64 `json:"mean_perf_mbs"`
	OracleMeanPerf    float64 `json:"oracle_mean_perf_mbs,omitempty"`
	OracleEvalSeconds float64 `json:"oracle_eval_seconds,omitempty"`
}

func (c *DriftConfig) fillDefaults() {
	if c.Windows == 0 {
		c.Windows = 40
	}
	if c.Threshold == 0 {
		c.Threshold = 0.15
	}
	if c.Patience == 0 {
		c.Patience = 2
	}
	if c.Neighbors == 0 {
		c.Neighbors = 12
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.InitRounds == 0 {
		c.InitRounds = 2 * c.Rounds
	}
	if c.Reps == 0 {
		c.Reps = 1
	}
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.GA != nil {
		if c.GA.PopSize == 0 {
			c.GA.PopSize = 8
		}
		if c.GA.Iterations == 0 {
			c.GA.Iterations = 5
		}
	}
}

// Seed salts separating the controller's independent decision streams.
const (
	driftSaltCand   = 1 // candidate evaluation seeds
	driftSaltMutate = 2 // neighbor-generation RNG
	driftSaltWindow = 3 // service-window seeds
	driftSaltOracle = 4 // oracle round + window seeds
	driftSaltGA     = 5 // warm-started GA pipeline seeds
)

// wireSource serves stage-2 wire plans (a private StageCache or a
// shared CacheView).
type wireSource interface {
	WireFor(a *params.Assignment, s params.StackSettings, ppn int) (*replay.WirePlan, error)
}

type driftRun struct {
	cfg   DriftConfig
	wire  wireSource
	pool  *workload.StackPool
	ppn   int
	drift *cluster.Drift

	mask  []bool // picker's active-parameter mask
	round int    // global evaluation-round counter (all modes)
	memo  *Memo  // GA-mode memo, keyed by re-tune epoch (stale regimes never hit)

	// Trace constants for the pruning bound, captured from the first
	// completed replay (always serial — the incumbent's evaluation
	// precedes every concurrent candidate batch).
	bytesRead    float64
	bytesWritten float64
	alpha        float64
	haveTotals   bool

	res DriftResult
}

// candScore is one candidate evaluation outcome.
type candScore struct {
	time   float64 // summed replayed runtime across reps (partial when pruned)
	perf   float64 // mean bandwidth (0 when pruned)
	pruned bool
	err    error
}

// RunDrift runs the online controller and returns its window series,
// re-tune log, and final incumbent.
func RunDrift(ctx context.Context, cfg DriftConfig) (*DriftResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(cfg.Space) == 0 {
		return nil, fmt.Errorf("tuner: drift: empty parameter space")
	}
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("tuner: drift: nil cluster")
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return nil, err
	}
	if cfg.Trace == nil {
		return nil, fmt.Errorf("tuner: drift: nil trace (record the kernel first)")
	}
	if cfg.Threshold < 0 || cfg.WindowGap < 0 {
		return nil, fmt.Errorf("tuner: drift: Threshold and WindowGap must be >= 0")
	}
	if cfg.Prune && cfg.Reps > 1 {
		return nil, fmt.Errorf("tuner: drift: Prune requires Reps == 1 (no sound mid-replay bound on an averaged objective)")
	}
	cfg.fillDefaults()

	d := &driftRun{
		cfg:   cfg,
		pool:  workload.NewStackPool(cfg.Cluster),
		ppn:   cfg.Cluster.ProcsPerNode,
		drift: cfg.Cluster.Drift,
	}
	if cfg.Cache != nil {
		d.wire = cfg.Cache
	} else {
		d.wire = replay.NewStageCache(cfg.Trace)
	}
	if cfg.Picker != nil {
		cfg.Picker.Reset()
		d.mask = make([]bool, len(cfg.Space))
		for i := range d.mask {
			d.mask[i] = true
		}
	}

	// Oracle controllers re-tune at every regime boundary with zero
	// detection delay; their configs are computed up front (the schedule
	// is known) so the main loop can score the regret baseline per
	// window. Their evaluation cost is accounted separately.
	var oracleStarts []float64
	var oracleConfigs []*params.Assignment
	if cfg.Oracle {
		var err error
		oracleStarts, oracleConfigs, err = d.oracleConfigs(ctx)
		if err != nil {
			return nil, err
		}
	}

	// Initial tune at epoch 0 from the library defaults.
	inc, initEv, err := d.tune(ctx, params.DefaultAssignment(cfg.Space), 0, cfg.InitRounds, 0)
	if err != nil {
		return nil, err
	}
	d.res.Evaluations += initEv.Evaluations
	d.res.PrunedEvals += initEv.Pruned
	d.res.EvalSimSeconds += initEv.EvalSimSeconds

	var (
		wall     float64 // service wall clock (epoch of the next window)
		mu       float64 // EWMA expected bandwidth; 0 = unset (first window after a tune)
		streak   int     // consecutive deviant windows
		devUp    bool    // direction of the current streak (perf below expectation)
		retuned  = true  // first window follows the initial tune
		perfSum  float64
		oraSum   float64
		lastPerf float64
	)
	for w := 0; w < cfg.Windows; w++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("tuner: drift canceled at window %d: %w", w, err)
		}
		var rtm replay.Runtime
		sc := d.evalOne(&rtm, inc, wall, SeedFor(cfg.Seed+driftSaltWindow, w, inc), 0)
		if sc.err != nil {
			return nil, sc.err
		}
		perf := sc.perf
		lastPerf = perf

		expected := mu
		if expected == 0 {
			expected = perf // first window under a fresh incumbent defines the profile
		}
		dev := 0.0
		if expected > 0 {
			dev = (expected - perf) / expected
		}

		pt := WindowPoint{
			Window:    w,
			Start:     wall,
			Runtime:   sc.time,
			PerfMBs:   perf,
			Expected:  expected,
			Deviation: dev,
			Regime:    d.regimeAt(wall),
			Retuned:   retuned,
		}
		retuned = false
		if cfg.Oracle {
			oc := oracleConfigs[configAt(oracleStarts, wall)]
			osc := d.evalOne(&rtm, oc, wall, SeedFor(cfg.Seed+driftSaltOracle, w, oc), 0)
			if osc.err != nil {
				return nil, osc.err
			}
			pt.OraclePerfMBs = osc.perf
			oraSum += osc.perf
		}
		d.res.Windows = append(d.res.Windows, pt)
		perfSum += perf
		if cfg.Progress != nil {
			cfg.Progress(pt)
		}

		wall += sc.time + cfg.WindowGap

		// Drift detection: sustained deviation in either direction
		// (degradation, or head-room appearing when load lifts).
		if math.Abs(dev) > cfg.Threshold && mu != 0 {
			if streak > 0 && devUp != (dev > 0) {
				streak = 0 // direction flipped; restart the streak
			}
			devUp = dev > 0
			streak++
		} else {
			streak = 0
			// Track benign drift so slow change doesn't accumulate into
			// a false trigger.
			if mu == 0 {
				mu = perf
			} else {
				mu = 0.8*mu + 0.2*perf
			}
		}
		if streak >= cfg.Patience && w+1 < cfg.Windows {
			dir := "below"
			if !devUp {
				dir = "above"
			}
			reason := fmt.Sprintf("bandwidth %s expected profile for %d windows: %.0f MB/s vs %.0f MB/s expected (%.0f%% deviation)",
				dir, streak, perf, expected, 100*math.Abs(dev))
			ev := RetuneEvent{
				Window:        w,
				TimeS:         wall,
				Reason:        reason,
				DetectWindows: streak,
			}
			inc, ev, err = d.retune(ctx, inc, wall, ev, lastPerf)
			if err != nil {
				return nil, err
			}
			d.res.Retunes = append(d.res.Retunes, ev)
			d.res.Evaluations += ev.Evaluations
			d.res.PrunedEvals += ev.Pruned
			d.res.EvalSimSeconds += ev.EvalSimSeconds
			if cfg.OnRetune != nil {
				cfg.OnRetune(ev)
			}
			mu, streak, retuned = 0, 0, true
		}
	}

	d.res.Final = inc
	d.res.FinalGenome = inc.Genome()
	d.res.FinalChanged = inc.ChangedFromDefault()
	if n := len(d.res.Windows); n > 0 {
		d.res.MeanPerf = perfSum / float64(n)
		if cfg.Oracle {
			d.res.OracleMeanPerf = oraSum / float64(n)
		}
	}
	out := d.res
	return &out, nil
}

// regimeAt maps an epoch to its drift regime index (-1 with no
// schedule or before it starts).
func (d *driftRun) regimeAt(t float64) int {
	if d.drift == nil {
		return -1
	}
	return d.drift.RegimeIndex(t)
}

// configAt returns the index of the last start <= t (0 when none —
// starts[0] is always 0).
func configAt(starts []float64, t float64) int {
	best := 0
	for i, s := range starts {
		if s <= t {
			best = i
		}
	}
	return best
}

// tuneStats costs out one tune (initial or re-tune).
type tuneStats struct {
	Evaluations    int
	Pruned         int
	EvalSimSeconds float64
}

// retune runs one incremental re-tune at epoch t and fills the event.
func (d *driftRun) retune(ctx context.Context, inc *params.Assignment, t float64, ev RetuneEvent, lastPerf float64) (*params.Assignment, RetuneEvent, error) {
	if d.cfg.GA != nil {
		next, st, err := d.gaRetune(ctx, inc, t)
		if err != nil {
			return nil, ev, err
		}
		ev.Mode = "ga"
		ev.Evaluations = st.Evaluations
		ev.EvalSimSeconds = st.EvalSimSeconds
		ev.Changed = next.ChangedFromDefault()
		return next, ev, nil
	}
	next, st, err := d.tune(ctx, inc, t, d.cfg.Rounds, lastPerf)
	if err != nil {
		return nil, ev, err
	}
	ev.Mode = "local"
	ev.Evaluations = st.Evaluations
	ev.Pruned = st.Pruned
	ev.EvalSimSeconds = st.EvalSimSeconds
	ev.Changed = next.ChangedFromDefault()
	return next, ev, nil
}

// tune is the (1+λ) local search: Rounds rounds of Neighbors candidates
// around the incumbent, evaluated at epoch t by app-layer bandwidth
// (maximize; the repo-wide objective). The incumbent is measured once —
// when a candidate wins a round its full measurement carries over as
// the next round's incumbent score, so no configuration is ever
// replayed twice within one tune. With Prune, a candidate's replay
// aborts once its bandwidth upper bound falls below the pruning floor.
// lastPerf feeds the subset picker (0 during the initial tune, before
// any window has been measured).
func (d *driftRun) tune(ctx context.Context, inc *params.Assignment, t float64, rounds int, lastPerf float64) (*params.Assignment, tuneStats, error) {
	if d.cfg.GA != nil {
		// GA mode covers the initial tune too, so the whole run shares
		// one search machinery.
		return d.gaRetune(ctx, inc, t)
	}
	var st tuneStats
	var incSc candScore
	incValid := false
	for r := 0; r < rounds; r++ {
		if err := ctx.Err(); err != nil {
			return nil, st, fmt.Errorf("tuner: drift re-tune canceled: %w", err)
		}
		round := d.round
		d.round++

		mask := d.mask
		if d.cfg.Picker != nil {
			mask = d.cfg.Picker.NextSubset(lastPerf, d.mask)
			if len(mask) == len(d.cfg.Space) {
				d.mask = mask
			} else {
				mask = d.mask
			}
		}

		// The incumbent's own bandwidth at this epoch is both the
		// opening pruning floor and the bar candidates must beat. Rounds
		// after the first inherit the score already measured (the prior
		// round's incumbent or winning candidate).
		if !incValid {
			var rtm replay.Runtime
			incSc = d.evalOne(&rtm, inc, t, SeedFor(d.cfg.Seed+driftSaltCand, round, inc), 0)
			if incSc.err != nil {
				return nil, st, incSc.err
			}
			st.Evaluations++
			st.EvalSimSeconds += incSc.time
			incValid = true
		}

		cands := d.neighbors(inc, round, mask)
		floor := 0.0
		if d.cfg.Prune {
			floor = incSc.perf
		}
		scores, err := d.evalBatch(ctx, cands, t, round, floor)
		if err != nil {
			return nil, st, err
		}
		for i, sc := range scores {
			st.Evaluations++
			st.EvalSimSeconds += sc.time
			if sc.pruned {
				st.Pruned++
				continue
			}
			// Strictly better only: a pruned candidate provably cannot
			// exceed the floor, so prune on/off picks the same incumbent.
			if sc.perf > incSc.perf {
				inc, incSc = cands[i], sc
			}
		}
	}
	return inc, st, nil
}

// neighbors generates the round's candidate set: a pure function of
// (incumbent genome, seed, round, mask) — never of measured fitness —
// so pruning cannot alter the candidate stream. The first candidate of
// every round is a uniform resample of the mutable dimensions, a global
// restart probe that lets the (1+λ) search escape local optima the
// 1-2 dimension mutations cannot. It runs first so that when it lands
// well its completed measurement raises the pruning floor before any
// local mutation replays — which is what lets pruning bite even while
// the incumbent sits in a flat low-bandwidth region (every neighbor of
// a weak incumbent scores ≈ the floor and would otherwise replay in
// full). Mutations always move a dimension to a *different* value, so
// no candidate wastes a replay re-measuring the incumbent's genome.
func (d *driftRun) neighbors(inc *params.Assignment, round int, mask []bool) []*params.Assignment {
	rng := rand.New(rand.NewSource(SeedFor(d.cfg.Seed+driftSaltMutate, round, inc)))
	dims := make([]int, 0, len(d.cfg.Space))
	for i := range d.cfg.Space {
		if (mask == nil || mask[i]) && len(d.cfg.Space[i].Values) > 1 {
			dims = append(dims, i)
		}
	}
	if len(dims) == 0 {
		for i := range d.cfg.Space {
			if len(d.cfg.Space[i].Values) > 1 {
				dims = append(dims, i)
			}
		}
	}
	base := inc.Genome()
	out := make([]*params.Assignment, 0, d.cfg.Neighbors)
	for len(out) < d.cfg.Neighbors && len(dims) > 0 {
		g := append([]int(nil), base...)
		if len(out) == 0 {
			for _, dim := range dims {
				g[dim] = rng.Intn(len(d.cfg.Space[dim].Values))
			}
		} else {
			for k := 1 + rng.Intn(2); k > 0; k-- {
				dim := dims[rng.Intn(len(dims))]
				nv := rng.Intn(len(d.cfg.Space[dim].Values) - 1)
				if nv >= g[dim] {
					nv++
				}
				g[dim] = nv
			}
		}
		a, err := params.FromGenome(d.cfg.Space, g)
		if err != nil {
			continue // unreachable: indices are drawn in range
		}
		out = append(out, a)
	}
	return out
}

// driftPruneBlock is the pruned-batch block size: the pruning floor is
// raised to the best completed bandwidth after every block. A fixed
// constant (never Parallelism) so block boundaries — and therefore
// which candidates get pruned, and all cost accounting — are identical
// for any worker count.
const driftPruneBlock = 2

// evalBatch scores candidates concurrently and commits results by
// index; the smallest-index error wins, as in Pool.EvaluateBatch. A
// positive floor prunes: candidates run in fixed-size blocks, and after
// each block the floor rises to the best bandwidth completed so far —
// the incumbent's is just the opening bid, so pruning bites even in
// early rounds when the incumbent is still weak. Raising the floor is
// sound for selection: a candidate pruned below it is provably worse
// than either the incumbent or an earlier completed candidate, so it
// can never be the round's argmax.
func (d *driftRun) evalBatch(ctx context.Context, cands []*params.Assignment, t float64, round int, floor float64) ([]candScore, error) {
	out := make([]candScore, len(cands))
	seeds := make([]int64, len(cands))
	for i, a := range cands {
		seeds[i] = SeedFor(d.cfg.Seed+driftSaltCand, round, a)
	}
	block := len(cands)
	if floor > 0 {
		block = driftPruneBlock
	}
	for lo := 0; lo < len(cands); lo += block {
		hi := lo + block
		if hi > len(cands) {
			hi = len(cands)
		}
		if err := d.evalSlice(ctx, cands[lo:hi], out[lo:hi], seeds[lo:hi], t, floor); err != nil {
			return nil, err
		}
		for _, sc := range out[lo:hi] {
			if sc.err != nil {
				return nil, sc.err
			}
			if !sc.pruned && sc.perf > floor && floor > 0 {
				floor = sc.perf
			}
		}
	}
	return out, nil
}

// evalSlice runs one block of candidates under a fixed floor, filling
// out by index.
func (d *driftRun) evalSlice(ctx context.Context, cands []*params.Assignment, out []candScore, seeds []int64, t, floor float64) error {
	workers := d.cfg.Parallelism
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		var rtm replay.Runtime
		for i, a := range cands {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("tuner: drift evaluation canceled: %w", err)
			}
			out[i] = d.evalOne(&rtm, a, t, seeds[i], floor)
		}
		return nil
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rtm replay.Runtime
			for i := range idx {
				out[i] = d.evalOne(&rtm, cands[i], t, seeds[i], floor)
			}
		}()
	}
feed:
	for i := range cands {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("tuner: drift evaluation canceled: %w", err)
	}
	return nil
}

// evalOne replays the candidate at epoch t, averaging bandwidth across
// reps. A positive floor prunes: the replay aborts as soon as the
// candidate's bandwidth upper bound falls below it (floor > 0 implies
// Reps == 1, enforced at config validation).
func (d *driftRun) evalOne(rtm *replay.Runtime, a *params.Assignment, t float64, seed int64, floor float64) candScore {
	s := a.Settings()
	wp, err := d.wire.WireFor(a, s, d.ppn)
	if err != nil {
		return candScore{err: err}
	}
	var total, perfSum float64
	for r := 0; r < d.cfg.Reps; r++ {
		st, err := d.pool.Get(s, seed+int64(r)*7919)
		if err != nil {
			return candScore{err: err}
		}
		st.Sim.SetEpoch(t)
		var keep func() bool
		if floor > 0 && d.haveTotals {
			rep := st.Sim.Report
			keep = func() bool { return d.perfBound(rep) >= floor }
		}
		err = rtm.ExecWhile(wp, st, keep)
		total += st.Sim.Now()
		if err != nil {
			d.pool.Put(st)
			if errors.Is(err, replay.ErrBudgetExceeded) {
				return candScore{time: total, pruned: true}
			}
			return candScore{err: err}
		}
		p, _ := workload.Perf(st.Sim.Report)
		perfSum += p
		if !d.haveTotals {
			// First completed replay ever (always serial): capture the
			// trace constants the pruning bound needs.
			app := st.Sim.Report.App()
			d.bytesRead = float64(app.BytesRead)
			d.bytesWritten = float64(app.BytesWritten)
			d.alpha = st.Sim.Report.WriteRatio()
			d.haveTotals = true
		}
		d.pool.Put(st)
	}
	return candScore{time: total, perf: perfSum / float64(d.cfg.Reps)}
}

// perfBound is the pruning bound: the objective (workload.Perf)
// computed with the trace's full byte totals over the replay's partial
// app-layer times. Bytes are constants of the trace and layer times
// only accumulate, so the bound falls monotonically as the replay
// progresses and equals the final objective on completion — once it is
// below the incumbent's bandwidth it stays there. A term whose time has
// not started yet is unbounded.
func (d *driftRun) perfBound(r *darshan.Report) float64 {
	app := r.App()
	var bw float64
	if d.alpha < 1 {
		if app.ReadTime <= 0 {
			return math.Inf(1)
		}
		bw += (1 - d.alpha) * d.bytesRead / app.ReadTime
	}
	if d.alpha > 0 {
		if app.WriteTime <= 0 {
			return math.Inf(1)
		}
		bw += d.alpha * d.bytesWritten / app.WriteTime
	}
	return bw / 1e6
}

// gaRetune re-tunes with the genetic pipeline warm-started from the
// incumbent, maximizing bandwidth at the epoch. One memo persists across
// the run's re-tunes, keyed by the re-tune epoch (Memo.SetEpoch): a
// genome the GA revisits within one re-tune is served from cache, while
// a re-tune at a later epoch — a different cluster regime — can never
// reuse the stale regime's scores, because the epoch is part of every
// cache key.
func (d *driftRun) gaRetune(ctx context.Context, inc *params.Assignment, t float64) (*params.Assignment, tuneStats, error) {
	round := d.round
	d.round++
	ev := &epochEvaluator{d: d, epoch: t, base: SeedFor(d.cfg.Seed+driftSaltGA, round, inc)}
	if d.memo == nil {
		d.memo = NewMemo(nil)
	}
	d.memo.Inner = &Pool{Eval: ev, Workers: d.cfg.Parallelism}
	d.memo.SetEpoch(t)
	cfg := Config{
		Space:         d.cfg.Space,
		PopSize:       d.cfg.GA.PopSize,
		MaxIterations: d.cfg.GA.Iterations,
		Seed:          ev.base,
		StartFrom:     inc,
		Picker:        d.cfg.Picker,
	}
	res, err := RunBatch(ctx, cfg, d.memo)
	if err != nil {
		return nil, tuneStats{}, err
	}
	return res.Best, tuneStats{Evaluations: ev.evals, EvalSimSeconds: ev.simSeconds}, nil
}

// epochEvaluator adapts the drift run's replay path to the Evaluator
// interface for GA re-tunes, pinning every evaluation to one epoch.
type epochEvaluator struct {
	d     *driftRun
	epoch float64
	base  int64

	mu         sync.Mutex
	evals      int
	simSeconds float64
}

func (e *epochEvaluator) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	var rtm replay.Runtime
	sc := e.d.evalOne(&rtm, a, e.epoch, SeedFor(e.base, iteration, a), 0)
	if sc.err != nil {
		return 0, 0, sc.err
	}
	e.mu.Lock()
	e.evals++
	e.simSeconds += sc.time
	e.mu.Unlock()
	return sc.perf, sc.time / 60, nil
}

// oracleConfigs tunes an oracle incumbent for every regime boundary
// (epoch 0 plus each regime start), warm-starting each from the
// previous. Oracle cost is recorded on the result but kept out of the
// controller's own evaluation totals.
func (d *driftRun) oracleConfigs(ctx context.Context) ([]float64, []*params.Assignment, error) {
	starts := []float64{0}
	if d.drift != nil {
		for _, r := range d.drift.Regimes {
			if r.Start > 0 {
				starts = append(starts, r.Start)
			}
		}
	}
	// Oracle tuning must not consume the main controller's round
	// counter stream unpredictably — but rounds are allocated before the
	// main tune deterministically, so sharing the counter keeps seeds
	// unique while staying reproducible.
	configs := make([]*params.Assignment, len(starts))
	inc := params.DefaultAssignment(d.cfg.Space)
	mainEvals, mainPruned, mainSecs := d.res.Evaluations, d.res.PrunedEvals, d.res.EvalSimSeconds
	for i, t0 := range starts {
		next, st, err := d.tune(ctx, inc, t0, d.cfg.InitRounds, 0)
		if err != nil {
			return nil, nil, err
		}
		d.res.OracleEvalSeconds += st.EvalSimSeconds
		inc = next
		configs[i] = next
	}
	// tune() does not touch d.res totals itself; restore defensively in
	// case that changes.
	d.res.Evaluations, d.res.PrunedEvals, d.res.EvalSimSeconds = mainEvals, mainPruned, mainSecs
	return starts, configs, nil
}
