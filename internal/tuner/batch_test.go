package tuner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"tunio/internal/metrics"
	"tunio/internal/params"
)

// seededSynthetic mimics a deterministic concurrency-safe evaluator: the
// objective depends only on (assignment, iteration) through SeedFor, like
// the seeded workload evaluators.
type seededSynthetic struct {
	calls int64 // atomic: number of real evaluations performed
}

func (s *seededSynthetic) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	atomic.AddInt64(&s.calls, 1)
	seed := SeedFor(42, iteration, a)
	perf := float64(seed%100000) / 10
	return perf, 0.5, nil
}

func runPipeline(t *testing.T, eval BatchEvaluator) *Result {
	t.Helper()
	res, err := RunBatch(context.Background(), Config{
		Space: params.Space(), PopSize: 8, MaxIterations: 10, Seed: 7,
	}, eval)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func curvesEqual(a, b *Result) bool {
	if len(a.Curve) != len(b.Curve) {
		return false
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			return false
		}
	}
	return a.BestPerf == b.BestPerf && a.Best.String() == b.Best.String()
}

func TestPoolMatchesSerialBitForBit(t *testing.T) {
	serial := runPipeline(t, AdaptEvaluator(&seededSynthetic{}))
	for _, workers := range []int{1, 2, 4, 16} {
		par := runPipeline(t, &Pool{Eval: &seededSynthetic{}, Workers: workers})
		if !curvesEqual(serial, par) {
			t.Fatalf("workers=%d: curve diverged from serial", workers)
		}
	}
}

func TestMemoDeterministicAndCountsHits(t *testing.T) {
	// Memoization intentionally reuses a genome's first measurement
	// (re-measuring would only re-sample noise), so the reference is the
	// memoized serial run: every worker count must reproduce it exactly.
	serial := runPipeline(t, NewMemo(AdaptEvaluator(&seededSynthetic{})))

	inner := &seededSynthetic{}
	memo := NewMemo(&Pool{Eval: inner, Workers: 4})
	res := runPipeline(t, memo)
	if !curvesEqual(serial, res) {
		t.Fatal("memoized parallel curve diverged from memoized serial")
	}
	if res.CacheHits == 0 {
		t.Fatal("GA with elitism should repeat genomes, but no cache hits recorded")
	}
	if res.CacheHits+res.CacheMisses != res.Evaluations {
		t.Fatalf("hits(%d) + misses(%d) != evaluations(%d)",
			res.CacheHits, res.CacheMisses, res.Evaluations)
	}
	if got := int(atomic.LoadInt64(&inner.calls)); got != res.CacheMisses {
		t.Fatalf("inner evaluator ran %d times, want %d (one per miss)", got, res.CacheMisses)
	}
	if serial.Evaluations != res.Evaluations {
		t.Fatalf("evaluation accounting changed: %d vs %d", serial.Evaluations, res.Evaluations)
	}
}

func TestMemoDeduplicatesWithinBatch(t *testing.T) {
	inner := &seededSynthetic{}
	memo := NewMemo(AdaptEvaluator(inner))
	def := params.DefaultAssignment(params.Space())
	batch := []*params.Assignment{def, def, def}
	out, err := memo.EvaluateBatch(context.Background(), batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&inner.calls); got != 1 {
		t.Fatalf("duplicate genomes in one batch evaluated %d times, want 1", got)
	}
	if out[0] != out[1] || out[1] != out[2] {
		t.Fatal("duplicate genomes got different results")
	}
	hits, misses := memo.CacheStats()
	if hits != 2 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 2/1", hits, misses)
	}
}

func TestSeedForOrderIndependent(t *testing.T) {
	space := params.Space()
	a := params.DefaultAssignment(space)
	b, err := params.FromGenome(space, func() []int {
		g := a.Genome()
		g[0] = (g[0] + 1) % len(space[0].Values)
		return g
	}())
	if err != nil {
		t.Fatal(err)
	}
	if SeedFor(1, 3, a) != SeedFor(1, 3, a) {
		t.Fatal("SeedFor not deterministic")
	}
	if SeedFor(1, 3, a) == SeedFor(1, 3, b) {
		t.Fatal("different genomes produced the same seed")
	}
	if SeedFor(1, 3, a) == SeedFor(1, 4, a) {
		t.Fatal("different iterations produced the same seed")
	}
	if SeedFor(1, 3, a) == SeedFor(2, 3, a) {
		t.Fatal("different base seeds produced the same seed")
	}
}

func TestPoolErrorSmallestIndexWins(t *testing.T) {
	// Distinct assignments let the evaluator fail by batch position: the
	// pool must report the smallest failing index — where a serial pass
	// would have stopped — no matter which worker hit its error first.
	space := params.Space()
	batch := make([]*params.Assignment, 4)
	for i := range batch {
		g := params.DefaultAssignment(space).Genome()
		g[0] = i % len(space[0].Values)
		g[1] = i / len(space[0].Values)
		a, err := params.FromGenome(space, g)
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = a
	}
	failing := map[string]int{batch[1].String(): 1, batch[3].String(): 3}
	eval := FuncEvaluator(func(a *params.Assignment, _ int) (float64, float64, error) {
		if i, ok := failing[a.String()]; ok {
			return 0, 0, fmt.Errorf("boom %d", i)
		}
		return 1, 1, nil
	})
	_, err := (&Pool{Eval: eval, Workers: 4}).EvaluateBatch(context.Background(), batch, 1)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("want *BatchError, got %v", err)
	}
	if be.Index != 1 {
		t.Fatalf("error index = %d, want 1 (smallest failing position)", be.Index)
	}
}

func TestPoolHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	def := params.DefaultAssignment(params.Space())
	batch := []*params.Assignment{def, def, def, def}
	_, err := (&Pool{Eval: &seededSynthetic{}, Workers: 2}).EvaluateBatch(ctx, batch, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestRunBatchCancellationFromProgress(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen []metrics.Point
	res, err := RunBatch(ctx, Config{
		Space: params.Space(), PopSize: 4, MaxIterations: 50, Seed: 9,
		Progress: func(p metrics.Point) {
			seen = append(seen, p)
			if p.Iteration >= 3 {
				cancel()
			}
		},
	}, AdaptEvaluator(&seededSynthetic{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (res=%v)", err, res)
	}
	if len(seen) != 4 { // iterations 0..3 completed before the cancel took effect
		t.Fatalf("progress saw %d points, want 4", len(seen))
	}
}

func TestRunBatchPickerMaskMismatch(t *testing.T) {
	_, err := RunBatch(context.Background(), Config{
		Space: params.Space(), PopSize: 4, MaxIterations: 3, Seed: 5,
		Picker: badPicker{},
	}, AdaptEvaluator(&seededSynthetic{}))
	if err == nil {
		t.Fatal("short picker mask silently accepted")
	}
	want := "picker returned a mask of length 2"
	if got := err.Error(); !strings.Contains(got, want) {
		t.Fatalf("error %q does not mention the mask mismatch (%q)", got, want)
	}
}

type badPicker struct{}

func (badPicker) NextSubset(float64, []bool) []bool { return []bool{true, false} }
func (badPicker) Reset()                            {}
