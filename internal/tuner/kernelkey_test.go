package tuner

import (
	"context"
	"strings"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// TestTraceEvaluatorKernelHash checks that eager preparation derives a
// signature-based kernel hash for an interpreted kernel and installs it
// on the stage cache.
func TestTraceEvaluatorKernelHash(t *testing.T) {
	c := cluster.CoriHaswell(1, 8)
	w, err := workload.ByName("vpic", c.Procs())
	if err != nil {
		t.Fatal(err)
	}
	shrinkWorkload(w)
	prog, err := csrc.Parse(w.(workload.HasCSource).CSource())
	if err != nil {
		t.Fatal(err)
	}
	e := &TraceEvaluator{Prog: prog, Cluster: c, Reps: 1, Seed: 3}
	if e.KernelHash() != "" {
		t.Errorf("kernel hash %q before recording, want empty", e.KernelHash())
	}
	if err := e.Prepare(params.Space()); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	h := e.KernelHash()
	if !strings.HasPrefix(h, "sig:") {
		t.Errorf("kernel hash = %q, want a signature-derived sig: prefix", h)
	}
	if got := e.cache.KernelKey(); got != h {
		t.Errorf("stage-cache kernel key = %q, want %q", got, h)
	}
	// Prepare is idempotent and the hash is stable.
	if err := e.Prepare(params.Space()); err != nil || e.KernelHash() != h {
		t.Errorf("second Prepare changed state: err=%v hash=%q", err, e.KernelHash())
	}
}

// TestTraceEvaluatorWorkloadKernelHash checks the trace-hash fallback for
// kernels without a program (no signature to derive).
func TestTraceEvaluatorWorkloadKernelHash(t *testing.T) {
	c := cluster.CoriHaswell(1, 8)
	w, err := workload.ByName("flash", c.Procs())
	if err != nil {
		t.Fatal(err)
	}
	shrinkWorkload(w)
	e := &TraceEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: 3}
	if err := e.Prepare(params.Space()); err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if h := e.KernelHash(); !strings.HasPrefix(h, "trace:") {
		t.Errorf("kernel hash = %q, want a trace: prefix", h)
	}
}

// countingBatch counts how many positions reach the inner evaluator.
type countingBatch struct{ calls int }

func (c *countingBatch) EvaluateBatch(ctx context.Context, batch []*params.Assignment, iteration int) ([]EvalResult, error) {
	c.calls += len(batch)
	out := make([]EvalResult, len(batch))
	for i := range out {
		out[i] = EvalResult{Perf: 1, CostMinutes: 1}
	}
	return out, nil
}

// TestMemoKernelKeyPartitionsCache checks that the kernel key is a real
// component of the memo key: the same genome under a different kernel
// key re-evaluates, and returning to the first key hits the old entry.
func TestMemoKernelKeyPartitionsCache(t *testing.T) {
	inner := &countingBatch{}
	m := NewMemo(inner)
	a := params.DefaultAssignment(params.Space())
	batch := []*params.Assignment{a}
	ctx := context.Background()

	m.SetKernelKey("sig:aaaa")
	if _, err := m.EvaluateBatch(ctx, batch, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EvaluateBatch(ctx, batch, 1); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d after same-key repeat, want 1", inner.calls)
	}
	m.SetKernelKey("sig:bbbb")
	if _, err := m.EvaluateBatch(ctx, batch, 2); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 2 {
		t.Fatalf("inner calls = %d after key change, want 2", inner.calls)
	}
	m.SetKernelKey("sig:aaaa")
	if _, err := m.EvaluateBatch(ctx, batch, 3); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 2 {
		t.Fatalf("inner calls = %d after returning to the first key, want 2 (cache hit)", inner.calls)
	}
}
