package tuner

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tunio/internal/params"
)

// TestMemoEpochInvalidation pins the drift-epoch keying contract: lookups
// within one epoch hit, lookups across an epoch boundary miss (a re-tuned
// regime never reuses a stale regime's scores), and re-installing an epoch
// reaches its retained entries — the cache keys on epoch, it never flushes.
func TestMemoEpochInvalidation(t *testing.T) {
	inner := &seededSynthetic{}
	memo := NewMemo(AdaptEvaluator(inner))
	memo.SetKernelKey("sig:k")
	memo.SetEpoch(100.0)

	def := params.DefaultAssignment(params.Space())
	batch := []*params.Assignment{def}
	eval := func() {
		t.Helper()
		if _, err := memo.EvaluateBatch(context.Background(), batch, 1); err != nil {
			t.Fatal(err)
		}
	}

	eval()
	if got := atomic.LoadInt64(&inner.calls); got != 1 {
		t.Fatalf("first lookup simulated %d times, want 1", got)
	}
	eval()
	if got := atomic.LoadInt64(&inner.calls); got != 1 {
		t.Fatalf("same-epoch lookup re-simulated (calls = %d, want 1)", got)
	}
	memo.SetEpoch(100.0) // same epoch: must not invalidate
	eval()
	if got := atomic.LoadInt64(&inner.calls); got != 1 {
		t.Fatalf("re-installing the same epoch invalidated the cache (calls = %d)", got)
	}

	memo.SetEpoch(250.0) // epoch boundary: the re-tuned regime
	eval()
	if got := atomic.LoadInt64(&inner.calls); got != 2 {
		t.Fatalf("epoch-crossing lookup served a stale-regime score (calls = %d, want 2)", got)
	}
	eval()
	if got := atomic.LoadInt64(&inner.calls); got != 2 {
		t.Fatalf("second lookup in the new epoch missed (calls = %d, want 2)", got)
	}

	// Entries are keyed, not flushed: the old epoch's measurement is still
	// reachable under its own key.
	memo.SetEpoch(100.0)
	eval()
	if got := atomic.LoadInt64(&inner.calls); got != 2 {
		t.Fatalf("retained epoch entry was lost (calls = %d, want 2)", got)
	}

	hits, misses := memo.CacheStats()
	if hits != 4 || misses != 2 {
		t.Fatalf("stats = %d hits / %d misses, want 4/2", hits, misses)
	}
}

// TestMemoWarmPathLockFree asserts the repeated-genome fast path directly:
// a batch served entirely from the published snapshot acquires no mutex.
// Checked with the runtime mutex profiler under 8 hammering goroutines —
// any contended lock inside this package's frames fails the test.
func TestMemoWarmPathLockFree(t *testing.T) {
	memo := NewMemo(AdaptEvaluator(&seededSynthetic{}))
	memo.SetKernelKey("sig:k")
	def := params.DefaultAssignment(params.Space())
	batch := []*params.Assignment{def, def}
	if _, err := memo.EvaluateBatch(context.Background(), batch, 1); err != nil {
		t.Fatal(err)
	}

	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)
	maxprocs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(maxprocs)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if _, err := memo.EvaluateBatch(context.Background(), batch, 1); err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()

	n, _ := runtime.MutexProfile(nil)
	recs := make([]runtime.BlockProfileRecord, n+64)
	n, ok := runtime.MutexProfile(recs)
	if !ok {
		t.Fatal("mutex profile grew while reading")
	}
	for _, rec := range recs[:n] {
		frames := runtime.CallersFrames(rec.Stack())
		for {
			f, more := frames.Next()
			if strings.Contains(f.Function, "tunio/internal/tuner.") {
				t.Fatalf("warm memo batch contended a mutex at %s (%s:%d)", f.Function, f.File, f.Line)
			}
			if !more {
				break
			}
		}
	}
}
