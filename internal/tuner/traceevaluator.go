package tuner

import (
	"fmt"
	"sync"

	"tunio/internal/analysis"
	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/workload"
)

// TraceEvaluator scores configurations by staged trace replay: the kernel
// (a workload model or an interpreted C program) runs exactly once, under
// the untuned default configuration, to record its HDF5-level trace; every
// genome is then scored by replaying the trace through the staged engine
// (internal/replay), whose per-stage artifacts are cached by parameter
// projection. Replay charges the same layer code paths in the same order
// as a live run, so scores are bit-identical to the live evaluators' — the
// interpreter and workload logic just leave the inner loop.
//
// Safe for concurrent use (unless Legacy is set): workers share the stage
// cache and recycle stacks and runtimes through pools.
type TraceEvaluator struct {
	// Workload or Prog selects the kernel; exactly one must be set.
	Workload workload.Workload
	Prog     *csrc.File

	Cluster *cluster.Cluster
	Reps    int   // default 3
	Seed    int64 // base seed

	// Legacy reproduces the serial evaluators' call-counter seed
	// derivation (CSourceEvaluator / WorkloadEvaluator). It makes the
	// evaluator order-dependent and single-goroutine, so leave it unset
	// with the batch engine, which expects SeedFor-derived seeds.
	Legacy bool
	// KernelStyle selects the C-kernel evaluators' averaging arithmetic
	// (perf summed then divided, minutes accumulated per rep) instead of
	// the workload evaluators' (per-rep divided perf, runtime divided
	// once). The results differ only in floating-point rounding; set it to
	// match whichever evaluator curves are being compared against.
	KernelStyle bool

	// Shared, when non-nil, is a (typically process-global) multi-kernel
	// stage cache shared with other evaluators: stage artifacts are read
	// and written under this kernel's content hash, so sessions tuning
	// the same kernel hit each other's plans. Stats() then reports this
	// evaluator's private view, not cache-wide traffic. When nil the
	// evaluator owns a fresh cache (the historical behavior). Artifacts
	// are pure functions of (trace, projected parameters), so sharing
	// never changes scores.
	Shared *replay.StageCache
	// Store, when non-nil, is a content-addressed kernel store consulted
	// under StoreKey before recording: on a hit the stored trace (and its
	// kernel hash) is adopted and the kernel never runs; after a
	// recording the trace is published for later sessions. StoreKey must
	// identify the kernel's content — a workload name + process count, or
	// a hash of the submitted source — never anything seed-dependent.
	Store    *replay.KernelStore
	StoreKey string

	once     sync.Once
	recErr   error
	cache    *replay.StageCache
	view     *replay.CacheView
	stacks   *workload.StackPool
	rts      sync.Pool // *replay.Runtime
	evals    int       // Legacy seed counter
	kernKey  string    // signature- or trace-derived kernel content hash
	storeHit bool      // trace served from Store instead of recorded
}

// record runs the kernel once under the default configuration and builds
// the stage cache. Any failure (interpreter error, unsupported construct)
// is sticky: every Evaluate call reports it, so a FallbackEvaluator
// wrapping this one reverts permanently.
func (e *TraceEvaluator) record(space []params.Parameter) {
	if e.Store != nil && e.StoreKey != "" {
		if ent, ok := e.Store.Get(e.StoreKey); ok {
			e.kernKey = ent.KernelHash
			e.storeHit = true
			e.installCache(ent.Trace)
			return
		}
	}
	defaults := params.DefaultAssignment(space).Settings()
	st, err := workload.BuildStack(e.Cluster, defaults, e.Seed)
	if err != nil {
		e.recErr = err
		return
	}
	var t *replay.Trace
	switch {
	case e.Prog != nil:
		t, err = replay.RecordFunc(st, func(st *workload.Stack) error {
			_, err := cinterp.Run(e.Prog, st.Lib)
			return err
		})
	case e.Workload != nil:
		t, err = replay.Record(e.Workload, st)
	default:
		err = fmt.Errorf("tuner: TraceEvaluator needs a Workload or a Prog")
	}
	if err != nil {
		e.recErr = fmt.Errorf("tuner: trace recording: %w", err)
		return
	}
	e.kernKey = replay.TraceKey(t)
	if e.Prog != nil {
		// Cross-validate the recorded trace against the kernel's static I/O
		// signature. An exact signature that disagrees with the trace means
		// the tracer, the interpreter, or the signature walker is wrong —
		// refuse to tune on top of the inconsistency.
		sig := analysis.ComputeSignature(e.Prog, analysis.SignatureOptions{})
		if sig.Exact {
			cs, cerr := sig.Concrete(map[string]int64{"nprocs": int64(t.Nprocs)})
			if cerr == nil {
				if verr := replay.CrossValidate(t, cs); verr != nil {
					e.recErr = fmt.Errorf("tuner: signature/trace mismatch: %w", verr)
					return
				}
			}
			e.kernKey = "sig:" + sig.Hash()
		}
	}
	if e.Store != nil && e.StoreKey != "" {
		e.Store.Put(e.StoreKey, replay.KernelEntry{Trace: t, KernelHash: e.kernKey})
	}
	e.installCache(t)
}

// installCache binds the evaluator to its stage cache: a view on the
// shared cache when one was injected, otherwise a private cache.
func (e *TraceEvaluator) installCache(t *replay.Trace) {
	if e.Shared != nil {
		e.Shared.Register(e.kernKey, t)
		e.view = e.Shared.View(e.kernKey)
	} else {
		c := replay.NewStageCache(t)
		c.SetKernelKey(e.kernKey)
		e.cache = c
	}
	e.stacks = workload.NewStackPool(e.Cluster)
}

// Prepare records the trace eagerly (Evaluate does it lazily on first
// call) and reports any recording or signature-validation error.
func (e *TraceEvaluator) Prepare(space []params.Parameter) error {
	e.once.Do(func() { e.record(space) })
	return e.recErr
}

// KernelHash returns the kernel content hash ("sig:…" when derived from
// an exact I/O signature, "trace:…" otherwise; "" before recording).
func (e *TraceEvaluator) KernelHash() string { return e.kernKey }

// StoreHit reports whether the trace was served from the injected
// KernelStore instead of being recorded by this evaluator.
func (e *TraceEvaluator) StoreHit() bool { return e.storeHit }

// Stats returns the stage-cache counters (zero value before the first
// evaluation or after a recording failure). With a shared cache these are
// this evaluator's private view — its own hit rate against the shared
// artifacts — not cache-wide traffic.
func (e *TraceEvaluator) Stats() replay.StageStats {
	switch {
	case e.view != nil:
		return e.view.Stats()
	case e.cache != nil:
		return e.cache.Stats()
	}
	return replay.StageStats{}
}

// Evaluate implements Evaluator.
func (e *TraceEvaluator) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	e.once.Do(func() { e.record(a.Space()) })
	if e.recErr != nil {
		return 0, 0, e.recErr
	}
	reps := e.Reps
	if reps == 0 {
		reps = 3
	}
	var base int64
	if e.Legacy {
		e.evals++
		base = e.Seed + int64(e.evals)*104729 + int64(iteration)*1299709
	} else {
		base = SeedFor(e.Seed, iteration, a)
	}
	s := a.Settings()
	var wp *replay.WirePlan
	var err error
	if e.view != nil {
		wp, err = e.view.WireFor(a, s, e.Cluster.ProcsPerNode)
	} else {
		wp, err = e.cache.WireFor(a, s, e.Cluster.ProcsPerNode)
	}
	if err != nil {
		return 0, 0, err
	}
	rt, _ := e.rts.Get().(*replay.Runtime)
	if rt == nil {
		rt = &replay.Runtime{}
	}
	defer e.rts.Put(rt)

	var perfSum, minutes, runtime float64
	for r := 0; r < reps; r++ {
		st, err := e.stacks.Get(s, base+int64(r)*7919)
		if err != nil {
			return 0, 0, err
		}
		if err := rt.Exec(wp, st); err != nil {
			return 0, 0, err
		}
		perf, _ := workload.Perf(st.Sim.Report)
		if e.KernelStyle {
			perfSum += perf
			minutes += st.Sim.Now() / 60
		} else {
			perfSum += perf / float64(reps)
			runtime += st.Sim.Now()
		}
		e.stacks.Put(st)
	}
	if e.KernelStyle {
		return perfSum / float64(reps), minutes, nil
	}
	return perfSum, runtime / 60, nil
}
