package tuner

import (
	"sync"

	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// CSourceEvaluator measures configurations by interpreting a C program
// (a full application or a discovered I/O kernel) SPMD on a fresh
// simulated stack — the evaluation path the paper's Configuration
// Evaluation step uses once Application I/O Discovery has produced a
// kernel binary.
type CSourceEvaluator struct {
	Prog    *csrc.File
	Cluster *cluster.Cluster
	Reps    int   // default 3
	Seed    int64 // base seed
	evals   int
}

// Evaluate implements Evaluator.
func (e *CSourceEvaluator) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	reps := e.Reps
	if reps == 0 {
		reps = 3
	}
	e.evals++
	var perfSum, minutes float64
	for r := 0; r < reps; r++ {
		seed := e.Seed + int64(e.evals)*104729 + int64(iteration)*1299709 + int64(r)*7919
		st, err := workload.BuildStack(e.Cluster, a.Settings(), seed)
		if err != nil {
			return 0, 0, err
		}
		if _, err := cinterp.Run(e.Prog, st.Lib); err != nil {
			return 0, 0, err
		}
		perf, _ := workload.Perf(st.Sim.Report)
		perfSum += perf
		minutes += st.Sim.Now() / 60
	}
	return perfSum / float64(reps), minutes, nil
}

// SeededCSourceEvaluator is the deterministic, concurrency-safe form of
// CSourceEvaluator for the batch engine: seeds derive from (iteration,
// genome) via SeedFor, and — unless NoFold is set — the program is run
// through the interpreter's reaching-definitions constant-folding pass
// once, at kernel-build time, so each of the thousands of evaluations in
// a tuning run interprets a cheaper program.
type SeededCSourceEvaluator struct {
	Prog    *csrc.File
	Cluster *cluster.Cluster
	Reps    int   // default 3
	Seed    int64 // base seed
	// NoFold disables the constant-folding pre-pass.
	NoFold bool

	foldOnce sync.Once
}

// Evaluate implements Evaluator. Safe for concurrent use once the first
// call has completed the (synchronized) fold pre-pass.
func (e *SeededCSourceEvaluator) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	if !e.NoFold {
		e.foldOnce.Do(func() { cinterp.Fold(e.Prog) })
	}
	reps := e.Reps
	if reps == 0 {
		reps = 3
	}
	base := SeedFor(e.Seed, iteration, a)
	var perfSum, minutes float64
	for r := 0; r < reps; r++ {
		st, err := workload.BuildStack(e.Cluster, a.Settings(), base+int64(r)*7919)
		if err != nil {
			return 0, 0, err
		}
		if _, err := cinterp.Run(e.Prog, st.Lib); err != nil {
			return 0, 0, err
		}
		perf, _ := workload.Perf(st.Sim.Report)
		perfSum += perf
		minutes += st.Sim.Now() / 60
	}
	return perfSum / float64(reps), minutes, nil
}
