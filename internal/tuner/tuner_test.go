package tuner

import (
	"reflect"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// syntheticEval scores an assignment by how many parameters sit at their
// maximum index — a smooth landscape the GA can climb.
func syntheticEval(a *params.Assignment, _ int) (float64, float64, error) {
	score := 0.0
	for i, f := range a.Features() {
		_ = i
		score += f
	}
	return 100 * score, 1.0, nil
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}, FuncEvaluator(syntheticEval)); err == nil {
		t.Fatal("empty space: want error")
	}
	if _, err := Run(Config{Space: params.Space()}, nil); err == nil {
		t.Fatal("nil evaluator: want error")
	}
}

func TestPipelineImprovesOnSynthetic(t *testing.T) {
	res, err := Run(Config{
		Space:         params.Space(),
		PopSize:       12,
		MaxIterations: 20,
		Seed:          1,
	}, FuncEvaluator(syntheticEval))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Curve.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Curve.FinalBest() <= res.Curve.Baseline() {
		t.Fatalf("no improvement: %v -> %v", res.Curve.Baseline(), res.Curve.FinalBest())
	}
	if res.Evaluations != 12*20+1 {
		t.Fatalf("evaluations = %d, want 241 (baseline + 20 generations)", res.Evaluations)
	}
	if res.StoppedEarly {
		t.Fatal("no stopper attached but stopped early")
	}
	if res.Best == nil || res.BestPerf <= 0 {
		t.Fatal("missing best")
	}
}

func TestDefaultsSeededAsBaseline(t *testing.T) {
	// The first iteration must contain the default configuration, so the
	// curve baseline equals the default's perf.
	sawDefault := false
	def := params.DefaultAssignment(params.Space()).String()
	eval := FuncEvaluator(func(a *params.Assignment, iter int) (float64, float64, error) {
		if iter == 0 && a.String() == def {
			sawDefault = true
		}
		return syntheticEval(a, iter)
	})
	if _, err := Run(Config{Space: params.Space(), PopSize: 8, MaxIterations: 2, Seed: 2}, eval); err != nil {
		t.Fatal(err)
	}
	if !sawDefault {
		t.Fatal("default configuration was not evaluated in iteration 0")
	}
}

func TestTimeAccounting(t *testing.T) {
	res, err := Run(Config{
		Space: params.Space(), PopSize: 4, MaxIterations: 3, Seed: 3, Overhead: 0.5,
	}, FuncEvaluator(func(a *params.Assignment, _ int) (float64, float64, error) {
		return 1, 2.0, nil // 2 minutes per eval
	}))
	if err != nil {
		t.Fatal(err)
	}
	// (baseline + 3 iterations x 4 evals) x (2 + 0.5) minutes
	want := (1 + 3*4) * 2.5
	if got := res.Curve.TotalMinutes(); got != want {
		t.Fatalf("total minutes = %v, want %v", got, want)
	}
}

func TestHeuristicStopperFiresOnPlateau(t *testing.T) {
	// Perf improves for 4 iterations then plateaus: the 5%/5-iteration
	// heuristic must stop around iteration 9.
	res, err := Run(Config{
		Space: params.Space(), PopSize: 4, MaxIterations: 50, Seed: 4,
		Stopper: NewHeuristicStopper(),
	}, FuncEvaluator(func(_ *params.Assignment, iter int) (float64, float64, error) {
		perf := 100.0 + 50*float64(min(iter, 4))
		return perf, 1, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.StoppedEarly {
		t.Fatal("heuristic did not stop on plateau")
	}
	if res.StoppedAt < 8 || res.StoppedAt > 11 {
		t.Fatalf("stopped at %d, want ~9", res.StoppedAt)
	}
}

func TestHeuristicStopperKeepsGoingWhileImproving(t *testing.T) {
	h := NewHeuristicStopper()
	perf := 100.0
	for i := 0; i < 30; i++ {
		perf *= 1.10 // 10% per iteration > 5% threshold
		if h.Stop(i, perf) {
			t.Fatalf("stopped at %d despite steady improvement", i)
		}
	}
	h.Reset()
	if len(h.history) != 0 {
		t.Fatal("Reset did not clear history")
	}
}

func TestHeuristicStopperZeroConfigDefaults(t *testing.T) {
	// A zero-valued stopper behaves as the paper's 5%/5-iteration default
	// without mutating its public fields: it must not stop before the
	// 5-point window fills, and must stop on a flat plateau right after.
	h := &HeuristicStopper{}
	stopped := -1
	for i := 0; i < 10; i++ {
		if h.Stop(i, 100) {
			stopped = i
			break
		}
	}
	if stopped != 5 {
		t.Fatalf("zero-config stopper stopped at %d, want 5 (default window)", stopped)
	}
	if h.Window != 0 || h.MinImprovement != 0 {
		t.Fatalf("Stop mutated the configured thresholds: Window=%d MinImprovement=%v",
			h.Window, h.MinImprovement)
	}
}

func TestHeuristicStopperResetRestoresInitialState(t *testing.T) {
	h := &HeuristicStopper{Window: 3, MinImprovement: 0.10}
	initial := *h
	for i := 0; i < 8; i++ {
		h.Stop(i, 100)
	}
	h.Reset()
	if !reflect.DeepEqual(*h, initial) {
		t.Fatalf("Reset left state %+v, want the initial %+v", *h, initial)
	}
	// a reset stopper must re-fill its window from scratch
	for i := 0; i < 3; i++ {
		if h.Stop(i, 100) {
			t.Fatalf("stopped at %d after Reset, before the window refilled", i)
		}
	}
}

func TestOracleStopper(t *testing.T) {
	o := &OracleStopper{Target: 500}
	if o.Stop(0, 499) {
		t.Fatal("stopped below target")
	}
	if !o.Stop(1, 500) {
		t.Fatal("did not stop at target")
	}
	o.Reset() // no-op, must not panic
}

// TestBudgetStopper pins the documented boundary: the pipeline calls Stop
// with the 1-based tuning iteration after recording it, so a budget of N
// runs exactly N tuning iterations — Stop(N) is the first true call.
func TestBudgetStopper(t *testing.T) {
	cases := []struct {
		name      string
		max       int
		falseThru int // Stop(1..falseThru) must be false
		firstTrue int // Stop(firstTrue) must be true
	}{
		{name: "budget of three", max: 3, falseThru: 2, firstTrue: 3},
		{name: "budget of one", max: 1, falseThru: 0, firstTrue: 1},
		{name: "zero budget stops immediately", max: 0, falseThru: 0, firstTrue: 1},
		{name: "negative budget stops immediately", max: -2, falseThru: 0, firstTrue: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := &BudgetStopper{MaxIterations: tc.max}
			for it := 1; it <= tc.falseThru; it++ {
				if b.Stop(it, 1) {
					t.Fatalf("Stop(%d) = true before the budget of %d was spent", it, tc.max)
				}
			}
			if !b.Stop(tc.firstTrue, 1) {
				t.Fatalf("Stop(%d) = false, want true: budget of %d allows exactly %d iterations",
					tc.firstTrue, tc.max, tc.max)
			}
			b.Reset() // stateless; must not panic
		})
	}
}

func TestAllParamsPicker(t *testing.T) {
	p := AllParams{}
	mask := p.NextSubset(0, make([]bool, 5))
	for _, m := range mask {
		if !m {
			t.Fatal("AllParams must activate everything")
		}
	}
	p.Reset()
}

// fixedPicker always returns the same mask, for testing subset plumbing.
type fixedPicker struct{ mask []bool }

func (f *fixedPicker) NextSubset(float64, []bool) []bool { return f.mask }
func (f *fixedPicker) Reset()                            {}

func TestSubsetPickerRestrictsSearch(t *testing.T) {
	space := params.Space()
	mask := make([]bool, len(space))
	mask[params.Index(space, params.StripingFactor)] = true
	mask[params.Index(space, params.CollectiveWrite)] = true

	res, err := Run(Config{
		Space: space, PopSize: 8, MaxIterations: 6, Seed: 5,
		Picker: &fixedPicker{mask: mask},
	}, FuncEvaluator(syntheticEval))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SubsetTrace) != 7 { // baseline entry + 6 generations
		t.Fatalf("subset trace length %d", len(res.SubsetTrace))
	}
	if res.SubsetTrace[0] != nil {
		t.Fatal("baseline iteration should have no subset")
	}
	for _, tr := range res.SubsetTrace[1:] {
		for i, m := range tr {
			if m != mask[i] {
				t.Fatal("trace does not match picker mask")
			}
		}
	}
	// Inactive parameters must stay at their defaults in the final best
	// (the default genome seeds pinning before any better genome exists).
	changed := res.Best.ChangedFromDefault()
	for _, name := range changed {
		if name != params.StripingFactor && name != params.CollectiveWrite {
			t.Fatalf("inactive parameter %s changed", name)
		}
	}
}

func TestWorkloadEvaluatorEndToEnd(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	c.Noise = 0
	w := workload.NewMACSio(c.Procs())
	w.Dumps = 2
	eval := &WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: 9}
	a := params.DefaultAssignment(params.Space())
	perf, cost, err := eval.Evaluate(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if perf <= 0 || cost <= 0 {
		t.Fatalf("perf %v cost %v", perf, cost)
	}
	// Distinct evaluations use distinct seeds: results differ under noise.
	c.Noise = 0.04
	p1, _, _ := eval.Evaluate(a, 1)
	p2, _, _ := eval.Evaluate(a, 1)
	if p1 == p2 {
		t.Fatal("consecutive evaluations identical despite noise")
	}
}

func TestShortWorkloadTuningImproves(t *testing.T) {
	// A small real tuning run on the simulated stack must improve perf
	// substantially (FLASH has large untuned-vs-tuned headroom).
	c := cluster.CoriHaswell(4, 8)
	w := workload.NewFLASH(c.Procs())
	w.BlocksPerRank = 16
	w.Unknowns = 4
	res, err := Run(Config{
		Space: params.Space(), PopSize: 8, MaxIterations: 10, Seed: 10,
	}, &WorkloadEvaluator{Workload: w, Cluster: c, Reps: 1, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Curve.Speedup() < 1.5 {
		t.Fatalf("tuning speedup %.2fx, want >= 1.5x", res.Curve.Speedup())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
