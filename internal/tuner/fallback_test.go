package tuner

import (
	"context"
	"errors"
	"testing"

	"tunio/internal/params"
)

// countingEval counts calls and fails on request, for exercising the
// fallback and cancellation paths.
type countingEval struct {
	calls   int
	failAll bool
	err     error
	perf    float64
}

func (c *countingEval) Evaluate(*params.Assignment, int) (float64, float64, error) {
	c.calls++
	if c.failAll {
		return 0, 0, c.err
	}
	return c.perf, 1, nil
}

func TestFallbackEvaluatorPrimarySuccess(t *testing.T) {
	prim := &countingEval{perf: 100}
	fb := &countingEval{perf: 50}
	e := &FallbackEvaluator{Primary: prim, Fallback: fb}

	a := params.DefaultAssignment(params.Space())
	for i := 0; i < 3; i++ {
		perf, _, err := e.Evaluate(a, i)
		if err != nil || perf != 100 {
			t.Fatalf("iter %d: perf %v err %v, want primary's 100", i, perf, err)
		}
	}
	if e.FellBack || e.KernelErr != nil {
		t.Fatalf("healthy primary triggered fallback: FellBack=%v KernelErr=%v", e.FellBack, e.KernelErr)
	}
	if fb.calls != 0 {
		t.Fatalf("fallback evaluated %d times despite healthy primary", fb.calls)
	}
}

func TestFallbackEvaluatorSwitchesPermanently(t *testing.T) {
	kernelErr := errors.New("kernel: H5Dwrite out of bounds")
	prim := &countingEval{failAll: true, err: kernelErr}
	fb := &countingEval{perf: 50}
	e := &FallbackEvaluator{Primary: prim, Fallback: fb}

	a := params.DefaultAssignment(params.Space())
	// The failed configuration is re-evaluated on the fallback, so the
	// first call still succeeds from the caller's point of view.
	perf, _, err := e.Evaluate(a, 0)
	if err != nil || perf != 50 {
		t.Fatalf("perf %v err %v, want fallback's 50 with nil error", perf, err)
	}
	if !e.FellBack || !errors.Is(e.KernelErr, kernelErr) {
		t.Fatalf("switch not recorded: FellBack=%v KernelErr=%v", e.FellBack, e.KernelErr)
	}
	// The switch is permanent: the primary is never retried.
	for i := 1; i < 4; i++ {
		if _, _, err := e.Evaluate(a, i); err != nil {
			t.Fatal(err)
		}
	}
	if prim.calls != 1 {
		t.Fatalf("primary evaluated %d times, want exactly 1 (the triggering call)", prim.calls)
	}
	if fb.calls != 4 {
		t.Fatalf("fallback evaluated %d times, want 4", fb.calls)
	}
	if !errors.Is(e.KernelErr, kernelErr) {
		t.Fatalf("KernelErr changed after the switch: %v", e.KernelErr)
	}
}

func TestFallbackEvaluatorFallbackErrorPropagates(t *testing.T) {
	kernelErr := errors.New("kernel error")
	appErr := errors.New("application error")
	e := &FallbackEvaluator{
		Primary:  &countingEval{failAll: true, err: kernelErr},
		Fallback: &countingEval{failAll: true, err: appErr},
	}
	_, _, err := e.Evaluate(params.DefaultAssignment(params.Space()), 0)
	if !errors.Is(err, appErr) {
		t.Fatalf("err = %v, want the fallback's error", err)
	}
	// The kernel error that triggered the (failed) switch stays recorded.
	if !e.FellBack || !errors.Is(e.KernelErr, kernelErr) {
		t.Fatalf("FellBack=%v KernelErr=%v, want true/kernel error", e.FellBack, e.KernelErr)
	}
}

// cancelAfterEval cancels its context after a fixed number of evaluations,
// simulating a caller tearing down mid-batch.
type cancelAfterEval struct {
	cancel context.CancelFunc
	after  int
	calls  int
}

func (c *cancelAfterEval) Evaluate(*params.Assignment, int) (float64, float64, error) {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	return 100, 1, nil
}

func TestAdaptEvaluatorMidBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	inner := &cancelAfterEval{cancel: cancel, after: 2}
	memo := NewMemo(AdaptEvaluator(inner))

	space := params.Space()
	batch := make([]*params.Assignment, 6)
	g := params.DefaultAssignment(space).Genome()
	for i := range batch {
		g[0] = i // distinct genomes (SieveBufSize has 8 values)
		a, err := params.FromGenome(space, g)
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = a
	}

	res, err := memo.EvaluateBatch(ctx, batch, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("results committed after cancellation: %v", res)
	}
	// The serial adapter checks the context before each evaluation, so the
	// cancel lands before the third call.
	if inner.calls != 2 {
		t.Fatalf("inner evaluated %d configurations after cancel, want 2", inner.calls)
	}
	// No partial results leak into the cache: a re-run with a live context
	// must evaluate every configuration from scratch (zero hits).
	if _, err := memo.EvaluateBatch(context.Background(), batch, 1); err != nil {
		t.Fatal(err)
	}
	hits, misses := memo.CacheStats()
	if hits != 0 {
		t.Fatalf("cache served %d hits; canceled batch leaked partial results", hits)
	}
	// Both attempts were counted as misses against an empty cache.
	if want := 2 * len(batch); misses != want {
		t.Fatalf("misses = %d, want %d (two full passes over distinct genomes)", misses, want)
	}
	if inner.calls != 2+len(batch) {
		t.Fatalf("inner calls = %d, want %d (2 pre-cancel + full re-run)", inner.calls, 2+len(batch))
	}
}
