package tuner

import (
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/workload"
)

func TestCSourceEvaluator(t *testing.T) {
	c := cluster.CoriHaswell(1, 8)
	c.Noise = 0
	w := workload.NewMACSio(c.Procs())
	w.Dumps = 2
	w.PartBytes = 256 << 10
	prog, err := csrc.Parse(w.CSource())
	if err != nil {
		t.Fatal(err)
	}
	eval := &CSourceEvaluator{Prog: prog, Cluster: c, Reps: 2, Seed: 3}
	a := params.DefaultAssignment(params.Space())
	perf, cost, err := eval.Evaluate(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if perf <= 0 || cost <= 0 {
		t.Fatalf("perf %v cost %v", perf, cost)
	}
	// 2 reps accumulate cost: a 1-rep evaluation must be cheaper
	one := &CSourceEvaluator{Prog: prog, Cluster: c, Reps: 1, Seed: 3}
	_, cost1, err := one.Evaluate(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cost1 >= cost {
		t.Fatalf("1-rep cost %v not below 2-rep cost %v", cost1, cost)
	}
}

func TestCSourceEvaluatorPropagatesErrors(t *testing.T) {
	c := cluster.CoriHaswell(1, 2)
	c.Noise = 0
	prog, err := csrc.Parse(`int main() { frobnicate(); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	eval := &CSourceEvaluator{Prog: prog, Cluster: c, Reps: 1, Seed: 1}
	if _, _, err := eval.Evaluate(params.DefaultAssignment(params.Space()), 0); err == nil {
		t.Fatal("broken program: want error")
	}
}

func TestRunWithCSourceEvaluatorPipeline(t *testing.T) {
	c := cluster.CoriHaswell(1, 8)
	c.Noise = 0
	w := workload.NewVPIC(c.Procs())
	w.ParticlesPerRank = 16 << 10
	w.Steps = 1
	prog, err := csrc.Parse(w.CSource())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Space: params.Space(), PopSize: 4, MaxIterations: 3, Seed: 4,
	}, &CSourceEvaluator{Prog: prog, Cluster: c, Reps: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestPerf <= 0 {
		t.Fatal("no perf measured through the interpreter")
	}
}

func TestRunStartFrom(t *testing.T) {
	space := params.Space()
	warm := params.DefaultAssignment(space)
	warm.SetIndex(params.StripingFactor, 9)
	warm.SetIndex(params.CollectiveWrite, 1)

	sawWarmFirst := false
	first := true
	eval := FuncEvaluator(func(a *params.Assignment, iter int) (float64, float64, error) {
		if first {
			first = false
			sawWarmFirst = a.Value(params.StripingFactor) == 64 && a.Value(params.CollectiveWrite) == 1
		}
		return 100 + float64(a.Genome()[0]), 1, nil
	})
	res, err := Run(Config{
		Space: space, PopSize: 4, MaxIterations: 3, Seed: 5, StartFrom: warm,
	}, eval)
	if err != nil {
		t.Fatal(err)
	}
	if !sawWarmFirst {
		t.Fatal("iteration 0 did not evaluate the StartFrom configuration")
	}
	if res.Curve.Baseline() <= 0 {
		t.Fatal("baseline missing")
	}
}

func TestRunStopsImmediatelyWithAggressiveStopper(t *testing.T) {
	// A stopper that fires on the first opportunity: the pipeline must
	// stop after iteration 1 with a valid result.
	res, err := Run(Config{
		Space: params.Space(), PopSize: 4, MaxIterations: 20, Seed: 6,
		Stopper: &BudgetStopper{MaxIterations: 1},
	}, FuncEvaluator(func(a *params.Assignment, _ int) (float64, float64, error) {
		return 1, 1, nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedAt != 1 || !res.StoppedEarly {
		t.Fatalf("stopped at %d early=%v", res.StoppedAt, res.StoppedEarly)
	}
}

func TestRunEvaluatorErrorSurfacesWithContext(t *testing.T) {
	calls := 0
	eval := FuncEvaluator(func(a *params.Assignment, _ int) (float64, float64, error) {
		calls++
		if calls > 3 {
			return 0, 0, errBoom
		}
		return 1, 1, nil
	})
	if _, err := Run(Config{Space: params.Space(), PopSize: 4, MaxIterations: 5, Seed: 7}, eval); err == nil {
		t.Fatal("want error")
	}
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }
