package tuner

// NoStop never stops: the pipeline runs its full budget (the paper's
// "HSTuner with No Stop" baseline).
type NoStop struct{}

// Stop implements Stopper.
func (NoStop) Stop(int, float64) bool { return false }

// Reset implements Stopper.
func (NoStop) Reset() {}

// HeuristicStopper is the traditional early stopper the paper compares
// against (after Golovin et al.): stop when the best perf has not improved
// by at least MinImprovement (relative) over the last Window iterations.
// The paper's baseline uses 5% over 5 iterations.
type HeuristicStopper struct {
	Window         int     // default 5
	MinImprovement float64 // default 0.05

	history []float64
}

// NewHeuristicStopper returns the paper's 5%/5-iteration configuration.
func NewHeuristicStopper() *HeuristicStopper {
	return &HeuristicStopper{Window: 5, MinImprovement: 0.05}
}

// Stop implements Stopper.
func (h *HeuristicStopper) Stop(iteration int, bestPerf float64) bool {
	if h.Window <= 0 {
		h.Window = 5
	}
	if h.MinImprovement == 0 {
		h.MinImprovement = 0.05
	}
	h.history = append(h.history, bestPerf)
	if len(h.history) <= h.Window {
		return false
	}
	ref := h.history[len(h.history)-1-h.Window]
	if ref <= 0 {
		return false
	}
	return (bestPerf-ref)/ref < h.MinImprovement
}

// Reset implements Stopper.
func (h *HeuristicStopper) Reset() { h.history = h.history[:0] }

// OracleStopper stops the moment best perf reaches a known target — the
// paper's "Maximizing Performance" stopping policy, which assumes a
// perfect model that recognizes the optimum immediately (§IV-C).
type OracleStopper struct {
	Target float64
}

// Stop implements Stopper.
func (o *OracleStopper) Stop(_ int, bestPerf float64) bool {
	return bestPerf >= o.Target
}

// Reset implements Stopper.
func (o *OracleStopper) Reset() {}

// BudgetStopper stops after a fixed number of iterations regardless of
// progress (a user-imposed tuning budget).
type BudgetStopper struct {
	MaxIterations int
}

// Stop implements Stopper.
func (b *BudgetStopper) Stop(iteration int, _ float64) bool {
	return iteration+1 >= b.MaxIterations
}

// Reset implements Stopper.
func (b *BudgetStopper) Reset() {}

// AllParams is the HSTuner baseline picker: every parameter is tuned every
// iteration.
type AllParams struct{}

// NextSubset implements SubsetPicker.
func (AllParams) NextSubset(_ float64, current []bool) []bool {
	out := make([]bool, len(current))
	for i := range out {
		out[i] = true
	}
	return out
}

// Reset implements SubsetPicker.
func (AllParams) Reset() {}
