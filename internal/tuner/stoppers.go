package tuner

// NoStop never stops: the pipeline runs its full budget (the paper's
// "HSTuner with No Stop" baseline).
type NoStop struct{}

// Stop implements Stopper.
func (NoStop) Stop(int, float64) bool { return false }

// Reset implements Stopper.
func (NoStop) Reset() {}

// HeuristicStopper is the traditional early stopper the paper compares
// against (after Golovin et al.): stop when the best perf has not improved
// by at least MinImprovement (relative) over the last Window iterations.
// The paper's baseline uses 5% over 5 iterations.
type HeuristicStopper struct {
	Window         int     // default 5
	MinImprovement float64 // default 0.05

	history []float64
}

// NewHeuristicStopper returns the paper's 5%/5-iteration configuration.
func NewHeuristicStopper() *HeuristicStopper {
	return &HeuristicStopper{Window: 5, MinImprovement: 0.05}
}

// Stop implements Stopper. Zero-valued thresholds behave as the paper's
// defaults (5% over 5 iterations) without mutating the configured fields,
// so a stopper's public state after any number of Stop calls equals its
// initial state.
func (h *HeuristicStopper) Stop(iteration int, bestPerf float64) bool {
	window := h.Window
	if window <= 0 {
		window = 5
	}
	minImp := h.MinImprovement
	if minImp == 0 {
		minImp = 0.05
	}
	h.history = append(h.history, bestPerf)
	if len(h.history) <= window {
		return false
	}
	ref := h.history[len(h.history)-1-window]
	if ref <= 0 {
		return false
	}
	return (bestPerf-ref)/ref < minImp
}

// Reset implements Stopper: it restores the stopper to its full initial
// state. Since Stop never mutates the configured thresholds, dropping the
// history makes the stopper indistinguishable from a freshly constructed
// one with the same Window and MinImprovement.
func (h *HeuristicStopper) Reset() { h.history = nil }

// OracleStopper stops the moment best perf reaches a known target — the
// paper's "Maximizing Performance" stopping policy, which assumes a
// perfect model that recognizes the optimum immediately (§IV-C).
type OracleStopper struct {
	Target float64
}

// Stop implements Stopper.
func (o *OracleStopper) Stop(_ int, bestPerf float64) bool {
	return bestPerf >= o.Target
}

// Reset implements Stopper.
func (o *OracleStopper) Reset() {}

// BudgetStopper stops after a fixed number of iterations regardless of
// progress (a user-imposed tuning budget).
//
// The boundary semantics: the pipeline calls Stop with the 1-based tuning
// iteration number after recording that iteration, so Stop fires once
// iteration >= MaxIterations — exactly MaxIterations evaluated tuning
// iterations run (the iteration-0 baseline evaluation is not counted
// against the budget). A non-positive budget stops at the first
// opportunity.
type BudgetStopper struct {
	MaxIterations int
}

// Stop implements Stopper.
func (b *BudgetStopper) Stop(iteration int, _ float64) bool {
	return iteration >= b.MaxIterations
}

// Reset implements Stopper.
func (b *BudgetStopper) Reset() {}

// AllParams is the HSTuner baseline picker: every parameter is tuned every
// iteration.
type AllParams struct{}

// NextSubset implements SubsetPicker.
func (AllParams) NextSubset(_ float64, current []bool) []bool {
	out := make([]bool, len(current))
	for i := range out {
		out[i] = true
	}
	return out
}

// Reset implements SubsetPicker.
func (AllParams) Reset() {}
