package tuner

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"tunio/internal/params"
)

// EvalResult is one configuration's measured objective: the perf achieved
// and the (simulated) minutes the measurement consumed.
type EvalResult struct {
	Perf        float64
	CostMinutes float64
}

// BatchEvaluator measures a whole generation at once. Implementations may
// evaluate the batch concurrently, but the returned slice is indexed by
// batch position: results[i] belongs to batch[i], so the pipeline can
// commit them in population order regardless of completion order.
//
// Honoring ctx is the implementation's responsibility: a canceled context
// should surface as ctx.Err() (workers in flight may finish first).
type BatchEvaluator interface {
	EvaluateBatch(ctx context.Context, batch []*params.Assignment, iteration int) ([]EvalResult, error)
}

// BatchError wraps a single configuration's evaluation failure with its
// batch position, so RunBatch can report which population member failed
// exactly as the serial pipeline did.
type BatchError struct {
	Index int
	Err   error
}

// Error implements error.
func (e *BatchError) Error() string {
	return fmt.Sprintf("eval %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying evaluation error.
func (e *BatchError) Unwrap() error { return e.Err }

// AdaptEvaluator lifts a per-configuration Evaluator into a BatchEvaluator
// that evaluates strictly serially, in batch order. It preserves legacy
// evaluator semantics exactly (stateful evaluators see the same call
// sequence the serial pipeline produced), which makes it the back-compat
// shim behind Run. Evaluators that already implement BatchEvaluator are
// returned unchanged.
func AdaptEvaluator(e Evaluator) BatchEvaluator {
	if be, ok := e.(BatchEvaluator); ok {
		return be
	}
	return &serialBatch{eval: e}
}

type serialBatch struct{ eval Evaluator }

func (s *serialBatch) EvaluateBatch(ctx context.Context, batch []*params.Assignment, iteration int) ([]EvalResult, error) {
	out := make([]EvalResult, len(batch))
	for i, a := range batch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		perf, cost, err := s.eval.Evaluate(a, iteration)
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
		out[i] = EvalResult{Perf: perf, CostMinutes: cost}
	}
	return out, nil
}

// Gate bounds the total number of evaluations in flight across every
// pool that shares it — the process-wide worker budget of a multi-session
// engine. Each pool still schedules its own batch (so per-session
// determinism is untouched), but no more than the gate's capacity of
// simulations run at once machine-wide. A nil *Gate means no shared
// bound, so the zero configuration is the historical behavior.
type Gate struct {
	sem chan struct{}
}

// NewGate returns a gate admitting at most n concurrent evaluations;
// n <= 0 returns nil (unbounded).
func NewGate(n int) *Gate {
	if n <= 0 {
		return nil
	}
	return &Gate{sem: make(chan struct{}, n)}
}

// Cap returns the gate's capacity (0 for a nil gate).
func (g *Gate) Cap() int {
	if g == nil {
		return 0
	}
	return cap(g.sem)
}

// InFlight returns the number of held slots (0 for a nil gate).
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	return len(g.sem)
}

// Enter blocks until a slot is free (no-op for a nil gate). Exported so
// other evaluation loops — the offline training sweep — can share one
// process-wide budget with the tuning pools.
func (g *Gate) Enter() {
	if g != nil {
		g.sem <- struct{}{}
	}
}

// Leave releases a slot taken by Enter (no-op for a nil gate).
func (g *Gate) Leave() {
	if g != nil {
		<-g.sem
	}
}

// Pool evaluates a batch on a bounded worker pool. Eval must be safe for
// concurrent use and deterministic in (assignment, iteration) — i.e. it
// must not derive behavior from call order (see SeedFor). Under that
// contract the pool's results are bit-identical to a serial pass for any
// worker count: results are committed by batch index, and on multiple
// failures the error of the smallest batch index wins, matching where a
// serial pass would have stopped.
type Pool struct {
	Eval Evaluator
	// Workers bounds concurrency; 0 means GOMAXPROCS.
	Workers int
	// Gate, when non-nil, additionally bounds concurrency across every
	// pool sharing it: each evaluation holds one gate slot for its
	// duration. Results are unaffected — the gate only schedules.
	Gate *Gate
}

// EvaluateBatch implements BatchEvaluator.
func (p *Pool) EvaluateBatch(ctx context.Context, batch []*params.Assignment, iteration int) ([]EvalResult, error) {
	n := len(batch)
	out := make([]EvalResult, n)
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, a := range batch {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p.Gate.Enter()
			perf, cost, err := p.Eval.Evaluate(a, iteration)
			p.Gate.Leave()
			if err != nil {
				return nil, &BatchError{Index: i, Err: err}
			}
			out[i] = EvalResult{Perf: perf, CostMinutes: cost}
		}
		return out, nil
	}

	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				p.Gate.Enter()
				perf, cost, err := p.Eval.Evaluate(batch[i], iteration)
				p.Gate.Leave()
				if err != nil {
					errs[i] = err
					continue
				}
				out[i] = EvalResult{Perf: perf, CostMinutes: cost}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, &BatchError{Index: i, Err: err}
		}
	}
	return out, nil
}

// Memo adds a genome-keyed memoization cache in front of a BatchEvaluator:
// a configuration measured once is never re-simulated — later requests
// (within a batch or across generations) reuse the measured (perf, cost).
// The first occurrence in batch order defines the cached value, so curves
// stay bit-identical between serial and parallel execution.
//
// Safe for concurrent use. The cache is published copy-on-write through
// an atomic pointer: a batch whose genomes are all cached partitions,
// counts, and fills entirely from one immutable snapshot — zero locks.
// Only batches that actually simulate take the writer mutex, to clone
// and republish. Two goroutines racing on the same uncached genome may
// both simulate it, but SeedFor makes the measurements bit-identical, so
// whichever publish lands last changes nothing.
type Memo struct {
	Inner BatchEvaluator

	mu     sync.Mutex // serializes writers (publish, key changes)
	state  atomic.Pointer[memoState]
	hits   atomic.Int64
	misses atomic.Int64

	// serial, when non-nil, restores the pre-COW behavior of taking one
	// global mutex around the whole batch. Benchmark baseline only.
	serial *sync.Mutex
}

// memoState is one immutable published snapshot: the key configuration
// and the cache built under it. Replaced wholesale on every mutation.
type memoState struct {
	kernKey  string
	epoch    float64
	hasEpoch bool
	prefix   string // kernKey [+ epoch] rendered once, prepended to every key
	cache    map[string]EvalResult
}

// prefixFor renders the cache-key prefix: the kernel hash and, when set,
// the drift epoch. Keying (rather than flushing) on epoch keeps the
// invalidation monotonic and race-free — an in-flight batch keeps using
// the snapshot it partitioned against.
func prefixFor(kernKey string, epoch float64, hasEpoch bool) string {
	if !hasEpoch {
		return kernKey + "\x00"
	}
	return kernKey + "\x00e" + strconv.FormatUint(math.Float64bits(epoch), 16) + "\x00"
}

// NewMemo wraps inner with an empty cache.
func NewMemo(inner BatchEvaluator) *Memo {
	m := &Memo{Inner: inner}
	m.state.Store(&memoState{prefix: prefixFor("", 0, false), cache: map[string]EvalResult{}})
	return m
}

// Serialize switches the memo into single-mutex mode (the pre-COW
// behavior: one global lock around partition, publish, and fill).
// Benchmark baseline only; call once, before the memo is shared.
func (m *Memo) Serialize() *Memo {
	m.serial = &sync.Mutex{}
	return m
}

// SetKernelKey installs a kernel content hash (see
// TraceEvaluator.KernelHash) as a component of every cache key, so a
// cache serialized or shared beyond one kernel can never return another
// kernel's measurement for the same genome.
func (m *Memo) SetKernelKey(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.state.Load()
	m.state.Store(&memoState{
		kernKey:  key,
		epoch:    old.epoch,
		hasEpoch: old.hasEpoch,
		prefix:   prefixFor(key, old.epoch, old.hasEpoch),
		cache:    old.cache,
	})
}

// SetEpoch installs a drift epoch (a simulated re-tune timestamp) as a
// component of every cache key. Entries written under a different epoch
// — a different cluster regime — can never answer for this one: RunDrift
// re-tunes across an epoch boundary always re-simulate. Epochs under a
// drift schedule are strictly increasing, so a stale regime's entries
// are unreachable forever, not merely unlikely.
func (m *Memo) SetEpoch(epoch float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := m.state.Load()
	if old.hasEpoch && old.epoch == epoch {
		return
	}
	m.state.Store(&memoState{
		kernKey:  old.kernKey,
		epoch:    epoch,
		hasEpoch: true,
		prefix:   prefixFor(old.kernKey, epoch, true),
		cache:    old.cache,
	})
}

// genomeKey renders an assignment's genome as a compact cache key.
func genomeKey(a *params.Assignment) string {
	return string(appendGenomeKey(nil, a))
}

// appendGenomeKey appends the genome's dot-separated value indices.
func appendGenomeKey(b []byte, a *params.Assignment) []byte {
	for i, v := range a.Genome() {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return b
}

// EvaluateBatch implements BatchEvaluator: cached positions are served
// from the cache; the remaining distinct genomes are forwarded to the
// inner evaluator as one (possibly concurrent) sub-batch.
func (m *Memo) EvaluateBatch(ctx context.Context, batch []*params.Assignment, iteration int) ([]EvalResult, error) {
	if m.serial != nil {
		m.serial.Lock()
		defer m.serial.Unlock()
	}
	out := make([]EvalResult, len(batch))
	keys := make([]string, len(batch))
	st := m.state.Load()

	// Partition against the cache snapshot at batch start: position i is
	// a miss only if its genome is neither cached nor requested earlier
	// in this batch. This partition is a pure function of (cache, batch),
	// so it is identical however the inner evaluator schedules the work.
	var sub []*params.Assignment
	var subIdx []int // sub position -> first batch position with that genome
	var firstAt map[string]int
	var scratch [96]byte
	for i, a := range batch {
		kb := append(scratch[:0], st.prefix...)
		kb = appendGenomeKey(kb, a)
		k := string(kb)
		keys[i] = k
		if _, cached := st.cache[k]; cached {
			continue
		}
		if firstAt == nil {
			firstAt = map[string]int{}
		}
		if _, queued := firstAt[k]; queued {
			continue
		}
		firstAt[k] = i
		sub = append(sub, a)
		subIdx = append(subIdx, i)
	}
	m.hits.Add(int64(len(batch) - len(sub)))
	m.misses.Add(int64(len(sub)))

	served := st.cache
	if len(sub) > 0 {
		res, err := m.Inner.EvaluateBatch(ctx, sub, iteration)
		if err != nil {
			if be, ok := err.(*BatchError); ok {
				// surface the position the caller asked about
				return nil, &BatchError{Index: subIdx[be.Index], Err: be.Err}
			}
			return nil, err
		}
		m.mu.Lock()
		cur := m.state.Load()
		next := make(map[string]EvalResult, len(cur.cache)+len(res))
		for k, v := range cur.cache {
			next[k] = v
		}
		for j, r := range res {
			next[keys[subIdx[j]]] = r
		}
		m.state.Store(&memoState{
			kernKey:  cur.kernKey,
			epoch:    cur.epoch,
			hasEpoch: cur.hasEpoch,
			prefix:   cur.prefix,
			cache:    next,
		})
		m.mu.Unlock()
		served = next
	}

	for i := range batch {
		r, ok := served[keys[i]]
		if !ok {
			return nil, fmt.Errorf("tuner: memo: genome %s missing after evaluation", keys[i])
		}
		out[i] = r
	}
	return out, nil
}

// CacheStats reports how many batch positions were served from the cache
// versus simulated. RunBatch copies these onto the Result.
func (m *Memo) CacheStats() (hits, misses int) {
	return int(m.hits.Load()), int(m.misses.Load())
}

// cacheStatser lets RunBatch surface memoization counters without
// depending on a concrete wrapper type.
type cacheStatser interface {
	CacheStats() (hits, misses int)
}

// SeedFor derives the deterministic per-evaluation RNG seed the batch
// evaluators use: an FNV-1a hash of (iteration, genome) mixed into the
// base seed. Unlike a shared call counter, the derivation is independent
// of evaluation order, which is what lets a generation run on any number
// of workers and still reproduce the serial measurement stream.
func SeedFor(base int64, iteration int, a *params.Assignment) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(iteration))
	for _, g := range a.Genome() {
		mix(uint64(g))
	}
	return base + int64(h&0x7fffffffffffffff)
}
