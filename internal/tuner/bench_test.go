package tuner

import (
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// benchProg parses the C source of a shrunk VPIC so both evaluator
// benchmarks score the same kernel.
func benchProg(b *testing.B, c *cluster.Cluster) *csrc.File {
	b.Helper()
	w, err := workload.ByName("vpic", c.Procs())
	if err != nil {
		b.Fatal(err)
	}
	shrinkWorkload(w)
	prog, err := csrc.Parse(w.(workload.HasCSource).CSource())
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkEvalDirectInterp is the pre-replay cost of scoring one genome:
// a full SPMD interpretation of the kernel per rep.
func BenchmarkEvalDirectInterp(b *testing.B) {
	c := cluster.CoriHaswell(2, 8)
	e := &CSourceEvaluator{Prog: benchProg(b, c), Cluster: c, Reps: 1, Seed: 3}
	a := params.DefaultAssignment(params.Space())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Evaluate(a, i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalTraceReplay is the staged engine scoring the same genome:
// one warm-up call records the trace, then every iteration is a cached
// wire-plan replay on a pooled stack.
func BenchmarkEvalTraceReplay(b *testing.B) {
	c := cluster.CoriHaswell(2, 8)
	e := &TraceEvaluator{Prog: benchProg(b, c), Cluster: c, Reps: 1, Seed: 3,
		Legacy: true, KernelStyle: true}
	a := params.DefaultAssignment(params.Space())
	if _, _, err := e.Evaluate(a, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Evaluate(a, i); err != nil {
			b.Fatal(err)
		}
	}
}
