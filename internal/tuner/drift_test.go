package tuner

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/workload"
)

// driftConfig records flash on a noiseless 2-node machine carrying the
// given drift schedule and returns a ready controller config. WindowGap
// spaces windows out so short replays still sweep the schedule.
func driftConfig(t *testing.T, drift *cluster.Drift) DriftConfig {
	t.Helper()
	c := cluster.CoriHaswell(2, 8)
	c.Noise = 0
	c.Drift = drift
	w, err := workload.ByName("flash", c.Procs())
	if err != nil {
		t.Fatal(err)
	}
	st, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), 1)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := replay.Record(w, st)
	if err != nil {
		t.Fatal(err)
	}
	return DriftConfig{
		Space:      params.Space(),
		Cluster:    c,
		Trace:      trace,
		Seed:       42,
		Windows:    14,
		WindowGap:  10,
		Neighbors:  6,
		Rounds:     2,
		InitRounds: 3,
	}
}

// degradedSchedule turns the machine hostile at t=25: half OST
// bandwidth, tripled contention sensitivity, a slow OST.
func degradedSchedule() *cluster.Drift {
	return &cluster.Drift{Seed: 9, Regimes: []cluster.Regime{
		{Start: 25, OSTLoad: 0.5, NICLoad: 0.3, Contention: 3, SlowOSTs: 2, SlowFactor: 0.3},
	}}
}

func runDrift(t *testing.T, cfg DriftConfig) *DriftResult {
	t.Helper()
	res, err := RunDrift(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDriftStationaryNoRetune pins that a stationary noiseless machine
// never triggers a re-tune: the incumbent's profile is flat.
func TestDriftStationaryNoRetune(t *testing.T) {
	cfg := driftConfig(t, nil)
	cfg.Windows = 6
	res := runDrift(t, cfg)
	if len(res.Retunes) != 0 {
		t.Fatalf("stationary run re-tuned: %+v", res.Retunes)
	}
	for _, w := range res.Windows[1:] {
		if w.Deviation != 0 {
			t.Fatalf("window %d deviation %v on a stationary machine", w.Window, w.Deviation)
		}
	}
}

// TestDriftWorkerCountIndependence pins the determinism contract: the
// window curve and final incumbent are bit-identical at any
// Parallelism.
func TestDriftWorkerCountIndependence(t *testing.T) {
	cfg1 := driftConfig(t, degradedSchedule())
	cfg1.Prune = true
	cfg4 := cfg1
	cfg4.Parallelism = 4
	r1 := runDrift(t, cfg1)
	r4 := runDrift(t, cfg4)
	if !reflect.DeepEqual(r1.Windows, r4.Windows) {
		t.Fatalf("window curves differ across worker counts:\n1: %+v\n4: %+v", r1.Windows, r4.Windows)
	}
	if !reflect.DeepEqual(r1.FinalGenome, r4.FinalGenome) {
		t.Fatalf("final genome differs: %v vs %v", r1.FinalGenome, r4.FinalGenome)
	}
}

// TestDriftPruningBitIdentical pins the SHAMan-pruning guarantee:
// pruned and unpruned controllers choose identical incumbents and emit
// bit-identical curves, while pruning strictly reduces evaluated
// simulated stage time.
func TestDriftPruningBitIdentical(t *testing.T) {
	plain := driftConfig(t, degradedSchedule())
	pruned := plain
	pruned.Prune = true
	rp := runDrift(t, plain)
	rq := runDrift(t, pruned)
	if !reflect.DeepEqual(rp.Windows, rq.Windows) {
		t.Fatal("pruning changed the window curve")
	}
	if !reflect.DeepEqual(rp.FinalGenome, rq.FinalGenome) {
		t.Fatalf("pruning changed the final incumbent: %v vs %v", rp.FinalGenome, rq.FinalGenome)
	}
	if rq.PrunedEvals == 0 {
		t.Fatal("pruned run aborted no candidates")
	}
	if rq.EvalSimSeconds >= rp.EvalSimSeconds {
		t.Fatalf("pruning saved no stage time: %v >= %v", rq.EvalSimSeconds, rp.EvalSimSeconds)
	}
	if rp.PrunedEvals != 0 {
		t.Fatalf("unpruned run reported %d pruned evals", rp.PrunedEvals)
	}
}

// TestDriftDetectsAndRecovers drives the incumbent through a heavy
// degradation regime and checks the controller notices, announces the
// re-tune with a reason, and tracks the oracle afterwards.
func TestDriftDetectsAndRecovers(t *testing.T) {
	cfg := driftConfig(t, degradedSchedule())
	cfg.Prune = true
	cfg.Oracle = true
	var events []RetuneEvent
	cfg.OnRetune = func(ev RetuneEvent) { events = append(events, ev) }
	res := runDrift(t, cfg)

	if len(res.Retunes) == 0 {
		t.Fatal("controller never re-tuned through a 2x degradation")
	}
	if !reflect.DeepEqual(events, res.Retunes) {
		t.Fatal("OnRetune events diverge from result log")
	}
	ev := res.Retunes[0]
	if ev.Mode != "local" || ev.Evaluations == 0 || ev.EvalSimSeconds <= 0 {
		t.Fatalf("malformed re-tune event: %+v", ev)
	}
	if !strings.Contains(ev.Reason, "below expected") {
		t.Fatalf("reason %q does not name the degradation", ev.Reason)
	}

	// The window right after the re-tune must be flagged, and from there
	// on the controller should hold near the oracle's bandwidth.
	first := -1
	for _, w := range res.Windows {
		if w.Window > ev.Window && w.Retuned {
			first = w.Window
			break
		}
	}
	if first < 0 {
		t.Fatal("no window flagged Retuned after the re-tune event")
	}
	var got, oracle float64
	for _, w := range res.Windows[first:] {
		got += w.PerfMBs
		oracle += w.OraclePerfMBs
	}
	if oracle <= 0 {
		t.Fatal("oracle bandwidth missing from post-retune windows")
	}
	if got < 0.8*oracle {
		t.Fatalf("post-retune bandwidth %0.f recovered only %.0f%% of oracle %0.f",
			got, 100*got/oracle, oracle)
	}
}

// TestDriftGAModeRuns smoke-tests the warm-started GA re-tune path.
func TestDriftGAModeRuns(t *testing.T) {
	cfg := driftConfig(t, degradedSchedule())
	cfg.Windows = 8
	cfg.GA = &GARetune{PopSize: 6, Iterations: 2}
	res := runDrift(t, cfg)
	if res.Final == nil || len(res.FinalGenome) == 0 {
		t.Fatal("GA-mode run produced no final incumbent")
	}
	for _, ev := range res.Retunes {
		if ev.Mode != "ga" {
			t.Fatalf("GA-mode re-tune reported mode %q", ev.Mode)
		}
	}
}
