package tuner

import (
	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// WorkloadEvaluator measures configurations by executing a workload on a
// fresh simulated stack, averaging Reps runs per configuration (3 in the
// paper, to mitigate platform volatility). The time of all runs counts
// toward the tuning investment.
type WorkloadEvaluator struct {
	Workload workload.Workload
	Cluster  *cluster.Cluster
	Reps     int   // default 3
	Seed     int64 // base seed; evaluation seeds derive from it
	evals    int
}

// Evaluate implements Evaluator.
func (e *WorkloadEvaluator) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	reps := e.Reps
	if reps == 0 {
		reps = 3
	}
	e.evals++
	seed := e.Seed + int64(e.evals)*104729 + int64(iteration)*1299709
	res, err := workload.ExecuteAveraged(e.Workload, e.Cluster, a.Settings(), seed, reps)
	if err != nil {
		return 0, 0, err
	}
	return res.Perf, res.Runtime / 60, nil
}

// SeededWorkloadEvaluator is the deterministic, concurrency-safe form of
// WorkloadEvaluator for the batch engine: per-evaluation seeds derive from
// (iteration, genome) via SeedFor instead of a shared call counter, so the
// same configuration measured at the same iteration yields the same
// result no matter which worker runs it or in what order. Wrap it in a
// Pool (for parallelism) and a Memo (to skip re-simulating repeated
// genomes).
type SeededWorkloadEvaluator struct {
	Workload workload.Workload
	Cluster  *cluster.Cluster
	Reps     int   // default 3
	Seed     int64 // base seed; evaluation seeds derive from it
}

// Evaluate implements Evaluator. It is safe for concurrent use: each call
// builds fresh simulated stacks and touches no shared state.
func (e *SeededWorkloadEvaluator) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	reps := e.Reps
	if reps == 0 {
		reps = 3
	}
	seed := SeedFor(e.Seed, iteration, a)
	res, err := workload.ExecuteAveraged(e.Workload, e.Cluster, a.Settings(), seed, reps)
	if err != nil {
		return 0, 0, err
	}
	return res.Perf, res.Runtime / 60, nil
}

// FuncEvaluator adapts a plain function (used by tests and the synthetic
// log-curve training environments).
type FuncEvaluator func(a *params.Assignment, iteration int) (float64, float64, error)

// Evaluate implements Evaluator.
func (f FuncEvaluator) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	return f(a, iteration)
}
