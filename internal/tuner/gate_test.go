package tuner

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"tunio/internal/params"
)

// gateProbe counts concurrent evaluations and records the high-water mark.
type gateProbe struct {
	inFlight atomic.Int64
	peak     atomic.Int64
}

func (p *gateProbe) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	n := p.inFlight.Add(1)
	for {
		old := p.peak.Load()
		if n <= old || p.peak.CompareAndSwap(old, n) {
			break
		}
	}
	// Spin a little so evaluations overlap.
	for i := 0; i < 10000; i++ {
		_ = i
	}
	p.inFlight.Add(-1)
	return 1, 1, nil
}

// A shared gate bounds total concurrency across pools even when the sum
// of their worker counts exceeds it.
func TestGateBoundsConcurrencyAcrossPools(t *testing.T) {
	gate := NewGate(2)
	if gate.Cap() != 2 {
		t.Fatalf("Cap = %d, want 2", gate.Cap())
	}
	probe := &gateProbe{}
	space := params.Space()
	batch := make([]*params.Assignment, 32)
	for i := range batch {
		batch[i] = params.DefaultAssignment(space)
	}
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		pool := &Pool{Eval: probe, Workers: 4, Gate: gate}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := pool.EvaluateBatch(context.Background(), batch, 1); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if peak := probe.peak.Load(); peak > 2 {
		t.Fatalf("peak concurrency %d exceeded the gate capacity 2", peak)
	}
	if gate.InFlight() != 0 {
		t.Fatalf("gate slots leaked: %d in flight after quiesce", gate.InFlight())
	}
}

// A nil gate is a no-op: unbounded, zero-capacity, and safe to use.
func TestNilGate(t *testing.T) {
	var g *Gate
	if g.Cap() != 0 || g.InFlight() != 0 {
		t.Fatal("nil gate must report zero capacity and zero in flight")
	}
	probe := &gateProbe{}
	pool := &Pool{Eval: probe, Workers: 2, Gate: nil}
	batch := []*params.Assignment{
		params.DefaultAssignment(params.Space()),
		params.DefaultAssignment(params.Space()),
	}
	if _, err := pool.EvaluateBatch(context.Background(), batch, 1); err != nil {
		t.Fatal(err)
	}
}
