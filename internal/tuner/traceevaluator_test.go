package tuner

import (
	"reflect"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/workload"
)

func shrinkWorkload(w workload.Workload) {
	switch x := w.(type) {
	case *workload.VPIC:
		x.ParticlesPerRank = 16 << 10
		x.ComputeFlops = 1e9
	case *workload.HACC:
		x.ParticlesPerRank = 16 << 10
	case *workload.FLASH:
		x.BlocksPerRank = 8
		x.Unknowns = 3
	case *workload.BDCATS:
		x.ParticlesPerRank = 16 << 10
	case *workload.MACSio:
		x.PartsPerRank = 2
		x.PartBytes = 256 << 10
		x.Dumps = 3
	}
}

// TestTraceEvaluatorMatchesCSourceCurves proves the equivalence the staged
// engine promises: a full tuning run scored by trace replay of the
// interpreted C kernel produces a bit-identical curve to one that
// re-interprets the kernel for every evaluation, on all five workloads.
func TestTraceEvaluatorMatchesCSourceCurves(t *testing.T) {
	c := cluster.CoriHaswell(1, 8)
	for _, name := range []string{"vpic", "hacc", "flash", "bdcats", "macsio"} {
		w, err := workload.ByName(name, c.Procs())
		if err != nil {
			t.Fatal(err)
		}
		shrinkWorkload(w)
		prog, err := csrc.Parse(w.(workload.HasCSource).CSource())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := Config{Space: params.Space(), PopSize: 4, MaxIterations: 3, Seed: 11}

		direct, err := Run(cfg, &CSourceEvaluator{Prog: prog, Cluster: c, Reps: 2, Seed: 11})
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		traced, err := Run(cfg, &TraceEvaluator{Prog: prog, Cluster: c, Reps: 2, Seed: 11,
			Legacy: true, KernelStyle: true})
		if err != nil {
			t.Fatalf("%s traced: %v", name, err)
		}

		if direct.BestPerf != traced.BestPerf {
			t.Errorf("%s: best perf %v (direct) != %v (traced)", name, direct.BestPerf, traced.BestPerf)
		}
		if !reflect.DeepEqual(direct.Curve, traced.Curve) {
			t.Errorf("%s: curves differ:\n direct %+v\n traced %+v", name, direct.Curve, traced.Curve)
		}
	}
}

// TestTraceEvaluatorMatchesSeededWorkloadEvaluator pins the default batch
// engine swap: for the Go workload forms, trace replay returns bit-equal
// (perf, cost) to direct simulation under SeedFor-derived seeds.
func TestTraceEvaluatorMatchesSeededWorkloadEvaluator(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	for _, name := range []string{"vpic", "hacc", "flash", "bdcats", "macsio"} {
		w, err := workload.ByName(name, c.Procs())
		if err != nil {
			t.Fatal(err)
		}
		shrinkWorkload(w)
		direct := &SeededWorkloadEvaluator{Workload: w, Cluster: c, Reps: 3, Seed: 5}
		traced := &TraceEvaluator{Workload: w, Cluster: c, Reps: 3, Seed: 5}

		assignments := []*params.Assignment{params.DefaultAssignment(params.Space())}
		for i, pairs := range []map[string]int{
			{params.CollectiveWrite: 1, params.CBNodes: 4},
			{params.Alignment: 4, params.StripingFactor: 7},
			{params.ChunkCache: 2, params.MDCConfig: 0, params.CollMetadataWrite: 1},
		} {
			a := params.DefaultAssignment(params.Space())
			for n, idx := range pairs {
				if err := a.SetIndex(n, idx); err != nil {
					t.Fatalf("case %d: %v", i, err)
				}
			}
			assignments = append(assignments, a)
		}
		for i, a := range assignments {
			for _, iter := range []int{0, 3} {
				p1, c1, err := direct.Evaluate(a, iter)
				if err != nil {
					t.Fatalf("%s direct: %v", name, err)
				}
				p2, c2, err := traced.Evaluate(a, iter)
				if err != nil {
					t.Fatalf("%s traced: %v", name, err)
				}
				if p1 != p2 || c1 != c2 {
					t.Errorf("%s case %d iter %d: direct (%v, %v) != traced (%v, %v)",
						name, i, iter, p1, c1, p2, c2)
				}
			}
		}
		stats := traced.Stats()
		if stats.WireMisses == 0 || stats.PlanMisses == 0 {
			t.Errorf("%s: stage cache never exercised: %+v", name, stats)
		}
	}
}

// TestTraceEvaluatorRecordingFailureFallsBack proves the §III-B recovery
// path: a kernel that fails to record reverts permanently to the fallback.
func TestTraceEvaluatorRecordingFailureFallsBack(t *testing.T) {
	c := cluster.CoriHaswell(1, 2)
	prog, err := csrc.Parse(`int main() { frobnicate(); return 0; }`)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	fb := &FallbackEvaluator{
		Primary: &TraceEvaluator{Prog: prog, Cluster: c, Reps: 1, Seed: 1},
		Fallback: FuncEvaluator(func(a *params.Assignment, _ int) (float64, float64, error) {
			calls++
			return 42, 1, nil
		}),
	}
	a := params.DefaultAssignment(params.Space())
	perf, _, err := fb.Evaluate(a, 0)
	if err != nil || perf != 42 {
		t.Fatalf("fallback did not engage: perf %v err %v", perf, err)
	}
	if !fb.FellBack || fb.KernelErr == nil {
		t.Fatalf("FellBack %v KernelErr %v", fb.FellBack, fb.KernelErr)
	}
	if _, _, err := fb.Evaluate(a, 1); err != nil || calls != 2 {
		t.Fatalf("second call did not stay on fallback: calls %d err %v", calls, err)
	}
}
