// Package tuner implements the tuning pipelines of the paper's evaluation:
// the HSTuner-style genetic-algorithm pipeline (DEAP composition with
// elitism and tournament selection, §III-A) with pluggable early-stopping
// policies and configuration-subset pickers. TunIO is this pipeline with
// the RL stopper and RL subset picker from internal/core attached; the
// baselines are the same pipeline with heuristic or no stopping and
// all-parameter tuning.
//
// Evaluation runs through the batch engine: each generation is handed to a
// BatchEvaluator as one batch, which may fan it out across a worker pool
// (Pool) and memoize repeated genomes (Memo) while the pipeline commits
// results in population order — so tuning curves are bit-identical for any
// worker count. Run adapts the legacy per-configuration Evaluator onto the
// same engine.
package tuner

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"tunio/internal/ga"
	"tunio/internal/metrics"
	"tunio/internal/params"
	"tunio/internal/replay"
)

// Evaluator measures a configuration's objective. Implementations charge
// the tuning investment: costMinutes is the (simulated) time the
// evaluation consumed, which accumulates into the tuning curve.
type Evaluator interface {
	Evaluate(a *params.Assignment, iteration int) (perfMBs, costMinutes float64, err error)
}

// Stopper decides whether to stop the pipeline after an iteration — the
// Table I `stop(current_iteration, best_perf)` interface.
type Stopper interface {
	// Stop is called once per completed iteration with the best perf so far.
	Stop(iteration int, bestPerf float64) bool
	// Reset clears state between tuning episodes.
	Reset()
}

// SubsetPicker selects the parameter subset to tune next — the Table I
// `subset_picker(perf, current_parameter_set)` interface. The returned
// mask has one entry per parameter in the space.
type SubsetPicker interface {
	NextSubset(perf float64, current []bool) []bool
	Reset()
}

// Config configures a pipeline run.
type Config struct {
	Space         []params.Parameter
	PopSize       int     // default 16
	MaxIterations int     // default 50
	Seed          int64   // RNG seed for the GA and agents
	Overhead      float64 // per-evaluation pipeline overhead in minutes (job launch etc.)
	Selection     ga.Selection

	Stopper Stopper      // nil = never stop early
	Picker  SubsetPicker // nil = tune all parameters every iteration (HSTuner)

	// Progress, when non-nil, is invoked after every completed iteration
	// (including the iteration-0 baseline) with the curve point just
	// recorded. It runs on the pipeline goroutine: long callbacks stall
	// tuning.
	Progress func(metrics.Point)

	// StartFrom seeds the pipeline at a known configuration instead of the
	// library defaults: iteration 0 evaluates it (defining the RoTI
	// baseline) and the population initializes around it. Interactive
	// refinement sessions pass the previous round's best.
	StartFrom *params.Assignment
}

func (c *Config) fillDefaults() {
	if c.PopSize == 0 {
		c.PopSize = 16
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 50
	}
	if c.Overhead == 0 {
		c.Overhead = 0.05 // ~3s job-step launch per evaluation
	}
}

// Result summarizes a pipeline run.
type Result struct {
	Curve        metrics.Curve
	Best         *params.Assignment
	BestPerf     float64
	StoppedEarly bool
	StoppedAt    int // iteration index after which the pipeline stopped
	Evaluations  int
	// CacheHits and CacheMisses report memoization traffic when the
	// evaluator memoizes (both zero otherwise): hits are evaluations
	// served from the cache instead of the simulated stack; misses were
	// actually simulated. Hits + misses = Evaluations for a memoizing
	// evaluator.
	CacheHits   int
	CacheMisses int
	// SubsetTrace records the active mask per iteration (nil entries when
	// no picker is attached).
	SubsetTrace [][]bool
	// EngineInfo describes how the evaluation engine actually scored the
	// run — in particular whether staged trace replay was active and, if
	// not, why. The engine wiring (tunio.Engine) fills it in after the
	// pipeline returns; plain tuner.Run/RunBatch callers that assemble
	// their own evaluators leave it zero.
	EngineInfo EngineInfo
}

// EngineInfo reports the evaluation-engine facts a caller cannot infer
// from the curve: whether trace replay recorded successfully (a run that
// silently reverted to direct simulation is correct but ~10x slower),
// the kernel's content-addressed identity, and the cache traffic behind
// the measurements.
type EngineInfo struct {
	// TraceReady reports that the kernel's trace recorded (or was served
	// by a kernel store) and staged replay scored the run.
	TraceReady bool `json:"trace_ready"`
	// PrepareErr is the trace-recording or signature-validation error
	// that forced direct simulation ("" when none). Historically
	// tunio.Tune discarded this error; it is now surfaced here.
	PrepareErr string `json:"prepare_err,omitempty"`
	// KernelHash is the kernel's content-addressed identity ("sig:…"
	// from an exact static I/O signature, "trace:…" otherwise; "" when
	// no trace was recorded).
	KernelHash string `json:"kernel_hash,omitempty"`
	// KernelStoreHit reports that the trace came out of a shared
	// KernelStore instead of being recorded by this run.
	KernelStoreHit bool `json:"kernel_store_hit"`
	// FellBack reports that the trace recorded but a mid-run replay
	// error reverted the run to direct simulation (see
	// FallbackEvaluator); FallbackErr records the triggering error.
	FellBack    bool   `json:"fell_back"`
	FallbackErr string `json:"fallback_err,omitempty"`
	// MemoHits/MemoMisses mirror Result.CacheHits/CacheMisses: genome
	// memoization traffic.
	MemoHits   int `json:"memo_hits"`
	MemoMisses int `json:"memo_misses"`
	// StageStats is this run's stage-cache traffic — the run's own view
	// when the cache is shared across sessions, so the hit rates measure
	// what sharing bought this session.
	StageStats replay.StageStats `json:"stage_stats"`
}

// Run executes the pipeline until the stopper fires or MaxIterations is
// reached, evaluating each generation serially in population order. It is
// the legacy entry point, equivalent to RunBatch with a background context
// and the serial evaluator adapter.
func Run(cfg Config, eval Evaluator) (*Result, error) {
	if eval == nil {
		return nil, fmt.Errorf("tuner: nil evaluator")
	}
	return RunBatch(context.Background(), cfg, AdaptEvaluator(eval))
}

// RunBatch executes the pipeline until the stopper fires or MaxIterations
// is reached, handing each generation's population to eval as one batch.
// Results are committed in population order, so the tuning curve depends
// only on (cfg, eval determinism), not on how the batch evaluator
// schedules the work. Canceling ctx aborts the run between (or, for
// cancellation-aware evaluators, within) evaluations; the returned error
// then wraps ctx.Err().
func RunBatch(ctx context.Context, cfg Config, eval BatchEvaluator) (*Result, error) {
	if len(cfg.Space) == 0 {
		return nil, fmt.Errorf("tuner: empty parameter space")
	}
	if eval == nil {
		return nil, fmt.Errorf("tuner: nil evaluator")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// The population is seeded around the starting configuration (the
	// library defaults unless the caller resumes from a known one):
	// tuning starts there — which also defines the RoTI baseline — and
	// drifts away generation by generation, giving the gradual
	// logarithmic convergence real tuners exhibit (Figure 2).
	start := cfg.StartFrom
	if start == nil {
		start = params.DefaultAssignment(cfg.Space)
	}
	defGenome := ga.Genome(start.Genome())
	engine, err := ga.New(ga.Config{
		GenomeLen:  len(cfg.Space),
		Arity:      func(g int) int { return len(cfg.Space[g].Values) },
		PopSize:    cfg.PopSize,
		Selection:  cfg.Selection,
		InitGenome: defGenome,
	}, rng)
	if err != nil {
		return nil, err
	}
	if err := engine.SetGenome(0, defGenome); err != nil {
		return nil, err
	}

	if cfg.Stopper != nil {
		cfg.Stopper.Reset()
	}
	if cfg.Picker != nil {
		cfg.Picker.Reset()
	}

	res := &Result{}
	var cumMinutes float64
	mask := make([]bool, len(cfg.Space))
	for i := range mask {
		mask[i] = true
	}

	record := func(p metrics.Point) {
		res.Curve = append(res.Curve, p)
		if cfg.Progress != nil {
			cfg.Progress(p)
		}
	}

	// Iteration 0 measures the default configuration: perf_achieved(0) in
	// the paper's RoTI definition is the untuned performance, and its
	// evaluation time is part of the tuning investment.
	base, err := eval.EvaluateBatch(ctx, []*params.Assignment{start}, 0)
	if err != nil {
		var be *BatchError
		if errors.As(err, &be) {
			err = be.Err
		}
		return nil, fmt.Errorf("tuner: baseline evaluation: %w", err)
	}
	res.Evaluations++
	cumMinutes += base[0].CostMinutes + cfg.Overhead
	bestPerf := base[0].Perf
	bestGenome := defGenome.Clone()
	record(metrics.Point{
		Iteration: 0, TimeMinutes: cumMinutes, IterPerf: base[0].Perf, BestPerf: base[0].Perf,
	})
	res.SubsetTrace = append(res.SubsetTrace, nil)

	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("tuner: iteration %d: %w", iter, err)
		}
		if cfg.Picker != nil {
			next := cfg.Picker.NextSubset(bestPerf, mask)
			if len(next) != len(mask) {
				return nil, fmt.Errorf("tuner: iteration %d: picker returned a mask of length %d for a %d-parameter space (NextSubset must return one entry per parameter)",
					iter, len(next), len(mask))
			}
			mask = next
			pin := bestGenome
			if pin == nil {
				pin = defGenome // before any evaluation, pin to defaults
			}
			if err := engine.SetActiveGenes(mask, pin); err != nil {
				return nil, fmt.Errorf("tuner: iteration %d: %w", iter, err)
			}
			res.SubsetTrace = append(res.SubsetTrace, append([]bool(nil), mask...))
		} else {
			res.SubsetTrace = append(res.SubsetTrace, nil)
		}

		pop := engine.Population()
		batch := make([]*params.Assignment, len(pop))
		for i := range pop {
			a, err := params.FromGenome(cfg.Space, pop[i].Genome)
			if err != nil {
				return nil, err
			}
			batch[i] = a
		}
		results, err := eval.EvaluateBatch(ctx, batch, iter)
		if err != nil {
			var be *BatchError
			if errors.As(err, &be) {
				return nil, fmt.Errorf("tuner: iteration %d eval %d: %w", iter, be.Index, be.Err)
			}
			return nil, fmt.Errorf("tuner: iteration %d: %w", iter, err)
		}

		// Commit in population order: fitness, time accounting, and
		// best-so-far tie-breaking replicate the serial pipeline exactly.
		iterBest := 0.0
		for i, r := range results {
			res.Evaluations++
			cumMinutes += r.CostMinutes + cfg.Overhead
			engine.SetFitness(i, r.Perf)
			if r.Perf > iterBest {
				iterBest = r.Perf
			}
			if r.Perf > bestPerf {
				bestPerf = r.Perf
				bestGenome = ga.Genome(pop[i].Genome).Clone()
			}
		}

		record(metrics.Point{
			Iteration:   iter,
			TimeMinutes: cumMinutes,
			IterPerf:    iterBest,
			BestPerf:    bestPerf,
		})

		if cfg.Stopper != nil && cfg.Stopper.Stop(iter, bestPerf) {
			res.StoppedEarly = iter < cfg.MaxIterations
			res.StoppedAt = iter
			break
		}
		res.StoppedAt = iter
		if iter < cfg.MaxIterations {
			if err := engine.NextGeneration(); err != nil {
				return nil, err
			}
		}
	}

	if cs, ok := eval.(cacheStatser); ok {
		res.CacheHits, res.CacheMisses = cs.CacheStats()
	}
	best, err := params.FromGenome(cfg.Space, bestGenome)
	if err != nil {
		return nil, err
	}
	res.Best = best
	res.BestPerf = bestPerf
	return res, nil
}
