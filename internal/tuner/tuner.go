// Package tuner implements the tuning pipelines of the paper's evaluation:
// the HSTuner-style genetic-algorithm pipeline (DEAP composition with
// elitism and tournament selection, §III-A) with pluggable early-stopping
// policies and configuration-subset pickers. TunIO is this pipeline with
// the RL stopper and RL subset picker from internal/core attached; the
// baselines are the same pipeline with heuristic or no stopping and
// all-parameter tuning.
package tuner

import (
	"fmt"
	"math/rand"

	"tunio/internal/ga"
	"tunio/internal/metrics"
	"tunio/internal/params"
)

// Evaluator measures a configuration's objective. Implementations charge
// the tuning investment: costMinutes is the (simulated) time the
// evaluation consumed, which accumulates into the tuning curve.
type Evaluator interface {
	Evaluate(a *params.Assignment, iteration int) (perfMBs, costMinutes float64, err error)
}

// Stopper decides whether to stop the pipeline after an iteration — the
// Table I `stop(current_iteration, best_perf)` interface.
type Stopper interface {
	// Stop is called once per completed iteration with the best perf so far.
	Stop(iteration int, bestPerf float64) bool
	// Reset clears state between tuning episodes.
	Reset()
}

// SubsetPicker selects the parameter subset to tune next — the Table I
// `subset_picker(perf, current_parameter_set)` interface. The returned
// mask has one entry per parameter in the space.
type SubsetPicker interface {
	NextSubset(perf float64, current []bool) []bool
	Reset()
}

// Config configures a pipeline run.
type Config struct {
	Space         []params.Parameter
	PopSize       int     // default 16
	MaxIterations int     // default 50
	Seed          int64   // RNG seed for the GA and agents
	Overhead      float64 // per-evaluation pipeline overhead in minutes (job launch etc.)
	Selection     ga.Selection

	Stopper Stopper      // nil = never stop early
	Picker  SubsetPicker // nil = tune all parameters every iteration (HSTuner)

	// StartFrom seeds the pipeline at a known configuration instead of the
	// library defaults: iteration 0 evaluates it (defining the RoTI
	// baseline) and the population initializes around it. Interactive
	// refinement sessions pass the previous round's best.
	StartFrom *params.Assignment
}

func (c *Config) fillDefaults() {
	if c.PopSize == 0 {
		c.PopSize = 16
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 50
	}
	if c.Overhead == 0 {
		c.Overhead = 0.05 // ~3s job-step launch per evaluation
	}
}

// Result summarizes a pipeline run.
type Result struct {
	Curve        metrics.Curve
	Best         *params.Assignment
	BestPerf     float64
	StoppedEarly bool
	StoppedAt    int // iteration index after which the pipeline stopped
	Evaluations  int
	// SubsetTrace records the active mask per iteration (nil entries when
	// no picker is attached).
	SubsetTrace [][]bool
}

// Run executes the pipeline until the stopper fires or MaxIterations is
// reached.
func Run(cfg Config, eval Evaluator) (*Result, error) {
	if len(cfg.Space) == 0 {
		return nil, fmt.Errorf("tuner: empty parameter space")
	}
	if eval == nil {
		return nil, fmt.Errorf("tuner: nil evaluator")
	}
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// The population is seeded around the starting configuration (the
	// library defaults unless the caller resumes from a known one):
	// tuning starts there — which also defines the RoTI baseline — and
	// drifts away generation by generation, giving the gradual
	// logarithmic convergence real tuners exhibit (Figure 2).
	start := cfg.StartFrom
	if start == nil {
		start = params.DefaultAssignment(cfg.Space)
	}
	defGenome := ga.Genome(start.Genome())
	engine, err := ga.New(ga.Config{
		GenomeLen:  len(cfg.Space),
		Arity:      func(g int) int { return len(cfg.Space[g].Values) },
		PopSize:    cfg.PopSize,
		Selection:  cfg.Selection,
		InitGenome: defGenome,
	}, rng)
	if err != nil {
		return nil, err
	}
	if err := engine.SetGenome(0, defGenome); err != nil {
		return nil, err
	}

	if cfg.Stopper != nil {
		cfg.Stopper.Reset()
	}
	if cfg.Picker != nil {
		cfg.Picker.Reset()
	}

	res := &Result{}
	var cumMinutes float64
	mask := make([]bool, len(cfg.Space))
	for i := range mask {
		mask[i] = true
	}

	// Iteration 0 measures the default configuration: perf_achieved(0) in
	// the paper's RoTI definition is the untuned performance, and its
	// evaluation time is part of the tuning investment.
	perf0, cost0, err := eval.Evaluate(start, 0)
	if err != nil {
		return nil, fmt.Errorf("tuner: baseline evaluation: %w", err)
	}
	res.Evaluations++
	cumMinutes += cost0 + cfg.Overhead
	bestPerf := perf0
	bestGenome := defGenome.Clone()
	res.Curve = append(res.Curve, metrics.Point{
		Iteration: 0, TimeMinutes: cumMinutes, IterPerf: perf0, BestPerf: perf0,
	})
	res.SubsetTrace = append(res.SubsetTrace, nil)

	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		if cfg.Picker != nil {
			next := cfg.Picker.NextSubset(bestPerf, mask)
			if len(next) == len(mask) {
				mask = next
				pin := bestGenome
				if pin == nil {
					pin = defGenome // before any evaluation, pin to defaults
				}
				if err := engine.SetActiveGenes(mask, pin); err != nil {
					return nil, fmt.Errorf("tuner: iteration %d: %w", iter, err)
				}
			}
			res.SubsetTrace = append(res.SubsetTrace, append([]bool(nil), mask...))
		} else {
			res.SubsetTrace = append(res.SubsetTrace, nil)
		}

		iterBest := 0.0
		pop := engine.Population()
		for i := range pop {
			a, err := params.FromGenome(cfg.Space, pop[i].Genome)
			if err != nil {
				return nil, err
			}
			perf, cost, err := eval.Evaluate(a, iter)
			if err != nil {
				return nil, fmt.Errorf("tuner: iteration %d eval %d: %w", iter, i, err)
			}
			res.Evaluations++
			cumMinutes += cost + cfg.Overhead
			engine.SetFitness(i, perf)
			if perf > iterBest {
				iterBest = perf
			}
			if perf > bestPerf {
				bestPerf = perf
				bestGenome = ga.Genome(pop[i].Genome).Clone()
			}
		}

		res.Curve = append(res.Curve, metrics.Point{
			Iteration:   iter,
			TimeMinutes: cumMinutes,
			IterPerf:    iterBest,
			BestPerf:    bestPerf,
		})

		if cfg.Stopper != nil && cfg.Stopper.Stop(iter, bestPerf) {
			res.StoppedEarly = iter < cfg.MaxIterations
			res.StoppedAt = iter
			break
		}
		res.StoppedAt = iter
		if iter < cfg.MaxIterations {
			if err := engine.NextGeneration(); err != nil {
				return nil, err
			}
		}
	}

	best, err := params.FromGenome(cfg.Space, bestGenome)
	if err != nil {
		return nil, err
	}
	res.Best = best
	res.BestPerf = bestPerf
	return res, nil
}
