package tuner

import (
	"sync"

	"tunio/internal/params"
)

// FallbackEvaluator implements the paper's kernel-error recovery (§III-B):
// "if the I/O kernel of the application causes an error, TunIO will revert
// to using the full application". Evaluations go to Primary (the kernel);
// on the first Primary error the evaluator permanently switches to
// Fallback (the full application) and re-evaluates the failed
// configuration there. Safe for concurrent use when Primary and Fallback
// are.
type FallbackEvaluator struct {
	Primary  Evaluator
	Fallback Evaluator

	// FellBack reports whether the switch happened, and KernelErr records
	// the error that triggered it. Read them only after evaluations have
	// quiesced.
	FellBack  bool
	KernelErr error

	mu sync.Mutex
}

// Evaluate implements Evaluator.
func (e *FallbackEvaluator) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	e.mu.Lock()
	fell := e.FellBack
	e.mu.Unlock()
	if !fell {
		perf, cost, err := e.Primary.Evaluate(a, iteration)
		if err == nil {
			return perf, cost, nil
		}
		e.mu.Lock()
		if !e.FellBack {
			e.FellBack = true
			e.KernelErr = err
		}
		e.mu.Unlock()
	}
	return e.Fallback.Evaluate(a, iteration)
}
