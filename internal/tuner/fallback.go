package tuner

import (
	"tunio/internal/params"
)

// FallbackEvaluator implements the paper's kernel-error recovery (§III-B):
// "if the I/O kernel of the application causes an error, TunIO will revert
// to using the full application". Evaluations go to Primary (the kernel);
// on the first Primary error the evaluator permanently switches to
// Fallback (the full application) and re-evaluates the failed
// configuration there.
type FallbackEvaluator struct {
	Primary  Evaluator
	Fallback Evaluator

	// FellBack reports whether the switch happened, and KernelErr records
	// the error that triggered it.
	FellBack  bool
	KernelErr error
}

// Evaluate implements Evaluator.
func (e *FallbackEvaluator) Evaluate(a *params.Assignment, iteration int) (float64, float64, error) {
	if !e.FellBack {
		perf, cost, err := e.Primary.Evaluate(a, iteration)
		if err == nil {
			return perf, cost, nil
		}
		e.FellBack = true
		e.KernelErr = err
	}
	return e.Fallback.Evaluate(a, iteration)
}
