package rl

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestReplayBufferEviction(t *testing.T) {
	b := NewReplayBuffer(3)
	for i := 0; i < 5; i++ {
		b.Add(Transition{Reward: float64(i)})
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	// Oldest (0, 1) evicted: all stored rewards must be in {2, 3, 4}.
	rng := rand.New(rand.NewSource(1))
	for _, tr := range b.Sample(50, rng) {
		if tr.Reward < 2 {
			t.Fatalf("sampled evicted transition with reward %v", tr.Reward)
		}
	}
}

func TestReplayBufferEmptySample(t *testing.T) {
	b := NewReplayBuffer(3)
	if got := b.Sample(5, rand.New(rand.NewSource(1))); got != nil {
		t.Fatalf("Sample on empty buffer = %v, want nil", got)
	}
}

func TestReplayBufferBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewReplayBuffer(0)
}

func TestDelayedRewardTiming(t *testing.T) {
	d := NewDelayedReward(3)
	d.Record([]float64{1}, 7) // decision at tick 0, due at tick 3
	for tick := 0; tick < 3; tick++ {
		out := d.Tick(float64(tick), []float64{0}, false)
		if len(out) != 0 {
			t.Fatalf("tick %d: transition emitted early", tick)
		}
	}
	out := d.Tick(99, []float64{5}, false) // tick 3
	if len(out) != 1 {
		t.Fatalf("tick 3: got %d transitions, want 1", len(out))
	}
	tr := out[0]
	if tr.Reward != 99 || tr.Action != 7 || tr.State[0] != 1 || tr.Next[0] != 5 {
		t.Fatalf("transition = %+v", tr)
	}
	if d.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", d.Pending())
	}
}

func TestDelayedRewardFlushOnDone(t *testing.T) {
	d := NewDelayedReward(5)
	d.Record([]float64{1}, 0)
	d.Record([]float64{2}, 1)
	out := d.Tick(3.5, []float64{9}, true)
	if len(out) != 2 {
		t.Fatalf("done must flush all pending: got %d", len(out))
	}
	for _, tr := range out {
		if !tr.Done || tr.Reward != 3.5 {
			t.Fatalf("flushed transition = %+v", tr)
		}
	}
}

func TestDelayedRewardZeroDelay(t *testing.T) {
	d := NewDelayedReward(0)
	d.Record([]float64{1}, 2)
	out := d.Tick(1.5, []float64{2}, false)
	if len(out) != 1 || out[0].Reward != 1.5 {
		t.Fatalf("zero delay should emit immediately: %v", out)
	}
}

func TestDelayedRewardReset(t *testing.T) {
	d := NewDelayedReward(4)
	d.Record([]float64{1}, 0)
	d.Reset()
	if d.Pending() != 0 {
		t.Fatal("Reset did not clear pending")
	}
}

func TestDelayedRewardCopiesState(t *testing.T) {
	d := NewDelayedReward(0)
	s := []float64{1, 2}
	d.Record(s, 0)
	s[0] = 42 // caller mutation must not leak into the recorded state
	out := d.Tick(0, s, false)
	if out[0].State[0] != 1 {
		t.Fatal("DelayedReward did not copy state")
	}
}

func TestNewQAgentValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewQAgent(QConfig{StateDim: 0, Actions: 2}, rng); err == nil {
		t.Fatal("want error for StateDim=0")
	}
	if _, err := NewQAgent(QConfig{StateDim: 2, Actions: 0}, rng); err == nil {
		t.Fatal("want error for Actions=0")
	}
}

// chainEnv is a tiny deterministic MDP: states 0..4 on a line, actions
// {left, right}; reward 1 at state 4 (terminal), 0 elsewhere. Optimal policy
// is always-right.
type chainEnv struct{ pos int }

func (e *chainEnv) state() []float64 {
	s := make([]float64, 5)
	s[e.pos] = 1
	return s
}

func (e *chainEnv) step(action int) (reward float64, done bool) {
	if action == 1 {
		e.pos++
	} else if e.pos > 0 {
		e.pos--
	}
	if e.pos >= 4 {
		return 1, true
	}
	return 0, false
}

func TestQAgentLearnsChain(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	agent, err := NewQAgent(QConfig{
		StateDim: 5, Actions: 2, Hidden: []int{16},
		Gamma: 0.9, LR: 5e-3, EpsilonDecay: 0.99, BatchSize: 16, TargetSync: 20,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 150; ep++ {
		env := &chainEnv{}
		for step := 0; step < 20; step++ {
			s := env.state()
			a := agent.SelectAction(s, rng)
			r, done := env.step(a)
			agent.Observe(Transition{State: s, Action: a, Reward: r, Next: env.state(), Done: done})
			agent.TrainStep(rng)
			if done {
				break
			}
		}
	}
	// Greedy policy must be "right" from every non-terminal state.
	for pos := 0; pos < 4; pos++ {
		env := &chainEnv{pos: pos}
		if got := agent.GreedyAction(env.state()); got != 1 {
			t.Fatalf("greedy action at pos %d = %d, want 1 (Q=%v)", pos, got, agent.QValues(env.state()))
		}
	}
}

func TestQAgentEpsilonDecays(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	agent, _ := NewQAgent(QConfig{StateDim: 2, Actions: 2, BatchSize: 4, EpsilonDecay: 0.9, EpsilonMin: 0.1}, rng)
	for i := 0; i < 100; i++ {
		agent.Observe(Transition{State: []float64{0, 1}, Action: i % 2, Reward: 0, Next: []float64{1, 0}})
		agent.TrainStep(rng)
	}
	if agent.Epsilon() != 0.1 {
		t.Fatalf("epsilon = %v, want floor 0.1", agent.Epsilon())
	}
	agent.SetEpsilon(0.5)
	if agent.Epsilon() != 0.5 {
		t.Fatal("SetEpsilon ignored")
	}
}

func TestQAgentObserveValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	agent, _ := NewQAgent(QConfig{StateDim: 2, Actions: 2}, rng)
	for _, f := range []func(){
		func() { agent.Observe(Transition{State: []float64{1}, Action: 0}) },
		func() { agent.Observe(Transition{State: []float64{1, 2}, Action: 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			f()
		}()
	}
}

func TestQAgentTrainStepNoopWhenEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	agent, _ := NewQAgent(QConfig{StateDim: 2, Actions: 2, BatchSize: 8}, rng)
	if loss := agent.TrainStep(rng); loss != 0 {
		t.Fatalf("TrainStep with empty buffer = %v, want 0", loss)
	}
}

func TestQAgentSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a, _ := NewQAgent(QConfig{StateDim: 3, Actions: 2, Hidden: []int{8}}, rng)
	a.SetEpsilon(0.123)
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b QAgent
	if err := json.Unmarshal(blob, &b); err != nil {
		t.Fatal(err)
	}
	state := []float64{0.1, 0.2, 0.3}
	qa, qb := a.QValues(state), b.QValues(state)
	for i := range qa {
		if math.Abs(qa[i]-qb[i]) > 1e-12 {
			t.Fatalf("Q mismatch after round trip: %v vs %v", qa, qb)
		}
	}
	if b.Epsilon() != 0.123 {
		t.Fatalf("epsilon not restored: %v", b.Epsilon())
	}
	// Restored agent must be usable for further training.
	b.Observe(Transition{State: state, Action: 0, Reward: 1, Next: state})
	b.TrainStep(rng)
}

func TestQAgentUnmarshalRejectsCorrupt(t *testing.T) {
	var a QAgent
	if err := json.Unmarshal([]byte(`{"cfg":{"StateDim":0,"Actions":0},"net":{"layers":[{"in":1,"out":1,"act":"linear","w":[1],"b":[0]}]}}`), &a); err == nil {
		t.Fatal("want error for invalid config")
	}
}

func TestBanditValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewContextualBandit(BanditConfig{ContextDim: 0, Arms: 2}, rng); err == nil {
		t.Fatal("want error")
	}
	if _, err := NewContextualBandit(BanditConfig{ContextDim: 2, Arms: 0}, rng); err == nil {
		t.Fatal("want error")
	}
}

func TestBanditLearnsContextDependentArm(t *testing.T) {
	// Arm 0 pays when context[0] > 0.5, arm 1 otherwise.
	rng := rand.New(rand.NewSource(12))
	b, err := NewContextualBandit(BanditConfig{ContextDim: 1, Arms: 2, Hidden: []int{12}, LR: 5e-3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		ctx := []float64{rng.Float64()}
		arm := b.SelectArm(ctx, rng)
		reward := 0.0
		if (ctx[0] > 0.5 && arm == 0) || (ctx[0] <= 0.5 && arm == 1) {
			reward = 1
		}
		b.Update(ctx, arm, reward)
	}
	hi := b.Predict([]float64{0.9})
	lo := b.Predict([]float64{0.1})
	if hi[0] <= hi[1] {
		t.Fatalf("high context: Q = %v, want arm 0 preferred", hi)
	}
	if lo[1] <= lo[0] {
		t.Fatalf("low context: Q = %v, want arm 1 preferred", lo)
	}
}

func TestBanditObserveEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b, _ := NewContextualBandit(BanditConfig{ContextDim: 3, Arms: 2, Hidden: []int{10, 6}}, rng)
	obs := b.Observe([]float64{0.1, 0.2, 0.3})
	if len(obs) != 6 || len(obs) != b.ObservationDim() {
		t.Fatalf("observation dim = %d, want 6", len(obs))
	}
	// Deterministic for the same context.
	obs2 := b.Observe([]float64{0.1, 0.2, 0.3})
	for i := range obs {
		if obs[i] != obs2[i] {
			t.Fatal("Observe not deterministic")
		}
	}
	// Different contexts should (generically) produce different embeddings.
	obs3 := b.Observe([]float64{0.9, -0.8, 0.7})
	same := true
	for i := range obs {
		if math.Abs(obs[i]-obs3[i]) > 1e-12 {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct contexts produced identical embeddings")
	}
}

func TestBanditUpdateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b, _ := NewContextualBandit(BanditConfig{ContextDim: 1, Arms: 2}, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for bad arm")
		}
	}()
	b.Update([]float64{0}, 5, 1)
}

func TestBanditSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a, _ := NewContextualBandit(BanditConfig{ContextDim: 2, Arms: 3}, rng)
	a.Update([]float64{0.5, 0.5}, 1, 2.0)
	blob, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var b ContextualBandit
	if err := json.Unmarshal(blob, &b); err != nil {
		t.Fatal(err)
	}
	ctx := []float64{0.3, 0.7}
	pa, pb := a.Predict(ctx), b.Predict(ctx)
	for i := range pa {
		if math.Abs(pa[i]-pb[i]) > 1e-12 {
			t.Fatalf("prediction mismatch: %v vs %v", pa, pb)
		}
	}
	if b.Arms() != 3 {
		t.Fatal("arms not restored")
	}
}
