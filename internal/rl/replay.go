// Package rl provides the reinforcement-learning building blocks behind
// TunIO's Smart Configuration Generation and Early Stopping components: a
// neural contextual bandit (the paper's "State Observer"), a neural
// Q-learning agent with experience replay and a target network (the "Subset
// Picker" and "Action Decider"), and a delayed-reward queue implementing the
// paper's 5-iteration reward delay.
package rl

import (
	"fmt"
	"math/rand"
)

// Transition is one (s, a, r, s') experience.
type Transition struct {
	State  []float64
	Action int
	Reward float64
	Next   []float64
	Done   bool
}

// ReplayBuffer is a fixed-capacity ring buffer of transitions.
type ReplayBuffer struct {
	cap  int
	data []Transition
	next int
	full bool
}

// NewReplayBuffer returns a buffer with the given capacity.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: replay capacity must be positive, got %d", capacity))
	}
	return &ReplayBuffer{cap: capacity, data: make([]Transition, 0, capacity)}
}

// Add appends a transition, evicting the oldest when full.
func (b *ReplayBuffer) Add(t Transition) {
	if len(b.data) < b.cap {
		b.data = append(b.data, t)
	} else {
		b.data[b.next] = t
		b.full = true
	}
	b.next = (b.next + 1) % b.cap
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int { return len(b.data) }

// Sample draws k transitions uniformly with replacement.
func (b *ReplayBuffer) Sample(k int, rng *rand.Rand) []Transition {
	if len(b.data) == 0 {
		return nil
	}
	out := make([]Transition, k)
	for i := range out {
		out[i] = b.data[rng.Intn(len(b.data))]
	}
	return out
}

// DelayedReward implements the paper's n-iteration reward delay: the reward
// credited to the decision made at iteration i is the one observed at
// iteration i+delay, avoiding bias from short-term gains. Pending decisions
// are held until their reward arrives.
type DelayedReward struct {
	delay   int
	pending []pendingDecision
	tick    int
}

type pendingDecision struct {
	state  []float64
	action int
	due    int
}

// NewDelayedReward returns a queue with the given delay (0 = immediate).
func NewDelayedReward(delay int) *DelayedReward {
	if delay < 0 {
		panic(fmt.Sprintf("rl: negative reward delay %d", delay))
	}
	return &DelayedReward{delay: delay}
}

// Record registers the decision taken this iteration.
func (d *DelayedReward) Record(state []float64, action int) {
	d.pending = append(d.pending, pendingDecision{
		state:  append([]float64(nil), state...),
		action: action,
		due:    d.tick + d.delay,
	})
}

// Tick advances one iteration with the reward and successor state observed
// now, returning the transitions whose delayed reward is now known.
func (d *DelayedReward) Tick(reward float64, next []float64, done bool) []Transition {
	var out []Transition
	keep := d.pending[:0]
	for _, p := range d.pending {
		if p.due <= d.tick || done {
			out = append(out, Transition{
				State:  p.state,
				Action: p.action,
				Reward: reward,
				Next:   append([]float64(nil), next...),
				Done:   done,
			})
		} else {
			keep = append(keep, p)
		}
	}
	d.pending = keep
	d.tick++
	return out
}

// Pending returns the number of decisions awaiting their delayed reward.
func (d *DelayedReward) Pending() int { return len(d.pending) }

// Reset clears pending decisions (e.g. between tuning episodes).
func (d *DelayedReward) Reset() {
	d.pending = d.pending[:0]
	d.tick = 0
}
