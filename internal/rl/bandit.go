package rl

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"tunio/internal/mat"
	"tunio/internal/nn"
)

// ContextualBandit is the neural contextual bandit used as TunIO's State
// Observer (§III-C). It learns to predict the reward of each arm given a
// context vector; its penultimate-layer activations serve as the learned
// state observation that is fed to the downstream Q-learning picker.
type ContextualBandit struct {
	contextDim int
	arms       int
	net        *nn.Network
	trainer    *nn.Trainer
	eps        float64
	epsMin     float64
	epsDecay   float64
	pulls      int
}

// BanditConfig configures a ContextualBandit.
type BanditConfig struct {
	ContextDim int
	Arms       int
	Hidden     []int   // default [24, 16]; the last hidden layer is the state embedding
	LR         float64 // default 1e-3
	Epsilon    float64 // default 0.2
	EpsilonMin float64 // default 0.02
	Decay      float64 // default 0.999
}

// NewContextualBandit builds a bandit; rng seeds weight init.
func NewContextualBandit(cfg BanditConfig, rng *rand.Rand) (*ContextualBandit, error) {
	if cfg.ContextDim <= 0 || cfg.Arms <= 0 {
		return nil, fmt.Errorf("rl: NewContextualBandit: need positive ContextDim/Arms, got %d/%d", cfg.ContextDim, cfg.Arms)
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{24, 16}
	}
	if cfg.LR == 0 {
		cfg.LR = 1e-3
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = 0.2
	}
	if cfg.EpsilonMin == 0 {
		cfg.EpsilonMin = 0.02
	}
	if cfg.Decay == 0 {
		cfg.Decay = 0.999
	}
	specs := make([]nn.LayerSpec, 0, len(cfg.Hidden)+1)
	for _, h := range cfg.Hidden {
		specs = append(specs, nn.LayerSpec{Out: h, Act: nn.Tanh})
	}
	specs = append(specs, nn.LayerSpec{Out: cfg.Arms, Act: nn.Linear})
	net := nn.NewNetwork(cfg.ContextDim, rng, specs...)
	return &ContextualBandit{
		contextDim: cfg.ContextDim,
		arms:       cfg.Arms,
		net:        net,
		trainer:    &nn.Trainer{Net: net, Loss: nn.MSE, Opt: nn.NewAdam(cfg.LR)},
		eps:        cfg.Epsilon,
		epsMin:     cfg.EpsilonMin,
		epsDecay:   cfg.Decay,
	}, nil
}

// Arms returns the number of arms.
func (b *ContextualBandit) Arms() int { return b.arms }

// Predict returns the estimated reward for every arm under the context.
func (b *ContextualBandit) Predict(context []float64) []float64 {
	return b.net.Forward(context)
}

// SelectArm chooses an arm ε-greedily for the context.
func (b *ContextualBandit) SelectArm(context []float64, rng *rand.Rand) int {
	if rng.Float64() < b.eps {
		return rng.Intn(b.arms)
	}
	return mat.ArgMax(b.Predict(context))
}

// Update trains the bandit on the observed reward of the pulled arm and
// decays exploration.
func (b *ContextualBandit) Update(context []float64, arm int, reward float64) float64 {
	if arm < 0 || arm >= b.arms {
		panic(fmt.Sprintf("rl: bandit Update: arm %d out of range %d", arm, b.arms))
	}
	target := make([]float64, b.arms)
	mask := make([]bool, b.arms)
	target[arm] = reward
	mask[arm] = true
	loss := b.trainer.TrainMasked([]nn.Sample{{In: context, Target: target}}, [][]bool{mask})
	b.pulls++
	if b.eps > b.epsMin {
		b.eps *= b.epsDecay
		if b.eps < b.epsMin {
			b.eps = b.epsMin
		}
	}
	return loss
}

// Observe returns the state observation for a context: the activations of
// the last hidden layer after a forward pass. This is the "state
// observation representing the relationship between the application and the
// tuning environment" fed to the Subset Picker.
func (b *ContextualBandit) Observe(context []float64) []float64 {
	x := context
	for i := 0; i < len(b.net.Layers)-1; i++ {
		x = b.net.Layers[i].Forward(x)
	}
	return append([]float64(nil), x...)
}

// ObservationDim returns the width of Observe's output.
func (b *ContextualBandit) ObservationDim() int {
	return b.net.Layers[len(b.net.Layers)-2].Out
}

type banditJSON struct {
	ContextDim int         `json:"context_dim"`
	Arms       int         `json:"arms"`
	Net        *nn.Network `json:"net"`
	Eps        float64     `json:"eps"`
	EpsMin     float64     `json:"eps_min"`
	EpsDecay   float64     `json:"eps_decay"`
}

// MarshalJSON serializes the bandit.
func (b *ContextualBandit) MarshalJSON() ([]byte, error) {
	return json.Marshal(banditJSON{
		ContextDim: b.contextDim, Arms: b.arms, Net: b.net,
		Eps: b.eps, EpsMin: b.epsMin, EpsDecay: b.epsDecay,
	})
}

// UnmarshalJSON restores a bandit serialized with MarshalJSON.
func (b *ContextualBandit) UnmarshalJSON(data []byte) error {
	var bj banditJSON
	bj.Net = &nn.Network{}
	if err := json.Unmarshal(data, &bj); err != nil {
		return err
	}
	if bj.ContextDim <= 0 || bj.Arms <= 0 || bj.Net == nil {
		return fmt.Errorf("rl: bandit UnmarshalJSON: invalid payload")
	}
	b.contextDim = bj.ContextDim
	b.arms = bj.Arms
	b.net = bj.Net
	b.trainer = &nn.Trainer{Net: bj.Net, Loss: nn.MSE, Opt: nn.NewAdam(1e-3)}
	b.eps = bj.Eps
	b.epsMin = bj.EpsMin
	b.epsDecay = bj.EpsDecay
	return nil
}
