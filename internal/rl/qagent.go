package rl

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"tunio/internal/mat"
	"tunio/internal/nn"
)

// QConfig configures a QAgent.
type QConfig struct {
	StateDim int     // width of the state observation vector
	Actions  int     // number of discrete actions
	Hidden   []int   // hidden layer widths (default [32, 32])
	Gamma    float64 // discount factor (default 0.95)
	LR       float64 // Adam learning rate (default 1e-3)

	Epsilon      float64 // initial exploration rate (default 1.0)
	EpsilonMin   float64 // floor (default 0.05)
	EpsilonDecay float64 // multiplicative decay per training step (default 0.995)

	ReplayCapacity int // default 4096
	BatchSize      int // default 32
	TargetSync     int // training steps between target-net syncs (default 50)
}

func (c *QConfig) fillDefaults() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{32, 32}
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Epsilon == 0 {
		c.Epsilon = 1.0
	}
	if c.EpsilonMin == 0 {
		c.EpsilonMin = 0.05
	}
	if c.EpsilonDecay == 0 {
		c.EpsilonDecay = 0.995
	}
	if c.ReplayCapacity == 0 {
		c.ReplayCapacity = 4096
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.TargetSync == 0 {
		c.TargetSync = 50
	}
}

// QAgent is a neural Q-learning agent (DQN-style: experience replay plus a
// periodically synced target network).
type QAgent struct {
	cfg     QConfig
	net     *nn.Network
	target  *nn.Network
	trainer *nn.Trainer
	buf     *ReplayBuffer
	eps     float64
	steps   int
}

// NewQAgent builds an agent; rng seeds weight init.
func NewQAgent(cfg QConfig, rng *rand.Rand) (*QAgent, error) {
	if cfg.StateDim <= 0 || cfg.Actions <= 0 {
		return nil, fmt.Errorf("rl: NewQAgent: need positive StateDim/Actions, got %d/%d", cfg.StateDim, cfg.Actions)
	}
	cfg.fillDefaults()
	specs := make([]nn.LayerSpec, 0, len(cfg.Hidden)+1)
	for _, h := range cfg.Hidden {
		specs = append(specs, nn.LayerSpec{Out: h, Act: nn.ReLU})
	}
	specs = append(specs, nn.LayerSpec{Out: cfg.Actions, Act: nn.Linear})
	net := nn.NewNetwork(cfg.StateDim, rng, specs...)
	a := &QAgent{
		cfg:     cfg,
		net:     net,
		target:  net.Clone(),
		trainer: &nn.Trainer{Net: net, Loss: nn.Huber, Opt: nn.NewAdam(cfg.LR)},
		buf:     NewReplayBuffer(cfg.ReplayCapacity),
		eps:     cfg.Epsilon,
	}
	return a, nil
}

// Actions returns the size of the action space.
func (a *QAgent) Actions() int { return a.cfg.Actions }

// Epsilon returns the current exploration rate.
func (a *QAgent) Epsilon() float64 { return a.eps }

// SetEpsilon overrides the exploration rate (used when deploying an
// offline-trained agent online with reduced exploration).
func (a *QAgent) SetEpsilon(eps float64) { a.eps = eps }

// QValues returns the online network's Q estimates for a state.
func (a *QAgent) QValues(state []float64) []float64 {
	return a.net.Forward(state)
}

// SelectAction picks an action ε-greedily.
func (a *QAgent) SelectAction(state []float64, rng *rand.Rand) int {
	if rng.Float64() < a.eps {
		return rng.Intn(a.cfg.Actions)
	}
	return a.GreedyAction(state)
}

// GreedyAction returns argmax_a Q(state, a).
func (a *QAgent) GreedyAction(state []float64) int {
	return mat.ArgMax(a.QValues(state))
}

// Observe stores a transition in the replay buffer.
func (a *QAgent) Observe(t Transition) {
	if len(t.State) != a.cfg.StateDim {
		panic(fmt.Sprintf("rl: Observe: state dim %d, want %d", len(t.State), a.cfg.StateDim))
	}
	if t.Action < 0 || t.Action >= a.cfg.Actions {
		panic(fmt.Sprintf("rl: Observe: action %d out of range %d", t.Action, a.cfg.Actions))
	}
	a.buf.Add(t)
}

// BufferLen returns the number of stored transitions.
func (a *QAgent) BufferLen() int { return a.buf.Len() }

// TrainStep samples a minibatch and performs one Q-learning update,
// returning the batch loss. It is a no-op (returning 0) until the buffer
// holds at least one batch.
func (a *QAgent) TrainStep(rng *rand.Rand) float64 {
	if a.buf.Len() < a.cfg.BatchSize {
		return 0
	}
	batch := a.buf.Sample(a.cfg.BatchSize, rng)
	samples := make([]nn.Sample, len(batch))
	masks := make([][]bool, len(batch))
	for i, tr := range batch {
		target := make([]float64, a.cfg.Actions)
		mask := make([]bool, a.cfg.Actions)
		y := tr.Reward
		if !tr.Done {
			y += a.cfg.Gamma * mat.MaxVal(a.target.Forward(tr.Next))
		}
		target[tr.Action] = y
		mask[tr.Action] = true
		samples[i] = nn.Sample{In: tr.State, Target: target}
		masks[i] = mask
	}
	loss := a.trainer.TrainMasked(samples, masks)

	a.steps++
	if a.steps%a.cfg.TargetSync == 0 {
		if err := a.target.CopyWeightsFrom(a.net); err != nil {
			panic("rl: target sync: " + err.Error())
		}
	}
	if a.eps > a.cfg.EpsilonMin {
		a.eps *= a.cfg.EpsilonDecay
		if a.eps < a.cfg.EpsilonMin {
			a.eps = a.cfg.EpsilonMin
		}
	}
	return loss
}

// qAgentJSON is the serialized form of an agent (weights + config; the
// replay buffer is not persisted).
type qAgentJSON struct {
	Cfg QConfig     `json:"cfg"`
	Net *nn.Network `json:"net"`
	Eps float64     `json:"eps"`
}

// MarshalJSON serializes the agent for shipping offline-trained models.
func (a *QAgent) MarshalJSON() ([]byte, error) {
	return json.Marshal(qAgentJSON{Cfg: a.cfg, Net: a.net, Eps: a.eps})
}

// UnmarshalJSON restores an agent serialized with MarshalJSON.
func (a *QAgent) UnmarshalJSON(data []byte) error {
	var aj qAgentJSON
	aj.Net = &nn.Network{}
	if err := json.Unmarshal(data, &aj); err != nil {
		return err
	}
	aj.Cfg.fillDefaults()
	if aj.Cfg.StateDim <= 0 || aj.Cfg.Actions <= 0 {
		return fmt.Errorf("rl: UnmarshalJSON: invalid config %+v", aj.Cfg)
	}
	a.cfg = aj.Cfg
	a.net = aj.Net
	a.target = aj.Net.Clone()
	a.trainer = &nn.Trainer{Net: a.net, Loss: nn.Huber, Opt: nn.NewAdam(aj.Cfg.LR)}
	a.buf = NewReplayBuffer(aj.Cfg.ReplayCapacity)
	a.eps = aj.Eps
	return nil
}
