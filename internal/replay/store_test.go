package replay

import (
	"bytes"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/workload"
)

func recordTrace(t *testing.T, name string, seed int64) *Trace {
	t.Helper()
	c := cluster.CoriHaswell(2, 8)
	defaults := params.DefaultAssignment(params.Space()).Settings()
	st, err := workload.BuildStack(c, defaults, seed)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(name, c.Procs())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(w, st)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The kernel store hands a trace recorded in one session to sessions with
// different seeds, so traces must not depend on the recording seed: they
// capture what the application issues, not how the hardware times it.
func TestKernelStoreTraceSeedIndependent(t *testing.T) {
	for _, name := range []string{"vpic", "hacc", "flash", "bdcats", "macsio"} {
		a, err := recordTrace(t, name, 3).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		b, err := recordTrace(t, name, 99).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: recorded trace differs across seeds", name)
		}
	}
}

func TestKernelStore(t *testing.T) {
	s := NewKernelStore()
	if _, ok := s.Get("workload:macsio/16"); ok {
		t.Fatal("empty store reported a hit")
	}
	tr := recordTrace(t, "macsio", 3)
	s.Put("workload:macsio/16", KernelEntry{Trace: tr, KernelHash: "trace:abc"})
	s.Put("workload:macsio/16", KernelEntry{Trace: recordTrace(t, "vpic", 3), KernelHash: "trace:def"})
	e, ok := s.Get("workload:macsio/16")
	if !ok {
		t.Fatal("stored kernel not found")
	}
	if e.Trace != tr || e.KernelHash != "trace:abc" {
		t.Fatal("second Put overwrote the first entry (first recording must win)")
	}
	s.Put("nil", KernelEntry{})
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (nil-trace Put must be ignored)", s.Len())
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Kernels != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 kernel", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

// Two views on one shared cache: artifacts are shared (the second view's
// first query is a hit), while hit/miss counters stay per-view.
func TestSharedStageCacheViews(t *testing.T) {
	tr := recordTrace(t, "macsio", 3)
	shared := NewSharedStageCache()
	shared.Register("sig:k1", tr)
	shared.Register("sig:k1", recordTrace(t, "vpic", 3)) // first registration must win
	if !shared.HasKernel("sig:k1") || shared.Kernels() != 1 {
		t.Fatal("registration bookkeeping wrong")
	}

	a := params.DefaultAssignment(params.Space())
	s := a.Settings()
	v1 := shared.View("sig:k1")
	wp1, err := v1.WireFor(a, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	v2 := shared.View("sig:k1")
	wp2, err := v2.WireFor(a, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wp1 != wp2 {
		t.Fatal("views did not share the cached wire plan")
	}
	if st := v1.Stats(); st.WireMisses != 1 || st.WireHits != 0 || st.PlanMisses != 1 {
		t.Fatalf("view1 stats = %+v, want 1 wire miss / 1 plan miss", st)
	}
	if st := v2.Stats(); st.WireHits != 1 || st.WireMisses != 0 {
		t.Fatalf("view2 stats = %+v, want 1 wire hit", st)
	}
	if st := shared.Stats(); st.WireHits != 1 || st.WireMisses != 1 {
		t.Fatalf("shared stats = %+v, want 1 hit + 1 miss", st)
	}

	// A view on a different kernel key must not see k1's artifacts.
	shared.Register("sig:k2", tr)
	v3 := shared.View("sig:k2")
	wp3, err := v3.WireFor(a, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wp3 == wp1 {
		t.Fatal("kernel keys did not partition the shared cache")
	}
	if st := v3.Stats(); st.WireMisses != 1 {
		t.Fatalf("view3 stats = %+v, want 1 wire miss", st)
	}
}

// A view keyed to an unregistered kernel fails loudly instead of planning
// against someone else's trace.
func TestSharedStageCacheUnregisteredKernel(t *testing.T) {
	shared := NewSharedStageCache()
	a := params.DefaultAssignment(params.Space())
	if _, err := shared.View("sig:ghost").WireFor(a, a.Settings(), 8); err == nil {
		t.Fatal("WireFor on an unregistered kernel: want error")
	}
}

// SetKernelKey rebinds the single-trace API without losing the trace —
// the legacy TraceEvaluator construction order (NewStageCache, then
// SetKernelKey once the hash is known).
func TestStageCacheRebind(t *testing.T) {
	tr := recordTrace(t, "macsio", 3)
	c := NewStageCache(tr)
	c.SetKernelKey("sig:late")
	if c.Trace() != tr {
		t.Fatal("rebinding lost the trace")
	}
	if c.KernelKey() != "sig:late" {
		t.Fatalf("kernel key = %q", c.KernelKey())
	}
	a := params.DefaultAssignment(params.Space())
	if _, err := c.WireFor(a, a.Settings(), 8); err != nil {
		t.Fatal(err)
	}
}
