package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/workload"
)

func recordTrace(t *testing.T, name string, seed int64) *Trace {
	t.Helper()
	c := cluster.CoriHaswell(2, 8)
	defaults := params.DefaultAssignment(params.Space()).Settings()
	st, err := workload.BuildStack(c, defaults, seed)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(name, c.Procs())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Record(w, st)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The kernel store hands a trace recorded in one session to sessions with
// different seeds, so traces must not depend on the recording seed: they
// capture what the application issues, not how the hardware times it.
func TestKernelStoreTraceSeedIndependent(t *testing.T) {
	for _, name := range []string{"vpic", "hacc", "flash", "bdcats", "macsio"} {
		a, err := recordTrace(t, name, 3).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		b, err := recordTrace(t, name, 99).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: recorded trace differs across seeds", name)
		}
	}
}

func TestKernelStore(t *testing.T) {
	s := NewKernelStore()
	if _, ok := s.Get("workload:macsio/16"); ok {
		t.Fatal("empty store reported a hit")
	}
	tr := recordTrace(t, "macsio", 3)
	s.Put("workload:macsio/16", KernelEntry{Trace: tr, KernelHash: "trace:abc"})
	s.Put("workload:macsio/16", KernelEntry{Trace: recordTrace(t, "vpic", 3), KernelHash: "trace:def"})
	e, ok := s.Get("workload:macsio/16")
	if !ok {
		t.Fatal("stored kernel not found")
	}
	if e.Trace != tr || e.KernelHash != "trace:abc" {
		t.Fatal("second Put overwrote the first entry (first recording must win)")
	}
	s.Put("nil", KernelEntry{})
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (nil-trace Put must be ignored)", s.Len())
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Kernels != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 kernel", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

// Two views on one shared cache: artifacts are shared (the second view's
// first query is a hit), while hit/miss counters stay per-view.
func TestSharedStageCacheViews(t *testing.T) {
	tr := recordTrace(t, "macsio", 3)
	shared := NewSharedStageCache()
	shared.Register("sig:k1", tr)
	shared.Register("sig:k1", recordTrace(t, "vpic", 3)) // first registration must win
	if !shared.HasKernel("sig:k1") || shared.Kernels() != 1 {
		t.Fatal("registration bookkeeping wrong")
	}

	a := params.DefaultAssignment(params.Space())
	s := a.Settings()
	v1 := shared.View("sig:k1")
	wp1, err := v1.WireFor(a, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	v2 := shared.View("sig:k1")
	wp2, err := v2.WireFor(a, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wp1 != wp2 {
		t.Fatal("views did not share the cached wire plan")
	}
	if st := v1.Stats(); st.WireMisses != 1 || st.WireHits != 0 || st.PlanMisses != 1 {
		t.Fatalf("view1 stats = %+v, want 1 wire miss / 1 plan miss", st)
	}
	if st := v2.Stats(); st.WireHits != 1 || st.WireMisses != 0 {
		t.Fatalf("view2 stats = %+v, want 1 wire hit", st)
	}
	if st := shared.Stats(); st.WireHits != 1 || st.WireMisses != 1 {
		t.Fatalf("shared stats = %+v, want 1 hit + 1 miss", st)
	}

	// A view on a different kernel key must not see k1's artifacts.
	shared.Register("sig:k2", tr)
	v3 := shared.View("sig:k2")
	wp3, err := v3.WireFor(a, s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wp3 == wp1 {
		t.Fatal("kernel keys did not partition the shared cache")
	}
	if st := v3.Stats(); st.WireMisses != 1 {
		t.Fatalf("view3 stats = %+v, want 1 wire miss", st)
	}
}

// A view keyed to an unregistered kernel fails loudly instead of planning
// against someone else's trace.
func TestSharedStageCacheUnregisteredKernel(t *testing.T) {
	shared := NewSharedStageCache()
	a := params.DefaultAssignment(params.Space())
	if _, err := shared.View("sig:ghost").WireFor(a, a.Settings(), 8); err == nil {
		t.Fatal("WireFor on an unregistered kernel: want error")
	}
}

// SetKernelKey rebinds the single-trace API without losing the trace —
// the legacy TraceEvaluator construction order (NewStageCache, then
// SetKernelKey once the hash is known).
func TestStageCacheRebind(t *testing.T) {
	tr := recordTrace(t, "macsio", 3)
	c := NewStageCache(tr)
	c.SetKernelKey("sig:late")
	if c.Trace() != tr {
		t.Fatal("rebinding lost the trace")
	}
	if c.KernelKey() != "sig:late" {
		t.Fatalf("kernel key = %q", c.KernelKey())
	}
	a := params.DefaultAssignment(params.Space())
	if _, err := c.WireFor(a, a.Settings(), 8); err != nil {
		t.Fatal(err)
	}
}

// The persisted store must survive a full round trip: every trace byte-
// identical, kernel hashes preserved, counts reported.
func TestKernelStoreSaveLoadRoundTrip(t *testing.T) {
	s := NewKernelStore()
	traces := map[string]*Trace{
		"workload:macsio/16": recordTrace(t, "macsio", 3),
		"workload:vpic/16":   recordTrace(t, "vpic", 3),
	}
	for k, tr := range traces {
		s.Put(k, KernelEntry{Trace: tr, KernelHash: TraceKey(tr)})
	}
	path := filepath.Join(t.TempDir(), "kernels.json")
	n, err := s.Save(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("saved %d kernels, want 2", n)
	}

	fresh := NewKernelStore()
	if n, err = fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d kernels, want 2", n)
	}
	for k, tr := range traces {
		e, ok := fresh.Get(k)
		if !ok {
			t.Fatalf("kernel %q missing after load", k)
		}
		if e.KernelHash != TraceKey(tr) {
			t.Fatalf("kernel %q hash changed: %q", k, e.KernelHash)
		}
		want, err := tr.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.Trace.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("kernel %q trace changed across save/load", k)
		}
	}

	// Deterministic file: saving the same kernels again is byte-identical.
	path2 := filepath.Join(t.TempDir(), "kernels.json")
	if _, err := fresh.Save(path2); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("re-saved store file differs")
	}
}

// A store file with a tampered trace must fail the whole load — no
// partial application — and leave the target store untouched.
func TestKernelStoreLoadRejectsCorruption(t *testing.T) {
	s := NewKernelStore()
	tr := recordTrace(t, "macsio", 3)
	s.Put("workload:macsio/16", KernelEntry{Trace: tr, KernelHash: TraceKey(tr)})
	path := filepath.Join(t.TempDir(), "kernels.json")
	if _, err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := bytes.Replace(b, []byte(`"nprocs"`), []byte(`"nprXcs"`), 1)
	if bytes.Equal(mut, b) {
		t.Fatal("corruption probe found nothing to flip")
	}
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := NewKernelStore()
	if _, err := fresh.Load(path); err == nil {
		t.Fatal("tampered store file loaded")
	}
	if fresh.Len() != 0 {
		t.Fatalf("failed load applied %d kernels", fresh.Len())
	}
}

// Loading under a live store follows the first-Put-wins rule: keys the
// store already holds keep their in-memory entries.
func TestKernelStoreLoadFirstWins(t *testing.T) {
	disk := NewKernelStore()
	diskTrace := recordTrace(t, "macsio", 3)
	disk.Put("workload:macsio/16", KernelEntry{Trace: diskTrace, KernelHash: "trace:disk"})
	path := filepath.Join(t.TempDir(), "kernels.json")
	if _, err := disk.Save(path); err != nil {
		t.Fatal(err)
	}

	live := NewKernelStore()
	liveTrace := recordTrace(t, "vpic", 3)
	live.Put("workload:macsio/16", KernelEntry{Trace: liveTrace, KernelHash: "trace:live"})
	if _, err := live.Load(path); err != nil {
		t.Fatal(err)
	}
	e, _ := live.Get("workload:macsio/16")
	if e.KernelHash != "trace:live" {
		t.Fatalf("load replaced a live entry: %q", e.KernelHash)
	}
}

// An unknown store file version is rejected outright.
func TestKernelStoreLoadRejectsVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "kernels.json")
	if err := os.WriteFile(path, []byte(`{"version":99,"kernels":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewKernelStore().Load(path); err == nil {
		t.Fatal("future-versioned store file loaded")
	}
}
