package replay

import (
	"sync"

	"tunio/internal/hdf5"
	"tunio/internal/params"
)

// wireFootprint is the union of the plan and aggregate footprints: the
// parameters a wire plan depends on.
var wireFootprint = append(append([]string{}, params.PlanStage...), params.AggregateStage...)

// StageCache memoizes the staged artifacts of one trace by parameter
// projection: stack plans keyed by the plan footprint, wire plans keyed by
// the plan+aggregate footprint. A GA population whose genomes differ only
// in service-stage parameters (striping, mdc_conf) shares a single wire
// plan across all of them. Safe for concurrent use.
type StageCache struct {
	trace *Trace

	mu        sync.Mutex
	kernelKey string // signature-derived content hash prefixed onto keys
	plans     map[string]*StackPlan
	wires     map[string]*WirePlan
	stats     StageStats
}

// StageStats counts cache traffic per stage.
type StageStats struct {
	PlanHits, PlanMisses int64
	WireHits, WireMisses int64
}

// PlanHitRate returns the stage-1 hit fraction (0 when never queried).
func (s StageStats) PlanHitRate() float64 {
	if t := s.PlanHits + s.PlanMisses; t > 0 {
		return float64(s.PlanHits) / float64(t)
	}
	return 0
}

// WireHitRate returns the stage-2 hit fraction (0 when never queried).
func (s StageStats) WireHitRate() float64 {
	if t := s.WireHits + s.WireMisses; t > 0 {
		return float64(s.WireHits) / float64(t)
	}
	return 0
}

// NewStageCache returns an empty cache over the trace.
func NewStageCache(t *Trace) *StageCache {
	return &StageCache{
		trace: t,
		plans: map[string]*StackPlan{},
		wires: map[string]*WirePlan{},
	}
}

// Trace returns the underlying trace.
func (c *StageCache) Trace() *Trace { return c.trace }

// SetKernelKey installs a kernel content hash (typically
// IOSignature.Hash-derived) as a prefix on every cache key. Within one
// StageCache the prefix never changes behavior — the cache already holds
// a single trace — but it makes the keys self-describing, the groundwork
// for a cross-session cache shared between kernels.
func (c *StageCache) SetKernelKey(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.kernelKey = key
}

// KernelKey returns the installed kernel content hash ("" when unset).
func (c *StageCache) KernelKey() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kernelKey
}

// Stats returns a snapshot of the cache counters.
func (c *StageCache) Stats() StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// WireFor returns the wire plan of the assignment's configuration, building
// (and caching) the stage artifacts its projections miss. s must be
// a.Settings() and ppn the cluster's processes per node.
func (c *StageCache) WireFor(a *params.Assignment, s params.StackSettings, ppn int) (*WirePlan, error) {
	wireKey := c.kernelKey + "\x00" + a.ProjectionKey(wireFootprint)
	c.mu.Lock()
	defer c.mu.Unlock()
	if wp, ok := c.wires[wireKey]; ok {
		c.stats.WireHits++
		return wp, nil
	}
	c.stats.WireMisses++
	sp, err := c.planLocked(a, s.HDF5)
	if err != nil {
		return nil, err
	}
	wp := LowerPlan(sp, s.Hints, s.HDF5, ppn)
	c.wires[wireKey] = wp
	return wp, nil
}

func (c *StageCache) planLocked(a *params.Assignment, cfg hdf5.Config) (*StackPlan, error) {
	planKey := c.kernelKey + "\x00" + a.ProjectionKey(params.PlanStage)
	if sp, ok := c.plans[planKey]; ok {
		c.stats.PlanHits++
		return sp, nil
	}
	c.stats.PlanMisses++
	sp, err := BuildStackPlan(c.trace, cfg)
	if err != nil {
		return nil, err
	}
	c.plans[planKey] = sp
	return sp, nil
}

// Lower is the uncached form of WireFor, used by tests comparing cache-hit
// artifacts to fresh recomputation.
func (c *StageCache) Lower(s params.StackSettings, ppn int) (*WirePlan, error) {
	sp, err := BuildStackPlan(c.trace, s.HDF5)
	if err != nil {
		return nil, err
	}
	return LowerPlan(sp, s.Hints, s.HDF5, ppn), nil
}
