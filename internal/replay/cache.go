package replay

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tunio/internal/hdf5"
	"tunio/internal/params"
)

// wireFootprint is the union of the plan and aggregate footprints: the
// parameters a wire plan depends on.
var wireFootprint = append(append([]string{}, params.PlanStage...), params.AggregateStage...)

// stageShardCount is the number of lock stripes per artifact kind. A
// power of two so shardOf can mask instead of mod; 32 stripes keep the
// probability of two concurrent cold builds colliding on a stripe low
// even at high session counts, while costing only a few hundred bytes.
const stageShardCount = 32

// shardOf hashes a cache key onto a stripe (FNV-1a, masked).
func shardOf(key []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return h & (stageShardCount - 1)
}

// cacheShard is one lock stripe of a sharded artifact map. Readers load
// the published map pointer and look up without any lock; writers take
// the stripe mutex, clone, insert, and republish (copy-on-write). Hit
// and miss traffic is counted with atomics so the read path never
// serializes on accounting either.
type cacheShard[V any] struct {
	m      atomic.Pointer[map[string]V]
	mu     sync.Mutex
	hits   atomic.Int64
	misses atomic.Int64
}

func (s *cacheShard[V]) init() {
	m := map[string]V{}
	s.m.Store(&m)
}

// get is the lock-free read path. key aliases caller scratch; the
// string conversion inside the map index does not allocate.
func (s *cacheShard[V]) get(key []byte) (V, bool) {
	v, ok := (*s.m.Load())[string(key)]
	return v, ok
}

// insertLocked publishes key→v (first writer wins) and returns the
// entry now under the key. Callers must hold s.mu.
func (s *cacheShard[V]) insertLocked(key []byte, v V) V {
	old := *s.m.Load()
	if cur, ok := old[string(key)]; ok {
		return cur
	}
	next := make(map[string]V, len(old)+1)
	for k, ov := range old {
		next[k] = ov
	}
	next[string(key)] = v
	s.m.Store(&next)
	return v
}

func (s *cacheShard[V]) len() int { return len(*s.m.Load()) }

// StageCache memoizes the staged artifacts of one or more traces by
// (kernel, parameter-projection) key: stack plans keyed by the plan
// footprint, wire plans keyed by the plan+aggregate footprint. A GA
// population whose genomes differ only in service-stage parameters
// (striping, mdc_conf) shares a single wire plan across all of them.
//
// A cache holds one trace per registered kernel key, so it can be shared
// process-wide across tuning sessions: two sessions tuning kernels with
// the same content hash — same signature or same recorded trace — hit
// each other's artifacts, because stage planning is a pure function of
// (trace, projected parameters) and never reads the run seed. Safe for
// concurrent use.
//
// Internally the plan and wire maps are sharded by key hash into
// lock-striped copy-on-write buckets: a warm lookup loads the shard's
// published map pointer and bumps an atomic counter — no mutex — while a
// cold build serializes only with other builds on the same stripe. A
// wire-stripe build may take a plan-stripe lock (wire→plan order only),
// so the two lock families cannot deadlock.
type StageCache struct {
	mu        sync.Mutex // guards kernelKey and traces
	kernelKey string     // key the single-trace API (WireFor, Trace) is bound to
	traces    map[string]*Trace

	plans [stageShardCount]cacheShard[*StackPlan]
	wires [stageShardCount]cacheShard[*WirePlan]

	// serial, when non-nil, routes every operation — including warm
	// hits and plan/lower builds — through one global mutex. It exists
	// solely so benchmarks can measure the pre-sharding single-mutex
	// behavior against the same workload; see Serialize.
	serial *sync.Mutex
}

// StageStats counts cache traffic per stage.
type StageStats struct {
	PlanHits   int64 `json:"plan_hits"`
	PlanMisses int64 `json:"plan_misses"`
	WireHits   int64 `json:"wire_hits"`
	WireMisses int64 `json:"wire_misses"`
}

// PlanHitRate returns the stage-1 hit fraction (0 when never queried).
func (s StageStats) PlanHitRate() float64 {
	if t := s.PlanHits + s.PlanMisses; t > 0 {
		return float64(s.PlanHits) / float64(t)
	}
	return 0
}

// HitRate returns the overall hit fraction across both cached stages
// (0 when never queried) — the headline number for how much of a
// session's stage work the cache absorbed.
func (s StageStats) HitRate() float64 {
	if t := s.PlanHits + s.PlanMisses + s.WireHits + s.WireMisses; t > 0 {
		return float64(s.PlanHits+s.WireHits) / float64(t)
	}
	return 0
}

// WireHitRate returns the stage-2 hit fraction (0 when never queried).
func (s StageStats) WireHitRate() float64 {
	if t := s.WireHits + s.WireMisses; t > 0 {
		return float64(s.WireHits) / float64(t)
	}
	return 0
}

// add accumulates o into s.
func (s *StageStats) add(o StageStats) {
	s.PlanHits += o.PlanHits
	s.PlanMisses += o.PlanMisses
	s.WireHits += o.WireHits
	s.WireMisses += o.WireMisses
}

// NewStageCache returns a cache over the single trace, bound to the empty
// kernel key until SetKernelKey rebinds it.
func NewStageCache(t *Trace) *StageCache {
	c := NewSharedStageCache()
	c.traces[""] = t
	return c
}

// NewSharedStageCache returns an empty multi-kernel cache, meant to be
// shared across sessions: callers Register each kernel's trace under its
// content hash and query through per-session Views.
func NewSharedStageCache() *StageCache {
	c := &StageCache{traces: map[string]*Trace{}}
	for i := range c.plans {
		c.plans[i].init()
		c.wires[i].init()
	}
	return c
}

// Serialize switches the cache into single-mutex mode: every lookup and
// build — warm hits included — serializes on one global lock, exactly
// the pre-sharding behavior. It is a benchmark baseline, not a feature;
// call it once, before the cache is shared.
func (c *StageCache) Serialize() *StageCache {
	c.serial = &sync.Mutex{}
	return c
}

// Trace returns the trace the single-trace API is bound to (nil for a
// shared cache with no trace registered under the bound key).
func (c *StageCache) Trace() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traces[c.kernelKey]
}

// SetKernelKey installs a kernel content hash (typically
// IOSignature.Hash-derived) as the bound key: the trace registered under
// the previous bound key moves to the new one, and WireFor prefixes every
// cache key with it. On a cache shared between kernels the prefix is what
// keeps one kernel's artifacts from answering for another's.
func (c *StageCache) SetKernelKey(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if key != c.kernelKey {
		if t, ok := c.traces[c.kernelKey]; ok {
			delete(c.traces, c.kernelKey)
			if _, taken := c.traces[key]; !taken {
				c.traces[key] = t
			}
		}
		c.kernelKey = key
	}
}

// KernelKey returns the bound kernel content hash ("" when unset).
func (c *StageCache) KernelKey() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kernelKey
}

// Register installs the trace for a kernel key. The first registration
// wins: a key already present keeps its trace, which is what lets many
// sessions race to register the same content-addressed kernel.
func (c *StageCache) Register(key string, t *Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.traces[key]; !ok {
		c.traces[key] = t
	}
}

// HasKernel reports whether a trace is registered under the key.
func (c *StageCache) HasKernel(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.traces[key]
	return ok
}

// Kernels returns the number of registered kernel traces.
func (c *StageCache) Kernels() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// Stats returns a snapshot of the cache-wide counters (all views and
// bound-key queries combined), merged across shards. Each counter is a
// sum of per-shard atomics, so a snapshot taken while traffic is in
// flight is approximate in the usual monotonic-counter sense; quiescent
// reads — every test and report in this repo — are exact, because a
// completed WireFor has fully retired its counter updates.
func (c *StageCache) Stats() StageStats {
	var s StageStats
	for i := range c.plans {
		s.PlanHits += c.plans[i].hits.Load()
		s.PlanMisses += c.plans[i].misses.Load()
		s.WireHits += c.wires[i].hits.Load()
		s.WireMisses += c.wires[i].misses.Load()
	}
	return s
}

// View returns a session-local handle on the cache bound to one kernel
// key. Views share the cache's artifacts — a plan built through one view
// is a hit through every other — but each view keeps its own StageStats,
// so a session can report its personal hit rate against the shared cache.
func (c *StageCache) View(kernelKey string) *CacheView {
	return &CacheView{c: c, kernelKey: kernelKey}
}

// CacheView is a per-session window onto a shared StageCache: fixed
// kernel key, private hit/miss counters. The counters are atomics, so a
// warm-path hit through a view touches no mutex at all. Safe for
// concurrent use.
type CacheView struct {
	c         *StageCache
	kernelKey string

	planHits   atomic.Int64
	planMisses atomic.Int64
	wireHits   atomic.Int64
	wireMisses atomic.Int64
}

// KernelKey returns the view's kernel key.
func (v *CacheView) KernelKey() string { return v.kernelKey }

// WireFor returns the wire plan of the assignment's configuration under
// the view's kernel, building (and caching, shared) what its projections
// miss. s must be a.Settings() and ppn the cluster's processes per node.
func (v *CacheView) WireFor(a *params.Assignment, s params.StackSettings, ppn int) (*WirePlan, error) {
	var delta StageStats
	wp, err := v.c.wireFor(v.kernelKey, a, s, &delta, ppn)
	if delta.WireHits != 0 {
		v.wireHits.Add(delta.WireHits)
	}
	if delta.WireMisses != 0 {
		v.wireMisses.Add(delta.WireMisses)
		v.planHits.Add(delta.PlanHits)
		v.planMisses.Add(delta.PlanMisses)
	}
	return wp, err
}

// Stats returns the view's private counters: the traffic this view (not
// the whole shared cache) generated.
func (v *CacheView) Stats() StageStats {
	return StageStats{
		PlanHits:   v.planHits.Load(),
		PlanMisses: v.planMisses.Load(),
		WireHits:   v.wireHits.Load(),
		WireMisses: v.wireMisses.Load(),
	}
}

// WireFor returns the wire plan of the assignment's configuration under
// the bound kernel key, building (and caching) the stage artifacts its
// projections miss. s must be a.Settings() and ppn the cluster's
// processes per node.
func (c *StageCache) WireFor(a *params.Assignment, s params.StackSettings, ppn int) (*WirePlan, error) {
	return c.wireFor(c.KernelKey(), a, s, nil, ppn)
}

// wireFor is the shared implementation: delta, when non-nil, additionally
// receives the hit/miss traffic of this one call (for per-view stats).
//
// The fast path builds the wire key into stack scratch, loads the
// stripe's published map, and returns on a hit — zero locks, zero
// allocations. A miss takes only that stripe's mutex, re-checks (another
// session may have published while we waited), builds the plan (itself a
// striped lookup), lowers, and republishes.
func (c *StageCache) wireFor(kernelKey string, a *params.Assignment, s params.StackSettings, delta *StageStats, ppn int) (*WirePlan, error) {
	if c.serial != nil {
		c.serial.Lock()
		defer c.serial.Unlock()
	}

	var scratch [64]byte
	key := append(scratch[:0], kernelKey...)
	key = append(key, 0)
	key = a.AppendProjection(key, wireFootprint)
	shard := &c.wires[shardOf(key)]

	if wp, ok := shard.get(key); ok {
		shard.hits.Add(1)
		if delta != nil {
			delta.WireHits++
		}
		return wp, nil
	}

	shard.mu.Lock()
	defer shard.mu.Unlock()
	if wp, ok := shard.get(key); ok {
		// Lost the build race: another session published while we
		// waited for the stripe. Still a miss from this caller's view —
		// it queued behind the build — matching pre-sharding accounting
		// where the second requester blocked on the cache lock.
		shard.hits.Add(1)
		if delta != nil {
			delta.WireHits++
		}
		return wp, nil
	}
	shard.misses.Add(1)
	if delta != nil {
		delta.WireMisses++
	}
	sp, err := c.planFor(kernelKey, a, s.HDF5, delta)
	if err != nil {
		return nil, err
	}
	wp := LowerPlan(sp, s.Hints, s.HDF5, ppn)
	return shard.insertLocked(key, wp), nil
}

// planFor returns the stage-1 stack plan for the assignment's plan
// projection, building and publishing it on a miss. Callers may hold a
// wire-stripe mutex; plan stripes are a distinct lock family ordered
// after wire stripes, so this cannot deadlock.
func (c *StageCache) planFor(kernelKey string, a *params.Assignment, cfg hdf5.Config, delta *StageStats) (*StackPlan, error) {
	var scratch [64]byte
	key := append(scratch[:0], kernelKey...)
	key = append(key, 0)
	key = a.AppendProjection(key, params.PlanStage)
	shard := &c.plans[shardOf(key)]

	if sp, ok := shard.get(key); ok {
		shard.hits.Add(1)
		if delta != nil {
			delta.PlanHits++
		}
		return sp, nil
	}

	shard.mu.Lock()
	defer shard.mu.Unlock()
	if sp, ok := shard.get(key); ok {
		shard.hits.Add(1)
		if delta != nil {
			delta.PlanHits++
		}
		return sp, nil
	}
	shard.misses.Add(1)
	if delta != nil {
		delta.PlanMisses++
	}
	c.mu.Lock()
	t, ok := c.traces[kernelKey]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("replay: no trace registered for kernel %q", kernelKey)
	}
	sp, err := BuildStackPlan(t, cfg)
	if err != nil {
		return nil, err
	}
	return shard.insertLocked(key, sp), nil
}

// Lower is the uncached form of WireFor, used by tests comparing cache-hit
// artifacts to fresh recomputation. It lowers against the bound trace.
func (c *StageCache) Lower(s params.StackSettings, ppn int) (*WirePlan, error) {
	t := c.Trace()
	if t == nil {
		return nil, fmt.Errorf("replay: no trace registered for kernel %q", c.KernelKey())
	}
	sp, err := BuildStackPlan(t, s.HDF5)
	if err != nil {
		return nil, err
	}
	return LowerPlan(sp, s.Hints, s.HDF5, ppn), nil
}
