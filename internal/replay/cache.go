package replay

import (
	"fmt"
	"sync"

	"tunio/internal/hdf5"
	"tunio/internal/params"
)

// wireFootprint is the union of the plan and aggregate footprints: the
// parameters a wire plan depends on.
var wireFootprint = append(append([]string{}, params.PlanStage...), params.AggregateStage...)

// StageCache memoizes the staged artifacts of one or more traces by
// (kernel, parameter-projection) key: stack plans keyed by the plan
// footprint, wire plans keyed by the plan+aggregate footprint. A GA
// population whose genomes differ only in service-stage parameters
// (striping, mdc_conf) shares a single wire plan across all of them.
//
// A cache holds one trace per registered kernel key, so it can be shared
// process-wide across tuning sessions: two sessions tuning kernels with
// the same content hash — same signature or same recorded trace — hit
// each other's artifacts, because stage planning is a pure function of
// (trace, projected parameters) and never reads the run seed. Safe for
// concurrent use.
type StageCache struct {
	mu        sync.Mutex
	kernelKey string            // key the single-trace API (WireFor, Trace) is bound to
	traces    map[string]*Trace // kernel key -> recorded trace
	plans     map[string]*StackPlan
	wires     map[string]*WirePlan
	stats     StageStats
}

// StageStats counts cache traffic per stage.
type StageStats struct {
	PlanHits   int64 `json:"plan_hits"`
	PlanMisses int64 `json:"plan_misses"`
	WireHits   int64 `json:"wire_hits"`
	WireMisses int64 `json:"wire_misses"`
}

// PlanHitRate returns the stage-1 hit fraction (0 when never queried).
func (s StageStats) PlanHitRate() float64 {
	if t := s.PlanHits + s.PlanMisses; t > 0 {
		return float64(s.PlanHits) / float64(t)
	}
	return 0
}

// HitRate returns the overall hit fraction across both cached stages
// (0 when never queried) — the headline number for how much of a
// session's stage work the cache absorbed.
func (s StageStats) HitRate() float64 {
	if t := s.PlanHits + s.PlanMisses + s.WireHits + s.WireMisses; t > 0 {
		return float64(s.PlanHits+s.WireHits) / float64(t)
	}
	return 0
}

// WireHitRate returns the stage-2 hit fraction (0 when never queried).
func (s StageStats) WireHitRate() float64 {
	if t := s.WireHits + s.WireMisses; t > 0 {
		return float64(s.WireHits) / float64(t)
	}
	return 0
}

// add accumulates o into s.
func (s *StageStats) add(o StageStats) {
	s.PlanHits += o.PlanHits
	s.PlanMisses += o.PlanMisses
	s.WireHits += o.WireHits
	s.WireMisses += o.WireMisses
}

// NewStageCache returns a cache over the single trace, bound to the empty
// kernel key until SetKernelKey rebinds it.
func NewStageCache(t *Trace) *StageCache {
	c := NewSharedStageCache()
	c.traces[""] = t
	return c
}

// NewSharedStageCache returns an empty multi-kernel cache, meant to be
// shared across sessions: callers Register each kernel's trace under its
// content hash and query through per-session Views.
func NewSharedStageCache() *StageCache {
	return &StageCache{
		traces: map[string]*Trace{},
		plans:  map[string]*StackPlan{},
		wires:  map[string]*WirePlan{},
	}
}

// Trace returns the trace the single-trace API is bound to (nil for a
// shared cache with no trace registered under the bound key).
func (c *StageCache) Trace() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traces[c.kernelKey]
}

// SetKernelKey installs a kernel content hash (typically
// IOSignature.Hash-derived) as the bound key: the trace registered under
// the previous bound key moves to the new one, and WireFor prefixes every
// cache key with it. On a cache shared between kernels the prefix is what
// keeps one kernel's artifacts from answering for another's.
func (c *StageCache) SetKernelKey(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if key != c.kernelKey {
		if t, ok := c.traces[c.kernelKey]; ok {
			delete(c.traces, c.kernelKey)
			if _, taken := c.traces[key]; !taken {
				c.traces[key] = t
			}
		}
		c.kernelKey = key
	}
}

// KernelKey returns the bound kernel content hash ("" when unset).
func (c *StageCache) KernelKey() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.kernelKey
}

// Register installs the trace for a kernel key. The first registration
// wins: a key already present keeps its trace, which is what lets many
// sessions race to register the same content-addressed kernel.
func (c *StageCache) Register(key string, t *Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.traces[key]; !ok {
		c.traces[key] = t
	}
}

// HasKernel reports whether a trace is registered under the key.
func (c *StageCache) HasKernel(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.traces[key]
	return ok
}

// Kernels returns the number of registered kernel traces.
func (c *StageCache) Kernels() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// Stats returns a snapshot of the cache-wide counters (all views and
// bound-key queries combined).
func (c *StageCache) Stats() StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// View returns a session-local handle on the cache bound to one kernel
// key. Views share the cache's artifacts — a plan built through one view
// is a hit through every other — but each view keeps its own StageStats,
// so a session can report its personal hit rate against the shared cache.
func (c *StageCache) View(kernelKey string) *CacheView {
	return &CacheView{c: c, kernelKey: kernelKey}
}

// CacheView is a per-session window onto a shared StageCache: fixed
// kernel key, private hit/miss counters. Safe for concurrent use.
type CacheView struct {
	c         *StageCache
	kernelKey string

	mu    sync.Mutex
	stats StageStats
}

// KernelKey returns the view's kernel key.
func (v *CacheView) KernelKey() string { return v.kernelKey }

// WireFor returns the wire plan of the assignment's configuration under
// the view's kernel, building (and caching, shared) what its projections
// miss. s must be a.Settings() and ppn the cluster's processes per node.
func (v *CacheView) WireFor(a *params.Assignment, s params.StackSettings, ppn int) (*WirePlan, error) {
	var delta StageStats
	wp, err := v.c.wireFor(v.kernelKey, a, s, &delta, ppn)
	v.mu.Lock()
	v.stats.add(delta)
	v.mu.Unlock()
	return wp, err
}

// Stats returns the view's private counters: the traffic this view (not
// the whole shared cache) generated.
func (v *CacheView) Stats() StageStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stats
}

// WireFor returns the wire plan of the assignment's configuration under
// the bound kernel key, building (and caching) the stage artifacts its
// projections miss. s must be a.Settings() and ppn the cluster's
// processes per node.
func (c *StageCache) WireFor(a *params.Assignment, s params.StackSettings, ppn int) (*WirePlan, error) {
	c.mu.Lock()
	key := c.kernelKey
	c.mu.Unlock()
	return c.wireFor(key, a, s, nil, ppn)
}

// wireFor is the shared implementation: delta, when non-nil, additionally
// receives the hit/miss traffic of this one call (for per-view stats).
func (c *StageCache) wireFor(kernelKey string, a *params.Assignment, s params.StackSettings, delta *StageStats, ppn int) (*WirePlan, error) {
	wireKey := kernelKey + "\x00" + a.ProjectionKey(wireFootprint)
	c.mu.Lock()
	defer c.mu.Unlock()
	if wp, ok := c.wires[wireKey]; ok {
		c.stats.WireHits++
		if delta != nil {
			delta.WireHits++
		}
		return wp, nil
	}
	c.stats.WireMisses++
	if delta != nil {
		delta.WireMisses++
	}
	sp, err := c.planLocked(kernelKey, a, s.HDF5, delta)
	if err != nil {
		return nil, err
	}
	wp := LowerPlan(sp, s.Hints, s.HDF5, ppn)
	c.wires[wireKey] = wp
	return wp, nil
}

func (c *StageCache) planLocked(kernelKey string, a *params.Assignment, cfg hdf5.Config, delta *StageStats) (*StackPlan, error) {
	planKey := kernelKey + "\x00" + a.ProjectionKey(params.PlanStage)
	if sp, ok := c.plans[planKey]; ok {
		c.stats.PlanHits++
		if delta != nil {
			delta.PlanHits++
		}
		return sp, nil
	}
	c.stats.PlanMisses++
	if delta != nil {
		delta.PlanMisses++
	}
	t, ok := c.traces[kernelKey]
	if !ok {
		return nil, fmt.Errorf("replay: no trace registered for kernel %q", kernelKey)
	}
	sp, err := BuildStackPlan(t, cfg)
	if err != nil {
		return nil, err
	}
	c.plans[planKey] = sp
	return sp, nil
}

// Lower is the uncached form of WireFor, used by tests comparing cache-hit
// artifacts to fresh recomputation. It lowers against the bound trace.
func (c *StageCache) Lower(s params.StackSettings, ppn int) (*WirePlan, error) {
	t := c.Trace()
	if t == nil {
		return nil, fmt.Errorf("replay: no trace registered for kernel %q", c.KernelKey())
	}
	sp, err := BuildStackPlan(t, s.HDF5)
	if err != nil {
		return nil, err
	}
	return LowerPlan(sp, s.Hints, s.HDF5, ppn), nil
}
