package replay

import (
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/darshan"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// mutate returns the default assignment with the named parameters moved to
// the given value indices.
func mutate(t *testing.T, pairs map[string]int) *params.Assignment {
	t.Helper()
	a := params.DefaultAssignment(params.Space())
	for name, idx := range pairs {
		if err := a.SetIndex(name, idx); err != nil {
			t.Fatalf("SetIndex(%s, %d): %v", name, idx, err)
		}
	}
	return a
}

func reportsEqual(t *testing.T, label string, live, staged *darshan.Report) {
	t.Helper()
	layers := live.Layers()
	if got := staged.Layers(); len(got) != len(layers) {
		t.Fatalf("%s: layer sets differ: live %v, staged %v", label, layers, got)
	}
	for _, name := range layers {
		a, b := *live.Layer(name), *staged.Layer(name)
		if a != b {
			t.Errorf("%s: layer %s differs:\n live   %+v\n staged %+v", label, name, a, b)
		}
	}
}

// TestStagedExecMatchesLiveRun proves the staged pipeline is bit-identical
// to running the recorded workload live: same clock, same counters, for
// every workload and a spread of configurations exercising each stage's
// footprint.
func TestStagedExecMatchesLiveRun(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	configs := map[string]*params.Assignment{
		"default": params.DefaultAssignment(params.Space()),
		"plan":    mutate(t, map[string]int{params.Alignment: 5, params.SieveBufSize: 6, params.ChunkCache: 1}),
		"agg": mutate(t, map[string]int{params.CollectiveWrite: 1, params.CBNodes: 3,
			params.CBBufferSize: 1, params.CollMetadataOps: 1, params.CollMetadataWrite: 1, params.MetaBlockSize: 7}),
		"service": mutate(t, map[string]int{params.StripingFactor: 6, params.StripingUnit: 0, params.MDCConfig: 0}),
		"mixed": mutate(t, map[string]int{params.CollectiveWrite: 1, params.Alignment: 3,
			params.StripingFactor: 3, params.MDCConfig: 3, params.ChunkCache: 0}),
	}

	for _, name := range []string{"vpic", "hacc", "flash", "bdcats", "macsio", "ior"} {
		w, err := workload.ByName(name, c.Procs())
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		recStack, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), 1)
		if err != nil {
			t.Fatalf("BuildStack: %v", err)
		}
		trace, err := Record(w, recStack)
		if err != nil {
			t.Fatalf("Record(%s): %v", name, err)
		}
		cache := NewStageCache(trace)
		var rt Runtime

		for cfgName, a := range configs {
			for _, seed := range []int64{1, 42} {
				label := name + "/" + cfgName
				s := a.Settings()

				live, err := workload.Execute(w, c, s, seed)
				if err != nil {
					t.Fatalf("%s: live Execute: %v", label, err)
				}

				wp, err := cache.WireFor(a, s, c.ProcsPerNode)
				if err != nil {
					t.Fatalf("%s: WireFor: %v", label, err)
				}
				st, err := workload.BuildStack(c, s, seed)
				if err != nil {
					t.Fatalf("%s: BuildStack: %v", label, err)
				}
				if err := rt.Exec(wp, st); err != nil {
					t.Fatalf("%s: Exec: %v", label, err)
				}

				if got, want := st.Sim.Now(), live.Runtime; got != want {
					t.Errorf("%s seed %d: runtime %v, live %v", label, seed, got, want)
				}
				reportsEqual(t, label, live.Report, st.Sim.Report)
			}
		}
	}
}

// TestStageCacheHitMatchesMiss proves a cached wire plan scores a genome
// byte-identically to a freshly recomputed one.
func TestStageCacheHitMatchesMiss(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	w, err := workload.ByName("flash", c.Procs())
	if err != nil {
		t.Fatal(err)
	}
	recStack, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), 1)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Record(w, recStack)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewStageCache(trace)
	a := mutate(t, map[string]int{params.CollectiveWrite: 1, params.StripingFactor: 5})
	s := a.Settings()

	// Prime the cache, then fetch again (hit) and recompute uncached.
	if _, err := cache.WireFor(a, s, c.ProcsPerNode); err != nil {
		t.Fatal(err)
	}
	hit, err := cache.WireFor(a, s, c.ProcsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	miss, err := cache.Lower(s, c.ProcsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if stats.WireHits != 1 || stats.WireMisses != 1 {
		t.Fatalf("stats = %+v, want 1 wire hit / 1 miss", stats)
	}

	var rtHit, rtMiss Runtime
	run := func(rt *Runtime, wp *WirePlan) *workload.Stack {
		st, err := workload.BuildStack(c, s, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Exec(wp, st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	stHit, stMiss := run(&rtHit, hit), run(&rtMiss, miss)
	if stHit.Sim.Now() != stMiss.Sim.Now() {
		t.Errorf("cache hit runtime %v != miss %v", stHit.Sim.Now(), stMiss.Sim.Now())
	}
	reportsEqual(t, "hit-vs-miss", stHit.Sim.Report, stMiss.Sim.Report)
}

// TestPooledStackMatchesFresh proves a Reset pooled stack is run-for-run
// indistinguishable from a freshly built one.
func TestPooledStackMatchesFresh(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	w, err := workload.ByName("vpic", c.Procs())
	if err != nil {
		t.Fatal(err)
	}
	a := mutate(t, map[string]int{params.CollectiveWrite: 1, params.Alignment: 2})
	s := a.Settings()

	pool := workload.NewStackPool(c)
	// Dirty a stack with a different config/seed, return it, and reuse it.
	dirty, err := pool.Get(params.DefaultAssignment(params.Space()).Settings(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(dirty); err != nil {
		t.Fatal(err)
	}
	pool.Put(dirty)

	pooled, err := pool.Get(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(pooled); err != nil {
		t.Fatal(err)
	}

	fresh, err := workload.Execute(w, c, s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pooled.Sim.Now() != fresh.Runtime {
		t.Errorf("pooled runtime %v != fresh %v", pooled.Sim.Now(), fresh.Runtime)
	}
	reportsEqual(t, "pooled-vs-fresh", fresh.Report, pooled.Sim.Report)
}
