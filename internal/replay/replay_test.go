package replay

import (
	"math"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/workload"
)

func noiselessCluster() *cluster.Cluster {
	c := cluster.CoriHaswell(2, 8)
	c.Noise = 0
	return c
}

func defaults() params.StackSettings {
	return params.DefaultAssignment(params.Space()).Settings()
}

func recordVPIC(t *testing.T) (*Trace, workload.RunResult) {
	t.Helper()
	c := noiselessCluster()
	w := workload.NewVPIC(c.Procs())
	w.ParticlesPerRank = 16 << 10
	w.Steps = 1
	w.ComputeFlops = 1e9
	st, err := workload.BuildStack(c, defaults(), 1)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Record(w, st)
	if err != nil {
		t.Fatal(err)
	}
	perf, alpha := workload.Perf(st.Sim.Report)
	return trace, workload.RunResult{
		Runtime: st.Sim.Now(), Perf: perf, Alpha: alpha, Report: st.Sim.Report,
	}
}

func TestRecordCapturesPhases(t *testing.T) {
	trace, _ := recordVPIC(t)
	kinds := map[EventKind]int{}
	for _, ev := range trace.Events {
		kinds[ev.Kind]++
	}
	if kinds[EvCreateFile] != 1 || kinds[EvCloseFile] != 1 {
		t.Fatalf("file events = %v", kinds)
	}
	if kinds[EvCreateDataset] != 8 || kinds[EvWrite] != 8 {
		t.Fatalf("dataset/write events = %v, want 8 each (VPIC vars)", kinds)
	}
	if kinds[EvCompute] != 1 {
		t.Fatalf("compute events = %v", kinds)
	}
	if trace.Nprocs != 16 {
		t.Fatalf("nprocs = %d", trace.Nprocs)
	}
}

func TestReplayMatchesOriginalFootprintAndTime(t *testing.T) {
	trace, orig := recordVPIC(t)
	c := noiselessCluster()
	rep, err := workload.Execute(&Player{T: trace}, c, defaults(), 1)
	if err != nil {
		t.Fatal(err)
	}
	oa, ra := orig.Report.App(), rep.Report.App()
	if oa.BytesWritten != ra.BytesWritten || oa.WriteOps != ra.WriteOps {
		t.Fatalf("footprint differs: %d/%d vs %d/%d",
			ra.BytesWritten, ra.WriteOps, oa.BytesWritten, oa.WriteOps)
	}
	if rel := math.Abs(rep.Runtime-orig.Runtime) / orig.Runtime; rel > 0.02 {
		t.Fatalf("replay runtime differs by %.1f%%: %v vs %v", rel*100, rep.Runtime, orig.Runtime)
	}
}

func TestReplaySkipCompute(t *testing.T) {
	trace, orig := recordVPIC(t)
	c := noiselessCluster()
	rep, err := workload.Execute(&Player{T: trace, SkipCompute: true}, c, defaults(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runtime >= orig.Runtime {
		t.Fatalf("compute-stripped replay (%.3fs) not faster than original (%.3fs)",
			rep.Runtime, orig.Runtime)
	}
	if rep.Report.App().BytesWritten != orig.Report.App().BytesWritten {
		t.Fatal("compute stripping changed the I/O footprint")
	}
}

func TestReplayUnderDifferentTuningConfig(t *testing.T) {
	// The point of a trace kernel: evaluate other stack configurations.
	trace, _ := recordVPIC(t)
	c := noiselessCluster()
	tuned := params.DefaultAssignment(params.Space())
	tuned.SetIndex(params.StripingFactor, 9)
	tuned.SetIndex(params.CollectiveWrite, 1)
	tuned.SetIndex(params.CBNodes, 2)
	def, err := workload.Execute(&Player{T: trace}, c, defaults(), 2)
	if err != nil {
		t.Fatal(err)
	}
	tun, err := workload.Execute(&Player{T: trace}, c, tuned.Settings(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tun.Perf <= def.Perf {
		t.Fatalf("tuned replay %.0f not above default %.0f", tun.Perf, def.Perf)
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	trace, _ := recordVPIC(t)
	blob, err := trace.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Events) != len(trace.Events) || restored.Nprocs != trace.Nprocs {
		t.Fatal("round trip lost events")
	}
	c := noiselessCluster()
	if _, err := workload.Execute(&Player{T: restored}, c, defaults(), 3); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsBadTrace(t *testing.T) {
	if _, err := Unmarshal([]byte(`{`)); err == nil {
		t.Fatal("garbage: want error")
	}
	if _, err := Unmarshal([]byte(`{"nprocs":0}`)); err == nil {
		t.Fatal("no nprocs: want error")
	}
}

func TestReplayProcsMismatchIsRejected(t *testing.T) {
	// The paper's §V-B argument: a trace is pinned to the configuration it
	// was recorded under; a different scale requires re-tracing.
	trace, _ := recordVPIC(t)
	bigger := cluster.CoriHaswell(4, 8)
	bigger.Noise = 0
	if _, err := workload.Execute(&Player{T: trace}, bigger, defaults(), 4); err == nil {
		t.Fatal("replay at a different scale: want error")
	}
}

func TestPlayerValidation(t *testing.T) {
	c := noiselessCluster()
	if _, err := workload.Execute(&Player{}, c, defaults(), 5); err == nil {
		t.Fatal("nil trace: want error")
	}
	bad := &Trace{Nprocs: c.Procs(), Events: []Event{{Kind: "bogus"}}}
	if _, err := workload.Execute(&Player{T: bad}, c, defaults(), 5); err == nil {
		t.Fatal("unknown event kind: want error")
	}
	orphanWrite := &Trace{Nprocs: c.Procs(), Events: []Event{{Kind: EvWrite, File: "f", Dataset: "d"}}}
	if _, err := workload.Execute(&Player{T: orphanWrite}, c, defaults(), 5); err == nil {
		t.Fatal("write without dataset: want error")
	}
	orphanClose := &Trace{Nprocs: c.Procs(), Events: []Event{{Kind: EvCloseFile, File: "f"}}}
	if _, err := workload.Execute(&Player{T: orphanClose}, c, defaults(), 5); err == nil {
		t.Fatal("close without open: want error")
	}
}

func TestRecordedChunkLayoutSurvivesReplay(t *testing.T) {
	c := noiselessCluster()
	w := workload.NewFLASH(c.Procs())
	w.BlocksPerRank = 8
	w.Unknowns = 2
	st, err := workload.BuildStack(c, defaults(), 6)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Record(w, st)
	if err != nil {
		t.Fatal(err)
	}
	foundChunk := false
	for _, ev := range trace.Events {
		if ev.Kind == EvCreateDataset && len(ev.Chunk) == 4 {
			foundChunk = true
		}
	}
	if !foundChunk {
		t.Fatal("chunk layout not recorded")
	}
	rep, err := workload.Execute(&Player{T: trace}, c, defaults(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Report.App().BytesWritten != st.Sim.Report.App().BytesWritten {
		t.Fatal("chunked replay footprint differs")
	}
}
