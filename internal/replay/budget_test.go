package replay

import (
	"errors"
	"math"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// budgetHarness records flash once and returns a wire plan plus a fresh
// stack builder.
func budgetHarness(t *testing.T) (*WirePlan, func() *workload.Stack) {
	t.Helper()
	c := cluster.CoriHaswell(2, 8)
	w, err := workload.ByName("flash", c.Procs())
	if err != nil {
		t.Fatal(err)
	}
	a := params.DefaultAssignment(params.Space())
	recStack, err := workload.BuildStack(c, a.Settings(), 1)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := Record(w, recStack)
	if err != nil {
		t.Fatal(err)
	}
	wp, err := NewStageCache(trace).WireFor(a, a.Settings(), c.ProcsPerNode)
	if err != nil {
		t.Fatal(err)
	}
	return wp, func() *workload.Stack {
		st, err := workload.BuildStack(c, a.Settings(), 7)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
}

// TestExecBudgetInfIdentical pins that an infinite budget reproduces
// Exec bit for bit — same clock, same counters.
func TestExecBudgetInfIdentical(t *testing.T) {
	wp, fresh := budgetHarness(t)
	var rt Runtime

	plain := fresh()
	if err := rt.Exec(wp, plain); err != nil {
		t.Fatal(err)
	}
	budgeted := fresh()
	if err := rt.ExecBudget(wp, budgeted, math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if plain.Sim.Now() != budgeted.Sim.Now() {
		t.Fatalf("clock differs: %v vs %v", plain.Sim.Now(), budgeted.Sim.Now())
	}
	reportsEqual(t, "inf-budget", plain.Sim.Report, budgeted.Sim.Report)
}

// TestExecBudgetAborts pins the pruning contract: a budget below the
// full runtime aborts with ErrBudgetExceeded, the partial clock already
// proves the candidate is over budget, and a budget at or above the
// full runtime never fires.
func TestExecBudgetAborts(t *testing.T) {
	wp, fresh := budgetHarness(t)
	var rt Runtime

	full := fresh()
	if err := rt.Exec(wp, full); err != nil {
		t.Fatal(err)
	}
	total := full.Sim.Now()

	budget := total / 2
	partial := fresh()
	err := rt.ExecBudget(wp, partial, budget)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if now := partial.Sim.Now(); now <= budget || now > total {
		t.Fatalf("aborted clock %v, want in (%v, %v]", now, budget, total)
	}

	// Exactly the full runtime is within budget (the check is strict).
	exact := fresh()
	if err := rt.ExecBudget(wp, exact, total); err != nil {
		t.Fatalf("budget == runtime must pass, got %v", err)
	}
}

// TestExecWhile pins the generalized abort: a nil keep is Exec op for
// op, keep=false aborts before the first op, and a keep derived from a
// monotone metric (elapsed clock) aborts at the same point as the
// equivalent time budget.
func TestExecWhile(t *testing.T) {
	wp, fresh := budgetHarness(t)
	var rt Runtime

	plain := fresh()
	if err := rt.Exec(wp, plain); err != nil {
		t.Fatal(err)
	}
	total := plain.Sim.Now()

	nilKeep := fresh()
	if err := rt.ExecWhile(wp, nilKeep, nil); err != nil {
		t.Fatal(err)
	}
	if nilKeep.Sim.Now() != total {
		t.Fatalf("nil keep clock %v, want %v", nilKeep.Sim.Now(), total)
	}
	reportsEqual(t, "nil-keep", plain.Sim.Report, nilKeep.Sim.Report)

	never := fresh()
	err := rt.ExecWhile(wp, never, func() bool { return false })
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("keep=false err = %v, want ErrBudgetExceeded", err)
	}
	if now := never.Sim.Now(); now != 0 {
		t.Fatalf("keep=false ran the plan: clock %v, want 0", now)
	}

	budget := total / 2
	byBudget, byKeep := fresh(), fresh()
	errB := rt.ExecBudget(wp, byBudget, budget)
	errK := rt.ExecWhile(wp, byKeep, func() bool { return byKeep.Sim.Now() <= budget })
	if !errors.Is(errB, ErrBudgetExceeded) || !errors.Is(errK, ErrBudgetExceeded) {
		t.Fatalf("errs = %v / %v, want ErrBudgetExceeded", errB, errK)
	}
	if byBudget.Sim.Now() != byKeep.Sim.Now() {
		t.Fatalf("abort points differ: budget %v vs keep %v", byBudget.Sim.Now(), byKeep.Sim.Now())
	}
}
