package replay

import (
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// concurrentConfigs is a spread of assignments whose projections land in
// different cache shards (plan- and wire-stage footprints both vary).
func concurrentConfigs(t *testing.T) []*params.Assignment {
	t.Helper()
	return []*params.Assignment{
		params.DefaultAssignment(params.Space()),
		mutate(t, map[string]int{params.Alignment: 5, params.SieveBufSize: 6}),
		mutate(t, map[string]int{params.CollectiveWrite: 1, params.CBNodes: 3, params.CBBufferSize: 1}),
		mutate(t, map[string]int{params.StripingFactor: 6, params.StripingUnit: 0}),
		mutate(t, map[string]int{params.CollectiveWrite: 1, params.Alignment: 3, params.ChunkCache: 0}),
		mutate(t, map[string]int{params.MDCConfig: 0, params.MetaBlockSize: 7}),
	}
}

// TestSharedStageCacheConcurrentViews drives 8 concurrent CacheViews over
// one shared cache — every goroutine replaying every configuration, so the
// same keys are fetched cold by one goroutine and warm by the rest — and
// proves each replayed run is bit-identical (clock and darshan counters) to
// a solo single-view baseline. Runs under -race in CI.
func TestSharedStageCacheConcurrentViews(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	tr := recordTrace(t, "macsio", 3)
	configs := concurrentConfigs(t)

	// Solo baseline: a private cache, one view, serial replays.
	type runKey struct {
		cfg  int
		seed int64
	}
	seeds := []int64{1, 42}
	baseline := make(map[runKey]float64)
	{
		solo := NewSharedStageCache()
		solo.Register("sig:k", tr)
		view := solo.View("sig:k")
		var rt Runtime
		for ci, a := range configs {
			s := a.Settings()
			wp, err := view.WireFor(a, s, c.ProcsPerNode)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range seeds {
				st, err := workload.BuildStack(c, s, seed)
				if err != nil {
					t.Fatal(err)
				}
				if err := rt.Exec(wp, st); err != nil {
					t.Fatal(err)
				}
				baseline[runKey{ci, seed}] = st.Sim.Now()
			}
		}
	}

	shared := NewSharedStageCache()
	shared.Register("sig:k", tr)
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	views := make([]*CacheView, goroutines)
	for g := 0; g < goroutines; g++ {
		views[g] = shared.View("sig:k")
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pool := workload.NewStackPool(c)
			var rt Runtime
			// Stagger the start config so cold builds race across goroutines.
			for i := range configs {
				ci := (i + g) % len(configs)
				a := configs[ci]
				s := a.Settings()
				wp, err := views[g].WireFor(a, s, c.ProcsPerNode)
				if err != nil {
					errs <- err
					return
				}
				for _, seed := range seeds {
					st, err := pool.Get(s, seed)
					if err != nil {
						errs <- err
						return
					}
					if err := rt.Exec(wp, st); err != nil {
						errs <- err
						return
					}
					if got, want := st.Sim.Now(), baseline[runKey{ci, seed}]; got != want {
						errs <- fmt.Errorf("goroutine %d cfg %d seed %d: runtime %v, solo baseline %v", g, ci, seed, got, want)
						return
					}
					pool.Put(st)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Aggregate accounting: every WireFor is a hit or a miss; each distinct
	// wire key is built exactly once (the build happens under the shard
	// mutex, so racing requesters block and then hit).
	total := int64(goroutines * len(configs))
	st := shared.Stats()
	if st.WireHits+st.WireMisses != total {
		t.Fatalf("wire hits(%d) + misses(%d) != %d lookups", st.WireHits, st.WireMisses, total)
	}
	if st.WireMisses < 1 || st.WireMisses > int64(len(configs)) {
		t.Fatalf("wire misses = %d, want between 1 and %d (one per distinct key)", st.WireMisses, len(configs))
	}
	// Per-view counters must sum to the merged totals.
	var sum StageStats
	for _, v := range views {
		sum.add(v.Stats())
	}
	if sum != st {
		t.Fatalf("per-view stats sum %+v != shared stats %+v", sum, st)
	}
}

// TestKernelStoreConcurrentAccess interleaves Put, Get, Save, and Load on
// one store from many goroutines. Pins the contract under -race: an entry
// never changes once published (first Put wins), every concurrently saved
// file parses and verifies (no torn files), and every loaded entry is one
// of the candidates that raced.
func TestKernelStoreConcurrentAccess(t *testing.T) {
	trA := recordTrace(t, "macsio", 3)
	trB := recordTrace(t, "vpic", 3)

	// A disk store the loader goroutines merge in while puts race.
	diskPath := filepath.Join(t.TempDir(), "disk.json")
	{
		disk := NewKernelStore()
		disk.Put("disk:flash/16", KernelEntry{Trace: recordTrace(t, "flash", 3), KernelHash: "hash:disk"})
		if _, err := disk.Save(diskPath); err != nil {
			t.Fatal(err)
		}
	}

	s := NewKernelStore()
	const (
		putters = 6
		keys    = 4
		savers  = 2
	)
	saveDir := t.TempDir()
	savedPaths := make([][]string, savers)
	firstSeen := make([]map[string]string, putters)
	var wg sync.WaitGroup
	errs := make(chan error, putters+savers+2)

	for p := 0; p < putters; p++ {
		firstSeen[p] = make(map[string]string, keys)
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("race:key/%d", k)
				tr, hash := trA, fmt.Sprintf("hash:A%d", p)
				if p%2 == 1 {
					tr, hash = trB, fmt.Sprintf("hash:B%d", p)
				}
				s.Put(key, KernelEntry{Trace: tr, KernelHash: hash})
				e, ok := s.Get(key)
				if !ok {
					errs <- fmt.Errorf("key %q missing immediately after Put", key)
					return
				}
				firstSeen[p][key] = e.KernelHash
			}
		}(p)
	}
	for sv := 0; sv < savers; sv++ {
		wg.Add(1)
		go func(sv int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				path := filepath.Join(saveDir, fmt.Sprintf("snap-%d-%d.json", sv, i))
				if _, err := s.Save(path); err != nil {
					errs <- err
					return
				}
				savedPaths[sv] = append(savedPaths[sv], path)
			}
		}(sv)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := s.Load(diskPath); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.Get(fmt.Sprintf("race:key/%d", i%keys))
			s.Len()
			s.Stats()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// First Put wins: whatever hash each goroutine observed right after its
	// own Put must be the hash everyone observed, and the final one.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("race:key/%d", k)
		final, ok := s.Get(key)
		if !ok {
			t.Fatalf("key %q lost", key)
		}
		for p := 0; p < putters; p++ {
			if seen := firstSeen[p][key]; seen != final.KernelHash {
				t.Fatalf("key %q changed after publication: goroutine %d saw %q, final %q", key, p, seen, final.KernelHash)
			}
		}
	}
	if e, ok := s.Get("disk:flash/16"); !ok || e.KernelHash != "hash:disk" {
		t.Fatal("concurrently loaded disk entry missing or mangled")
	}

	// Every file saved mid-race must load cleanly into a fresh store — the
	// per-trace checksums inside Load make torn or mixed snapshots fail.
	for sv := range savedPaths {
		for _, path := range savedPaths[sv] {
			fresh := NewKernelStore()
			if _, err := fresh.Load(path); err != nil {
				t.Fatalf("snapshot %s saved during the race is torn: %v", path, err)
			}
		}
	}
}

// TestStageCacheWarmPathLockFree asserts the acceptance property directly:
// a warm-path hit — StageCache.WireFor on a cached key, KernelStore.Get on
// a stored kernel — acquires no mutex and allocates nothing. The mutex
// claim is checked with the runtime mutex profiler (any contended lock in
// this package's frames fails); the allocation claim with AllocsPerRun.
func TestStageCacheWarmPathLockFree(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	tr := recordTrace(t, "macsio", 3)
	cache := NewSharedStageCache()
	cache.Register("sig:k", tr)
	store := NewKernelStore()
	store.Put("kern", KernelEntry{Trace: tr, KernelHash: TraceKey(tr)})
	a := params.DefaultAssignment(params.Space())
	s := a.Settings()
	warm := cache.View("sig:k")

	// Warm serially: the one build takes shard locks, the probes must not.
	if _, err := warm.WireFor(a, s, c.ProcsPerNode); err != nil {
		t.Fatal(err)
	}

	if got := testing.AllocsPerRun(100, func() {
		if _, err := warm.WireFor(a, s, c.ProcsPerNode); err != nil {
			t.Fatal(err)
		}
		if _, ok := store.Get("kern"); !ok {
			t.Fatal("warm Get missed")
		}
	}); got != 0 {
		t.Errorf("warm-path hit allocated %v times per run, want 0", got)
	}

	prev := runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(prev)
	maxprocs := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(maxprocs)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			view := cache.View("sig:k")
			for i := 0; i < 5000; i++ {
				if _, err := view.WireFor(a, s, c.ProcsPerNode); err != nil {
					panic(err)
				}
				if _, ok := store.Get("kern"); !ok {
					panic("warm Get missed")
				}
			}
		}(g)
	}
	wg.Wait()

	for _, rec := range mutexRecords(t) {
		frames := runtime.CallersFrames(rec.Stack())
		for {
			f, more := frames.Next()
			if strings.Contains(f.Function, "tunio/internal/replay.") {
				t.Fatalf("warm-path hit contended a mutex at %s (%s:%d)", f.Function, f.File, f.Line)
			}
			if !more {
				break
			}
		}
	}
}

// mutexRecords drains the runtime mutex-contention profile.
func mutexRecords(t *testing.T) []runtime.BlockProfileRecord {
	t.Helper()
	n, _ := runtime.MutexProfile(nil)
	recs := make([]runtime.BlockProfileRecord, n+64)
	n, ok := runtime.MutexProfile(recs)
	if !ok {
		t.Fatal("mutex profile grew while reading")
	}
	return recs[:n]
}

// warmBench primes a stage cache and kernel store and times the warm-path
// hit under RunParallel. The serialized variant routes every operation
// through one global mutex — the pre-sharding architecture — so the pair
// is the contention contrast BENCH_serve.json quantifies end to end.
func warmBench(b *testing.B, cache *StageCache, store *KernelStore) {
	c := cluster.CoriHaswell(2, 8)
	w, err := workload.ByName("macsio", c.Procs())
	if err != nil {
		b.Fatal(err)
	}
	st, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), 1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Record(w, st)
	if err != nil {
		b.Fatal(err)
	}
	cache.Register("sig:k", tr)
	store.Put("kern", KernelEntry{Trace: tr, KernelHash: TraceKey(tr)})
	a := params.DefaultAssignment(params.Space())
	s := a.Settings()
	if _, err := cache.View("sig:k").WireFor(a, s, c.ProcsPerNode); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		view := cache.View("sig:k")
		for pb.Next() {
			if _, err := view.WireFor(a, s, c.ProcsPerNode); err != nil {
				b.Fatal(err)
			}
			if _, ok := store.Get("kern"); !ok {
				b.Fatal("warm Get missed")
			}
		}
	})
}

func BenchmarkWarmHitSharded(b *testing.B) {
	warmBench(b, NewSharedStageCache(), NewKernelStore())
}

func BenchmarkWarmHitSerialized(b *testing.B) {
	warmBench(b, NewSharedStageCache().Serialize(), NewKernelStore().Serialize())
}
