package replay

import (
	"fmt"
	"strings"
	"testing"

	"tunio/internal/analysis"
	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// fixtureTrace records one built-in workload's trace under the default
// configuration and returns it with the kernel's concrete signature.
func fixtureTrace(t *testing.T, name string) (*Trace, *analysis.ConcreteSignature) {
	t.Helper()
	c := cluster.CoriHaswell(2, 8)
	w, err := workload.ByName(name, c.Procs())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	cs, ok := w.(workload.HasCSource)
	if !ok {
		t.Fatalf("%s: workload has no C source", name)
	}
	prog, err := csrc.Parse(cs.CSource())
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	sig := analysis.ComputeSignature(prog, analysis.SignatureOptions{})
	if !sig.Exact {
		t.Fatalf("%s: signature inexact: %s", name, sig.Reason)
	}
	st, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), 1)
	if err != nil {
		t.Fatalf("%s: stack: %v", name, err)
	}
	trace, err := RecordFunc(st, func(st *workload.Stack) error {
		_, err := cinterp.Run(prog, st.Lib)
		return err
	})
	if err != nil {
		t.Fatalf("%s: record: %v", name, err)
	}
	conc, err := sig.Concrete(map[string]int64{"nprocs": int64(trace.Nprocs)})
	if err != nil {
		t.Fatalf("%s: concrete: %v", name, err)
	}
	return trace, conc
}

// TestCrossValidateFixtures is the tentpole oracle: on every built-in
// fixture workload, the statically derived signature at default
// parameters must exactly match the recorded trace — event counts and
// byte totals with no tolerance.
func TestCrossValidateFixtures(t *testing.T) {
	for _, name := range []string{"vpic", "flash", "hacc", "macsio", "bdcats"} {
		t.Run(name, func(t *testing.T) {
			trace, conc := fixtureTrace(t, name)
			if err := CrossValidate(trace, conc); err != nil {
				t.Errorf("%s: %v", name, err)
			}
		})
	}
}

// TestCrossValidateCorruptedSlab corrupts one write event's slab in
// memory and checks the mismatch is reported with the offending event's
// index — not a panic, not a pass.
func TestCrossValidateCorruptedSlab(t *testing.T) {
	trace, conc := fixtureTrace(t, "vpic")
	idx := -1
	for i, ev := range trace.Events {
		if ev.Kind == EvWrite && len(ev.Slabs) > 0 && len(ev.Slabs[0].Count) > 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no write event with slabs in the vpic trace")
	}
	trace.Events[idx].Slabs[0].Count[0]++
	err := CrossValidate(trace, conc)
	if err == nil {
		t.Fatal("corrupted trace passed cross-validation")
	}
	if want := fmt.Sprintf("event %d", idx); !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the offending %s", err, want)
	}
}

// TestCrossValidateDroppedEvent removes one event and checks the count
// mismatch is reported.
func TestCrossValidateDroppedEvent(t *testing.T) {
	trace, conc := fixtureTrace(t, "flash")
	idx := -1
	for i, ev := range trace.Events {
		if ev.Kind == EvCreateFile {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no create-file event in the flash trace")
	}
	trace.Events = append(trace.Events[:idx], trace.Events[idx+1:]...)
	err := CrossValidate(trace, conc)
	if err == nil {
		t.Fatal("trace with a dropped event passed cross-validation")
	}
	if !strings.Contains(err.Error(), "create_file") && !strings.Contains(err.Error(), string(EvCreateFile)) {
		t.Errorf("error %q does not name the miscounted event kind", err)
	}
}

// TestCrossValidateExtraEvent duplicates a write event: the duplicate
// must fail the transfer budget with its own index.
func TestCrossValidateExtraEvent(t *testing.T) {
	trace, conc := fixtureTrace(t, "hacc")
	idx := -1
	for i, ev := range trace.Events {
		if ev.Kind == EvWrite {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no write event in the hacc trace")
	}
	trace.Events = append(trace.Events, trace.Events[idx])
	if err := CrossValidate(trace, conc); err == nil {
		t.Fatal("trace with a duplicated write passed cross-validation")
	}
}

// TestCrossValidateNil checks the degenerate inputs error instead of
// panicking.
func TestCrossValidateNil(t *testing.T) {
	if err := CrossValidate(nil, nil); err == nil {
		t.Error("nil trace and signature passed cross-validation")
	}
	trace, conc := fixtureTrace(t, "bdcats")
	if err := CrossValidate(trace, nil); err == nil {
		t.Error("nil signature passed cross-validation")
	}
	if err := CrossValidate(nil, conc); err == nil {
		t.Error("nil trace passed cross-validation")
	}
}
