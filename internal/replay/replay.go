// Package replay implements trace-based I/O kernel generation — the
// alternative approach the paper contrasts with in §V-B (Skel and Behzad
// et al. generate replayable kernels from trace files or ADIOS configs
// rather than from source). A Recorder hooks the simulated HDF5 library
// and captures every I/O phase of a run; the resulting Trace replays as a
// workload against any stack configuration.
//
// The package exists both as a usable facility and as the comparison
// baseline for the paper's argument: a trace is pinned to the application
// configuration it was recorded under (a new app configuration needs a new
// run to re-trace), while TunIO's source-derived kernels adapt with the
// source.
package replay

import (
	"encoding/json"
	"fmt"

	"tunio/internal/hdf5"
	"tunio/internal/workload"
)

// EventKind classifies trace events.
type EventKind string

// Trace event kinds.
const (
	EvCreateFile    EventKind = "create_file"
	EvOpenFile      EventKind = "open_file"
	EvCloseFile     EventKind = "close_file"
	EvCreateDataset EventKind = "create_dataset"
	EvOpenDataset   EventKind = "open_dataset"
	EvCreateGroup   EventKind = "create_group"
	EvAttribute     EventKind = "attribute"
	EvWrite         EventKind = "write"
	EvRead          EventKind = "read"
	EvCompute       EventKind = "compute"
	EvBarrier       EventKind = "barrier"
)

// Slab mirrors one rank's hyperslab in a phase.
type Slab struct {
	Rank  int     `json:"rank"`
	Start []int64 `json:"start"`
	Count []int64 `json:"count"`
}

// Event is one recorded operation. Dataset doubles as the group or
// attribute name for EvCreateGroup/EvAttribute events.
type Event struct {
	Kind    EventKind `json:"kind"`
	File    string    `json:"file,omitempty"`
	Dataset string    `json:"dataset,omitempty"`
	Dims    []int64   `json:"dims,omitempty"`
	Elem    int64     `json:"elem,omitempty"`
	Chunk   []int64   `json:"chunk,omitempty"`
	Slabs   []Slab    `json:"slabs,omitempty"`
	Flops   float64   `json:"flops,omitempty"`
	N       int       `json:"n,omitempty"`     // barrier depth
	Bytes   int64     `json:"bytes,omitempty"` // attribute footprint
}

// Trace is a recorded I/O kernel.
type Trace struct {
	Nprocs int     `json:"nprocs"`
	Events []Event `json:"events"`
}

// Marshal serializes the trace (the artifact a Skel-style tool would
// exchange).
func (t *Trace) Marshal() ([]byte, error) { return json.Marshal(t) }

// Unmarshal restores a serialized trace.
func Unmarshal(data []byte) (*Trace, error) {
	var t Trace
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, err
	}
	if t.Nprocs <= 0 {
		return nil, fmt.Errorf("replay: trace has no process count")
	}
	return &t, nil
}

// Recorder captures a run's I/O phases via the hdf5 library's tracer hook.
type Recorder struct {
	trace *Trace
}

// NewRecorder returns a recorder for a communicator of nprocs ranks.
func NewRecorder(nprocs int) *Recorder {
	return &Recorder{trace: &Trace{Nprocs: nprocs}}
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return r.trace }

// Attach installs the recorder on the stack's library and returns a
// detach function.
func (r *Recorder) Attach(lib *hdf5.Library) func() {
	lib.SetTracer(r)
	return func() { lib.SetTracer(nil) }
}

// The hdf5.Tracer interface implementation.

// OnCreateFile implements hdf5.Tracer.
func (r *Recorder) OnCreateFile(name string) {
	r.trace.Events = append(r.trace.Events, Event{Kind: EvCreateFile, File: name})
}

// OnOpenFile implements hdf5.Tracer.
func (r *Recorder) OnOpenFile(name string) {
	r.trace.Events = append(r.trace.Events, Event{Kind: EvOpenFile, File: name})
}

// OnCloseFile implements hdf5.Tracer.
func (r *Recorder) OnCloseFile(name string) {
	r.trace.Events = append(r.trace.Events, Event{Kind: EvCloseFile, File: name})
}

// OnOpenDataset implements hdf5.Tracer.
func (r *Recorder) OnOpenDataset(file, name string) {
	r.trace.Events = append(r.trace.Events, Event{Kind: EvOpenDataset, File: file, Dataset: name})
}

// OnCreateGroup implements hdf5.Tracer.
func (r *Recorder) OnCreateGroup(file, name string) {
	r.trace.Events = append(r.trace.Events, Event{Kind: EvCreateGroup, File: file, Dataset: name})
}

// OnAttribute implements hdf5.Tracer.
func (r *Recorder) OnAttribute(file, name string, bytes int64) {
	r.trace.Events = append(r.trace.Events, Event{Kind: EvAttribute, File: file, Dataset: name, Bytes: bytes})
}

// OnBarrier records an application-level barrier (MPI_Init/Finalize/
// MPI_Barrier in interpreted kernels), observed through the simulation's
// barrier hook.
func (r *Recorder) OnBarrier(n int) {
	r.trace.Events = append(r.trace.Events, Event{Kind: EvBarrier, N: n})
}

// OnCreateDataset implements hdf5.Tracer.
func (r *Recorder) OnCreateDataset(file, name string, space hdf5.Space, chunk []int64) {
	r.trace.Events = append(r.trace.Events, Event{
		Kind: EvCreateDataset, File: file, Dataset: name,
		Dims: append([]int64(nil), space.Dims...), Elem: space.Elem,
		Chunk: append([]int64(nil), chunk...),
	})
}

// OnTransfer implements hdf5.Tracer.
func (r *Recorder) OnTransfer(file, dataset string, slabs []hdf5.Slab, isWrite bool) {
	kind := EvRead
	if isWrite {
		kind = EvWrite
	}
	ev := Event{Kind: kind, File: file, Dataset: dataset}
	for _, sl := range slabs {
		ev.Slabs = append(ev.Slabs, Slab{
			Rank:  sl.Rank,
			Start: append([]int64(nil), sl.Start...),
			Count: append([]int64(nil), sl.Count...),
		})
	}
	r.trace.Events = append(r.trace.Events, ev)
}

// OnCompute implements hdf5.Tracer.
func (r *Recorder) OnCompute(flops float64) {
	r.trace.Events = append(r.trace.Events, Event{Kind: EvCompute, Flops: flops})
}

// Record executes a workload once on a fresh stack and returns its trace,
// including compute and barrier phases observed through the simulation's
// hooks.
func Record(w workload.Workload, st *workload.Stack) (*Trace, error) {
	return RecordFunc(st, w.Run)
}

// RecordFunc records whatever run drives on the stack — the general form
// of Record for runners that are not workload.Workload values (e.g. the C
// interpreter executing a discovered kernel).
func RecordFunc(st *workload.Stack, run func(st *workload.Stack) error) (*Trace, error) {
	rec := NewRecorder(st.Lib.Nprocs())
	detach := rec.Attach(st.Lib)
	st.Sim.ComputeHook = rec.OnCompute
	st.Sim.BarrierHook = rec.OnBarrier
	defer func() {
		detach()
		st.Sim.ComputeHook = nil
		st.Sim.BarrierHook = nil
	}()
	if err := run(st); err != nil {
		return nil, err
	}
	return rec.Trace(), nil
}

// Player replays a trace as a workload.
type Player struct {
	T *Trace
	// SkipCompute replays only the I/O (the trace-kernel equivalent of
	// compute stripping).
	SkipCompute bool
}

var _ workload.Workload = (*Player)(nil)

// Name implements workload.Workload.
func (p *Player) Name() string { return "trace-replay" }

// Run implements workload.Workload: the trace's phases execute in order
// against the stack.
func (p *Player) Run(st *workload.Stack) error {
	if p.T == nil {
		return fmt.Errorf("replay: nil trace")
	}
	if st.Lib.Nprocs() != p.T.Nprocs {
		return fmt.Errorf("replay: trace recorded at %d procs, stack has %d (re-trace required)",
			p.T.Nprocs, st.Lib.Nprocs())
	}
	files := map[string]*hdf5.File{}
	datasets := map[string]*hdf5.Dataset{}
	key := func(file, ds string) string { return file + "\x00" + ds }
	var slabBuf []hdf5.Slab // reused across transfer events

	for i, ev := range p.T.Events {
		switch ev.Kind {
		case EvCreateFile:
			f, err := st.Lib.CreateFile(ev.File)
			if err != nil {
				return fmt.Errorf("replay: event %d: %w", i, err)
			}
			files[ev.File] = f
		case EvOpenFile:
			f, err := st.Lib.OpenFile(ev.File)
			if err != nil {
				return fmt.Errorf("replay: event %d: %w", i, err)
			}
			files[ev.File] = f
		case EvCloseFile:
			f := files[ev.File]
			if f == nil {
				return fmt.Errorf("replay: event %d: close of unopened %s", i, ev.File)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("replay: event %d: %w", i, err)
			}
		case EvCreateDataset:
			f := files[ev.File]
			if f == nil {
				return fmt.Errorf("replay: event %d: dataset on unopened %s", i, ev.File)
			}
			space, err := hdf5.NewSpace(ev.Dims, ev.Elem)
			if err != nil {
				return fmt.Errorf("replay: event %d: %w", i, err)
			}
			var chunk []int64
			if len(ev.Chunk) > 0 {
				chunk = ev.Chunk
			}
			ds, err := f.CreateDataset(ev.Dataset, space, chunk)
			if err != nil {
				return fmt.Errorf("replay: event %d: %w", i, err)
			}
			datasets[key(ev.File, ev.Dataset)] = ds
		case EvOpenDataset:
			f := files[ev.File]
			if f == nil {
				return fmt.Errorf("replay: event %d: dataset on unopened %s", i, ev.File)
			}
			ds, err := f.OpenDataset(ev.Dataset)
			if err != nil {
				return fmt.Errorf("replay: event %d: %w", i, err)
			}
			datasets[key(ev.File, ev.Dataset)] = ds
		case EvCreateGroup:
			f := files[ev.File]
			if f == nil {
				return fmt.Errorf("replay: event %d: group on unopened %s", i, ev.File)
			}
			if err := f.CreateGroup(ev.Dataset); err != nil {
				return fmt.Errorf("replay: event %d: %w", i, err)
			}
		case EvAttribute:
			f := files[ev.File]
			if f == nil {
				return fmt.Errorf("replay: event %d: attribute on unopened %s", i, ev.File)
			}
			if err := f.WriteAttribute(ev.Dataset, ev.Bytes); err != nil {
				return fmt.Errorf("replay: event %d: %w", i, err)
			}
		case EvWrite, EvRead:
			ds := datasets[key(ev.File, ev.Dataset)]
			if ds == nil {
				return fmt.Errorf("replay: event %d: transfer on unknown dataset %s", i, ev.Dataset)
			}
			slabs := slabBuf[:0]
			for _, sl := range ev.Slabs {
				slabs = append(slabs, hdf5.Slab{Rank: sl.Rank, Start: sl.Start, Count: sl.Count})
			}
			slabBuf = slabs[:0]
			var err error
			if ev.Kind == EvWrite {
				_, err = ds.Write(slabs)
			} else {
				_, err = ds.Read(slabs)
			}
			if err != nil {
				return fmt.Errorf("replay: event %d: %w", i, err)
			}
		case EvCompute:
			if !p.SkipCompute {
				st.Sim.Compute(ev.Flops)
			}
		case EvBarrier:
			st.Sim.Barrier(ev.N)
		default:
			return fmt.Errorf("replay: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}
