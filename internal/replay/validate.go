package replay

// validate.go cross-checks a recorded trace against the static I/O
// signature of the kernel that produced it. The signature is derived
// without running anything, so agreement between the two is a standing
// oracle: a mismatch means the tracer, the interpreter, or the signature
// walker diverged, and the error names the first offending event.

import (
	"fmt"
	"sort"

	"tunio/internal/analysis"
)

// sigEventKind maps signature op names to the trace event kind each call
// produces under the interpreter's SPMD coordinator (one event per
// collective call site; MPI_Init/Finalize/Barrier all surface as
// barriers).
var sigEventKind = map[string]EventKind{
	"H5Fcreate": EvCreateFile, "H5Fopen": EvOpenFile, "H5Fclose": EvCloseFile,
	"H5Dcreate": EvCreateDataset, "H5Dopen": EvOpenDataset,
	"H5Gcreate": EvCreateGroup, "H5Acreate": EvAttribute,
	"MPI_Init": EvBarrier, "MPI_Finalize": EvBarrier, "MPI_Barrier": EvBarrier,
	"compute_flops": EvCompute, "H5Dwrite": EvWrite, "H5Dread": EvRead,
}

// CrossValidate checks that a recorded trace exactly matches a concrete
// signature: per-kind event counts, per-event transfer byte sizes, and
// total bytes moved. It returns nil on an exact match and a descriptive
// error naming the first offending event (or the unmet remainder)
// otherwise.
func CrossValidate(t *Trace, sig *analysis.ConcreteSignature) error {
	if t == nil || sig == nil {
		return fmt.Errorf("replay: nil trace or signature")
	}
	want := map[EventKind]int64{}
	for op, n := range sig.Ops {
		kind, ok := sigEventKind[op]
		if !ok {
			return fmt.Errorf("replay: signature op %s has no trace event mapping", op)
		}
		want[kind] += n
	}
	// Transfer sites become a budget multiset keyed by (direction, bytes
	// per event); every trace transfer must consume a matching budget
	// entry.
	type budgetKey struct {
		kind  EventKind
		bytes int64
	}
	budget := map[budgetKey]int64{}
	for _, tr := range sig.Transfers {
		kind := EvRead
		if tr.Write {
			kind = EvWrite
		}
		budget[budgetKey{kind, tr.Bytes}] += tr.Count
	}

	got := map[EventKind]int64{}
	elem := map[string]int64{}
	var gotWritten, gotRead int64
	for i, ev := range t.Events {
		got[ev.Kind]++
		switch ev.Kind {
		case EvCreateDataset:
			e := ev.Elem
			if e == 0 {
				e = 8
			}
			elem[ev.File+"\x00"+ev.Dataset] = e
		case EvWrite, EvRead:
			e := elem[ev.File+"\x00"+ev.Dataset]
			if e == 0 {
				e = 8
			}
			var bytes int64
			for _, sl := range ev.Slabs {
				n := int64(1)
				for _, c := range sl.Count {
					n *= c
				}
				bytes += n * e
			}
			k := budgetKey{ev.Kind, bytes}
			if budget[k] <= 0 {
				return fmt.Errorf("replay: event %d: %s of %d bytes is not predicted by the signature", i, ev.Kind, bytes)
			}
			budget[k]--
			if ev.Kind == EvWrite {
				gotWritten += bytes
			} else {
				gotRead += bytes
			}
		}
	}

	kinds := map[EventKind]bool{}
	for k := range want {
		kinds[k] = true
	}
	for k := range got {
		kinds[k] = true
	}
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, string(k))
	}
	sort.Strings(names)
	for _, name := range names {
		k := EventKind(name)
		if want[k] != got[k] {
			return fmt.Errorf("replay: trace has %d %s event(s), signature predicts %d", got[k], k, want[k])
		}
	}
	for k, n := range budget {
		if n != 0 {
			return fmt.Errorf("replay: signature predicts %d more %s transfer(s) of %d bytes than the trace contains", n, k.kind, k.bytes)
		}
	}
	if gotWritten != sig.BytesWritten {
		return fmt.Errorf("replay: trace writes %d bytes, signature predicts %d", gotWritten, sig.BytesWritten)
	}
	if gotRead != sig.BytesRead {
		return fmt.Errorf("replay: trace reads %d bytes, signature predicts %d", gotRead, sig.BytesRead)
	}
	return nil
}
