package replay

import (
	"errors"
	"fmt"
	"math"

	"tunio/internal/hdf5"
	"tunio/internal/ioreq"
	"tunio/internal/mpiio"
	"tunio/internal/workload"
)

// The staged replay engine factors scoring a recorded trace under a
// configuration into three stages mirroring the stack layers a transfer
// flows through:
//
//	trace --(1: BuildStackPlan)--> StackPlan --(2: LowerPlan)--> WirePlan --(3: Runtime.Exec)--> report
//
// Stage 1 resolves HDF5-level behavior — allocation/alignment, sieve
// coalescing, chunk planning with read-modify-write and chunk-cache
// decisions, metadata dirtying — into file extents and abstract metadata
// operations. It reads only the plan-footprint parameters (alignment,
// sieve buffer, chunk cache; params.PlanStage).
//
// Stage 2 lowers planned operations onto the MPI-IO wire: collective
// transfers get their two-phase aggregation schedule (mpiio.PlanCollective),
// metadata reads materialize per-rank or collective extents, and metadata
// flushes get their request counts. It additionally reads the aggregate
// footprint (params.AggregateStage).
//
// Both artifacts are pure integer data — no clock, RNG, or backend state —
// so they are cacheable by parameter projection (StageCache) and one
// artifact scores every genome that shares the projection. Stage 3 replays
// the wire plan against a live stack, consuming the service-footprint
// parameters (striping, metadata-cache level) plus the run seed; it charges
// time and counters through the same cluster/lustre/mpiio code paths in the
// same order as a live run, so its report is bit-identical to one.

type planOpKind uint8

const (
	opOpen planOpKind = iota
	opMetaRead
	opMetaTouch
	opMetaFlush
	opData
	opBarrier
	opCompute
	opAccount
)

// planOp is one stage-1 operation. Field use by kind:
//
//	opOpen:      file
//	opMetaRead:  file, items
//	opMetaTouch: file, items
//	opMetaFlush: file, items, offset, bytes
//	opData:      file, isWrite, extents
//	opBarrier:   n
//	opCompute:   flops
//	opAccount:   isWrite, bytes (app bytes), ops (app op count)
type planOp struct {
	kind    planOpKind
	file    int32
	isWrite bool
	items   int64
	offset  int64
	bytes   int64
	ops     int64
	n       int
	flops   float64
	extents []ioreq.Extent
}

// StackPlan is the stage-1 artifact: the trace resolved to file extents and
// abstract metadata operations under one plan-footprint projection.
type StackPlan struct {
	Nprocs int
	Files  []string
	ops    []planOp
}

// planFileState tracks one file's evolution while planning. Dataset state
// is shared across close/reopen (like the live library's preserved dataset
// map); the chunk cache is per-handle.
type planFileState struct {
	idx          int32
	eof          int64
	pendingBytes int64
	pendingItems int64
	datasets     map[string]*planDataset
	cache        *hdf5.ChunkCache
}

type planDataset struct {
	space      hdf5.Space
	dataOffset int64
	cp         *hdf5.ChunkPlanner
}

func (st *planFileState) addMeta(bytes int64) {
	st.pendingBytes += bytes
	st.pendingItems += hdf5.MetaItemsFor(bytes)
}

// BuildStackPlan resolves the trace under cfg's plan-footprint fields
// (alignment policy, sieve buffer, chunk cache capacity). The returned plan
// is immutable and safe to lower concurrently.
func BuildStackPlan(t *Trace, cfg hdf5.Config) (*StackPlan, error) {
	if t == nil || t.Nprocs <= 0 {
		return nil, fmt.Errorf("replay: plan of empty trace")
	}
	plan := &StackPlan{Nprocs: t.Nprocs}
	states := map[string]*planFileState{}
	fileIdx := map[string]int32{}
	var slabBuf []hdf5.Slab

	fileOf := func(name string) int32 {
		idx, ok := fileIdx[name]
		if !ok {
			idx = int32(len(plan.Files))
			plan.Files = append(plan.Files, name)
			fileIdx[name] = idx
		}
		return idx
	}
	emit := func(op planOp) { plan.ops = append(plan.ops, op) }

	for i, ev := range t.Events {
		switch ev.Kind {
		case EvCreateFile:
			idx := fileOf(ev.File)
			st := &planFileState{
				idx:      idx,
				datasets: map[string]*planDataset{},
				cache:    hdf5.NewChunkCache(cfg.ChunkCacheBytes),
			}
			states[ev.File] = st
			emit(planOp{kind: opOpen, file: idx})
			st.addMeta(hdf5.SuperblockBytes)

		case EvOpenFile:
			prev := states[ev.File]
			if prev == nil {
				return nil, fmt.Errorf("replay: event %d: open of unknown %s", i, ev.File)
			}
			st := &planFileState{
				idx:      prev.idx,
				eof:      prev.eof,
				datasets: prev.datasets,
				cache:    hdf5.NewChunkCache(cfg.ChunkCacheBytes),
			}
			states[ev.File] = st
			emit(planOp{kind: opOpen, file: st.idx})
			emit(planOp{kind: opMetaRead, file: st.idx, items: hdf5.OpenFileMetaItems})

		case EvCloseFile:
			st := states[ev.File]
			if st == nil {
				return nil, fmt.Errorf("replay: event %d: close of unopened %s", i, ev.File)
			}
			if st.pendingBytes > 0 {
				off := st.eof // metadata is never aligned
				st.eof += st.pendingBytes
				emit(planOp{kind: opMetaFlush, file: st.idx,
					offset: off, bytes: st.pendingBytes, items: st.pendingItems})
				st.pendingBytes, st.pendingItems = 0, 0
			}
			emit(planOp{kind: opBarrier, n: t.Nprocs})

		case EvCreateDataset:
			st := states[ev.File]
			if st == nil {
				return nil, fmt.Errorf("replay: event %d: dataset on unopened %s", i, ev.File)
			}
			space, err := hdf5.NewSpace(ev.Dims, ev.Elem)
			if err != nil {
				return nil, fmt.Errorf("replay: event %d: %w", i, err)
			}
			ds := &planDataset{space: space}
			if len(ev.Chunk) > 0 {
				cp, err := hdf5.NewChunkPlanner(ev.Dataset, space, ev.Chunk)
				if err != nil {
					return nil, fmt.Errorf("replay: event %d: %w", i, err)
				}
				ds.cp = cp
			} else {
				size := space.TotalBytes()
				ds.dataOffset = cfg.Align(st.eof, size)
				st.eof = ds.dataOffset + size
			}
			st.addMeta(hdf5.ObjectHeaderBytes)
			st.datasets[ev.Dataset] = ds

		case EvOpenDataset:
			st := states[ev.File]
			if st == nil || st.datasets[ev.Dataset] == nil {
				return nil, fmt.Errorf("replay: event %d: open of unknown dataset %s", i, ev.Dataset)
			}
			emit(planOp{kind: opMetaRead, file: st.idx, items: hdf5.OpenDatasetMetaItems})

		case EvCreateGroup:
			st := states[ev.File]
			if st == nil {
				return nil, fmt.Errorf("replay: event %d: group on unopened %s", i, ev.File)
			}
			st.addMeta(hdf5.GroupHeaderBytes)

		case EvAttribute:
			st := states[ev.File]
			if st == nil {
				return nil, fmt.Errorf("replay: event %d: attribute on unopened %s", i, ev.File)
			}
			st.addMeta(ev.Bytes)

		case EvWrite, EvRead:
			st := states[ev.File]
			if st == nil {
				return nil, fmt.Errorf("replay: event %d: transfer on unopened %s", i, ev.File)
			}
			ds := st.datasets[ev.Dataset]
			if ds == nil {
				return nil, fmt.Errorf("replay: event %d: transfer on unknown dataset %s", i, ev.Dataset)
			}
			if len(ev.Slabs) == 0 {
				continue
			}
			isWrite := ev.Kind == EvWrite
			slabs := slabBuf[:0]
			for _, sl := range ev.Slabs {
				slabs = append(slabs, hdf5.Slab{Rank: sl.Rank, Start: sl.Start, Count: sl.Count})
			}
			slabBuf = slabs[:0]
			var appBytes int64
			for _, sl := range slabs {
				if err := ds.space.ValidateSlab(sl); err != nil {
					return nil, fmt.Errorf("replay: event %d: %w", i, err)
				}
				appBytes += ds.space.SlabBytes(sl)
			}

			if ds.cp == nil {
				// Contiguous: object-header revisits, then the sieved extents.
				emit(planOp{kind: opMetaTouch, file: st.idx, items: int64(len(slabs))})
				var extents []ioreq.Extent
				for _, sl := range slabs {
					extents = hdf5.ContiguousSlabExtents(ds.space, sl, ds.dataOffset, cfg.SieveBufSize, extents)
				}
				emit(planOp{kind: opData, file: st.idx, isWrite: isWrite, extents: extents})
			} else {
				ph := ds.cp.Plan(slabs, isWrite, st.cache, func(size int64) int64 {
					off := cfg.Align(st.eof, size)
					st.eof = off + size
					return off
				})
				for n := int64(0); n < ph.NewChunks; n++ {
					st.addMeta(hdf5.MetaItemSize) // chunk index entry
				}
				if ph.MetaTouches > 0 {
					emit(planOp{kind: opMetaTouch, file: st.idx, items: ph.MetaTouches})
				}
				if len(ph.Read) > 0 {
					// read-modify-write prefetch: a read phase even on writes
					emit(planOp{kind: opData, file: st.idx, isWrite: false,
						extents: append([]ioreq.Extent(nil), ph.Read...)})
				}
				if len(ph.Data) > 0 {
					emit(planOp{kind: opData, file: st.idx, isWrite: isWrite,
						extents: append([]ioreq.Extent(nil), ph.Data...)})
				}
			}
			emit(planOp{kind: opAccount, isWrite: isWrite, bytes: appBytes, ops: int64(len(slabs))})

		case EvCompute:
			emit(planOp{kind: opCompute, flops: ev.Flops})

		case EvBarrier:
			emit(planOp{kind: opBarrier, n: ev.N})

		default:
			return nil, fmt.Errorf("replay: event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return plan, nil
}

type wireOpKind uint8

const (
	wOpen wireOpKind = iota
	wIndep
	wColl
	wMetaTouch
	wBarrier
	wCompute
	wAccount
)

// wireOp is one stage-2 operation. metaItems > 0 marks a metadata transfer
// (charged to the hdf5 meta counters instead of the transfer accumulator).
type wireOp struct {
	kind      wireOpKind
	file      int32
	isWrite   bool
	metaItems int64
	n         int
	flops     float64
	bytes     int64
	ops       int64
	extents   []ioreq.Extent
	coll      *mpiio.CollPlan
}

// WirePlan is the stage-2 artifact: the stack plan lowered onto the MPI-IO
// wire under one aggregate-footprint projection. Immutable; one wire plan
// serves any number of concurrent stage-3 executions.
type WirePlan struct {
	Nprocs      int
	PPN         int
	Files       []string
	CollMetaOps bool
	ops         []wireOp
}

// LowerPlan lowers a stack plan onto the wire for the given (unfilled)
// hints, cfg's aggregate-footprint fields, and ppn processes per node.
func LowerPlan(sp *StackPlan, hints mpiio.Hints, cfg hdf5.Config, ppn int) *WirePlan {
	h := hints.Fill(sp.Nprocs)
	wp := &WirePlan{
		Nprocs:      sp.Nprocs,
		PPN:         ppn,
		Files:       sp.Files,
		CollMetaOps: cfg.CollMetadataOps,
		ops:         make([]wireOp, 0, len(sp.ops)),
	}
	for i := range sp.ops {
		op := &sp.ops[i]
		switch op.kind {
		case opOpen:
			wp.ops = append(wp.ops, wireOp{kind: wOpen, file: op.file})
		case opMetaRead:
			wp.ops = append(wp.ops, wireOp{kind: wIndep, file: op.file,
				metaItems: op.items,
				extents:   hdf5.MetaReadExtents(cfg.CollMetadataOps, sp.Nprocs, ppn, op.items, nil)})
		case opMetaTouch:
			wp.ops = append(wp.ops, wireOp{kind: wMetaTouch, file: op.file, metaItems: op.items})
		case opMetaFlush:
			requests := hdf5.MetaFlushRequests(cfg.CollMetadataWrite, cfg.MetaBlockSize, op.bytes, op.items)
			wp.ops = append(wp.ops, wireOp{kind: wIndep, file: op.file, isWrite: true,
				metaItems: op.items,
				extents:   []ioreq.Extent{{Offset: op.offset, Size: op.bytes, Rank: 0, Count: requests}}})
		case opData:
			collective := h.CollectiveWrite
			if !op.isWrite {
				collective = h.CollectiveRead
			}
			if collective {
				wp.ops = append(wp.ops, wireOp{kind: wColl, file: op.file, isWrite: op.isWrite,
					coll: mpiio.PlanCollective(op.extents, h, sp.Nprocs, ppn)})
			} else {
				wp.ops = append(wp.ops, wireOp{kind: wIndep, file: op.file, isWrite: op.isWrite,
					extents: op.extents})
			}
		case opBarrier:
			wp.ops = append(wp.ops, wireOp{kind: wBarrier, n: op.n})
		case opCompute:
			wp.ops = append(wp.ops, wireOp{kind: wCompute, flops: op.flops})
		case opAccount:
			wp.ops = append(wp.ops, wireOp{kind: wAccount, isWrite: op.isWrite,
				bytes: op.bytes, ops: op.ops})
		}
	}
	return wp
}

// Runtime executes wire plans against live stacks, keeping reusable scratch
// (MPI-IO handles, metadata extent buffer) across executions. One Runtime
// serves one goroutine.
type Runtime struct {
	mpfs    []*mpiio.File
	fileBuf []mpiio.File // backing storage for mpfs, reopened in place per exec
	metaBuf []ioreq.Extent
}

// Exec replays the wire plan against the stack, charging clock time and
// darshan counters through the same layer code paths — in the same order,
// consuming the same RNG stream — as a live run of the recorded workload
// under the stack's configuration.
func (rt *Runtime) Exec(wp *WirePlan, st *workload.Stack) error {
	return rt.exec(wp, st, nil)
}

// ExecBudget is Exec with a SHAMan-style time budget: the replay aborts
// with ErrBudgetExceeded as soon as the stack's clock (st.Sim.Now,
// seconds since the start of this run) passes budget. Because every
// layer only ever advances the clock (Advance panics on negative
// durations), a partial time above the budget proves the full run would
// finish above it too — so a tuner may soundly discard the candidate
// without finishing the replay. The stack is left mid-run (clock at the
// point of abort, partial darshan counters); reset or re-pool it before
// reuse. A budget of +Inf never fires and makes ExecBudget identical to
// Exec, op for op.
func (rt *Runtime) ExecBudget(wp *WirePlan, st *workload.Stack, budget float64) error {
	if math.IsInf(budget, 1) {
		return rt.exec(wp, st, nil)
	}
	sim := st.Sim
	return rt.exec(wp, st, func() bool { return sim.Now() > budget })
}

// ExecWhile is Exec with a caller-supplied continuation test: keep is
// consulted before every op (and once after the last), and the replay
// aborts with ErrBudgetExceeded the first time it returns false. It
// generalizes ExecBudget to any abort criterion that is monotone in the
// replay's progress — e.g. a bandwidth upper bound computed from the
// stack's partial darshan counters, which only falls as layer times
// accumulate. keep must be a pure function of the stack's state, or
// determinism guarantees built on pruning break. As with ExecBudget,
// the stack is left mid-run on abort; reset or re-pool it before reuse.
// A nil keep never aborts and makes ExecWhile identical to Exec, op for
// op.
func (rt *Runtime) ExecWhile(wp *WirePlan, st *workload.Stack, keep func() bool) error {
	if keep == nil {
		return rt.exec(wp, st, nil)
	}
	return rt.exec(wp, st, func() bool { return !keep() })
}

// exec replays the wire plan, aborting with ErrBudgetExceeded whenever
// the abort predicate (nil = never) reports true.
func (rt *Runtime) exec(wp *WirePlan, st *workload.Stack, abort func() bool) error {
	sim := st.Sim
	lib := st.Lib
	if lib.Nprocs() != wp.Nprocs {
		return fmt.Errorf("replay: wire plan for %d procs, stack has %d", wp.Nprocs, lib.Nprocs())
	}
	hitRate := lib.Config().MDC.HitRate()
	if cap(rt.mpfs) < len(wp.Files) {
		rt.mpfs = make([]*mpiio.File, len(wp.Files))
		rt.fileBuf = make([]mpiio.File, len(wp.Files))
	}
	mpfs := rt.mpfs[:len(wp.Files)]
	clear(mpfs)

	var acc float64 // current transfer's data-phase elapsed time
	for i := range wp.ops {
		if abort != nil && abort() {
			return ErrBudgetExceeded
		}
		op := &wp.ops[i]
		switch op.kind {
		case wOpen:
			name := wp.Files[op.file]
			mpf := &rt.fileBuf[op.file]
			if err := mpf.Reopen(sim, lib.Backend(name), name, wp.Nprocs, lib.Hints()); err != nil {
				return err
			}
			mpfs[op.file] = mpf
		case wIndep:
			var elapsed float64
			var err error
			if op.isWrite {
				elapsed, err = mpfs[op.file].WriteIndependent(op.extents)
			} else {
				elapsed, err = mpfs[op.file].ReadIndependent(op.extents)
			}
			if err != nil {
				return err
			}
			if op.metaItems > 0 {
				sim.Report.AddMeta("hdf5", op.metaItems, elapsed)
			} else {
				acc += elapsed
			}
		case wColl:
			acc += mpfs[op.file].ExecCollective(op.coll, op.isWrite)
		case wMetaTouch:
			misses := hdf5.MetaMisses(op.metaItems, hitRate, sim.Rand().Float64())
			if misses > 0 {
				extents := hdf5.MetaReadExtents(wp.CollMetaOps, wp.Nprocs, wp.PPN, misses, rt.metaBuf[:0])
				rt.metaBuf = extents[:0]
				elapsed, err := mpfs[op.file].ReadIndependent(extents)
				if err != nil {
					return err
				}
				sim.Report.AddMeta("hdf5", misses, elapsed)
			}
		case wBarrier:
			sim.Barrier(op.n)
		case wCompute:
			sim.Compute(op.flops)
		case wAccount:
			lc := sim.Report.Layer("hdf5")
			if op.isWrite {
				lc.WriteOps += op.ops
				lc.BytesWritten += op.bytes
				lc.WriteTime += acc
			} else {
				lc.ReadOps += op.ops
				lc.BytesRead += op.bytes
				lc.ReadTime += acc
			}
			acc = 0
		}
	}
	if abort != nil && abort() {
		return ErrBudgetExceeded
	}
	return nil
}

// ErrBudgetExceeded is returned by ExecBudget and ExecWhile when the
// abort criterion provably fires before the plan completes.
var ErrBudgetExceeded = errors.New("replay: budget exceeded")
