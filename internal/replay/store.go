package replay

import "sync"

// KernelEntry is one stored kernel: its recorded trace and the content
// hash derived from it ("sig:…" when the kernel has an exact static I/O
// signature, "trace:…" otherwise).
type KernelEntry struct {
	Trace      *Trace
	KernelHash string
}

// KernelStore is a content-addressed kernel store: identity key →
// recorded trace. Recording a kernel is the one per-tune cost the staged
// engine cannot cache away (the workload or interpreter has to run once);
// the store removes it for every session after the first, which is what
// makes trace replay pay off across tenants, not just across genomes.
//
// Keys are kernel identities known before recording — a workload model's
// name and process count, or a content hash of submitted C source — so a
// session can look up the store instead of running the kernel at all.
// Traces are recorded under the default configuration and are
// seed-independent (they capture what the application issues, not how the
// simulated hardware times it), so reuse across sessions with different
// seeds is sound; TestKernelStoreTraceSeedIndependent pins this.
//
// Safe for concurrent use. The first Put under a key wins, so sessions
// racing to record the same kernel converge on one trace.
type KernelStore struct {
	mu      sync.Mutex
	entries map[string]KernelEntry
	hits    int64
	misses  int64
}

// KernelStoreStats reports store traffic and occupancy.
type KernelStoreStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Kernels int   `json:"kernels"`
}

// HitRate returns the lookup hit fraction (0 when never queried).
func (s KernelStoreStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// NewKernelStore returns an empty store.
func NewKernelStore() *KernelStore {
	return &KernelStore{entries: map[string]KernelEntry{}}
}

// Get looks up the kernel recorded under the identity key, counting the
// lookup as a hit or miss.
func (s *KernelStore) Get(key string) (KernelEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return e, ok
}

// Put stores the kernel under the identity key. A key already present
// keeps its entry (first recording wins).
func (s *KernelStore) Put(key string, e KernelEntry) {
	if e.Trace == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, taken := s.entries[key]; !taken {
		s.entries[key] = e
	}
}

// Len returns the number of stored kernels.
func (s *KernelStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the store counters.
func (s *KernelStore) Stats() KernelStoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return KernelStoreStats{Hits: s.hits, Misses: s.misses, Kernels: len(s.entries)}
}
