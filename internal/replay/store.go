package replay

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// TraceKey returns the content-derived kernel identity of a trace: an
// FNV-1a hash of its serialized form under the "trace:" prefix. It is the
// fallback kernel key when no exact static I/O signature exists ("sig:"
// keys rank first), and the key under which stage-cache and memo entries
// for trace-only kernels are filed.
func TraceKey(t *Trace) string {
	h := fnv.New64a()
	if b, err := t.Marshal(); err == nil {
		h.Write(b)
	}
	return fmt.Sprintf("trace:%016x", h.Sum64())
}

// KernelEntry is one stored kernel: its recorded trace and the content
// hash derived from it ("sig:…" when the kernel has an exact static I/O
// signature, "trace:…" otherwise).
type KernelEntry struct {
	Trace      *Trace
	KernelHash string
}

// KernelStore is a content-addressed kernel store: identity key →
// recorded trace. Recording a kernel is the one per-tune cost the staged
// engine cannot cache away (the workload or interpreter has to run once);
// the store removes it for every session after the first, which is what
// makes trace replay pay off across tenants, not just across genomes.
//
// Keys are kernel identities known before recording — a workload model's
// name and process count, or a content hash of submitted C source — so a
// session can look up the store instead of running the kernel at all.
// Traces are recorded under the default configuration and are
// seed-independent (they capture what the application issues, not how the
// simulated hardware times it), so reuse across sessions with different
// seeds is sound; TestKernelStoreTraceSeedIndependent pins this.
//
// Safe for concurrent use. Reads are lock-free: the entry map is
// published through an atomic pointer and never mutated in place, so a
// warm Get loads the pointer, indexes the immutable map, and bumps an
// atomic counter. Writers (Put, Load) clone-insert-republish under a
// mutex. The first Put under a key wins, so sessions racing to record
// the same kernel converge on one trace — and Save always serializes a
// single immutable snapshot, so a save concurrent with puts can never
// write a torn file.
type KernelStore struct {
	mu      sync.Mutex // serializes writers; readers never take it
	entries atomic.Pointer[map[string]KernelEntry]
	hits    atomic.Int64
	misses  atomic.Int64

	// serial, when non-nil, routes Get/Put through one global mutex —
	// the pre-COW behavior, kept as a benchmark baseline. See Serialize.
	serial *sync.Mutex
}

// KernelStoreStats reports store traffic and occupancy.
type KernelStoreStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Kernels int   `json:"kernels"`
}

// HitRate returns the lookup hit fraction (0 when never queried).
func (s KernelStoreStats) HitRate() float64 {
	if t := s.Hits + s.Misses; t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// NewKernelStore returns an empty store.
func NewKernelStore() *KernelStore {
	s := &KernelStore{}
	m := map[string]KernelEntry{}
	s.entries.Store(&m)
	return s
}

// Serialize switches the store into single-mutex mode (every Get and Put
// serializes on one global lock). Benchmark baseline only; call once,
// before the store is shared.
func (s *KernelStore) Serialize() *KernelStore {
	s.serial = &sync.Mutex{}
	return s
}

// Get looks up the kernel recorded under the identity key, counting the
// lookup as a hit or miss. Lock-free on every path.
func (s *KernelStore) Get(key string) (KernelEntry, bool) {
	if s.serial != nil {
		s.serial.Lock()
		defer s.serial.Unlock()
	}
	e, ok := (*s.entries.Load())[key]
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return e, ok
}

// Put stores the kernel under the identity key. A key already present
// keeps its entry (first recording wins).
func (s *KernelStore) Put(key string, e KernelEntry) {
	if e.Trace == nil {
		return
	}
	if s.serial != nil {
		s.serial.Lock()
		defer s.serial.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old := *s.entries.Load()
	if _, taken := old[key]; taken {
		return
	}
	next := make(map[string]KernelEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = e
	s.entries.Store(&next)
}

// Len returns the number of stored kernels.
func (s *KernelStore) Len() int {
	return len(*s.entries.Load())
}

// Stats returns a snapshot of the store counters.
func (s *KernelStore) Stats() KernelStoreStats {
	return KernelStoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Kernels: len(*s.entries.Load()),
	}
}

// storeFileVersion versions the on-disk store format; Load rejects other
// versions rather than guessing.
const storeFileVersion = 1

// storeFile is the serialized form of a KernelStore.
type storeFile struct {
	Version int          `json:"version"`
	Kernels []storeEntry `json:"kernels"`
}

// storeEntry is one persisted kernel. TraceSHA256 is the hash of the
// Trace field's exact bytes, so Load can prove the trace survived the
// round trip before trusting it.
type storeEntry struct {
	Key        string          `json:"key"`
	KernelHash string          `json:"kernel_hash"`
	TraceSHA   string          `json:"trace_sha256"`
	Trace      json.RawMessage `json:"trace"`
}

// Save writes the store to path atomically (temp file + rename), sorted
// by key for a deterministic file, and returns the number of kernels
// written. Each trace is stored with a content hash so a later Load can
// detect corruption. Hit/miss counters are not persisted — they describe
// one process's traffic, not the kernels.
//
// Save serializes one published snapshot: the entry map is immutable
// once published, so no lock is held while marshaling, and puts that
// land mid-save simply miss this file and make the next one.
func (s *KernelStore) Save(path string) (int, error) {
	snapshot := *s.entries.Load()
	keys := make([]string, 0, len(snapshot))
	for k := range snapshot {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := storeFile{Version: storeFileVersion}
	for _, k := range keys {
		e := snapshot[k]
		tb, err := e.Trace.Marshal()
		if err != nil {
			return 0, fmt.Errorf("replay: serializing kernel %q: %w", k, err)
		}
		sum := sha256.Sum256(tb)
		out.Kernels = append(out.Kernels, storeEntry{
			Key:        k,
			KernelHash: e.KernelHash,
			TraceSHA:   hex.EncodeToString(sum[:]),
			Trace:      tb,
		})
	}

	b, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		return 0, err
	}
	b = append(b, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".*.tmp")
	if err != nil {
		return 0, err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return 0, err
	}
	return len(out.Kernels), nil
}

// Load merges the kernels persisted at path into the store and returns
// how many entries the file held. Every trace's bytes are validated
// against the stored content hash first; a mismatch fails the whole load
// (a store that cannot be trusted should not half-apply). Existing keys
// keep their entries — the usual first-Put-wins rule — so loading a warm
// store under a live one never replaces traces sessions already use.
func (s *KernelStore) Load(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var in storeFile
	if err := json.Unmarshal(b, &in); err != nil {
		return 0, fmt.Errorf("replay: kernel store %s: %w", path, err)
	}
	if in.Version != storeFileVersion {
		return 0, fmt.Errorf("replay: kernel store %s: version %d, want %d", path, in.Version, storeFileVersion)
	}
	loaded := make(map[string]KernelEntry, len(in.Kernels))
	for _, e := range in.Kernels {
		// The store file is written indented, which reflows the embedded
		// trace; TraceSHA covers the canonical compact bytes.
		var compact bytes.Buffer
		if err := json.Compact(&compact, e.Trace); err != nil {
			return 0, fmt.Errorf("replay: kernel store %s: kernel %q: %w", path, e.Key, err)
		}
		e.Trace = compact.Bytes()
		sum := sha256.Sum256(e.Trace)
		if got := hex.EncodeToString(sum[:]); got != e.TraceSHA {
			return 0, fmt.Errorf("replay: kernel store %s: kernel %q trace hash mismatch (stored %.12s…, computed %.12s…)", path, e.Key, e.TraceSHA, got)
		}
		t, err := Unmarshal(e.Trace)
		if err != nil {
			return 0, fmt.Errorf("replay: kernel store %s: kernel %q: %w", path, e.Key, err)
		}
		loaded[e.Key] = KernelEntry{Trace: t, KernelHash: e.KernelHash}
	}
	s.mu.Lock()
	old := *s.entries.Load()
	next := make(map[string]KernelEntry, len(old)+len(loaded))
	for k, e := range old {
		next[k] = e
	}
	for k, e := range loaded {
		if _, taken := next[k]; !taken {
			next[k] = e
		}
	}
	s.entries.Store(&next)
	s.mu.Unlock()
	return len(loaded), nil
}
