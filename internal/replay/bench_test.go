package replay

import (
	"testing"

	"tunio/internal/cluster"
	"tunio/internal/params"
	"tunio/internal/workload"
)

// benchPlan records a small VPIC trace and lowers it for the default
// configuration, returning everything a replay loop needs.
func benchPlan(b *testing.B) (*cluster.Cluster, params.StackSettings, *WirePlan) {
	b.Helper()
	c := cluster.CoriHaswell(2, 8)
	w, err := workload.ByName("vpic", c.Procs())
	if err != nil {
		b.Fatal(err)
	}
	v := w.(*workload.VPIC)
	v.ParticlesPerRank = 16 << 10
	v.ComputeFlops = 1e9
	s := params.DefaultAssignment(params.Space()).Settings()
	st, err := workload.BuildStack(c, s, 1)
	if err != nil {
		b.Fatal(err)
	}
	trace, err := Record(w, st)
	if err != nil {
		b.Fatal(err)
	}
	wp, err := NewStageCache(trace).WireFor(params.DefaultAssignment(params.Space()), s, c.ProcsPerNode)
	if err != nil {
		b.Fatal(err)
	}
	return c, s, wp
}

// BenchmarkStagedExecPooled is the inner loop of a TraceEvaluator rep:
// pooled stack reset plus wire-plan execution. B/op is the allocation
// discipline figure the staged engine is tuned for.
func BenchmarkStagedExecPooled(b *testing.B) {
	c, s, wp := benchPlan(b)
	pool := workload.NewStackPool(c)
	var rt Runtime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := pool.Get(s, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Exec(wp, st); err != nil {
			b.Fatal(err)
		}
		pool.Put(st)
	}
}

// BenchmarkStagedExecFreshStack is the same replay without stack pooling —
// the allocation contrast that motivates it.
func BenchmarkStagedExecFreshStack(b *testing.B) {
	c, s, wp := benchPlan(b)
	var rt Runtime
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := workload.BuildStack(c, s, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Exec(wp, st); err != nil {
			b.Fatal(err)
		}
	}
}
