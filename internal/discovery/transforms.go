package discovery

import (
	"fmt"

	"tunio/internal/analysis"
	"tunio/internal/csrc"
)

// reduceLoops rewrites the bound of outermost for loops that contain I/O
// calls so only `fraction` of iterations run (Loop Reduction, §III-B).
// A loop `for (i = a; i < bound; i++)` becomes
// `for (i = a; i < __loop_reduce(bound); i++)`; the interpreter evaluates
// the builtin as max(1, floor(bound * fraction)). Nested I/O loops inside
// an already-reduced loop are left alone so reductions do not compound.
// Returns the number of loops rewritten.
func reduceLoops(f *csrc.File, fraction float64, isIO func(string) bool) int {
	reduced := 0
	locals := analysis.LocalNames(f)
	var visitBlock func(b *csrc.Block, fnIsIO func(string) bool, insideReduced bool)
	var visit func(s csrc.Stmt, fnIsIO func(string) bool, insideReduced bool)

	visitBlock = func(b *csrc.Block, fnIsIO func(string) bool, insideReduced bool) {
		if b == nil {
			return
		}
		for _, s := range b.Stmts {
			visit(s, fnIsIO, insideReduced)
		}
	}
	visit = func(s csrc.Stmt, fnIsIO func(string) bool, insideReduced bool) {
		switch st := s.(type) {
		case *csrc.Block:
			visitBlock(st, fnIsIO, insideReduced)
		case *csrc.IfStmt:
			visitBlock(st.Then, fnIsIO, insideReduced)
			visitBlock(st.Else, fnIsIO, insideReduced)
		case *csrc.WhileStmt:
			visitBlock(st.Body, fnIsIO, insideReduced)
		case *csrc.ForStmt:
			if !insideReduced && blockHasIO(st.Body, fnIsIO) {
				if rewriteBound(st, fraction) {
					reduced++
					visitBlock(st.Body, fnIsIO, true)
					return
				}
			}
			visitBlock(st.Body, fnIsIO, insideReduced)
		}
	}
	for _, fn := range f.Funcs {
		loc := locals[fn.Name]
		// calls through locally-declared names are not I/O library calls
		fnIsIO := func(name string) bool { return isIO(name) && !loc[name] }
		visitBlock(fn.Body, fnIsIO, false)
	}
	return reduced
}

// blockHasIO reports whether a block tree contains an I/O call.
func blockHasIO(b *csrc.Block, isIO func(string) bool) bool {
	found := false
	var visitExpr func(e csrc.Expr)
	visitExpr = func(e csrc.Expr) {
		csrc.WalkExpr(e, func(x csrc.Expr) bool {
			if c, ok := x.(*csrc.CallExpr); ok && isIO(c.Fun) {
				found = true
				return false
			}
			return true
		})
	}
	var visit func(s csrc.Stmt)
	visitBlock := func(bb *csrc.Block) {
		if bb == nil {
			return
		}
		for _, s := range bb.Stmts {
			visit(s)
		}
	}
	visit = func(s csrc.Stmt) {
		if found {
			return
		}
		switch st := s.(type) {
		case *csrc.ExprStmt:
			visitExpr(st.X)
		case *csrc.DeclStmt:
			visitExpr(st.Init)
		case *csrc.AssignStmt:
			visitExpr(st.RHS)
		case *csrc.Block:
			visitBlock(st)
		case *csrc.IfStmt:
			visitBlock(st.Then)
			visitBlock(st.Else)
		case *csrc.ForStmt:
			visitBlock(st.Body)
		case *csrc.WhileStmt:
			visitBlock(st.Body)
		}
	}
	visitBlock(b)
	return found
}

// rewriteBound wraps the upper bound of a `i < bound` / `i <= bound`
// condition in the loop-reduction builtin. Returns false for loop shapes
// it cannot rewrite (the reduction is then skipped for that loop).
func rewriteBound(st *csrc.ForStmt, fraction float64) bool {
	cond, ok := st.Cond.(*csrc.BinaryExpr)
	if !ok {
		return false
	}
	switch cond.Op {
	case "<", "<=":
		if alreadyReduced(cond.Y) {
			return false
		}
		cond.Y = &csrc.CallExpr{
			Fun: LoopReduceBuiltin,
			Args: []csrc.Expr{
				cond.Y,
				&csrc.NumberLit{Text: fmt.Sprintf("%g", fraction), IsFloat: true, Float: fraction},
			},
		}
		return true
	default:
		return false
	}
}

func alreadyReduced(e csrc.Expr) bool {
	c, ok := e.(*csrc.CallExpr)
	return ok && c.Fun == LoopReduceBuiltin
}

// pathCalls are the calls whose first string argument is a file path.
var pathCalls = map[string]int{
	"H5Fcreate": 0, "H5Fopen": 0, "fopen": 0, "MPI_File_open": 1,
}

// memPath prepends /dev/shm to a path (idempotent).
func memPath(p string) string {
	switch {
	case p == "" || hasMemPrefix(p):
		return p
	case p[0] == '/':
		return "/dev/shm" + p
	default:
		return "/dev/shm/" + p
	}
}

// switchPaths prepends /dev/shm to path arguments of file-opening I/O
// calls (I/O Path Switching, §III-B), so evaluation I/O targets memory.
// Literal arguments are rewritten in place; computed arguments that
// string-constant propagation proves constant are replaced with the
// switched literal, and those resolutions are returned (the rest stay
// untouched and carry a TR003 warning from the verifier).
func switchPaths(f *csrc.File) []ResolvedPath {
	prop := analysis.NewStringProp(f)
	resolvable := map[csrc.Expr]analysis.ResolvedPathArg{}
	for _, r := range prop.ResolvePathArgs() {
		resolvable[r.Arg] = r
	}

	var resolved []ResolvedPath
	rewrite := func(e csrc.Expr) {
		csrc.WalkExpr(e, func(x csrc.Expr) bool {
			c, ok := x.(*csrc.CallExpr)
			if !ok {
				return true
			}
			argIdx, ok := pathCalls[c.Fun]
			if !ok || argIdx >= len(c.Args) {
				return true
			}
			if lit, ok := c.Args[argIdx].(*csrc.StringLit); ok {
				lit.Value = memPath(lit.Value)
			} else if r, ok := resolvable[c.Args[argIdx]]; ok {
				switched := memPath(r.Path)
				c.Args[argIdx] = &csrc.StringLit{Value: switched}
				resolved = append(resolved, ResolvedPath{
					Call: r.Call, Line: r.Stmt.Base().Pos, Path: r.Path, Switched: switched,
				})
			}
			return true
		})
	}
	f.WalkStmts(func(s csrc.Stmt) bool {
		switch st := s.(type) {
		case *csrc.ExprStmt:
			rewrite(st.X)
		case *csrc.DeclStmt:
			rewrite(st.Init)
		case *csrc.AssignStmt:
			rewrite(st.RHS)
		}
		return true
	})
	return resolved
}

func hasMemPrefix(p string) bool {
	return len(p) >= 8 && p[:8] == "/dev/shm"
}
