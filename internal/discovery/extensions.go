package discovery

import (
	"strconv"

	"tunio/internal/csrc"
)

// The transforms in this file are the source-code modification techniques
// the paper lists as future work (§VI): "simulating loops, removing blind
// writes, simulating necessary compute". They were dismissed for TunIO's
// default pipeline because they trade kernel fidelity for speed, so they
// are opt-in via Options.

// ComputeSimBuiltin is the call the compute-simulation transform inserts
// in place of removed compute statements; the interpreter charges it as
// compute time.
const ComputeSimBuiltin = "compute_flops"

// flopsPerSimulatedStatement is the modeled cost of one removed compute
// statement when compute simulation is enabled: kernels keep the *timing*
// shape of the application without doing its arithmetic.
const flopsPerSimulatedStatement = 5e7

// simulateCompute walks the reconstructed kernel alongside the original
// and inserts a compute_flops call wherever a contiguous run of statements
// was removed, sized by the number of statements dropped. It returns the
// number of synthetic compute calls inserted.
func (m *marker) simulateCompute(kernel *csrc.File) int {
	inserted := 0
	var patch func(orig, kept *csrc.Block)
	patch = func(orig, kept *csrc.Block) {
		if orig == nil || kept == nil {
			return
		}
		var out []csrc.Stmt
		dropped := 0
		flush := func() {
			if dropped > 0 {
				out = append(out, &csrc.ExprStmt{X: &csrc.CallExpr{
					Fun: ComputeSimBuiltin,
					Args: []csrc.Expr{&csrc.NumberLit{
						Text:    formatFlops(float64(dropped) * flopsPerSimulatedStatement),
						IsFloat: true,
						Float:   float64(dropped) * flopsPerSimulatedStatement,
					}},
				}})
				inserted++
				dropped = 0
			}
		}
		keptIdx := 0
		for _, s := range orig.Stmts {
			if keptIdx < len(kept.Stmts) && kept.Stmts[keptIdx].Base().ID == s.Base().ID {
				flush()
				ks := kept.Stmts[keptIdx]
				out = append(out, ks)
				keptIdx++
				// recurse into structured statements
				switch os := s.(type) {
				case *csrc.IfStmt:
					if ki, ok := ks.(*csrc.IfStmt); ok {
						patchInto(&inserted, os.Then, ki.Then, patch)
						patchInto(&inserted, os.Else, ki.Else, patch)
					}
				case *csrc.ForStmt:
					if kf, ok := ks.(*csrc.ForStmt); ok {
						patchInto(&inserted, os.Body, kf.Body, patch)
					}
				case *csrc.WhileStmt:
					if kw, ok := ks.(*csrc.WhileStmt); ok {
						patchInto(&inserted, os.Body, kw.Body, patch)
					}
				case *csrc.Block:
					if kb, ok := ks.(*csrc.Block); ok {
						patchInto(&inserted, os, kb, patch)
					}
				}
				continue
			}
			// statement was dropped: count it if it is a leaf-ish compute
			// statement (declarations are free; skip them)
			switch s.(type) {
			case *csrc.AssignStmt, *csrc.ExprStmt:
				dropped++
			}
		}
		flush()
		kept.Stmts = out
	}

	for _, fn := range m.file.Funcs {
		kfn := kernel.Func(fn.Name)
		if kfn == nil {
			continue
		}
		patch(fn.Body, kfn.Body)
	}
	return inserted
}

func patchInto(inserted *int, orig, kept *csrc.Block, patch func(orig, kept *csrc.Block)) {
	if orig == nil || kept == nil {
		return
	}
	patch(orig, kept)
}

func formatFlops(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// removeBlindWrites drops H5Dwrite statements that are overwritten by a
// later H5Dwrite to the same dataset variable within the same block, with
// no intervening H5Dread of that variable ("blind writes" in the
// write-after-write sense). The last write to each dataset is always kept,
// so the file's final contents — and the bytes the tuner's objective
// depends on per unique region — are preserved while redundant overwrite
// traffic is elided. Returns the number of writes removed.
func removeBlindWrites(f *csrc.File) int {
	removed := 0
	var visitBlock func(b *csrc.Block)
	visitBlock = func(b *csrc.Block) {
		if b == nil {
			return
		}
		// find H5Dwrite statements at this block level keyed by dataset
		// arg; handle copies (alias = ds) count as the same dataset, and a
		// handle passed to a user-defined function is a barrier (the callee
		// may read the dataset)
		type writeAt struct {
			idx int
			ds  string
		}
		var writes []writeAt
		alias := map[string]string{} // copied handle -> original
		resolve := func(v string) string {
			for alias[v] != "" && alias[v] != v {
				v = alias[v]
			}
			return v
		}
		reads := map[string][]int{} // dataset -> stmt indices with reads
		for i, s := range b.Stmts {
			es, ok := s.(*csrc.ExprStmt)
			if !ok {
				// nested structures invalidate straight-line reasoning for
				// datasets they touch; recurse and treat them as barriers
				switch st := s.(type) {
				case *csrc.Block:
					visitBlock(st)
				case *csrc.IfStmt:
					visitBlock(st.Then)
					visitBlock(st.Else)
				case *csrc.ForStmt:
					visitBlock(st.Body)
				case *csrc.WhileStmt:
					visitBlock(st.Body)
				case *csrc.DeclStmt:
					if id, ok := st.Init.(*csrc.Ident); ok {
						alias[st.Name] = resolve(id.Name)
					}
				case *csrc.AssignStmt:
					if lhs, ok := st.LHS.(*csrc.Ident); ok && st.Op == "=" {
						if rhs, ok := st.RHS.(*csrc.Ident); ok {
							alias[lhs.Name] = resolve(rhs.Name)
						}
					}
				}
				continue
			}
			call, ok := es.X.(*csrc.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			if f.Func(call.Fun) != nil {
				// handle escapes into a user function: treat every argument
				// as a potential read of its dataset
				for _, a := range call.Args {
					if v := rootIdent(a); v != "" {
						reads[resolve(v)] = append(reads[resolve(v)], i)
					}
				}
				continue
			}
			ds := resolve(rootIdent(call.Args[0]))
			switch call.Fun {
			case "H5Dwrite":
				if ds != "" {
					writes = append(writes, writeAt{idx: i, ds: ds})
				}
			case "H5Dread":
				if ds != "" {
					reads[ds] = append(reads[ds], i)
				}
			}
		}
		// a write is blind if a later write to the same dataset exists in
		// this block with no read in between
		drop := map[int]bool{}
		for wi := 0; wi < len(writes); wi++ {
			for wj := wi + 1; wj < len(writes); wj++ {
				if writes[wi].ds != writes[wj].ds {
					continue
				}
				blocked := false
				for _, ri := range reads[writes[wi].ds] {
					if ri > writes[wi].idx && ri < writes[wj].idx {
						blocked = true
						break
					}
				}
				if !blocked {
					drop[writes[wi].idx] = true
				}
				break
			}
		}
		if len(drop) > 0 {
			var out []csrc.Stmt
			for i, s := range b.Stmts {
				if drop[i] {
					removed++
					continue
				}
				out = append(out, s)
			}
			b.Stmts = out
		}
	}
	for _, fn := range f.Funcs {
		visitBlock(fn.Body)
	}
	return removed
}
