package discovery

import (
	"strings"
	"testing"

	"tunio/internal/workload"
)

// lineSet converts MarkedLines (which may repeat a line when several
// statements share it) to a set.
func lineSet(lines []int) map[int]bool {
	set := map[int]bool{}
	for _, l := range lines {
		set[l] = true
	}
	return set
}

// fixtureSources returns the paper-workload C sources used by the precise
// slicer tests, shrunk like the conformance suite.
func fixtureSources(t *testing.T, nprocs int) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range []string{"vpic", "flash", "hacc"} {
		w, err := workload.ByName(name, nprocs)
		if err != nil {
			t.Fatal(err)
		}
		switch x := w.(type) {
		case *workload.VPIC:
			x.ParticlesPerRank = 16 << 10
			x.ComputeFlops = 1e9
		case *workload.FLASH:
			x.BlocksPerRank = 8
			x.Unknowns = 3
		case *workload.HACC:
			x.ParticlesPerRank = 16 << 10
		}
		cw, ok := w.(workload.HasCSource)
		if !ok {
			t.Fatalf("%s has no C source", name)
		}
		out[name] = cw.CSource()
	}
	return out
}

// TestPreciseSliceSubset asserts the def-use slicer never keeps more lines
// than the heuristic fixpoint marker on the paper fixtures.
func TestPreciseSliceSubset(t *testing.T) {
	sources := fixtureSources(t, 16)
	sources["fig5"] = fig5
	for name, src := range sources {
		heur, err := Discover(src, Options{Heuristic: true})
		if err != nil {
			t.Fatalf("%s heuristic: %v", name, err)
		}
		prec, err := Discover(src, Options{})
		if err != nil {
			t.Fatalf("%s precise: %v", name, err)
		}
		hset, pset := lineSet(heur.MarkedLines), lineSet(prec.MarkedLines)
		for line := range pset {
			if !hset[line] {
				t.Errorf("%s: precise slice keeps line %d the heuristic drops", name, line)
			}
		}
		if len(pset) > len(hset) {
			t.Errorf("%s: precise keeps %d lines, heuristic %d", name, len(pset), len(hset))
		}
	}
}

// TestPreciseSliceDropsDeadRedefinition shows the slicer is strictly more
// precise: a re-definition after the last I/O use cannot reach any I/O
// call, so the slicer drops it while the name-based marker keeps it.
func TestPreciseSliceDropsDeadRedefinition(t *testing.T) {
	src := `int main() {
    int n = 10;
    FILE* f = fopen("data.bin", "w");
    fwrite(&n, 4, 1, f);
    n = 99;
    fclose(f);
    return 0;
}`
	heur, err := Discover(src, Options{Heuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	prec, err := Discover(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	find := func(k *Kernel, frag string) bool {
		return strings.Contains(k.Source, frag)
	}
	if !find(heur, "n = 99") {
		t.Fatalf("heuristic should keep the dead redefinition (it defines a marked name):\n%s", heur.Source)
	}
	if find(prec, "n = 99") {
		t.Fatalf("precise slice should drop the dead redefinition:\n%s", prec.Source)
	}
	if len(lineSet(prec.MarkedLines)) >= len(lineSet(heur.MarkedLines)) {
		t.Errorf("precise keeps %d lines, want fewer than heuristic's %d",
			len(lineSet(prec.MarkedLines)), len(lineSet(heur.MarkedLines)))
	}
}

// TestShadowedIONameNotSeeded is the regression test for the identifier
// shadowing bug: a call through a parameter named like an I/O routine must
// not seed marking, in either pipeline.
func TestShadowedIONameNotSeeded(t *testing.T) {
	src := `void notio(int fwrite) {
    fwrite(1);
}

int main() {
    int x = 5;
    notio(x);
    FILE* f = fopen("a.bin", "w");
    fclose(f);
    return 0;
}`
	for _, opts := range []Options{{Heuristic: true}, {}} {
		k, err := Discover(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(k.Source, "notio") {
			t.Errorf("Heuristic=%v: shadowed fwrite call kept function notio:\n%s",
				opts.Heuristic, k.Source)
		}
		if !strings.Contains(k.Source, "fopen") || !strings.Contains(k.Source, "fclose") {
			t.Errorf("Heuristic=%v: real I/O dropped:\n%s", opts.Heuristic, k.Source)
		}
	}
}

// TestPreciseSliceKeepsBareOutArgWrites: a call that fills a buffer through
// a bare (un-&'d) argument — sprintf(name, ...) — must stay in the slice
// when the buffer later feeds an I/O call, even though no &name appears.
func TestPreciseSliceKeepsBareOutArgWrites(t *testing.T) {
	src := `int main() {
    char name[64];
    sprintf(name, "/scratch/run%d.bin", 3);
    FILE *f = fopen(name, "w");
    int n = 7;
    fwrite(&n, 4, 1, f);
    fclose(f);
    return 0;
}`
	k, err := Discover(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Source, "sprintf(name") {
		t.Fatalf("precise slice dropped the sprintf that fills the fopen path:\n%s", k.Source)
	}
}
