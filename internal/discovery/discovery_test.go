package discovery

import (
	"strings"
	"testing"

	"tunio/internal/csrc"
)

// fig5 mirrors the structure of the paper's Figure 5 marking example: an
// application with compute-only statements interleaved with HDF5 I/O whose
// dependents (dataset_id, data_ptr) flow through assignments.
const fig5 = `
#include <hdf5.h>
#include <mpi.h>
#define STEPS 10
#define N 4096

double advance_field(double t) {
    double e = t * 0.5 + 2.0;
    return e;
}

int main(int argc, char** argv) {
    int rank;
    int nprocs;
    MPI_Init(0, 0);
    MPI_Comm_rank(0, &rank);
    MPI_Comm_size(0, &nprocs);

    double t = 0.0;
    double energy = 0.0;
    int mesh_cells = N * 8;
    double* data_ptr = (double*)malloc(N * sizeof(double));
    hsize_t dims[1] = {N};

    hid_t file_id = H5Fcreate("/scratch/out.h5", 0, 0, 0);
    hid_t space_id = H5Screate_simple(1, dims, 0);
    hid_t dataset_id = H5Dcreate(file_id, "field", 0, space_id, 0, 0, 0);

    for (int step = 0; step < STEPS; step++) {
        t = t + 0.01;
        energy = advance_field(t);
        energy = energy * 2.0;
        mesh_cells = mesh_cells + 1;
        H5Dwrite(dataset_id, 0, 0, space_id, 0, data_ptr);
    }

    if (rank == 0) {
        double checksum = energy * mesh_cells;
        printf("checksum %f\n", checksum);
    }

    H5Dclose(dataset_id);
    H5Sclose(space_id);
    H5Fclose(file_id);
    MPI_Finalize();
    return 0;
}
`

func mustDiscover(t *testing.T, src string, opts Options) *Kernel {
	t.Helper()
	k, err := Discover(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestDiscoverKeepsIOAndDependents(t *testing.T) {
	k := mustDiscover(t, fig5, Options{})
	src := k.Source
	for _, want := range []string{
		"H5Fcreate", "H5Dcreate", "H5Dwrite", "H5Dclose", "H5Fclose",
		"H5Screate_simple", "MPI_Init", "MPI_Finalize",
		"data_ptr", "dataset_id", "dims", // dependents
		"for (", // contextual parent of H5Dwrite
	} {
		if !strings.Contains(src, want) {
			t.Errorf("kernel missing %q:\n%s", want, src)
		}
	}
}

func TestDiscoverRemovesCompute(t *testing.T) {
	k := mustDiscover(t, fig5, Options{})
	src := k.Source
	for _, gone := range []string{
		"energy", "advance_field", "checksum", "mesh_cells", "printf",
	} {
		if strings.Contains(src, gone) {
			t.Errorf("kernel still contains compute element %q:\n%s", gone, src)
		}
	}
}

func TestDiscoverKernelReparses(t *testing.T) {
	k := mustDiscover(t, fig5, Options{})
	if _, err := csrc.Parse(k.Source); err != nil {
		t.Fatalf("kernel does not reparse: %v\n%s", err, k.Source)
	}
}

func TestDiscoverMarkedLines(t *testing.T) {
	k := mustDiscover(t, fig5, Options{})
	if len(k.MarkedLines) == 0 || k.TotalLines == 0 {
		t.Fatal("no marking report")
	}
	if len(k.MarkedLines) >= k.TotalLines {
		t.Fatalf("marking kept %d of %d lines, expected a reduction", len(k.MarkedLines), k.TotalLines)
	}
	for i := 1; i < len(k.MarkedLines); i++ {
		if k.MarkedLines[i] < k.MarkedLines[i-1] {
			t.Fatal("marked lines not ascending")
		}
	}
}

func TestDiscoverLoopVariableDependentsKept(t *testing.T) {
	// The for header is a dependent of the I/O call inside it; its init,
	// cond, and update reference `step`, which must survive.
	k := mustDiscover(t, fig5, Options{})
	if !strings.Contains(k.Source, "step") {
		t.Fatalf("loop variable dropped:\n%s", k.Source)
	}
}

func TestDiscoverTransitiveAssignments(t *testing.T) {
	// data_ptr flows through a second assignment; both must be kept.
	src := `
int main() {
    double* buf = (double*)malloc(100 * sizeof(double));
    double* data_ptr = buf;
    double unused = 5.0;
    unused = unused * 2.0;
    hid_t d = H5Dopen(0, "x", 0);
    H5Dwrite(d, 0, 0, 0, 0, data_ptr);
    return 0;
}
`
	k := mustDiscover(t, src, Options{})
	if !strings.Contains(k.Source, "buf") {
		t.Fatalf("transitive dependent dropped:\n%s", k.Source)
	}
	if strings.Contains(k.Source, "unused") {
		t.Fatalf("unrelated variable kept:\n%s", k.Source)
	}
}

func TestDiscoverKeepsGuardOfIO(t *testing.T) {
	src := `
int main() {
    int rank;
    MPI_Comm_rank(0, &rank);
    double waste = 1.0;
    if (rank == 0) {
        hid_t f = H5Fcreate("a.h5", 0, 0, 0);
        H5Fclose(f);
    }
    if (waste > 0) {
        waste = waste + 1.0;
    }
    return 0;
}
`
	k := mustDiscover(t, src, Options{})
	if !strings.Contains(k.Source, "if ((rank == 0))") && !strings.Contains(k.Source, "rank == 0") {
		t.Fatalf("I/O guard dropped:\n%s", k.Source)
	}
	if strings.Contains(k.Source, "waste") {
		t.Fatalf("compute guard kept:\n%s", k.Source)
	}
}

func TestDiscoverUserFunctionWithIOKept(t *testing.T) {
	src := `
void write_dump(hid_t f) {
    H5Dwrite(f, 0, 0, 0, 0, 0);
}
double compute(double x) {
    return x * 2.0;
}
int main() {
    hid_t f = H5Fcreate("a.h5", 0, 0, 0);
    double y = compute(3.0);
    write_dump(f);
    H5Fclose(f);
    return 0;
}
`
	k := mustDiscover(t, src, Options{})
	if !strings.Contains(k.Source, "write_dump") {
		t.Fatalf("I/O helper dropped:\n%s", k.Source)
	}
	if fn := k.File.Func("compute"); fn != nil {
		t.Fatal("compute-only helper kept")
	}
}

func TestDiscoverKeepFuncsOption(t *testing.T) {
	src := `
double setup(double x) {
    return x + 1.0;
}
int main() {
    double v = setup(1.0);
    hid_t f = H5Fcreate("a.h5", 0, 0, 0);
    H5Fclose(f);
    return 0;
}
`
	k := mustDiscover(t, src, Options{KeepFuncs: []string{"setup"}})
	if k.File.Func("setup") == nil {
		t.Fatalf("KeepFuncs ignored:\n%s", k.Source)
	}
}

func TestLoopReduction(t *testing.T) {
	k := mustDiscover(t, fig5, Options{LoopReduction: 0.01})
	if k.ReducedLoops != 1 {
		t.Fatalf("reduced %d loops, want 1", k.ReducedLoops)
	}
	if k.LoopScale != 100 {
		t.Fatalf("LoopScale = %v, want 100", k.LoopScale)
	}
	if !strings.Contains(k.Source, LoopReduceBuiltin) {
		t.Fatalf("builtin missing:\n%s", k.Source)
	}
}

func TestLoopReductionOnlyOutermost(t *testing.T) {
	src := `
int main() {
    hid_t d = H5Dopen(0, "x", 0);
    for (int i = 0; i < 100; i++) {
        for (int j = 0; j < 50; j++) {
            H5Dwrite(d, 0, 0, 0, 0, 0);
        }
    }
    return 0;
}
`
	k := mustDiscover(t, src, Options{LoopReduction: 0.1})
	if k.ReducedLoops != 1 {
		t.Fatalf("reduced %d loops, want only the outermost", k.ReducedLoops)
	}
	if strings.Count(k.Source, LoopReduceBuiltin) != 1 {
		t.Fatalf("builtin appears %d times:\n%s", strings.Count(k.Source, LoopReduceBuiltin), k.Source)
	}
}

func TestLoopReductionSkipsNonIOLoops(t *testing.T) {
	// After kernel reconstruction no compute loop survives anyway, but a
	// kept loop without I/O (via KeepFuncs) must not be rewritten.
	src := `
void warm(double* a) {
    for (int i = 0; i < 10; i++) {
        a[0] = a[0] + 1.0;
    }
}
int main() {
    double x[1];
    warm(x);
    hid_t f = H5Fcreate("a.h5", 0, 0, 0);
    H5Fclose(f);
    return 0;
}
`
	k := mustDiscover(t, src, Options{KeepFuncs: []string{"warm"}, LoopReduction: 0.1})
	if strings.Contains(k.Source, LoopReduceBuiltin) {
		t.Fatalf("non-I/O loop reduced:\n%s", k.Source)
	}
}

func TestLoopReductionValidation(t *testing.T) {
	if _, err := Discover(fig5, Options{LoopReduction: 1.5}); err == nil {
		t.Fatal("want error")
	}
	if _, err := Discover(fig5, Options{LoopReduction: -0.1}); err == nil {
		t.Fatal("want error")
	}
}

func TestPathSwitching(t *testing.T) {
	k := mustDiscover(t, fig5, Options{PathSwitch: true})
	if !strings.Contains(k.Source, `"/dev/shm/scratch/out.h5"`) {
		t.Fatalf("path not switched:\n%s", k.Source)
	}
}

func TestPathSwitchingRelativeAndIdempotent(t *testing.T) {
	src := `
int main() {
    hid_t a = H5Fcreate("rel.h5", 0, 0, 0);
    hid_t b = H5Fopen("/dev/shm/x.h5", 0, 0);
    H5Fclose(a);
    H5Fclose(b);
    return 0;
}
`
	k := mustDiscover(t, src, Options{PathSwitch: true})
	if !strings.Contains(k.Source, `"/dev/shm/rel.h5"`) {
		t.Fatalf("relative path not switched:\n%s", k.Source)
	}
	if strings.Contains(k.Source, "/dev/shm/dev/shm") {
		t.Fatalf("path switching not idempotent:\n%s", k.Source)
	}
}

func TestDiscoverParseError(t *testing.T) {
	if _, err := Discover("int main() {", Options{}); err == nil {
		t.Fatal("want parse error")
	}
}

func TestDiscoverNoIOYieldsEmptyMain(t *testing.T) {
	src := `
int main() {
    double x = 1.0;
    x = x * 2.0;
    return 0;
}
`
	k := mustDiscover(t, src, Options{})
	if strings.Contains(k.Source, "x = ") && strings.Contains(k.Source, "2.0") {
		t.Fatalf("compute kept in I/O-free program:\n%s", k.Source)
	}
	// main must survive with its return for compilability
	if k.File.Func("main") == nil {
		t.Fatal("main dropped")
	}
}
