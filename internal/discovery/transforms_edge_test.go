package discovery

import (
	"strings"
	"testing"

	"tunio/internal/analysis"
	"tunio/internal/csrc"
)

// hasWarning reports whether a kernel carries a transform warning with the
// given code.
func hasWarning(k *Kernel, code string) bool {
	for _, d := range k.Warnings {
		if d.Code == code {
			return true
		}
	}
	return false
}

// TestLoopReductionBoundMutatedWarns covers the edge case where the loop
// body mutates its own bound: the reduction still rewrites the loop, but
// the kernel carries a TR001 warning.
func TestLoopReductionBoundMutatedWarns(t *testing.T) {
	src := `int main() {
    int n = 64;
    FILE* f = fopen("d.bin", "w");
    for (int i = 0; i < n; i++) {
        fwrite(&i, 4, 1, f);
        n = n - 1;
    }
    fclose(f);
    return 0;
}`
	k, err := Discover(src, Options{LoopReduction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if k.ReducedLoops != 1 {
		t.Errorf("ReducedLoops = %d, want 1", k.ReducedLoops)
	}
	if !hasWarning(k, analysis.CodeLoopBoundMutated) {
		t.Errorf("want TR001 warning for mutated bound, got %v", k.Warnings)
	}
}

// TestLoopReductionLoopCarriedIOWarns covers a reduced loop feeding a
// value into an I/O call after it.
func TestLoopReductionLoopCarriedIOWarns(t *testing.T) {
	src := `int main() {
    int total = 0;
    FILE* f = fopen("d.bin", "w");
    for (int i = 0; i < 64; i++) {
        fwrite(&i, 4, 1, f);
        total = total + 1;
    }
    fprintf(f, "%d", total);
    fclose(f);
    return 0;
}`
	k, err := Discover(src, Options{LoopReduction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !hasWarning(k, analysis.CodeLoopCarriedIO) {
		t.Errorf("want TR002 warning for loop-carried I/O argument, got %v", k.Warnings)
	}
}

// TestLoopReductionShadowedName asserts a loop calling through a local
// named like an I/O routine is not treated as an I/O loop.
func TestLoopReductionShadowedName(t *testing.T) {
	src := `void pump(int fwrite) {
    for (int i = 0; i < 64; i++) {
        fwrite(i);
    }
}

int main() {
    FILE* f = fopen("d.bin", "w");
    fclose(f);
    return 0;
}`
	file, err := csrc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := reduceLoops(file, 0.5, Options{}.isIOCall); got != 0 {
		t.Errorf("reduceLoops rewrote %d loops through a shadowed name, want 0", got)
	}
	if strings.Contains(csrc.Format(file), LoopReduceBuiltin) {
		t.Errorf("shadowed-name loop was rewritten:\n%s", csrc.Format(file))
	}
}

// TestPathSwitchComputedPath covers path switching over computed path
// expressions: the literal is switched, the computed one is left alone and
// flagged TR003.
func TestPathSwitchComputedPath(t *testing.T) {
	src := `void build_name(int n) {
    fprintf(0, "%d", n);
}

int main() {
    char name[64];
    build_name(7);
    FILE* a = fopen(name, "w");
    FILE* b = fopen("plain.bin", "w");
    fclose(a);
    fclose(b);
    return 0;
}`
	k, err := Discover(src, Options{PathSwitch: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Source, `"/dev/shm/plain.bin"`) {
		t.Errorf("literal path not switched:\n%s", k.Source)
	}
	if !strings.Contains(k.Source, "fopen(name,") {
		t.Errorf("computed path argument should be untouched:\n%s", k.Source)
	}
	if !hasWarning(k, analysis.CodeComputedPath) {
		t.Errorf("want TR003 warning for computed path, got %v", k.Warnings)
	}
}

// TestRemoveBlindWritesAliasedRead covers the aliased-handle edge case: a
// read through a handle copy must block removal of the earlier write.
func TestRemoveBlindWritesAliasedRead(t *testing.T) {
	src := `int main() {
    hid_t d = H5Dcreate(0, "ds", 0, 0, 0);
    hid_t alias = d;
    double buf[8];
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dread(alias, 0, 0, 0, 0, buf);
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dclose(d);
    return 0;
}`
	k, err := Discover(src, Options{RemoveBlindWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if k.RemovedBlindWrites != 0 {
		t.Errorf("removed %d writes; the aliased read makes the first write visible", k.RemovedBlindWrites)
	}
	if got := strings.Count(k.Source, "H5Dwrite"); got != 2 {
		t.Errorf("kernel has %d H5Dwrite calls, want 2:\n%s", got, k.Source)
	}
}

// TestRemoveBlindWritesEscapeBarrier covers a handle escaping into a user
// function between writes: removal is blocked and TR004 is raised.
func TestRemoveBlindWritesEscapeBarrier(t *testing.T) {
	src := `void touch(hid_t h) {
    H5Dread(h, 0, 0, 0, 0, 0);
}

int main() {
    hid_t d = H5Dcreate(0, "ds", 0, 0, 0);
    double buf[8];
    H5Dwrite(d, 0, 0, 0, 0, buf);
    touch(d);
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dclose(d);
    return 0;
}`
	k, err := Discover(src, Options{RemoveBlindWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if k.RemovedBlindWrites != 0 {
		t.Errorf("removed %d writes; the escaping handle may be read by touch()", k.RemovedBlindWrites)
	}
	if !hasWarning(k, analysis.CodeAliasedHandle) {
		t.Errorf("want TR004 warning for escaping handle, got %v", k.Warnings)
	}
}

// TestRemoveBlindWritesStillWorks asserts the plain overwrite case is
// still elided after the alias-awareness change.
func TestRemoveBlindWritesStillWorks(t *testing.T) {
	src := `int main() {
    hid_t d = H5Dcreate(0, "ds", 0, 0, 0);
    double buf[8];
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dwrite(d, 0, 0, 0, 0, buf);
    H5Dclose(d);
    return 0;
}`
	k, err := Discover(src, Options{RemoveBlindWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	if k.RemovedBlindWrites != 1 {
		t.Errorf("RemovedBlindWrites = %d, want 1", k.RemovedBlindWrites)
	}
	if got := strings.Count(k.Source, "H5Dwrite"); got != 1 {
		t.Errorf("kernel has %d H5Dwrite calls, want 1:\n%s", got, k.Source)
	}
}

// TestNoTransformsNoWarnings asserts warnings stay empty when no transform
// is enabled, even for sources that would trip every check.
func TestNoTransformsNoWarnings(t *testing.T) {
	src := `int main() {
    int n = 64;
    FILE* f = fopen("d.bin", "w");
    for (int i = 0; i < n; i++) {
        fwrite(&i, 4, 1, f);
        n = n - 1;
    }
    fclose(f);
    return 0;
}`
	k, err := Discover(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Warnings) != 0 {
		t.Errorf("no transforms enabled but Warnings = %v", k.Warnings)
	}
}
