package discovery

import (
	"testing"

	"tunio/internal/analysis"
)

// rmwVolumeSrc has a blind write (the first H5Dwrite is fully overwritten
// by the second) over a resolvable dataspace, so both the pre- and
// post-transform signatures are exact and removal halves the volume.
const rmwVolumeSrc = `
int main() {
    hsize_t dims[1];
    dims[0] = 64;
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hid_t file = H5Fcreate("out.h5", 0, H5P_DEFAULT, H5P_DEFAULT);
    hid_t d = H5Dcreate(file, "x", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    H5Dclose(d);
    H5Fclose(file);
    return 0;
}
`

func findWarning(k *Kernel, code string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range k.Warnings {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func TestTR008BlindWriteRemovalChangesVolume(t *testing.T) {
	k := mustDiscover(t, rmwVolumeSrc, Options{RemoveBlindWrites: true})
	if k.RemovedBlindWrites != 1 {
		t.Fatalf("removed %d blind writes, want 1:\n%s", k.RemovedBlindWrites, k.Source)
	}
	got := findWarning(k, analysis.CodeVolumeChanged)
	if len(got) != 1 {
		t.Fatalf("want one TR008, got %v (all warnings: %v)", got, k.Warnings)
	}
	if got[0].Severity != analysis.SevWarning {
		t.Errorf("TR008 severity = %v, want warning", got[0].Severity)
	}
}

func TestTR008QuietWhenVolumePreserved(t *testing.T) {
	// Nothing to remove: the transform runs but the volume is unchanged.
	src := `
int main() {
    hsize_t dims[1];
    dims[0] = 64;
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hid_t file = H5Fcreate("out.h5", 0, H5P_DEFAULT, H5P_DEFAULT);
    hid_t d = H5Dcreate(file, "x", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    H5Dclose(d);
    H5Fclose(file);
    return 0;
}
`
	k := mustDiscover(t, src, Options{RemoveBlindWrites: true})
	if k.RemovedBlindWrites != 0 {
		t.Fatalf("unexpected removal:\n%s", k.Source)
	}
	if got := findWarning(k, analysis.CodeVolumeChanged); len(got) != 0 {
		t.Errorf("TR008 fired with no volume change: %v", got)
	}
}

func TestTR008QuietUnderLoopReduction(t *testing.T) {
	// Loop reduction changes volume by design (reported via LoopScale),
	// so the comparison is suppressed when it runs.
	src := `
int main() {
    int i;
    hsize_t dims[1];
    dims[0] = 64;
    hid_t sp = H5Screate_simple(1, dims, NULL);
    hid_t file = H5Fcreate("out.h5", 0, H5P_DEFAULT, H5P_DEFAULT);
    hid_t d = H5Dcreate(file, "x", H5T_NATIVE_DOUBLE, sp, H5P_DEFAULT, H5P_DEFAULT, H5P_DEFAULT);
    for (i = 0; i < 8; i++) {
        H5Dwrite(d, H5T_NATIVE_DOUBLE, H5S_ALL, sp, H5P_DEFAULT, 0);
    }
    H5Dclose(d);
    H5Fclose(file);
    return 0;
}
`
	k := mustDiscover(t, src, Options{LoopReduction: 0.5})
	if k.ReducedLoops == 0 {
		t.Fatalf("loop reduction did not run:\n%s", k.Source)
	}
	if got := findWarning(k, analysis.CodeVolumeChanged); len(got) != 0 {
		t.Errorf("TR008 fired for loop reduction's intended volume change: %v", got)
	}
}
