package discovery

import (
	"strings"
	"testing"

	"tunio/internal/csrc"
)

func TestSimulateComputeInsertsCalls(t *testing.T) {
	src := `
int main() {
    double a = 1.0;
    a = a * 2.0;
    a = a + 3.0;
    hid_t f = H5Fcreate("x.h5", 0, 0, 0);
    double b = 4.0;
    b = b * 5.0;
    H5Fclose(f);
    return 0;
}
`
	k := mustDiscover(t, src, Options{SimulateCompute: true})
	if k.SimulatedComputeCalls == 0 {
		t.Fatalf("no compute calls inserted:\n%s", k.Source)
	}
	if !strings.Contains(k.Source, ComputeSimBuiltin) {
		t.Fatalf("builtin missing:\n%s", k.Source)
	}
	// compute variables themselves stay removed
	if strings.Contains(k.Source, "a * 2.0") {
		t.Fatalf("compute arithmetic kept:\n%s", k.Source)
	}
	// kernel still parses
	if _, err := csrc.Parse(k.Source); err != nil {
		t.Fatalf("kernel does not reparse: %v\n%s", err, k.Source)
	}
}

func TestSimulateComputeInsideLoops(t *testing.T) {
	src := `
int main() {
    hid_t d = H5Dopen(0, "x", 0);
    double t = 0.0;
    for (int i = 0; i < 10; i++) {
        t = t + 0.5;
        t = t * 1.1;
        H5Dwrite(d, 0, 0, 0, 0, 0);
    }
    return 0;
}
`
	k := mustDiscover(t, src, Options{SimulateCompute: true})
	// the loop body's dropped statements become one compute call in place
	idx := strings.Index(k.Source, "for (")
	if idx < 0 {
		t.Fatalf("loop lost:\n%s", k.Source)
	}
	body := k.Source[idx:]
	if !strings.Contains(body, ComputeSimBuiltin) {
		t.Fatalf("loop compute not simulated:\n%s", k.Source)
	}
	// wait: t feeds nothing I/O-related, so both t-statements drop
	if strings.Contains(k.Source, "t = ") {
		t.Fatalf("compute statements kept:\n%s", k.Source)
	}
}

func TestSimulateComputeOffByDefault(t *testing.T) {
	k := mustDiscover(t, fig5, Options{})
	if k.SimulatedComputeCalls != 0 || strings.Contains(k.Source, ComputeSimBuiltin+"(") &&
		!strings.Contains(fig5, ComputeSimBuiltin) {
		t.Fatal("compute simulation ran without being requested")
	}
}

func TestRemoveBlindWrites(t *testing.T) {
	src := `
int main() {
    hid_t d = H5Dopen(0, "x", 0);
    H5Dwrite(d, 0, 0, 0, 0, 0);
    H5Dwrite(d, 0, 0, 0, 0, 0);
    H5Dwrite(d, 0, 0, 0, 0, 0);
    return 0;
}
`
	k := mustDiscover(t, src, Options{RemoveBlindWrites: true})
	if k.RemovedBlindWrites != 2 {
		t.Fatalf("removed %d blind writes, want 2:\n%s", k.RemovedBlindWrites, k.Source)
	}
	if got := strings.Count(k.Source, "H5Dwrite"); got != 1 {
		t.Fatalf("%d H5Dwrite calls survive, want 1 (the last)", got)
	}
}

func TestRemoveBlindWritesKeepsReadBoundary(t *testing.T) {
	src := `
int main() {
    hid_t d = H5Dopen(0, "x", 0);
    H5Dwrite(d, 0, 0, 0, 0, 0);
    H5Dread(d, 0, 0, 0, 0, 0);
    H5Dwrite(d, 0, 0, 0, 0, 0);
    return 0;
}
`
	k := mustDiscover(t, src, Options{RemoveBlindWrites: true})
	if k.RemovedBlindWrites != 0 {
		t.Fatalf("write before a read removed:\n%s", k.Source)
	}
	if strings.Count(k.Source, "H5Dwrite") != 2 {
		t.Fatal("writes lost")
	}
}

func TestRemoveBlindWritesDistinctDatasets(t *testing.T) {
	src := `
int main() {
    hid_t a = H5Dopen(0, "a", 0);
    hid_t b = H5Dopen(0, "b", 0);
    H5Dwrite(a, 0, 0, 0, 0, 0);
    H5Dwrite(b, 0, 0, 0, 0, 0);
    return 0;
}
`
	k := mustDiscover(t, src, Options{RemoveBlindWrites: true})
	if k.RemovedBlindWrites != 0 {
		t.Fatalf("writes to distinct datasets removed:\n%s", k.Source)
	}
}

func TestRemoveBlindWritesDoesNotCrossLoops(t *testing.T) {
	// Writes inside a loop are not straight-line blind relative to writes
	// after it (the loop writes repeatedly); each is kept.
	src := `
int main() {
    hid_t d = H5Dopen(0, "x", 0);
    for (int i = 0; i < 4; i++) {
        H5Dwrite(d, 0, 0, 0, 0, 0);
    }
    H5Dwrite(d, 0, 0, 0, 0, 0);
    return 0;
}
`
	k := mustDiscover(t, src, Options{RemoveBlindWrites: true})
	if k.RemovedBlindWrites != 0 {
		t.Fatalf("loop write removed:\n%s", k.Source)
	}
	if strings.Count(k.Source, "H5Dwrite") != 2 {
		t.Fatal("writes lost")
	}
}
