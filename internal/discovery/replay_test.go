// The replay-backed kernel tests live in an external test package because
// they execute kernels through cinterp, which itself depends on discovery
// for the loop-reduction builtin.
package discovery_test

import (
	"reflect"
	"testing"

	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/discovery"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/workload"
)

// replayFixtures returns shrunk paper-workload sources for kernel replay.
func replayFixtures(t *testing.T, nprocs int) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range []string{"vpic", "flash", "hacc"} {
		w, err := workload.ByName(name, nprocs)
		if err != nil {
			t.Fatal(err)
		}
		switch x := w.(type) {
		case *workload.VPIC:
			x.ParticlesPerRank = 16 << 10
			x.ComputeFlops = 1e9
		case *workload.FLASH:
			x.BlocksPerRank = 8
			x.Unknowns = 3
		case *workload.HACC:
			x.ParticlesPerRank = 16 << 10
		}
		cw, ok := w.(workload.HasCSource)
		if !ok {
			t.Fatalf("%s has no C source", name)
		}
		out[name] = cw.CSource()
	}
	return out
}

// runTrace executes a program on a fresh simulated stack and records its
// I/O request stream.
func runTrace(t *testing.T, name, source string, c *cluster.Cluster) *replay.Trace {
	t.Helper()
	prog, err := csrc.Parse(source)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	st, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), 99)
	if err != nil {
		t.Fatal(err)
	}
	rec := replay.NewRecorder(c.Procs())
	detach := rec.Attach(st.Lib)
	defer detach()
	if _, err := cinterp.Run(prog, st.Lib); err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return rec.Trace()
}

// TestPreciseSliceReplayIdentical asserts both the heuristic and the
// precisely sliced kernels replay the exact I/O request stream of the
// original applications.
func TestPreciseSliceReplayIdentical(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	c.Noise = 0
	for name, src := range replayFixtures(t, c.Procs()) {
		orig := runTrace(t, name+"/original", src, c)

		prec, err := discovery.Discover(src, discovery.Options{PreciseSlice: true})
		if err != nil {
			t.Fatalf("%s precise: %v", name, err)
		}
		precTrace := runTrace(t, name+"/precise-kernel", prec.Source, c)
		if !reflect.DeepEqual(orig.Events, precTrace.Events) {
			t.Errorf("%s: precise kernel I/O stream differs from the application (%d vs %d events)",
				name, len(precTrace.Events), len(orig.Events))
		}

		heur, err := discovery.Discover(src, discovery.Options{})
		if err != nil {
			t.Fatalf("%s heuristic: %v", name, err)
		}
		heurTrace := runTrace(t, name+"/heuristic-kernel", heur.Source, c)
		if !reflect.DeepEqual(orig.Events, heurTrace.Events) {
			t.Errorf("%s: heuristic kernel I/O stream differs from the application (%d vs %d events)",
				name, len(heurTrace.Events), len(orig.Events))
		}
	}
}
