// The replay-backed kernel tests live in an external test package because
// they execute kernels through cinterp, which itself depends on discovery
// for the loop-reduction builtin.
package discovery_test

import (
	"reflect"
	"strings"
	"testing"

	"tunio/internal/analysis"
	"tunio/internal/cinterp"
	"tunio/internal/cluster"
	"tunio/internal/csrc"
	"tunio/internal/discovery"
	"tunio/internal/params"
	"tunio/internal/replay"
	"tunio/internal/workload"
)

// replayFixtures returns shrunk paper-workload sources for kernel replay.
func replayFixtures(t *testing.T, nprocs int) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, name := range []string{"vpic", "flash", "hacc"} {
		w, err := workload.ByName(name, nprocs)
		if err != nil {
			t.Fatal(err)
		}
		switch x := w.(type) {
		case *workload.VPIC:
			x.ParticlesPerRank = 16 << 10
			x.ComputeFlops = 1e9
		case *workload.FLASH:
			x.BlocksPerRank = 8
			x.Unknowns = 3
		case *workload.HACC:
			x.ParticlesPerRank = 16 << 10
		}
		cw, ok := w.(workload.HasCSource)
		if !ok {
			t.Fatalf("%s has no C source", name)
		}
		out[name] = cw.CSource()
	}
	return out
}

// runTrace executes a program on a fresh simulated stack and records its
// I/O request stream.
func runTrace(t *testing.T, name, source string, c *cluster.Cluster) *replay.Trace {
	t.Helper()
	prog, err := csrc.Parse(source)
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	st, err := workload.BuildStack(c, params.DefaultAssignment(params.Space()).Settings(), 99)
	if err != nil {
		t.Fatal(err)
	}
	rec := replay.NewRecorder(c.Procs())
	detach := rec.Attach(st.Lib)
	defer detach()
	if _, err := cinterp.Run(prog, st.Lib); err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return rec.Trace()
}

// TestPreciseSliceReplayIdentical asserts both the heuristic and the
// precisely sliced kernels replay the exact I/O request stream of the
// original applications.
func TestPreciseSliceReplayIdentical(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	c.Noise = 0
	for name, src := range replayFixtures(t, c.Procs()) {
		orig := runTrace(t, name+"/original", src, c)

		prec, err := discovery.Discover(src, discovery.Options{})
		if err != nil {
			t.Fatalf("%s precise: %v", name, err)
		}
		precTrace := runTrace(t, name+"/precise-kernel", prec.Source, c)
		if !reflect.DeepEqual(orig.Events, precTrace.Events) {
			t.Errorf("%s: precise kernel I/O stream differs from the application (%d vs %d events)",
				name, len(precTrace.Events), len(orig.Events))
		}

		heur, err := discovery.Discover(src, discovery.Options{Heuristic: true})
		if err != nil {
			t.Fatalf("%s heuristic: %v", name, err)
		}
		heurTrace := runTrace(t, name+"/heuristic-kernel", heur.Source, c)
		if !reflect.DeepEqual(orig.Events, heurTrace.Events) {
			t.Errorf("%s: heuristic kernel I/O stream differs from the application (%d vs %d events)",
				name, len(heurTrace.Events), len(orig.Events))
		}
	}
}

// stripMemPrefix normalizes a switched trace: file paths lose their
// /dev/shm prefix so they compare against the original application's.
func stripMemPrefix(events []replay.Event) []replay.Event {
	out := append([]replay.Event(nil), events...)
	for i := range out {
		out[i].File = strings.TrimPrefix(out[i].File, "/dev/shm")
	}
	return out
}

// TestPathSwitchResolvesComputedPaths is the tentpole end-to-end check:
// the fixture workloads build their output path with sprintf of constant
// parts, so path switching must resolve the computed argument via
// string-constant propagation (no TR003), rewrite it to /dev/shm, and the
// switched kernel must replay the application's exact I/O request stream
// modulo the /dev/shm prefix on file paths.
func TestPathSwitchResolvesComputedPaths(t *testing.T) {
	c := cluster.CoriHaswell(2, 8)
	c.Noise = 0
	for name, src := range replayFixtures(t, c.Procs()) {
		orig := runTrace(t, name+"/original", src, c)

		k, err := discovery.Discover(src, discovery.Options{PathSwitch: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, w := range k.Warnings {
			if w.Code == analysis.CodeComputedPath {
				t.Errorf("%s: TR003 still raised for a resolvable computed path: %s", name, w)
			}
		}
		if len(k.ResolvedPaths) == 0 {
			t.Fatalf("%s: no resolved paths recorded on the kernel", name)
		}
		rp := k.ResolvedPaths[0]
		if !strings.HasPrefix(rp.Switched, "/dev/shm/") || rp.Path == "" {
			t.Errorf("%s: bad resolution %+v", name, rp)
		}
		if !strings.Contains(k.Source, `"`+rp.Switched+`"`) {
			t.Errorf("%s: switched literal %q not substituted into the kernel:\n%s", name, rp.Switched, k.Source)
		}

		trace := runTrace(t, name+"/switched-kernel", k.Source, c)
		if !reflect.DeepEqual(orig.Events, stripMemPrefix(trace.Events)) {
			t.Errorf("%s: switched kernel I/O stream differs modulo prefix (%d vs %d events)",
				name, len(trace.Events), len(orig.Events))
		}
		for _, ev := range trace.Events {
			if ev.File != "" && !strings.HasPrefix(ev.File, "/dev/shm") {
				t.Errorf("%s: event file %q did not land in /dev/shm", name, ev.File)
			}
		}
	}
}
